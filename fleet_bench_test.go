package bdrmap

// BenchmarkFleetVsSequential times the same 8-VP measurement round on a
// one-worker coordinator (the sequential baseline) and on a four-worker
// fleet. Probing runs under scamper.Config.Pace so the benchmark lives in
// the deployed system's wall-clock regime — lanes waiting between probes,
// not CPU — which is exactly the time the coordinator exists to overlap.
// The differential suite proves the outputs are byte-identical; this
// benchmark proves the wider pool buys wall-clock without buying probes:
// packets/op must not move between the two, only ns/op may.

import (
	"sync"
	"testing"
	"time"

	"bdrmap/internal/eval"
	"bdrmap/internal/scamper"
)

// fleetBenchProfile is regional-vp widened to 8 vantage points so a
// 4-worker pool has real parallelism to exploit.
func fleetBenchProfile() Profile {
	prof := RegionalVP()
	prof.NumVPs = 8
	return prof
}

// fleetBenchPace is the real-time cost of one traceroute lane slot —
// comfortably above the per-trace CPU cost, far below real probing so the
// benchmark still completes in seconds.
const fleetBenchPace = time.Millisecond

// fleetBenchPackets records probe.packets_sent per worker count so each
// sub-benchmark can assert the probing effort is schedule-invariant.
var fleetBenchPackets sync.Map

func benchFleet(b *testing.B, workers int) {
	prof := fleetBenchProfile()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w := NewWorld(prof, 1)
		b.StartTimer()
		if _, err := w.Scenario().RunFleet(scamper.Config{Pace: fleetBenchPace},
			eval.FleetOptions{Workers: workers}); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		for vp, res := range w.Scenario().Results {
			if res == nil {
				b.Fatalf("vp %d produced no result", vp)
			}
		}
		pkts := w.Snapshot().Counter("probe.packets_sent")
		b.ReportMetric(float64(pkts), "packets/op")
		if prev, ok := fleetBenchPackets.LoadOrStore(workers, pkts); ok && prev.(int64) != pkts {
			b.Fatalf("probe count drifted across iterations: %d then %d", prev, pkts)
		}
		fleetBenchPackets.Range(func(k, v any) bool {
			if v.(int64) != pkts {
				b.Fatalf("probe count depends on worker count: workers=%d sent %d, workers=%d sent %d",
					workers, pkts, k, v)
			}
			return true
		})
		b.StartTimer()
	}
}

func BenchmarkFleetVsSequential(b *testing.B) {
	b.Run("workers=1", func(b *testing.B) { benchFleet(b, 1) })
	b.Run("workers=4", func(b *testing.B) { benchFleet(b, 4) })
}
