package bdrmap

import (
	"fmt"
	"reflect"
	"testing"
)

// Differential harness for the slab inference core: every golden scenario
// runs through the frozen map-based core (Options.UseLegacyCore, the
// oracle kept for one release) and the slab core, and the outputs must be
// byte-identical — same link set, same per-router owner attributions, same
// provenance trace fingerprint. The same harness pins InferWorkers=1
// against InferWorkers=8, discharging the claim that equal-hop parallelism
// cannot change the inferred map. Run under -race these tests double as
// the data-race check on the parallel sweep.

// ownerRow is the stable serialization of one router's attribution.
type ownerRow struct {
	Addrs     string
	Owner     string
	Heuristic string
	IsHost    bool
	HopDist   int
}

func ownerRows(rep *Report) []ownerRow {
	res := rep.Raw()
	out := make([]ownerRow, 0, len(res.Routers))
	for _, rn := range res.Routers {
		addrs := ""
		for i, a := range rn.Addrs {
			if i > 0 {
				addrs += ","
			}
			addrs += a.String()
		}
		out = append(out, ownerRow{
			Addrs:     addrs,
			Owner:     rn.Owner.String(),
			Heuristic: string(rn.Heuristic),
			IsHost:    rn.IsHost,
			HopDist:   rn.HopDist,
		})
	}
	return out
}

// diffReports asserts two runs of the same scenario produced byte-identical
// maps: link sets, owner attributions, and trace fingerprints.
func diffReports(t *testing.T, wantName, gotName string, want, got *Report, wantFP, gotFP string) {
	t.Helper()
	if wl, gl := goldenLinks(want), goldenLinks(got); !reflect.DeepEqual(wl, gl) {
		t.Errorf("link sets diverged\n%s (%d links): %s\n%s (%d links): %s",
			wantName, len(wl), mustJSON(wl), gotName, len(gl), mustJSON(gl))
	}
	if wo, do := ownerRows(want), ownerRows(got); !reflect.DeepEqual(wo, do) {
		t.Errorf("owner attributions diverged\n%s (%d routers): %s\n%s (%d routers): %s",
			wantName, len(wo), mustJSON(wo), gotName, len(do), mustJSON(do))
	}
	if wantFP != gotFP {
		t.Errorf("trace fingerprints diverged: %s=%s %s=%s", wantName, wantFP, gotName, gotFP)
	}
}

// TestDifferentialLegacyVsSlab runs the golden (profile, seed) scenarios
// through both cores.
func TestDifferentialLegacyVsSlab(t *testing.T) {
	cases := []struct {
		name string
		prof Profile
	}{
		{"tiny", Tiny()},
		{"small-access", SmallAccess()},
	}
	for _, tc := range cases {
		for _, seed := range []int64{1, 2} {
			t.Run(fmt.Sprintf("%s-seed%d", tc.name, seed), func(t *testing.T) {
				lw := NewWorld(tc.prof, seed)
				lrep := lw.MapBordersOpts(0, Options{UseLegacyCore: true})
				sw := NewWorld(tc.prof, seed)
				srep := sw.MapBordersOpts(0, Options{})
				if len(srep.Links) == 0 {
					t.Fatal("no links inferred")
				}
				diffReports(t, "legacy", "slab", lrep, srep,
					lw.TraceFingerprint(), sw.TraceFingerprint())
			})
		}
	}
}

// TestDifferentialInferWorkers pins the parallel sweep against the
// sequential one on the same scenarios.
func TestDifferentialInferWorkers(t *testing.T) {
	cases := []struct {
		name string
		prof Profile
	}{
		{"tiny", Tiny()},
		{"small-access", SmallAccess()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w1 := NewWorld(tc.prof, 1)
			rep1 := w1.MapBordersOpts(0, Options{InferWorkers: 1})
			w8 := NewWorld(tc.prof, 1)
			rep8 := w8.MapBordersOpts(0, Options{InferWorkers: 8})
			diffReports(t, "workers=1", "workers=8", rep1, rep8,
				w1.TraceFingerprint(), w8.TraceFingerprint())
		})
	}
}

// TestDifferentialRemoteChaos replays the remote-tiny chaos seeds through
// both cores: the degraded (partial) datasets must infer identically.
func TestDifferentialRemoteChaos(t *testing.T) {
	specs := []struct{ name, spec string }{
		{"drop", "seed=11,drop=0.12,heal=40"},
		{"corrupt-dup", "seed=23,corrupt=0.08,dup=0.08,heal=40"},
	}
	for _, tc := range specs {
		t.Run(tc.name, func(t *testing.T) {
			lw := NewWorld(Tiny(), 1)
			lrep, err := lw.MapBordersRemote(0, RemoteOptions{FaultSpec: tc.spec, UseLegacyCore: true})
			if err != nil {
				t.Fatal(err)
			}
			sw := NewWorld(Tiny(), 1)
			srep, err := sw.MapBordersRemote(0, RemoteOptions{FaultSpec: tc.spec, InferWorkers: 8})
			if err != nil {
				t.Fatal(err)
			}
			diffReports(t, "legacy", "slab", lrep, srep,
				lw.TraceFingerprint(), sw.TraceFingerprint())
		})
	}
}
