package bdrmap

import (
	"fmt"
	"reflect"
	"testing"

	"bdrmap/internal/core"
	"bdrmap/internal/eval"
	"bdrmap/internal/scamper"
)

// Differential harness for the fleet coordinator: every golden scenario
// runs through the sequential one-worker coordinator (MapAll) and through
// wider fleets — workers 4 and 8, adversarial enqueue orders, remote
// transports under healing fault schedules — and the outputs must be
// byte-identical: same per-VP link sets and owner attributions, same
// merged map, same provenance trace fingerprint, same span-tree
// fingerprint. The same harness pins InferWorkers=1 against
// InferWorkers=8, discharging the claim that equal-hop parallelism cannot
// change the inferred map. Run under -race these tests double as the
// data-race check on the worker pool and the parallel sweep.

// ownerRow is the stable serialization of one router's attribution.
type ownerRow struct {
	Addrs     string
	Owner     string
	Heuristic string
	IsHost    bool
	HopDist   int
}

func ownerRows(rep *Report) []ownerRow {
	res := rep.Raw()
	out := make([]ownerRow, 0, len(res.Routers))
	for _, rn := range res.Routers {
		addrs := ""
		for i, a := range rn.Addrs {
			if i > 0 {
				addrs += ","
			}
			addrs += a.String()
		}
		out = append(out, ownerRow{
			Addrs:     addrs,
			Owner:     rn.Owner.String(),
			Heuristic: string(rn.Heuristic),
			IsHost:    rn.IsHost,
			HopDist:   rn.HopDist,
		})
	}
	return out
}

// diffReports asserts two runs of the same scenario produced byte-identical
// maps: link sets, owner attributions, and trace fingerprints.
func diffReports(t *testing.T, wantName, gotName string, want, got *Report, wantFP, gotFP string) {
	t.Helper()
	if wl, gl := goldenLinks(want), goldenLinks(got); !reflect.DeepEqual(wl, gl) {
		t.Errorf("link sets diverged\n%s (%d links): %s\n%s (%d links): %s",
			wantName, len(wl), mustJSON(wl), gotName, len(gl), mustJSON(gl))
	}
	if wo, do := ownerRows(want), ownerRows(got); !reflect.DeepEqual(wo, do) {
		t.Errorf("owner attributions diverged\n%s (%d routers): %s\n%s (%d routers): %s",
			wantName, len(wo), mustJSON(wo), gotName, len(do), mustJSON(do))
	}
	if wantFP != gotFP {
		t.Errorf("trace fingerprints diverged: %s=%s %s=%s", wantName, wantFP, gotName, gotFP)
	}
}

// diffWorlds compares two worlds VP by VP plus their merged maps and both
// observability fingerprints.
func diffWorlds(t *testing.T, seqName, fltName string, seq, flt *World, seqReps, fltReps []*Report) {
	t.Helper()
	if len(seqReps) != len(fltReps) {
		t.Fatalf("%s has %d reports, %s has %d", seqName, len(seqReps), fltName, len(fltReps))
	}
	for i := range seqReps {
		if seqReps[i] == nil || fltReps[i] == nil {
			t.Fatalf("vp %d: nil report (%s=%v %s=%v)", i, seqName, seqReps[i] == nil, fltName, fltReps[i] == nil)
		}
		diffReports(t, seqName, fltName, seqReps[i], fltReps[i],
			seq.TraceFingerprint(), flt.TraceFingerprint())
	}
	sm := core.Merge(seq.Scenario().Results)
	fm := core.Merge(flt.Scenario().Results)
	if !reflect.DeepEqual(sm, fm) {
		t.Errorf("merged maps diverged: %s %d links, %s %d links",
			seqName, sm.LinkCount(), fltName, fm.LinkCount())
	}
	if sf, ff := seq.SpanFingerprint(), flt.SpanFingerprint(); sf != ff {
		t.Errorf("span fingerprints diverged: %s=%s %s=%s", seqName, sf, fltName, ff)
	}
}

// TestDifferentialSequentialVsFleet runs the golden (profile, seed)
// scenarios through the sequential coordinator and 4- and 8-worker fleets.
func TestDifferentialSequentialVsFleet(t *testing.T) {
	cases := []struct {
		name string
		prof Profile
	}{
		{"tiny", Tiny()},
		{"regional-vp", RegionalVP()},
	}
	for _, tc := range cases {
		for _, seed := range []int64{1, 2} {
			seq := NewWorld(tc.prof, seed)
			seqReps := seq.MapAll()
			for _, workers := range []int{4, 8} {
				t.Run(fmt.Sprintf("%s-seed%d-workers%d", tc.name, seed, workers), func(t *testing.T) {
					flt := NewWorld(tc.prof, seed)
					fltReps, err := flt.MapAllFleet(FleetOptions{Workers: workers})
					if err != nil {
						t.Fatal(err)
					}
					if len(seqReps[0].Links) == 0 {
						t.Fatal("no links inferred")
					}
					diffWorlds(t, "sequential", fmt.Sprintf("workers=%d", workers), seq, flt, seqReps, fltReps)
				})
			}
		}
	}
}

// TestDifferentialFleetAdversarialOrder permutes the enqueue order so
// completion order inverts, and requires the same bytes anyway.
func TestDifferentialFleetAdversarialOrder(t *testing.T) {
	seq := NewWorld(RegionalVP(), 1)
	seqReps := seq.MapAll()

	flt := NewWorld(RegionalVP(), 1)
	n := flt.NumVPs()
	order := make([]int, n)
	for i := range order {
		order[i] = n - 1 - i
	}
	if _, err := flt.Scenario().RunFleet(scamper.Config{}, eval.FleetOptions{
		Workers: 8, Order: order,
	}); err != nil {
		t.Fatal(err)
	}
	fltReps := make([]*Report, n)
	for i, res := range flt.Scenario().Results {
		fltReps[i] = flt.buildReport(res)
	}
	diffWorlds(t, "sequential", "reversed-order", seq, flt, seqReps, fltReps)
}

// TestDifferentialInferWorkers pins the parallel sweep against the
// sequential one on the same scenarios.
func TestDifferentialInferWorkers(t *testing.T) {
	cases := []struct {
		name string
		prof Profile
	}{
		{"tiny", Tiny()},
		{"small-access", SmallAccess()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w1 := NewWorld(tc.prof, 1)
			rep1 := w1.MapBordersOpts(0, Options{InferWorkers: 1})
			w8 := NewWorld(tc.prof, 1)
			rep8 := w8.MapBordersOpts(0, Options{InferWorkers: 8})
			diffReports(t, "workers=1", "workers=8", rep1, rep8,
				w1.TraceFingerprint(), w8.TraceFingerprint())
		})
	}
}

// TestDifferentialRemoteChaos replays the remote-tiny chaos seeds through
// the standalone remote runner and a fleet remote shard: the degraded
// (partial) datasets must infer identically.
func TestDifferentialRemoteChaos(t *testing.T) {
	specs := []struct{ name, spec string }{
		{"drop", "seed=11,drop=0.12,heal=40"},
		{"corrupt-dup", "seed=23,corrupt=0.08,dup=0.08,heal=40"},
	}
	for _, tc := range specs {
		t.Run(tc.name, func(t *testing.T) {
			sw := NewWorld(Tiny(), 1)
			srep, err := sw.MapBordersRemote(0, RemoteOptions{FaultSpec: tc.spec, InferWorkers: 8})
			if err != nil {
				t.Fatal(err)
			}
			fw := NewWorld(Tiny(), 1)
			if _, err := fw.Scenario().RunFleet(scamper.Config{}, eval.FleetOptions{
				Workers: 4,
				VPs:     map[int]eval.FleetVP{0: {Remote: true, FaultSpecs: []string{tc.spec}}},
			}); err != nil {
				t.Fatal(err)
			}
			res := fw.Scenario().Results[0]
			if res == nil {
				t.Fatal("fleet remote shard produced no result")
			}
			frep := fw.buildReport(res)
			diffReports(t, "standalone", "fleet", srep, frep,
				sw.TraceFingerprint(), fw.TraceFingerprint())
		})
	}
}
