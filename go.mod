module bdrmap

go 1.22
