package bdrmap

import "testing"

func TestQuickstartFlow(t *testing.T) {
	w := NewWorld(Tiny(), 1)
	if w.HostASN() == 0 || w.NumVPs() != 1 {
		t.Fatalf("world: host=%v vps=%d", w.HostASN(), w.NumVPs())
	}
	rep := w.MapBorders(0)
	if len(rep.Links) == 0 {
		t.Fatal("no links inferred")
	}
	if rep.Accuracy() < 0.9 {
		t.Errorf("accuracy %.3f", rep.Accuracy())
	}
	if rep.VPName != w.VPName(0) {
		t.Errorf("VP name mismatch: %q vs %q", rep.VPName, w.VPName(0))
	}
	if len(rep.NeighborASes()) == 0 {
		t.Fatal("no neighbors")
	}
	for _, l := range rep.Links {
		if l.FarAS == w.HostASN() {
			t.Errorf("link to self: %v", l)
		}
		if len(l.String()) == 0 {
			t.Error("empty link rendering")
		}
	}
}

func TestMapBordersCached(t *testing.T) {
	w := NewWorld(Tiny(), 2)
	a := w.MapBorders(0)
	b := w.MapBorders(0)
	if len(a.Links) != len(b.Links) {
		t.Fatal("repeated mapping differs")
	}
}

func TestTable1Renders(t *testing.T) {
	w := NewWorld(Tiny(), 3)
	out := w.Table1(0)
	if len(out) < 50 {
		t.Fatalf("table too short:\n%s", out)
	}
}

func TestDisableAliasOption(t *testing.T) {
	a := NewWorld(Tiny(), 4).MapBordersOpts(0, Options{})
	b := NewWorld(Tiny(), 4).MapBordersOpts(0, Options{DisableAlias: true})
	if a.Total == 0 || b.Total == 0 {
		t.Fatal("empty runs")
	}
	// Disabling alias resolution must never improve accuracy.
	if b.Accuracy() > a.Accuracy()+1e-9 {
		t.Errorf("no-alias accuracy %.3f > baseline %.3f", b.Accuracy(), a.Accuracy())
	}
}

func TestMergedMap(t *testing.T) {
	w := NewWorld(Tiny(), 5)
	m := w.MergedMap()
	if m.LinkCount() == 0 || len(m.VPs) != w.NumVPs() {
		t.Fatalf("merged map: %d links, %d VPs", m.LinkCount(), len(m.VPs))
	}
	if len(m.NeighborASes()) == 0 {
		t.Fatal("no neighbors in merged map")
	}
}

func TestExportProducesJSONL(t *testing.T) {
	w := NewWorld(Tiny(), 6)
	var buf bytesBuffer
	if err := w.Export(0, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.n == 0 {
		t.Fatal("nothing exported")
	}
}

// bytesBuffer avoids importing bytes just for one test.
type bytesBuffer struct{ n int }

func (b *bytesBuffer) Write(p []byte) (int, error) { b.n += len(p); return len(p), nil }

func TestProfilesExposed(t *testing.T) {
	for _, p := range []Profile{Tiny(), RE(), SmallAccess(), LargeAccess(), Tier1()} {
		if p.Name == "" || p.NumVPs < 1 {
			t.Errorf("bad profile: %+v", p.Name)
		}
	}
}
