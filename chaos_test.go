package bdrmap

// chaos_test.go is the end-to-end chaos regression suite: the full
// pipeline runs over the §5.8 remote-control protocol with deterministic
// fault injection on the agent link. A HEALING fault schedule (the link
// misbehaves, then recovers) must reproduce the fault-free border map
// byte-for-byte — retries, duplicate suppression, and session resume make
// transport faults invisible to inference. A PERMANENT loss must
// terminate promptly with the surviving partial map, never hang.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"bdrmap/internal/goldenguard"
)

func remoteGoldenPath(name string, seed int64) string {
	return filepath.Join("testdata", "golden", fmt.Sprintf("remote-%s-seed%d.json", name, seed))
}

func loadGolden(t *testing.T, path string) []goldenLink {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run TestGoldenBordersRemote -update ./`): %v", err)
	}
	var want []goldenLink
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("corrupt golden file %s: %v", path, err)
	}
	return want
}

// TestGoldenBordersRemote pins the fault-free remote runs, the baseline the
// chaos schedules must reproduce. Remote runs get their own goldens
// because they are single-worker by construction; the local goldens cover
// the parallel lane schedule.
func TestGoldenBordersRemote(t *testing.T) {
	cases := []struct {
		name  string
		prof  Profile
		seeds []int64
	}{
		{"tiny", Tiny(), []int64{1, 2, 3}},
		{"remote-peering", RemotePeering(), []int64{1}},
		{"hypergiant", Hypergiant(), []int64{1}},
		{"route-server", RouteServerMix(), []int64{1}},
		{"regional-vp", RegionalVP(), []int64{1}},
	}
	for _, tc := range cases {
		for _, seed := range tc.seeds {
			tc, seed := tc, seed
			t.Run(fmt.Sprintf("%s-seed%d", tc.name, seed), func(t *testing.T) {
				world := NewWorld(tc.prof, seed)
				rep, err := world.MapBordersRemote(0, RemoteOptions{})
				if err != nil {
					t.Fatal(err)
				}
				got := goldenLinks(rep)
				path := remoteGoldenPath(tc.name, seed)

				if *update {
					goldenguard.Check(t)
					raw, err := json.MarshalIndent(got, "", "  ")
					if err != nil {
						t.Fatal(err)
					}
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
						t.Fatal(err)
					}
					t.Logf("wrote %s (%d links)", path, len(got))
					return
				}

				want := loadGolden(t, path)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("remote link set diverged from %s\ngot  (%d links): %s\nwant (%d links): %s",
						path, len(got), mustJSON(got), len(want), mustJSON(want))
				}
				if lost := world.Scenario().Datasets[0].Stats.TargetsLost; lost != 0 {
					t.Errorf("fault-free remote run lost %d targets", lost)
				}
			})
		}
	}
}

// TestChaosHealingReproducesGolden injects healing fault schedules — the
// link drops, corrupts, duplicates, stalls, and cuts frames until the
// fault budget is spent, then behaves — and requires the EXACT fault-free
// golden link set back, plus proof the recovery machinery actually fired.
func TestChaosHealingReproducesGolden(t *testing.T) {
	specs := []struct {
		name, spec string
		wantResume bool // cut schedules must exercise session resume
	}{
		{"drop", "seed=11,drop=0.12,heal=40", false},
		{"corrupt-dup", "seed=23,corrupt=0.08,dup=0.08,heal=40", false},
		{"stall-cut", "seed=37,stall=0.05,stallfor=20ms,cut=0.02,heal=25", true},
		{"kitchen-sink", "seed=53,drop=0.05,corrupt=0.04,dup=0.04,cut=0.02,heal=30", true},
	}
	for _, tc := range specs {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			world := NewWorld(Tiny(), 1)
			rep, err := world.MapBordersRemote(0, RemoteOptions{FaultSpec: tc.spec})
			if err != nil {
				t.Fatal(err)
			}
			got := goldenLinks(rep)
			want := loadGolden(t, remoteGoldenPath("tiny", 1))
			if !reflect.DeepEqual(got, want) {
				t.Errorf("spec %q changed the border map\ngot  (%d links): %s\nwant (%d links): %s",
					tc.spec, len(got), mustJSON(got), len(want), mustJSON(want))
			}

			m := world.Snapshot()
			recovered := m.Counter("remote.retry.read") +
				m.Counter("remote.retry.write") +
				m.Counter("remote.retry.corrupt") +
				m.Counter("remote.resume") +
				m.Counter("remote.hello_failed")
			if recovered == 0 {
				t.Errorf("spec %q injected no observable faults:\n%s", tc.spec, m.Format())
			}
			if tc.wantResume && m.Counter("remote.resume") == 0 {
				t.Errorf("spec %q cut connections but never resumed the session", tc.spec)
			}
			if lost := m.Counter("remote.session_lost"); lost != 0 {
				t.Errorf("healing spec %q lost %d session(s)", tc.spec, lost)
			}
			if lost := world.Scenario().Datasets[0].Stats.TargetsLost; lost != 0 {
				t.Errorf("healing spec %q abandoned %d target(s)", tc.spec, lost)
			}
		})
	}
}

// TestChaosHealingScenarios runs one healing kitchen-sink schedule over
// each extension scenario and requires that scenario's fault-free remote
// golden back byte-for-byte: transport chaos must be invisible regardless
// of what the topology stresses — remote-peering's WAN-scale RTTs,
// hypergiant fanout, route-server session mixes, or a single-region VP.
func TestChaosHealingScenarios(t *testing.T) {
	cases := []struct {
		name string
		prof Profile
		spec string
	}{
		{"remote-peering", RemotePeering(), "seed=61,drop=0.05,corrupt=0.04,dup=0.04,heal=30"},
		{"hypergiant", Hypergiant(), "seed=67,drop=0.05,dup=0.04,cut=0.02,heal=30"},
		{"route-server", RouteServerMix(), "seed=71,drop=0.05,corrupt=0.04,cut=0.02,heal=30"},
		{"regional-vp", RegionalVP(), "seed=73,drop=0.08,dup=0.05,heal=35"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			world := NewWorld(tc.prof, 1)
			rep, err := world.MapBordersRemote(0, RemoteOptions{FaultSpec: tc.spec})
			if err != nil {
				t.Fatal(err)
			}
			got := goldenLinks(rep)
			want := loadGolden(t, remoteGoldenPath(tc.name, 1))
			if !reflect.DeepEqual(got, want) {
				t.Errorf("spec %q changed the %s border map\ngot  (%d links): %s\nwant (%d links): %s",
					tc.spec, tc.name, len(got), mustJSON(got), len(want), mustJSON(want))
			}
			m := world.Snapshot()
			recovered := m.Counter("remote.retry.read") +
				m.Counter("remote.retry.write") +
				m.Counter("remote.retry.corrupt") +
				m.Counter("remote.resume") +
				m.Counter("remote.hello_failed")
			if recovered == 0 {
				t.Errorf("spec %q injected no observable faults:\n%s", tc.spec, m.Format())
			}
			if lost := m.Counter("remote.session_lost"); lost != 0 {
				t.Errorf("healing spec %q lost %d session(s)", tc.spec, lost)
			}
		})
	}
}

// TestChaosEarlyKillFailsFast severs the link before the handshake can ever
// complete (kill=1 fires on the hello frame): no session forms, the agent
// exhausts its redials, and the run must fail promptly with an error rather
// than block forever waiting for a connection that cannot arrive.
func TestChaosEarlyKillFailsFast(t *testing.T) {
	errc := make(chan error, 1)
	go func() {
		world := NewWorld(Tiny(), 1)
		_, err := world.MapBordersRemote(0, RemoteOptions{FaultSpec: "seed=1,kill=1"})
		errc <- err
	}()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("early kill produced a report despite no session ever forming")
		}
	case <-time.After(60 * time.Second):
		t.Fatal("early kill hung the run past the 60s watchdog")
	}
}

// TestChaosPermanentLossTerminates kills the agent for good mid-run: the
// driver must degrade — abandoning the unreachable targets, keeping what
// was measured — and the whole run must finish well inside the watchdog
// instead of hanging on a peer that will never answer.
func TestChaosPermanentLossTerminates(t *testing.T) {
	var (
		world *World
		rep   *Report
		err   error
	)
	done := make(chan struct{})
	go func() {
		defer close(done)
		world = NewWorld(Tiny(), 1)
		rep, err = world.MapBordersRemote(0, RemoteOptions{FaultSpec: "seed=3,kill=30"})
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("permanent VP loss hung the run past the 60s watchdog")
	}
	if err != nil {
		t.Fatalf("permanent loss must degrade, not error: %v", err)
	}
	if rep == nil {
		t.Fatal("no report from degraded run")
	}

	m := world.Snapshot()
	if m.Counter("remote.session_lost") == 0 {
		t.Errorf("killed agent not reported as a lost session:\n%s", m.Format())
	}
	if m.Counter("driver.target.lost") == 0 {
		t.Error("no targets recorded as lost after permanent agent death")
	}
	if lost := world.Scenario().Datasets[0].Stats.TargetsLost; lost == 0 {
		t.Error("Stats.TargetsLost is zero after permanent agent death")
	}
	// The partial map must be strictly smaller than the healthy one — the
	// agent died early enough (frame 30) that most targets were lost —
	// yet nonempty: what was measured before the death survives.
	want := loadGolden(t, remoteGoldenPath("tiny", 1))
	if len(rep.Links) >= len(want) {
		t.Errorf("degraded run inferred %d links, healthy run %d — kill came too late to test degradation",
			len(rep.Links), len(want))
	}
	if len(rep.Links) == 0 {
		t.Error("degradation discarded everything measured before the agent died")
	}
}
