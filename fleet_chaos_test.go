package bdrmap

// fleet_chaos_test.go is the coordinator half of the chaos suite: agents
// die mid-shard and the FLEET — not just one hardened session — must heal.
// A kill schedule that permanently destroys a shard's first session is
// retried by the coordinator: the replacement agent redials, the shard's
// surviving RoundState replays every target completed before the kill, and
// the final merged map must be byte-identical to the fault-free run. The
// straggler test pins the quorum-publish semantics end to end through
// mapdb: the partial generation names the late VP degraded, and the
// follow-up full generation heals it with an additions-only GenDiff.

import (
	"reflect"
	"testing"
	"time"

	"bdrmap/internal/eval"
	"bdrmap/internal/fleet"
	"bdrmap/internal/mapdb"
	"bdrmap/internal/scamper"
)

// TestFleetChaosKillRedialReplays kills the remote shard's session for
// good at frame 30 of attempt 0. The coordinator must spend a retry, the
// fresh agent must redial, the shard's RoundState must replay what the
// dead session already measured, and the final links must match the
// fault-free remote golden byte-for-byte.
func TestFleetChaosKillRedialReplays(t *testing.T) {
	world := NewWorld(Tiny(), 1)
	sum, err := world.Scenario().RunFleet(scamper.Config{}, eval.FleetOptions{
		Workers: 2,
		Retries: 1,
		States:  []*scamper.RoundState{scamper.NewRoundState()},
		VPs: map[int]eval.FleetVP{
			0: {Remote: true, FaultSpecs: []string{"seed=3,kill=30", ""}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sum.Shards[0].State; got != fleet.Done {
		t.Fatalf("shard state = %v (err %v), want done", got, sum.Shards[0].Err)
	}
	if got := sum.Shards[0].Attempts; got != 2 {
		t.Fatalf("shard took %d attempts, want 2 (kill, then clean retry)", got)
	}

	m := world.Snapshot()
	if m.Counter("fleet.retries") == 0 {
		t.Error("coordinator never spent a retry on the killed shard")
	}
	if m.Counter("remote.session_lost") == 0 {
		t.Errorf("killed agent not reported as a lost session:\n%s", m.Format())
	}
	if m.Counter("rounds.cache.hit") == 0 {
		t.Error("retry replayed nothing from the surviving RoundState")
	}
	if lost := world.Scenario().Datasets[0].Stats.TargetsLost; lost != 0 {
		t.Errorf("healed fleet run still reports %d lost target(s)", lost)
	}

	rep := world.buildReport(world.Scenario().Results[0])
	got := goldenLinks(rep)
	want := loadGolden(t, remoteGoldenPath("tiny", 1))
	if !reflect.DeepEqual(got, want) {
		t.Errorf("healed fleet map diverged from the fault-free golden\ngot  (%d links): %s\nwant (%d links): %s",
			len(got), mustJSON(got), len(want), mustJSON(want))
	}
}

// TestFleetStragglerQuorumHealsGenDiff gates one of regional-vp's three
// VPs behind a channel so it cannot finish before quorum. The quorum-time
// partial generation must mark exactly that VP degraded in the published
// mapdb snapshot, and the final full generation must heal it with a
// GenDiff that only adds — nothing served by the partial generation may
// vanish or change owner.
func TestFleetStragglerQuorumHealsGenDiff(t *testing.T) {
	world := NewWorld(RegionalVP(), 1)
	s := world.Scenario()
	store := mapdb.NewStore(0, s.Obs)
	straggler := s.Net.VPs[2].Name
	release := make(chan struct{})

	done := make(chan error, 1)
	go func() {
		_, err := s.RunFleet(scamper.Config{}, eval.FleetOptions{
			Workers: 3,
			Quorum:  2,
			Gate: func(vp int) {
				if vp == 2 {
					<-release
				}
			},
			OnPublish: func(ev fleet.PublishEvent) {
				snap := mapdb.Compile(s.Net.HostASN, ev.Results)
				if !ev.Final {
					snap.MarkDegraded(ev.Degraded)
				}
				store.Publish(snap)
				if !ev.Final {
					close(release) // let the straggler finish only after the partial is out
				}
			},
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("quorum fleet hung past the 60s watchdog")
	}

	partial, ok := store.Generation(1)
	if !ok {
		t.Fatal("quorum publish never reached the store")
	}
	if !partial.Partial() {
		t.Error("quorum-time generation not marked partial")
	}
	if got := partial.Degraded(); !reflect.DeepEqual(got, []string{straggler}) {
		t.Errorf("degraded VPs = %v, want [%s]", got, straggler)
	}
	final, ok := store.Generation(2)
	if !ok {
		t.Fatal("final generation never reached the store")
	}
	if final.Partial() {
		t.Errorf("final generation still marked partial (degraded %v)", final.Degraded())
	}
	if len(final.VPs()) != 3 {
		t.Errorf("final generation compiled %d VPs, want 3", len(final.VPs()))
	}

	d, err := store.Diff(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Removed) != 0 || len(d.NeighborsRemoved) != 0 {
		t.Errorf("healing diff removed %d link(s) and %d neighbor(s); a late VP must only add",
			len(d.Removed), len(d.NeighborsRemoved))
	}
	if len(d.OwnerChanges) != 0 {
		t.Errorf("healing diff changed %d owner attribution(s): %v", len(d.OwnerChanges), d.OwnerChanges)
	}

	m := world.Snapshot()
	if got := m.Counter("fleet.publish.partial"); got != 1 {
		t.Errorf("fleet.publish.partial = %d, want 1", got)
	}
	if got := m.Counter("fleet.degraded.at_quorum"); got != 1 {
		t.Errorf("fleet.degraded.at_quorum = %d, want 1", got)
	}
}

// TestFleetStragglerDegradedDiffMarks pins the degraded-artifact marks on
// GenDiff end to end through the fleet: a full generation, then a
// quorum-gated rerun of the identical world publishing a partial and its
// healed successor. The straggler's links vanish in the full→partial diff
// and reappear in partial→full — churn that is a measurement artifact, not
// a border moving — so both diffs touching the partial must report
// Degraded() with the straggler named, while the full→full diff spanning
// it is unmarked and empty. A consumer discounting marked frames (tslpmon
// -watch) therefore sees zero flaps from the whole episode.
func TestFleetStragglerDegradedDiffMarks(t *testing.T) {
	store := mapdb.NewStore(0, nil)
	var straggler string

	// Generation 1: all three VPs, fault-free.
	{
		s := NewWorld(RegionalVP(), 1).Scenario()
		if _, err := s.RunFleet(scamper.Config{}, eval.FleetOptions{Workers: 3}); err != nil {
			t.Fatal(err)
		}
		store.Publish(mapdb.Compile(s.Net.HostASN, s.Results))
	}

	// Generations 2 (quorum partial, VP 2 gated) and 3 (healed): the same
	// world regenerated, so the healed map is byte-identical to gen 1.
	{
		s := NewWorld(RegionalVP(), 1).Scenario()
		straggler = s.Net.VPs[2].Name
		release := make(chan struct{})
		done := make(chan error, 1)
		go func() {
			_, err := s.RunFleet(scamper.Config{}, eval.FleetOptions{
				Workers: 3,
				Quorum:  2,
				Gate: func(vp int) {
					if vp == 2 {
						<-release
					}
				},
				OnPublish: func(ev fleet.PublishEvent) {
					snap := mapdb.Compile(s.Net.HostASN, ev.Results)
					if !ev.Final {
						snap.MarkDegraded(ev.Degraded)
					}
					store.Publish(snap)
					if !ev.Final {
						close(release)
					}
				},
			})
			done <- err
		}()
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(60 * time.Second):
			t.Fatal("quorum fleet hung past the 60s watchdog")
		}
	}

	into, err := store.Diff(1, 2) // full → partial
	if err != nil {
		t.Fatal(err)
	}
	if into.FromPartial || !into.ToPartial {
		t.Errorf("full→partial diff marks: FromPartial=%v ToPartial=%v, want false/true",
			into.FromPartial, into.ToPartial)
	}
	if !into.Degraded() {
		t.Error("full→partial diff not marked Degraded()")
	}
	if !reflect.DeepEqual(into.DegradedVPs, []string{straggler}) {
		t.Errorf("full→partial DegradedVPs = %v, want [%s]", into.DegradedVPs, straggler)
	}
	if len(into.Removed) == 0 {
		t.Error("straggler's links did not vanish in the partial — the artifact churn these marks exist for")
	}

	out, err := store.Diff(2, 3) // partial → healed
	if err != nil {
		t.Fatal(err)
	}
	if !out.FromPartial || out.ToPartial {
		t.Errorf("partial→full diff marks: FromPartial=%v ToPartial=%v, want true/false",
			out.FromPartial, out.ToPartial)
	}
	if !out.Degraded() {
		t.Error("partial→full diff not marked Degraded()")
	}

	span, err := store.Diff(1, 3) // full → full, spanning the partial
	if err != nil {
		t.Fatal(err)
	}
	if span.Degraded() {
		t.Errorf("full→full spanning diff marked degraded (DegradedVPs %v): the artifact leaked past the episode",
			span.DegradedVPs)
	}
	if !span.Empty() {
		t.Errorf("full→full spanning diff not empty: +%d/-%d links, %d owner change(s) — identical worlds must produce identical maps",
			len(span.Added), len(span.Removed), len(span.OwnerChanges))
	}
}
