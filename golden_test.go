package bdrmap

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"bdrmap/internal/goldenguard"
)

// update rewrites the golden files instead of comparing against them:
//
//	go test -run TestGoldenBorders -update ./
//
// Review the resulting testdata/golden/*.json diff before committing — a
// golden change means the inferred border map changed.
var update = flag.Bool("update", false, "rewrite testdata/golden files")

// goldenLink is the stable serialization of one inferred link.
type goldenLink struct {
	Near      string `json:"near"`
	Far       string `json:"far"`
	FarAS     string `json:"far_as"`
	Heuristic string `json:"heuristic"`
}

func goldenLinks(rep *Report) []goldenLink {
	out := make([]goldenLink, 0, len(rep.Links))
	for _, l := range rep.Links {
		far := l.FarAddr.String()
		if l.FarAddr.IsZero() {
			far = "silent"
		}
		out = append(out, goldenLink{
			Near:      l.NearAddr.String(),
			Far:       far,
			FarAS:     l.FarAS.String(),
			Heuristic: l.Heuristic,
		})
	}
	return out
}

// TestGoldenBorders is the end-to-end regression harness: the exact
// inferred link set for fixed (profile, seed) pairs, compared against
// checked-in golden files. Any change to the topology generator, BGP
// propagation, probing schedule, alias resolution, or inference heuristics
// that alters the output shows up as a diff here.
func TestGoldenBorders(t *testing.T) {
	cases := []struct {
		name  string
		prof  Profile
		seeds []int64
	}{
		{"tiny", Tiny(), []int64{1, 2, 3}},
		{"re", RE(), []int64{1, 2, 3}},
		// Extension scenarios (see DESIGN.md, "Scenario catalog"): one
		// seed each — the point is the exact link set under the stressed
		// assumption, not seed sensitivity.
		{"remote-peering", RemotePeering(), []int64{1}},
		{"hypergiant", Hypergiant(), []int64{1}},
		{"route-server", RouteServerMix(), []int64{1}},
		{"regional-vp", RegionalVP(), []int64{1}},
	}
	for _, tc := range cases {
		for _, seed := range tc.seeds {
			t.Run(fmt.Sprintf("%s-seed%d", tc.name, seed), func(t *testing.T) {
				world := NewWorld(tc.prof, seed)
				rep := world.MapBorders(0)
				got := goldenLinks(rep)
				path := filepath.Join("testdata", "golden",
					fmt.Sprintf("%s-seed%d.json", tc.name, seed))

				if *update {
					goldenguard.Check(t)
					raw, err := json.MarshalIndent(got, "", "  ")
					if err != nil {
						t.Fatal(err)
					}
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
						t.Fatal(err)
					}
					t.Logf("wrote %s (%d links)", path, len(got))
					return
				}

				raw, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file (run `go test -run TestGoldenBorders -update ./`): %v", err)
				}
				var want []goldenLink
				if err := json.Unmarshal(raw, &want); err != nil {
					t.Fatalf("corrupt golden file %s: %v", path, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("inferred link set diverged from %s\ngot  (%d links): %s\nwant (%d links): %s",
						path, len(got), mustJSON(got), len(want), mustJSON(want))
				}
			})
		}
	}
}

func mustJSON(v any) string {
	raw, _ := json.Marshal(v)
	return string(raw)
}

// TestTopologyInvariantUnderWorkers: probing concurrency must never leak
// into the world itself. The serialized topology — annotations included —
// is byte-identical whether the map was measured with 1 worker or 4.
func TestTopologyInvariantUnderWorkers(t *testing.T) {
	profiles := []struct {
		name string
		prof Profile
	}{
		{"tiny", Tiny()},
		{"remote-peering", RemotePeering()},
	}
	for _, p := range profiles {
		t.Run(p.name, func(t *testing.T) {
			serialize := func(workers int) []byte {
				world := NewWorld(p.prof, 1)
				world.MapBordersOpts(0, Options{Workers: workers})
				var buf bytes.Buffer
				if err := world.SaveWorld(&buf); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}
			if !bytes.Equal(serialize(1), serialize(4)) {
				t.Fatal("serialized topology differs between Workers=1 and Workers=4")
			}
		})
	}
}

// TestSnapshotDeterministic builds the same world twice and requires the
// deterministic portion of the metrics snapshot (everything except
// wall-clock stage timings) to be identical — the observability layer
// itself must not introduce run-to-run noise.
func TestSnapshotDeterministic(t *testing.T) {
	run := func() Metrics {
		world := NewWorld(Tiny(), 1)
		world.MapBorders(0)
		return world.Snapshot()
	}
	a, b := run(), run()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("metric fingerprints differ across identical runs\nfirst:\n%s\nsecond:\n%s",
			a.Format(), b.Format())
	}
	if a.Counter("driver.traces") == 0 || a.Counter("probe.packets_sent") == 0 {
		t.Fatalf("expected nonzero pipeline counters, got:\n%s", a.Format())
	}
}
