package bdrmap

import (
	"bytes"
	"testing"

	"bdrmap/internal/obs"
)

// normalizeWall zeroes the wall-clock duration on every span, leaving the
// deterministic portion — IDs, parents, names, details, simulated
// durations, attrs — intact for byte comparison.
func normalizeWall(recs []SpanRecord) []SpanRecord {
	out := append([]SpanRecord(nil), recs...)
	for i := range out {
		out[i].WallNS = 0
	}
	return out
}

// TestSpanTreeWorkerInvariant is the tentpole determinism claim of the
// span layer, mirroring the trace stream's: the span tree — target spans
// merged in target order, the probe stage carrying the partition-invariant
// sum of per-target simulated durations — is a pure function of (profile,
// seed, cfg), so one worker and four must produce byte-identical trees.
func TestSpanTreeWorkerInvariant(t *testing.T) {
	run := func(workers int) ([]SpanRecord, string) {
		world := NewWorld(Tiny(), 1)
		world.MapBordersOpts(0, Options{Workers: workers})
		return world.SpanRecords(), world.SpanFingerprint()
	}
	recs1, fp1 := run(1)
	recs4, fp4 := run(4)
	if fp1 != fp4 {
		t.Fatalf("span fingerprint depends on worker count:\n  workers=1 %s\n  workers=4 %s", fp1, fp4)
	}
	// Stronger than the fingerprint: the wall-normalized JSONL exports are
	// byte-identical, volatile attrs and record order included.
	var b1, b4 bytes.Buffer
	if err := obs.WriteSpanJSONL(&b1, normalizeWall(recs1)); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteSpanJSONL(&b4, normalizeWall(recs4)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b4.Bytes()) {
		t.Error("wall-normalized span JSONL differs between 1 and 4 workers")
	}

	// The tree has the documented shape: run root, vp, probe/alias/infer
	// stages, one target span per probed AS, and nonzero simulated time on
	// the probe stage.
	byName := map[string][]SpanRecord{}
	for _, r := range recs1 {
		byName[r.Name] = append(byName[r.Name], r)
	}
	for _, want := range []string{"run", "vp", "stage", "target"} {
		if len(byName[want]) == 0 {
			t.Fatalf("no %q spans in tree: %v", want, byName)
		}
	}
	stages := map[string]SpanRecord{}
	for _, r := range byName["stage"] {
		stages[r.Detail] = r
	}
	for _, want := range []string{"probe", "alias", "infer"} {
		if _, ok := stages[want]; !ok {
			t.Errorf("no %q stage span", want)
		}
	}
	if stages["probe"].SimNS == 0 {
		t.Error("probe stage span carries no simulated time")
	}
	vpID := byName["vp"][0].ID
	if stages["probe"].Parent != vpID || stages["infer"].Parent != vpID {
		t.Error("stage spans not parented under the vp span")
	}
	probeID := stages["probe"].ID
	for _, tgt := range byName["target"] {
		if tgt.Parent != probeID {
			t.Errorf("target span %v not parented under probe stage %d", tgt, probeID)
		}
	}
}

// TestSpanTreeHealingFaultsReproducible runs the same degraded remote
// session twice: retries and session resumes add agent-session spans a
// clean run would not have, but the fault schedule is deterministic, so
// two runs of it must record identical trees.
func TestSpanTreeHealingFaultsReproducible(t *testing.T) {
	run := func() ([]SpanRecord, string) {
		world := NewWorld(Tiny(), 1)
		if _, err := world.MapBordersRemote(0, RemoteOptions{FaultSpec: "seed=11,drop=0.12,heal=40"}); err != nil {
			t.Fatal(err)
		}
		return world.SpanRecords(), world.SpanFingerprint()
	}
	recsA, fpA := run()
	recsB, fpB := run()
	if fpA != fpB {
		t.Fatalf("span fingerprint not reproducible under healing faults:\n  %s\n  %s", fpA, fpB)
	}
	var bA, bB bytes.Buffer
	if err := obs.WriteSpanJSONL(&bA, normalizeWall(recsA)); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteSpanJSONL(&bB, normalizeWall(recsB)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bA.Bytes(), bB.Bytes()) {
		t.Error("wall-normalized span JSONL differs between two runs of one fault schedule")
	}
	// The remote path pulled the agent's session spans over the protocol
	// and grafted them under the vp span.
	var sessions int
	var vpID obs.SpanID
	for _, r := range recsA {
		if r.Name == "vp" {
			vpID = r.ID
		}
	}
	for _, r := range recsA {
		if r.Name == "agent-session" {
			sessions++
			if r.Parent != vpID {
				t.Errorf("agent-session span parented under %d, want vp %d", r.Parent, vpID)
			}
		}
	}
	if sessions == 0 {
		t.Error("no agent-session spans pulled from the remote agent")
	}
}

// TestSpanChromeExportWorld round-trips a real run's tree through the
// Chrome exporter at the World API level.
func TestSpanChromeExportWorld(t *testing.T) {
	world := NewWorld(Tiny(), 1)
	world.MapBorders(0)
	var b1 bytes.Buffer
	if err := world.WriteChromeTrace(&b1); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadChromeTrace(bytes.NewReader(b1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if obs.FingerprintSpans(recs) != world.SpanFingerprint() {
		t.Error("Chrome round trip changed the span fingerprint")
	}
	var b2 bytes.Buffer
	if err := obs.WriteChromeTrace(&b2, recs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("Chrome export→import→export not byte-stable on a real run")
	}
}
