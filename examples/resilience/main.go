// Resilience analysis: the paper's §6 (figure 14) studies how many
// distinct border routers and next-hop ASes carry traffic toward each
// destination prefix — a direct measure of egress redundancy. This example
// measures a multi-VP access network, builds the figure, and reports how
// much of the address space would survive the loss of a single border
// router.
package main

import (
	"fmt"

	"bdrmap"
	"bdrmap/internal/eval"
	"bdrmap/internal/scamper"
)

func main() {
	prof := bdrmap.LargeAccess()
	// Scale the scenario down so the example runs in seconds.
	prof.NumCustomers = 50
	prof.DistantPerTransit = 12
	prof.NumVPs = 8

	world := bdrmap.NewWorld(prof, 1)
	fmt.Printf("measuring %v from %d vantage points...\n", world.HostASN(), world.NumVPs())
	s := world.Scenario()
	s.RunAll(scamper.Config{})

	f := eval.BuildFigure14(s)
	fmt.Println()
	fmt.Println(f.Format())

	single := f.BorderFrac(0, 1)
	mid := f.BorderFrac(2, 5)
	high := 1 - f.BorderFrac(0, 5)
	fmt.Printf("egress redundancy over %d prefixes:\n", f.Prefixes)
	fmt.Printf("  single point of failure (1 border router): %5.1f%%\n", 100*single)
	fmt.Printf("  moderate redundancy (2-5 border routers):  %5.1f%%\n", 100*mid)
	fmt.Printf("  high redundancy (6+ border routers):       %5.1f%%\n", 100*high)
	fmt.Printf("  same next-hop AS from every VP:            %5.1f%%\n", 100*f.NextASFrac(1, 1))
}
