// VP deployment planning: §6 of the paper asks how many vantage points —
// and where — a network needs to observe all of its interdomain links.
// Under hot-potato routing each VP only sees nearby exits (the Level3
// case), while prefix-pinned announcement makes one VP sufficient (the
// Akamai case). This example reproduces the marginal-utility analysis
// (figure 15) and the geographic view (figure 16) on a reduced deployment.
package main

import (
	"fmt"

	"bdrmap"
	"bdrmap/internal/eval"
	"bdrmap/internal/scamper"
)

func main() {
	prof := bdrmap.LargeAccess()
	prof.NumCustomers = 40
	prof.DistantPerTransit = 10

	world := bdrmap.NewWorld(prof, 1)
	s := world.Scenario()
	fmt.Printf("deploying %d VPs across %v...\n\n", world.NumVPs(), world.HostASN())
	s.RunAll(scamper.Config{})

	f15 := eval.BuildFigure15(s)
	fmt.Println(f15.Format())
	for _, sr := range f15.Networks {
		need := sr.VPsToSeeAll()
		total := sr.Cumulative[len(sr.Cumulative)-1]
		switch {
		case total == 0:
		case need <= 2:
			fmt.Printf("-> %s: announcement pinning makes %d VP(s) sufficient for all %d links\n",
				sr.Name, need, total)
		default:
			fmt.Printf("-> %s: hot-potato routing requires %d VPs to observe all %d links\n",
				sr.Name, need, total)
		}
	}

	fmt.Println()
	fmt.Println(eval.BuildFigure16(s).Format())
}
