// Quickstart: generate a small synthetic internetwork, map the hosting
// network's borders from its vantage point, and print every inferred
// interdomain link with the heuristic that found it.
package main

import (
	"fmt"

	"bdrmap"
)

func main() {
	// A deterministic world: same profile + seed, same network.
	world := bdrmap.NewWorld(bdrmap.Tiny(), 1)
	fmt.Printf("host network %v with %d vantage point(s)\n\n",
		world.HostASN(), world.NumVPs())

	report := world.MapBorders(0)

	fmt.Printf("inferred %d interdomain links toward %d neighbor ASes:\n",
		len(report.Links), len(report.Neighbors))
	for _, link := range report.Links {
		fmt.Println("  ", link)
	}

	fmt.Printf("\nvalidated against ground truth: %d/%d correct (%.1f%%)\n",
		report.Correct, report.Total, 100*report.Accuracy())

	fmt.Println("\nTable 1 for this network:")
	fmt.Println(world.Table1(0))
}
