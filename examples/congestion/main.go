// Congestion monitoring: the paper's motivating application (§2).
//
// The CAIDA/MIT interdomain congestion project probes the near and far
// side of every interdomain link on a fixed cadence (time-series latency
// probing, TSLP): a recurring evening elevation of the far side's minimum
// RTT — while the near side stays flat — is the signature of an
// under-provisioned interconnect. The paper's point is that the hard
// measurement problem is *finding the (near, far) address pairs*; that is
// exactly what bdrmap produces.
//
// This example runs the full loop: map the borders, derive probe targets,
// let the simulated world develop evening congestion on one interdomain
// link, probe for 24 hours, and identify the congested interconnect.
package main

import (
	"fmt"
	"time"

	"bdrmap"
	"bdrmap/internal/netx"
	"bdrmap/internal/probe"
	"bdrmap/internal/tslp"
)

type engineProber struct {
	e  *probe.Engine
	vp int
}

func (p engineProber) Probe(a netx.Addr, m probe.Method) probe.Response {
	return p.e.Probe(p.e.Net.VPs[p.vp], a, m)
}
func (p engineProber) Advance(d time.Duration) { p.e.Advance(d) }

func main() {
	world := bdrmap.NewWorld(bdrmap.SmallAccess(), 1)
	report := world.MapBorders(0)
	s := world.Scenario()

	// Step 1 (the hard part, per the paper): derive (near, far) probe
	// targets from the border map. Silent neighbors have no far side to
	// probe — the links TSLP cannot monitor.
	prober := engineProber{e: s.Engine}
	var targets []tslp.Target
	unmonitorable := 0
	for _, l := range report.Links {
		if l.FarAddr.IsZero() {
			unmonitorable++
			continue
		}
		if !prober.Probe(l.NearAddr, probe.MethodICMPEcho).OK ||
			!prober.Probe(l.FarAddr, probe.MethodICMPEcho).OK {
			unmonitorable++
			continue
		}
		targets = append(targets, tslp.Target{Near: l.NearAddr, Far: l.FarAddr, FarAS: l.FarAS})
	}
	fmt.Printf("border map: %d links; %d monitorable target pairs (%d silent/unresponsive)\n",
		len(report.Links), len(targets), unmonitorable)

	// Step 2: the world develops evening congestion on one interconnect
	// (unknown to the measurement system).
	congestedIdx := len(targets) / 2
	victim := targets[congestedIdx]
	for _, lt := range s.Net.InterdomainLinks(s.Net.HostASN) {
		if lt.Link.Subnet.Contains(victim.Far) {
			s.Engine.InjectCongestion(probe.CongestionEpisode{
				Link:  lt.Link,
				Start: 19 * time.Hour,
				End:   23 * time.Hour,
				Queue: 35 * time.Millisecond,
			})
		}
	}

	// Step 3: probe every pair for 24 hours at a 5-minute cadence.
	series := tslp.Run(prober, targets, tslp.Config{
		Interval: 5 * time.Minute,
		Duration: 24 * time.Hour,
	})

	// Step 4: level-shift detection.
	fmt.Println("\nTSLP reports (congested links first):")
	detected := 0
	for _, r := range tslp.DetectAll(series, 30*time.Minute, 3*time.Millisecond) {
		if r.Congested() {
			detected++
			fmt.Println("  ", r)
		}
	}
	fmt.Printf("\n%d congested interconnect(s) detected; ground truth was %v<->%v (%v)\n",
		detected, victim.Near, victim.Far, victim.FarAS)
}
