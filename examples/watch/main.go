// Continuous border mapping: the CAIDA deployment (§2, §5.8) re-runs
// bdrmap on a schedule and diffs successive maps to track interconnection
// churn — new customers turned up, interconnects de-provisioned. This
// example measures a network, changes the world (one new customer, one
// depeered neighbor), measures again with a fresh engine, and reports the
// diff.
package main

import (
	"fmt"

	"bdrmap/internal/asrel"
	"bdrmap/internal/bgp"
	"bdrmap/internal/core"
	"bdrmap/internal/ixp"
	"bdrmap/internal/probe"
	"bdrmap/internal/rir"
	"bdrmap/internal/scamper"
	"bdrmap/internal/sibling"
	"bdrmap/internal/topo"
)

// measure runs one full measurement round against the network's current
// state with a fresh routing table and engine.
func measure(n *topo.Network) *core.MergedMap {
	tab := bgp.NewTable(n)
	view := bgp.Collect(tab, bgp.DefaultVantages(n))
	rel := asrel.Infer(view)
	sibs := sibling.FromNetwork(n, 1)
	sibs.CurateHost(n)
	hosts := map[topo.ASN]bool{n.HostASN: true}
	for _, s := range sibs.SiblingsOf(n.HostASN) {
		hosts[s] = true
	}
	e := probe.New(n, tab)
	var results []*core.Result
	for _, vp := range n.VPs {
		d := &scamper.Driver{
			View: view, Prober: scamper.LocalProber{E: e, VP: vp}, HostASNs: hosts,
		}
		ds := d.Run()
		results = append(results, core.Infer(core.Input{
			Data: ds, View: view, Rel: rel,
			RIR: rir.FromNetwork(n), IXP: ixp.Merge(ixp.FromNetwork(n, 1)),
			HostASN: n.HostASN, Siblings: sibs,
		}))
	}
	return core.Merge(results)
}

func main() {
	n := topo.Generate(topo.TinyProfile(), 1)
	fmt.Printf("round 1: measuring %v...\n", n.HostASN)
	round1 := measure(n)
	fmt.Printf("round 1: %d links, %d neighbors\n\n", round1.LinkCount(), len(round1.Neighbors))

	// The world changes between rounds.
	var border topo.RouterID
	var victim topo.ASN
	for _, lt := range n.InterdomainLinks(n.HostASN) {
		border, victim = lt.NearRtr, lt.FarAS
		break
	}
	newASN, err := topo.AttachCustomer(n, border, 65000)
	if err != nil {
		panic(err)
	}
	var transit topo.ASN
	for _, asn := range n.ASNs() {
		if n.ASes[asn].Tier == topo.TierTier1 && len(n.ASes[asn].Routers) > 0 {
			transit = asn
			break
		}
	}
	newPeer, err := topo.AttachPeer(n, border, 65001, transit)
	if err != nil {
		panic(err)
	}
	removed := topo.Depeer(n, victim)
	n.Build()
	fmt.Printf("world changed: customer %v and peer %v provisioned, %d link(s) to %v de-provisioned\n\n",
		newASN, newPeer, removed, victim)

	fmt.Println("round 2: measuring again...")
	round2 := measure(n)
	fmt.Printf("round 2: %d links, %d neighbors\n\n", round2.LinkCount(), len(round2.Neighbors))

	d := core.Diff(round1, round2)
	fmt.Println("diff:")
	for _, l := range d.Added {
		fmt.Printf("  + %v [%s]\n", l.Key, l.Heuristic)
	}
	for _, l := range d.Removed {
		fmt.Printf("  - %v [%s]\n", l.Key, l.Heuristic)
	}
	fmt.Printf("neighbors gained: %v, lost: %v\n", d.NeighborsAdded, d.NeighborsRemoved)
}
