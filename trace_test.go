package bdrmap

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTraceFingerprintWorkerInvariant is the central determinism claim of
// the provenance layer: the merged event stream — sequence numbers,
// per-target simulated timestamps, subjects, and all non-volatile
// evidence — is a pure function of (profile, seed, cfg), so running the
// probing stage on one worker or four must produce byte-identical
// fingerprints.
func TestTraceFingerprintWorkerInvariant(t *testing.T) {
	run := func(workers int) (*World, string) {
		world := NewWorld(Tiny(), 1)
		world.MapBordersOpts(0, Options{Workers: workers})
		return world, world.TraceFingerprint()
	}
	w1, fp1 := run(1)
	_, fp4 := run(4)
	if fp1 != fp4 {
		t.Fatalf("trace fingerprint depends on worker count:\n  workers=1 %s\n  workers=4 %s", fp1, fp4)
	}
	evs := w1.TraceEvents()
	if len(evs) == 0 {
		t.Fatal("no trace events recorded")
	}
	kinds := map[string]int{}
	for _, ev := range evs {
		kinds[ev.Stage+"."+ev.Kind]++
	}
	for _, want := range []string{"probe.target", "probe.trace", "core.decision"} {
		if kinds[want] == 0 {
			t.Errorf("no %s events in stream: %v", want, kinds)
		}
	}
}

// TestTraceFingerprintRemoteFaults runs the same degraded remote session
// twice: the fault schedule is deterministic, so the provenance stream —
// including the fault_drops evidence on affected traces — must be too.
func TestTraceFingerprintRemoteFaults(t *testing.T) {
	run := func() string {
		world := NewWorld(Tiny(), 1)
		if _, err := world.MapBordersRemote(0, RemoteOptions{FaultSpec: "seed=11,drop=0.12,heal=40"}); err != nil {
			t.Fatal(err)
		}
		return world.TraceFingerprint()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("trace fingerprint not reproducible under healing faults:\n  %s\n  %s", a, b)
	}
}

// TestTraceJSONLRoundTripExplain exports the event log, reloads it, and
// requires the offline explain (the `bdrmap -trace-in` path) to render the
// same evidence chain as the in-process one.
func TestTraceJSONLRoundTripExplain(t *testing.T) {
	world := NewWorld(Tiny(), 1)
	rep := world.MapBorders(0)
	if len(rep.Links) == 0 {
		t.Fatal("no links inferred")
	}
	query := rep.Links[0].FarAS.String()

	var buf bytes.Buffer
	if err := world.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(world.TraceEvents()) {
		t.Fatalf("round trip lost events: %d != %d", len(back), len(world.TraceEvents()))
	}
	live, offline := world.Explain(query), ExplainEvents(back, query)
	if live != offline {
		t.Fatalf("offline explain diverged from live:\nlive:\n%s\noffline:\n%s", live, offline)
	}
}

// TestGoldenExplain pins the rendered evidence chain for one border router
// of the tiny world — the firing heuristic, hop distance, origin-AS and
// relationship rows, and the supporting alias/probe measurements. Update
// with `go test -run TestGoldenExplain -update ./`.
func TestGoldenExplain(t *testing.T) {
	world := NewWorld(Tiny(), 1)
	rep := world.MapBorders(0)

	// Explain the near-side interface of the first as-relationship link:
	// a host-space border router whose owner took real constraint
	// reasoning (relationship + adjacency), not just IP-AS lookup.
	query := ""
	for _, l := range rep.Links {
		if l.Heuristic == "as-relationship" {
			query = l.FarAddr.String()
			break
		}
	}
	if query == "" {
		t.Fatal("tiny world inferred no as-relationship link")
	}
	got := world.Explain(query)
	for _, want := range []string{"hop distance", "origin AS", "relationship", "as-relationship"} {
		if !strings.Contains(got, want) {
			t.Fatalf("explain output missing %q:\n%s", want, got)
		}
	}

	path := filepath.Join("testdata", "golden", "explain-tiny-seed1.txt")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run TestGoldenExplain -update ./`): %v", err)
	}
	if got != string(raw) {
		t.Errorf("explain output diverged from %s\ngot:\n%s\nwant:\n%s", path, got, raw)
	}
}
