package bdrmap

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (run with: go test -bench=. -benchmem). Each benchmark prints
// the reproduced rows/series once, then times the regeneration:
//
//	BenchmarkTable1*        – Table 1 (heuristic usage, BGP coverage)
//	BenchmarkValidation     – §5.6 ground-truth validation
//	BenchmarkFigure14       – per-prefix egress diversity CDFs
//	BenchmarkFigure15       – marginal utility of VPs
//	BenchmarkFigure16       – geographic spread of observed links
//	BenchmarkStopSet        – §5.3 doubletree efficiency
//	BenchmarkRemoteSession  – §5.8 resource-limited device split
//	BenchmarkAblation*      – DESIGN.md ablation suite
//
// plus micro-benchmarks of the load-bearing primitives.

import (
	"fmt"
	"sync"
	"testing"

	"bdrmap/internal/bgp"
	"bdrmap/internal/core"
	"bdrmap/internal/eval"
	"bdrmap/internal/netx"
	"bdrmap/internal/probe"
	"bdrmap/internal/scamper"
	"bdrmap/internal/topo"
)

// printOnce gates the one-time output of each benchmark's reproduction.
var printOnce sync.Map

func once(b *testing.B, key, out string) {
	if _, dup := printOnce.LoadOrStore(key, true); !dup {
		b.Logf("\n%s", out)
	}
}

func benchTable1(b *testing.B, prof topo.Profile) {
	for i := 0; i < b.N; i++ {
		s := eval.Build(prof, 1)
		res := s.RunVP(0, scamper.Config{}, core.Options{})
		tbl := eval.BuildTable1(s, res)
		once(b, "table1-"+prof.Name, tbl.Format())
	}
}

func BenchmarkTable1RE(b *testing.B)          { benchTable1(b, topo.REProfile()) }
func BenchmarkTable1LargeAccess(b *testing.B) { benchTable1(b, topo.LargeAccessProfile()) }
func BenchmarkTable1Tier1(b *testing.B)       { benchTable1(b, topo.Tier1Profile()) }

func BenchmarkValidation(b *testing.B) {
	profiles := []topo.Profile{
		topo.REProfile(), topo.LargeAccessProfile(),
		topo.Tier1Profile(), topo.SmallAccessProfile(),
	}
	for i := 0; i < b.N; i++ {
		for _, prof := range profiles {
			s := eval.Build(prof, 1)
			res := s.RunVP(0, scamper.Config{}, core.Options{})
			v := s.Validate(res)
			found, total := s.Coverage(res)
			out := ""
			out += prof.Name + ": "
			out += percent(v.Correct, v.Total) + " links correct, "
			out += percent(found, total) + " BGP coverage"
			once(b, "validate-"+prof.Name, out)
		}
	}
}

func percent(a, b int) string {
	if b == 0 {
		return "n/a"
	}
	return fmtPct(100 * float64(a) / float64(b))
}

func fmtPct(f float64) string { return fmt.Sprintf("%.1f%%", f) }

func itoa(i int) string { return fmt.Sprintf("%d", i) }

// multiVPScenario is shared by the figure benchmarks (19 VPs of a reduced
// large-access network).
var (
	multiOnce sync.Once
	multiScen *eval.Scenario
)

func multiVP() *eval.Scenario {
	multiOnce.Do(func() {
		prof := topo.LargeAccessProfile()
		prof.NumCustomers = 60
		prof.DistantPerTransit = 12
		multiScen = eval.Build(prof, 1)
		multiScen.RunAll(scamper.Config{})
	})
	return multiScen
}

func BenchmarkFigure14(b *testing.B) {
	s := multiVP()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := eval.BuildFigure14(s)
		once(b, "fig14", f.Format())
	}
}

func BenchmarkFigure15(b *testing.B) {
	s := multiVP()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := eval.BuildFigure15(s)
		once(b, "fig15", f.Format())
	}
}

func BenchmarkFigure16(b *testing.B) {
	s := multiVP()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := eval.BuildFigure16(s)
		once(b, "fig16", f.Format())
	}
}

func BenchmarkStopSet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ss := eval.MeasureStopSet(topo.TinyProfile(), 1)
		once(b, "stopset", "stop set saved "+fmtPct(100*ss.SavedFrac())+
			" of probe packets ("+itoa(ss.TracesStopped)+" traces stopped)")
	}
}

func BenchmarkRemoteSession(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := eval.Build(topo.TinyProfile(), 1)
		ctrl, err := scamper.Listen("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		agent := &scamper.Agent{E: s.Engine, VP: s.Net.VPs[0]}
		go agent.Dial(ctrl.Addr())
		rp, err := ctrl.Accept()
		if err != nil {
			b.Fatal(err)
		}
		d := &scamper.Driver{View: s.View, Prober: rp, HostASNs: s.HostASNs}
		ds := d.Run()
		if ds.Stats.Traces == 0 {
			b.Fatal("no traces over remote session")
		}
		out, in := rp.BytesTransferred()
		once(b, "remote", "device peak state "+itoa(agent.StateBytes())+
			"B; protocol "+itoa(int(out))+"B out / "+itoa(int(in))+"B in")
		rp.Close()
		ctrl.Close()
	}
}

func BenchmarkAblationNoAlias(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a := eval.AblationNoAlias(topo.TinyProfile(), 1)
		once(b, "abl-noalias", a.Name+": accuracy "+fmtPct(100*a.BaseAcc)+" -> "+fmtPct(100*a.VariantAcc))
	}
}

func BenchmarkAblationNoThirdParty(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a := eval.AblationNoThirdParty(topo.TinyProfile(), 1)
		once(b, "abl-no3p", a.Name+": accuracy "+fmtPct(100*a.BaseAcc)+" -> "+fmtPct(100*a.VariantAcc))
	}
}

func BenchmarkAblationSingleAddr(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a := eval.AblationSingleAddr(topo.TinyProfile(), 1)
		once(b, "abl-1addr", a.Name+": links "+itoa(a.BaseLinks)+" -> "+itoa(a.VariantLinks))
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the primitives.

func BenchmarkGenerateTiny(b *testing.B) {
	for i := 0; i < b.N; i++ {
		topo.Generate(topo.TinyProfile(), int64(i))
	}
}

func BenchmarkBGPRoutesPerPrefix(b *testing.B) {
	n := topo.Generate(topo.TinyProfile(), 1)
	tab := bgp.NewTable(n)
	prefixes := tab.Prefixes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fresh table each round would dominate; measure the per-prefix
		// propagation through cache misses by cycling seeds of tables.
		if i%len(prefixes) == 0 {
			tab = bgp.NewTable(n)
		}
		tab.Routes(prefixes[i%len(prefixes)])
	}
}

func BenchmarkTraceroute(b *testing.B) {
	n := topo.Generate(topo.TinyProfile(), 1)
	e := probe.New(n, bgp.NewTable(n))
	vp := n.VPs[0]
	prefixes := e.Tab.Prefixes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Traceroute(vp, prefixes[i%len(prefixes)].First()+1, nil)
	}
}

func BenchmarkInferOnly(b *testing.B) {
	s := eval.Build(topo.TinyProfile(), 1)
	s.RunVP(0, scamper.Config{Workers: 1}, core.Options{})
	in := core.Input{
		Data: s.Datasets[0], View: s.View, Rel: s.Rel, RIR: s.RIR, IXP: s.IXP,
		HostASN: s.Net.HostASN, Siblings: s.Sibs,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Infer(in)
	}
}

func BenchmarkTrieLookup(b *testing.B) {
	var tr netx.Trie[int]
	for i := 0; i < 4096; i++ {
		tr.Insert(netx.MakePrefix(netx.Addr(i)<<16, 8+i%17), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(netx.Addr(i * 2654435761))
	}
}

func BenchmarkFullPipelineTiny(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := NewWorld(Tiny(), 1)
		rep := w.MapBorders(0)
		if len(rep.Links) == 0 {
			b.Fatal("no links")
		}
		// Emit the same observability snapshot the CLI's -metrics flag
		// prints, plus the probing effort as benchmark metrics.
		snap := rep.Metrics
		once(b, "pipeline-metrics", snap.Format())
		b.ReportMetric(float64(snap.Counter("probe.packets_sent")), "packets/op")
		b.ReportMetric(float64(snap.Counter("driver.traces")), "traces/op")
	}
}

// BenchmarkInferSteadyState measures re-inference on a warm arena — the
// serving loop's actual cost once slabs have reached capacity. Compare
// with BenchmarkInferOnly, which pays pool-cold slab growth.
func BenchmarkInferSteadyState(b *testing.B) {
	s := eval.Build(topo.TinyProfile(), 1)
	s.RunVP(0, scamper.Config{Workers: 1}, core.Options{})
	var ar core.Arena
	in := core.Input{
		Data: s.Datasets[0], View: s.View, Rel: s.Rel, RIR: s.RIR, IXP: s.IXP,
		HostASN: s.Net.HostASN, Siblings: s.Sibs, Arena: &ar,
	}
	core.Infer(in)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Infer(in)
	}
}
