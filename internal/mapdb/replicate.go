package mapdb

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"time"

	"bdrmap/internal/netx"
	"bdrmap/internal/obs"
	"bdrmap/internal/topo"
)

// Replication: a follower serves the leader's border map read-only. The
// protocol is the same two artifacts the serving tier already produces —
// the segment image (full state, fetched from /v1/segment on first
// contact or after a history gap) and the GenDiff stream (/v1/watch
// NDJSON frames, applied incrementally). A follower therefore holds
// exactly the generations the leader published: same generation numbers,
// same link bytes, same diffs (adopted verbatim, not recomputed).

// Apply reconstructs generation d.To by replaying d on top of s (which
// must be generation d.From). The result is a freshly indexed heap
// snapshot; s is not modified. The merged-map substrate is not carried
// by diffs, so the result serves queries but exposes Merged() == nil —
// the same contract as a snapshot opened from a segment.
func (s *Snapshot) Apply(d *GenDiff) (*Snapshot, error) {
	defer runtime.KeepAlive(s)
	if d.From != s.gen {
		return nil, fmt.Errorf("mapdb: apply: diff is %d→%d but snapshot is generation %d", d.From, d.To, s.gen)
	}
	next := &Snapshot{
		gen:      d.To,
		host:     s.host,
		vps:      append([]string(nil), d.VPs...),
		degraded: append([]string(nil), d.DegradedVPs...),
	}

	removed := make(map[Link]bool, len(d.Removed))
	for _, l := range d.Removed {
		removed[stripHeur(l)] = true
	}
	relabeled := make(map[Link]string, len(d.Relabeled))
	for _, l := range d.Relabeled {
		relabeled[stripHeur(l)] = l.Heuristic
	}
	next.links = make([]Link, 0, len(s.links)+len(d.Added))
	for _, l := range s.links {
		id := stripHeur(l)
		if removed[id] {
			continue
		}
		if h, ok := relabeled[id]; ok {
			l.Heuristic = h
		}
		next.links = append(next.links, l)
	}
	next.links = append(next.links, d.Added...)

	byAddr := make(map[netx.Addr]OwnerInfo, len(s.ownerAddrs)+len(d.OwnersSet))
	for i, a := range s.ownerAddrs {
		byAddr[a] = s.owners[i]
	}
	for _, a := range d.OwnersRemoved {
		delete(byAddr, a)
	}
	for _, od := range d.OwnersSet {
		byAddr[od.Addr] = od.Info
	}
	next.ownerAddrs = make([]netx.Addr, 0, len(byAddr))
	for a := range byAddr {
		next.ownerAddrs = append(next.ownerAddrs, a)
	}
	// Sorted owner order (the leader keeps discovery order) — every query
	// index is rebuilt below, so answers are unaffected.
	sort.Slice(next.ownerAddrs, func(i, j int) bool { return next.ownerAddrs[i] < next.ownerAddrs[j] })
	next.owners = make([]OwnerInfo, len(next.ownerAddrs))
	for i, a := range next.ownerAddrs {
		next.owners[i] = byAddr[a]
	}

	next.finishIndexes()
	return next, nil
}

// ---------------------------------------------------------------------------
// Wire shapes — shared by the /v1/watch handler and the clients below.

// linkWire round-trips a Link exactly (no "silent" aliasing: a zero far
// address is "0.0.0.0").
type linkWire struct {
	Near      string `json:"near"`
	Far       string `json:"far"`
	FarAS     uint32 `json:"far_as"`
	Heuristic string `json:"heuristic,omitempty"`
}

func toLinkWire(l Link) linkWire {
	return linkWire{Near: l.Near.String(), Far: l.Far.String(), FarAS: uint32(l.FarAS), Heuristic: l.Heuristic}
}

func (lw linkWire) link() (Link, error) {
	near, err := netx.ParseAddr(lw.Near)
	if err != nil {
		return Link{}, fmt.Errorf("link near: %w", err)
	}
	far, err := netx.ParseAddr(lw.Far)
	if err != nil {
		return Link{}, fmt.Errorf("link far: %w", err)
	}
	return Link{Near: near, Far: far, FarAS: topo.ASN(lw.FarAS), Heuristic: lw.Heuristic}, nil
}

func toLinkWires(ls []Link) []linkWire {
	if len(ls) == 0 {
		return nil
	}
	out := make([]linkWire, len(ls))
	for i, l := range ls {
		out[i] = toLinkWire(l)
	}
	return out
}

func fromLinkWires(ws []linkWire) ([]Link, error) {
	if len(ws) == 0 {
		return nil, nil
	}
	out := make([]Link, len(ws))
	for i, w := range ws {
		l, err := w.link()
		if err != nil {
			return nil, err
		}
		out[i] = l
	}
	return out, nil
}

type ownerChangeWire struct {
	Addr string `json:"addr"`
	From uint32 `json:"from"`
	To   uint32 `json:"to"`
}

type ownerDeltaWire struct {
	Addr      string `json:"addr"`
	AS        uint32 `json:"as"`
	Heuristic string `json:"heuristic,omitempty"`
	Host      bool   `json:"host,omitempty"`
	HopDist   int    `json:"hop_dist,omitempty"`
}

// diffWire is the JSON form of a GenDiff: complete enough that Apply on
// the decoded value reconstructs the To generation.
type diffWire struct {
	From             int               `json:"from"`
	To               int               `json:"to"`
	Added            []linkWire        `json:"added,omitempty"`
	Removed          []linkWire        `json:"removed,omitempty"`
	Relabeled        []linkWire        `json:"relabeled,omitempty"`
	NeighborsAdded   []uint32          `json:"neighbors_added,omitempty"`
	NeighborsRemoved []uint32          `json:"neighbors_removed,omitempty"`
	OwnerChanges     []ownerChangeWire `json:"owner_changes,omitempty"`
	OwnersSet        []ownerDeltaWire  `json:"owners_set,omitempty"`
	OwnersRemoved    []string          `json:"owners_removed,omitempty"`
	VPs              []string          `json:"vps,omitempty"`
	DegradedVPs      []string          `json:"degraded_vps,omitempty"`
	FromPartial      bool              `json:"from_partial,omitempty"`
	ToPartial        bool              `json:"to_partial,omitempty"`
}

func toDiffWire(d *GenDiff) *diffWire {
	w := &diffWire{
		From: d.From, To: d.To,
		Added:            toLinkWires(d.Added),
		Removed:          toLinkWires(d.Removed),
		Relabeled:        toLinkWires(d.Relabeled),
		NeighborsAdded:   toASNsJSON(d.NeighborsAdded),
		NeighborsRemoved: toASNsJSON(d.NeighborsRemoved),
		VPs:              d.VPs,
		DegradedVPs:      d.DegradedVPs,
		FromPartial:      d.FromPartial,
		ToPartial:        d.ToPartial,
	}
	for _, c := range d.OwnerChanges {
		w.OwnerChanges = append(w.OwnerChanges, ownerChangeWire{
			Addr: c.Addr.String(), From: uint32(c.From), To: uint32(c.To),
		})
	}
	for _, od := range d.OwnersSet {
		w.OwnersSet = append(w.OwnersSet, ownerDeltaWire{
			Addr: od.Addr.String(), AS: uint32(od.Info.AS),
			Heuristic: od.Info.Heuristic, Host: od.Info.Host, HopDist: od.Info.HopDist,
		})
	}
	for _, a := range d.OwnersRemoved {
		w.OwnersRemoved = append(w.OwnersRemoved, a.String())
	}
	return w
}

func (w *diffWire) diff() (*GenDiff, error) {
	d := &GenDiff{
		From: w.From, To: w.To,
		VPs:         w.VPs,
		DegradedVPs: w.DegradedVPs,
		FromPartial: w.FromPartial,
		ToPartial:   w.ToPartial,
	}
	var err error
	if d.Added, err = fromLinkWires(w.Added); err != nil {
		return nil, err
	}
	if d.Removed, err = fromLinkWires(w.Removed); err != nil {
		return nil, err
	}
	if d.Relabeled, err = fromLinkWires(w.Relabeled); err != nil {
		return nil, err
	}
	for _, as := range w.NeighborsAdded {
		d.NeighborsAdded = append(d.NeighborsAdded, topo.ASN(as))
	}
	for _, as := range w.NeighborsRemoved {
		d.NeighborsRemoved = append(d.NeighborsRemoved, topo.ASN(as))
	}
	for _, c := range w.OwnerChanges {
		a, err := netx.ParseAddr(c.Addr)
		if err != nil {
			return nil, fmt.Errorf("owner change: %w", err)
		}
		d.OwnerChanges = append(d.OwnerChanges, OwnerChange{Addr: a, From: topo.ASN(c.From), To: topo.ASN(c.To)})
	}
	for _, od := range w.OwnersSet {
		a, err := netx.ParseAddr(od.Addr)
		if err != nil {
			return nil, fmt.Errorf("owner set: %w", err)
		}
		d.OwnersSet = append(d.OwnersSet, OwnerDelta{Addr: a, Info: OwnerInfo{
			AS: topo.ASN(od.AS), Heuristic: od.Heuristic, Host: od.Host, HopDist: od.HopDist,
		}})
	}
	for _, s := range w.OwnersRemoved {
		a, err := netx.ParseAddr(s)
		if err != nil {
			return nil, fmt.Errorf("owner removed: %w", err)
		}
		d.OwnersRemoved = append(d.OwnersRemoved, a)
	}
	return d, nil
}

// watchFrame is one NDJSON line on /v1/watch.
type watchFrame struct {
	Type   string    `json:"type"` // "hello" | "diff" | "keepalive"
	Gen    int       `json:"gen,omitempty"`
	HostAS uint32    `json:"host_as,omitempty"`
	Diff   *diffWire `json:"diff,omitempty"`
}

// WatchFrame is one decoded event from a leader's /v1/watch stream.
type WatchFrame struct {
	Type   string // "hello" | "diff" | "keepalive"
	Gen    int    // hello: the leader's newest generation
	HostAS topo.ASN
	Diff   *GenDiff // non-nil for "diff"
}

// ---------------------------------------------------------------------------
// Clients

// ErrGenUnknown reports that the requested resume generation fell out of
// the leader's bounded history: the watcher cannot be caught up by diffs
// and must full-sync from /v1/segment.
var ErrGenUnknown = errors.New("mapdb: resume generation not retained by leader")

// WatchClient tails one /v1/watch stream. Zero value plus Base is usable.
type WatchClient struct {
	Base   string // leader base URL, e.g. "http://127.0.0.1:8080"
	Client *http.Client
	// From resumes the stream: the leader first replays diffs From→now,
	// then pushes live. Zero starts live-only from the current generation.
	From int
}

func (c *WatchClient) httpClient() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return http.DefaultClient
}

// Run connects and invokes fn for every frame until the stream ends (the
// leader closed it, e.g. a lagging-watcher drop), fn returns an error, or
// ctx is canceled. A resume gap surfaces as ErrGenUnknown.
func (c *WatchClient) Run(ctx context.Context, fn func(WatchFrame) error) error {
	url := c.Base + "/v1/watch"
	if c.From > 0 {
		url = fmt.Sprintf("%s?from=%d", url, c.From)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return ErrGenUnknown
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("mapdb: watch: leader answered %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var f watchFrame
		if err := json.Unmarshal(line, &f); err != nil {
			return fmt.Errorf("mapdb: watch: bad frame: %w", err)
		}
		out := WatchFrame{Type: f.Type, Gen: f.Gen, HostAS: topo.ASN(f.HostAS)}
		if f.Diff != nil {
			d, err := f.Diff.diff()
			if err != nil {
				return fmt.Errorf("mapdb: watch: bad diff frame: %w", err)
			}
			out.Diff = d
		}
		if err := fn(out); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return ctx.Err()
}

// FetchSegment downloads the leader's current generation as a segment
// image from /v1/segment and decodes it.
func FetchSegment(ctx context.Context, client *http.Client, base string) (*Snapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/segment", nil)
	if err != nil {
		return nil, err
	}
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("mapdb: segment fetch: leader answered %s", resp.Status)
	}
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return ReadSegment(buf)
}

// Follower tails a leader and mirrors its generation stream into Store:
// full segment on first contact or history gap, diff frames otherwise,
// each adopted with the leader's own generation number and diff so every
// /v1/ read on the follower answers identically to the leader.
type Follower struct {
	Leader string // leader base URL
	Store  *Store
	Reg    *obs.Registry
	Client *http.Client

	// Redial backoff bounds; defaults 100ms … 3s.
	RedialMin, RedialMax time.Duration
}

// Run replicates until ctx is canceled. Connection loss, stream close,
// and history gaps are all handled by redialing (with backoff) and — when
// diffs cannot bridge — full-syncing; the error returned is ctx.Err().
func (f *Follower) Run(ctx context.Context) error {
	min, max := f.RedialMin, f.RedialMax
	if min <= 0 {
		min = 100 * time.Millisecond
	}
	if max < min {
		max = 3 * time.Second
	}
	backoff := min
	for ctx.Err() == nil {
		err := f.stream(ctx)
		if ctx.Err() != nil {
			break
		}
		if errors.Is(err, ErrGenUnknown) {
			// The leader's history moved past our resume point: catch up
			// with a full segment, then re-enter the diff stream.
			if serr := f.fullSync(ctx); serr == nil {
				backoff = min
				continue
			}
			f.Reg.Inc("mapdb.follower.sync_errors")
		} else if err != nil {
			f.Reg.Inc("mapdb.follower.redials")
		}
		select {
		case <-ctx.Done():
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > max {
			backoff = max
		}
	}
	return ctx.Err()
}

// stream runs one watch connection: resume from our newest generation
// (full-syncing first if we have none), then apply diff frames as they
// arrive. Returns when the connection drops or a frame cannot be applied.
func (f *Follower) stream(ctx context.Context) error {
	cur := f.Store.Current()
	if cur == nil {
		if err := f.fullSync(ctx); err != nil {
			return err
		}
		cur = f.Store.Current()
	}
	wc := &WatchClient{Base: f.Leader, Client: f.Client, From: cur.Gen()}
	return wc.Run(ctx, func(fr WatchFrame) error {
		if fr.Type != "diff" || fr.Diff == nil {
			return nil
		}
		return f.apply(fr.Diff)
	})
}

// apply replays one diff frame onto the follower's newest generation.
// Frames at or behind the local generation are duplicates (a resume
// overlap) and are skipped; a frame ahead of local+1 is a gap the caller
// heals with a full sync.
func (f *Follower) apply(d *GenDiff) error {
	cur := f.Store.Current()
	if cur == nil {
		return ErrGenUnknown
	}
	if d.To <= cur.Gen() {
		return nil
	}
	if d.From != cur.Gen() {
		return ErrGenUnknown
	}
	next, err := cur.Apply(d)
	if err != nil {
		return err
	}
	if err := f.Store.Adopt(next, d); err != nil {
		return err
	}
	f.Reg.Inc("mapdb.follower.diffs_applied")
	return nil
}

// fullSync adopts the leader's current generation wholesale.
func (f *Follower) fullSync(ctx context.Context) error {
	snap, err := FetchSegment(ctx, f.Client, f.Leader)
	if err != nil {
		return err
	}
	if cur := f.Store.Current(); cur != nil && snap.Gen() <= cur.Gen() {
		// Already there (leader hasn't moved); not an error.
		return nil
	}
	if err := f.Store.Adopt(snap, nil); err != nil {
		return err
	}
	f.Reg.Inc("mapdb.follower.full_syncs")
	return nil
}
