package mapdb

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"bdrmap/internal/core"
	"bdrmap/internal/obs"
)

// get performs one request against the handler and decodes the JSON body.
func get(t *testing.T, h http.Handler, url string) (int, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("%s: content type %q, want JSON", url, ct)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("%s: invalid JSON %q: %v", url, rec.Body.String(), err)
	}
	return rec.Code, body
}

// errCode extracts the structured error code, failing if the body does not
// match the {"error":{"code","message"}} contract.
func errCode(t *testing.T, body map[string]any) string {
	t.Helper()
	e, ok := body["error"].(map[string]any)
	if !ok {
		t.Fatalf("no structured error in %v", body)
	}
	code, _ := e["code"].(string)
	msg, _ := e["message"].(string)
	if code == "" || msg == "" {
		t.Fatalf("error missing code or message: %v", e)
	}
	return code
}

func TestHTTPQueries(t *testing.T) {
	reg := obs.New()
	st := NewStore(0, reg)
	h := Handler(st, reg)

	// Before the first generation: structured 503 everywhere.
	if code, body := get(t, h, "/v1/gen"); code != http.StatusServiceUnavailable || errCode(t, body) != "no_generation" {
		t.Fatalf("empty store: %d %v", code, body)
	}

	st.Publish(Compile(64500, []*core.Result{syntheticResult("vp", 8, 60000)}))
	st.Publish(Compile(64500, []*core.Result{syntheticResult("vp", 9, 60000)}))

	code, body := get(t, h, "/v1/gen")
	if code != http.StatusOK || body["gen"].(float64) != 2 || body["links"].(float64) != 9 {
		t.Fatalf("/v1/gen: %d %v", code, body)
	}

	code, body = get(t, h, "/v1/owner?ip=10.0.0.2")
	if code != http.StatusOK || body["as"].(float64) != 60000 || body["host"].(bool) {
		t.Fatalf("/v1/owner far side: %d %v", code, body)
	}
	code, body = get(t, h, "/v1/owner?ip=10.0.0.1")
	if code != http.StatusOK || body["as"].(float64) != 64500 || !body["host"].(bool) {
		t.Fatalf("/v1/owner near side: %d %v", code, body)
	}

	code, body = get(t, h, "/v1/link?near=10.0.0.1&far=10.0.0.2")
	if code != http.StatusOK {
		t.Fatalf("/v1/link: %d %v", code, body)
	}
	if l := body["link"].(map[string]any); l["far_as"].(float64) != 60000 || l["heuristic"] != "as-relationship" {
		t.Fatalf("/v1/link body: %v", body)
	}

	code, body = get(t, h, "/v1/neighbors?as=AS60001")
	if code != http.StatusOK || body["count"].(float64) != 1 {
		t.Fatalf("/v1/neighbors: %d %v", code, body)
	}

	code, body = get(t, h, "/v1/diff?from=1&to=2")
	if code != http.StatusOK || len(body["added"].([]any)) != 1 || len(body["removed"].([]any)) != 0 {
		t.Fatalf("/v1/diff: %d %v", code, body)
	}

	// Error surface: every failure is a structured code, never plain text.
	for _, tc := range []struct {
		url, code string
		status    int
	}{
		{"/v1/owner", "missing_parameter", http.StatusBadRequest},
		{"/v1/owner?ip=not-an-ip", "bad_address", http.StatusBadRequest},
		{"/v1/owner?ip=203.0.113.77", "unknown_interface", http.StatusNotFound},
		{"/v1/link?near=10.0.0.1&far=10.9.9.9", "not_a_border", http.StatusNotFound},
		{"/v1/link?far=10.0.0.2", "missing_parameter", http.StatusBadRequest},
		{"/v1/neighbors?as=junk", "bad_asn", http.StatusBadRequest},
		{"/v1/neighbors?as=65099", "unknown_neighbor", http.StatusNotFound},
		{"/v1/diff?from=1", "missing_parameter", http.StatusBadRequest},
		{"/v1/diff?from=1&to=99", "unknown_generation", http.StatusNotFound},
		{"/v1/fleet", "no_fleet", http.StatusNotFound},
		{"/v1/nope", "not_found", http.StatusNotFound},
	} {
		code, body := get(t, h, tc.url)
		if code != tc.status || errCode(t, body) != tc.code {
			t.Errorf("%s: got %d %v, want %d %s", tc.url, code, body, tc.status, tc.code)
		}
	}

	// Non-GET methods are rejected with a structured 405.
	req := httptest.NewRequest(http.MethodPost, "/v1/gen", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/gen: %d", rec.Code)
	}

	// The obs registry saw the traffic: per-endpoint counters, the error
	// counter, and the shared latency histogram.
	snap := reg.Snapshot()
	if snap.Counter("mapdb.http.owner") < 4 {
		t.Errorf("owner counter = %d, want >= 4", snap.Counter("mapdb.http.owner"))
	}
	if snap.Counter("mapdb.http.errors") == 0 {
		t.Error("error counter never incremented")
	}
	if h := snap.Histogram("mapdb.http.latency_us"); h.Count == 0 {
		t.Error("latency histogram empty")
	}
}
