package mapdb

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"bdrmap/internal/core"
	"bdrmap/internal/eval"
	"bdrmap/internal/netx"
	"bdrmap/internal/scamper"
	"bdrmap/internal/topo"
)

// inferSnapshot runs one real measurement round over profile and compiles
// the result — the differential substrate for the segment format.
func inferSnapshot(t *testing.T, prof topo.Profile) *Snapshot {
	t.Helper()
	n := topo.Generate(prof, 1)
	s := eval.BuildFromNetwork(n, 1)
	if _, err := s.RunFleet(scamper.Config{}, eval.FleetOptions{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	return Compile(n.HostASN, s.Results)
}

// requireSnapshotsAnswerIdentically drives every query the serving API
// exposes through both snapshots and requires byte-identical answers:
// owner (trie and linear) for every indexed address plus misses, link for
// every pair plus misses, neighbor spans for every AS, and an empty
// mutual diff.
func requireSnapshotsAnswerIdentically(t *testing.T, mem, got *Snapshot) {
	t.Helper()
	if mem.Gen() != got.Gen() || mem.HostASN() != got.HostASN() {
		t.Fatalf("identity diverged: gen %d/%d host %d/%d", mem.Gen(), got.Gen(), mem.HostASN(), got.HostASN())
	}
	if !reflect.DeepEqual(mem.VPs(), got.VPs()) {
		t.Errorf("VPs diverged: %v vs %v", mem.VPs(), got.VPs())
	}
	if !reflect.DeepEqual(mem.Degraded(), got.Degraded()) || mem.Partial() != got.Partial() {
		t.Errorf("degraded marks diverged: %v/%v vs %v/%v",
			mem.Degraded(), mem.Partial(), got.Degraded(), got.Partial())
	}
	if !reflect.DeepEqual(mem.Links(), got.Links()) {
		t.Fatalf("link slices diverged (%d vs %d links)", mem.NumLinks(), got.NumLinks())
	}
	for i, addr := range mem.ownerAddrs {
		o1, ok1 := mem.Owner(addr)
		o2, ok2 := got.Owner(addr)
		if !ok1 || !ok2 || o1 != o2 {
			t.Fatalf("owner(%s) diverged: %v/%v vs %v/%v", addr, o1, ok1, o2, ok2)
		}
		if lo, ok := got.ownerLinear(addr); !ok || lo != o2 {
			t.Fatalf("owner(%s): linear scan %v/%v disagrees with trie %v", addr, lo, ok, o2)
		}
		if o1 != mem.owners[i] && mem.ownerAddrs[i] == addr {
			// Duplicate-free index: the trie must resolve to this record.
			t.Fatalf("owner(%s) = %v, want record %v", addr, o1, mem.owners[i])
		}
		// A probe around every indexed address exercises misses.
		if _, ok1 := mem.Owner(addr + 1); ok1 != func() bool { _, ok2 := got.Owner(addr + 1); return ok2 }() {
			t.Fatalf("owner miss behavior diverged at %s", addr+1)
		}
	}
	for _, l := range mem.Links() {
		l1, ok1 := mem.Link(l.Near, l.Far)
		l2, ok2 := got.Link(l.Near, l.Far)
		if !ok1 || !ok2 || l1 != l2 {
			t.Fatalf("link(%s,%s) diverged: %v/%v vs %v/%v", l.Near, l.Far, l1, ok1, l2, ok2)
		}
	}
	if _, ok := got.Link(netx.Addr(0xDEADBEEF), netx.Addr(1)); ok {
		t.Fatal("link miss answered on reopened snapshot")
	}
	if !reflect.DeepEqual(mem.NeighborASes(), got.NeighborASes()) {
		t.Fatalf("neighbor AS sets diverged")
	}
	for _, as := range mem.NeighborASes() {
		if !reflect.DeepEqual(mem.Neighbors(as), got.Neighbors(as)) {
			t.Fatalf("neighbors(%s) diverged", as)
		}
	}
	if nb := got.Neighbors(0xFFFFFFF0); len(nb) != 0 {
		t.Fatalf("neighbors miss answered %d links", len(nb))
	}
	if d := diffSnapshots(mem, got); !d.Empty() {
		t.Fatalf("diff(mem, reopened) not empty: +%d -%d owners %d/%d",
			len(d.Added), len(d.Removed), len(d.OwnersSet), len(d.OwnersRemoved))
	}
	if d := diffSnapshots(got, mem); !d.Empty() {
		t.Fatal("diff(reopened, mem) not empty")
	}
}

// TestSegmentRoundtripDifferential writes real inferred snapshots (tiny
// and regional-vp worlds) in segment format and reopens them through both
// paths — OpenSegment (mmap, zero-copy indices) and ReadSegment (heap
// decode) — requiring every query answer to be byte-identical to the
// in-memory original. The mmap path is additionally asserted to actually
// be serving from a mapping, and diffs computed between reopened
// generations must equal diffs between the originals.
func TestSegmentRoundtripDifferential(t *testing.T) {
	profiles := []struct {
		name string
		prof topo.Profile
	}{
		{"tiny", topo.TinyProfile()},
		{"regional-vp", topo.RegionalVPProfile()},
	}
	for _, pc := range profiles {
		t.Run(pc.name, func(t *testing.T) {
			mem := inferSnapshot(t, pc.prof)
			mem.gen = 7 // as if published
			mem.MarkDegraded(nil)

			var buf bytes.Buffer
			n, err := mem.WriteTo(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if n != int64(buf.Len()) {
				t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
			}

			path := filepath.Join(t.TempDir(), "gen-00000007.seg")
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			mapped, err := OpenSegment(path)
			if err != nil {
				t.Fatal(err)
			}
			if mapped.seg == nil || !mapped.seg.mapped {
				t.Fatal("OpenSegment did not map the file")
			}
			requireSnapshotsAnswerIdentically(t, mem, mapped)

			heap, err := ReadSegment(buf.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			if heap.seg != nil {
				t.Fatal("ReadSegment retained a segment handle")
			}
			requireSnapshotsAnswerIdentically(t, mem, heap)

			// Serialization is deterministic: same snapshot, same bytes.
			var buf2 bytes.Buffer
			if _, err := mapped.WriteTo(&buf2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
				t.Error("re-serializing the reopened snapshot changed the image")
			}
			runtime.KeepAlive(mapped)
		})
	}
}

// TestSegmentDiffAcrossReopenedGenerations compiles two generations,
// round-trips both through segment files, and requires the diff computed
// between the reopened pair to deep-equal the diff between the originals.
func TestSegmentDiffAcrossReopenedGenerations(t *testing.T) {
	dir := t.TempDir()
	s1 := Compile(64500, []*core.Result{genResult(1, 24)})
	s2 := Compile(64500, []*core.Result{genResult(2, 32)})
	s1.gen, s2.gen = 1, 2
	want := diffSnapshots(s1, s2)

	var reopened []*Snapshot
	for _, s := range []*Snapshot{s1, s2} {
		if err := writeSegmentFile(dir, s); err != nil {
			t.Fatal(err)
		}
		r, err := OpenSegment(segmentPath(dir, s.gen))
		if err != nil {
			t.Fatal(err)
		}
		reopened = append(reopened, r)
	}
	got := diffSnapshots(reopened[0], reopened[1])
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("diff across reopened generations diverged:\nwant %+v\ngot  %+v", want, got)
	}
}

// publishGens opens a durable store in dir and publishes gens 1..n of the
// synthetic generation-tagged world.
func publishGens(t *testing.T, dir string, n int) *Store {
	t.Helper()
	st, err := OpenStore(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	have := 0
	if cur := st.Current(); cur != nil {
		have = cur.Gen()
	}
	for g := have + 1; g <= n; g++ {
		st.Publish(Compile(64500, []*core.Result{genResult(g, 16)}))
	}
	return st
}

// requireServes asserts a freshly opened store serves exactly generation
// want of the tagged world.
func requireServes(t *testing.T, dir string, want int) {
	t.Helper()
	st, err := OpenStore(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	cur := st.Current()
	if want == 0 {
		if cur != nil {
			t.Fatalf("store served generation %d, want none", cur.Gen())
		}
		return
	}
	if cur == nil {
		t.Fatalf("store served nothing, want generation %d", want)
	}
	if cur.Gen() != want {
		t.Fatalf("store served generation %d, want %d", cur.Gen(), want)
	}
	// The recovered generation must carry its world: the tag is encoded in
	// every attribution.
	o, ok := cur.Owner(0x0a000001)
	if !ok || o.AS != topo.ASN(40000+want) {
		t.Fatalf("recovered generation %d serves owner %v/%v, want AS%d", want, o, ok, 40000+want)
	}
}

// TestStoreCrashDuringPublish simulates every interruption point of the
// publish protocol on a real segment directory and requires recovery to
// serve the last fully published generation: a crash before rename (full
// temp file left behind), a torn rename target (truncated at several
// depths), a post-publish corruption (flipped byte breaking a section
// CRC), and an empty file.
func TestStoreCrashDuringPublish(t *testing.T) {
	t.Run("crash-before-rename", func(t *testing.T) {
		dir := t.TempDir()
		st := publishGens(t, dir, 2)
		// Crash between temp-write and rename: gen 3's image fully written
		// but never renamed. It must be ignored and garbage-collected.
		snap3 := Compile(64500, []*core.Result{genResult(3, 16)})
		snap3.gen = 3
		tmp := segmentPath(dir, 3) + segTmpSuffix
		f, err := os.Create(tmp)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := snap3.WriteTo(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
		_ = st
		requireServes(t, dir, 2)
		if _, err := os.Stat(tmp); !os.IsNotExist(err) {
			t.Error("recovery left the orphaned temp file behind")
		}
	})

	t.Run("torn-segment", func(t *testing.T) {
		for _, keep := range []float64{0.05, 0.5, 0.95} {
			dir := t.TempDir()
			publishGens(t, dir, 3)
			p := segmentPath(dir, 3)
			img, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(p, img[:int(float64(len(img))*keep)], 0o644); err != nil {
				t.Fatal(err)
			}
			requireServes(t, dir, 2)
		}
	})

	t.Run("bad-crc", func(t *testing.T) {
		dir := t.TempDir()
		publishGens(t, dir, 3)
		p := segmentPath(dir, 3)
		img, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		img[len(img)-5] ^= 0x40 // flip a bit inside the last section
		if err := os.WriteFile(p, img, 0o644); err != nil {
			t.Fatal(err)
		}
		requireServes(t, dir, 2)
	})

	t.Run("empty-file", func(t *testing.T) {
		dir := t.TempDir()
		publishGens(t, dir, 2)
		if err := os.WriteFile(segmentPath(dir, 2), nil, 0o644); err != nil {
			t.Fatal(err)
		}
		requireServes(t, dir, 1)
	})

	t.Run("all-corrupt", func(t *testing.T) {
		dir := t.TempDir()
		publishGens(t, dir, 1)
		if err := os.WriteFile(segmentPath(dir, 1), []byte("BDRSgarbage"), 0o644); err != nil {
			t.Fatal(err)
		}
		requireServes(t, dir, 0)
	})

	t.Run("publish-resumes-after-recovery", func(t *testing.T) {
		dir := t.TempDir()
		publishGens(t, dir, 2)
		st := publishGens(t, dir, 4) // reopen, publish 3 and 4
		if got := st.Generations(); !reflect.DeepEqual(got, []int{1, 2, 3, 4}) {
			t.Fatalf("generations after recovery+publish = %v", got)
		}
		// The diff published on top of a recovered (mmap-backed) history
		// tail must be against that tail, not a fresh baseline.
		d, err := st.Diff(2, 3)
		if err != nil {
			t.Fatal(err)
		}
		if d.Empty() {
			t.Fatal("diff across the recovery boundary is empty; generations 2 and 3 differ")
		}
		requireServes(t, dir, 4)
	})
}

// TestStoreEvictionReleasesSegments proves the satellite-3 lifetime
// contract under -race: when a mmap-backed generation is evicted from the
// bounded history, (a) its segment file is pruned, (b) the snapshot — and
// with it the mapping — becomes collectable (observed via finalizer), and
// (c) every diff keyed by a *retained* generation stays fully readable
// afterwards, because diffs hold value copies and never point into the
// evicted mapping.
func TestStoreEvictionReleasesSegments(t *testing.T) {
	dir := t.TempDir()
	publishGens(t, dir, 2)

	// Reopen so generations 1-2 serve from mappings, then publish 3: its
	// diff (2→3) is computed *from* the mmap-backed generation 2.
	st, err := OpenStore(dir, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	st.Publish(Compile(64500, []*core.Result{genResult(3, 16)}))

	old, ok := st.Generation(1)
	if !ok || old.seg == nil {
		t.Fatal("generation 1 not serving from a segment mapping")
	}
	collected := make(chan struct{})
	runtime.SetFinalizer(old, func(*Snapshot) { close(collected) })
	old = nil

	// Evict generations 1 and 2 (maxHist 3: publishing 4 and 5 drops them).
	st.Publish(Compile(64500, []*core.Result{genResult(4, 16)}))
	st.Publish(Compile(64500, []*core.Result{genResult(5, 16)}))
	if _, err := os.Stat(segmentPath(dir, 1)); !os.IsNotExist(err) {
		t.Error("evicted generation 1's segment file not pruned")
	}

	for i := 0; i < 50; i++ {
		runtime.GC()
		select {
		case <-collected:
			i = 50
		default:
		}
	}
	select {
	case <-collected:
	default:
		t.Fatal("evicted mmap-backed snapshot never became collectable — something still pins it")
	}
	runtime.GC() // run the segment finalizer queued behind the snapshot's

	// Retained diffs must still be fully readable: walk every string and
	// value they carry. diff 4 (3→4) was computed from a heap snapshot,
	// diff 3 — if retained — would have been computed from the evicted
	// mmap generation 2; either way, nothing here may touch the mapping.
	for _, g := range st.Generations() {
		d, err := st.Diff(g-1, g)
		if err != nil {
			continue // g-1 evicted: on-demand diff unavailable, fine
		}
		for _, l := range append(append([]Link(nil), d.Added...), d.Removed...) {
			if len(l.Heuristic) > 1000 {
				t.Fatal("unreachable")
			}
		}
		for _, od := range d.OwnersSet {
			if len(od.Info.Heuristic) > 1000 {
				t.Fatal("unreachable")
			}
		}
	}
	// And the store still serves.
	if cur := st.Current(); cur == nil || cur.Gen() != 5 {
		t.Fatal("store lost its current generation across eviction")
	}
}

// TestPublishDiffsAgainstHistoryTail is the satellite-1 regression: the
// diff published with a new generation must be computed against the
// newest *history* entry — the single source of truth — not the atomic
// serving pointer. The two can diverge (the serving pointer is the last
// thing installLocked updates; recovery and adoption seed history first),
// and the old cur.Load()-based diff silently mis-stated churn when they
// did.
func TestPublishDiffsAgainstHistoryTail(t *testing.T) {
	st := NewStore(0, nil)
	st.Publish(Compile(64500, []*core.Result{genResult(1, 8)}))
	st.Publish(Compile(64500, []*core.Result{genResult(2, 8)}))

	// Force the divergence: point the serving pointer at generation 1
	// while the history tail is generation 2.
	g1, _ := st.Generation(1)
	st.cur.Store(g1)

	d := st.Publish(Compile(64500, []*core.Result{genResult(3, 8)}))
	if d == nil {
		t.Fatal("publish returned no diff")
	}
	if d.From != 2 {
		t.Fatalf("diff computed against generation %d, want history tail 2", d.From)
	}
	g2, _ := st.Generation(2)
	g3, _ := st.Generation(3)
	if want := diffSnapshots(g2, g3); !reflect.DeepEqual(want, d) {
		t.Fatal("published diff does not match the history-tail diff")
	}
}
