package mapdb

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bdrmap/internal/core"
	"bdrmap/internal/netx"
	"bdrmap/internal/topo"
)

// genResult builds a result whose every attribution encodes the intended
// generation: owner ASes, far ASes, and far addresses are all derived from
// tag, so a reader can verify that every answer it gets from one snapshot
// belongs to one single generation — any cross-generation mix is a torn
// read.
func genResult(tag int, nLinks int) *core.Result {
	res := &core.Result{VPName: "vp", Neighbors: make(map[topo.ASN][]*core.Link)}
	farAS := topo.ASN(50000 + tag)
	for i := 0; i < nLinks; i++ {
		base := netx.Addr(0x0a000000 + uint32(i)*4)
		near, far := base+1, base+2
		nearNode := &core.RouterNode{
			ID: 2 * i, Addrs: []netx.Addr{near},
			Owner: topo.ASN(40000 + tag), Heuristic: core.HeurHostNetwork, IsHost: true, HopDist: tag,
		}
		farNode := &core.RouterNode{
			ID: 2*i + 1, Addrs: []netx.Addr{far},
			Owner: farAS, Heuristic: core.HeurRelationship, HopDist: tag + 1,
		}
		l := &core.Link{
			Near: nearNode, Far: farNode, NearAddr: near, FarAddr: far,
			FarAS: farAS, Heuristic: core.HeurRelationship,
		}
		res.Routers = append(res.Routers, nearNode, farNode)
		res.Links = append(res.Links, l)
		res.Neighbors[farAS] = append(res.Neighbors[farAS], l)
	}
	return res
}

// TestGenerationConsistencyUnderSwaps hammers lookups from reader
// goroutines while the store swaps generations, asserting that every
// answer a reader extracts from one snapshot handle is internally
// consistent with exactly one generation. Run under -race in CI.
func TestGenerationConsistencyUnderSwaps(t *testing.T) {
	const (
		nLinks     = 64
		minGens    = 40
		minLookups = 200_000
		nReaders   = 8
	)
	st := NewStore(4, nil)
	st.Publish(Compile(64500, []*core.Result{genResult(1, nLinks)}))

	var (
		stop     atomic.Bool
		lookups  atomic.Int64
		wg       sync.WaitGroup
		failures = make(chan string, nReaders)
	)
	for r := 0; r < nReaders; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastGen := 0
			for !stop.Load() {
				snap := st.Current()
				gen := snap.Gen()
				if gen < lastGen {
					failures <- "generation went backwards"
					return
				}
				lastGen = gen
				// Recover this snapshot's tag from one lookup, then demand
				// every other answer agrees with it.
				o, ok := snap.Owner(0x0a000001)
				if !ok {
					failures <- "indexed interface vanished"
					return
				}
				tag := int(o.AS) - 40000
				wantFar := topo.ASN(50000 + tag)
				for i := 0; i < nLinks; i++ {
					base := netx.Addr(0x0a000000 + uint32(i)*4)
					if o, ok := snap.Owner(base + 1); !ok || o.AS != topo.ASN(40000+tag) || o.HopDist != tag {
						failures <- "near owner from a different generation"
						return
					}
					if o, ok := snap.Owner(base + 2); !ok || o.AS != wantFar {
						failures <- "far owner from a different generation"
						return
					}
					if l, ok := snap.Link(base+1, base+2); !ok || l.FarAS != wantFar {
						failures <- "link from a different generation"
						return
					}
					lookups.Add(3)
				}
				if nb := snap.Neighbors(wantFar); len(nb) != nLinks {
					failures <- "neighbor index torn across generations"
					return
				}
			}
		}()
	}

	// Keep swapping until the readers have both observed enough distinct
	// generations and issued enough lookups to make a torn read likely if
	// one were possible; a deadline bounds the test on slow machines.
	deadline := time.Now().Add(10 * time.Second)
	g := 2
	for ; (g <= minGens || lookups.Load() < minLookups) && time.Now().Before(deadline) && len(failures) == 0; g++ {
		st.Publish(Compile(64500, []*core.Result{genResult(g, nLinks)}))
	}
	stop.Store(true)
	wg.Wait()
	close(failures)
	for f := range failures {
		t.Fatal(f)
	}
	if st.Current().Gen() != g-1 {
		t.Fatalf("final gen = %d, want %d", st.Current().Gen(), g-1)
	}
	if lookups.Load() == 0 {
		t.Fatal("readers performed no lookups")
	}
}
