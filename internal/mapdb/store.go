package mapdb

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"bdrmap/internal/netx"
	"bdrmap/internal/obs"
	"bdrmap/internal/topo"
)

// Store versions Snapshots. Readers take the current generation through
// one atomic pointer load — no locks, no contention with publishers — so
// every query is answered from exactly one immutable generation even while
// a new one is being swapped in. Publishers hold a mutex only among
// themselves to assign generation numbers, maintain the bounded history,
// and compute the per-generation diff.
type Store struct {
	cur atomic.Pointer[Snapshot]

	mu      sync.Mutex
	hist    []*Snapshot      // ascending generation, at most maxHist
	diffs   map[int]*GenDiff // keyed by To generation (diff vs To-1)
	nextGen int
	maxHist int

	reg *obs.Registry
}

// DefaultHistory is the number of generations a Store retains when
// NewStore is given no explicit bound.
const DefaultHistory = 8

// NewStore creates an empty store retaining up to maxHist generations
// (DefaultHistory if maxHist <= 0). reg may be nil.
func NewStore(maxHist int, reg *obs.Registry) *Store {
	if maxHist <= 0 {
		maxHist = DefaultHistory
	}
	return &Store{
		diffs:   make(map[int]*GenDiff),
		nextGen: 1,
		maxHist: maxHist,
		reg:     reg,
	}
}

// Publish assigns snap the next generation number, makes it the current
// generation, and returns its diff against the previous generation (nil
// for the first). snap must be freshly compiled and must not be mutated
// or published again afterwards.
func (st *Store) Publish(snap *Snapshot) *GenDiff {
	st.mu.Lock()
	defer st.mu.Unlock()
	snap.gen = st.nextGen
	st.nextGen++

	var d *GenDiff
	if prev := st.cur.Load(); prev != nil {
		d = diffSnapshots(prev, snap)
		st.diffs[snap.gen] = d
	}
	st.hist = append(st.hist, snap)
	if len(st.hist) > st.maxHist {
		evicted := st.hist[0]
		st.hist = st.hist[1:]
		// The diff *into* the evicted generation references nothing
		// retained; drop it so the cache stays bounded with the history.
		delete(st.diffs, evicted.gen)
	}
	st.cur.Store(snap)

	st.reg.Inc("mapdb.store.publish")
	st.reg.Max("mapdb.store.gen").Observe(int64(snap.gen))
	st.reg.Max("mapdb.store.links").Observe(int64(snap.NumLinks()))
	if d != nil {
		st.reg.Add("mapdb.store.links_added", int64(len(d.Added)))
		st.reg.Add("mapdb.store.links_removed", int64(len(d.Removed)))
		st.reg.Add("mapdb.store.owner_changes", int64(len(d.OwnerChanges)))
	}
	return d
}

// Current returns the latest published generation (nil before the first
// Publish). Lock-free; safe from any number of goroutines.
func (st *Store) Current() *Snapshot { return st.cur.Load() }

// Generation returns the retained snapshot with generation g, if any.
func (st *Store) Generation(g int) (*Snapshot, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, s := range st.hist {
		if s.gen == g {
			return s, true
		}
	}
	return nil, false
}

// Generations lists the retained generation numbers, ascending.
func (st *Store) Generations() []int {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]int, len(st.hist))
	for i, s := range st.hist {
		out[i] = s.gen
	}
	return out
}

// BadRangeError reports a structurally invalid diff request: a diff runs
// forward in time, so `from` must name a strictly earlier generation than
// `to`. It maps to HTTP 400 — no history window could ever satisfy the
// request.
type BadRangeError struct {
	From, To int
}

func (e *BadRangeError) Error() string {
	if e.From == e.To {
		return fmt.Sprintf("mapdb: diff range is empty: from and to are both generation %d", e.From)
	}
	return fmt.Sprintf("mapdb: diff range is reversed: from %d must be earlier than to %d", e.From, e.To)
}

// NotRetainedError reports a generation that fell out of the store's
// bounded history (or was never published). It maps to HTTP 404 — the
// request was well-formed but the data is gone.
type NotRetainedError struct {
	Gen int
}

func (e *NotRetainedError) Error() string {
	return fmt.Sprintf("mapdb: generation %d not retained", e.Gen)
}

// Diff returns the change from generation `from` to generation `to`. The
// adjacent diff computed at Publish time is served from cache; any other
// retained pair is computed on demand. `from` must be strictly earlier
// than `to` (*BadRangeError otherwise) and both generations must still be
// in the history window (*NotRetainedError otherwise, naming the earliest
// missing generation).
func (st *Store) Diff(from, to int) (*GenDiff, error) {
	if from >= to {
		return nil, &BadRangeError{From: from, To: to}
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if from == to-1 {
		if d, ok := st.diffs[to]; ok {
			return d, nil
		}
	}
	var a, b *Snapshot
	for _, s := range st.hist {
		if s.gen == from {
			a = s
		}
		if s.gen == to {
			b = s
		}
	}
	if a == nil {
		return nil, &NotRetainedError{Gen: from}
	}
	if b == nil {
		return nil, &NotRetainedError{Gen: to}
	}
	return diffSnapshots(a, b), nil
}

// OwnerChange records an interface address whose inferred owner AS
// changed between two generations (the address is present in both).
type OwnerChange struct {
	Addr     netx.Addr
	From, To topo.ASN
}

// GenDiff is the queryable churn between two generations: interdomain
// links that appeared or vanished, neighbor ASes gained or lost, and
// interface addresses whose owner attribution changed.
type GenDiff struct {
	From, To int

	Added   []Link
	Removed []Link

	NeighborsAdded   []topo.ASN
	NeighborsRemoved []topo.ASN

	OwnerChanges []OwnerChange
}

// Empty reports whether nothing changed between the generations.
func (d *GenDiff) Empty() bool {
	return len(d.Added) == 0 && len(d.Removed) == 0 && len(d.OwnerChanges) == 0
}

// diffSnapshots computes the churn from a to b over the canonical merged
// maps (link/neighbor level) and the interface-owner indexes.
func diffSnapshots(a, b *Snapshot) *GenDiff {
	cd := coreDiff(a, b)
	d := &GenDiff{
		From:             a.gen,
		To:               b.gen,
		Added:            cd.added,
		Removed:          cd.removed,
		NeighborsAdded:   cd.nbAdded,
		NeighborsRemoved: cd.nbRemoved,
	}
	for i, addr := range a.ownerAddrs {
		if bo, ok := b.Owner(addr); ok && bo.AS != a.owners[i].AS {
			d.OwnerChanges = append(d.OwnerChanges, OwnerChange{
				Addr: addr, From: a.owners[i].AS, To: bo.AS,
			})
		}
	}
	sort.Slice(d.OwnerChanges, func(i, j int) bool {
		return d.OwnerChanges[i].Addr < d.OwnerChanges[j].Addr
	})
	return d
}

type linkChurn struct {
	added, removed     []Link
	nbAdded, nbRemoved []topo.ASN
}

// coreDiff diffs the observed link sets directly (the identity queries
// carry), falling back to empty slices rather than nils for JSON shape.
func coreDiff(a, b *Snapshot) linkChurn {
	var c linkChurn
	inA := make(map[Link]bool, len(a.links))
	for _, l := range a.links {
		inA[stripHeur(l)] = true
	}
	inB := make(map[Link]bool, len(b.links))
	for _, l := range b.links {
		inB[stripHeur(l)] = true
		if !inA[stripHeur(l)] {
			c.added = append(c.added, l)
		}
	}
	for _, l := range a.links {
		if !inB[stripHeur(l)] {
			c.removed = append(c.removed, l)
		}
	}
	for _, as := range b.NeighborASes() {
		if len(a.neighborIdx[as]) == 0 {
			c.nbAdded = append(c.nbAdded, as)
		}
	}
	for _, as := range a.NeighborASes() {
		if len(b.neighborIdx[as]) == 0 {
			c.nbRemoved = append(c.nbRemoved, as)
		}
	}
	return c
}

// stripHeur drops the heuristic tag from a link's identity: the same
// interconnect re-attributed by a different rule is not churn.
func stripHeur(l Link) Link {
	l.Heuristic = ""
	return l
}
