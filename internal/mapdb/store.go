package mapdb

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"bdrmap/internal/netx"
	"bdrmap/internal/obs"
	"bdrmap/internal/topo"
)

// Store versions Snapshots. Readers take the current generation through
// one atomic pointer load — no locks, no contention with publishers — so
// every query is answered from exactly one immutable generation even while
// a new one is being swapped in. Publishers hold a mutex only among
// themselves to assign generation numbers, maintain the bounded history,
// and compute the per-generation diff.
//
// A Store opened with OpenStore is additionally durable: every published
// generation is serialized as a segment file (write-temp, fsync, atomic
// rename), and a restart recovers the bounded history from the segment
// directory, serving queries again from the mapped bytes.
type Store struct {
	cur atomic.Pointer[Snapshot]

	mu      sync.Mutex
	hist    []*Snapshot      // ascending generation, at most maxHist
	diffs   map[int]*GenDiff // keyed by To generation (diff vs To-1)
	nextGen int
	maxHist int

	dir string // segment directory; "" = memory-only

	watchers map[int64]*watcher
	watchSeq int64

	reg *obs.Registry
}

// watcher is one /v1/watch subscriber (or in-process follower tap): a
// buffered diff channel. A watcher that cannot keep up is closed and
// dropped — the consumer resynchronizes via the history or a full segment.
type watcher struct {
	ch     chan *GenDiff
	closed bool
}

// DefaultHistory is the number of generations a Store retains when
// NewStore is given no explicit bound.
const DefaultHistory = 8

// NewStore creates an empty in-memory store retaining up to maxHist
// generations (DefaultHistory if maxHist <= 0). reg may be nil.
func NewStore(maxHist int, reg *obs.Registry) *Store {
	if maxHist <= 0 {
		maxHist = DefaultHistory
	}
	return &Store{
		diffs:    make(map[int]*GenDiff),
		nextGen:  1,
		maxHist:  maxHist,
		watchers: make(map[int64]*watcher),
		reg:      reg,
	}
}

// OpenStore creates (or reopens) a durable store backed by a segment
// directory. Existing segment files are recovered oldest-to-newest: the
// last maxHist generations whose checksums verify are mapped back into
// the history, the newest becomes the serving generation, and publishing
// resumes at the next generation number. Incomplete publishes (leftover
// temp files) and corrupt segments are skipped — recovery always lands on
// the last fully published generation.
func OpenStore(dir string, maxHist int, reg *obs.Registry) (*Store, error) {
	st := NewStore(maxHist, reg)
	st.dir = dir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("mapdb: segment dir: %w", err)
	}

	names, err := filepath.Glob(filepath.Join(dir, "gen-*"+segSuffix))
	if err != nil {
		return nil, err
	}
	// A crash between temp-write and rename leaves a *.tmp behind; it was
	// never published, so it is garbage to collect, not data to recover.
	if tmps, err := filepath.Glob(filepath.Join(dir, "*"+segTmpSuffix)); err == nil {
		for _, p := range tmps {
			_ = os.Remove(p)
		}
	}

	var recovered []*Snapshot
	for _, p := range names {
		snap, err := OpenSegment(p)
		if err != nil {
			// Torn write, truncation, or bit rot: skip the file. The
			// publish protocol renames only after fsync, so a valid newer
			// generation can never depend on a corrupt older one.
			st.reg.Inc("mapdb.segment.corrupt")
			continue
		}
		st.reg.Inc("mapdb.segment.recovered")
		recovered = append(recovered, snap)
	}
	sort.Slice(recovered, func(i, j int) bool { return recovered[i].gen < recovered[j].gen })
	if len(recovered) > st.maxHist {
		recovered = recovered[len(recovered)-st.maxHist:]
	}
	if len(recovered) > 0 {
		st.hist = recovered
		last := recovered[len(recovered)-1]
		st.nextGen = last.gen + 1
		st.cur.Store(last)
		st.reg.Max("mapdb.store.gen").Observe(int64(last.gen))
	}
	return st, nil
}

// Dir returns the segment directory, or "" for a memory-only store.
func (st *Store) Dir() string { return st.dir }

// latestLocked returns the newest history entry. This — not the atomic
// serving pointer — is the publisher's single source of truth for "the
// previous generation": restart recovery and follower adoption seed the
// history first, and a diff computed against a divergent serving pointer
// would silently mis-state the churn.
func (st *Store) latestLocked() *Snapshot {
	if len(st.hist) == 0 {
		return nil
	}
	return st.hist[len(st.hist)-1]
}

// Publish assigns snap the next generation number, makes it the current
// generation, and returns its diff against the previous generation (nil
// for the first). snap must be freshly compiled and must not be mutated
// or published again afterwards. On a durable store the segment file is
// written and fsynced before the generation becomes visible to readers
// or watchers.
func (st *Store) Publish(snap *Snapshot) *GenDiff {
	st.mu.Lock()
	defer st.mu.Unlock()
	snap.gen = st.nextGen
	st.nextGen++

	var d *GenDiff
	if prev := st.latestLocked(); prev != nil {
		d = diffSnapshots(prev, snap)
		st.diffs[snap.gen] = d
	}
	st.installLocked(snap, d)
	return d
}

// Adopt installs a snapshot that already carries its generation number —
// a follower applying the leader's stream, or a full segment fetched to
// close a history gap. The generation must be newer than everything
// retained. d, when non-nil, is the leader's own diff into this
// generation and is cached verbatim so the follower serves
// byte-identical /v1/diff and /v1/watch content.
func (st *Store) Adopt(snap *Snapshot, d *GenDiff) error {
	if snap.gen <= 0 {
		return fmt.Errorf("mapdb: adopt: snapshot carries no generation")
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if prev := st.latestLocked(); prev != nil && snap.gen <= prev.gen {
		return fmt.Errorf("mapdb: adopt: generation %d is not newer than retained %d", snap.gen, prev.gen)
	}
	st.nextGen = snap.gen + 1
	if d != nil && d.To == snap.gen && d.From == snap.gen-1 {
		st.diffs[snap.gen] = d
	}
	st.installLocked(snap, d)
	return nil
}

// installLocked is the shared tail of Publish and Adopt: persist, append
// to history, evict, swap the serving pointer, notify watchers, account.
func (st *Store) installLocked(snap *Snapshot, d *GenDiff) {
	if st.dir != "" {
		if err := writeSegmentFile(st.dir, snap); err != nil {
			// Serving memory stays authoritative: a full disk degrades
			// durability, not availability. The counter is the alarm.
			st.reg.Inc("mapdb.segment.write_errors")
		} else {
			st.reg.Inc("mapdb.segment.writes")
		}
	}
	st.hist = append(st.hist, snap)
	if len(st.hist) > st.maxHist {
		evicted := st.hist[0]
		st.hist = st.hist[1:]
		// The diff *into* the evicted generation references nothing
		// retained; drop it so the cache stays bounded with the history.
		// Diffs keyed by retained generations hold value copies (links,
		// owner records, heap strings) — never pointers into the evicted
		// snapshot's arrays — so the evicted segment's mapping may be
		// released by GC without invalidating any retained diff.
		delete(st.diffs, evicted.gen)
		if st.dir != "" {
			_ = os.Remove(segmentPath(st.dir, evicted.gen))
		}
	}
	st.cur.Store(snap)
	st.notifyLocked(snap, d)

	st.reg.Inc("mapdb.store.publish")
	st.reg.Max("mapdb.store.gen").Observe(int64(snap.gen))
	st.reg.Max("mapdb.store.links").Observe(int64(snap.NumLinks()))
	if d != nil {
		st.reg.Add("mapdb.store.links_added", int64(len(d.Added)))
		st.reg.Add("mapdb.store.links_removed", int64(len(d.Removed)))
		st.reg.Add("mapdb.store.owner_changes", int64(len(d.OwnerChanges)))
	}
}

// notifyLocked pushes the generation's diff to every watcher. The very
// first generation has no predecessor; watchers still get a frame — a
// synthetic everything-added diff from the empty map — so a monitor
// attached before the first publish sees it. A watcher whose buffer is
// full is lagging beyond redemption: its channel is closed (the consumer
// resynchronizes) rather than allowed to block the publisher.
func (st *Store) notifyLocked(snap *Snapshot, d *GenDiff) {
	if len(st.watchers) == 0 {
		return
	}
	if d == nil {
		d = diffSnapshots(&Snapshot{host: snap.host}, snap)
		d.To = snap.gen
	}
	for id, w := range st.watchers {
		select {
		case w.ch <- d:
		default:
			w.closed = true
			close(w.ch)
			delete(st.watchers, id)
			st.reg.Inc("mapdb.watch.lagged")
		}
	}
}

// Watch subscribes to the publish stream: every generation published
// after the call is delivered as its GenDiff on the returned channel.
// cur is the newest generation at subscription time, letting the caller
// serve backlog via Diff without racing a concurrent publish. The
// channel is closed if the subscriber falls more than buf generations
// behind. cancel is idempotent and must be called when done.
func (st *Store) Watch(buf int) (ch <-chan *GenDiff, cancel func(), cur int) {
	if buf <= 0 {
		buf = 64
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	w := &watcher{ch: make(chan *GenDiff, buf)}
	id := st.watchSeq
	st.watchSeq++
	st.watchers[id] = w
	if last := st.latestLocked(); last != nil {
		cur = last.gen
	}
	cancel = func() {
		st.mu.Lock()
		defer st.mu.Unlock()
		if got, ok := st.watchers[id]; ok && got == w {
			delete(st.watchers, id)
		}
	}
	return w.ch, cancel, cur
}

// Current returns the latest published generation (nil before the first
// Publish). Lock-free; safe from any number of goroutines.
func (st *Store) Current() *Snapshot { return st.cur.Load() }

// Generation returns the retained snapshot with generation g, if any.
func (st *Store) Generation(g int) (*Snapshot, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, s := range st.hist {
		if s.gen == g {
			return s, true
		}
	}
	return nil, false
}

// Generations lists the retained generation numbers, ascending.
func (st *Store) Generations() []int {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]int, len(st.hist))
	for i, s := range st.hist {
		out[i] = s.gen
	}
	return out
}

// BadRangeError reports a structurally invalid diff request: a diff runs
// forward in time, so `from` must name a strictly earlier generation than
// `to`. It maps to HTTP 400 — no history window could ever satisfy the
// request.
type BadRangeError struct {
	From, To int
}

func (e *BadRangeError) Error() string {
	if e.From == e.To {
		return fmt.Sprintf("mapdb: diff range is empty: from and to are both generation %d", e.From)
	}
	return fmt.Sprintf("mapdb: diff range is reversed: from %d must be earlier than to %d", e.From, e.To)
}

// NotRetainedError reports a generation that fell out of the store's
// bounded history (or was never published). It maps to HTTP 404 — the
// request was well-formed but the data is gone.
type NotRetainedError struct {
	Gen int
}

func (e *NotRetainedError) Error() string {
	return fmt.Sprintf("mapdb: generation %d not retained", e.Gen)
}

// Diff returns the change from generation `from` to generation `to`. The
// adjacent diff computed at Publish time is served from cache; any other
// retained pair is computed on demand. `from` must be strictly earlier
// than `to` (*BadRangeError otherwise) and both generations must still be
// in the history window (*NotRetainedError otherwise, naming the earliest
// missing generation).
func (st *Store) Diff(from, to int) (*GenDiff, error) {
	if from >= to {
		return nil, &BadRangeError{From: from, To: to}
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if from == to-1 {
		if d, ok := st.diffs[to]; ok {
			return d, nil
		}
	}
	var a, b *Snapshot
	for _, s := range st.hist {
		if s.gen == from {
			a = s
		}
		if s.gen == to {
			b = s
		}
	}
	if a == nil {
		return nil, &NotRetainedError{Gen: from}
	}
	if b == nil {
		return nil, &NotRetainedError{Gen: to}
	}
	return diffSnapshots(a, b), nil
}

// OwnerChange records an interface address whose inferred owner AS
// changed between two generations (the address is present in both).
type OwnerChange struct {
	Addr     netx.Addr
	From, To topo.ASN
}

// OwnerDelta carries the full new attribution of one interface address —
// the replication payload letting a follower reconstruct the To
// generation's owner index without the full segment.
type OwnerDelta struct {
	Addr netx.Addr
	Info OwnerInfo
}

// GenDiff is the queryable churn between two generations: interdomain
// links that appeared or vanished, neighbor ASes gained or lost, and
// interface addresses whose owner attribution changed. It doubles as the
// replication frame — OwnersSet/OwnersRemoved/Relabeled make it a
// complete delta from which Apply reconstructs the To generation.
type GenDiff struct {
	From, To int

	Added   []Link
	Removed []Link

	// Relabeled lists links whose identity (near, far, farAS) persists in
	// both generations but whose attributing heuristic changed — not
	// churn for monitors, but required to replicate byte-identically.
	Relabeled []Link

	NeighborsAdded   []topo.ASN
	NeighborsRemoved []topo.ASN

	OwnerChanges []OwnerChange

	// Full owner-level delta: every address whose attribution record is
	// new or changed in any field (OwnersSet carries the To-generation
	// record), and every address that vanished.
	OwnersSet     []OwnerDelta
	OwnersRemoved []netx.Addr

	// To-generation metadata, carried so a follower labels its adopted
	// snapshot exactly as the leader labels the original.
	VPs         []string
	DegradedVPs []string

	// Partial marks flag degraded-artifact churn: a diff into or out of a
	// quorum-partial generation reports the straggler VP's links as
	// Removed and then re-Added by the healing publish. Consumers tracking
	// border flaps (tslpmon, /v1/watch subscribers) should discount diffs
	// with either mark rather than alarm on phantom churn.
	FromPartial bool
	ToPartial   bool
}

// Empty reports whether nothing changed between the generations.
func (d *GenDiff) Empty() bool {
	return len(d.Added) == 0 && len(d.Removed) == 0 && len(d.OwnerChanges) == 0 &&
		len(d.OwnersSet) == 0 && len(d.OwnersRemoved) == 0 && len(d.Relabeled) == 0
}

// Degraded reports whether the diff crosses a quorum-partial generation
// on either side, i.e. some or all of its link churn may be a publishing
// artifact rather than observed topology change.
func (d *GenDiff) Degraded() bool { return d.FromPartial || d.ToPartial }

// diffSnapshots computes the churn from a to b over the canonical merged
// maps (link/neighbor level) and the interface-owner indexes.
func diffSnapshots(a, b *Snapshot) *GenDiff {
	cd := coreDiff(a, b)
	d := &GenDiff{
		From:             a.gen,
		To:               b.gen,
		Added:            cd.added,
		Removed:          cd.removed,
		Relabeled:        cd.relabeled,
		NeighborsAdded:   cd.nbAdded,
		NeighborsRemoved: cd.nbRemoved,
		VPs:              append([]string(nil), b.vps...),
		DegradedVPs:      append([]string(nil), b.degraded...),
		FromPartial:      a.Partial(),
		ToPartial:        b.Partial(),
	}
	for i, addr := range a.ownerAddrs {
		bo, ok := b.Owner(addr)
		if !ok {
			d.OwnersRemoved = append(d.OwnersRemoved, addr)
			continue
		}
		if bo != a.owners[i] {
			d.OwnersSet = append(d.OwnersSet, OwnerDelta{Addr: addr, Info: bo})
		}
		if bo.AS != a.owners[i].AS {
			d.OwnerChanges = append(d.OwnerChanges, OwnerChange{
				Addr: addr, From: a.owners[i].AS, To: bo.AS,
			})
		}
	}
	for i, addr := range b.ownerAddrs {
		if _, ok := a.Owner(addr); !ok {
			d.OwnersSet = append(d.OwnersSet, OwnerDelta{Addr: addr, Info: b.owners[i]})
		}
	}
	sort.Slice(d.OwnerChanges, func(i, j int) bool {
		return d.OwnerChanges[i].Addr < d.OwnerChanges[j].Addr
	})
	sort.Slice(d.OwnersSet, func(i, j int) bool {
		return d.OwnersSet[i].Addr < d.OwnersSet[j].Addr
	})
	sort.Slice(d.OwnersRemoved, func(i, j int) bool {
		return d.OwnersRemoved[i] < d.OwnersRemoved[j]
	})
	return d
}

type linkChurn struct {
	added, removed, relabeled []Link
	nbAdded, nbRemoved        []topo.ASN
}

// coreDiff diffs the observed link sets directly (the identity queries
// carry), falling back to empty slices rather than nils for JSON shape.
func coreDiff(a, b *Snapshot) linkChurn {
	var c linkChurn
	inA := make(map[Link]string, len(a.links))
	for _, l := range a.links {
		inA[stripHeur(l)] = l.Heuristic
	}
	inB := make(map[Link]bool, len(b.links))
	for _, l := range b.links {
		inB[stripHeur(l)] = true
		if h, ok := inA[stripHeur(l)]; !ok {
			c.added = append(c.added, l)
		} else if h != l.Heuristic {
			c.relabeled = append(c.relabeled, l)
		}
	}
	for _, l := range a.links {
		if !inB[stripHeur(l)] {
			c.removed = append(c.removed, l)
		}
	}
	for _, as := range b.nbAS {
		if lo, hi := a.neighborSpan(as); lo == hi {
			c.nbAdded = append(c.nbAdded, as)
		}
	}
	for _, as := range a.nbAS {
		if lo, hi := b.neighborSpan(as); lo == hi {
			c.nbRemoved = append(c.nbRemoved, as)
		}
	}
	return c
}

// stripHeur drops the heuristic tag from a link's identity: the same
// interconnect re-attributed by a different rule is not churn.
func stripHeur(l Link) Link {
	l.Heuristic = ""
	return l
}
