package mapdb

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"bdrmap/internal/core"
	"bdrmap/internal/eval"
	"bdrmap/internal/goldenguard"
	"bdrmap/internal/obs"
	"bdrmap/internal/scamper"
	"bdrmap/internal/topo"
)

var update = flag.Bool("update", false, "rewrite testdata/golden files")

// goldenRound is the stable serialization of one published generation of
// an incremental run: the churn action, the measurement fingerprint, and
// the full served link set.
type goldenRound struct {
	Gen     int      `json:"gen"`
	Action  string   `json:"action"`
	TraceFP string   `json:"trace_fp"`
	Links   []string `json:"links"`
}

func goldenRounds(ev []RoundEvent, st *Store) []goldenRound {
	out := make([]goldenRound, 0, len(ev))
	for _, e := range ev {
		snap, ok := st.Generation(e.Gen)
		if !ok {
			continue
		}
		links := make([]string, 0, snap.NumLinks())
		for _, l := range snap.Links() {
			far := l.Far.String()
			if l.Far.IsZero() {
				far = "silent"
			}
			links = append(links, fmt.Sprintf("%s %s %s %s", l.Near, far, l.FarAS, l.Heuristic))
		}
		out = append(out, goldenRound{
			Gen:     e.Gen,
			Action:  e.Action,
			TraceFP: fmt.Sprintf("%016x", e.TraceFP),
			Links:   links,
		})
	}
	return out
}

// TestRunRoundsIncrementalEquivalence is the tentpole's proof obligation:
// four rounds of churn, measured incrementally with Verify on (every round
// is cross-checked against a from-scratch run on an identically mutated
// shadow world — trace fingerprints, owner attributions, and link sets
// must be byte-identical). The incremental store must then match a
// plain scratch RunRounds generation for generation, under 1 and 4
// workers, and the whole run must match the checked-in golden files.
func TestRunRoundsIncrementalEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-round pipeline run")
	}
	profiles := []struct {
		name string
		prof topo.Profile
	}{
		{"tiny", topo.TinyProfile()},
		{"small-access", topo.SmallAccessProfile()},
		// Extension scenarios: churn must not disturb what each one
		// stresses — remote circuits, hypergiant shortcuts, route-server
		// vs bilateral sessions, regional VP placement.
		{"remote-peering", topo.RemotePeeringProfile()},
		{"hypergiant", topo.HypergiantProfile()},
		{"route-server", topo.RouteServerMixProfile()},
		{"regional-vp", topo.RegionalVPProfile()},
	}
	for _, pc := range profiles {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s-w%d", pc.name, workers), func(t *testing.T) {
				cfg := RoundsConfig{
					Profile: pc.prof, Seed: 1, Rounds: 4, Workers: workers,
					Incremental: true, Verify: true,
				}
				st := NewStore(0, obs.New())
				ev, err := RunRounds(cfg, st)
				if err != nil {
					t.Fatal(err)
				}
				if len(ev) != 4 {
					t.Fatalf("events = %v, want 4", ev)
				}

				// Generation-for-generation identity with a plain scratch run.
				sst := NewStore(0, obs.New())
				sev, err := RunRounds(RoundsConfig{
					Profile: pc.prof, Seed: 1, Rounds: 4, Workers: workers,
				}, sst)
				if err != nil {
					t.Fatal(err)
				}
				for i := range ev {
					if ev[i] != sev[i] {
						t.Errorf("round %d event diverged: incremental %+v scratch %+v", i, ev[i], sev[i])
					}
					a, _ := st.Generation(ev[i].Gen)
					b, _ := sst.Generation(sev[i].Gen)
					if !reflect.DeepEqual(a.Links(), b.Links()) {
						t.Errorf("generation %d: incremental link set != scratch", ev[i].Gen)
					}
				}

				// Both worker counts must reproduce the same golden run.
				got := goldenRounds(ev, st)
				path := filepath.Join("testdata", "golden",
					fmt.Sprintf("rounds-%s-seed1.json", pc.name))
				if *update && workers == 1 {
					goldenguard.Check(t)
					raw, err := json.MarshalIndent(got, "", "  ")
					if err != nil {
						t.Fatal(err)
					}
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
						t.Fatal(err)
					}
					t.Logf("wrote %s (%d rounds)", path, len(got))
					return
				}
				raw, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file (run `go test ./internal/mapdb -run TestRunRoundsIncrementalEquivalence -update`): %v", err)
				}
				var want []goldenRound
				if err := json.Unmarshal(raw, &want); err != nil {
					t.Fatalf("corrupt golden file %s: %v", path, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("incremental run diverged from %s", path)
				}
			})
		}
	}
}

// TestIncrementalUnchangedWorldProbeReduction pins the headline win: a
// second incremental round over an unchanged world replays every target
// from cache — zero probe packets, all cache hits — at least 5x cheaper
// than the from-scratch control, while compiling a byte-identical
// snapshot.
func TestIncrementalUnchangedWorldProbeReduction(t *testing.T) {
	n := topo.Generate(topo.TinyProfile(), 1)
	states := make([]*scamper.RoundState, len(n.VPs))
	for i := range states {
		states[i] = scamper.NewRoundState()
	}
	scfg := scamper.Config{Workers: 2}

	s1 := eval.BuildFromNetwork(n, 1)
	s1.RunAllIncremental(scfg, states, nil)

	s2 := eval.BuildFromNetwork(n, 1)
	s2.RunAllIncremental(scfg, states, s1.Results)

	s3 := eval.BuildFromNetwork(n, 1)
	s3.RunAll(scfg)

	scratchPackets := s3.Obs.Counter("probe.packets_sent").Load()
	incPackets := s2.Obs.Counter("probe.packets_sent").Load()
	if scratchPackets == 0 {
		t.Fatal("scratch run sent no probes")
	}
	if incPackets*5 > scratchPackets {
		t.Errorf("incremental round not >=5x cheaper: %d probe packets vs scratch %d",
			incPackets, scratchPackets)
	}
	if hits, misses := s2.Obs.Counter("rounds.cache.hit").Load(), s2.Obs.Counter("rounds.cache.miss").Load(); hits == 0 || misses != 0 {
		t.Errorf("unchanged world: rounds.cache.hit = %d, rounds.cache.miss = %d, want all hits", hits, misses)
	}
	if live := s2.Obs.Counter("driver.traces_live").Load(); live != 0 {
		t.Errorf("unchanged world walked %d traces live", live)
	}
	if tot2, tot3 := s2.Obs.Counter("driver.traces").Load(), s3.Obs.Counter("driver.traces").Load(); tot2 != tot3 {
		t.Errorf("driver.traces diverged: incremental %d scratch %d", tot2, tot3)
	}

	// Byte-identical compiled snapshot.
	inc := Compile(n.HostASN, s2.Results)
	scr := Compile(n.HostASN, s3.Results)
	if !reflect.DeepEqual(inc.links, scr.links) {
		t.Error("incremental snapshot link set != scratch")
	}
	if !reflect.DeepEqual(inc.ownerAddrs, scr.ownerAddrs) || !reflect.DeepEqual(inc.owners, scr.owners) {
		t.Error("incremental snapshot owner attributions != scratch")
	}
	for i := range s2.Datasets {
		if s2.Datasets[i].TraceFingerprint() != s3.Datasets[i].TraceFingerprint() {
			t.Errorf("VP %d trace fingerprint diverged", i)
		}
	}
	// And the core actually spliced prior attributions rather than
	// re-deriving everything.
	if spliced := s2.Obs.Counter("core.inc.spliced").Load(); spliced == 0 {
		t.Error("core.inc.spliced = 0: no attributions were spliced")
	}
}

// TestPublishedGenStableUnderInterleavedPublish pins the semantics the
// generation-attribution fix relies on, with the racy interleave made
// deterministic: a snapshot's Gen() is assigned at Publish and never moves,
// while store.Current().Gen() — which RunRounds used to read after
// publishing — names whoever published last. An event built from the
// latter would attribute a rival's generation whenever a publish slips in
// between; an event built from the published snapshot's own Gen() cannot.
func TestPublishedGenStableUnderInterleavedPublish(t *testing.T) {
	st := NewStore(0, obs.New())
	ours := Compile(64500, []*core.Result{genResult(1, 4)})
	st.Publish(ours)
	g := ours.Gen()

	// A rival publishes before the round event is recorded — the
	// preemption the concurrent bug needs, forced deterministically.
	st.Publish(Compile(64999, nil))

	if ours.Gen() != g {
		t.Fatalf("published snapshot's generation moved: %d -> %d", g, ours.Gen())
	}
	if cur := st.Current().Gen(); cur == g {
		t.Fatalf("rival publish did not advance the current generation (still %d)", cur)
	}
	// The old RoundEvent expression would have recorded the rival's
	// generation here.
	if snap, ok := st.Generation(g); !ok || snap.HostASN() != 64500 {
		t.Fatalf("generation %d does not resolve to our snapshot", g)
	}
}

// TestRoundEventGenPinnedUnderConcurrentPublish exercises the same
// contract through RunRounds itself, with a real concurrent rival: no
// round event may ever name a generation the rival published.
func TestRoundEventGenPinnedUnderConcurrentPublish(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-round pipeline run")
	}
	st := NewStore(64, obs.New())

	const foreignHost = topo.ASN(64999)
	foreign := make(map[int]bool) // gens the rival publisher was assigned
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				snap := Compile(foreignHost, nil)
				st.Publish(snap)
				foreign[snap.Gen()] = true
			}
		}
	}()

	ev, err := RunRounds(RoundsConfig{Profile: topo.TinyProfile(), Seed: 1, Rounds: 3}, st)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(foreign) == 0 {
		t.Fatal("rival publisher never ran")
	}
	for i, e := range ev {
		if foreign[e.Gen] {
			t.Errorf("round %d: event names generation %d, which the rival publisher owns — the event attributed a foreign publish",
				i, e.Gen)
		}
	}
}

// TestDiffErrorCodes pins the Store.Diff error contract and its HTTP
// mapping: structurally invalid ranges (empty or reversed) are
// *BadRangeError / 400 bad_range; generations that fell out of the history
// window are *NotRetainedError / 404 unknown_generation.
func TestDiffErrorCodes(t *testing.T) {
	st := NewStore(0, nil) // DefaultHistory = 8
	for i := 0; i < DefaultHistory+2; i++ {
		st.Publish(Compile(64500, []*core.Result{genResult(i, 4)}))
	}
	// Generations 1 and 2 are evicted; 3..10 retained.
	if got := st.Generations(); got[0] != 3 || got[len(got)-1] != 10 {
		t.Fatalf("retained generations = %v, want 3..10", got)
	}

	h := Handler(st, nil)
	cases := []struct {
		name       string
		from, to   int
		wantErr    any // *BadRangeError, *NotRetainedError with expected fields, or nil
		wantStatus int
		wantCode   string
	}{
		{"empty range", 5, 5, &BadRangeError{From: 5, To: 5}, http.StatusBadRequest, "bad_range"},
		{"reversed range", 6, 5, &BadRangeError{From: 6, To: 5}, http.StatusBadRequest, "bad_range"},
		{"evicted from", 1, 5, &NotRetainedError{Gen: 1}, http.StatusNotFound, "unknown_generation"},
		{"evicted pair", 1, 2, &NotRetainedError{Gen: 1}, http.StatusNotFound, "unknown_generation"},
		{"unknown to", 9, 99, &NotRetainedError{Gen: 99}, http.StatusNotFound, "unknown_generation"},
		{"valid", 9, 10, nil, http.StatusOK, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := st.Diff(tc.from, tc.to)
			switch want := tc.wantErr.(type) {
			case nil:
				if err != nil {
					t.Fatalf("Diff(%d,%d) = %v, want nil", tc.from, tc.to, err)
				}
			case *BadRangeError:
				var br *BadRangeError
				if !errors.As(err, &br) || *br != *want {
					t.Fatalf("Diff(%d,%d) = %v, want %v", tc.from, tc.to, err, want)
				}
			case *NotRetainedError:
				var nr *NotRetainedError
				if !errors.As(err, &nr) || *nr != *want {
					t.Fatalf("Diff(%d,%d) = %v, want %v", tc.from, tc.to, err, want)
				}
			}

			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet,
				fmt.Sprintf("/v1/diff?from=%d&to=%d", tc.from, tc.to), nil))
			if rec.Code != tc.wantStatus {
				t.Fatalf("GET /v1/diff?from=%d&to=%d = %d, want %d (body %s)",
					tc.from, tc.to, rec.Code, tc.wantStatus, rec.Body)
			}
			if tc.wantCode != "" {
				var body struct {
					Error struct {
						Code string `json:"code"`
					} `json:"error"`
				}
				if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
					t.Fatal(err)
				}
				if body.Error.Code != tc.wantCode {
					t.Errorf("error code = %q, want %q", body.Error.Code, tc.wantCode)
				}
			}
		})
	}
}
