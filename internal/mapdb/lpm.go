package mapdb

import "bdrmap/internal/netx"

// Compiled longest-prefix-match table. The generic netx.Trie is a pointer
// structure built for incremental mutation; a Snapshot is immutable, so its
// trie is compiled once into a flat node array — index arithmetic instead
// of pointer chasing, no per-node allocations to scan at lookup time, and
// cache-friendly traversal for the serving hot path.

// lpmNode is one node of the compiled binary trie. child values and entry
// are -1 when absent; child indexes point into lpmTable.nodes.
type lpmNode struct {
	child [2]int32
	entry int32
}

// lpmTable is an immutable compiled trie mapping prefixes to entry
// indexes. Lookup performs no allocations.
type lpmTable struct {
	nodes []lpmNode
}

// lpmBuilder accumulates prefix→entry insertions and compiles the table.
// Inserting the same prefix twice keeps the last entry.
type lpmBuilder struct {
	nodes []lpmNode
}

func newLPMBuilder() *lpmBuilder {
	return &lpmBuilder{nodes: []lpmNode{{child: [2]int32{-1, -1}, entry: -1}}}
}

// insert associates entry with prefix p.
func (b *lpmBuilder) insert(p netx.Prefix, entry int32) {
	n := int32(0)
	for depth := 0; depth < p.Len; depth++ {
		bit := int(p.Base>>(31-uint(depth))) & 1
		if b.nodes[n].child[bit] < 0 {
			b.nodes = append(b.nodes, lpmNode{child: [2]int32{-1, -1}, entry: -1})
			b.nodes[n].child[bit] = int32(len(b.nodes) - 1)
		}
		n = b.nodes[n].child[bit]
	}
	b.nodes[n].entry = entry
}

// table freezes the builder into an immutable lookup table. The builder
// must not be used afterwards.
func (b *lpmBuilder) table() lpmTable {
	return lpmTable{nodes: b.nodes}
}

// lookup returns the entry of the longest prefix containing a, or -1.
func (t *lpmTable) lookup(a netx.Addr) int32 {
	best := int32(-1)
	n := int32(0)
	nodes := t.nodes
	if len(nodes) == 0 {
		return -1
	}
	for depth := 0; ; depth++ {
		if e := nodes[n].entry; e >= 0 {
			best = e
		}
		if depth == 32 {
			return best
		}
		n = nodes[n].child[int(a>>(31-uint(depth)))&1]
		if n < 0 {
			return best
		}
	}
}
