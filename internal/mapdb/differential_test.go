package mapdb

import (
	"math/rand"
	"reflect"
	"testing"

	"bdrmap/internal/core"
	"bdrmap/internal/eval"
	"bdrmap/internal/scamper"
	"bdrmap/internal/topo"
)

// TestDifferentialRoundsSequentialVsFleet drives the rounds-golden churn
// schedule (same mutations as RunRounds) through the one-worker sequential
// coordinator and a four-worker fleet, incremental state and attribution
// splicing engaged on both sides, and requires every published generation
// to be byte-identical: served links, owner attributions, and per-round
// trace fingerprints. The multi-VP profile makes the schedule real — three
// shards genuinely interleave on the fleet side.
func TestDifferentialRoundsSequentialVsFleet(t *testing.T) {
	const rounds = 3
	prof, ok := topo.ProfileByName("regional-vp")
	if !ok {
		t.Fatal("regional-vp profile missing")
	}
	run := func(workers int) (snaps []*Snapshot, fps []uint64) {
		n := topo.Generate(prof, 1)
		rng := rand.New(rand.NewSource(1 ^ 0x6d617064))
		states := make([]*scamper.RoundState, len(n.VPs))
		for i := range states {
			states[i] = scamper.NewRoundState()
		}
		var prevs []*core.Result
		for r := 0; r < rounds; r++ {
			if r > 0 {
				if _, err := mutateWorld(n, rng, r); err != nil {
					t.Fatal(err)
				}
				n.Build()
			}
			s := eval.BuildFromNetwork(n, 1)
			if _, err := s.RunFleet(scamper.Config{}, eval.FleetOptions{
				Workers: workers, States: states, Prevs: prevs,
			}); err != nil {
				t.Fatal(err)
			}
			prevs = s.Results
			snaps = append(snaps, Compile(n.HostASN, s.Results))
			fps = append(fps, roundFingerprint(s.Datasets))
		}
		return snaps, fps
	}

	seqSnaps, seqFPs := run(1)
	fltSnaps, fltFPs := run(4)
	for r := 0; r < rounds; r++ {
		if seqFPs[r] != fltFPs[r] {
			t.Errorf("round %d: trace fingerprints diverged: sequential %016x fleet %016x", r, seqFPs[r], fltFPs[r])
		}
		if !reflect.DeepEqual(seqSnaps[r].links, fltSnaps[r].links) {
			t.Errorf("round %d: link sets diverged (sequential %d, fleet %d links)",
				r, len(seqSnaps[r].links), len(fltSnaps[r].links))
		}
		if !reflect.DeepEqual(seqSnaps[r].ownerAddrs, fltSnaps[r].ownerAddrs) ||
			!reflect.DeepEqual(seqSnaps[r].owners, fltSnaps[r].owners) {
			t.Errorf("round %d: owner attributions diverged (sequential %d, fleet %d addrs)",
				r, len(seqSnaps[r].ownerAddrs), len(fltSnaps[r].ownerAddrs))
		}
		if t.Failed() {
			break
		}
	}
}
