package mapdb

import (
	"math/rand"
	"reflect"
	"testing"

	"bdrmap/internal/core"
	"bdrmap/internal/eval"
	"bdrmap/internal/scamper"
	"bdrmap/internal/topo"
)

// TestDifferentialRoundsLegacyVsSlab drives the rounds-golden churn
// schedule (same mutations as RunRounds) through the frozen map-based
// core and the slab core, incremental state and attribution splicing
// engaged on both sides, and requires every published generation to be
// byte-identical: served links, owner attributions, and per-round trace
// fingerprints.
func TestDifferentialRoundsLegacyVsSlab(t *testing.T) {
	const rounds = 3
	run := func(opts core.Options) (snaps []*Snapshot, fps []uint64) {
		n := topo.Generate(topo.TinyProfile(), 1)
		rng := rand.New(rand.NewSource(1 ^ 0x6d617064))
		states := make([]*scamper.RoundState, len(n.VPs))
		for i := range states {
			states[i] = scamper.NewRoundState()
		}
		var prevs []*core.Result
		for r := 0; r < rounds; r++ {
			if r > 0 {
				if _, err := mutateWorld(n, rng, r); err != nil {
					t.Fatal(err)
				}
				n.Build()
			}
			s := eval.BuildFromNetwork(n, 1)
			for i := range s.Net.VPs {
				var prev *core.Result
				if prevs != nil {
					prev = prevs[i]
				}
				s.RunVPIncremental(i, scamper.Config{}, opts, states[i], prev)
			}
			prevs = s.Results
			snaps = append(snaps, Compile(n.HostASN, s.Results))
			fps = append(fps, roundFingerprint(s.Datasets))
		}
		return snaps, fps
	}

	lsnaps, lfps := run(core.Options{UseLegacy: true})
	ssnaps, sfps := run(core.Options{InferWorkers: 8})
	for r := 0; r < rounds; r++ {
		if lfps[r] != sfps[r] {
			t.Errorf("round %d: trace fingerprints diverged: legacy %016x slab %016x", r, lfps[r], sfps[r])
		}
		if !reflect.DeepEqual(lsnaps[r].links, ssnaps[r].links) {
			t.Errorf("round %d: link sets diverged (legacy %d, slab %d links)",
				r, len(lsnaps[r].links), len(ssnaps[r].links))
		}
		if !reflect.DeepEqual(lsnaps[r].ownerAddrs, ssnaps[r].ownerAddrs) ||
			!reflect.DeepEqual(lsnaps[r].owners, ssnaps[r].owners) {
			t.Errorf("round %d: owner attributions diverged (legacy %d, slab %d addrs)",
				r, len(lsnaps[r].ownerAddrs), len(ssnaps[r].ownerAddrs))
		}
		if t.Failed() {
			break
		}
	}
}
