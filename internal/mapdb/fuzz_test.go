package mapdb

import (
	"encoding/binary"
	"testing"

	"bdrmap/internal/netx"
)

// decodePrefixes turns fuzz bytes into a prefix set: 5-byte records of
// 4 address bytes plus a length byte (mod 33).
func decodePrefixes(data []byte) []netx.Prefix {
	var out []netx.Prefix
	for len(data) >= 5 && len(out) < 512 {
		a := netx.Addr(binary.BigEndian.Uint32(data))
		out = append(out, netx.MakePrefix(a, int(data[4]%33)))
		data = data[5:]
	}
	return out
}

// FuzzLookup cross-checks the compiled LPM table against a linear-scan
// oracle over arbitrary insert sets: for any probe address, the table must
// return the entry of the longest inserted prefix containing it, with
// last-insert-wins on duplicate prefixes.
func FuzzLookup(f *testing.F) {
	f.Add([]byte{10, 0, 0, 1, 32, 10, 0, 0, 0, 8}, uint32(0x0a000001))
	f.Add([]byte{0, 0, 0, 0, 0, 255, 255, 255, 255, 32}, uint32(0xffffffff))
	f.Add([]byte{192, 0, 2, 0, 24, 192, 0, 2, 0, 25, 192, 0, 2, 1, 32}, uint32(0xc0000201))
	f.Add([]byte{}, uint32(0))

	f.Fuzz(func(t *testing.T, data []byte, probeRaw uint32) {
		prefixes := decodePrefixes(data)
		b := newLPMBuilder()
		for i, p := range prefixes {
			b.insert(p, int32(i))
		}
		tbl := b.table()

		oracle := func(a netx.Addr) int32 {
			best, bestLen := int32(-1), -1
			for i, p := range prefixes {
				// >= implements last-insert-wins for duplicate prefixes.
				if p.Contains(a) && p.Len >= bestLen {
					best, bestLen = int32(i), p.Len
				}
			}
			return best
		}

		probes := []netx.Addr{netx.Addr(probeRaw), 0, ^netx.Addr(0)}
		for _, p := range prefixes {
			probes = append(probes, p.Base, p.Last())
		}
		for _, a := range probes {
			if got, want := tbl.lookup(a), oracle(a); got != want {
				t.Fatalf("lookup(%v) = %d, oracle says %d (prefixes %v)", a, got, want, prefixes)
			}
		}
	})
}
