// Package mapdb is the serving layer over bdrmap's inference output: an
// immutable, generation-versioned border-map database compiled from per-VP
// inference results, designed for lock-free concurrent reads.
//
// The paper's output — border routers, interdomain links, and neighbor-AS
// ownership — is exactly the dataset CAIDA operates as a continuously
// refreshed service (§2, §6). Consumers reduce to point queries: the TSLP
// congestion monitor asks "is this hop pair an interdomain link?", a
// catchment analysis asks "which AS owns the router behind this
// interface?", and AS-relationship consumers want the neighbor set of an
// AS. Re-walking a whole Result per query does not survive serving load,
// so mapdb compiles each measurement round into a Snapshot:
//
//   - a flat binary-radix longest-prefix-match trie over observed
//     interface addresses resolving any IP to the owning AS of its router
//     (§5.4 attribution), with zero allocations on the lookup path,
//   - a (near, far) hash index resolving a hop pair to its interdomain
//     link (§5.2 border placement),
//   - a per-AS index of a neighbor's interdomain links.
//
// A Store swaps Snapshots atomically (readers never block writers and
// vice versa), retains a bounded generation history, and computes
// per-generation GenDiffs — links appeared/vanished, owner changes — so
// interconnection churn is a first-class queryable event stream, the
// continuous-monitoring mode the paper describes operationally. Rounds
// drives that loop on a mutating synthetic world, and Handler serves the
// whole thing over HTTP/JSON from bdrmapd.
package mapdb

import (
	"runtime"
	"sort"

	"bdrmap/internal/core"
	"bdrmap/internal/netx"
	"bdrmap/internal/topo"
)

// OwnerInfo is the attribution of one observed interface address: the AS
// inferred to operate the router holding it (§5.4), the heuristic that
// made the call, and the router's hop distance from the VP.
type OwnerInfo struct {
	AS        topo.ASN
	Heuristic string
	// Host reports the router was attributed to the hosting organization.
	Host bool
	// HopDist is the minimum TTL at which the router was observed.
	HopDist int
}

// Link is one interdomain link of the hosting network as served by the
// database: the observed near/far addresses (Far zero for silent
// neighbors), the inferred far AS, and the heuristic that attributed it.
type Link struct {
	Near, Far netx.Addr
	FarAS     topo.ASN
	Heuristic string
}

// Snapshot is one immutable compiled generation of the border map. All
// methods are safe for unlimited concurrent use; the lookup hot paths
// (Owner, Link) perform no allocations.
type Snapshot struct {
	gen  int
	host topo.ASN
	vps  []string

	links []Link // sorted by (FarAS, Near, Far)

	// Interface-address attribution: ownerAddrs[i] resolves to owners[i].
	// The flat pair doubles as the linear-scan control the benchmarks keep
	// to certify the trie's speedup, and as the diff substrate.
	owners     []OwnerInfo
	ownerAddrs []netx.Addr
	lpm        lpmTable

	// The pair and neighbor indices are sorted flat arrays rather than
	// maps: binary-searchable with zero allocations, and — like the trie
	// node slice — directly representable as raw segment bytes, so the
	// mmap serving path reads them in place. pairKeys is sorted; on
	// duplicate (near, far) keys the lowest link index (lowest FarAS)
	// wins, matching the old first-write-wins map build. nbAS lists the
	// neighbor ASes sorted ascending, and nbOff[i]:nbOff[i+1] is the span
	// of nbAS[i]'s links in the (FarAS-major) sorted link slice.
	pairKeys []uint64
	pairVals []int32
	nbAS     []topo.ASN
	nbOff    []int32

	merged *core.MergedMap

	// degraded names the vantage points missing from this generation (a
	// fleet quorum publish before every VP completed). Empty for a full
	// generation.
	degraded []string

	// seg pins the mapped segment file this snapshot serves from, nil for
	// snapshots compiled in memory. The mapping is released by a finalizer
	// once the snapshot is unreachable — never while any reader, retained
	// diff, or history entry can still observe it.
	seg *segment
}

func pairKey(near, far netx.Addr) uint64 {
	return uint64(near)<<32 | uint64(far)
}

// sharedIntern returns the intern table every non-nil result carries, or
// nil when results disagree (or carry none).
func sharedIntern(results []*core.Result) *netx.Intern {
	var it *netx.Intern
	for _, res := range results {
		if res == nil {
			continue
		}
		if res.Intern == nil {
			return nil
		}
		if it == nil {
			it = res.Intern
		} else if it != res.Intern {
			return nil
		}
	}
	return it
}

// Compile builds a Snapshot from per-VP inference results. It is a pure
// read of the results: inference output is never modified, and compiling
// the same results yields an identical snapshot. The generation number is
// assigned when the snapshot is published to a Store (zero until then).
func Compile(host topo.ASN, results []*core.Result) *Snapshot {
	s := &Snapshot{
		host:   host,
		merged: core.Merge(results),
	}

	// Interface attribution from the alias-merged router nodes: every
	// observed address of an attributed router resolves to that router's
	// owner. First write wins, and iteration order is the deterministic
	// result/router/address order, so compiles are reproducible.
	//
	// Deduplication runs on dense interned address IDs and a flat slot
	// array, not an address-keyed map. When every result carries the same
	// intern table (the single-driver rounds loop), its IDs are consumed
	// directly; otherwise a compile-local table assigns them. ID() on a
	// shared table is a monotonic append — an address unseen by the driver
	// (none in practice, since router addresses come from traces) merely
	// extends it, which cross-round ID stability tolerates by design.
	it := sharedIntern(results)
	if it == nil {
		it = netx.NewIntern(1024)
	}
	slot := make([]int32, it.Len())
	for i := range slot {
		slot[i] = -1
	}
	seenVP := make(map[string]bool)
	for _, res := range results {
		if res == nil {
			continue
		}
		if !seenVP[res.VPName] {
			seenVP[res.VPName] = true
			s.vps = append(s.vps, res.VPName)
		}
		for _, rn := range res.Routers {
			if rn.Owner == 0 {
				continue
			}
			for _, a := range rn.Addrs {
				if a.IsZero() {
					continue
				}
				id := it.ID(a)
				for int(id) >= len(slot) {
					slot = append(slot, -1)
				}
				if slot[id] >= 0 {
					continue
				}
				slot[id] = int32(len(s.owners))
				s.ownerAddrs = append(s.ownerAddrs, a)
				s.owners = append(s.owners, OwnerInfo{
					AS:        rn.Owner,
					Heuristic: string(rn.Heuristic),
					Host:      rn.IsHost,
					HopDist:   rn.HopDist,
				})
			}
		}
	}
	sort.Strings(s.vps)

	// Observed links, deduplicated across VPs by the observed
	// (near, far, farAS) triple — the identity a hop-pair query carries.
	seenLink := make(map[Link]bool)
	for _, res := range results {
		if res == nil {
			continue
		}
		for _, l := range res.Links {
			k := Link{Near: l.NearAddr, Far: l.FarAddr, FarAS: l.FarAS}
			if seenLink[k] {
				continue
			}
			seenLink[k] = true
			k.Heuristic = string(l.Heuristic)
			s.links = append(s.links, k)
		}
	}
	s.finishIndexes()
	return s
}

// sortLinks orders links by (FarAS, Near, Far) — a total order, since the
// triple is each link's deduplicated identity.
func sortLinks(links []Link) {
	sort.SliceStable(links, func(i, j int) bool {
		a, b := links[i], links[j]
		if a.FarAS != b.FarAS {
			return a.FarAS < b.FarAS
		}
		if a.Near != b.Near {
			return a.Near < b.Near
		}
		return a.Far < b.Far
	})
}

// finishIndexes (re)derives every lookup structure from the snapshot's
// canonical data (links, ownerAddrs): the compiled trie, the sorted pair
// index, and the neighbor spans. Compile, segment open (on platforms that
// cannot map the index sections), and diff application all converge here,
// so every construction path indexes identically.
func (s *Snapshot) finishIndexes() {
	sortLinks(s.links)

	b := newLPMBuilder()
	for i, a := range s.ownerAddrs {
		b.insert(netx.MakePrefix(a, 32), int32(i))
	}
	s.lpm = b.table()

	// Neighbor spans: links are FarAS-major, so each AS's links occupy one
	// contiguous range. nbOff carries len(nbAS)+1 boundaries.
	s.nbAS = s.nbAS[:0]
	s.nbOff = append(s.nbOff[:0], 0)
	for i, l := range s.links {
		if n := len(s.nbAS); n == 0 || s.nbAS[n-1] != l.FarAS {
			s.nbAS = append(s.nbAS, l.FarAS)
			s.nbOff = append(s.nbOff, 0)
		}
		s.nbOff[len(s.nbOff)-1] = int32(i + 1)
	}

	// Pair index: (near, far) keys sorted for binary search. Links sort
	// FarAS-major, so equal keys (same hop pair claimed for two far ASes)
	// are not adjacent; sort by (key, link index) and keep the lowest
	// index per key — the same first-write-wins the old map build had.
	type kv struct {
		k uint64
		v int32
	}
	kvs := make([]kv, len(s.links))
	for i, l := range s.links {
		kvs[i] = kv{pairKey(l.Near, l.Far), int32(i)}
	}
	sort.Slice(kvs, func(i, j int) bool {
		if kvs[i].k != kvs[j].k {
			return kvs[i].k < kvs[j].k
		}
		return kvs[i].v < kvs[j].v
	})
	s.pairKeys = s.pairKeys[:0]
	s.pairVals = s.pairVals[:0]
	for _, e := range kvs {
		if n := len(s.pairKeys); n > 0 && s.pairKeys[n-1] == e.k {
			continue
		}
		s.pairKeys = append(s.pairKeys, e.k)
		s.pairVals = append(s.pairVals, e.v)
	}
}

// MarkDegraded records the vantage points this generation was published
// without — the fleet coordinator's quorum publish names the shards still
// in flight (or terminally degraded) at publish time. Must be called
// before the snapshot is published; the list is copied and sorted.
func (s *Snapshot) MarkDegraded(vps []string) {
	s.degraded = append([]string(nil), vps...)
	sort.Strings(s.degraded)
}

// Degraded lists the vantage points missing from this generation, sorted.
// Empty for a full generation. Read-only.
func (s *Snapshot) Degraded() []string { return s.degraded }

// Partial reports whether this generation was published before every
// vantage point completed (a later full generation heals it).
func (s *Snapshot) Partial() bool { return len(s.degraded) > 0 }

// Gen returns the snapshot's generation number (0 before publication).
func (s *Snapshot) Gen() int { return s.gen }

// HostASN returns the hosting network the map describes.
func (s *Snapshot) HostASN() topo.ASN { return s.host }

// VPs lists the vantage points compiled in, sorted.
func (s *Snapshot) VPs() []string { return s.vps }

// NumLinks returns the number of served interdomain links.
func (s *Snapshot) NumLinks() int { return len(s.links) }

// NumOwners returns the number of indexed interface addresses.
func (s *Snapshot) NumOwners() int { return len(s.owners) }

// Links returns the served link set, sorted by (FarAS, Near, Far). The
// returned slice is the snapshot's backing store: read-only.
func (s *Snapshot) Links() []Link { return s.links }

// Owner resolves an IP to the attribution of the router holding it, via
// longest-prefix match over the indexed interface addresses. This is the
// serving hot path: zero allocations per call.
//
// The KeepAlive in this and the other lookup methods pins mmap-backed
// snapshots for the duration of the read: the trie and index slices may
// point into a mapped segment whose finalizer unmaps it, and without the
// pin the collector could deem the receiver dead mid-lookup.
func (s *Snapshot) Owner(a netx.Addr) (OwnerInfo, bool) {
	defer runtime.KeepAlive(s)
	if e := s.lpm.lookup(a); e >= 0 {
		return s.owners[e], true
	}
	return OwnerInfo{}, false
}

// ownerLinear is the naive linear-scan resolution the compiled trie
// replaces, kept as the benchmark control and the fuzz oracle's shape.
func (s *Snapshot) ownerLinear(a netx.Addr) (OwnerInfo, bool) {
	defer runtime.KeepAlive(s)
	for i, oa := range s.ownerAddrs {
		if oa == a {
			return s.owners[i], true
		}
	}
	return OwnerInfo{}, false
}

// Link resolves an observed (near, far) hop pair to its interdomain link.
// A far of zero queries the silent link at near. Zero allocations: the
// binary search is hand-rolled so no closure escapes.
func (s *Snapshot) Link(near, far netx.Addr) (Link, bool) {
	defer runtime.KeepAlive(s)
	k := pairKey(near, far)
	lo, hi := 0, len(s.pairKeys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.pairKeys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.pairKeys) && s.pairKeys[lo] == k {
		return s.links[s.pairVals[lo]], true
	}
	return Link{}, false
}

// neighborSpan returns the half-open range of as's links in the sorted
// link slice, or (0, 0) when as has none.
func (s *Snapshot) neighborSpan(as topo.ASN) (int32, int32) {
	defer runtime.KeepAlive(s)
	lo, hi := 0, len(s.nbAS)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.nbAS[mid] < as {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.nbAS) && s.nbAS[lo] == as {
		return s.nbOff[lo], s.nbOff[lo+1]
	}
	return 0, 0
}

// Neighbors returns the interdomain links attaching neighbor AS `as`,
// sorted by (Near, Far). The slice is freshly allocated.
func (s *Snapshot) Neighbors(as topo.ASN) []Link {
	defer runtime.KeepAlive(s)
	lo, hi := s.neighborSpan(as)
	out := make([]Link, hi-lo)
	copy(out, s.links[lo:hi])
	return out
}

// NeighborASes returns every neighbor AS with at least one link, sorted.
func (s *Snapshot) NeighborASes() []topo.ASN {
	defer runtime.KeepAlive(s)
	out := make([]topo.ASN, len(s.nbAS))
	copy(out, s.nbAS)
	return out
}

// NumNeighbors returns the number of distinct neighbor ASes.
func (s *Snapshot) NumNeighbors() int { return len(s.nbAS) }

// Merged exposes the canonical merged map the snapshot was compiled from
// (the diff substrate). Read-only.
func (s *Snapshot) Merged() *core.MergedMap { return s.merged }
