package mapdb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"syscall"
	"unsafe"

	"bdrmap/internal/netx"
	"bdrmap/internal/topo"
)

// Segment file format v1 — one published generation as a single
// mmap-friendly file. The Snapshot's serving structures are already
// pointer-free int32/uint64 slices (flat trie nodes, sorted pair index,
// neighbor spans), so the file lays them out verbatim: OpenSegment maps
// the file and serves lookups directly from the mapped bytes with zero
// copy. Only the string-bearing records (links, owners, VP names) are
// materialized on the heap at open, which guarantees that anything a
// GenDiff retains is a value copy and never a pointer into the mapping.
//
// Layout, all little-endian, section payloads 8-byte aligned:
//
//	magic "BDRS" | version u32 | gen u64 | hostAS u32 | flags u32
//	nsect u32
//	nsect × { id u32, off u64, len u64, crc u32 }
//	tableCRC u32   (covers every byte above)
//	…padded section payloads, each covered by its table CRC…
//
// flags bit0 marks a quorum-partial generation (the degraded section
// names the missing VPs). Strings live once in a shared string table and
// are referenced as (offset, length) pairs; link and owner records refer
// to their attributing heuristic through a small deduplicated name list.
const (
	segMagic   = "BDRS"
	segVersion = 1

	segSuffix    = ".seg"
	segTmpSuffix = ".tmp"

	segFlagPartial = 1 << 0
)

// Section ids. The table is id-addressed, so readers tolerate unknown
// sections (forward compatibility) and reject missing required ones.
const (
	secStrtab     = 1
	secVPs        = 2
	secDegraded   = 3
	secHeurs      = 4
	secLinks      = 5
	secOwners     = 6
	secOwnerAddrs = 7
	secLPM        = 8
	secPairKeys   = 9
	secPairVals   = 10
	secNbAS       = 11
	secNbOff      = 12
)

const (
	segHeaderLen   = 28 // magic + version + gen + hostAS + flags + nsect
	segTableEntLen = 24 // id + off + len + crc
	linkRecLen     = 16 // near + far + farAS + heurIdx
	ownerRecLen    = 16 // as + heurIdx + hopDist + flags
	lpmNodeLen     = 12 // child[2] + entry
)

var segCRC = crc32.MakeTable(crc32.Castagnoli)

// nativeLE reports whether this host's byte order matches the file
// format's. The zero-copy path requires it; big-endian hosts fall back to
// decode-copy and stay correct.
var nativeLE = func() bool {
	x := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}()

func segmentPath(dir string, gen int) string {
	return filepath.Join(dir, fmt.Sprintf("gen-%08d%s", gen, segSuffix))
}

// ---------------------------------------------------------------------------
// Writing

// segWriter accumulates the shared string table while sections encode.
type segWriter struct {
	strtab []byte
	idx    map[string][2]uint32
}

func (w *segWriter) str(s string) (off, ln uint32) {
	if at, ok := w.idx[s]; ok {
		return at[0], at[1]
	}
	off = uint32(len(w.strtab))
	ln = uint32(len(s))
	w.strtab = append(w.strtab, s...)
	w.idx[s] = [2]uint32{off, ln}
	return off, ln
}

func (w *segWriter) strList(names []string) []byte {
	out := make([]byte, 4+8*len(names))
	binary.LittleEndian.PutUint32(out, uint32(len(names)))
	for i, s := range names {
		off, ln := w.str(s)
		binary.LittleEndian.PutUint32(out[4+8*i:], off)
		binary.LittleEndian.PutUint32(out[8+8*i:], ln)
	}
	return out
}

// heuristicNames returns the deduplicated heuristic vocabulary of the
// snapshot, sorted (a handful of §5.4 rule names), plus the index of each.
func (s *Snapshot) heuristicNames() ([]string, map[string]uint32) {
	set := make(map[string]bool)
	for _, l := range s.links {
		set[l.Heuristic] = true
	}
	for _, o := range s.owners {
		set[o.Heuristic] = true
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	idx := make(map[string]uint32, len(names))
	for i, n := range names {
		idx[n] = uint32(i)
	}
	return names, idx
}

// marshalSegment renders the snapshot as a complete segment file image.
func (s *Snapshot) marshalSegment() []byte {
	w := &segWriter{idx: make(map[string][2]uint32)}
	heurs, heurIdx := s.heuristicNames()

	vps := w.strList(s.vps)
	degraded := w.strList(s.degraded)
	heurSec := w.strList(heurs)

	links := make([]byte, linkRecLen*len(s.links))
	for i, l := range s.links {
		p := links[linkRecLen*i:]
		binary.LittleEndian.PutUint32(p, uint32(l.Near))
		binary.LittleEndian.PutUint32(p[4:], uint32(l.Far))
		binary.LittleEndian.PutUint32(p[8:], uint32(l.FarAS))
		binary.LittleEndian.PutUint32(p[12:], heurIdx[l.Heuristic])
	}

	owners := make([]byte, ownerRecLen*len(s.owners))
	for i, o := range s.owners {
		p := owners[ownerRecLen*i:]
		binary.LittleEndian.PutUint32(p, uint32(o.AS))
		binary.LittleEndian.PutUint32(p[4:], heurIdx[o.Heuristic])
		binary.LittleEndian.PutUint32(p[8:], uint32(int32(o.HopDist)))
		var fl uint32
		if o.Host {
			fl = 1
		}
		binary.LittleEndian.PutUint32(p[12:], fl)
	}

	u32s := func(n int, get func(i int) uint32) []byte {
		out := make([]byte, 4*n)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(out[4*i:], get(i))
		}
		return out
	}
	ownerAddrs := u32s(len(s.ownerAddrs), func(i int) uint32 { return uint32(s.ownerAddrs[i]) })
	pairVals := u32s(len(s.pairVals), func(i int) uint32 { return uint32(s.pairVals[i]) })
	nbAS := u32s(len(s.nbAS), func(i int) uint32 { return uint32(s.nbAS[i]) })
	nbOff := u32s(len(s.nbOff), func(i int) uint32 { return uint32(s.nbOff[i]) })

	lpm := make([]byte, lpmNodeLen*len(s.lpm.nodes))
	for i, n := range s.lpm.nodes {
		p := lpm[lpmNodeLen*i:]
		binary.LittleEndian.PutUint32(p, uint32(n.child[0]))
		binary.LittleEndian.PutUint32(p[4:], uint32(n.child[1]))
		binary.LittleEndian.PutUint32(p[8:], uint32(n.entry))
	}

	pairKeys := make([]byte, 8*len(s.pairKeys))
	for i, k := range s.pairKeys {
		binary.LittleEndian.PutUint64(pairKeys[8*i:], k)
	}

	sections := []struct {
		id      uint32
		payload []byte
	}{
		{secStrtab, w.strtab},
		{secVPs, vps},
		{secDegraded, degraded},
		{secHeurs, heurSec},
		{secLinks, links},
		{secOwners, owners},
		{secOwnerAddrs, ownerAddrs},
		{secLPM, lpm},
		{secPairKeys, pairKeys},
		{secPairVals, pairVals},
		{secNbAS, nbAS},
		{secNbOff, nbOff},
	}

	pad8 := func(n int) int { return (n + 7) &^ 7 }
	headLen := segHeaderLen + segTableEntLen*len(sections) + 4 // + tableCRC
	off := pad8(headLen)
	total := off
	for _, sec := range sections {
		total = pad8(total + len(sec.payload))
	}

	buf := make([]byte, total)
	copy(buf, segMagic)
	binary.LittleEndian.PutUint32(buf[4:], segVersion)
	binary.LittleEndian.PutUint64(buf[8:], uint64(s.gen))
	binary.LittleEndian.PutUint32(buf[16:], uint32(s.host))
	var flags uint32
	if s.Partial() {
		flags |= segFlagPartial
	}
	binary.LittleEndian.PutUint32(buf[20:], flags)
	binary.LittleEndian.PutUint32(buf[24:], uint32(len(sections)))

	for i, sec := range sections {
		ent := buf[segHeaderLen+segTableEntLen*i:]
		binary.LittleEndian.PutUint32(ent, sec.id)
		binary.LittleEndian.PutUint64(ent[4:], uint64(off))
		binary.LittleEndian.PutUint64(ent[12:], uint64(len(sec.payload)))
		binary.LittleEndian.PutUint32(ent[20:], crc32.Checksum(sec.payload, segCRC))
		copy(buf[off:], sec.payload)
		off = pad8(off + len(sec.payload))
	}
	binary.LittleEndian.PutUint32(buf[headLen-4:],
		crc32.Checksum(buf[:headLen-4], segCRC))
	return buf
}

// WriteTo serializes the snapshot in segment format v1. The byte stream
// is exactly what OpenSegment maps — it is both the on-disk layout and
// the full-sync replication wire format.
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(s.marshalSegment())
	return int64(n), err
}

// writeSegmentFile publishes snap into dir crash-safely: the image is
// written to a temp file, fsynced, atomically renamed to its final
// gen-NNNNNNNN.seg name, and the directory entry fsynced. A crash at any
// point leaves either the complete previous state or the complete new
// file — never a partially visible segment.
func writeSegmentFile(dir string, snap *Snapshot) error {
	final := segmentPath(dir, snap.gen)
	tmp := final + segTmpSuffix
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := snap.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// ---------------------------------------------------------------------------
// Reading

// segment owns one open backing buffer — a read-only mmap of a segment
// file, or a plain heap buffer on platforms (or code paths) that cannot
// map. The mapping is released by a finalizer once no Snapshot pins it;
// lookup methods hold the pin with runtime.KeepAlive for the duration of
// every read of possibly-mapped memory.
type segment struct {
	data   []byte
	mapped bool
}

func (g *segment) release() {
	if g.mapped && g.data != nil {
		_ = syscall.Munmap(g.data)
		g.data = nil
	}
}

// OpenSegment maps a segment file and returns a Snapshot serving straight
// from the mapped bytes: the trie nodes, pair index, neighbor spans, and
// owner-address array are the file's bytes, zero-copy (on little-endian
// hosts; others decode). The returned snapshot carries the generation
// number recorded at publish time.
func OpenSegment(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if fi.Size() == 0 {
		return nil, fmt.Errorf("mapdb: segment %s: empty file", path)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(fi.Size()),
		syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// No mapping (exotic fs, platform limits): fall back to a heap read.
		buf, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, rerr
		}
		return ReadSegment(buf)
	}
	seg := &segment{data: data, mapped: true}
	snap, err := parseSegment(data, seg)
	if err != nil {
		seg.release()
		return nil, fmt.Errorf("mapdb: segment %s: %w", path, err)
	}
	runtime.SetFinalizer(seg, (*segment).release)
	return snap, nil
}

// ReadSegment decodes a segment image held in memory — the follower's
// full-sync path receives one over HTTP. Everything is copied onto the
// heap; data is not retained.
func ReadSegment(data []byte) (*Snapshot, error) {
	return parseSegment(data, nil)
}

// segReader carries the validated section table during parse.
type segReader struct {
	data []byte
	secs map[uint32][]byte
}

// section returns the payload of id, or an error naming it as missing.
func (r *segReader) section(id uint32) ([]byte, error) {
	p, ok := r.secs[id]
	if !ok {
		return nil, fmt.Errorf("missing section %d", id)
	}
	return p, nil
}

func (r *segReader) strAt(off, ln uint32) (string, error) {
	strtab := r.secs[secStrtab]
	if int64(off)+int64(ln) > int64(len(strtab)) {
		return "", fmt.Errorf("string ref %d+%d beyond string table (%d bytes)", off, ln, len(strtab))
	}
	return string(strtab[off : off+ln]), nil // copies: heap string, never mapped bytes
}

func (r *segReader) strList(id uint32) ([]string, error) {
	p, err := r.section(id)
	if err != nil {
		return nil, err
	}
	if len(p) < 4 {
		return nil, fmt.Errorf("section %d: truncated list header", id)
	}
	n := int(binary.LittleEndian.Uint32(p))
	if len(p) < 4+8*n {
		return nil, fmt.Errorf("section %d: %d entries beyond payload", id, n)
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		off := binary.LittleEndian.Uint32(p[4+8*i:])
		ln := binary.LittleEndian.Uint32(p[8+8*i:])
		s, err := r.strAt(off, ln)
		if err != nil {
			return nil, fmt.Errorf("section %d: %w", id, err)
		}
		out[i] = s
	}
	return out, nil
}

// viewU32 returns the section as a []uint32 — aliasing the backing bytes
// when zero-copy is possible (mapped, native little-endian, aligned),
// decoding a heap copy otherwise.
func (r *segReader) viewU32(id uint32, zeroCopy bool) ([]uint32, error) {
	p, err := r.section(id)
	if err != nil {
		return nil, err
	}
	if len(p)%4 != 0 {
		return nil, fmt.Errorf("section %d: length %d not a multiple of 4", id, len(p))
	}
	n := len(p) / 4
	if n == 0 {
		return nil, nil
	}
	if zeroCopy && nativeLE && uintptr(unsafe.Pointer(&p[0]))%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&p[0])), n), nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(p[4*i:])
	}
	return out, nil
}

func (r *segReader) viewU64(id uint32, zeroCopy bool) ([]uint64, error) {
	p, err := r.section(id)
	if err != nil {
		return nil, err
	}
	if len(p)%8 != 0 {
		return nil, fmt.Errorf("section %d: length %d not a multiple of 8", id, len(p))
	}
	n := len(p) / 8
	if n == 0 {
		return nil, nil
	}
	if zeroCopy && nativeLE && uintptr(unsafe.Pointer(&p[0]))%8 == 0 {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&p[0])), n), nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(p[8*i:])
	}
	return out, nil
}

func (r *segReader) viewLPM(zeroCopy bool) ([]lpmNode, error) {
	p, err := r.section(secLPM)
	if err != nil {
		return nil, err
	}
	if len(p)%lpmNodeLen != 0 {
		return nil, fmt.Errorf("lpm section: length %d not a multiple of %d", len(p), lpmNodeLen)
	}
	n := len(p) / lpmNodeLen
	if n == 0 {
		return nil, nil
	}
	if zeroCopy && nativeLE && uintptr(unsafe.Pointer(&p[0]))%4 == 0 {
		return unsafe.Slice((*lpmNode)(unsafe.Pointer(&p[0])), n), nil
	}
	out := make([]lpmNode, n)
	for i := range out {
		q := p[lpmNodeLen*i:]
		out[i] = lpmNode{
			child: [2]int32{
				int32(binary.LittleEndian.Uint32(q)),
				int32(binary.LittleEndian.Uint32(q[4:])),
			},
			entry: int32(binary.LittleEndian.Uint32(q[8:])),
		}
	}
	return out, nil
}

// parseSegment validates the image (magic, version, table CRC, bounds,
// per-section CRCs) and assembles the Snapshot. seg non-nil marks data as
// a live mapping: numeric sections alias it zero-copy and the snapshot
// pins it; seg nil means data is heap memory and everything is copied.
func parseSegment(data []byte, seg *segment) (*Snapshot, error) {
	if len(data) < segHeaderLen+4 {
		return nil, fmt.Errorf("truncated header (%d bytes)", len(data))
	}
	if string(data[:4]) != segMagic {
		return nil, fmt.Errorf("bad magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != segVersion {
		return nil, fmt.Errorf("unsupported format version %d (want %d)", v, segVersion)
	}
	gen := binary.LittleEndian.Uint64(data[8:])
	host := topo.ASN(binary.LittleEndian.Uint32(data[16:]))
	nsect := int(binary.LittleEndian.Uint32(data[24:]))
	if nsect < 0 || nsect > 4096 {
		return nil, fmt.Errorf("implausible section count %d", nsect)
	}
	headLen := segHeaderLen + segTableEntLen*nsect + 4
	if len(data) < headLen {
		return nil, fmt.Errorf("truncated section table (%d bytes, need %d)", len(data), headLen)
	}
	wantCRC := binary.LittleEndian.Uint32(data[headLen-4:])
	if got := crc32.Checksum(data[:headLen-4], segCRC); got != wantCRC {
		return nil, fmt.Errorf("header CRC mismatch (got %08x want %08x)", got, wantCRC)
	}

	r := &segReader{data: data, secs: make(map[uint32][]byte, nsect)}
	for i := 0; i < nsect; i++ {
		ent := data[segHeaderLen+segTableEntLen*i:]
		id := binary.LittleEndian.Uint32(ent)
		off := binary.LittleEndian.Uint64(ent[4:])
		ln := binary.LittleEndian.Uint64(ent[12:])
		crc := binary.LittleEndian.Uint32(ent[20:])
		if off > uint64(len(data)) || ln > uint64(len(data))-off {
			return nil, fmt.Errorf("section %d: range %d+%d beyond file (%d bytes)", id, off, ln, len(data))
		}
		p := data[off : off+ln : off+ln]
		if got := crc32.Checksum(p, segCRC); got != crc {
			return nil, fmt.Errorf("section %d: CRC mismatch (got %08x want %08x)", id, got, crc)
		}
		r.secs[id] = p
	}

	zeroCopy := seg != nil
	s := &Snapshot{gen: int(gen), host: host, seg: seg}

	var err error
	if s.vps, err = r.strList(secVPs); err != nil {
		return nil, err
	}
	if s.degraded, err = r.strList(secDegraded); err != nil {
		return nil, err
	}
	heurs, err := r.strList(secHeurs)
	if err != nil {
		return nil, err
	}
	heurAt := func(i uint32, what string, rec int) (string, error) {
		if int(i) >= len(heurs) {
			return "", fmt.Errorf("%s record %d: heuristic index %d beyond vocabulary (%d)", what, rec, i, len(heurs))
		}
		return heurs[i], nil
	}

	// Links and owners carry Go strings, so they always materialize on the
	// heap — this is what keeps retained GenDiffs (which copy Link and
	// OwnerInfo values) free of pointers into the mapping.
	lp, err := r.section(secLinks)
	if err != nil {
		return nil, err
	}
	if len(lp)%linkRecLen != 0 {
		return nil, fmt.Errorf("links section: length %d not a multiple of %d", len(lp), linkRecLen)
	}
	s.links = make([]Link, len(lp)/linkRecLen)
	for i := range s.links {
		p := lp[linkRecLen*i:]
		h, err := heurAt(binary.LittleEndian.Uint32(p[12:]), "link", i)
		if err != nil {
			return nil, err
		}
		s.links[i] = Link{
			Near:      netx.Addr(binary.LittleEndian.Uint32(p)),
			Far:       netx.Addr(binary.LittleEndian.Uint32(p[4:])),
			FarAS:     topo.ASN(binary.LittleEndian.Uint32(p[8:])),
			Heuristic: h,
		}
	}

	op, err := r.section(secOwners)
	if err != nil {
		return nil, err
	}
	if len(op)%ownerRecLen != 0 {
		return nil, fmt.Errorf("owners section: length %d not a multiple of %d", len(op), ownerRecLen)
	}
	s.owners = make([]OwnerInfo, len(op)/ownerRecLen)
	for i := range s.owners {
		p := op[ownerRecLen*i:]
		h, err := heurAt(binary.LittleEndian.Uint32(p[4:]), "owner", i)
		if err != nil {
			return nil, err
		}
		s.owners[i] = OwnerInfo{
			AS:        topo.ASN(binary.LittleEndian.Uint32(p)),
			Heuristic: h,
			HopDist:   int(int32(binary.LittleEndian.Uint32(p[8:]))),
			Host:      binary.LittleEndian.Uint32(p[12:])&1 != 0,
		}
	}

	// Numeric serving arrays: zero-copy views of the mapping when possible.
	oa, err := r.viewU32(secOwnerAddrs, zeroCopy)
	if err != nil {
		return nil, err
	}
	s.ownerAddrs = *(*[]netx.Addr)(unsafe.Pointer(&oa))
	nodes, err := r.viewLPM(zeroCopy)
	if err != nil {
		return nil, err
	}
	s.lpm = lpmTable{nodes: nodes}
	if s.pairKeys, err = r.viewU64(secPairKeys, zeroCopy); err != nil {
		return nil, err
	}
	pv, err := r.viewU32(secPairVals, zeroCopy)
	if err != nil {
		return nil, err
	}
	s.pairVals = *(*[]int32)(unsafe.Pointer(&pv))
	nb, err := r.viewU32(secNbAS, zeroCopy)
	if err != nil {
		return nil, err
	}
	s.nbAS = *(*[]topo.ASN)(unsafe.Pointer(&nb))
	no, err := r.viewU32(secNbOff, zeroCopy)
	if err != nil {
		return nil, err
	}
	s.nbOff = *(*[]int32)(unsafe.Pointer(&no))

	if err := s.validateShape(len(heurs)); err != nil {
		return nil, err
	}
	return s, nil
}

// validateShape cross-checks the decoded sections against each other so a
// segment that passed its CRCs (e.g. one crafted by a buggy writer) still
// cannot index out of bounds at serving time.
func (s *Snapshot) validateShape(nheurs int) error {
	if len(s.owners) != len(s.ownerAddrs) {
		return fmt.Errorf("owners (%d) and ownerAddrs (%d) disagree", len(s.owners), len(s.ownerAddrs))
	}
	if len(s.pairKeys) != len(s.pairVals) {
		return fmt.Errorf("pairKeys (%d) and pairVals (%d) disagree", len(s.pairKeys), len(s.pairVals))
	}
	for i, v := range s.pairVals {
		if int(v) < 0 || int(v) >= len(s.links) {
			return fmt.Errorf("pair index %d references link %d of %d", i, v, len(s.links))
		}
	}
	if len(s.nbAS) == 0 {
		if len(s.nbOff) > 1 {
			return fmt.Errorf("neighbor spans (%d boundaries) without neighbor ASes", len(s.nbOff))
		}
	} else if len(s.nbOff) != len(s.nbAS)+1 {
		return fmt.Errorf("neighbor spans: %d ASes but %d boundaries", len(s.nbAS), len(s.nbOff))
	}
	for i := 1; i < len(s.nbOff); i++ {
		if s.nbOff[i] < s.nbOff[i-1] || int(s.nbOff[i]) > len(s.links) {
			return fmt.Errorf("neighbor span boundary %d (%d) out of order or beyond links (%d)", i, s.nbOff[i], len(s.links))
		}
	}
	for i, n := range s.lpm.nodes {
		for _, c := range n.child {
			if int(c) >= len(s.lpm.nodes) {
				return fmt.Errorf("lpm node %d: child %d beyond table (%d nodes)", i, c, len(s.lpm.nodes))
			}
		}
		if int(n.entry) >= len(s.owners) {
			return fmt.Errorf("lpm node %d: entry %d beyond owners (%d)", i, n.entry, len(s.owners))
		}
	}
	return nil
}
