package mapdb

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"bdrmap/internal/core"
	"bdrmap/internal/netx"
	"bdrmap/internal/topo"
)

// vpResult is genResult with an explicit vantage point and address base,
// so multi-VP worlds can be assembled link-set by link-set.
func vpResult(vp string, base netx.Addr, tag, nLinks int) *core.Result {
	res := &core.Result{VPName: vp, Neighbors: make(map[topo.ASN][]*core.Link)}
	farAS := topo.ASN(50000 + tag)
	for i := 0; i < nLinks; i++ {
		b := base + netx.Addr(i)*4
		near, far := b+1, b+2
		nearNode := &core.RouterNode{
			ID: 2 * i, Addrs: []netx.Addr{near},
			Owner: topo.ASN(40000 + tag), Heuristic: core.HeurHostNetwork, IsHost: true, HopDist: tag,
		}
		farNode := &core.RouterNode{
			ID: 2*i + 1, Addrs: []netx.Addr{far},
			Owner: farAS, Heuristic: core.HeurRelationship, HopDist: tag + 1,
		}
		l := &core.Link{
			Near: nearNode, Far: farNode, NearAddr: near, FarAddr: far,
			FarAS: farAS, Heuristic: core.HeurRelationship,
		}
		res.Routers = append(res.Routers, nearNode, farNode)
		res.Links = append(res.Links, l)
		res.Neighbors[farAS] = append(res.Neighbors[farAS], l)
	}
	return res
}

// watchServer serves the full API for st with a test-friendly keepalive.
func watchServer(st *Store, keepalive time.Duration) *httptest.Server {
	a := &api{store: st, watchKeepalive: keepalive}
	mux := http.NewServeMux()
	mux.Handle("/v1/gen", a.wrap("gen", a.handleGen))
	mux.Handle("/v1/diff", a.wrap("diff", a.handleDiff))
	mux.Handle("/v1/watch", a.wrapStream("watch", a.handleWatch))
	mux.Handle("/v1/segment", a.wrap("segment", a.handleSegment))
	mux.Handle("/", NotFoundHandler())
	return httptest.NewServer(mux)
}

// collectFrames runs a WatchClient and forwards frames on a channel until
// ctx ends.
func collectFrames(ctx context.Context, t *testing.T, base string, from int) (<-chan WatchFrame, <-chan error) {
	frames := make(chan WatchFrame, 64)
	errc := make(chan error, 1)
	go func() {
		defer close(frames)
		wc := &WatchClient{Base: base, From: from}
		errc <- wc.Run(ctx, func(f WatchFrame) error {
			select {
			case frames <- f:
			case <-ctx.Done():
			}
			return nil
		})
	}()
	return frames, errc
}

func nextFrame(t *testing.T, frames <-chan WatchFrame, want string) WatchFrame {
	t.Helper()
	select {
	case f, ok := <-frames:
		if !ok {
			t.Fatalf("stream ended waiting for %q frame", want)
		}
		if f.Type != want {
			t.Fatalf("frame type = %q, want %q", f.Type, want)
		}
		return f
	case <-time.After(10 * time.Second):
		t.Fatalf("timed out waiting for %q frame", want)
	}
	return WatchFrame{}
}

// TestWatchStreamsDiffs subscribes to /v1/watch and requires a hello
// frame naming the current generation followed by one diff frame per
// publish, matching the diffs Publish itself computed.
func TestWatchStreamsDiffs(t *testing.T) {
	st := NewStore(0, nil)
	st.Publish(Compile(64500, []*core.Result{genResult(1, 8)}))
	srv := watchServer(st, 0)
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	frames, _ := collectFrames(ctx, t, srv.URL, 0)

	if f := nextFrame(t, frames, "hello"); f.Gen != 1 || f.HostAS != 64500 {
		t.Fatalf("hello = gen %d host %d, want gen 1 host 64500", f.Gen, f.HostAS)
	}
	d2 := st.Publish(Compile(64500, []*core.Result{genResult(2, 8)}))
	f := nextFrame(t, frames, "diff")
	if f.Diff == nil || f.Diff.From != 1 || f.Diff.To != 2 {
		t.Fatalf("diff frame = %+v, want 1→2", f.Diff)
	}
	if !reflect.DeepEqual(f.Diff, d2) {
		t.Fatal("streamed diff does not round-trip the published diff")
	}
	d3 := st.Publish(Compile(64500, []*core.Result{genResult(3, 8)}))
	if f := nextFrame(t, frames, "diff"); !reflect.DeepEqual(f.Diff, d3) {
		t.Fatal("second streamed diff diverged")
	}
}

// TestWatchResumeAndKeepalive resumes from a retained generation (backlog
// replay, then live) and then sits idle long enough to receive keepalives.
func TestWatchResumeAndKeepalive(t *testing.T) {
	st := NewStore(0, nil)
	for g := 1; g <= 4; g++ {
		st.Publish(Compile(64500, []*core.Result{genResult(g, 8)}))
	}
	srv := watchServer(st, 50*time.Millisecond)
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	frames, _ := collectFrames(ctx, t, srv.URL, 2)

	if f := nextFrame(t, frames, "hello"); f.Gen != 4 {
		t.Fatalf("hello gen = %d, want 4", f.Gen)
	}
	for _, want := range []int{3, 4} {
		f := nextFrame(t, frames, "diff")
		if f.Diff.To != want {
			t.Fatalf("backlog diff to = %d, want %d", f.Diff.To, want)
		}
	}
	st.Publish(Compile(64500, []*core.Result{genResult(5, 8)}))
	if f := nextFrame(t, frames, "diff"); f.Diff.To != 5 {
		t.Fatalf("live diff to = %d, want 5", f.Diff.To)
	}
	nextFrame(t, frames, "keepalive")
}

// TestWatchResumeGap requires a resume generation that fell out of the
// bounded history to answer a structured 404 — the client's signal to
// full-sync from /v1/segment.
func TestWatchResumeGap(t *testing.T) {
	st := NewStore(2, nil)
	for g := 1; g <= 6; g++ {
		st.Publish(Compile(64500, []*core.Result{genResult(g, 8)}))
	}
	srv := watchServer(st, 0)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	wc := &WatchClient{Base: srv.URL, From: 1}
	if err := wc.Run(ctx, func(WatchFrame) error { return nil }); err != ErrGenUnknown {
		t.Fatalf("resume from evicted generation returned %v, want ErrGenUnknown", err)
	}
	// Ahead of the leader is equally unknown.
	wc = &WatchClient{Base: srv.URL, From: 99}
	if err := wc.Run(ctx, func(WatchFrame) error { return nil }); err != ErrGenUnknown {
		t.Fatalf("resume from future generation returned %v, want ErrGenUnknown", err)
	}
}

// TestWatchFirstPublish attaches a watcher before any generation exists:
// the first publish must arrive as a synthetic everything-added diff, so
// monitors attached early see the initial map.
func TestWatchFirstPublish(t *testing.T) {
	st := NewStore(0, nil)
	srv := watchServer(st, 0)
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	frames, _ := collectFrames(ctx, t, srv.URL, 0)
	if f := nextFrame(t, frames, "hello"); f.Gen != 0 {
		t.Fatalf("hello gen = %d, want 0", f.Gen)
	}
	snap := Compile(64500, []*core.Result{genResult(1, 8)})
	st.Publish(snap)
	f := nextFrame(t, frames, "diff")
	if f.Diff.To != 1 || len(f.Diff.Added) != snap.NumLinks() {
		t.Fatalf("first-publish frame = %d added into gen %d, want all %d links into gen 1",
			len(f.Diff.Added), f.Diff.To, snap.NumLinks())
	}
}

// TestSnapshotApplyReconstructs replays published diffs on top of the
// previous generation and requires the reconstruction to answer every
// query identically to the directly compiled snapshot — the follower's
// correctness core.
func TestSnapshotApplyReconstructs(t *testing.T) {
	st := NewStore(0, nil)
	snaps := []*Snapshot{Compile(64500, []*core.Result{genResult(1, 12)})}
	st.Publish(snaps[0])
	var diffs []*GenDiff
	for g := 2; g <= 4; g++ {
		s := Compile(64500, []*core.Result{genResult(g, 8+g)})
		diffs = append(diffs, st.Publish(s))
		snaps = append(snaps, s)
	}

	cur := snaps[0]
	for i, d := range diffs {
		next, err := cur.Apply(d)
		if err != nil {
			t.Fatal(err)
		}
		requireSnapshotsAnswerIdentically(t, snaps[i+1], next)
		cur = next
	}

	// A diff must refuse to apply to the wrong base generation.
	if _, err := snaps[0].Apply(diffs[1]); err == nil {
		t.Fatal("applying a 2→3 diff to generation 1 did not error")
	}
}

// TestDiffWireRoundtrip pins the replication frame codec: a GenDiff with
// every field populated must survive JSON encode/decode bit-exactly.
func TestDiffWireRoundtrip(t *testing.T) {
	d := &GenDiff{
		From: 3, To: 4,
		Added:            []Link{{Near: 1, Far: 2, FarAS: 7, Heuristic: "a"}},
		Removed:          []Link{{Near: 3, Far: 0, FarAS: 8, Heuristic: "b"}},
		Relabeled:        []Link{{Near: 5, Far: 6, FarAS: 9, Heuristic: "c"}},
		NeighborsAdded:   []topo.ASN{7},
		NeighborsRemoved: []topo.ASN{8},
		OwnerChanges:     []OwnerChange{{Addr: 9, From: 1, To: 2}},
		OwnersSet:        []OwnerDelta{{Addr: 9, Info: OwnerInfo{AS: 2, Heuristic: "h", Host: true, HopDist: 3}}},
		OwnersRemoved:    []netx.Addr{11},
		VPs:              []string{"east", "west"},
		DegradedVPs:      []string{"west"},
		FromPartial:      true,
		ToPartial:        true,
	}
	raw, err := json.Marshal(toDiffWire(d))
	if err != nil {
		t.Fatal(err)
	}
	var w diffWire
	if err := json.Unmarshal(raw, &w); err != nil {
		t.Fatal(err)
	}
	got, err := w.diff()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, got) {
		t.Fatalf("wire roundtrip diverged:\nwant %+v\ngot  %+v", d, got)
	}
}

// TestDegradedGenerationMarksChurn is the satellite-2 regression: a
// quorum publish missing one VP makes that VP's links vanish and
// reappear across adjacent diffs. Those diffs must carry the partial
// marks (so watch consumers can discount the phantom flap), and the
// full→full diff spanning the partial generation must be clean.
func TestDegradedGenerationMarksChurn(t *testing.T) {
	east := func() *core.Result { return vpResult("east", 0x0a000000, 1, 8) }
	west := func() *core.Result { return vpResult("west", 0x0b000000, 1, 8) }

	st := NewStore(0, nil)
	st.Publish(Compile(64500, []*core.Result{east(), west()}))
	partial := Compile(64500, []*core.Result{east()})
	partial.MarkDegraded([]string{"west"})
	st.Publish(partial)
	st.Publish(Compile(64500, []*core.Result{east(), west()}))

	into, err := st.Diff(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !into.ToPartial || into.FromPartial {
		t.Errorf("diff into partial: marks from=%v to=%v, want false/true", into.FromPartial, into.ToPartial)
	}
	if !reflect.DeepEqual(into.DegradedVPs, []string{"west"}) {
		t.Errorf("diff into partial names degraded VPs %v, want [west]", into.DegradedVPs)
	}
	if !into.Degraded() {
		t.Error("diff into partial not flagged Degraded()")
	}
	if len(into.Removed) != 8 {
		t.Errorf("partial publish removed %d links, want the straggler's 8", len(into.Removed))
	}

	heal, err := st.Diff(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !heal.FromPartial || heal.ToPartial {
		t.Errorf("healing diff: marks from=%v to=%v, want true/false", heal.FromPartial, heal.ToPartial)
	}
	if len(heal.Added) != 8 {
		t.Errorf("healing publish re-added %d links, want 8", len(heal.Added))
	}
	if !heal.Degraded() {
		t.Error("healing diff not flagged Degraded()")
	}

	// Spanning the partial generation: no phantom churn, no marks.
	span, err := st.Diff(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if span.Degraded() {
		t.Error("full→full diff spanning the partial generation carries partial marks")
	}
	if !span.Empty() {
		t.Errorf("full→full diff not empty: +%d -%d", len(span.Added), len(span.Removed))
	}
}

// flakyProxy is a TCP relay whose active connections can be severed and
// whose listener can be taken down, simulating a replication-link outage.
type flakyProxy struct {
	ln     net.Listener
	target string

	mu    sync.Mutex
	conns map[net.Conn]bool
	down  bool
}

func newFlakyProxy(t *testing.T, target string) *flakyProxy {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &flakyProxy{ln: ln, target: target, conns: make(map[net.Conn]bool)}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go p.handle(c)
		}
	}()
	t.Cleanup(func() { ln.Close(); p.sever() })
	return p
}

func (p *flakyProxy) URL() string { return "http://" + p.ln.Addr().String() }

func (p *flakyProxy) handle(c net.Conn) {
	p.mu.Lock()
	if p.down {
		p.mu.Unlock()
		c.Close()
		return
	}
	up, err := net.Dial("tcp", p.target)
	if err != nil {
		p.mu.Unlock()
		c.Close()
		return
	}
	p.conns[c] = true
	p.conns[up] = true
	p.mu.Unlock()
	done := make(chan struct{}, 2)
	cp := func(dst, src net.Conn) {
		_, _ = io.Copy(dst, src)
		done <- struct{}{}
	}
	go cp(up, c)
	go cp(c, up)
	<-done
	c.Close()
	up.Close()
	p.mu.Lock()
	delete(p.conns, c)
	delete(p.conns, up)
	p.mu.Unlock()
}

// sever closes every active relayed connection.
func (p *flakyProxy) sever() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for c := range p.conns {
		c.Close()
	}
}

// setDown gates new connections (true refuses them at accept).
func (p *flakyProxy) setDown(down bool) {
	p.mu.Lock()
	p.down = down
	p.mu.Unlock()
}

// TestFollowerConvergesAcrossKillRedial is the replication acceptance
// test: a follower joins mid-churn through a proxy, converges, survives a
// severed replication link during which the leader's history moves past
// the follower's resume point (forcing 404 → full segment sync), redials,
// and converges again — ending with identical /v1/gen bytes and identical
// served link sets.
func TestFollowerConvergesAcrossKillRedial(t *testing.T) {
	const maxHist = 4
	leader := NewStore(maxHist, nil)
	lsrv := watchServer(leader, 0)
	defer lsrv.Close()
	proxy := newFlakyProxy(t, lsrv.Listener.Addr().String())

	// Mid-churn join: three generations exist before the follower starts.
	for g := 1; g <= 3; g++ {
		leader.Publish(Compile(64500, []*core.Result{genResult(g, 16)}))
	}

	fstore := NewStore(maxHist, nil)
	fl := &Follower{
		Leader: proxy.URL(), Store: fstore,
		RedialMin: 10 * time.Millisecond, RedialMax: 50 * time.Millisecond,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go fl.Run(ctx)

	waitGen := func(want int) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			if cur := fstore.Current(); cur != nil && cur.Gen() >= want {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		cur := fstore.Current()
		got := 0
		if cur != nil {
			got = cur.Gen()
		}
		t.Fatalf("follower stuck at generation %d, want %d", got, want)
	}
	waitGen(3)

	// Outage: sever the replication link and keep it down while the
	// leader publishes past the follower's resume window.
	proxy.setDown(true)
	proxy.sever()
	for g := 4; g <= 9; g++ {
		leader.Publish(Compile(64500, []*core.Result{genResult(g, 16)}))
	}
	proxy.setDown(false)
	waitGen(9) // resume gen 3 evicted → 404 → full sync

	// Live tail after the redial, enough to align both history windows.
	for g := 10; g <= 12; g++ {
		leader.Publish(Compile(64500, []*core.Result{genResult(g, 16)}))
	}
	waitGen(12)

	// Identical /v1/gen bytes.
	fsrv := watchServer(fstore, 0)
	defer fsrv.Close()
	genBody := func(base string) string {
		resp, err := http.Get(base + "/v1/gen")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	lb, fb := genBody(lsrv.URL), genBody(fsrv.URL)
	if lb != fb {
		t.Fatalf("/v1/gen diverged:\nleader   %s\nfollower %s", lb, fb)
	}

	// Identical link bytes, and every query answer with them.
	lcur, fcur := leader.Current(), fstore.Current()
	if !reflect.DeepEqual(lcur.Links(), fcur.Links()) {
		t.Fatal("served link sets diverged")
	}
	requireSnapshotsAnswerIdentically(t, lcur, fcur)

	// The follower adopted the leader's diffs verbatim: common retained
	// generations serve the same /v1/diff content.
	for g := 10; g <= 12; g++ {
		ld, lerr := leader.Diff(g-1, g)
		fd, ferr := fstore.Diff(g-1, g)
		if lerr != nil || ferr != nil {
			t.Fatalf("diff %d→%d: leader err %v, follower err %v", g-1, g, lerr, ferr)
		}
		if !reflect.DeepEqual(ld, fd) {
			t.Fatalf("diff %d→%d diverged between leader and follower", g-1, g)
		}
	}
}
