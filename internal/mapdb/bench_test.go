package mapdb

// The serving-layer benchmarks: point-query throughput on the compiled
// snapshot (with the naive linear scan kept as the control the trie must
// beat by >=10x), and the load-generator shape — concurrent readers
// hammering the store while a publisher swaps generations underneath them.
//
//	go test ./internal/mapdb -run=NONE -bench . -benchmem

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"bdrmap/internal/core"
	"bdrmap/internal/netx"
	"bdrmap/internal/obs"
	"bdrmap/internal/topo"
)

const benchLinks = 4096

func benchSnapshot(tag int) *Snapshot {
	return Compile(64500, []*core.Result{genResult(tag, benchLinks)})
}

// benchProbes mixes hits (both sides of every link) with misses.
func benchProbes() []netx.Addr {
	probes := make([]netx.Addr, 0, benchLinks*3)
	for i := 0; i < benchLinks; i++ {
		base := netx.Addr(0x0a000000 + uint32(i)*4)
		probes = append(probes, base+1, base+2, base+3) // near, far, miss
	}
	return probes
}

// BenchmarkMapDBLookup is the owner-resolution hot path: must run with
// zero allocations per op and >=10x the linear-scan control's throughput.
func BenchmarkMapDBLookup(b *testing.B) {
	snap := benchSnapshot(1)
	probes := benchProbes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap.Owner(probes[i%len(probes)])
	}
}

// BenchmarkMapDBLookupLinearScan is the control: the naive re-walk of the
// interface list that answering from a Report amounts to.
func BenchmarkMapDBLookupLinearScan(b *testing.B) {
	snap := benchSnapshot(1)
	probes := benchProbes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap.ownerLinear(probes[i%len(probes)])
	}
}

// BenchmarkMapDBLinkLookup resolves hop pairs to links (the tslpmon path).
func BenchmarkMapDBLinkLookup(b *testing.B) {
	snap := benchSnapshot(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := netx.Addr(0x0a000000 + uint32(i%benchLinks)*4)
		snap.Link(base+1, base+2)
	}
}

// BenchmarkMapDBQueryUnderSwap is the load generator: parallel readers
// issue owner and link queries against Store.Current while a background
// publisher keeps swapping fresh generations in.
func BenchmarkMapDBQueryUnderSwap(b *testing.B) {
	st := NewStore(4, nil)
	st.Publish(benchSnapshot(1))
	probes := benchProbes()

	stop := make(chan struct{})
	published := atomic.Int64{}
	go func() {
		// Two prebuilt result sets alternate so each publish compiles and
		// swaps a genuinely different generation.
		results := [][]*core.Result{
			{genResult(2, benchLinks)},
			{genResult(3, benchLinks)},
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			st.Publish(Compile(64500, results[i%2]))
			published.Add(1)
		}
	}()

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			snap := st.Current()
			a := probes[i%len(probes)]
			snap.Owner(a)
			snap.Link(a, a+1)
			i++
		}
	})
	b.StopTimer()
	close(stop)
	b.ReportMetric(float64(published.Load()), "swaps")
}

// benchRounds runs the six-round continuous-monitoring loop end to end
// and reports the probe budget it spent, the comparison the incremental
// engine exists for: unchanged paths replay from cache instead of being
// re-probed, so probe-packets/run and live-traces/run collapse while the
// published generations stay byte-identical (TestRunRoundsIncrementalEquivalence).
func benchRounds(b *testing.B, incremental bool) {
	b.ReportAllocs()
	var packets, live float64
	for i := 0; i < b.N; i++ {
		reg := obs.New()
		st := NewStore(0, nil)
		_, err := RunRounds(RoundsConfig{
			Profile: topo.TinyProfile(), Seed: 1, Rounds: 6, Workers: 2,
			Incremental: incremental, Obs: reg,
		}, st)
		if err != nil {
			b.Fatal(err)
		}
		packets += float64(reg.Counter("probe.packets_sent").Load())
		if incremental {
			live += float64(reg.Counter("driver.traces_live").Load())
		} else {
			live += float64(reg.Counter("driver.traces").Load())
		}
	}
	b.ReportMetric(packets/float64(b.N), "probe-packets/run")
	b.ReportMetric(live/float64(b.N), "live-traces/run")
}

// BenchmarkRoundsScratch is the control: every round re-probes and
// re-infers the whole world.
func BenchmarkRoundsScratch(b *testing.B) { benchRounds(b, false) }

// BenchmarkRoundsIncremental carries stop sets, trace transcripts, alias
// memos, and prior attributions across rounds.
func BenchmarkRoundsIncremental(b *testing.B) { benchRounds(b, true) }

// BenchmarkMapDBHTTPOwner measures one owner query through the full
// HTTP/JSON surface (mux, instrumentation, encoding).
func BenchmarkMapDBHTTPOwner(b *testing.B) {
	st := NewStore(0, nil)
	st.Publish(benchSnapshot(1))
	h := Handler(st, nil)
	req := httptest.NewRequest(http.MethodGet, "/v1/owner?ip=10.0.0.2", nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatal(rec.Code)
		}
	}
}
