package mapdb

import (
	"fmt"
	"math/rand"
	"sort"

	"bdrmap/internal/eval"
	"bdrmap/internal/scamper"
	"bdrmap/internal/topo"
)

// Rounds drives the continuous-monitoring loop the paper describes
// operationally (§2, §6): re-run the full measurement and inference
// pipeline against a world that changes between rounds, and publish each
// round's compiled map as a new generation. The churn schedule is seeded
// and deterministic — round r of (profile, seed) always provisions and
// de-provisions the same interconnects — so generation diffs are
// reproducible test and demo material rather than flake.

// RoundsConfig configures one deterministic multi-round run.
type RoundsConfig struct {
	// Profile and Seed pick the synthetic world (as topo.Generate).
	Profile topo.Profile
	Seed    int64
	// Rounds is the number of generations to publish (at least 1).
	Rounds int
	// Workers parallelizes probing within each round (default as scamper).
	Workers int
}

// RoundEvent records what changed in the world before one generation was
// measured, for operator-facing logs.
type RoundEvent struct {
	Gen    int
	Action string
}

// RunRounds measures cfg.Rounds generations into store. Between rounds the
// world mutates — odd rounds attach a new customer at a host border router
// (topo.AttachCustomer), even rounds de-provision one existing neighbor
// (topo.Depeer) — mirroring the churn the CAIDA deployment tracks.
func RunRounds(cfg RoundsConfig, store *Store) ([]RoundEvent, error) {
	if cfg.Rounds < 1 {
		return nil, fmt.Errorf("mapdb: Rounds must be >= 1, got %d", cfg.Rounds)
	}
	n := topo.Generate(cfg.Profile, cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x6d617064)) // "mapd"
	var events []RoundEvent
	for r := 0; r < cfg.Rounds; r++ {
		action := "baseline measurement"
		if r > 0 {
			var err error
			action, err = mutateWorld(n, rng, r)
			if err != nil {
				return events, err
			}
			n.Build()
		}
		s := eval.BuildFromNetwork(n, cfg.Seed)
		s.RunAll(scamper.Config{Workers: cfg.Workers})
		store.Publish(Compile(n.HostASN, s.Results))
		events = append(events, RoundEvent{Gen: store.Current().Gen(), Action: action})
	}
	return events, nil
}

// mutateWorld applies round r's deterministic churn and describes it.
func mutateWorld(n *topo.Network, rng *rand.Rand, r int) (string, error) {
	if r%2 == 1 {
		border := hostBorder(n)
		if border < 0 {
			return "", fmt.Errorf("mapdb: no host border router to attach at")
		}
		asn := topo.ASN(65000 + r)
		if _, err := topo.AttachCustomer(n, border, asn); err != nil {
			return "", err
		}
		return fmt.Sprintf("attached customer %v at router %d", asn, border), nil
	}
	victims := neighborASes(n)
	if len(victims) == 0 {
		return "no neighbor left to de-provision", nil
	}
	victim := victims[rng.Intn(len(victims))]
	removed := topo.Depeer(n, victim)
	return fmt.Sprintf("de-provisioned %d link(s) to %v", removed, victim), nil
}

// hostBorder returns the first host-side border router, or -1.
func hostBorder(n *topo.Network) topo.RouterID {
	for _, lt := range n.InterdomainLinks(n.HostASN) {
		return lt.NearRtr
	}
	return -1
}

// neighborASes lists the host's currently attached neighbor ASes, sorted
// so the rng draw is deterministic.
func neighborASes(n *topo.Network) []topo.ASN {
	seen := make(map[topo.ASN]bool)
	for _, lt := range n.InterdomainLinks(n.HostASN) {
		seen[lt.FarAS] = true
	}
	out := make([]topo.ASN, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CompileScenario compiles the current results of an already-run scenario
// — the one-liner bridging eval to the serving layer.
func CompileScenario(s *eval.Scenario) *Snapshot {
	return Compile(s.Net.HostASN, s.Results)
}
