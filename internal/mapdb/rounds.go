package mapdb

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"reflect"
	"sort"
	"time"

	"bdrmap/internal/core"
	"bdrmap/internal/eval"
	"bdrmap/internal/fleet"
	"bdrmap/internal/obs"
	"bdrmap/internal/scamper"
	"bdrmap/internal/topo"
)

// Rounds drives the continuous-monitoring loop the paper describes
// operationally (§2, §6): re-run the full measurement and inference
// pipeline against a world that changes between rounds, and publish each
// round's compiled map as a new generation. The churn schedule is seeded
// and deterministic — round r of (profile, seed) always provisions and
// de-provisions the same interconnects — so generation diffs are
// reproducible test and demo material rather than flake.
//
// With Incremental set, rounds after the first reuse the previous round's
// measurement memory: the doubletree stop set persists in each VP's
// scamper.RoundState, targets whose path signature is unchanged replay
// their cached traces without spending probes, and inference splices prior
// attributions for routers far from every changed address (core.Input.Prev
// + Dataset.Dirty). Verify cross-checks every incremental round against a
// from-scratch run on an identically mutated shadow world.

// RoundsConfig configures one deterministic multi-round run.
type RoundsConfig struct {
	// Profile and Seed pick the synthetic world (as topo.Generate).
	Profile topo.Profile
	Seed    int64
	// Rounds is the number of generations to publish (at least 1).
	Rounds int
	// Workers parallelizes probing within each round (default as scamper).
	Workers int

	// FleetWorkers runs each round's vantage points on that many fleet
	// coordinator workers (<=1 keeps strict VP order on one worker). The
	// round's served map is byte-identical for any worker count.
	FleetWorkers int
	// FleetQuorum, when in [1, numVPs-1], additionally publishes a partial
	// generation once that many VPs have completed, marking the rest
	// degraded (Snapshot.Degraded); the round's final full generation
	// follows and heals it. 0 publishes only full generations.
	FleetQuorum int
	// FleetStragglerTimeout is how long the coordinator waits after quorum
	// before publishing the partial generation (0 = immediately).
	FleetStragglerTimeout time.Duration

	// Incremental carries per-VP measurement state (stop set, trace
	// transcripts, alias memos) and the previous inference result across
	// rounds, so unchanged parts of the world are replayed rather than
	// re-probed and re-inferred.
	Incremental bool
	// RefreshEvery forces a full re-walk of a target every N rounds even
	// when its path signature is unchanged (0 means
	// scamper.DefaultRefreshEvery; scamper.Disabled means never refresh).
	// Only meaningful with Incremental.
	RefreshEvery int
	// Verify, with Incremental, runs every round a second time from
	// scratch on an identically mutated shadow world and returns an error
	// unless the incremental map is byte-identical: same served link set,
	// same owner attributions, same per-VP trace fingerprints.
	Verify bool
	// Obs, if non-nil, replaces each round's scenario registry so driver
	// and cache counters (rounds.cache.*, driver.traces_*) aggregate
	// across rounds, and receives the rounds.round stage timer. The
	// Verify shadow runs never report into it.
	Obs *obs.Registry

	// Spans, if non-nil, replaces each round's scenario span log so the
	// whole run records one tree: round spans parented under SpanParent,
	// per-VP subtrees under each round, and compile/publish stage spans
	// bracketing the serving handoff. The Verify shadow runs keep their
	// own private span logs and never report into it.
	Spans      *obs.SpanLog
	SpanParent obs.SpanID
}

// RoundEvent records what changed in the world before one generation was
// measured, for operator-facing logs.
type RoundEvent struct {
	Gen    int
	Action string
	// TraceFP fingerprints the round's measurement (every VP's trace
	// transcript, in VP order); two rounds that observed identical paths
	// carry the same fingerprint regardless of how many probes were spent
	// reconfirming them.
	TraceFP uint64
}

// RunRounds measures cfg.Rounds generations into store. Between rounds the
// world mutates — odd rounds attach a new customer at a host border router
// (topo.AttachCustomer), even rounds de-provision one existing neighbor
// (topo.Depeer) — mirroring the churn the CAIDA deployment tracks.
func RunRounds(cfg RoundsConfig, store *Store) ([]RoundEvent, error) {
	events, _, err := RunRoundsFull(cfg, store)
	return events, err
}

// RunRoundsFull is RunRounds, additionally returning the final round's
// scenario so callers (tslpmon, tests) can inspect the last generation's
// datasets and results without recompiling them.
func RunRoundsFull(cfg RoundsConfig, store *Store) ([]RoundEvent, *eval.Scenario, error) {
	if cfg.Rounds < 1 {
		return nil, nil, fmt.Errorf("mapdb: Rounds must be >= 1, got %d", cfg.Rounds)
	}
	n := topo.Generate(cfg.Profile, cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x6d617064)) // "mapd"

	// The Verify shadow world evolves in lockstep: same generator, same
	// rng stream, same mutation schedule — so round r's scratch run sees
	// bit-for-bit the world the incremental run measured.
	var vn *topo.Network
	var vrng *rand.Rand
	if cfg.Incremental && cfg.Verify {
		vn = topo.Generate(cfg.Profile, cfg.Seed)
		vrng = rand.New(rand.NewSource(cfg.Seed ^ 0x6d617064))
	}

	// Cross-round incremental state: one RoundState per VP (stop set,
	// trace transcripts, alias memos) plus the previous round's results
	// for attribution splicing.
	var states []*scamper.RoundState
	var prevs []*core.Result
	if cfg.Incremental {
		states = make([]*scamper.RoundState, len(n.VPs))
		for i := range states {
			states[i] = scamper.NewRoundState()
		}
	}

	scfg := scamper.Config{Workers: cfg.Workers, RefreshEvery: cfg.RefreshEvery}
	var events []RoundEvent
	var s *eval.Scenario
	for r := 0; r < cfg.Rounds; r++ {
		span := cfg.Obs.StartStage("rounds.round")
		rsp := cfg.Spans.Begin(cfg.SpanParent, "round", fmt.Sprintf("round %d", r))
		action := "baseline measurement"
		if r > 0 {
			var err error
			action, err = mutateWorld(n, rng, r)
			if err != nil {
				rsp.End()
				span.End()
				return events, nil, err
			}
			n.Build()
			if vn != nil {
				if _, err := mutateWorld(vn, vrng, r); err != nil {
					rsp.End()
					span.End()
					return events, nil, err
				}
				vn.Build()
			}
		}
		rsp.SetAttr("action", action)
		s = eval.BuildFromNetwork(n, cfg.Seed)
		if cfg.Obs != nil {
			s.Obs = cfg.Obs
			s.Engine.SetObs(cfg.Obs)
		}
		if cfg.Spans != nil {
			// Per-VP span subtrees for this round nest under the round
			// span rather than the scenario's own (discarded) run root.
			s.Spans = cfg.Spans
			s.SpanRoot = rsp
		}
		fo := eval.FleetOptions{
			Workers:          cfg.FleetWorkers,
			Quorum:           cfg.FleetQuorum,
			StragglerTimeout: cfg.FleetStragglerTimeout,
		}
		if cfg.Incremental {
			fo.States = states
			fo.Prevs = prevs
		}
		if cfg.FleetQuorum > 0 {
			// Quorum-time partial generations publish from the coordinator
			// goroutine as soon as enough VPs land; the round's own full
			// compile+publish below is the healing generation.
			sc := s
			round := rsp
			fo.OnPublish = func(ev fleet.PublishEvent) {
				if ev.Final {
					return
				}
				qsp := cfg.Spans.Begin(round.ID(), "stage", "publish-partial")
				psnap := Compile(sc.Net.HostASN, ev.Results)
				psnap.MarkDegraded(ev.Degraded)
				store.Publish(psnap)
				qsp.SetAttr("gen", psnap.Gen())
				qsp.SetAttr("degraded", len(ev.Degraded))
				qsp.End()
			}
		}
		if _, err := s.RunFleet(scfg, fo); err != nil {
			rsp.End()
			span.End()
			return events, nil, err
		}
		if cfg.Incremental {
			prevs = s.Results
		}
		csp := cfg.Spans.Begin(rsp.ID(), "stage", "compile")
		snap := Compile(n.HostASN, s.Results)
		csp.SetAttr("links", snap.NumLinks())
		csp.End()
		psp := cfg.Spans.Begin(rsp.ID(), "stage", "publish")
		store.Publish(snap)
		psp.SetAttr("gen", snap.Gen())
		psp.End()
		// The event names the generation of the snapshot just published —
		// not store.Current().Gen(), which a concurrent publisher could
		// have already advanced past ours.
		ev := RoundEvent{Gen: snap.Gen(), Action: action, TraceFP: roundFingerprint(s.Datasets)}
		if vn != nil {
			if err := verifyRound(cfg, r, vn, s, snap); err != nil {
				rsp.End()
				span.End()
				return events, nil, err
			}
		}
		events = append(events, ev)
		rsp.SetAttr("gen", snap.Gen())
		rsp.End()
		span.End()
	}
	return events, s, nil
}

// roundFingerprint folds the per-VP trace fingerprints (VP order) into one
// round identity.
func roundFingerprint(dss []*scamper.Dataset) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, ds := range dss {
		if ds == nil {
			continue
		}
		binary.LittleEndian.PutUint64(b[:], ds.TraceFingerprint())
		h.Write(b[:])
	}
	return h.Sum64()
}

// verifyRound is the mandatory equivalence mode: a from-scratch run on the
// shadow world must produce byte-identical traces, owner attributions, and
// served links. Any divergence is a bug in the incremental engine, not a
// degradation to tolerate — hence an error, not a metric.
func verifyRound(cfg RoundsConfig, r int, vn *topo.Network, s *eval.Scenario, snap *Snapshot) error {
	vs := eval.BuildFromNetwork(vn, cfg.Seed)
	vs.RunAll(scamper.Config{Workers: cfg.Workers})
	vsnap := Compile(vn.HostASN, vs.Results)
	for i := range s.Datasets {
		got, want := s.Datasets[i].TraceFingerprint(), vs.Datasets[i].TraceFingerprint()
		if got != want {
			return fmt.Errorf("mapdb: round %d VP %d: incremental trace fingerprint %016x != scratch %016x", r, i, got, want)
		}
	}
	if !reflect.DeepEqual(snap.links, vsnap.links) {
		return fmt.Errorf("mapdb: round %d: incremental link set diverged from scratch (%d vs %d links)",
			r, len(snap.links), len(vsnap.links))
	}
	if !reflect.DeepEqual(snap.ownerAddrs, vsnap.ownerAddrs) || !reflect.DeepEqual(snap.owners, vsnap.owners) {
		return fmt.Errorf("mapdb: round %d: incremental owner attributions diverged from scratch (%d vs %d addrs)",
			r, len(snap.ownerAddrs), len(vsnap.ownerAddrs))
	}
	return nil
}

// mutateWorld applies round r's deterministic churn and describes it.
func mutateWorld(n *topo.Network, rng *rand.Rand, r int) (string, error) {
	if r%2 == 1 {
		border := hostBorder(n)
		if border < 0 {
			return "", fmt.Errorf("mapdb: no host border router to attach at")
		}
		asn := topo.ASN(65000 + r)
		if _, err := topo.AttachCustomer(n, border, asn); err != nil {
			return "", err
		}
		return fmt.Sprintf("attached customer %v at router %d", asn, border), nil
	}
	victims := neighborASes(n)
	if len(victims) == 0 {
		return "no neighbor left to de-provision", nil
	}
	victim := victims[rng.Intn(len(victims))]
	removed := topo.Depeer(n, victim)
	return fmt.Sprintf("de-provisioned %d link(s) to %v", removed, victim), nil
}

// hostBorder returns the first host-side border router, or -1. "First" is
// well-defined: InterdomainLinks is fully ordered by (NearRtr, FarRtr,
// first interface address).
func hostBorder(n *topo.Network) topo.RouterID {
	for _, lt := range n.InterdomainLinks(n.HostASN) {
		return lt.NearRtr
	}
	return -1
}

// neighborASes lists the host's currently attached neighbor ASes, sorted
// so the rng draw is deterministic.
func neighborASes(n *topo.Network) []topo.ASN {
	seen := make(map[topo.ASN]bool)
	for _, lt := range n.InterdomainLinks(n.HostASN) {
		seen[lt.FarAS] = true
	}
	out := make([]topo.ASN, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CompileScenario compiles the current results of an already-run scenario
// — the one-liner bridging eval to the serving layer.
func CompileScenario(s *eval.Scenario) *Snapshot {
	return Compile(s.Net.HostASN, s.Results)
}
