package mapdb

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"bdrmap/internal/core"
	"bdrmap/internal/obs"
)

// TestStatusEndpoint drives /v1/status through its states: empty store,
// published store, live spans, cache counters, and the method guard.
func TestStatusEndpoint(t *testing.T) {
	reg := obs.New()
	st := NewStore(0, reg)
	sl := obs.NewSpanLog(0)
	h := HandlerWithStatus(st, reg, sl)

	// Unlike the query endpoints, status answers 200 before any publish.
	code, body := get(t, h, "/v1/status")
	if code != http.StatusOK {
		t.Fatalf("pre-publish status = %d %v", code, body)
	}
	if body["published"] != false {
		t.Errorf("pre-publish published = %v, want false", body["published"])
	}
	if body["runtime"].(map[string]any)["goroutines"].(float64) <= 0 {
		t.Error("runtime section missing goroutine count")
	}

	// Span state: one finished vp run, one running, a still-open root.
	root := sl.Begin(0, "run", "test")
	vp1 := sl.Begin(root.ID(), "vp", "vp01")
	vp1.AddSim(5 * time.Millisecond)
	vp1.End()
	sl.Begin(root.ID(), "vp", "vp02") // left running

	reg.Counter("rounds.cache.hit").Add(3)
	reg.Counter("rounds.cache.miss").Add(1)
	st.Publish(Compile(64500, []*core.Result{syntheticResult("vp", 8, 60000)}))

	code, body = get(t, h, "/v1/status")
	if code != http.StatusOK || body["published"] != true || body["gen"].(float64) != 1 {
		t.Fatalf("post-publish status = %d %v", code, body)
	}
	cache := body["cache"].(map[string]any)
	if cache["hits"].(float64) != 3 || cache["hit_rate"].(float64) != 0.75 {
		t.Errorf("cache section = %v, want 3 hits at rate 0.75", cache)
	}
	spans := body["spans"].(map[string]any)
	if spans["recorded"].(float64) != 1 || spans["active"].(float64) != 2 {
		t.Errorf("spans section = %v, want 1 recorded 2 active", spans)
	}
	if live := body["live"].([]any); len(live) != 2 {
		t.Errorf("live = %v, want the run root and the open vp span", live)
	}
	vps := body["vps"].([]any)
	if len(vps) != 2 {
		t.Fatalf("vps = %v, want rows for vp01 and vp02", vps)
	}
	v1 := vps[0].(map[string]any)
	v2 := vps[1].(map[string]any)
	if v1["vp"] != "vp01" || v1["state"] != "idle" || v1["runs"].(float64) != 1 || v1["sim_ns"].(float64) != 5e6 {
		t.Errorf("vp01 row = %v", v1)
	}
	if v2["vp"] != "vp02" || v2["state"] != "running" || v2["runs"].(float64) != 0 {
		t.Errorf("vp02 row = %v", v2)
	}
}

// TestStatusNilSpanLog checks the degraded mode Handler() mounts: status
// still serves store, cache, and runtime state with no span log attached.
func TestStatusNilSpanLog(t *testing.T) {
	reg := obs.New()
	st := NewStore(0, reg)
	code, body := get(t, Handler(st, reg), "/v1/status")
	if code != http.StatusOK {
		t.Fatalf("status without span log = %d %v", code, body)
	}
	if _, ok := body["live"]; ok {
		t.Errorf("live section present without a span log: %v", body)
	}
}

// TestStatusErrorCodes is the error-code table for the ops surface: every
// failure shape on /v1/status and its sibling endpoints must answer the
// documented status and structured code (never a bare text body).
func TestStatusErrorCodes(t *testing.T) {
	reg := obs.New()
	st := NewStore(0, reg)
	h := HandlerWithStatus(st, reg, obs.NewSpanLog(0))

	cases := []struct {
		name     string
		method   string
		path     string
		wantCode int
		wantErr  string // "" means a non-error body
	}{
		{"status GET empty store", http.MethodGet, "/v1/status", http.StatusOK, ""},
		{"status HEAD allowed", http.MethodHead, "/v1/status", http.StatusOK, ""},
		{"status POST", http.MethodPost, "/v1/status", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"status PUT", http.MethodPut, "/v1/status", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"status DELETE", http.MethodDelete, "/v1/status", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"gen empty store", http.MethodGet, "/v1/gen", http.StatusServiceUnavailable, "no_generation"},
		{"owner empty store", http.MethodGet, "/v1/owner?ip=10.0.0.1", http.StatusServiceUnavailable, "no_generation"},
		{"owner missing param", http.MethodGet, "/v1/owner", http.StatusBadRequest, "missing_parameter"},
		{"status subpath", http.MethodGet, "/v1/status/extra", http.StatusNotFound, "not_found"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			req := httptest.NewRequest(c.method, c.path, nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != c.wantCode {
				t.Fatalf("%s %s = %d %s, want %d", c.method, c.path, rec.Code, rec.Body.String(), c.wantCode)
			}
			if c.wantErr != "" && c.method != http.MethodHead {
				var body map[string]any
				if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
					t.Fatalf("non-JSON error body %q: %v", rec.Body.String(), err)
				}
				if got := errCode(t, body); got != c.wantErr {
					t.Errorf("error code = %q, want %q", got, c.wantErr)
				}
			}
		})
	}

	// Errors on the status route feed the shared error counter like any
	// other endpoint (it is mounted through the same wrap).
	if errs := reg.Snapshot().Counter("mapdb.http.errors"); errs == 0 {
		t.Error("method-guard rejections did not count into mapdb.http.errors")
	}
	if reqs := reg.Snapshot().Counter("mapdb.http.status"); reqs == 0 {
		t.Error("no mapdb.http.status request counter recorded")
	}
}
