package mapdb

import (
	"reflect"
	"testing"

	"bdrmap/internal/obs"
	"bdrmap/internal/topo"
)

func TestRunRoundsDeterministicChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-round pipeline run")
	}
	run := func() ([]RoundEvent, *Store) {
		st := NewStore(0, obs.New())
		ev, err := RunRounds(RoundsConfig{Profile: topo.TinyProfile(), Seed: 1, Rounds: 3}, st)
		if err != nil {
			t.Fatal(err)
		}
		return ev, st
	}
	ev, st := run()
	if len(ev) != 3 {
		t.Fatalf("events = %v, want 3", ev)
	}
	if got := st.Generations(); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("generations = %v", got)
	}

	// Round 2 attaches customer AS65001: the diff 1->2 must gain it.
	d, err := st.Diff(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	foundNew := false
	for _, a := range d.NeighborsAdded {
		if a == 65001 {
			foundNew = true
		}
	}
	if !foundNew {
		t.Fatalf("gen 2 diff did not gain AS65001: %+v (event %q)", d, ev[1].Action)
	}
	// Round 3 de-provisions one neighbor: the diff 2->3 must lose links.
	d, err = st.Diff(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Removed) == 0 {
		t.Fatalf("gen 3 diff removed nothing (event %q)", ev[2].Action)
	}

	// The whole run — churn schedule included — is deterministic.
	ev2, st2 := run()
	if !reflect.DeepEqual(ev, ev2) {
		t.Fatalf("churn schedules differ:\n%v\n%v", ev, ev2)
	}
	for g := 1; g <= 3; g++ {
		a, _ := st.Generation(g)
		b, _ := st2.Generation(g)
		if !reflect.DeepEqual(a.Links(), b.Links()) {
			t.Fatalf("generation %d link sets differ across runs", g)
		}
	}
	if err := func() error {
		_, err := RunRounds(RoundsConfig{Profile: topo.TinyProfile(), Seed: 1, Rounds: 0}, st)
		return err
	}(); err == nil {
		t.Error("Rounds:0 accepted")
	}
}
