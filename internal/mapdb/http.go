package mapdb

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"bdrmap/internal/netx"
	"bdrmap/internal/obs"
	"bdrmap/internal/topo"
)

// HTTP/JSON query API over a Store, mounted on bdrmapd's mux under /v1/.
// Every endpoint answers from exactly one generation (one atomic snapshot
// load per request), reports errors as structured JSON
// {"error":{"code","message"}}, and is instrumented through internal/obs:
// a per-endpoint request counter (mapdb.http.<endpoint>), an error counter
// (mapdb.http.errors), and a shared latency histogram
// (mapdb.http.latency_us) that surfaces on bdrmapd's /metrics.

// apiError is the wire shape of one structured error.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorBody struct {
	Error apiError `json:"error"`
}

// WriteError writes a structured JSON error: a machine-readable code plus
// a human-readable message, replacing bare http.Error text bodies.
func WriteError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: apiError{Code: code, Message: msg}})
}

// NotFoundHandler returns structured JSON 404s for unmatched paths, so a
// mux's fallthrough matches the API's error contract.
func NotFoundHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteError(w, http.StatusNotFound, "not_found", "no handler for "+r.URL.Path)
	})
}

// linkJSON is the wire shape of one served link.
type linkJSON struct {
	Near      string `json:"near"`
	Far       string `json:"far"`
	FarAS     uint32 `json:"far_as"`
	Heuristic string `json:"heuristic,omitempty"`
}

func toLinkJSON(l Link) linkJSON {
	far := l.Far.String()
	if l.Far.IsZero() {
		far = "silent"
	}
	return linkJSON{Near: l.Near.String(), Far: far, FarAS: uint32(l.FarAS), Heuristic: l.Heuristic}
}

func toLinksJSON(ls []Link) []linkJSON {
	out := make([]linkJSON, len(ls))
	for i, l := range ls {
		out[i] = toLinkJSON(l)
	}
	return out
}

// latencyEdgesUS are the query-latency histogram bucket edges in
// microseconds (point lookups are expected in the lowest buckets).
var latencyEdgesUS = []int64{1, 5, 25, 100, 500, 2500, 10000, 100000}

type api struct {
	store *Store
	reg   *obs.Registry
	spans *obs.SpanLog

	// watchKeepalive is the idle-stream keepalive interval on /v1/watch
	// (tests shorten it; zero means the 15s default).
	watchKeepalive time.Duration
}

// Handler serves the query API for st. Routes (all GET):
//
//	/v1/gen                 current generation summary + retained history
//	/v1/owner?ip=A          owner AS of the router behind interface A
//	/v1/link?near=A&far=B   the interdomain link on hop pair (A, B)
//	/v1/link?near=A         the silent link at A (§5.4.8)
//	/v1/neighbors?as=N      all links attaching neighbor AS N
//	/v1/diff?from=G&to=H    churn between two retained generations
//	/v1/watch[?from=G]      NDJSON stream of GenDiffs as they publish,
//	                        resumable from a retained generation
//	/v1/segment[?gen=G]     a generation as a raw segment image (the
//	                        on-disk format; the follower full-sync path)
//
// reg may be nil (no instrumentation).
func Handler(st *Store, reg *obs.Registry) http.Handler {
	return HandlerWithStatus(st, reg, nil)
}

// HandlerWithStatus is Handler plus the live operational surface:
//
//	/v1/status              serving + pipeline state: current generation,
//	                        incremental-cache hit rates, span-log totals,
//	                        currently open spans (round/stage/per-VP), and
//	                        runtime health (heap, GC, goroutines)
//
// sl is the process-wide span log the pipeline records into; nil degrades
// /v1/status to serving-and-runtime state only.
func HandlerWithStatus(st *Store, reg *obs.Registry, sl *obs.SpanLog) http.Handler {
	a := &api{store: st, reg: reg, spans: sl}
	mux := http.NewServeMux()
	mux.Handle("/v1/gen", a.wrap("gen", a.handleGen))
	mux.Handle("/v1/owner", a.wrap("owner", a.handleOwner))
	mux.Handle("/v1/link", a.wrap("link", a.handleLink))
	mux.Handle("/v1/neighbors", a.wrap("neighbors", a.handleNeighbors))
	mux.Handle("/v1/diff", a.wrap("diff", a.handleDiff))
	mux.Handle("/v1/watch", a.wrapStream("watch", a.handleWatch))
	mux.Handle("/v1/segment", a.wrap("segment", a.handleSegment))
	mux.Handle("/v1/status", a.wrap("status", a.handleStatus))
	mux.Handle("/v1/fleet", a.wrap("fleet", a.handleFleet))
	mux.Handle("/", NotFoundHandler())
	return mux
}

// wrap instruments one endpoint: request counter, latency histogram,
// method guard. Metric handles are resolved once, not per request.
func (a *api) wrap(name string, fn func(http.ResponseWriter, *http.Request) bool) http.Handler {
	reqs := a.reg.Counter("mapdb.http." + name)
	errs := a.reg.Counter("mapdb.http.errors")
	lat := a.reg.Histogram("mapdb.http.latency_us", latencyEdgesUS)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		reqs.Inc()
		ok := false
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			WriteError(w, http.StatusMethodNotAllowed, "method_not_allowed",
				r.Method+" not supported; use GET")
		} else {
			ok = fn(w, r)
		}
		if !ok {
			errs.Inc()
		}
		lat.Observe(time.Since(t0).Microseconds())
	})
}

// wrapStream instruments a long-lived streaming endpoint: request and
// error counters only. A watch stream lives for minutes — folding its
// lifetime into the point-query latency histogram would bury the p99 the
// histogram exists to expose.
func (a *api) wrapStream(name string, fn func(http.ResponseWriter, *http.Request) bool) http.Handler {
	reqs := a.reg.Counter("mapdb.http." + name)
	errs := a.reg.Counter("mapdb.http.errors")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqs.Inc()
		ok := false
		if r.Method != http.MethodGet {
			WriteError(w, http.StatusMethodNotAllowed, "method_not_allowed",
				r.Method+" not supported; use GET")
		} else {
			ok = fn(w, r)
		}
		if !ok {
			errs.Inc()
		}
	})
}

// snapshot answers 503 until a first generation is published.
func (a *api) snapshot(w http.ResponseWriter) (*Snapshot, bool) {
	s := a.store.Current()
	if s == nil {
		WriteError(w, http.StatusServiceUnavailable, "no_generation",
			"no map generation published yet")
		return nil, false
	}
	return s, true
}

func writeJSON(w http.ResponseWriter, v any) bool {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
	return true
}

func (a *api) handleGen(w http.ResponseWriter, r *http.Request) bool {
	s, ok := a.snapshot(w)
	if !ok {
		return false
	}
	return writeJSON(w, struct {
		Gen         int      `json:"gen"`
		HostAS      uint32   `json:"host_as"`
		VPs         []string `json:"vps"`
		Links       int      `json:"links"`
		Neighbors   int      `json:"neighbors"`
		Owners      int      `json:"owners"`
		Generations []int    `json:"generations"`
	}{
		Gen: s.Gen(), HostAS: uint32(s.HostASN()), VPs: s.VPs(),
		Links: s.NumLinks(), Neighbors: len(s.NeighborASes()),
		Owners: s.NumOwners(), Generations: a.store.Generations(),
	})
}

func (a *api) handleOwner(w http.ResponseWriter, r *http.Request) bool {
	addr, ok := parseAddrParam(w, r, "ip", true)
	if !ok {
		return false
	}
	s, ok := a.snapshot(w)
	if !ok {
		return false
	}
	o, found := s.Owner(addr)
	if !found {
		WriteError(w, http.StatusNotFound, "unknown_interface",
			addr.String()+" was not observed in any trace of generation "+strconv.Itoa(s.Gen()))
		return false
	}
	return writeJSON(w, struct {
		Gen       int    `json:"gen"`
		IP        string `json:"ip"`
		AS        uint32 `json:"as"`
		Heuristic string `json:"heuristic"`
		Host      bool   `json:"host"`
		HopDist   int    `json:"hop_dist"`
	}{s.Gen(), addr.String(), uint32(o.AS), o.Heuristic, o.Host, o.HopDist})
}

func (a *api) handleLink(w http.ResponseWriter, r *http.Request) bool {
	near, ok := parseAddrParam(w, r, "near", true)
	if !ok {
		return false
	}
	far, ok := parseAddrParam(w, r, "far", false)
	if !ok {
		return false
	}
	s, ok := a.snapshot(w)
	if !ok {
		return false
	}
	l, found := s.Link(near, far)
	if !found {
		WriteError(w, http.StatusNotFound, "not_a_border",
			"no inferred interdomain link on that hop pair in generation "+strconv.Itoa(s.Gen()))
		return false
	}
	return writeJSON(w, struct {
		Gen  int      `json:"gen"`
		Link linkJSON `json:"link"`
	}{s.Gen(), toLinkJSON(l)})
}

func (a *api) handleNeighbors(w http.ResponseWriter, r *http.Request) bool {
	asn, ok := parseASNParam(w, r, "as")
	if !ok {
		return false
	}
	s, ok := a.snapshot(w)
	if !ok {
		return false
	}
	links := s.Neighbors(asn)
	if len(links) == 0 {
		WriteError(w, http.StatusNotFound, "unknown_neighbor",
			asn.String()+" has no inferred link in generation "+strconv.Itoa(s.Gen()))
		return false
	}
	return writeJSON(w, struct {
		Gen   int        `json:"gen"`
		AS    uint32     `json:"as"`
		Count int        `json:"count"`
		Links []linkJSON `json:"links"`
	}{s.Gen(), uint32(asn), len(links), toLinksJSON(links)})
}

func (a *api) handleDiff(w http.ResponseWriter, r *http.Request) bool {
	from, ok := parseIntParam(w, r, "from")
	if !ok {
		return false
	}
	to, ok := parseIntParam(w, r, "to")
	if !ok {
		return false
	}
	d, err := a.store.Diff(from, to)
	if err != nil {
		var br *BadRangeError
		if errors.As(err, &br) {
			WriteError(w, http.StatusBadRequest, "bad_range", err.Error())
		} else {
			WriteError(w, http.StatusNotFound, "unknown_generation", err.Error())
		}
		return false
	}
	changes := make([]struct {
		Addr string `json:"addr"`
		From uint32 `json:"from"`
		To   uint32 `json:"to"`
	}, len(d.OwnerChanges))
	for i, c := range d.OwnerChanges {
		changes[i].Addr = c.Addr.String()
		changes[i].From = uint32(c.From)
		changes[i].To = uint32(c.To)
	}
	return writeJSON(w, struct {
		From             int        `json:"from"`
		To               int        `json:"to"`
		Added            []linkJSON `json:"added"`
		Removed          []linkJSON `json:"removed"`
		NeighborsAdded   []uint32   `json:"neighbors_added"`
		NeighborsRemoved []uint32   `json:"neighbors_removed"`
		OwnerChanges     any        `json:"owner_changes"`
		// Degraded-artifact marks: churn across a quorum-partial
		// generation is (at least partly) a publishing artifact, not
		// topology change. Omitted entirely for full↔full diffs so the
		// established wire shape is unchanged where the marks are moot.
		FromPartial bool     `json:"from_partial,omitempty"`
		ToPartial   bool     `json:"to_partial,omitempty"`
		DegradedVPs []string `json:"degraded_vps,omitempty"`
	}{
		From: d.From, To: d.To,
		Added: toLinksJSON(d.Added), Removed: toLinksJSON(d.Removed),
		NeighborsAdded:   toASNsJSON(d.NeighborsAdded),
		NeighborsRemoved: toASNsJSON(d.NeighborsRemoved),
		OwnerChanges:     changes,
		FromPartial:      d.FromPartial,
		ToPartial:        d.ToPartial,
		DegradedVPs:      d.DegradedVPs,
	})
}

// handleWatch streams GenDiffs as NDJSON frames: one "hello" frame naming
// the generation the stream is current as of, then one "diff" frame per
// publish, with periodic "keepalive" frames while idle. `?from=G` first
// replays the retained backlog G→now; a G that fell out of history is a
// 404 (unknown_generation) telling the client to full-sync /v1/segment.
// This is the follower replication channel and the monitor push channel —
// same frames, same resume rules.
func (a *api) handleWatch(w http.ResponseWriter, r *http.Request) bool {
	fl, ok := w.(http.Flusher)
	if !ok {
		WriteError(w, http.StatusInternalServerError, "not_streamable",
			"response writer cannot stream")
		return false
	}
	from := 0
	if r.URL.Query().Get("from") != "" {
		if from, ok = parseIntParam(w, r, "from"); !ok {
			return false
		}
	}

	ch, cancel, cur := a.store.Watch(256)
	defer cancel()

	// Assemble the backlog before committing the response status: a
	// resume gap must surface as a clean 404, not a broken stream.
	var backlog []*GenDiff
	if from > 0 && from < cur {
		for g := from; g < cur; g++ {
			d, err := a.store.Diff(g, g+1)
			if err != nil {
				WriteError(w, http.StatusNotFound, "unknown_generation", err.Error())
				return false
			}
			backlog = append(backlog, d)
		}
	}
	if from > cur {
		WriteError(w, http.StatusNotFound, "unknown_generation",
			fmt.Sprintf("generation %d not published yet (current %d)", from, cur))
		return false
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	enc := json.NewEncoder(w)

	var host uint32
	if s := a.store.Current(); s != nil {
		host = uint32(s.HostASN())
	}
	send := func(f watchFrame) bool {
		if err := enc.Encode(f); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	if !send(watchFrame{Type: "hello", Gen: cur, HostAS: host}) {
		return true
	}
	last := cur
	for _, d := range backlog {
		if !send(watchFrame{Type: "diff", Gen: d.To, Diff: toDiffWire(d)}) {
			return true
		}
		last = d.To
	}
	_ = last // backlog ends at cur; live frames below are all > cur

	ka := a.watchKeepalive
	if ka <= 0 {
		ka = 15 * time.Second
	}
	ticker := time.NewTicker(ka)
	defer ticker.Stop()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return true
		case d, ok := <-ch:
			if !ok {
				// This subscriber lagged past its buffer and was dropped;
				// ending the stream tells it to resume (or full-sync).
				return true
			}
			if d.To <= last {
				continue
			}
			if !send(watchFrame{Type: "diff", Gen: d.To, Diff: toDiffWire(d)}) {
				return true
			}
			last = d.To
		case <-ticker.C:
			if !send(watchFrame{Type: "keepalive", Gen: last}) {
				return true
			}
		}
	}
}

// handleSegment serves a generation as its raw segment image — the same
// bytes writeSegmentFile persists — for follower full sync and offline
// archival (`curl -o map.seg`). Default is the current generation;
// `?gen=G` serves any retained one.
func (a *api) handleSegment(w http.ResponseWriter, r *http.Request) bool {
	var s *Snapshot
	if g := r.URL.Query().Get("gen"); g != "" {
		gen, ok := parseIntParam(w, r, "gen")
		if !ok {
			return false
		}
		snap, ok := a.store.Generation(gen)
		if !ok {
			WriteError(w, http.StatusNotFound, "unknown_generation",
				(&NotRetainedError{Gen: gen}).Error())
			return false
		}
		s = snap
	} else {
		snap, ok := a.snapshot(w)
		if !ok {
			return false
		}
		s = snap
	}
	img := s.marshalSegment()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Mapdb-Generation", strconv.Itoa(s.Gen()))
	w.Header().Set("Content-Length", strconv.Itoa(len(img)))
	_, _ = w.Write(img)
	return true
}

// vpStatusJSON summarizes one vantage point's pipeline activity from its
// span history: how many rounds it has completed, whether a run is open
// right now, and the total simulated probing time it has accumulated.
type vpStatusJSON struct {
	VP    string `json:"vp"`
	State string `json:"state"` // "running" or "idle"
	Runs  int    `json:"runs"`
	SimNS int64  `json:"sim_ns"`
}

// handleStatus is the live ops surface: unlike every other endpoint it
// never errors — a daemon that has not published a generation yet still
// answers 200 with published=false, because "not serving yet" is exactly
// the state an operator polls this endpoint to see.
func (a *api) handleStatus(w http.ResponseWriter, r *http.Request) bool {
	type cacheJSON struct {
		Hits      int64   `json:"hits"`
		Misses    int64   `json:"misses"`
		Refreshes int64   `json:"refreshes"`
		HitRate   float64 `json:"hit_rate"`
	}
	type spansJSON struct {
		Recorded int    `json:"recorded"`
		Active   int    `json:"active"`
		Dropped  uint64 `json:"dropped"`
	}
	type runtimeJSON struct {
		Goroutines     int    `json:"goroutines"`
		HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
		HeapObjects    uint64 `json:"heap_objects"`
		GCRuns         uint32 `json:"gc_runs"`
		GCPauseTotalNS uint64 `json:"gc_pause_total_ns"`
	}
	type statusJSON struct {
		Published   bool             `json:"published"`
		Gen         int              `json:"gen,omitempty"`
		Generations []int            `json:"generations,omitempty"`
		Cache       cacheJSON        `json:"cache"`
		Spans       spansJSON        `json:"spans"`
		Live        []obs.SpanRecord `json:"live,omitempty"`
		VPs         []vpStatusJSON   `json:"vps,omitempty"`
		Fleet       *fleetJSON       `json:"fleet,omitempty"`
		Runtime     runtimeJSON      `json:"runtime"`
	}

	out := statusJSON{Fleet: a.fleetStatus()}
	if s := a.store.Current(); s != nil {
		out.Published = true
		out.Gen = s.Gen()
		out.Generations = a.store.Generations()
	}

	hits := a.reg.Counter("rounds.cache.hit").Load()
	misses := a.reg.Counter("rounds.cache.miss").Load()
	out.Cache = cacheJSON{
		Hits:      hits,
		Misses:    misses,
		Refreshes: a.reg.Counter("rounds.cache.refresh").Load(),
	}
	if total := hits + misses; total > 0 {
		out.Cache.HitRate = float64(hits) / float64(total)
	}

	if a.spans.Enabled() {
		out.Spans = spansJSON{
			Recorded: a.spans.Len(),
			Active:   a.spans.ActiveCount(),
			Dropped:  a.spans.Dropped(),
		}
		out.Live = a.spans.Active()
		out.VPs = vpStatuses(a.spans)
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	out.Runtime = runtimeJSON{
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: ms.HeapAlloc,
		HeapObjects:    ms.HeapObjects,
		GCRuns:         ms.NumGC,
		GCPauseTotalNS: ms.PauseTotalNs,
	}
	return writeJSON(w, out)
}

// fleetVPJSON is one vantage point's shard state as the fleet coordinator
// last saw it: completed or in-flight, and how many attempts its fault
// budget has consumed.
type fleetVPJSON struct {
	VP       string `json:"vp"`
	State    string `json:"state"` // "running" or "idle"
	Attempts int    `json:"attempts"`
	SimNS    int64  `json:"sim_ns"`
}

// fleetJSON is the coordinator section of /v1/status and the body of
// /v1/fleet, folded from the fleet.* counters, the span log's fleet-mode
// vp spans, and the current snapshot's degraded-VP marks. Counters are
// cumulative across every coordinator run in the process.
type fleetJSON struct {
	Shards           int64         `json:"shards"`
	Completed        int64         `json:"completed"`
	DegradedShards   int64         `json:"degraded_shards"`
	Failed           int64         `json:"failed"`
	Retries          int64         `json:"retries"`
	Steals           int64         `json:"steals"`
	InFlight         int64         `json:"in_flight"`
	Queued           int64         `json:"queued"`
	PartialPublishes int64         `json:"partial_publishes"`
	FinalPublishes   int64         `json:"final_publishes"`
	Partial          bool          `json:"partial_generation"`
	DegradedVPs      []string      `json:"degraded_vps,omitempty"`
	VPs              []fleetVPJSON `json:"vps,omitempty"`
}

// fleetStatus folds the live coordinator state, or nil when no fleet has
// run in this process.
func (a *api) fleetStatus() *fleetJSON {
	c := func(name string) int64 { return a.reg.Counter(name).Load() }
	shards := c("fleet.shards")
	if shards == 0 {
		return nil
	}
	started := c("fleet.started")
	completed := c("fleet.completed")
	retries := c("fleet.retries")
	degraded := c("fleet.shard_degraded")
	failed := c("fleet.failed")
	f := &fleetJSON{
		Shards:           shards,
		Completed:        completed,
		DegradedShards:   degraded,
		Failed:           failed,
		Retries:          retries,
		Steals:           c("fleet.steals"),
		InFlight:         started - completed - retries - degraded - failed,
		Queued:           c("fleet.enqueued") - started,
		PartialPublishes: c("fleet.publish.partial"),
		FinalPublishes:   c("fleet.publish.final"),
	}
	if s := a.store.Current(); s != nil {
		f.Partial = s.Partial()
		f.DegradedVPs = s.Degraded()
	}
	if a.spans.Enabled() {
		f.VPs = fleetVPStatuses(a.spans)
	}
	return f
}

// handleFleet serves the coordinator's detailed state. Unlike /v1/status
// (which simply omits the section), a process that never ran a fleet
// answers a structured 404 here — the endpoint's subject does not exist.
func (a *api) handleFleet(w http.ResponseWriter, r *http.Request) bool {
	f := a.fleetStatus()
	if f == nil {
		WriteError(w, http.StatusNotFound, "no_fleet",
			"no fleet coordinator has run in this process")
		return false
	}
	return writeJSON(w, f)
}

// fleetVPStatuses folds the fleet-mode vp spans into one row per vantage
// point, in first-seen order. Each completed span is one attempt; an
// active span marks the shard running right now.
func fleetVPStatuses(sl *obs.SpanLog) []fleetVPJSON {
	idx := make(map[string]int)
	var out []fleetVPJSON
	row := func(vp string) *fleetVPJSON {
		i, ok := idx[vp]
		if !ok {
			i = len(out)
			idx[vp] = i
			out = append(out, fleetVPJSON{VP: vp, State: "idle"})
		}
		return &out[i]
	}
	isFleet := func(rec obs.SpanRecord) bool {
		return rec.Name == "vp" && strings.HasPrefix(rec.Attr("mode"), "fleet")
	}
	for _, rec := range sl.Records() {
		if !isFleet(rec) {
			continue
		}
		v := row(rec.Detail)
		v.Attempts++
		v.SimNS += rec.SimNS
	}
	for _, rec := range sl.Active() {
		if !isFleet(rec) {
			continue
		}
		v := row(rec.Detail)
		v.Attempts++
		v.State = "running"
	}
	return out
}

// vpStatuses folds the span log's vp spans into one row per vantage
// point, in first-seen order (VP order, since vp spans are begun in VP
// order each round).
func vpStatuses(sl *obs.SpanLog) []vpStatusJSON {
	idx := make(map[string]int)
	var out []vpStatusJSON
	row := func(vp string) *vpStatusJSON {
		i, ok := idx[vp]
		if !ok {
			i = len(out)
			idx[vp] = i
			out = append(out, vpStatusJSON{VP: vp, State: "idle"})
		}
		return &out[i]
	}
	for _, rec := range sl.Records() {
		if rec.Name != "vp" {
			continue
		}
		v := row(rec.Detail)
		v.Runs++
		v.SimNS += rec.SimNS
	}
	for _, rec := range sl.Active() {
		if rec.Name != "vp" {
			continue
		}
		row(rec.Detail).State = "running"
	}
	return out
}

func toASNsJSON(as []topo.ASN) []uint32 {
	out := make([]uint32, len(as))
	for i, a := range as {
		out[i] = uint32(a)
	}
	return out
}

// parseAddrParam parses a dotted-quad query parameter. When required is
// false, an absent parameter yields the zero address (silent-link query).
func parseAddrParam(w http.ResponseWriter, r *http.Request, key string, required bool) (netx.Addr, bool) {
	v := r.URL.Query().Get(key)
	if v == "" || v == "silent" {
		if !required {
			return 0, true
		}
		WriteError(w, http.StatusBadRequest, "missing_parameter", "query parameter "+key+" is required")
		return 0, false
	}
	a, err := netx.ParseAddr(v)
	if err != nil {
		WriteError(w, http.StatusBadRequest, "bad_address", key+": "+err.Error())
		return 0, false
	}
	return a, true
}

// parseASNParam parses an AS number, accepting both "65000" and "AS65000".
func parseASNParam(w http.ResponseWriter, r *http.Request, key string) (topo.ASN, bool) {
	v := r.URL.Query().Get(key)
	if v == "" {
		WriteError(w, http.StatusBadRequest, "missing_parameter", "query parameter "+key+" is required")
		return 0, false
	}
	t := strings.TrimPrefix(strings.TrimPrefix(v, "AS"), "as")
	n, err := strconv.ParseUint(t, 10, 32)
	if err != nil {
		WriteError(w, http.StatusBadRequest, "bad_asn", key+": cannot parse "+strconv.Quote(v))
		return 0, false
	}
	return topo.ASN(n), true
}

func parseIntParam(w http.ResponseWriter, r *http.Request, key string) (int, bool) {
	v := r.URL.Query().Get(key)
	if v == "" {
		WriteError(w, http.StatusBadRequest, "missing_parameter", "query parameter "+key+" is required")
		return 0, false
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		WriteError(w, http.StatusBadRequest, "bad_generation", key+": cannot parse "+strconv.Quote(v))
		return 0, false
	}
	return n, true
}
