package mapdb

import (
	"reflect"
	"testing"

	"bdrmap/internal/core"
	"bdrmap/internal/eval"
	"bdrmap/internal/netx"
	"bdrmap/internal/scamper"
	"bdrmap/internal/topo"
)

// tinyScenario runs the full pipeline once on the tiny world; the compile
// tests want real inference output, not synthetic shapes.
func tinyScenario(t testing.TB, seed int64) *eval.Scenario {
	t.Helper()
	s := eval.Build(topo.TinyProfile(), seed)
	s.RunAll(scamper.Config{})
	return s
}

func TestCompileAgainstResults(t *testing.T) {
	s := tinyScenario(t, 1)
	snap := Compile(s.Net.HostASN, s.Results)

	if snap.HostASN() != s.Net.HostASN {
		t.Fatalf("host = %v, want %v", snap.HostASN(), s.Net.HostASN)
	}
	if snap.Gen() != 0 {
		t.Fatalf("unpublished snapshot has gen %d, want 0", snap.Gen())
	}
	if snap.NumLinks() == 0 || snap.NumOwners() == 0 {
		t.Fatalf("empty snapshot: %d links, %d owners", snap.NumLinks(), snap.NumOwners())
	}

	// Every attributed router address resolves to its router's owner.
	for _, res := range s.Results {
		for _, rn := range res.Routers {
			if rn.Owner == 0 {
				continue
			}
			for _, a := range rn.Addrs {
				o, ok := snap.Owner(a)
				if !ok {
					t.Fatalf("owner of %v missing", a)
				}
				if o.AS != rn.Owner {
					t.Errorf("owner of %v = %v, want %v", a, o.AS, rn.Owner)
				}
				if o.Host != rn.IsHost || o.HopDist != rn.HopDist {
					t.Errorf("owner meta of %v = %+v, want host=%v hop=%d", a, o, rn.IsHost, rn.HopDist)
				}
			}
		}
	}

	// Every result link answers the hop-pair query, and LPM agrees with
	// the linear-scan control on hits and misses alike.
	for _, res := range s.Results {
		for _, l := range res.Links {
			got, ok := snap.Link(l.NearAddr, l.FarAddr)
			if !ok {
				t.Fatalf("link (%v,%v) missing", l.NearAddr, l.FarAddr)
			}
			if got.FarAS != l.FarAS {
				t.Errorf("link (%v,%v) far AS = %v, want %v", l.NearAddr, l.FarAddr, got.FarAS, l.FarAS)
			}
		}
	}
	probes := append([]netx.Addr{}, snap.ownerAddrs...)
	probes = append(probes, 0, 1, netx.MustParseAddr("203.0.113.9"), ^netx.Addr(0))
	for _, a := range probes {
		gotO, gotOK := snap.Owner(a)
		wantO, wantOK := snap.ownerLinear(a)
		if gotOK != wantOK || gotO != wantO {
			t.Fatalf("Owner(%v) = %+v,%v; linear scan says %+v,%v", a, gotO, gotOK, wantO, wantOK)
		}
	}

	// An unknown hop pair is a miss, not a panic or a wrong hit.
	if _, ok := snap.Link(netx.MustParseAddr("203.0.113.1"), netx.MustParseAddr("203.0.113.2")); ok {
		t.Error("unknown hop pair resolved to a link")
	}

	// Neighbor index covers exactly the served links.
	total := 0
	for _, as := range snap.NeighborASes() {
		links := snap.Neighbors(as)
		if len(links) == 0 {
			t.Fatalf("neighbor %v indexed with no links", as)
		}
		for _, l := range links {
			if l.FarAS != as {
				t.Fatalf("neighbor %v returned link of %v", as, l.FarAS)
			}
		}
		total += len(links)
	}
	if total != snap.NumLinks() {
		t.Fatalf("neighbor index covers %d links, snapshot has %d", total, snap.NumLinks())
	}
}

func TestCompileDeterministic(t *testing.T) {
	a := CompileScenario(tinyScenario(t, 1))
	b := CompileScenario(tinyScenario(t, 1))
	if !reflect.DeepEqual(a.links, b.links) {
		t.Error("link sets differ across identical compiles")
	}
	if !reflect.DeepEqual(a.ownerAddrs, b.ownerAddrs) || !reflect.DeepEqual(a.owners, b.owners) {
		t.Error("owner indexes differ across identical compiles")
	}
}

// syntheticResult builds an inference result of nLinks distinct
// interconnects without running the pipeline — the store/bench substrate.
func syntheticResult(vp string, nLinks int, farBase topo.ASN) *core.Result {
	res := &core.Result{VPName: vp, Neighbors: make(map[topo.ASN][]*core.Link)}
	for i := 0; i < nLinks; i++ {
		base := netx.Addr(0x0a000000 + uint32(i)*4)
		near, far := base+1, base+2
		farAS := farBase + topo.ASN(i%509)
		nearNode := &core.RouterNode{
			ID: 2 * i, Addrs: []netx.Addr{near},
			Owner: 64500, Heuristic: core.HeurHostNetwork, IsHost: true, HopDist: 2,
		}
		farNode := &core.RouterNode{
			ID: 2*i + 1, Addrs: []netx.Addr{far},
			Owner: farAS, Heuristic: core.HeurRelationship, HopDist: 3,
		}
		l := &core.Link{
			Near: nearNode, Far: farNode,
			NearAddr: near, FarAddr: far,
			FarAS: farAS, Heuristic: core.HeurRelationship,
		}
		res.Routers = append(res.Routers, nearNode, farNode)
		res.Links = append(res.Links, l)
		res.Neighbors[farAS] = append(res.Neighbors[farAS], l)
	}
	return res
}

func TestStoreGenerationsAndDiffs(t *testing.T) {
	st := NewStore(3, nil)
	if st.Current() != nil {
		t.Fatal("empty store has a current snapshot")
	}

	// Gen 1: 4 links. Gen 2: one removed, one added, one owner flipped.
	r1 := syntheticResult("vp", 4, 60000)
	if d := st.Publish(Compile(64500, []*core.Result{r1})); d != nil {
		t.Fatalf("first publish returned diff %+v", d)
	}
	if g := st.Current().Gen(); g != 1 {
		t.Fatalf("gen = %d, want 1", g)
	}

	r2 := syntheticResult("vp", 4, 60000)
	r2.Links = r2.Links[1:]                  // drop one interconnect
	r2.Routers[3].Owner = 61000              // re-attribute one far router
	extra := syntheticResult("vp", 1, 62000) // and a brand-new neighbor
	extra.Links[0].NearAddr += 0x00100000    // distinct subnet
	extra.Links[0].FarAddr += 0x00100000
	extra.Routers[0].Addrs = []netx.Addr{extra.Links[0].NearAddr}
	extra.Routers[1].Addrs = []netx.Addr{extra.Links[0].FarAddr}
	r2.Routers = append(r2.Routers, extra.Routers...)
	r2.Links = append(r2.Links, extra.Links...)

	d := st.Publish(Compile(64500, []*core.Result{r2}))
	if d == nil {
		t.Fatal("second publish returned no diff")
	}
	if d.From != 1 || d.To != 2 {
		t.Fatalf("diff spans %d->%d, want 1->2", d.From, d.To)
	}
	if len(d.Added) != 1 || len(d.Removed) != 1 {
		t.Fatalf("diff added=%d removed=%d, want 1 and 1", len(d.Added), len(d.Removed))
	}
	if len(d.OwnerChanges) != 1 || d.OwnerChanges[0].From != 60001 || d.OwnerChanges[0].To != 61000 {
		t.Fatalf("owner changes = %+v, want one 60001->61000", d.OwnerChanges)
	}
	if len(d.NeighborsAdded) != 1 || d.NeighborsAdded[0] != 62000 {
		t.Fatalf("neighbors added = %v, want [62000]", d.NeighborsAdded)
	}

	// The cached adjacent diff and the recomputed one agree.
	d2, err := st.Diff(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, d2) {
		t.Error("cached diff differs from Diff(1,2)")
	}

	// History is bounded: after 4 publishes with maxHist=3, gen 1 is gone.
	st.Publish(Compile(64500, []*core.Result{r2}))
	st.Publish(Compile(64500, []*core.Result{r2}))
	if got := st.Generations(); !reflect.DeepEqual(got, []int{2, 3, 4}) {
		t.Fatalf("generations = %v, want [2 3 4]", got)
	}
	if _, ok := st.Generation(1); ok {
		t.Error("evicted generation still retrievable")
	}
	if _, err := st.Diff(1, 4); err == nil {
		t.Error("diff against evicted generation succeeded")
	}
	if d, err := st.Diff(3, 4); err != nil || !d.Empty() {
		t.Errorf("identical generations diff = %+v, %v; want empty", d, err)
	}
	// Non-adjacent retained pair works (computed on demand).
	if _, err := st.Diff(2, 4); err != nil {
		t.Errorf("Diff(2,4): %v", err)
	}
}
