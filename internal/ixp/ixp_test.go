package ixp

import (
	"testing"

	"bdrmap/internal/netx"
	"bdrmap/internal/topo"
)

func TestMergeBasics(t *testing.T) {
	src := Sources{
		PeeringDB: []PDBRecord{
			{IXPName: "ix-a", Prefix: netx.MustParsePrefix("198.32.0.0/22")},
		},
		PCH: []PCHRecord{
			{IXPName: "ix-b", Addr: netx.MustParseAddr("198.33.5.7"), ASN: 42},
		},
	}
	pl := Merge(src)
	if name, ok := pl.IsIXP(netx.MustParseAddr("198.32.1.1")); !ok || name != "ix-a" {
		t.Fatalf("PeeringDB prefix lookup: %q %v", name, ok)
	}
	// PCH contributes the enclosing /24 of observed peering addresses.
	if name, ok := pl.IsIXP(netx.MustParseAddr("198.33.5.200")); !ok || name != "ix-b" {
		t.Fatalf("PCH-derived prefix lookup: %q %v", name, ok)
	}
	if _, ok := pl.IsIXP(netx.MustParseAddr("198.34.0.1")); ok {
		t.Fatal("unrelated address matched an IXP prefix")
	}
	if asn, ok := pl.MemberAt(netx.MustParseAddr("198.33.5.7")); !ok || asn != 42 {
		t.Fatalf("MemberAt = %v %v", asn, ok)
	}
}

func TestFromNetworkCoversHostIXPs(t *testing.T) {
	// Across seeds, at least one source usually covers each IXP; verify
	// the merge finds the LAN of every IXP covered by PeeringDB
	// (non-stale) or PCH.
	n := topo.Generate(topo.TinyProfile(), 2)
	src := FromNetwork(n, 99)
	pl := Merge(src)
	if len(pl.Prefixes()) == 0 {
		t.Fatal("no IXP prefixes at all")
	}
	for _, rec := range src.PeeringDB {
		if rec.Stale {
			continue
		}
		if _, ok := pl.IsIXP(rec.Prefix.First() + 1); !ok {
			t.Errorf("PeeringDB LAN %v missing from merged list", rec.Prefix)
		}
	}
	for _, rec := range src.PCH {
		if _, ok := pl.IsIXP(rec.Addr); !ok {
			t.Errorf("PCH-observed address %v missing from merged list", rec.Addr)
		}
	}
}

func TestFromNetworkDeterministic(t *testing.T) {
	n := topo.Generate(topo.TinyProfile(), 2)
	a := FromNetwork(n, 7)
	b := FromNetwork(n, 7)
	if len(a.PeeringDB) != len(b.PeeringDB) || len(a.PCH) != len(b.PCH) {
		t.Fatal("same seed produced different sources")
	}
}

func TestStaleRecordInjected(t *testing.T) {
	// Over many seeds, staleness must occur sometimes and the stale
	// prefix must differ from the true LAN.
	n := topo.Generate(topo.TinyProfile(), 2)
	sawStale := false
	for seed := int64(0); seed < 200 && !sawStale; seed++ {
		for _, rec := range FromNetwork(n, seed).PeeringDB {
			if rec.Stale {
				sawStale = true
				if rec.Prefix == n.IXPs[0].LAN {
					t.Fatal("stale record equals true LAN")
				}
			}
		}
	}
	if !sawStale {
		t.Error("staleness never injected across 200 seeds")
	}
}
