// Package ixp assembles the list of IXP peering-LAN prefixes bdrmap uses
// to recognize exchange-point addresses in traceroute (§5.2). Mirroring the
// paper, two imperfect sources — a PeeringDB-like registry and PCH-like
// route-collector observations — are merged, because "not all PeeringDB
// records are correct... and many IXPs are missing from the database".
package ixp

import (
	"math/rand"
	"sort"

	"bdrmap/internal/netx"
	"bdrmap/internal/topo"
)

// PDBRecord is a PeeringDB-style entry: an operator-maintained record of an
// IXP's peering LAN. Stale reports the record no longer matches reality.
type PDBRecord struct {
	IXPName string
	Prefix  netx.Prefix
	Stale   bool
}

// PCHRecord is a PCH-style observation: an (address, ASN) pair seen
// establishing BGP at a PCH route collector hosted at the IXP.
type PCHRecord struct {
	IXPName string
	Addr    netx.Addr
	ASN     topo.ASN
}

// Sources carries both datasets before merging.
type Sources struct {
	PeeringDB []PDBRecord
	PCH       []PCHRecord
}

// FromNetwork derives the two datasets from the synthetic topology,
// injecting the real-world defects: a fraction of IXPs are missing from
// PeeringDB, some PeeringDB prefixes are stale (they point at address
// space no longer used by the IXP), and PCH only observes members that
// peer with its collector.
func FromNetwork(net *topo.Network, seed int64) Sources {
	rng := rand.New(rand.NewSource(seed))
	var src Sources
	for _, x := range net.IXPs {
		inPDB := rng.Float64() < 0.8
		if inPDB {
			rec := PDBRecord{IXPName: x.Name, Prefix: x.LAN}
			if rng.Float64() < 0.1 {
				// Stale record: an old LAN prefix unrelated to reality.
				rec.Prefix = netx.MakePrefix(netx.MustParseAddr("203.0.113.0"), 24)
				rec.Stale = true
			}
			src.PeeringDB = append(src.PeeringDB, rec)
		}
		// PCH observes roughly half the members.
		for i, m := range x.Members {
			if rng.Float64() > 0.5 && i > 0 {
				continue
			}
			addr := memberLANAddr(net, x, m)
			if addr != 0 {
				src.PCH = append(src.PCH, PCHRecord{IXPName: x.Name, Addr: addr, ASN: m})
			}
		}
	}
	return src
}

func memberLANAddr(net *topo.Network, x *topo.IXP, member topo.ASN) netx.Addr {
	a := net.ASes[member]
	if a == nil {
		return 0
	}
	for _, r := range a.Routers {
		for _, ifc := range r.Ifaces {
			if x.LAN.Contains(ifc.Addr) {
				return ifc.Addr
			}
		}
	}
	return 0
}

// PrefixList is the merged set of IXP LAN prefixes, queryable by address.
type PrefixList struct {
	trie     netx.Trie[string] // prefix → IXP name
	prefixes []netx.Prefix
	// memberAddrs maps LAN addresses to the ASN operators recorded for
	// them (used for validation, §5.6).
	memberAddrs map[netx.Addr]topo.ASN
}

// Merge combines both sources into the working prefix list. PeeringDB
// supplies prefixes directly; PCH observations contribute the /24 subnet...
// more precisely, the enclosing /24 of each observed peering address, which
// recovers IXPs missing from (or stale in) PeeringDB.
func Merge(src Sources) *PrefixList {
	pl := &PrefixList{memberAddrs: make(map[netx.Addr]topo.ASN)}
	seen := make(map[netx.Prefix]bool)
	add := func(p netx.Prefix, name string) {
		if !seen[p] {
			seen[p] = true
			pl.trie.Insert(p, name)
			pl.prefixes = append(pl.prefixes, p)
		}
	}
	for _, r := range src.PeeringDB {
		add(r.Prefix, r.IXPName)
	}
	for _, r := range src.PCH {
		add(netx.MakePrefix(r.Addr, 24), r.IXPName)
		pl.memberAddrs[r.Addr] = r.ASN
	}
	sort.Slice(pl.prefixes, func(i, j int) bool {
		return netx.ComparePrefix(pl.prefixes[i], pl.prefixes[j]) < 0
	})
	return pl
}

// IsIXP reports whether addr falls inside a known IXP LAN prefix,
// returning the IXP name.
func (pl *PrefixList) IsIXP(addr netx.Addr) (string, bool) {
	return pl.trie.Lookup(addr)
}

// Prefixes returns the merged prefix list, sorted.
func (pl *PrefixList) Prefixes() []netx.Prefix { return pl.prefixes }

// MemberAt returns the ASN recorded (by PCH) for a LAN address, if any.
// Used to validate ownership inferences against IXP-published data.
func (pl *PrefixList) MemberAt(addr netx.Addr) (topo.ASN, bool) {
	asn, ok := pl.memberAddrs[addr]
	return asn, ok
}
