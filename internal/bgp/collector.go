package bgp

import (
	"sort"

	"bdrmap/internal/netx"
	"bdrmap/internal/topo"
)

// ASPath is one path observed at a route collector: the announcing vantage
// first, the origin last.
type ASPath struct {
	Prefix netx.Prefix
	Path   []topo.ASN
}

// View is the public BGP view assembled from route-collector sessions with
// a limited set of vantage ASes — the stand-in for Route Views / RIPE RIS
// snapshots (§5.2). bdrmap consumes only this view, never ground truth.
type View struct {
	Vantages []topo.ASN
	Paths    []ASPath

	origins netx.Trie[[]topo.ASN] // announced prefix → observed origin set
	links   map[[2]topo.ASN]bool  // adjacency set from observed paths
	nbrs    map[topo.ASN][]topo.ASN
	routed  []netx.Prefix
}

// DefaultVantages mirrors the real collectors' peer sets: every transit-ish
// network (Tier-1s and transit providers), the host network itself, and a
// handful of its customers.
func DefaultVantages(net *topo.Network) []topo.ASN {
	var vps []topo.ASN
	for _, asn := range net.ASNs() {
		a := net.ASes[asn]
		if net.HiddenNeighbors[asn] {
			continue // route-server peers do not feed collectors
		}
		if a.Tier == topo.TierTier1 || a.Tier == topo.TierTransit {
			vps = append(vps, asn)
		}
	}
	vps = append(vps, net.HostASN)
	// Up to three customer vantages.
	n := 0
	host := net.ASes[net.HostASN]
	for _, nb := range host.Neighbors() {
		if nb.Rel == topo.RelCustomer && n < 3 {
			vps = append(vps, nb.ASN)
			n++
		}
	}
	sort.Slice(vps, func(i, j int) bool { return vps[i] < vps[j] })
	// Deduplicate (transit customers may already be present).
	out := vps[:0]
	var last topo.ASN
	for i, v := range vps {
		if i == 0 || v != last {
			out = append(out, v)
		}
		last = v
	}
	return out
}

// Collect assembles the public view from the given vantages.
func Collect(t *Table, vantages []topo.ASN) *View {
	v := &View{
		Vantages: vantages,
		links:    make(map[[2]topo.ASN]bool),
		nbrs:     make(map[topo.ASN][]topo.ASN),
	}
	seenPrefix := make(map[netx.Prefix]bool)
	for _, p := range t.Prefixes() {
		rib := t.Routes(p)
		for _, vp := range vantages {
			if t.SuppressedAt(vp, rib) {
				continue
			}
			path := t.Path(vp, p)
			if path == nil {
				continue
			}
			v.Paths = append(v.Paths, ASPath{Prefix: p, Path: path})
			origin := path[len(path)-1]
			if cur, ok := v.origins.Exact(p); ok {
				if !containsASN(cur, origin) {
					v.origins.Insert(p, append(cur, origin))
				}
			} else {
				v.origins.Insert(p, []topo.ASN{origin})
			}
			if !seenPrefix[p] {
				seenPrefix[p] = true
				v.routed = append(v.routed, p)
			}
			for i := 1; i < len(path); i++ {
				v.addLink(path[i-1], path[i])
			}
		}
	}
	sort.Slice(v.routed, func(i, j int) bool { return netx.ComparePrefix(v.routed[i], v.routed[j]) < 0 })
	for asn := range v.nbrs {
		s := v.nbrs[asn]
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		v.nbrs[asn] = s
	}
	return v
}

func containsASN(s []topo.ASN, a topo.ASN) bool {
	for _, x := range s {
		if x == a {
			return true
		}
	}
	return false
}

func (v *View) addLink(a, b topo.ASN) {
	if a == b {
		return
	}
	k := [2]topo.ASN{a, b}
	if a > b {
		k = [2]topo.ASN{b, a}
	}
	if v.links[k] {
		return
	}
	v.links[k] = true
	v.nbrs[a] = append(v.nbrs[a], b)
	v.nbrs[b] = append(v.nbrs[b], a)
}

// RoutedPrefixes returns every prefix with at least one observed path,
// sorted. This is the probing target list of §5.3.
func (v *View) RoutedPrefixes() []netx.Prefix { return v.routed }

// Origins returns the observed origin ASes of the longest observed prefix
// containing addr, plus that prefix. ok is false if addr is unrouted in
// the public view.
func (v *View) Origins(addr netx.Addr) ([]topo.ASN, netx.Prefix, bool) {
	o, p, ok := v.origins.LookupPrefix(addr)
	return o, p, ok
}

// OriginsExact returns the observed origins of exactly prefix p.
func (v *View) OriginsExact(p netx.Prefix) []topo.ASN {
	o, _ := v.origins.Exact(p)
	return o
}

// HasLink reports whether the AS link a–b appears in any observed path.
func (v *View) HasLink(a, b topo.ASN) bool {
	k := [2]topo.ASN{a, b}
	if a > b {
		k = [2]topo.ASN{b, a}
	}
	return v.links[k]
}

// NeighborsOf returns the ASes adjacent to asn in observed paths.
func (v *View) NeighborsOf(asn topo.ASN) []topo.ASN { return v.nbrs[asn] }
