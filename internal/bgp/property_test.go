package bgp

import (
	"math/rand"
	"testing"

	"bdrmap/internal/netx"
	"bdrmap/internal/topo"
)

// randomHierarchy builds a random 4-level AS hierarchy: level 0 is a
// clique, every lower AS has 1-2 providers one level up, and some ASes
// peer within their level.
func randomHierarchy(seed int64) *topo.Network {
	rng := rand.New(rand.NewSource(seed))
	n := topo.NewNetwork()
	al := topo.NewAllocator()
	levels := [][]topo.ASN{}
	next := topo.ASN(100)
	sizes := []int{3, 4 + rng.Intn(3), 6 + rng.Intn(5), 10 + rng.Intn(8)}
	for li, size := range sizes {
		var level []topo.ASN
		for i := 0; i < size; i++ {
			asn := next
			next++
			a := n.AddAS(asn, topo.TierTransit, "org")
			a.Prefixes = []netx.Prefix{al.Next(16)}
			level = append(level, asn)
			if li == 0 {
				a.Tier = topo.TierTier1
			}
		}
		levels = append(levels, level)
	}
	n.HostASN = levels[len(levels)-1][0]
	// Clique at the top.
	top := levels[0]
	for i := 0; i < len(top); i++ {
		for j := i + 1; j < len(top); j++ {
			n.SetRel(top[i], top[j], topo.RelPeer)
		}
	}
	// Providers one level up.
	for li := 1; li < len(levels); li++ {
		for _, asn := range levels[li] {
			up := levels[li-1]
			p1 := up[rng.Intn(len(up))]
			n.SetRel(asn, p1, topo.RelCustomer)
			if rng.Float64() < 0.4 {
				p2 := up[rng.Intn(len(up))]
				if p2 != p1 {
					n.SetRel(asn, p2, topo.RelCustomer)
				}
			}
		}
		// A few lateral peers.
		lvl := levels[li]
		for k := 0; k < len(lvl)/3; k++ {
			a, b := lvl[rng.Intn(len(lvl))], lvl[rng.Intn(len(lvl))]
			if a != b && n.ASes[a].RelTo(b) == topo.RelNone {
				n.SetRel(a, b, topo.RelPeer)
			}
		}
	}
	n.Build()
	return n
}

// TestRoutePropagationInvariants checks self-consistency of the computed
// RIBs over random hierarchies:
//
//  1. every routed AS's (class, len) is exactly what its canonical next
//     hop would export to it;
//  2. path lengths decrease by one along the canonical chain;
//  3. the chosen class is optimal: no neighbor could provide a strictly
//     better class;
//  4. the origin itself has the origin class.
func TestRoutePropagationInvariants(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		n := randomHierarchy(seed)
		tb := NewTable(n)
		for _, p := range tb.Prefixes() {
			rib := tb.Routes(p)
			for i := range tb.asns {
				x := int32(i)
				c := rib.Class[x]
				if c == ClassNone {
					continue
				}
				if c == ClassOrigin {
					if rib.Len[x] != 0 {
						t.Fatalf("seed %d: origin with len %d", seed, rib.Len[x])
					}
					continue
				}
				nh := rib.Next[x]
				if nh < 0 {
					t.Fatalf("seed %d: routed AS %v without next hop", seed, tb.asns[x])
				}
				// (1) consistency with the export rule.
				rel := n.ASes[tb.asns[x]].RelTo(tb.asns[nh])
				if got := receivedClass(rib.Class[nh], rel); got != c {
					t.Fatalf("seed %d: %v class %v inconsistent with next %v (%v, rel %v)",
						seed, tb.asns[x], c, tb.asns[nh], rib.Class[nh], rel)
				}
				// (2) monotonic length.
				if rib.Len[x] != rib.Len[nh]+1 {
					t.Fatalf("seed %d: %v len %d, next len %d", seed, tb.asns[x], rib.Len[x], rib.Len[nh])
				}
				// (3) optimality: no neighbor offers a better class.
				for _, nb := range n.ASes[tb.asns[x]].Neighbors() {
					j := tb.IndexOf(nb.ASN)
					if j < 0 || rib.Class[j] == ClassNone {
						continue
					}
					if offered := receivedClass(rib.Class[j], nb.Rel); offered != ClassNone && offered < c {
						t.Fatalf("seed %d: %v chose class %v but %v offered %v",
							seed, tb.asns[x], c, nb.ASN, offered)
					}
				}
			}
		}
	}
}

// TestEveryoneReachesEverything: in a fully-provisioned hierarchy every AS
// has a route to every prefix (the top clique provides universal transit).
func TestEveryoneReachesEverything(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		n := randomHierarchy(seed)
		tb := NewTable(n)
		for _, p := range tb.Prefixes() {
			rib := tb.Routes(p)
			for i, asn := range tb.asns {
				if rib.Class[i] == ClassNone {
					t.Fatalf("seed %d: %v cannot reach %v", seed, asn, p)
				}
			}
		}
	}
}

// TestPathsAreValleyFree re-validates the canonical chains on random
// hierarchies with ground-truth relationships.
func TestPathsAreValleyFree(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		n := randomHierarchy(seed)
		tb := NewTable(n)
		for _, p := range tb.Prefixes() {
			for _, asn := range n.ASNs() {
				path := tb.Path(asn, p)
				if path == nil {
					continue
				}
				phase := 0 // 0 up (from origin side), but we walk vantage→origin
				for i := 1; i < len(path); i++ {
					switch n.ASes[path[i-1]].RelTo(path[i]) {
					case topo.RelProvider:
						if phase != 0 {
							t.Fatalf("seed %d: valley in %v", seed, path)
						}
					case topo.RelPeer:
						if phase >= 1 {
							t.Fatalf("seed %d: double peer in %v", seed, path)
						}
						phase = 1
					case topo.RelCustomer:
						phase = 2
					case topo.RelSibling:
					default:
						t.Fatalf("seed %d: non-adjacent hop in %v", seed, path)
					}
				}
			}
		}
	}
}
