// Package bgp computes interdomain routes over a synthetic topology using
// standard Gao–Rexford (valley-free) policies, and derives the "public BGP
// view" bdrmap consumes: routed prefixes, prefix→origin mappings, and AS
// paths observed by a route collector with a limited set of vantage points.
//
// Route preference follows operational practice: customer-learned routes
// over peer-learned over provider-learned, then shortest AS path, then
// lowest next-hop ASN. Sibling sessions are transparent: routes cross them
// without changing class. Routes the host network learns from hidden
// neighbors (IXP route-server peerings) carry no-export and are used for
// forwarding but never re-announced, which is why such interconnections are
// only discoverable by traceroute (the "trace" column of Table 1).
package bgp

import (
	"sort"
	"sync"

	"bdrmap/internal/netx"
	"bdrmap/internal/topo"
)

// Class is the preference class of a route, ordered best (lowest) first.
type Class int8

// Route classes.
const (
	ClassOrigin   Class = 0 // this AS originates the prefix
	ClassCustomer Class = 1 // learned from a customer
	ClassPeer     Class = 2 // learned from a peer
	ClassProvider Class = 3 // learned from a provider
	ClassNone     Class = 4 // no route
)

func (c Class) String() string {
	switch c {
	case ClassOrigin:
		return "origin"
	case ClassCustomer:
		return "customer"
	case ClassPeer:
		return "peer"
	case ClassProvider:
		return "provider"
	default:
		return "none"
	}
}

type edge struct {
	n   int32    // dense index of the neighbor
	rel topo.Rel // what the neighbor is to this AS (RelCustomer: neighbor is my customer)
}

// Table computes and caches per-prefix routing state for every AS.
// It is safe for concurrent use.
type Table struct {
	Net *topo.Network

	asns    []topo.ASN
	idx     map[topo.ASN]int32
	adj     [][]edge
	hostIdx int32
	hidden  []bool // dense: AS is a hidden neighbor of the host

	prefixes  []netx.Prefix
	originsOf map[netx.Prefix][]int32
	lpm       netx.Trie[netx.Prefix] // addr → announced prefix

	mu    sync.Mutex
	cache map[netx.Prefix]*PrefixRIB
}

// PrefixRIB is the routing state of one prefix across all ASes.
type PrefixRIB struct {
	Prefix netx.Prefix

	// Dense per-AS state (indexed like Table.asns).
	Class []Class
	Len   []int16
	Next  []int32 // canonical next-hop index; -1 at origins and routeless ASes

	// HostCandidates are all equally-best next-hop ASes at the host
	// network (the multi-exit set hot-potato routing chooses among).
	HostCandidates []topo.ASN

	// HostSuppressed reports that the host's only best routes were learned
	// from hidden (no-export) neighbors, so the host exports nothing.
	HostSuppressed bool

	// pinnedOK, for selectively-announced prefixes, lists the dense
	// indexes of ASes the origin announces to (nil: announced everywhere).
	pinnedOK map[int32]bool
}

// NewTable builds the routing machinery for net (which must be Built).
func NewTable(net *topo.Network) *Table {
	t := &Table{
		Net:       net,
		idx:       make(map[topo.ASN]int32),
		originsOf: make(map[netx.Prefix][]int32),
		cache:     make(map[netx.Prefix]*PrefixRIB),
	}
	t.asns = net.ASNs()
	for i, asn := range t.asns {
		t.idx[asn] = int32(i)
	}
	t.hostIdx = t.idx[net.HostASN]
	t.hidden = make([]bool, len(t.asns))
	for asn := range net.HiddenNeighbors {
		if i, ok := t.idx[asn]; ok {
			t.hidden[i] = true
		}
	}
	t.adj = make([][]edge, len(t.asns))
	for i, asn := range t.asns {
		for _, nb := range net.ASes[asn].Neighbors() {
			j, ok := t.idx[nb.ASN]
			if !ok {
				continue
			}
			t.adj[i] = append(t.adj[i], edge{n: j, rel: nb.Rel})
		}
	}
	seen := make(map[netx.Prefix]bool)
	for i, asn := range t.asns {
		for _, p := range net.ASes[asn].Prefixes {
			t.originsOf[p] = append(t.originsOf[p], int32(i))
			if !seen[p] {
				seen[p] = true
				t.prefixes = append(t.prefixes, p)
				t.lpm.Insert(p, p)
			}
		}
	}
	sort.Slice(t.prefixes, func(a, b int) bool { return netx.ComparePrefix(t.prefixes[a], t.prefixes[b]) < 0 })
	return t
}

// Prefixes returns every announced prefix, sorted.
func (t *Table) Prefixes() []netx.Prefix { return t.prefixes }

// Lookup returns the longest announced prefix containing addr.
func (t *Table) Lookup(addr netx.Addr) (netx.Prefix, bool) {
	p, ok := t.lpm.Lookup(addr)
	return p, ok
}

// Origins returns the ground-truth origin ASes of an announced prefix.
func (t *Table) Origins(p netx.Prefix) []topo.ASN {
	idxs := t.originsOf[p]
	out := make([]topo.ASN, len(idxs))
	for i, j := range idxs {
		out[i] = t.asns[j]
	}
	return out
}

// IsOrigin reports whether asn originates p, without materializing the
// origin set the way Origins does — the forwarding hot path asks this per
// candidate attachment.
func (t *Table) IsOrigin(p netx.Prefix, asn topo.ASN) bool {
	for _, j := range t.originsOf[p] {
		if t.asns[j] == asn {
			return true
		}
	}
	return false
}

// OriginIndexes returns the dense AS indexes originating p. The slice is
// shared with the table and must not be mutated; convert entries with ASOf.
func (t *Table) OriginIndexes(p netx.Prefix) []int32 { return t.originsOf[p] }

// ASOf converts a dense index back to an ASN.
func (t *Table) ASOf(i int32) topo.ASN { return t.asns[i] }

// IndexOf converts an ASN to its dense index (-1 if unknown).
func (t *Table) IndexOf(asn topo.ASN) int32 {
	if i, ok := t.idx[asn]; ok {
		return i
	}
	return -1
}

// Routes returns (computing and caching on first use) the RIB for prefix p.
// p must be an announced prefix (as returned by Lookup or Prefixes).
func (t *Table) Routes(p netx.Prefix) *PrefixRIB {
	t.mu.Lock()
	if r, ok := t.cache[p]; ok {
		t.mu.Unlock()
		return r
	}
	t.mu.Unlock()
	r := t.compute(p)
	t.mu.Lock()
	t.cache[p] = r
	t.mu.Unlock()
	return r
}

// receivedClass returns the class X obtains for a route exported by
// neighbor N (whose own class is cN), where rel states what N is to X.
// ClassNone means N does not export the route to X.
func receivedClass(cN Class, rel topo.Rel) Class {
	switch rel {
	case topo.RelCustomer: // N is X's customer: N exports only its customer cone
		if cN <= ClassCustomer {
			return ClassCustomer
		}
	case topo.RelPeer: // peers export only customer-cone routes
		if cN <= ClassCustomer {
			return ClassPeer
		}
	case topo.RelProvider: // providers export everything
		if cN <= ClassProvider {
			return ClassProvider
		}
	case topo.RelSibling: // siblings are transparent
		if cN <= ClassProvider {
			if cN == ClassOrigin {
				return ClassCustomer
			}
			return cN
		}
	}
	return ClassNone
}

// compute runs the three-phase valley-free propagation for one prefix.
func (t *Table) compute(p netx.Prefix) *PrefixRIB {
	n := len(t.asns)
	r := &PrefixRIB{
		Prefix: p,
		Class:  make([]Class, n),
		Len:    make([]int16, n),
		Next:   make([]int32, n),
	}
	for i := range r.Class {
		r.Class[i] = ClassNone
		r.Len[i] = int16(0x7fff)
		r.Next[i] = -1
	}
	origins := t.originsOf[p]
	for _, o := range origins {
		r.Class[o] = ClassOrigin
		r.Len[o] = 0
	}
	t.pinnedRecv(r, p)

	// Valley-free propagation: three ordered sweeps suffice (customer
	// routes up, one peer hop across, everything down to customers).
	t.relaxCustomer(r, origins)
	t.relaxPeer(r)
	t.relaxProvider(r)

	t.fillNextHops(r)
	return r
}

// pinnedRecv computes, for a selectively-announced prefix (§6), which
// neighbors of the origin actually hear the announcement: only the ASes on
// the far side of the links the prefix is pinned to. nil means unpinned.
func (t *Table) pinnedRecv(r *PrefixRIB, p netx.Prefix) {
	pinned := false
	for _, pp := range t.Net.PinnedPrefixes() {
		if pp == p {
			pinned = true
			break
		}
	}
	if !pinned {
		return
	}
	r.pinnedOK = make(map[int32]bool)
	for _, o := range t.originsOf[p] {
		for _, att := range t.Net.Attachments(t.asns[o]) {
			if t.Net.AnnouncedOnLink(p, att.Link) {
				if i, ok := t.idx[att.Remote]; ok {
					r.pinnedOK[i] = true
				}
			}
		}
	}
}

// exportAllowed gates the origin's direct announcements for pinned
// prefixes: x (an origin) exports to recv only over pinned links.
func (r *PrefixRIB) exportAllowed(x, recv int32) bool {
	if r.pinnedOK == nil || r.Class[x] != ClassOrigin {
		return true
	}
	return r.pinnedOK[recv]
}

// relaxCustomer propagates origin/customer routes up provider and sibling
// edges in BFS order of path length.
func (t *Table) relaxCustomer(r *PrefixRIB, origins []int32) {
	queue := append([]int32(nil), origins...)
	for len(queue) > 0 {
		var next []int32
		for _, x := range queue {
			cx := r.Class[x]
			if cx > ClassCustomer {
				continue
			}
			for _, e := range t.adj[x] {
				if !r.exportAllowed(x, e.n) {
					continue
				}
				// What is x to e.n? e.rel is what e.n is to x; invert.
				relToRecv := e.rel.Invert()
				var cr Class
				switch relToRecv {
				case topo.RelCustomer: // x is e.n's customer
					cr = ClassCustomer
				case topo.RelSibling:
					cr = ClassCustomer
				default:
					continue
				}
				nl := r.Len[x] + 1
				if cr < r.Class[e.n] || (cr == r.Class[e.n] && nl < r.Len[e.n]) {
					r.Class[e.n] = cr
					r.Len[e.n] = nl
					next = append(next, e.n)
				}
			}
		}
		queue = next
	}
}

// relaxPeer hands customer-cone routes across a single peer edge.
func (t *Table) relaxPeer(r *PrefixRIB) {
	type upd struct {
		i int32
		l int16
	}
	var updates []upd
	for x := range t.adj {
		if r.Class[x] > ClassCustomer {
			continue
		}
		for _, e := range t.adj[int32(x)] {
			if e.rel.Invert() != topo.RelPeer { // x is e.n's peer
				continue
			}
			if !r.exportAllowed(int32(x), e.n) {
				continue
			}
			nl := r.Len[x] + 1
			if ClassPeer < r.Class[e.n] || (ClassPeer == r.Class[e.n] && nl < r.Len[e.n]) {
				updates = append(updates, upd{e.n, nl})
			}
		}
	}
	for _, u := range updates {
		if ClassPeer < r.Class[u.i] || (ClassPeer == r.Class[u.i] && u.l < r.Len[u.i]) {
			r.Class[u.i] = ClassPeer
			r.Len[u.i] = u.l
		}
	}
	// Peer routes also cross sibling sessions.
	t.relaxSiblings(r, ClassPeer)
}

// relaxProvider floods any route down provider → customer edges (and
// sibling sessions) in BFS order.
func (t *Table) relaxProvider(r *PrefixRIB) {
	buf := candBufPool.Get().(*[]int32)
	defer candBufPool.Put(buf)
	var queue []int32
	for x := range t.adj {
		if r.Class[x] != ClassNone {
			queue = append(queue, int32(x))
		}
	}
	for len(queue) > 0 {
		var next []int32
		for _, x := range queue {
			if r.Class[x] == ClassNone {
				continue
			}
			// Routes learned across hidden (no-export) sessions are never
			// re-announced, by either party.
			if t.bestViaHiddenSession(r, x, buf) {
				continue
			}
			for _, e := range t.adj[x] {
				if e.rel.Invert() != topo.RelProvider && e.rel.Invert() != topo.RelSibling {
					continue // x must be e.n's provider (or sibling)
				}
				if !r.exportAllowed(x, e.n) {
					continue
				}
				nl := r.Len[x] + 1
				if ClassProvider < r.Class[e.n] || (ClassProvider == r.Class[e.n] && nl < r.Len[e.n]) {
					r.Class[e.n] = ClassProvider
					r.Len[e.n] = nl
					next = append(next, e.n)
				}
			}
		}
		queue = next
	}
}

// relaxSiblings propagates routes of exactly class c across sibling edges.
func (t *Table) relaxSiblings(r *PrefixRIB, c Class) {
	changed := true
	for changed {
		changed = false
		for x := range t.adj {
			if r.Class[x] != c {
				continue
			}
			for _, e := range t.adj[int32(x)] {
				if e.rel != topo.RelSibling {
					continue
				}
				nl := r.Len[x] + 1
				if c < r.Class[e.n] || (c == r.Class[e.n] && nl < r.Len[e.n]) {
					r.Class[e.n] = c
					r.Len[e.n] = nl
					changed = true
				}
			}
		}
	}
}

// hostBestHidden reports whether every equal-best next hop at the host is a
// hidden neighbor. Must be called after the peer phase.
func (t *Table) hostBestHidden(r *PrefixRIB, buf *[]int32) bool {
	if r.Class[t.hostIdx] != ClassPeer {
		return false
	}
	cands := t.candidatesAt(r, t.hostIdx, buf)
	if len(cands) == 0 {
		return false
	}
	for _, c := range cands {
		if !t.hidden[c] {
			return false
		}
	}
	return true
}

// bestViaHiddenSession reports whether AS x's only best routes cross a
// hidden (no-export) session with the host: either x is the host and all
// candidates are hidden neighbors, or x is a hidden neighbor and all its
// candidates are the host. Such routes are used for forwarding but never
// re-announced or reported to collectors.
func (t *Table) bestViaHiddenSession(r *PrefixRIB, x int32, buf *[]int32) bool {
	if x == t.hostIdx {
		return t.hostBestHidden(r, buf)
	}
	if !t.hidden[x] || r.Class[x] != ClassPeer {
		return false
	}
	cands := t.candidatesAt(r, x, buf)
	if len(cands) == 0 {
		return false
	}
	for _, c := range cands {
		if c != t.hostIdx {
			return false
		}
	}
	return true
}

// candBufPool recycles candidate scratch slices across propagation and
// lookup calls. It is a pool rather than a Table field because the public
// lookup API (SuppressedAt, and Routes through its cache) is documented
// safe for concurrent use, so scratch state cannot live on shared structs.
var candBufPool = sync.Pool{New: func() any { s := make([]int32, 0, 16); return &s }}

// candidatesAt lists the dense indexes of all neighbors providing the
// equal-best route to AS x, sorted by neighbor ASN. The result aliases
// *buf and is only valid until the next call with the same buffer; growth
// is written back through buf so callers amortize one allocation across a
// whole propagation.
func (t *Table) candidatesAt(r *PrefixRIB, x int32, buf *[]int32) []int32 {
	if r.Class[x] == ClassOrigin || r.Class[x] == ClassNone {
		return nil
	}
	out := (*buf)[:0]
	for _, e := range t.adj[x] {
		cN := r.Class[e.n]
		if cN == ClassNone {
			continue
		}
		if !r.exportAllowed(e.n, x) {
			continue
		}
		got := receivedClass(cN, e.rel)
		if got == ClassNone {
			continue
		}
		if got == r.Class[x] && r.Len[e.n]+1 == r.Len[x] {
			out = append(out, e.n)
		}
	}
	*buf = out
	// Candidate sets are tiny (the equal-best neighbors of one AS);
	// insertion sort avoids sort.Slice's closure and interface allocations.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && t.asns[out[j]] < t.asns[out[j-1]]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// fillNextHops selects canonical next hops and the host candidate set.
func (t *Table) fillNextHops(r *PrefixRIB) {
	buf := candBufPool.Get().(*[]int32)
	defer candBufPool.Put(buf)
	for x := range t.adj {
		if r.Class[x] == ClassOrigin || r.Class[x] == ClassNone {
			continue
		}
		cands := t.candidatesAt(r, int32(x), buf)
		if len(cands) == 0 {
			// No neighbor can justify the route (should not happen in a
			// consistent propagation); drop it defensively.
			r.Class[x] = ClassNone
			r.Len[x] = 0x7fff
			continue
		}
		r.Next[x] = cands[0]
		if int32(x) == t.hostIdx {
			for _, c := range cands {
				r.HostCandidates = append(r.HostCandidates, t.asns[c])
			}
		}
	}
	r.HostSuppressed = t.hostBestHidden(r, buf)
}

// SuppressedAt reports whether vantage asn would report no path for this
// prefix to a collector (its best route crosses a hidden session).
func (t *Table) SuppressedAt(asn topo.ASN, r *PrefixRIB) bool {
	i, ok := t.idx[asn]
	if !ok {
		return true
	}
	buf := candBufPool.Get().(*[]int32)
	defer candBufPool.Put(buf)
	return t.bestViaHiddenSession(r, i, buf)
}

// Path returns the canonical AS path from AS from to the origin of p,
// starting with from itself. Returns nil if from has no route.
func (t *Table) Path(from topo.ASN, p netx.Prefix) []topo.ASN {
	i, ok := t.idx[from]
	if !ok {
		return nil
	}
	r := t.Routes(p)
	if r.Class[i] == ClassNone {
		return nil
	}
	path := []topo.ASN{from}
	for r.Class[i] != ClassOrigin {
		i = r.Next[i]
		if i < 0 || len(path) > len(t.asns) {
			return nil
		}
		path = append(path, t.asns[i])
	}
	return path
}

// HostCandidates returns the equal-best next-hop ASes at the host for p.
func (t *Table) HostCandidates(p netx.Prefix) []topo.ASN {
	return t.Routes(p).HostCandidates
}

// ClassAt returns the route class of prefix p at AS asn.
func (t *Table) ClassAt(asn topo.ASN, p netx.Prefix) Class {
	i, ok := t.idx[asn]
	if !ok {
		return ClassNone
	}
	return t.Routes(p).Class[i]
}
