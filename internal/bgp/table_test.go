package bgp

import (
	"testing"

	"bdrmap/internal/netx"
	"bdrmap/internal/topo"
)

// smallNet builds a hand-wired network:
//
//	T1a --- T1b        (Tier-1 clique peers)
//	 |   \    |
//	host    \ |
//	 |  \    other
//	c1   c2
//	 |
//	gc (customer of c1)
func smallNet(t *testing.T) (*topo.Network, map[string]topo.ASN) {
	t.Helper()
	n := topo.NewNetwork()
	al := topo.NewAllocator()
	ids := map[string]topo.ASN{
		"t1a": 100, "t1b": 101, "host": 200, "other": 201,
		"c1": 300, "c2": 301, "gc": 400,
	}
	for name, asn := range ids {
		a := n.AddAS(asn, topo.TierStub, "org-"+name)
		p := al.Next(16)
		a.Prefixes = []netx.Prefix{p}
		a.Infra = p
	}
	n.HostASN = ids["host"]
	n.ASes[ids["t1a"]].Tier = topo.TierTier1
	n.ASes[ids["t1b"]].Tier = topo.TierTier1
	n.ASes[ids["other"]].Tier = topo.TierTransit

	n.SetRel(ids["t1a"], ids["t1b"], topo.RelPeer)
	n.SetRel(ids["host"], ids["t1a"], topo.RelCustomer)
	n.SetRel(ids["other"], ids["t1b"], topo.RelCustomer)
	n.SetRel(ids["other"], ids["t1a"], topo.RelCustomer)
	n.SetRel(ids["c1"], ids["host"], topo.RelCustomer)
	n.SetRel(ids["c2"], ids["host"], topo.RelCustomer)
	n.SetRel(ids["gc"], ids["c1"], topo.RelCustomer)
	n.Build()
	return n, ids
}

func prefixOf(n *topo.Network, asn topo.ASN) netx.Prefix {
	return n.ASes[asn].Prefixes[0]
}

func TestCustomerRoutePreferred(t *testing.T) {
	n, ids := smallNet(t)
	tb := NewTable(n)
	// host's route to gc must be via c1 (customer), not via providers.
	p := prefixOf(n, ids["gc"])
	path := tb.Path(ids["host"], p)
	want := []topo.ASN{ids["host"], ids["c1"], ids["gc"]}
	if len(path) != 3 || path[0] != want[0] || path[1] != want[1] || path[2] != want[2] {
		t.Fatalf("path = %v, want %v", path, want)
	}
	if tb.ClassAt(ids["host"], p) != ClassCustomer {
		t.Fatalf("class = %v", tb.ClassAt(ids["host"], p))
	}
}

func TestProviderRouteWhenOnlyOption(t *testing.T) {
	n, ids := smallNet(t)
	tb := NewTable(n)
	// host reaches "other" only via its provider t1a.
	p := prefixOf(n, ids["other"])
	path := tb.Path(ids["host"], p)
	if len(path) != 3 || path[1] != ids["t1a"] || path[2] != ids["other"] {
		t.Fatalf("path = %v", path)
	}
	if tb.ClassAt(ids["host"], p) != ClassProvider {
		t.Fatalf("class = %v", tb.ClassAt(ids["host"], p))
	}
}

func TestValleyFree(t *testing.T) {
	// No AS should route customer traffic between two of its providers:
	// c2 must not be reachable from c1 via host? It must: host is their
	// shared PROVIDER, providers carry traffic between customers. The
	// forbidden valley is host exporting a provider route to a peer.
	n, ids := smallNet(t)
	tb := NewTable(n)
	p := prefixOf(n, ids["c2"])
	path := tb.Path(ids["c1"], p)
	if len(path) != 3 || path[1] != ids["host"] {
		t.Fatalf("c1->c2 path = %v", path)
	}
	// t1b must not route to c1 via t1a's peer route: peer routes are not
	// exported to peers, so t1b's path to c1 must use customer "other"? No:
	// other has no route to c1 except via its providers, which do not
	// export provider routes to customers' peers... t1b reaches c1 via
	// peer t1a (t1a has a customer route via host). That is valley-free.
	path = tb.Path(ids["t1b"], prefixOf(n, ids["c1"]))
	if len(path) != 4 || path[1] != ids["t1a"] || path[2] != ids["host"] {
		t.Fatalf("t1b->c1 path = %v", path)
	}
}

func TestNoRouteBeyondPeerOfPeer(t *testing.T) {
	// A peer route must not be re-exported to another peer: construct
	// x -peer- y -peer- z; x's prefix must be invisible at z.
	n := topo.NewNetwork()
	al := topo.NewAllocator()
	for _, asn := range []topo.ASN{1, 2, 3} {
		a := n.AddAS(asn, topo.TierTransit, "org")
		a.Prefixes = []netx.Prefix{al.Next(16)}
	}
	n.HostASN = 1
	n.SetRel(1, 2, topo.RelPeer)
	n.SetRel(2, 3, topo.RelPeer)
	n.Build()
	tb := NewTable(n)
	if got := tb.Path(3, prefixOf(n, 1)); got != nil {
		t.Fatalf("peer-of-peer leak: %v", got)
	}
	if got := tb.Path(2, prefixOf(n, 1)); got == nil {
		t.Fatal("direct peer should have a route")
	}
}

func TestSiblingTransparent(t *testing.T) {
	// host's sibling's prefix must be reachable by host's provider via
	// host (sibling routes exported upward like customer routes).
	n := topo.NewNetwork()
	al := topo.NewAllocator()
	for _, asn := range []topo.ASN{10, 20, 21} {
		a := n.AddAS(asn, topo.TierTransit, "org")
		a.Prefixes = []netx.Prefix{al.Next(16)}
	}
	n.ASes[20].Org = "org-h"
	n.ASes[21].Org = "org-h"
	n.HostASN = 20
	n.SetRel(20, 10, topo.RelCustomer) // host customer of 10
	n.SetRel(20, 21, topo.RelSibling)
	n.Build()
	tb := NewTable(n)
	path := tb.Path(10, prefixOf(n, 21))
	if len(path) != 3 || path[1] != 20 || path[2] != 21 {
		t.Fatalf("provider->sibling path = %v", path)
	}
}

func TestMOASBothOriginsVisible(t *testing.T) {
	n := topo.NewNetwork()
	al := topo.NewAllocator()
	shared := al.Next(16)
	for _, asn := range []topo.ASN{1, 2, 3} {
		n.AddAS(asn, topo.TierTransit, "org")
	}
	n.HostASN = 3
	n.ASes[1].Prefixes = []netx.Prefix{shared}
	n.ASes[2].Prefixes = []netx.Prefix{shared}
	n.SetRel(1, 3, topo.RelCustomer)
	n.SetRel(2, 3, topo.RelCustomer)
	n.Build()
	tb := NewTable(n)
	rib := tb.Routes(shared)
	if got := len(rib.HostCandidates); got != 2 {
		t.Fatalf("host candidates = %v", rib.HostCandidates)
	}
	v := Collect(tb, []topo.ASN{3})
	origins := v.OriginsExact(shared)
	if len(origins) != 1 {
		// A single vantage sees one best path, hence one origin; with a
		// second vantage both origins appear.
		t.Fatalf("origins from one vantage = %v", origins)
	}
}

func TestHiddenNeighborSuppressed(t *testing.T) {
	// host peers (hidden) with ixp-peer whose prefix is also reachable via
	// transit T. The collector view must not contain the host–peer link,
	// but the host RIB must prefer the direct peering.
	n := topo.NewNetwork()
	al := topo.NewAllocator()
	for _, asn := range []topo.ASN{1, 2, 3, 4} { // 1=T, 2=host, 3=peer, 4=host's cust
		a := n.AddAS(asn, topo.TierTransit, "org")
		a.Prefixes = []netx.Prefix{al.Next(16)}
	}
	n.HostASN = 2
	n.ASes[1].Tier = topo.TierTier1
	n.SetRel(2, 1, topo.RelCustomer) // host customer of T
	n.SetRel(3, 1, topo.RelCustomer) // peer customer of T
	n.SetRel(3, 2, topo.RelPeer)     // hidden peering
	n.SetRel(4, 2, topo.RelCustomer) // host's customer
	n.HiddenNeighbors = map[topo.ASN]bool{3: true}
	n.Build()
	tb := NewTable(n)

	p3 := prefixOf(n, 3)
	if tb.ClassAt(2, p3) != ClassPeer {
		t.Fatalf("host should prefer direct peering, class = %v", tb.ClassAt(2, p3))
	}
	if !tb.Routes(p3).HostSuppressed {
		t.Fatal("host route via hidden peer should be suppressed")
	}
	// Host's customer must still have a route (via... nothing else: host
	// suppresses, and 4 has no other provider). Realistically traffic
	// still flows via default routes; BGP-wise it is absent.
	v := Collect(tb, DefaultVantages(n))
	if v.HasLink(2, 3) {
		t.Fatal("hidden peering leaked into the public view")
	}
	if !v.HasLink(2, 1) {
		t.Fatal("host-provider link missing from public view")
	}
	// Peer's prefix is still routed (via T) so bdrmap will probe it.
	found := false
	for _, rp := range v.RoutedPrefixes() {
		if rp == p3 {
			found = true
		}
	}
	if !found {
		t.Fatal("hidden peer's prefix missing from routed prefixes")
	}
}

func TestGeneratedNetworkAllPrefixesRouted(t *testing.T) {
	n := topo.Generate(topo.TinyProfile(), 5)
	tb := NewTable(n)
	hostIdx := tb.IndexOf(n.HostASN)
	for _, p := range tb.Prefixes() {
		rib := tb.Routes(p)
		if rib.Class[hostIdx] == ClassNone {
			t.Errorf("host has no route to %v (origins %v)", p, tb.Origins(p))
		}
	}
}

func TestGeneratedPathsValleyFree(t *testing.T) {
	n := topo.Generate(topo.TinyProfile(), 8)
	tb := NewTable(n)
	v := Collect(tb, DefaultVantages(n))
	for _, ap := range v.Paths {
		// Classify each step with ground truth and check the
		// valley-free pattern: uphill (c2p/sibling)* then at most one
		// peer step, then downhill (p2c/sibling)*.
		phase := 0 // 0=up, 1=after peer, 2=down
		for i := 1; i < len(ap.Path); i++ {
			cur, nxt := ap.Path[i-1], ap.Path[i]
			rel := n.ASes[cur].RelTo(nxt) // what nxt is to cur
			switch rel {
			case topo.RelProvider:
				// cur -> its provider: seen from the path direction
				// (vantage to origin) this is a downhill step for the
				// announcement, i.e. the announcement went customer->up.
				if phase != 0 {
					t.Fatalf("valley in path %v at %d", ap.Path, i)
				}
			case topo.RelPeer:
				if phase >= 1 {
					t.Fatalf("two peer steps in %v", ap.Path)
				}
				phase = 1
			case topo.RelCustomer:
				phase = 2
			case topo.RelSibling:
				// allowed anywhere
			default:
				t.Fatalf("non-adjacent consecutive ASes %v-%v in %v", cur, nxt, ap.Path)
			}
		}
	}
}

func TestLookupRoutedPrefix(t *testing.T) {
	n := topo.Generate(topo.TinyProfile(), 5)
	tb := NewTable(n)
	host := n.ASes[n.HostASN]
	p, ok := tb.Lookup(host.Infra.First() + 10)
	if !ok || !p.Contains(host.Infra.First()+10) {
		t.Fatalf("Lookup failed: %v %v", p, ok)
	}
}

func TestPathEndsAtOrigin(t *testing.T) {
	n := topo.Generate(topo.TinyProfile(), 12)
	tb := NewTable(n)
	for _, p := range tb.Prefixes() {
		path := tb.Path(n.HostASN, p)
		if path == nil {
			continue
		}
		origin := path[len(path)-1]
		found := false
		for _, o := range tb.Origins(p) {
			if o == origin {
				found = true
			}
		}
		if !found {
			t.Fatalf("path %v for %v does not end at an origin (%v)", path, p, tb.Origins(p))
		}
	}
}
