package bgp

import (
	"testing"

	"bdrmap/internal/topo"
)

// Alloc budgets for the candidate-set hot path. candidatesAt dominated
// scenario-build allocations (sort.Slice closures plus a fresh result
// slice per AS per prefix) before it moved to a pooled scratch buffer and
// an inline insertion sort; these tests pin the steady state at zero so
// the slab cannot silently regress.

// TestCandidatesAtAllocFree drives the scratch-buffer path directly: once
// the buffer has grown to the largest candidate set, a full sweep over
// every AS of every cached RIB must not allocate.
func TestCandidatesAtAllocFree(t *testing.T) {
	n := topo.Generate(topo.TinyProfile(), 1)
	tab := NewTable(n)
	ribs := make([]*PrefixRIB, 0, len(tab.Prefixes()))
	for _, p := range tab.Prefixes() {
		ribs = append(ribs, tab.Routes(p))
	}
	buf := make([]int32, 0, 16)
	avg := testing.AllocsPerRun(100, func() {
		for _, r := range ribs {
			for x := range tab.adj {
				tab.candidatesAt(r, int32(x), &buf)
			}
		}
	})
	if avg != 0 {
		t.Errorf("candidatesAt sweep allocates %.1f objects/run, want 0", avg)
	}
}

// TestSuppressedAtAllocFree pins the public concurrent-safe lookup: with
// warm RIB cache and pool, SuppressedAt must serve from scratch buffers.
// The budget tolerates stray pool refills (a GC between runs empties
// sync.Pool) but catches the per-call slice+closure regime this replaced.
func TestSuppressedAtAllocFree(t *testing.T) {
	n := topo.Generate(topo.TinyProfile(), 1)
	tab := NewTable(n)
	asns := n.ASNs()
	var ribs []*PrefixRIB
	for _, p := range tab.Prefixes() {
		ribs = append(ribs, tab.Routes(p))
	}
	avg := testing.AllocsPerRun(100, func() {
		for _, r := range ribs {
			for _, a := range asns {
				tab.SuppressedAt(a, r)
			}
		}
	})
	if avg > 1 {
		t.Errorf("SuppressedAt sweep allocates %.1f objects/run, want ~0", avg)
	}
}
