package faults

import (
	"net"
	"testing"
	"time"
)

func TestParseRoundTrip(t *testing.T) {
	in := "seed=42,drop=0.15,corrupt=0.05,dup=0.02,stall=0.1,stallfor=10ms,cut=0.01,heal=40,kill=200,rcorrupt=0.001,rcwindow=4096,probedrop=0.2,probeheal=50"
	sp, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Seed != 42 || sp.Drop != 0.15 || sp.StallFor != 10*time.Millisecond ||
		sp.Heal != 40 || sp.Kill != 200 || sp.RCWindow != 4096 || sp.ProbeHeal != 50 {
		t.Fatalf("parsed %+v", sp)
	}
	sp2, err := Parse(sp.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", sp.String(), err)
	}
	if sp2 != sp {
		t.Fatalf("round trip changed spec:\n%+v\n%+v", sp, sp2)
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, s := range []string{
		"drop",              // not key=value
		"nosuch=1",          // unknown key
		"drop=1.5",          // probability out of range
		"drop=-0.1",         // negative probability
		"drop=0.6,cut=0.6",  // fates sum > 1
		"heal=-1",           // negative budget
		"stallfor=sideways", // unparsable duration
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
	if sp, err := Parse(""); err != nil || sp != (Spec{}) {
		t.Errorf("empty spec: %+v, %v", sp, err)
	}
}

// TestDeterministicSchedule draws the full fate sequence twice from the same
// seed and requires identical schedules; a different seed must differ.
func TestDeterministicSchedule(t *testing.T) {
	spec := Spec{Seed: 7, Drop: 0.2, Corrupt: 0.1, Dup: 0.1, Stall: 0.1, Cut: 0.05}
	draw := func(seed int64) []Fate {
		s := spec
		s.Seed = seed
		inj := New(s)
		out := make([]Fate, 500)
		for i := range out {
			out[i] = inj.WriteFate()
		}
		return out
	}
	a, b := draw(7), draw(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at frame %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := draw(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 500-frame schedules")
	}
}

func TestHealingStopsFaults(t *testing.T) {
	inj := New(Spec{Seed: 1, Drop: 0.5, Heal: 10})
	for i := 0; i < 10000; i++ {
		inj.WriteFate()
	}
	if got := inj.Faults(); got != 10 {
		t.Fatalf("injected %d faults, heal budget was 10", got)
	}
	for i := 0; i < 100; i++ {
		if f := inj.WriteFate(); f != FateDeliver {
			t.Fatalf("post-heal fate %v", f)
		}
	}
}

func TestKillIsPermanent(t *testing.T) {
	inj := New(Spec{Seed: 1, Kill: 5})
	var killedAt int
	for i := 1; i <= 20; i++ {
		if inj.WriteFate() == FateKill && killedAt == 0 {
			killedAt = i
		}
	}
	if killedAt != 5 {
		t.Fatalf("killed at frame %d, want 5", killedAt)
	}
	if !inj.Killed() {
		t.Fatal("Killed() false after kill")
	}
	if _, err := inj.DialFunc("127.0.0.1:1"); err == nil {
		t.Fatal("DialFunc succeeded after kill")
	}
}

func TestReadCorruptionIsOffsetPure(t *testing.T) {
	inj := New(Spec{Seed: 3, RCorrupt: 0.05, RCWindow: 4096})
	hits := 0
	for off := int64(0); off < 4096; off++ {
		a := inj.ReadByteCorrupt(off)
		if a != inj.ReadByteCorrupt(off) {
			t.Fatalf("decision at offset %d not stable", off)
		}
		if a {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("no read corruption within window at p=0.05")
	}
	for off := int64(4096); off < 8192; off++ {
		if inj.ReadByteCorrupt(off) {
			t.Fatalf("corruption outside the %d-byte window at %d", 4096, off)
		}
	}
}

func TestProbeDropStreamIndependentAndHealed(t *testing.T) {
	run := func() (int64, []Fate) {
		inj := New(Spec{Seed: 9, Drop: 0.3, ProbeDrop: 0.5, ProbeHeal: 25})
		fates := make([]Fate, 100)
		for i := range fates {
			fates[i] = inj.WriteFate()
			inj.DropProbeResponse()
		}
		for i := 0; i < 1000; i++ {
			inj.DropProbeResponse()
		}
		return inj.ProbeDrops(), fates
	}
	drops, fates := run()
	if drops != 25 {
		t.Fatalf("probe drops = %d, heal budget 25", drops)
	}
	// Interleaving probe draws must not perturb the wire schedule.
	inj := New(Spec{Seed: 9, Drop: 0.3})
	for i, f := range fates {
		if g := inj.WriteFate(); g != f {
			t.Fatalf("wire schedule perturbed by probe stream at %d: %v vs %v", i, f, g)
		}
	}
}

// TestConnFaults drives the wrapper over an in-memory pipe and checks each
// fate's observable behavior.
func TestConnFaults(t *testing.T) {
	frame := []byte{0, 0, 0, 4, 1, 2, 3, 4}

	t.Run("drop", func(t *testing.T) {
		inj := New(Spec{Seed: 1, Drop: 1, Heal: 1})
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		w := inj.WrapConn(a)
		if n, err := w.Write(frame); err != nil || n != len(frame) {
			t.Fatalf("dropped write reported (%d, %v)", n, err)
		}
		// After healing, the next frame arrives.
		got := make([]byte, len(frame))
		done := make(chan error, 1)
		go func() {
			_, err := w.Write(frame)
			done <- err
		}()
		b.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := readFull(b, got); err != nil {
			t.Fatal(err)
		}
		if err := <-done; err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != frame[i] {
				t.Fatalf("healed frame corrupted: %v", got)
			}
		}
	})

	t.Run("corrupt preserves framing", func(t *testing.T) {
		inj := New(Spec{Seed: 1, Corrupt: 1, Heal: 1})
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		w := inj.WrapConn(a)
		got := make([]byte, len(frame))
		go w.Write(frame)
		b.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := readFull(b, got); err != nil {
			t.Fatal(err)
		}
		if got[0] != 0 || got[1] != 0 || got[2] != 0 || got[3] != 4 {
			t.Fatalf("length prefix corrupted: %v", got[:4])
		}
		diff := 0
		for i := 4; i < len(frame); i++ {
			if got[i] != frame[i] {
				diff++
			}
		}
		if diff != 1 {
			t.Fatalf("%d payload bytes differ, want exactly 1 (%v)", diff, got)
		}
	})

	t.Run("dup delivers twice", func(t *testing.T) {
		inj := New(Spec{Seed: 1, Dup: 1, Heal: 1})
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		w := inj.WrapConn(a)
		got := make([]byte, 2*len(frame))
		go w.Write(frame)
		b.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := readFull(b, got); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("cut closes the conn", func(t *testing.T) {
		inj := New(Spec{Seed: 1, Cut: 1, Heal: 1})
		a, b := net.Pipe()
		defer b.Close()
		w := inj.WrapConn(a)
		if _, err := w.Write(frame); err == nil {
			t.Fatal("cut write succeeded")
		}
		if _, err := w.Write(frame); err == nil {
			t.Fatal("write after cut succeeded")
		}
	})
}

func readFull(c net.Conn, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := c.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
