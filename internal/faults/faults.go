// Package faults is a deterministic, seedable fault-injection layer for the
// measurement pipeline: it wraps a transport (net.Conn) with frame drops,
// corruption, duplication, stalls, and mid-session disconnects, and feeds a
// separate probe-loss stream into the simulated probe engine. Every decision
// is a pure function of the Spec seed and the event sequence, so a run under
// a fixed fault schedule is exactly reproducible — which is what lets the
// chaos regression suite require byte-identical inferred borders against the
// fault-free goldens.
//
// A Spec is written as a comma-separated key=value list, e.g.
//
//	seed=42,drop=0.15,corrupt=0.05,dup=0.05,stall=0.1,stallfor=10ms,cut=0.01,heal=40
//
// The write-side fates (drop/corrupt/dup/stall/cut) apply per written frame
// in event order; heal=N quiets the injector after N injected faults (a
// "healing schedule" — the run degrades, recovers, and must still converge to
// the fault-free answer). kill=N permanently severs the agent after N frames
// and refuses redials, modelling the loss of a vantage point mid-run.
// Read-side corruption (rcorrupt/rcwindow) is keyed by absolute byte offset,
// so it is independent of how the kernel chunks reads. probedrop/probeheal
// drive the engine-level probe-response loss stream.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Spec describes one deterministic fault plan.
type Spec struct {
	// Seed drives every pseudo-random decision. Same seed, same schedule.
	Seed int64

	// Per-written-frame fate probabilities (they must sum to at most 1).
	Drop    float64 // frame silently lost
	Corrupt float64 // one payload byte flipped (framing preserved; CRC catches it)
	Dup     float64 // frame delivered twice
	Stall   float64 // frame delayed by StallFor before delivery
	Cut     float64 // connection torn down mid-session (the peer must resume)

	// StallFor is the delay applied to stalled frames (default 10ms). Keep
	// it well below the consumer's per-frame deadline or a stall turns into
	// a timeout-and-retry, which is a different (also supported) schedule.
	StallFor time.Duration

	// Heal quiets the write-side injector after this many injected faults
	// (0 = never heal). Chaos tests use healing schedules: the run must
	// recover and reproduce the fault-free output exactly.
	Heal int

	// Kill permanently severs the transport after this many written frames
	// and makes every redial fail (0 = never): permanent VP loss.
	Kill int

	// RCorrupt flips read-side bytes with this probability, but only within
	// the first RCWindow bytes of the stream (offset-keyed, so chunking
	// does not matter). RCWindow defaults to 16KiB when RCorrupt is set.
	RCorrupt float64
	RCWindow int64

	// ProbeDrop drops simulated probe responses in the engine with this
	// probability; ProbeHeal bounds the number of dropped responses
	// (0 = unlimited). This models plain packet loss (§5.3's retry rule).
	ProbeDrop float64
	ProbeHeal int
}

// Parse decodes the comma-separated key=value spec syntax.
func Parse(s string) (Spec, error) {
	var sp Spec
	s = strings.TrimSpace(s)
	if s == "" {
		return sp, nil
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return sp, fmt.Errorf("faults: %q is not key=value", kv)
		}
		var err error
		switch k {
		case "seed":
			sp.Seed, err = strconv.ParseInt(v, 10, 64)
		case "drop":
			sp.Drop, err = parseProb(v)
		case "corrupt":
			sp.Corrupt, err = parseProb(v)
		case "dup":
			sp.Dup, err = parseProb(v)
		case "stall":
			sp.Stall, err = parseProb(v)
		case "stallfor":
			sp.StallFor, err = time.ParseDuration(v)
		case "cut":
			sp.Cut, err = parseProb(v)
		case "heal":
			sp.Heal, err = strconv.Atoi(v)
		case "kill":
			sp.Kill, err = strconv.Atoi(v)
		case "rcorrupt":
			sp.RCorrupt, err = parseProb(v)
		case "rcwindow":
			sp.RCWindow, err = strconv.ParseInt(v, 10, 64)
		case "probedrop":
			sp.ProbeDrop, err = parseProb(v)
		case "probeheal":
			sp.ProbeHeal, err = strconv.Atoi(v)
		default:
			return sp, fmt.Errorf("faults: unknown key %q", k)
		}
		if err != nil {
			return sp, fmt.Errorf("faults: bad value for %s: %v", k, err)
		}
	}
	if sum := sp.Drop + sp.Corrupt + sp.Dup + sp.Stall + sp.Cut; sum > 1 {
		return sp, fmt.Errorf("faults: fate probabilities sum to %.3f > 1", sum)
	}
	return sp, sp.validate()
}

func parseProb(v string) (float64, error) {
	p, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0,1]", p)
	}
	return p, nil
}

func (sp Spec) validate() error {
	if sp.Heal < 0 || sp.Kill < 0 || sp.ProbeHeal < 0 || sp.RCWindow < 0 {
		return fmt.Errorf("faults: negative budget")
	}
	return nil
}

// String renders the spec back in Parse syntax (only non-zero keys).
func (sp Spec) String() string {
	kv := map[string]string{}
	put := func(k, v string) { kv[k] = v }
	put("seed", strconv.FormatInt(sp.Seed, 10))
	if sp.Drop > 0 {
		put("drop", trimFloat(sp.Drop))
	}
	if sp.Corrupt > 0 {
		put("corrupt", trimFloat(sp.Corrupt))
	}
	if sp.Dup > 0 {
		put("dup", trimFloat(sp.Dup))
	}
	if sp.Stall > 0 {
		put("stall", trimFloat(sp.Stall))
	}
	if sp.StallFor > 0 {
		put("stallfor", sp.StallFor.String())
	}
	if sp.Cut > 0 {
		put("cut", trimFloat(sp.Cut))
	}
	if sp.Heal > 0 {
		put("heal", strconv.Itoa(sp.Heal))
	}
	if sp.Kill > 0 {
		put("kill", strconv.Itoa(sp.Kill))
	}
	if sp.RCorrupt > 0 {
		put("rcorrupt", trimFloat(sp.RCorrupt))
	}
	if sp.RCWindow > 0 {
		put("rcwindow", strconv.FormatInt(sp.RCWindow, 10))
	}
	if sp.ProbeDrop > 0 {
		put("probedrop", trimFloat(sp.ProbeDrop))
	}
	if sp.ProbeHeal > 0 {
		put("probeheal", strconv.Itoa(sp.ProbeHeal))
	}
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+kv[k])
	}
	return strings.Join(parts, ",")
}

func trimFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// Fate is the injector's decision for one written frame.
type Fate int

// Write-frame fates.
const (
	FateDeliver Fate = iota
	FateDrop
	FateCorrupt
	FateDup
	FateStall
	FateCut
	FateKill
)

func (f Fate) String() string {
	switch f {
	case FateDrop:
		return "drop"
	case FateCorrupt:
		return "corrupt"
	case FateDup:
		return "dup"
	case FateStall:
		return "stall"
	case FateCut:
		return "cut"
	case FateKill:
		return "kill"
	default:
		return "deliver"
	}
}

// Injector draws deterministic fault decisions from a Spec. It is safe for
// concurrent use; decisions are consumed in call order, so for exact
// reproducibility the caller's event order must itself be deterministic
// (the probing agent is single-threaded, which is what makes wire faults
// replayable).
type Injector struct {
	spec Spec

	mu         sync.Mutex
	wireState  uint64 // PRNG state for write-frame fates
	probeState uint64 // independent PRNG state for probe-response loss
	frames     int64  // frames written so far
	faults     int64  // write-side faults injected so far
	probeDrops int64  // probe responses dropped so far
	killed     bool
}

// New creates an injector for the spec.
func New(spec Spec) *Injector {
	if spec.RCorrupt > 0 && spec.RCWindow == 0 {
		spec.RCWindow = 16 << 10
	}
	return &Injector{
		spec:       spec,
		wireState:  mix64(uint64(spec.Seed) ^ 0x77697265), // "wire"
		probeState: mix64(uint64(spec.Seed) ^ 0x70726f62), // "prob"
	}
}

// Spec returns the injector's spec.
func (i *Injector) Spec() Spec { return i.spec }

// splitmix64: a tiny, high-quality deterministic PRNG step.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// next advances a PRNG state and returns a uniform float in [0,1).
func next(state *uint64) float64 {
	*state = mix64(*state)
	return float64(*state>>11) / float64(1<<53)
}

// WriteFate decides the fate of the next written frame.
func (i *Injector) WriteFate() Fate {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.killed {
		return FateKill
	}
	i.frames++
	if i.spec.Kill > 0 && i.frames >= int64(i.spec.Kill) {
		i.killed = true
		return FateKill
	}
	if i.spec.Heal > 0 && i.faults >= int64(i.spec.Heal) {
		return FateDeliver
	}
	u := next(&i.wireState)
	sp := i.spec
	switch {
	case u < sp.Drop:
		i.faults++
		return FateDrop
	case u < sp.Drop+sp.Corrupt:
		i.faults++
		return FateCorrupt
	case u < sp.Drop+sp.Corrupt+sp.Dup:
		i.faults++
		return FateDup
	case u < sp.Drop+sp.Corrupt+sp.Dup+sp.Stall:
		i.faults++
		return FateStall
	case u < sp.Drop+sp.Corrupt+sp.Dup+sp.Stall+sp.Cut:
		i.faults++
		return FateCut
	}
	return FateDeliver
}

// CorruptIndex picks the deterministic byte to flip in a frame of n payload
// bytes (the caller keeps the length prefix intact so framing survives).
func (i *Injector) CorruptIndex(n int) int {
	if n <= 0 {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.wireState = mix64(i.wireState)
	return int(i.wireState % uint64(n))
}

// StallFor returns the delay for stalled frames.
func (i *Injector) StallFor() time.Duration {
	if i.spec.StallFor > 0 {
		return i.spec.StallFor
	}
	return 10 * time.Millisecond
}

// ReadByteCorrupt reports whether the byte at absolute stream offset off
// should be flipped. Pure in off, so the decision is independent of read
// chunking.
func (i *Injector) ReadByteCorrupt(off int64) bool {
	sp := i.spec
	if sp.RCorrupt <= 0 || off >= sp.RCWindow {
		return false
	}
	h := mix64(uint64(sp.Seed)*0x9e3779b97f4a7c15 ^ uint64(off))
	return float64(h>>11)/float64(1<<53) < sp.RCorrupt
}

// DropProbeResponse decides whether the next simulated probe response is
// lost. It draws from a PRNG stream independent of the wire faults.
func (i *Injector) DropProbeResponse() bool {
	if i.spec.ProbeDrop <= 0 {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.spec.ProbeHeal > 0 && i.probeDrops >= int64(i.spec.ProbeHeal) {
		return false
	}
	if next(&i.probeState) < i.spec.ProbeDrop {
		i.probeDrops++
		return true
	}
	return false
}

// Killed reports whether the kill budget has fired (the vantage point is
// permanently gone; redials must fail).
func (i *Injector) Killed() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.killed
}

// Faults returns how many write-side faults have been injected so far.
func (i *Injector) Faults() int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.faults
}

// ProbeDrops returns how many probe responses have been dropped so far.
func (i *Injector) ProbeDrops() int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.probeDrops
}
