package faults

import (
	"errors"
	"net"
	"time"
)

// ErrInjected marks transport errors produced by the fault layer, so
// consumers (and tests) can tell injected failures from real ones.
var ErrInjected = errors.New("faults: injected failure")

// errCut is returned from a Write whose fate was a mid-session disconnect.
var errCut = &net.OpError{Op: "write", Net: "faults", Err: ErrInjected}

// Conn wraps a transport with the injector's wire faults. Write treats each
// call as one protocol frame (the scamper codec writes whole frames in a
// single call), so write fates are frame-granular; Read applies byte-offset
// keyed corruption so its behavior is independent of kernel chunking.
//
// A Conn mirrors the determinism contract of its injector: with a
// single-threaded peer (the probing agent) the fault schedule is exactly
// reproducible for a fixed seed.
type Conn struct {
	inner net.Conn
	inj   *Injector

	readOff int64 // absolute bytes read so far, across this conn only? see WrapConn
}

// WrapConn wraps an established connection. The read-offset stream restarts
// at zero per connection, keeping offsets deterministic across reconnects.
func (i *Injector) WrapConn(c net.Conn) net.Conn {
	return &Conn{inner: c, inj: i}
}

// DialFunc dials addr over TCP and wraps the result — and permanently fails
// once the injector's kill budget has fired, modelling a dead device.
func (i *Injector) DialFunc(addr string) (net.Conn, error) {
	if i.Killed() {
		return nil, &net.OpError{Op: "dial", Net: "faults", Err: ErrInjected}
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return i.WrapConn(c), nil
}

// Write applies the next frame fate and forwards to the inner connection.
func (c *Conn) Write(b []byte) (int, error) {
	switch c.inj.WriteFate() {
	case FateDrop:
		return len(b), nil // silently lost; the peer's deadline fires
	case FateCorrupt:
		// Flip one byte past the 4-byte length prefix: framing survives,
		// the checksum (or the handler) catches the damage.
		cp := append([]byte(nil), b...)
		if len(cp) > 4 {
			idx := 4 + c.inj.CorruptIndex(len(cp)-4)
			cp[idx] ^= 0xff
		} else if len(cp) > 0 {
			cp[len(cp)-1] ^= 0xff
		}
		n, err := c.inner.Write(cp)
		return n, err
	case FateDup:
		if n, err := c.inner.Write(b); err != nil {
			return n, err
		}
		_, _ = c.inner.Write(b)
		return len(b), nil
	case FateStall:
		time.Sleep(c.inj.StallFor())
		return c.inner.Write(b)
	case FateCut:
		_ = c.inner.Close()
		return 0, errCut
	case FateKill:
		_ = c.inner.Close()
		return 0, errCut
	}
	return c.inner.Write(b)
}

// Read forwards to the inner connection, then applies offset-keyed byte
// corruption within the spec's read window.
func (c *Conn) Read(b []byte) (int, error) {
	n, err := c.inner.Read(b)
	for i := 0; i < n; i++ {
		if c.inj.ReadByteCorrupt(c.readOff + int64(i)) {
			b[i] ^= 0xff
		}
	}
	c.readOff += int64(n)
	return n, err
}

// Close closes the inner connection.
func (c *Conn) Close() error { return c.inner.Close() }

// LocalAddr returns the inner connection's local address.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr returns the inner connection's remote address.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline forwards to the inner connection.
func (c *Conn) SetDeadline(t time.Time) error { return c.inner.SetDeadline(t) }

// SetReadDeadline forwards to the inner connection.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.inner.SetReadDeadline(t) }

// SetWriteDeadline forwards to the inner connection.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }
