package dns

import (
	"strings"
	"testing"

	"bdrmap/internal/asrel"
	"bdrmap/internal/bgp"
	"bdrmap/internal/core"
	"bdrmap/internal/ixp"
	"bdrmap/internal/probe"
	"bdrmap/internal/rir"
	"bdrmap/internal/scamper"
	"bdrmap/internal/sibling"
	"bdrmap/internal/topo"
)

func TestZoneGeneration(t *testing.T) {
	n := topo.Generate(topo.TinyProfile(), 1)
	z := FromNetwork(n, 1)
	if z.Len() == 0 {
		t.Fatal("empty zone")
	}
	// Roughly 75% of interfaces get names.
	total := 0
	for _, r := range n.Routers {
		for _, ifc := range r.Ifaces {
			if !ifc.Addr.IsZero() {
				total++
			}
		}
	}
	frac := float64(z.Len()) / float64(total)
	if frac < 0.6 || frac > 0.9 {
		t.Errorf("named fraction = %.2f, want ~0.75", frac)
	}
}

func TestASNHint(t *testing.T) {
	cases := []struct {
		name string
		want topo.ASN
		ok   bool
	}{
		{"ae-0.bb1-sea.sea.as64501.example.net", 64501, true},
		{"ae-1.core1.nyc.org-64530.example.net", 0, false},
		{"plain-name.example.net", 0, false},
		{"as.example.net", 0, false},
	}
	for _, c := range cases {
		got, ok := ASNHint(c.name)
		if ok != c.ok || got != c.want {
			t.Errorf("ASNHint(%q) = %v, %v", c.name, got, ok)
		}
	}
}

func TestZoneDeterministic(t *testing.T) {
	n := topo.Generate(topo.TinyProfile(), 1)
	a := FromNetwork(n, 7)
	b := FromNetwork(n, 7)
	if a.Len() != b.Len() {
		t.Fatal("same seed, different zones")
	}
}

func TestMislabeledNamesExist(t *testing.T) {
	n := topo.Generate(topo.TinyProfile(), 1)
	z := FromNetwork(n, 3)
	wrong := 0
	for _, r := range n.Routers {
		for _, ifc := range r.Ifaces {
			name, ok := z.Lookup(ifc.Addr)
			if !ok {
				continue
			}
			if hint, ok := ASNHint(name); ok && hint != r.Owner {
				wrong++
			}
		}
	}
	if wrong == 0 {
		t.Error("zone has no mislabeled names; the paper's point is that DNS lies")
	}
}

func TestSanityCheckOnPipeline(t *testing.T) {
	n := topo.Generate(topo.TinyProfile(), 1)
	tab := bgp.NewTable(n)
	view := bgp.Collect(tab, bgp.DefaultVantages(n))
	rel := asrel.Infer(view)
	sibs := sibling.FromNetwork(n, 1)
	sibs.CurateHost(n)
	hosts := map[topo.ASN]bool{n.HostASN: true}
	e := probe.New(n, tab)
	d := &scamper.Driver{
		View: view, Prober: scamper.LocalProber{E: e, VP: n.VPs[0]},
		HostASNs: hosts, Cfg: scamper.Config{Workers: 1},
	}
	ds := d.Run()
	res := core.Infer(core.Input{
		Data: ds, View: view, Rel: rel, RIR: rir.FromNetwork(n),
		IXP: ixp.Merge(ixp.FromNetwork(n, 1)), HostASN: n.HostASN, Siblings: sibs,
	})
	z := FromNetwork(n, 1)
	rep := SanityCheck(res, z)
	t.Logf("dns sanity: agree=%d disagree=%d nohint=%d (%.2f)",
		rep.Agree, rep.Disagree, rep.NoHint, rep.AgreeFrac())
	if rep.Agree+rep.Disagree == 0 {
		t.Fatal("no hinted routers at all")
	}
	// Inference is accurate and most names are honest, so agreement
	// should be strong — but not perfect, because the zone lies.
	if rep.AgreeFrac() < 0.7 {
		t.Errorf("agreement %.2f suspiciously low", rep.AgreeFrac())
	}
	for _, s := range rep.Suspects {
		if !strings.Contains(s.Name, "example.net") {
			t.Errorf("suspect with malformed name %q", s.Name)
		}
	}
}

func TestMetroFor(t *testing.T) {
	if m := metroFor(-122.3); m != "sea" {
		t.Errorf("metroFor(-122.3) = %q", m)
	}
	if m := metroFor(-74.0); m != "nyc" {
		t.Errorf("metroFor(-74.0) = %q", m)
	}
}
