// Package dns models the reverse-DNS naming the paper used during
// development (§5.1): before any operator ground truth was available, the
// authors sanity-checked inferences against interface hostnames — while
// noting that automated DNS validation is impossible because operators
// mislabel interdomain links and encode organization names rather than AS
// numbers.
//
// FromNetwork derives a PTR zone from ground truth with exactly those
// defects: most infrastructure interfaces carry a name embedding the
// operator's ASN and metro, some embed only an opaque organization label,
// a few are stale (they name the old/wrong operator — typically the other
// side of an interconnection), and many have no name at all. SanityCheck
// is the development-mode diagnostic built on top.
package dns

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"bdrmap/internal/core"
	"bdrmap/internal/netx"
	"bdrmap/internal/topo"
)

// Zone is a set of PTR records.
type Zone struct {
	names map[netx.Addr]string
}

// Lookup returns the PTR name of addr.
func (z *Zone) Lookup(addr netx.Addr) (string, bool) {
	n, ok := z.names[addr]
	return n, ok
}

// Len returns the number of named interfaces.
func (z *Zone) Len() int { return len(z.names) }

// FromNetwork derives the zone. Rates mirror operational reality: ~55% of
// interfaces named with an ASN token, ~15% with an organization label
// only, ~5% stale or mislabeled, the rest unnamed.
func FromNetwork(net *topo.Network, seed int64) *Zone {
	rng := rand.New(rand.NewSource(seed))
	z := &Zone{names: make(map[netx.Addr]string)}
	for _, r := range net.Routers {
		metro := metroFor(r.Longitude)
		for i, ifc := range r.Ifaces {
			if ifc.Addr.IsZero() {
				continue
			}
			x := rng.Float64()
			switch {
			case x < 0.55:
				z.names[ifc.Addr] = fmt.Sprintf("ae-%d.%s.%s.as%d.example.net",
					i, sanitize(r.Name), metro, uint32(r.Owner))
			case x < 0.70:
				org := "unknown"
				if as := net.ASes[r.Owner]; as != nil {
					org = sanitize(as.Org)
				}
				z.names[ifc.Addr] = fmt.Sprintf("ae-%d.%s.%s.%s.example.net",
					i, sanitize(r.Name), metro, org)
			case x < 0.75:
				// Stale or mislabeled: the name carries the *other* side
				// of the link (common on interconnection subnets).
				other := otherOwner(net, ifc)
				if other == 0 {
					other = r.Owner
				}
				z.names[ifc.Addr] = fmt.Sprintf("xe-%d.%s.%s.as%d.example.net",
					i, sanitize(r.Name), metro, uint32(other))
			default:
				// unnamed
			}
		}
	}
	return z
}

func otherOwner(net *topo.Network, ifc *topo.Iface) topo.ASN {
	if ifc.Link == nil {
		return 0
	}
	for _, o := range ifc.Link.Ifaces {
		if o != ifc {
			if r := net.Router(o.Router); r != nil {
				return r.Owner
			}
		}
	}
	return 0
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			return r
		case r >= 'A' && r <= 'Z':
			return r + 32
		default:
			return '-'
		}
	}, s)
}

// metroFor maps a longitude to the nearest named metro.
func metroFor(lon float64) string {
	best, bestD := "unk", 1e9
	for _, r := range topo.USRegions {
		d := r.Longitude - lon
		if d < 0 {
			d = -d
		}
		if d < bestD {
			best, bestD = r.Name, d
		}
	}
	return best
}

// ASNHint extracts the AS number embedded in a hostname, if any.
func ASNHint(name string) (topo.ASN, bool) {
	for _, tok := range strings.Split(name, ".") {
		if strings.HasPrefix(tok, "as") {
			if v, err := strconv.ParseUint(tok[2:], 10, 32); err == nil {
				return topo.ASN(v), true
			}
		}
	}
	return 0, false
}

// SanityReport summarizes a development-mode comparison of inferred
// owners against DNS hints (§5.1). Disagreement is a *signal to
// investigate*, not an error count: the zone contains mislabeled names.
type SanityReport struct {
	Agree, Disagree, NoHint int
	// Suspects lists disagreeing routers for manual investigation, the way
	// the paper eyeballed "border routers with high out-degree to routers
	// in a single neighbor AS".
	Suspects []Suspect
}

// Suspect is one router whose inference disagrees with DNS.
type Suspect struct {
	Addr     netx.Addr
	Name     string
	Inferred topo.ASN
	DNSHint  topo.ASN
}

// AgreeFrac returns the agreement rate over routers with hints.
func (r SanityReport) AgreeFrac() float64 {
	if r.Agree+r.Disagree == 0 {
		return 0
	}
	return float64(r.Agree) / float64(r.Agree+r.Disagree)
}

// SanityCheck compares a result's owner inferences to the zone.
func SanityCheck(res *core.Result, z *Zone) SanityReport {
	var rep SanityReport
	for _, rn := range res.Routers {
		if rn.Owner == 0 {
			continue
		}
		hinted := false
		for _, a := range rn.Addrs {
			name, ok := z.Lookup(a)
			if !ok {
				continue
			}
			hint, ok := ASNHint(name)
			if !ok {
				continue
			}
			hinted = true
			if hint == rn.Owner {
				rep.Agree++
			} else {
				rep.Disagree++
				rep.Suspects = append(rep.Suspects, Suspect{
					Addr: a, Name: name, Inferred: rn.Owner, DNSHint: hint,
				})
			}
			break
		}
		if !hinted {
			rep.NoHint++
		}
	}
	sort.Slice(rep.Suspects, func(i, j int) bool { return rep.Suspects[i].Addr < rep.Suspects[j].Addr })
	return rep
}
