package asrel

import (
	"sort"

	"bdrmap/internal/topo"
)

// Customer cones, the companion output of the relationship inference the
// paper builds on ("AS Relationships, Customer Cones, and Validation"):
// the cone of an AS is the set of ASes reachable by repeatedly following
// provider→customer edges — everything the AS can carry traffic for as a
// transit. bdrmap's third-party and destination-set reasoning both lean on
// cone membership.

// ConeOf returns the customer cone of asn (including asn itself), sorted.
// Cones are memoized on first use.
func (inf *Inference) ConeOf(asn topo.ASN) []topo.ASN {
	if inf.cones == nil {
		inf.cones = make(map[topo.ASN][]topo.ASN)
	}
	if c, ok := inf.cones[asn]; ok {
		return c
	}
	seen := map[topo.ASN]bool{asn: true}
	stack := []topo.ASN{asn}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range inf.CustomersOf(cur) {
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	cone := make([]topo.ASN, 0, len(seen))
	for a := range seen {
		cone = append(cone, a)
	}
	sort.Slice(cone, func(i, j int) bool { return cone[i] < cone[j] })
	inf.cones[asn] = cone
	return cone
}

// InCone reports whether member lies in asn's customer cone.
func (inf *Inference) InCone(asn, member topo.ASN) bool {
	cone := inf.ConeOf(asn)
	i := sort.Search(len(cone), func(i int) bool { return cone[i] >= member })
	return i < len(cone) && cone[i] == member
}

// ConeSize returns |ConeOf(asn)|.
func (inf *Inference) ConeSize(asn topo.ASN) int { return len(inf.ConeOf(asn)) }

// RankByCone returns all ASes sorted by descending cone size (the AS-Rank
// ordering), ties by ASN.
func (inf *Inference) RankByCone() []topo.ASN {
	var out []topo.ASN
	for a := range inf.nbrs {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := inf.ConeSize(out[i]), inf.ConeSize(out[j])
		if si != sj {
			return si > sj
		}
		return out[i] < out[j]
	})
	return out
}
