// Package asrel infers business relationships between ASes from the AS
// paths observed in a public BGP view, following the approach of "AS
// Relationships, Customer Cones, and Validation" (IMC 2013) that the bdrmap
// paper uses as input (§5.2): infer a clique of Tier-1 networks from
// transit degree and mutual adjacency, classify edges on the announcement's
// uphill side as customer→provider and the downhill side as
// provider→customer, and label the remainder peer–peer.
//
// bdrmap consumes these *inferred* (imperfect) labels, never ground truth;
// the package's tests measure inference accuracy against the simulator's
// truth the same way the 2013 paper validated against operator data.
package asrel

import (
	"sort"

	"bdrmap/internal/bgp"
	"bdrmap/internal/topo"
)

// Inference holds inferred relationships. Lookup direction follows
// topo.AS.RelTo: Rel(a, b) answers "what is b to a" (RelCustomer: b is a's
// customer).
type Inference struct {
	rels   map[[2]topo.ASN]topo.Rel // keyed (lo, hi); value = what hi is to lo
	nbrs   map[topo.ASN][]topo.ASN
	clique map[topo.ASN]bool
	cones  map[topo.ASN][]topo.ASN // memoized customer cones
}

// Rel returns the inferred relationship: what b is to a.
// RelNone if the pair was never observed adjacent.
func (inf *Inference) Rel(a, b topo.ASN) topo.Rel {
	if a == b {
		return topo.RelNone
	}
	if a < b {
		return inf.rels[[2]topo.ASN{a, b}]
	}
	return inf.rels[[2]topo.ASN{b, a}].Invert()
}

// Neighbors returns the ASes observed adjacent to a, sorted.
func (inf *Inference) Neighbors(a topo.ASN) []topo.ASN { return inf.nbrs[a] }

// ProvidersOf returns the inferred providers of a.
func (inf *Inference) ProvidersOf(a topo.ASN) []topo.ASN {
	return inf.withRel(a, topo.RelProvider)
}

// CustomersOf returns the inferred customers of a.
func (inf *Inference) CustomersOf(a topo.ASN) []topo.ASN {
	return inf.withRel(a, topo.RelCustomer)
}

// PeersOf returns the inferred peers of a.
func (inf *Inference) PeersOf(a topo.ASN) []topo.ASN {
	return inf.withRel(a, topo.RelPeer)
}

func (inf *Inference) withRel(a topo.ASN, want topo.Rel) []topo.ASN {
	var out []topo.ASN
	for _, n := range inf.nbrs[a] {
		if inf.Rel(a, n) == want {
			out = append(out, n)
		}
	}
	return out
}

// InClique reports whether a was inferred to be a Tier-1 clique member.
func (inf *Inference) InClique(a topo.ASN) bool { return inf.clique[a] }

// Len returns the number of labeled AS links.
func (inf *Inference) Len() int { return len(inf.rels) }

// Infer runs relationship inference over the view's paths.
func Infer(view *bgp.View) *Inference {
	inf := &Inference{
		rels:   make(map[[2]topo.ASN]topo.Rel),
		nbrs:   make(map[topo.ASN][]topo.ASN),
		clique: make(map[topo.ASN]bool),
	}

	// Transit degree: distinct neighbors an AS appears between in paths.
	transit := make(map[topo.ASN]map[topo.ASN]bool)
	adj := make(map[[2]topo.ASN]bool)
	for _, ap := range view.Paths {
		p := ap.Path
		for i := 1; i < len(p); i++ {
			adj[key(p[i-1], p[i])] = true
		}
		for i := 1; i+1 < len(p); i++ {
			m := transit[p[i]]
			if m == nil {
				m = make(map[topo.ASN]bool)
				transit[p[i]] = m
			}
			m[p[i-1]] = true
			m[p[i+1]] = true
		}
	}
	tdeg := func(a topo.ASN) int { return len(transit[a]) }

	// Greedy clique from the highest transit degrees, requiring mutual
	// adjacency with every member admitted so far.
	var byDeg []topo.ASN
	for a := range transit {
		byDeg = append(byDeg, a)
	}
	sort.Slice(byDeg, func(i, j int) bool {
		if tdeg(byDeg[i]) != tdeg(byDeg[j]) {
			return tdeg(byDeg[i]) > tdeg(byDeg[j])
		}
		return byDeg[i] < byDeg[j]
	})
	var candidates []topo.ASN
	for _, a := range byDeg {
		if tdeg(a) < 2 {
			break // clique members all carry transit
		}
		candidates = append(candidates, a)
		if len(candidates) >= 16 {
			break
		}
	}
	// A well-connected access network can top the transit-degree ranking,
	// so greedy growth from the single largest seed can anchor the clique
	// on a non-Tier-1. Grow a clique from every candidate seed and keep
	// the largest (ties: highest combined transit degree): the genuine
	// Tier-1 mesh is the biggest mutually-adjacent set.
	bestScore := -1
	for _, seed := range candidates {
		cl := map[topo.ASN]bool{seed: true}
		for _, a := range candidates {
			if len(cl) >= 12 || cl[a] {
				continue
			}
			ok := true
			for c := range cl {
				if !adj[key(a, c)] {
					ok = false
					break
				}
			}
			if ok {
				cl[a] = true
			}
		}
		score := 0
		for a := range cl {
			score += 1<<16 + tdeg(a)
		}
		if score > bestScore {
			bestScore = score
			inf.clique = cl
		}
	}
	if inf.clique == nil {
		inf.clique = map[topo.ASN]bool{}
	}

	// Refinement: three true clique members can never appear consecutively
	// in a path — that would require one to re-export a peer route to a
	// peer. Every consecutive clique triple therefore contains a false
	// member (typically a well-connected access network whose transit
	// degree rivals the Tier-1s). Iteratively remove the member involved
	// in the most violating triples until no triples remain.
	for {
		involvement := make(map[topo.ASN]int)
		for _, ap := range view.Paths {
			p := ap.Path
			for i := 0; i+2 < len(p); i++ {
				if inf.clique[p[i]] && inf.clique[p[i+1]] && inf.clique[p[i+2]] &&
					p[i] != p[i+2] {
					involvement[p[i]]++
					involvement[p[i+1]]++
					involvement[p[i+2]]++
				}
			}
		}
		if len(involvement) == 0 {
			break
		}
		var worst topo.ASN
		worstN := -1
		for a, n := range involvement {
			if n > worstN || (n == worstN && a < worst) {
				worst, worstN = a, n
			}
		}
		delete(inf.clique, worst)
	}

	// Vote per edge. Sign convention on the canonical (lo, hi) key:
	// positive = lo is customer of hi.
	votes := make(map[[2]topo.ASN]int)
	vote := func(cust, prov topo.ASN) {
		k := key(cust, prov)
		if k[0] == cust {
			votes[k]++
		} else {
			votes[k]--
		}
	}
	for _, ap := range view.Paths {
		p := ap.Path
		if len(p) < 2 {
			continue
		}
		// Apex: the last clique member in path order (clique members sit
		// at the top of a valley-free path), or failing that the
		// highest-transit-degree position.
		apex := -1
		for i, a := range p {
			if inf.clique[a] {
				apex = i
			}
		}
		if apex < 0 {
			best := -1
			for i, a := range p {
				if d := tdeg(a); d > best {
					apex, best = i, d
				}
			}
		}
		// Path order is vantage..origin. The announcement climbed from
		// the origin to the apex (right-of-apex edges are c2p with the
		// left AS the provider) and descended from the apex to the
		// vantage. The single possible peer edge touches the apex, so
		// apex-adjacent edges are ambiguous — with one rigorous
		// exception: when the apex's route continued to *another clique
		// member*, the AS it learned the route from must be its customer
		// (peers never re-export peer routes to peers).
		for i := 0; i+1 < len(p); i++ {
			switch {
			case i+1 == apex:
				// vantage-side adjacent edge: always ambiguous (the apex
				// may be exporting a peer's customer cone downward).
			case i == apex:
				if inf.clique[p[apex]] && apex > 0 && inf.clique[p[apex-1]] &&
					!inf.clique[p[i+1]] {
					vote(p[i+1], p[apex])
				}
			case i < apex:
				vote(p[i], p[i+1]) // descent: left heard from right
			default:
				vote(p[i+1], p[i]) // climb: right announced up to left
			}
		}
	}

	for k := range adj {
		lo, hi := k[0], k[1]
		var rel topo.Rel // what hi is to lo
		switch {
		case inf.clique[lo] && inf.clique[hi]:
			rel = topo.RelPeer
		case votes[k] > 0:
			rel = topo.RelProvider // lo is customer ⇒ hi is lo's provider
		case votes[k] < 0:
			rel = topo.RelCustomer
		default:
			rel = topo.RelPeer
		}
		inf.rels[k] = rel
		inf.nbrs[lo] = append(inf.nbrs[lo], hi)
		inf.nbrs[hi] = append(inf.nbrs[hi], lo)
	}
	for a := range inf.nbrs {
		s := inf.nbrs[a]
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		inf.nbrs[a] = s
	}
	return inf
}

func key(a, b topo.ASN) [2]topo.ASN {
	if a < b {
		return [2]topo.ASN{a, b}
	}
	return [2]topo.ASN{b, a}
}
