package asrel

import (
	"testing"

	"bdrmap/internal/bgp"
	"bdrmap/internal/netx"
	"bdrmap/internal/topo"
)

func buildAndInfer(t *testing.T, prof topo.Profile, seed int64) (*topo.Network, *Inference) {
	t.Helper()
	n := topo.Generate(prof, seed)
	tb := bgp.NewTable(n)
	view := bgp.Collect(tb, bgp.DefaultVantages(n))
	return n, Infer(view)
}

// accuracy compares inferred labels with ground truth over all inferred
// links whose true relationship is known.
func accuracy(n *topo.Network, inf *Inference) (correct, total int) {
	for _, asn := range n.ASNs() {
		a := n.ASes[asn]
		for _, nb := range inf.Neighbors(asn) {
			if nb < asn {
				continue // count each link once
			}
			truth := a.RelTo(nb)
			if truth == topo.RelNone || truth == topo.RelSibling {
				continue
			}
			total++
			if inf.Rel(asn, nb) == truth {
				correct++
			}
		}
	}
	return correct, total
}

func TestInferenceAccuracyTiny(t *testing.T) {
	n, inf := buildAndInfer(t, topo.TinyProfile(), 3)
	correct, total := accuracy(n, inf)
	if total == 0 {
		t.Fatal("no links inferred")
	}
	if frac := float64(correct) / float64(total); frac < 0.90 {
		t.Errorf("accuracy = %.3f (%d/%d), want >= 0.90", frac, correct, total)
	}
}

func TestInferenceAccuracyRE(t *testing.T) {
	if testing.Short() {
		t.Skip("larger profile in -short mode")
	}
	n, inf := buildAndInfer(t, topo.REProfile(), 1)
	correct, total := accuracy(n, inf)
	if frac := float64(correct) / float64(total); frac < 0.90 {
		t.Errorf("accuracy = %.3f (%d/%d), want >= 0.90", frac, correct, total)
	}
}

func TestHostNotInClique(t *testing.T) {
	// An access network with many customers must not be inferred as a
	// Tier-1 clique member, or its provider links would be mislabeled.
	n, inf := buildAndInfer(t, topo.TinyProfile(), 5)
	if n.ASes[n.HostASN].Tier != topo.TierTier1 && inf.InClique(n.HostASN) {
		t.Error("non-tier1 host wrongly inferred in clique")
	}
}

func TestHostProviderAndCustomerLabels(t *testing.T) {
	n, inf := buildAndInfer(t, topo.TinyProfile(), 7)
	host := n.ASes[n.HostASN]
	var provOK, provN, custOK, custN int
	for _, nb := range host.Neighbors() {
		got := inf.Rel(n.HostASN, nb.ASN)
		switch nb.Rel {
		case topo.RelProvider:
			provN++
			if got == topo.RelProvider {
				provOK++
			}
		case topo.RelCustomer:
			custN++
			if got == topo.RelCustomer || got == topo.RelNone {
				// RelNone acceptable only for hidden neighbors.
				if got == topo.RelCustomer {
					custOK++
				}
			}
		}
	}
	if provN == 0 || provOK != provN {
		t.Errorf("provider labels: %d/%d correct", provOK, provN)
	}
	if custN == 0 || float64(custOK)/float64(custN) < 0.9 {
		t.Errorf("customer labels: %d/%d correct", custOK, custN)
	}
}

func TestHiddenPeersUnlabeled(t *testing.T) {
	n, inf := buildAndInfer(t, topo.TinyProfile(), 9)
	for asn := range n.HiddenNeighbors {
		if rel := inf.Rel(n.HostASN, asn); rel != topo.RelNone {
			t.Errorf("hidden peer %v has inferred relationship %v to host", asn, rel)
		}
	}
}

// handView builds a View-equivalent via a tiny custom network, exercising
// the apex/voting logic directly.
func TestPeerEdgeNotMislabeled(t *testing.T) {
	// host -peer- big, big has customer c; host's own customer hc.
	// The host→big edge must not become c2p.
	n := topo.NewNetwork()
	al := topo.NewAllocator()
	for _, asn := range []topo.ASN{10, 20, 30, 40, 50, 60, 70, 71, 72, 80, 81, 82} {
		a := n.AddAS(asn, topo.TierTransit, "org")
		a.Prefixes = []netx.Prefix{al.Next(16)}
	}
	// 10, 20 = tier1 clique (each with their own transit customers
	// 70-72 / 80-82 so their transit degrees anchor the clique);
	// 30 = host; 40 = big transit peer of the host.
	n.HostASN = 30
	n.ASes[10].Tier = topo.TierTier1
	n.ASes[20].Tier = topo.TierTier1
	n.SetRel(10, 20, topo.RelPeer)
	n.SetRel(30, 10, topo.RelCustomer)
	n.SetRel(40, 10, topo.RelPeer) // 40 is a transit-free big network
	n.SetRel(40, 20, topo.RelPeer)
	n.SetRel(30, 40, topo.RelPeer) // the peering under test
	n.SetRel(50, 40, topo.RelCustomer)
	n.SetRel(60, 30, topo.RelCustomer)
	for _, c := range []topo.ASN{70, 71, 72} {
		n.SetRel(c, 10, topo.RelCustomer)
	}
	for _, c := range []topo.ASN{80, 81, 82} {
		n.SetRel(c, 20, topo.RelCustomer)
	}
	n.Build()
	tb := bgp.NewTable(n)
	view := bgp.Collect(tb, []topo.ASN{10, 20, 30, 40, 60, 70, 80})
	inf := Infer(view)
	if got := inf.Rel(30, 40); got != topo.RelPeer {
		t.Errorf("host-big relationship = %v, want peer", got)
	}
	if got := inf.Rel(30, 10); got != topo.RelProvider {
		t.Errorf("host-t1 relationship = %v, want provider", got)
	}
	if got := inf.Rel(40, 50); got != topo.RelCustomer {
		t.Errorf("big-cust relationship = %v, want customer", got)
	}
	if got := inf.Rel(30, 60); got != topo.RelCustomer {
		t.Errorf("host-cust relationship = %v, want customer", got)
	}
}

func TestProvidersOfCustomersOf(t *testing.T) {
	n, inf := buildAndInfer(t, topo.TinyProfile(), 11)
	host := n.HostASN
	provs := inf.ProvidersOf(host)
	custs := inf.CustomersOf(host)
	for _, p := range provs {
		if inf.Rel(host, p) != topo.RelProvider {
			t.Errorf("ProvidersOf inconsistent for %v", p)
		}
	}
	for _, c := range custs {
		if inf.Rel(host, c) != topo.RelCustomer {
			t.Errorf("CustomersOf inconsistent for %v", c)
		}
	}
	if len(provs) == 0 || len(custs) == 0 {
		t.Errorf("host has %d providers, %d customers inferred", len(provs), len(custs))
	}
}

func TestRelSymmetry(t *testing.T) {
	_, inf := buildAndInfer(t, topo.TinyProfile(), 13)
	for a, nbrs := range inf.nbrs {
		for _, b := range nbrs {
			if inf.Rel(a, b) != inf.Rel(b, a).Invert() {
				t.Fatalf("asymmetric inference for %v-%v", a, b)
			}
		}
	}
}
