package asrel

import (
	"testing"

	"bdrmap/internal/topo"
)

func TestConeContainsSelfAndCustomers(t *testing.T) {
	n, inf := buildAndInfer(t, topo.TinyProfile(), 3)
	host := n.HostASN
	cone := inf.ConeOf(host)
	if !inf.InCone(host, host) {
		t.Fatal("cone must contain the AS itself")
	}
	for _, c := range inf.CustomersOf(host) {
		if !inf.InCone(host, c) {
			t.Fatalf("direct customer %v missing from cone", c)
		}
	}
	if len(cone) < len(inf.CustomersOf(host))+1 {
		t.Fatalf("cone smaller than customer set: %d", len(cone))
	}
}

func TestConeTransitive(t *testing.T) {
	n, inf := buildAndInfer(t, topo.TinyProfile(), 3)
	// Customers of customers are in the cone.
	for _, c := range inf.CustomersOf(n.HostASN) {
		for _, cc := range inf.CustomersOf(c) {
			if !inf.InCone(n.HostASN, cc) {
				t.Fatalf("customer-of-customer %v missing from host cone", cc)
			}
		}
	}
}

func TestConeExcludesPeers(t *testing.T) {
	n, inf := buildAndInfer(t, topo.TinyProfile(), 3)
	for _, p := range inf.PeersOf(n.HostASN) {
		if inf.InCone(n.HostASN, p) {
			// A peer can still be in the cone via some other customer
			// path, but in our tiny world peers are not host customers.
			t.Fatalf("peer %v in host cone", p)
		}
	}
}

func TestConeMatchesTruth(t *testing.T) {
	// The inferred cone of a transit should cover its true customers.
	n, inf := buildAndInfer(t, topo.REProfile(), 1)
	hit, checked := 0, 0
	for _, asn := range n.ASNs() {
		a := n.ASes[asn]
		if a.Tier != topo.TierTier1 {
			continue
		}
		for _, nb := range a.Neighbors() {
			if nb.Rel == topo.RelCustomer && len(inf.Neighbors(nb.ASN)) > 0 {
				checked++
				if inf.InCone(asn, nb.ASN) {
					hit++
				}
			}
		}
	}
	if checked == 0 {
		t.Skip("no visible tier1 customers")
	}
	// Some edges legitimately default to p2p in best-path-only data; the
	// bulk of true customers must still land in the cone.
	if frac := float64(hit) / float64(checked); frac < 0.8 {
		t.Errorf("only %.2f of true customers in inferred cones (%d/%d)", frac, hit, checked)
	}
}

func TestRankByConePutsTransitsFirst(t *testing.T) {
	n, inf := buildAndInfer(t, topo.REProfile(), 1)
	rank := inf.RankByCone()
	if len(rank) == 0 {
		t.Fatal("empty ranking")
	}
	// The top-ranked AS must be transit-ish: a backbone Tier-1 or the
	// host (which carries its own large cone).
	top := n.ASes[rank[0]]
	if top == nil {
		t.Fatalf("unknown top AS %v", rank[0])
	}
	if top.Tier == topo.TierStub || top.Tier == topo.TierCDN {
		t.Errorf("top of cone ranking is a %v", top.Tier)
	}
	// Ranking is by non-increasing cone size.
	for i := 1; i < len(rank); i++ {
		if inf.ConeSize(rank[i-1]) < inf.ConeSize(rank[i]) {
			t.Fatalf("ranking not sorted at %d", i)
		}
	}
}

func TestConeMemoized(t *testing.T) {
	_, inf := buildAndInfer(t, topo.TinyProfile(), 3)
	a := inf.RankByCone()[0]
	c1 := inf.ConeOf(a)
	c2 := inf.ConeOf(a)
	if &c1[0] != &c2[0] {
		t.Error("cone not memoized")
	}
}
