// Package rir models the extended delegation files published by the five
// Regional Internet Registries. bdrmap uses them (§5.2, §5.4.1) to
// attribute address space that is delegated to an organization but not
// originated in BGP: the files map address blocks to opaque organization
// IDs that group the delegations of a single org without naming an AS.
//
// The package both serializes and parses the standard line format
//
//	registry|cc|ipv4|start|count|date|status|opaque-id
//
// so the dataset can round-trip through files exactly like real RIR data.
package rir

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"bdrmap/internal/netx"
	"bdrmap/internal/topo"
)

// Record is one delegation: an address range assigned to an organization.
// Count follows RIR conventions and need not be a power of two.
type Record struct {
	Registry string
	CC       string
	Start    netx.Addr
	Count    uint32
	Date     string
	Status   string
	OrgID    string
}

// End returns the last address of the delegation.
func (r Record) End() netx.Addr { return r.Start + netx.Addr(r.Count) - 1 }

// Line renders the record in the extended delegation format.
func (r Record) Line() string {
	return strings.Join([]string{
		r.Registry, r.CC, "ipv4", r.Start.String(),
		strconv.FormatUint(uint64(r.Count), 10), r.Date, r.Status, r.OrgID,
	}, "|")
}

// ParseLine parses one delegation line. Comment lines (#...), summary
// lines, and non-ipv4 records return ok=false with a nil error.
func ParseLine(line string) (Record, bool, error) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return Record{}, false, nil
	}
	f := strings.Split(line, "|")
	if len(f) >= 6 && f[5] == "summary" {
		return Record{}, false, nil
	}
	if len(f) < 7 {
		return Record{}, false, fmt.Errorf("rir: short line %q", line)
	}
	if f[2] != "ipv4" {
		return Record{}, false, nil
	}
	start, err := netx.ParseAddr(f[3])
	if err != nil {
		return Record{}, false, fmt.Errorf("rir: bad start in %q: %v", line, err)
	}
	count, err := strconv.ParseUint(f[4], 10, 32)
	if err != nil || count == 0 {
		return Record{}, false, fmt.Errorf("rir: bad count in %q", line)
	}
	rec := Record{
		Registry: f[0], CC: f[1], Start: start, Count: uint32(count),
		Date: f[5], Status: f[6],
	}
	if len(f) >= 8 {
		rec.OrgID = f[7]
	}
	return rec, true, nil
}

// DB is a queryable set of delegations.
type DB struct {
	recs []Record // sorted by Start
	// orgRecs groups records by organization, in Start order — built once
	// in normalize so per-org scans (§5.4.1's positional rule walks the
	// delegations of each host org per matching hop) share one slice
	// instead of copying the whole table.
	orgRecs map[string][]Record
}

// FromNetwork builds the delegation dataset the synthetic world publishes.
func FromNetwork(net *topo.Network) *DB {
	db := &DB{}
	for _, d := range net.Delegations {
		db.recs = append(db.recs, Record{
			Registry: "arin", CC: "US",
			Start: d.Prefix.First(), Count: uint32(d.Prefix.NumAddrs()),
			Date: "20160101", Status: "allocated", OrgID: d.OrgID,
		})
	}
	db.normalize()
	return db
}

// Parse reads delegation lines from r, skipping comments and summaries.
func Parse(r io.Reader) (*DB, error) {
	db := &DB{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		rec, ok, err := ParseLine(sc.Text())
		if err != nil {
			return nil, err
		}
		if ok {
			db.recs = append(db.recs, rec)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	db.normalize()
	return db, nil
}

func (db *DB) normalize() {
	sort.Slice(db.recs, func(i, j int) bool {
		if db.recs[i].Start != db.recs[j].Start {
			return db.recs[i].Start < db.recs[j].Start
		}
		// Smaller (more specific) delegations after larger ones so that
		// OrgOf's scan prefers the most specific covering record.
		return db.recs[i].Count > db.recs[j].Count
	})
	db.orgRecs = make(map[string][]Record)
	for _, r := range db.recs {
		db.orgRecs[r.OrgID] = append(db.orgRecs[r.OrgID], r)
	}
}

// WriteTo serializes the dataset.
func (db *DB) WriteTo(w io.Writer) (int64, error) {
	var n int64
	for _, r := range db.recs {
		m, err := fmt.Fprintln(w, r.Line())
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// Len returns the number of delegation records.
func (db *DB) Len() int { return len(db.recs) }

// OrgOf returns the organization holding the most specific delegation
// covering addr.
func (db *DB) OrgOf(addr netx.Addr) (string, bool) {
	// Binary search to the last record with Start <= addr, then scan
	// backwards through covering candidates keeping the smallest range.
	i := sort.Search(len(db.recs), func(i int) bool { return db.recs[i].Start > addr })
	bestCount := uint32(0)
	org := ""
	found := false
	for j := i - 1; j >= 0; j-- {
		r := db.recs[j]
		if r.End() >= addr {
			if !found || r.Count < bestCount {
				org, bestCount, found = r.OrgID, r.Count, true
			}
		}
		// Records start at or before addr; once ranges cannot reach addr
		// anymore we can stop: ranges are bounded by the largest Count.
		if addr-r.Start >= netx.Addr(maxCount) {
			break
		}
	}
	return org, found
}

// maxCount bounds the backward scan in OrgOf; delegations larger than a /8
// do not occur.
const maxCount = 1 << 24

// Records returns a copy of all records.
func (db *DB) Records() []Record {
	return append([]Record(nil), db.recs...)
}

// OrgRecords returns the delegations held by org, in Start order. The
// returned slice is shared and must not be mutated; unlike Records it
// performs no copy, so callers may consult it per address without turning
// the delegation table into the process's top allocator.
func (db *DB) OrgRecords(org string) []Record { return db.orgRecs[org] }

// SameOrg reports whether two addresses are delegated to one organization.
func (db *DB) SameOrg(a, b netx.Addr) bool {
	oa, oka := db.OrgOf(a)
	ob, okb := db.OrgOf(b)
	return oka && okb && oa == ob
}
