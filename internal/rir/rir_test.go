package rir

import (
	"bytes"
	"strings"
	"testing"

	"bdrmap/internal/netx"
	"bdrmap/internal/topo"
)

func TestParseLine(t *testing.T) {
	rec, ok, err := ParseLine("arin|US|ipv4|192.0.2.0|256|20160101|allocated|ORG-1")
	if err != nil || !ok {
		t.Fatalf("err=%v ok=%v", err, ok)
	}
	if rec.Start != netx.MustParseAddr("192.0.2.0") || rec.Count != 256 || rec.OrgID != "ORG-1" {
		t.Fatalf("rec = %+v", rec)
	}
	if rec.End() != netx.MustParseAddr("192.0.2.255") {
		t.Fatalf("End = %v", rec.End())
	}
}

func TestParseLineSkips(t *testing.T) {
	for _, line := range []string{
		"",
		"# comment",
		"arin|US|ipv6|2001:db8::|32|20160101|allocated|ORG",
		"arin|*|ipv4|*|1000|summary",
	} {
		_, ok, err := ParseLine(line)
		if err != nil || ok {
			t.Errorf("line %q: ok=%v err=%v, want skip", line, ok, err)
		}
	}
}

func TestParseLineErrors(t *testing.T) {
	for _, line := range []string{
		"arin|US|ipv4",
		"arin|US|ipv4|notanip|256|20160101|allocated|ORG",
		"arin|US|ipv4|192.0.2.0|zero|20160101|allocated|ORG",
		"arin|US|ipv4|192.0.2.0|0|20160101|allocated|ORG",
	} {
		if _, _, err := ParseLine(line); err == nil {
			t.Errorf("line %q: expected error", line)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	n := topo.Generate(topo.TinyProfile(), 1)
	db := FromNetwork(n)
	if db.Len() == 0 {
		t.Fatal("empty delegation DB")
	}
	var buf bytes.Buffer
	if _, err := db.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Parse(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if db2.Len() != db.Len() {
		t.Fatalf("round trip lost records: %d -> %d", db.Len(), db2.Len())
	}
	recs, recs2 := db.Records(), db2.Records()
	for i := range recs {
		if recs[i] != recs2[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, recs[i], recs2[i])
		}
	}
}

func TestOrgOfMostSpecific(t *testing.T) {
	db, err := Parse(strings.NewReader(strings.Join([]string{
		"arin|US|ipv4|10.0.0.0|65536|20160101|allocated|ORG-BIG",
		"arin|US|ipv4|10.0.2.0|256|20160101|allocated|ORG-SMALL",
	}, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	if org, ok := db.OrgOf(netx.MustParseAddr("10.0.2.5")); !ok || org != "ORG-SMALL" {
		t.Fatalf("got %q %v, want ORG-SMALL", org, ok)
	}
	if org, ok := db.OrgOf(netx.MustParseAddr("10.0.3.5")); !ok || org != "ORG-BIG" {
		t.Fatalf("got %q %v, want ORG-BIG", org, ok)
	}
	if _, ok := db.OrgOf(netx.MustParseAddr("11.0.0.1")); ok {
		t.Fatal("addr outside any delegation should miss")
	}
}

func TestSameOrg(t *testing.T) {
	db, err := Parse(strings.NewReader(strings.Join([]string{
		"arin|US|ipv4|10.0.0.0|256|20160101|allocated|ORG-A",
		"arin|US|ipv4|10.0.1.0|256|20160101|allocated|ORG-A",
		"arin|US|ipv4|10.0.2.0|256|20160101|allocated|ORG-B",
	}, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	a1 := netx.MustParseAddr("10.0.0.9")
	a2 := netx.MustParseAddr("10.0.1.9")
	b := netx.MustParseAddr("10.0.2.9")
	if !db.SameOrg(a1, a2) {
		t.Error("same-org addresses reported different")
	}
	if db.SameOrg(a1, b) {
		t.Error("different-org addresses reported same")
	}
}

func TestNetworkDelegationsQueryable(t *testing.T) {
	n := topo.Generate(topo.TinyProfile(), 4)
	db := FromNetwork(n)
	// The host's unannounced infra block must resolve to the host org.
	host := n.ASes[n.HostASN]
	if org, ok := db.OrgOf(host.Infra.First() + 5); !ok || org != host.Org {
		t.Fatalf("host infra org = %q %v, want %q", org, ok, host.Org)
	}
}

func TestOrgRecordsMatchesRecords(t *testing.T) {
	db, err := Parse(strings.NewReader(strings.Join([]string{
		"arin|US|ipv4|10.0.0.0|256|20160101|allocated|ORG-A",
		"arin|US|ipv4|10.0.2.0|256|20160101|allocated|ORG-B",
		"arin|US|ipv4|10.0.1.0|256|20160101|allocated|ORG-A",
	}, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"ORG-A": 2, "ORG-B": 1}
	for org, n := range want {
		recs := db.OrgRecords(org)
		if len(recs) != n {
			t.Fatalf("OrgRecords(%q) = %d records, want %d", org, len(recs), n)
		}
		for i, r := range recs {
			if r.OrgID != org {
				t.Fatalf("OrgRecords(%q)[%d] belongs to %q", org, i, r.OrgID)
			}
			if i > 0 && recs[i-1].Start > r.Start {
				t.Fatalf("OrgRecords(%q) not in Start order", org)
			}
		}
	}
	if got := db.OrgRecords("ORG-MISSING"); got != nil {
		t.Fatalf("OrgRecords of unknown org = %v, want nil", got)
	}
	// Grouped records are exactly a partition of Records().
	total := 0
	for org := range want {
		total += len(db.OrgRecords(org))
	}
	if total != db.Len() {
		t.Fatalf("org groups cover %d records, table has %d", total, db.Len())
	}
}
