package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(StageProbe, "trace", "x", 0)
	tr.Merge(NewTracer(4))
	if tr.Enabled() {
		t.Fatal("nil tracer reports Enabled")
	}
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer retained state")
	}
	if tr.Fingerprint() != FingerprintEvents(nil) {
		t.Fatal("nil tracer fingerprint differs from empty")
	}
}

func TestTracerSequencesAndAttrs(t *testing.T) {
	tr := NewTracer(16)
	tr.Emit(StageCore, "decision", "10.0.0.1", 0, KV("heuristic", "ip-as"), KV("hop", 3))
	tr.Emit(StageAlias, "ally", "a|b", 7, Attr{K: "~ipids", V: "1,2,3"})
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("Len = %d, want 2", len(evs))
	}
	if evs[0].Seq != 0 || evs[1].Seq != 1 {
		t.Fatalf("bad seqs: %d, %d", evs[0].Seq, evs[1].Seq)
	}
	if evs[0].Attr("hop") != "3" {
		t.Fatalf("KV int formatting: %q", evs[0].Attr("hop"))
	}
	// Volatile attrs are addressable by both marked and unmarked name.
	if evs[1].Attr("~ipids") != "1,2,3" || evs[1].Attr("ipids") != "1,2,3" {
		t.Fatalf("volatile attr lookup failed: %+v", evs[1].Attrs)
	}
	if evs[0].Attr("absent") != "" {
		t.Fatal("absent attr must be empty")
	}
}

func TestTracerRingDropsOldest(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Emit(StageProbe, "trace", string(rune('a'+i)), int64(i))
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", tr.Dropped())
	}
	evs := tr.Events()
	if evs[0].Subject != "c" || evs[2].Subject != "e" {
		t.Fatalf("ring kept wrong window: %v..%v", evs[0].Subject, evs[2].Subject)
	}
	// Sequence numbers keep counting across drops.
	if evs[2].Seq != 4 {
		t.Fatalf("last seq = %d, want 4", evs[2].Seq)
	}
}

func TestTracerMergeResequences(t *testing.T) {
	a := NewTracer(8)
	a.Emit(StageProbe, "target", "AS1", 0)
	f1 := NewTracer(8)
	f1.Emit(StageProbe, "trace", "d1", 10)
	f2 := NewTracer(2)
	for i := 0; i < 3; i++ { // overflows: one drop carried over
		f2.Emit(StageProbe, "trace", "d2", int64(i))
	}
	a.Merge(f1)
	a.Merge(f2)
	evs := a.Events()
	for i, ev := range evs {
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d after merge", i, ev.Seq)
		}
	}
	if a.Dropped() != 1 {
		t.Fatalf("merged drop count = %d, want 1", a.Dropped())
	}
	// Fragment SimNS survives the merge untouched.
	if evs[1].SimNS != 10 {
		t.Fatalf("merge rewrote SimNS: %d", evs[1].SimNS)
	}
}

func TestTracerJSONLRoundTrip(t *testing.T) {
	tr := NewTracer(8)
	tr.Emit(StageCore, "decision", "10.0.0.1", 0, KV("owner", "AS7"), Attr{K: "~ipids", V: "9,9"})
	tr.Emit(StageProbe, "stopset-hit", "1.2.3.4", 42)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(strings.NewReader(buf.String() + "\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("round trip lost events: %d", len(back))
	}
	if FingerprintEvents(back) != tr.Fingerprint() {
		t.Fatal("fingerprint changed across JSONL round trip")
	}
	if back[0].Attr("ipids") != "9,9" {
		t.Fatal("volatile attr lost in JSONL")
	}
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Fatal("malformed line must error")
	}
}

func TestFingerprintExcludesVolatileAttrs(t *testing.T) {
	mk := func(ids string) *Tracer {
		tr := NewTracer(4)
		tr.Emit(StageAlias, "ally", "a|b", 5,
			KV("verdict", "alias"), Attr{K: "~ipids", V: ids})
		return tr
	}
	if mk("1,2,3").Fingerprint() != mk("7,8,9").Fingerprint() {
		t.Fatal("volatile attr leaked into fingerprint")
	}
	// Non-volatile differences must change it.
	other := NewTracer(4)
	other.Emit(StageAlias, "ally", "a|b", 5,
		KV("verdict", "not-alias"), Attr{K: "~ipids", V: "1,2,3"})
	if mk("1,2,3").Fingerprint() == other.Fingerprint() {
		t.Fatal("fingerprint ignored a verdict change")
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Emit(StageProbe, "trace", "x", int64(i))
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 1600 {
		t.Fatalf("Len = %d, want 1600", tr.Len())
	}
	seen := make(map[uint64]bool)
	for _, ev := range tr.Events() {
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}

func TestTracerSummary(t *testing.T) {
	tr := NewTracer(2)
	tr.Emit(StageProbe, "trace", "a", 0)
	tr.Emit(StageProbe, "trace", "b", 0)
	tr.Emit(StageCore, "decision", "c", 0)
	s := tr.Summary()
	for _, want := range []string{"probe.trace", "core.decision", "(dropped)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Summary missing %q:\n%s", want, s)
		}
	}
	if tr.CountByKind()["probe.trace"] != 1 { // one overwritten by the ring
		t.Fatalf("CountByKind = %v", tr.CountByKind())
	}
}
