package obs

import "testing"

func TestHistSnapQuantile(t *testing.T) {
	// Edges 10/20/40; observations: 2 in [0,10), 2 in [10,20), 1 overflow.
	h := HistSnap{Edges: []int64{10, 20, 40}, Counts: []int64{2, 2, 0, 1}, Count: 5}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 0},
		{0.4, 10},   // rank 2 exhausts the first bucket exactly
		{0.6, 15},   // rank 3 interpolates halfway through [10,20)
		{1, 40},     // rank in the overflow bucket clamps to the last edge
		{-1, 0},     // q clamped low
		{2, 40},     // q clamped high
		{0.2, 5},    // rank 1 interpolates halfway through [0,10)
		{0.999, 40}, // still overflow
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestHistSnapQuantileEmpty(t *testing.T) {
	if got := (HistSnap{}).Quantile(0.99); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	if got := (Snapshot{}).Quantile("absent", 0.5); got != 0 {
		t.Errorf("absent histogram Quantile = %v, want 0", got)
	}
}

func TestSnapshotQuantileFromRegistry(t *testing.T) {
	r := New()
	hist := r.Histogram("lat", []int64{10, 100, 1000})
	for _, v := range []int64{5, 5, 50, 50, 500, 500, 5000, 5000} {
		hist.Observe(v)
	}
	snap := r.Snapshot()
	if p50 := snap.Quantile("lat", 0.5); p50 <= 0 || p50 > 100 {
		t.Errorf("p50 = %v, want within (0,100]", p50)
	}
	if p99 := snap.Quantile("lat", 0.99); p99 != 1000 {
		t.Errorf("p99 = %v, want clamped to last edge 1000", p99)
	}
	if snap.Quantile("lat", 0.5) >= snap.Quantile("lat", 0.99) {
		t.Error("quantiles not monotone")
	}
}
