package obs

import (
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"probe.traceroutes":    "bdrmap_probe_traceroutes",
		"core.heur.fire.ip-as": "bdrmap_core_heur_fire_ip_as",
		"a..b--c":              "bdrmap_a_b_c", // runs collapse to one '_'
		"ok_name:sub":          "bdrmap_ok_name:sub",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

// promLine matches the exposition text format (0.0.4): comments or
// `name{labels} value`.
var promLine = regexp.MustCompile(
	`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9]+)$`)

func buildPromSnapshot() Snapshot {
	r := New()
	r.Add("probe.traceroutes", 12)
	r.Inc("core.heur.fire.ip-as")
	r.Max("driver.sim_clock_ns").Observe(99)
	h := r.Histogram("probe.hops", []int64{2, 4})
	h.Observe(1) // le 2
	h.Observe(3) // le 4
	h.Observe(9) // overflow
	sp := r.StartStage("core.infer")
	sp.End()
	return r.Snapshot()
}

func TestPrometheusTextFormatParses(t *testing.T) {
	text := buildPromSnapshot().Prometheus()
	if text == "" {
		t.Fatal("empty exposition")
	}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if !promLine.MatchString(line) {
			t.Fatalf("line violates text format 0.0.4: %q", line)
		}
	}
	for _, want := range []string{
		"bdrmap_probe_traceroutes_total 12",
		"bdrmap_core_heur_fire_ip_as_total 1",
		"bdrmap_driver_sim_clock_ns_max 99",
		"bdrmap_stage_core_infer_runs_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestPrometheusHistogramCumulative(t *testing.T) {
	text := buildPromSnapshot().Prometheus()
	for _, want := range []string{
		`bdrmap_probe_hops_bucket{le="2"} 1`,
		`bdrmap_probe_hops_bucket{le="4"} 2`,
		`bdrmap_probe_hops_bucket{le="+Inf"} 3`,
		"bdrmap_probe_hops_sum 13",
		"bdrmap_probe_hops_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("histogram exposition missing %q:\n%s", want, text)
		}
	}
}

func TestPromHandler(t *testing.T) {
	r := New()
	r.Inc("probe.traceroutes")
	srv := httptest.NewServer(PromHandler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "bdrmap_probe_traceroutes_total 1") {
		t.Fatalf("handler body missing counter:\n%s", buf[:n])
	}
}
