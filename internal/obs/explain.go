package obs

import (
	"fmt"
	"strings"
)

// Explain renders a human-readable evidence chain for border decisions from
// a trace event stream (bdrmap -explain). The query is an interface
// address, a router's canonical address, or an AS name ("AS7"); every core
// decision mentioning it is rendered with its full provenance record,
// followed by the alias and probe events that witnessed the same
// addresses — the measurement evidence the decision rests on.

// heurSection maps heuristic tags to the paper's §5.4 rule they implement
// (the rows of Table 1).
var heurSection = map[string]string{
	"host":             "§5.4.1 step 1.2",
	"multihomed-to-vp": "§5.4.1 step 1.1",
	"firewall":         "§5.4.2",
	"unrouted":         "§5.4.3",
	"onenet":           "§5.4.4",
	"third-party":      "§5.4.5 steps 5.1/5.2",
	"as-relationship":  "§5.4.5 step 5.3",
	"missing-customer": "§5.4.5 step 5.4",
	"hidden-peer":      "§5.4.5 step 5.5",
	"count":            "§5.4.6 step 6.1",
	"ip-as":            "§5.4.6 fallback",
	"ixp":              "IXP LAN attribution",
	"silent":           "§5.4.8 step 8.1",
	"other-icmp":       "§5.4.8 step 8.2",
}

// HeurSection returns the paper section implementing a heuristic tag.
func HeurSection(tag string) string {
	if s, ok := heurSection[tag]; ok {
		return s
	}
	return "(unknown rule)"
}

// maxSupporting bounds how many supporting events Explain prints per
// decision and category; the rest are summarized as a count.
const maxSupporting = 8

// Explain renders the evidence chains for every core decision matching
// query. It returns a "no decision" message when nothing matches.
func Explain(events []Event, query string) string {
	var b strings.Builder
	n := 0
	for _, ev := range events {
		if ev.Stage != StageCore || ev.Kind != "decision" {
			continue
		}
		if !decisionMatches(ev, query) {
			continue
		}
		if n > 0 {
			b.WriteString("\n")
		}
		n++
		renderDecision(&b, events, ev)
	}
	if n == 0 {
		fmt.Fprintf(&b, "no border decision found for %q (%d trace events scanned)\n",
			query, len(events))
		fmt.Fprintf(&b, "query by interface address (e.g. 10.0.0.1) or AS name (e.g. AS7)\n")
	}
	return b.String()
}

// decisionMatches reports whether a core decision event concerns query:
// its subject, any of its addresses, or its owner AS.
func decisionMatches(ev Event, query string) bool {
	if ev.Subject == query {
		return true
	}
	for _, a := range strings.Split(ev.Attr("addrs"), ",") {
		if a == query {
			return true
		}
	}
	return ev.Attr("owner") == query
}

// renderDecision prints one decision's provenance record plus the alias
// and probe events witnessing the same addresses.
func renderDecision(b *strings.Builder, events []Event, d Event) {
	heur := d.Attr("heuristic")
	fmt.Fprintf(b, "router %s — owner %s via %s (%s)\n",
		d.Subject, d.Attr("owner"), heur, HeurSection(heur))

	// The fixed provenance fields, in a stable order.
	row := func(label, v string) {
		if v != "" {
			fmt.Fprintf(b, "  %-14s %s\n", label, v)
		}
	}
	row("hop distance", d.Attr("hop"))
	row("address class", d.Attr("class"))
	row("addresses", d.Attr("addrs"))
	row("origin AS", d.Attr("origin_as"))
	row("relationship", d.Attr("rel"))
	row("declined", d.Attr("declined"))
	// Any remaining evidence the firing heuristic attached.
	fixed := map[string]bool{
		"heuristic": true, "owner": true, "hop": true, "class": true,
		"addrs": true, "origin_as": true, "rel": true, "declined": true,
	}
	for _, a := range d.Attrs {
		if !fixed[a.Name()] {
			row(a.Name(), a.V)
		}
	}

	addrs := make(map[string]bool)
	for _, a := range strings.Split(d.Attr("addrs"), ",") {
		if a != "" {
			addrs[a] = true
		}
	}
	renderSupport(b, events, addrs, StageAlias, "alias evidence")
	renderSupport(b, events, addrs, StageProbe, "probe evidence")
}

// renderSupport prints the events of one stage that mention any of the
// decision's addresses.
func renderSupport(b *strings.Builder, events []Event, addrs map[string]bool, stage, label string) {
	shown, total := 0, 0
	for _, ev := range events {
		if ev.Stage != stage || !mentionsAny(ev, addrs) {
			continue
		}
		total++
		if shown == 0 {
			fmt.Fprintf(b, "  %s:\n", label)
		}
		if shown < maxSupporting {
			fmt.Fprintf(b, "    [seq %d] %s %s%s\n", ev.Seq, ev.Kind, ev.Subject, renderAttrs(ev))
			shown++
		}
	}
	if total > shown {
		fmt.Fprintf(b, "    (+%d more)\n", total-shown)
	}
}

// renderAttrs formats an event's attrs as " k=v k=v".
func renderAttrs(ev Event) string {
	var b strings.Builder
	for _, a := range ev.Attrs {
		fmt.Fprintf(&b, " %s=%s", a.K, a.V)
	}
	return b.String()
}

// mentionsAny reports whether an event's subject or attr values contain
// any of the given address tokens.
func mentionsAny(ev Event, addrs map[string]bool) bool {
	for _, tok := range strings.FieldsFunc(ev.Subject, isSep) {
		if addrs[tok] {
			return true
		}
	}
	for _, a := range ev.Attrs {
		for _, tok := range strings.FieldsFunc(a.V, isSep) {
			if addrs[tok] {
				return true
			}
		}
	}
	return false
}

func isSep(r rune) bool {
	return r == ',' || r == ' ' || r == '|' || r == ':'
}
