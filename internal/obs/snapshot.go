package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"
)

// HistSnap is a point-in-time copy of one histogram.
type HistSnap struct {
	Edges  []int64 `json:"edges"`
	Counts []int64 `json:"counts"` // len(Edges)+1; last bucket is overflow
	Sum    int64   `json:"sum"`
	Count  int64   `json:"count"`
}

// StageSnap is a point-in-time copy of one stage timer. WallNS and
// MaxWallNS are wall-clock and therefore nondeterministic; everything else
// is reproducible for a fixed seed.
type StageSnap struct {
	Count     int64 `json:"count"`
	WallNS    int64 `json:"wall_ns"`
	SimNS     int64 `json:"sim_ns"`
	MaxWallNS int64 `json:"max_wall_ns"`
	MaxSimNS  int64 `json:"max_sim_ns"`
}

// Snapshot is a point-in-time copy of a registry, suitable for JSON
// encoding, table rendering, and cross-run comparison.
type Snapshot struct {
	Counters   map[string]int64     `json:"counters"`
	Maxes      map[string]int64     `json:"maxes,omitempty"`
	Gauges     map[string]int64     `json:"gauges,omitempty"`
	Histograms map[string]HistSnap  `json:"histograms,omitempty"`
	Stages     map[string]StageSnap `json:"stages,omitempty"`
}

// Snapshot copies the registry's current state. On a nil registry it
// returns an empty (but usable) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Maxes:      map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnap{},
		Stages:     map[string]StageSnap{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, m := range r.maxes {
		s.Maxes[name] = m.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		hs := HistSnap{
			Edges:  append([]int64(nil), h.edges...),
			Counts: make([]int64, len(h.buckets)),
			Sum:    h.sum.Load(),
			Count:  h.count.Load(),
		}
		for i := range h.buckets {
			hs.Counts[i] = h.buckets[i].Load()
		}
		s.Histograms[name] = hs
	}
	for name, st := range r.stages {
		s.Stages[name] = StageSnap{
			Count:     st.count.Load(),
			WallNS:    st.wallNS.Load(),
			SimNS:     st.simNS.Load(),
			MaxWallNS: st.maxWall.Load(),
			MaxSimNS:  st.maxSim.Load(),
		}
	}
	return s
}

// Counter returns a named counter's value (0 when absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Stage returns a named stage timer's snapshot (zero value when absent),
// mirroring Counter so callers need not poke the Stages map directly.
func (s Snapshot) Stage(name string) StageSnap { return s.Stages[name] }

// Histogram returns a named histogram's snapshot (zero value when absent),
// mirroring Counter and Stage.
func (s Snapshot) Histogram(name string) HistSnap { return s.Histograms[name] }

// Gauge returns a named gauge's last value (0 when absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Quantile estimates the q-quantile (0 <= q <= 1, clamped) of the
// histogram from its bucket counts, interpolating linearly within the
// containing bucket. The first bucket interpolates from zero; values in
// the overflow bucket report the last edge (the histogram records no
// upper bound past it). An empty histogram reports 0.
func (h HistSnap) Quantile(q float64) float64 {
	if h.Count <= 0 || len(h.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var seen int64
	lo := float64(0)
	for i, c := range h.Counts {
		if c == 0 {
			if i < len(h.Edges) {
				lo = float64(h.Edges[i])
			}
			continue
		}
		hi := lo
		if i < len(h.Edges) {
			hi = float64(h.Edges[i])
		} else {
			// Overflow bucket: no upper bound recorded; clamp to the
			// last edge rather than inventing one.
			return float64(h.Edges[len(h.Edges)-1])
		}
		if float64(seen+c) >= rank {
			frac := (rank - float64(seen)) / float64(c)
			return lo + (hi-lo)*frac
		}
		seen += c
		lo = hi
	}
	return lo
}

// Quantile estimates the q-quantile of the named histogram (0 when the
// histogram is absent or empty).
func (s Snapshot) Quantile(name string, q float64) float64 {
	return s.Histograms[name].Quantile(q)
}

// SumPrefix sums every counter whose name starts with prefix — e.g.
// SumPrefix("remote.retry.") totals the recovery-path counters.
func (s Snapshot) SumPrefix(prefix string) int64 {
	var total int64
	for name, v := range s.Counters {
		if strings.HasPrefix(name, prefix) {
			total += v
		}
	}
	return total
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// nameWidth returns a column width fitting every metric name in the
// snapshot, so all four sections of Format align even when one section
// holds the longest name (e.g. core.heur.fire.* counters).
func (s Snapshot) nameWidth() int {
	w := 0
	grow := func(k string) {
		if len(k) > w {
			w = len(k)
		}
	}
	for k := range s.Counters {
		grow(k)
	}
	for k := range s.Maxes {
		grow(k)
	}
	for k := range s.Gauges {
		grow(k)
	}
	for k := range s.Histograms {
		grow(k)
	}
	for k := range s.Stages {
		grow(k)
	}
	return w + 2
}

// Format renders the snapshot as a human-readable table, sorted by metric
// name within each section. All sections share one name-column width.
func (s Snapshot) Format() string {
	var b strings.Builder
	w := s.nameWidth()
	if len(s.Counters) > 0 {
		b.WriteString("counters:\n")
		for _, k := range sortedKeys(s.Counters) {
			fmt.Fprintf(&b, "  %-*s %d\n", w, k, s.Counters[k])
		}
	}
	if len(s.Maxes) > 0 {
		b.WriteString("maxes:\n")
		for _, k := range sortedKeys(s.Maxes) {
			fmt.Fprintf(&b, "  %-*s %d\n", w, k, s.Maxes[k])
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("gauges:\n")
		for _, k := range sortedKeys(s.Gauges) {
			fmt.Fprintf(&b, "  %-*s %d\n", w, k, s.Gauges[k])
		}
	}
	if len(s.Histograms) > 0 {
		b.WriteString("histograms:\n")
		for _, k := range sortedKeys(s.Histograms) {
			h := s.Histograms[k]
			mean := float64(0)
			if h.Count > 0 {
				mean = float64(h.Sum) / float64(h.Count)
			}
			fmt.Fprintf(&b, "  %-*s count=%d mean=%.1f p50=%.1f p99=%.1f buckets(le %v)=%v\n",
				w, k, h.Count, mean, h.Quantile(0.50), h.Quantile(0.99), h.Edges, h.Counts)
		}
	}
	if len(s.Stages) > 0 {
		b.WriteString("stages:\n")
		for _, k := range sortedKeys(s.Stages) {
			st := s.Stages[k]
			fmt.Fprintf(&b, "  %-*s runs=%d wall=%v sim=%v\n",
				w, k, st.Count,
				time.Duration(st.WallNS).Round(time.Microsecond),
				time.Duration(st.SimNS).Round(time.Millisecond))
		}
	}
	if b.Len() == 0 {
		return "(no metrics recorded)\n"
	}
	return b.String()
}

// Fingerprint hashes the deterministic portion of the snapshot: counters,
// maxes, histograms, and the per-stage run counts and simulated times.
// Wall-clock stage timings are excluded, and so are gauges — they carry
// live process state (the runtime self-sampler's heap/GC/goroutine
// readings), not measurement — so for a fixed seed the fingerprint is
// identical across repeated runs.
func (s Snapshot) Fingerprint() string {
	var b strings.Builder
	for _, k := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "c %s %d\n", k, s.Counters[k])
	}
	for _, k := range sortedKeys(s.Maxes) {
		fmt.Fprintf(&b, "m %s %d\n", k, s.Maxes[k])
	}
	for _, k := range sortedKeys(s.Histograms) {
		h := s.Histograms[k]
		fmt.Fprintf(&b, "h %s %d %d %v %v\n", k, h.Count, h.Sum, h.Edges, h.Counts)
	}
	for _, k := range sortedKeys(s.Stages) {
		st := s.Stages[k]
		fmt.Fprintf(&b, "s %s %d %d %d\n", k, st.Count, st.SimNS, st.MaxSimNS)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// Handler serves the registry as JSON (the bdrmapd metrics endpoint).
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}
