package obs

import (
	"fmt"
	"net/http"
	"strings"
)

// Prometheus text-exposition view of a Registry. The repo's metric names
// use dots (e.g. "core.heur.fire.as-rel"); Prometheus names must match
// [a-zA-Z_:][a-zA-Z0-9_:]* so every name is prefixed with "bdrmap_" and
// sanitized. Counters and maxes map to counter/gauge; histograms map to
// the native histogram type with cumulative le buckets; stages expand into
// per-field gauges (count, wall/sim totals and maxes).

// PromName sanitizes a repo metric name into a Prometheus metric name:
// "bdrmap_" prefix, every run of non-[a-zA-Z0-9_:] collapsed to '_'.
func PromName(name string) string {
	var b strings.Builder
	b.WriteString("bdrmap_")
	prev := false
	for _, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
			prev = false
		} else if !prev {
			b.WriteByte('_')
			prev = true
		}
	}
	return b.String()
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4), deterministically ordered by metric name.
func (s Snapshot) WritePrometheus(b *strings.Builder) {
	for _, k := range sortedKeys(s.Counters) {
		n := PromName(k) + "_total"
		fmt.Fprintf(b, "# HELP %s counter %q\n# TYPE %s counter\n%s %d\n", n, k, n, n, s.Counters[k])
	}
	for _, k := range sortedKeys(s.Maxes) {
		n := PromName(k) + "_max"
		fmt.Fprintf(b, "# HELP %s max gauge %q\n# TYPE %s gauge\n%s %d\n", n, k, n, n, s.Maxes[k])
	}
	for _, k := range sortedKeys(s.Gauges) {
		n := PromName(k)
		fmt.Fprintf(b, "# HELP %s gauge %q\n# TYPE %s gauge\n%s %d\n", n, k, n, n, s.Gauges[k])
	}
	for _, k := range sortedKeys(s.Histograms) {
		h := s.Histograms[k]
		n := PromName(k)
		fmt.Fprintf(b, "# HELP %s histogram %q\n# TYPE %s histogram\n", n, k, n)
		cum := int64(0)
		for i, edge := range h.Edges {
			cum += h.Counts[i]
			fmt.Fprintf(b, "%s_bucket{le=\"%d\"} %d\n", n, edge, cum)
		}
		if len(h.Counts) > len(h.Edges) {
			cum += h.Counts[len(h.Edges)]
		}
		fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", n, cum)
		fmt.Fprintf(b, "%s_sum %d\n", n, h.Sum)
		fmt.Fprintf(b, "%s_count %d\n", n, h.Count)
	}
	for _, k := range sortedKeys(s.Stages) {
		st := s.Stages[k]
		n := PromName("stage." + k)
		fmt.Fprintf(b, "# HELP %s_runs_total stage %q run count\n# TYPE %s_runs_total counter\n%s_runs_total %d\n", n, k, n, n, st.Count)
		for _, f := range []struct {
			suffix string
			help   string
			v      int64
		}{
			{"wall_ns", "total wall-clock nanoseconds", st.WallNS},
			{"sim_ns", "total simulated nanoseconds", st.SimNS},
			{"max_wall_ns", "max wall-clock nanoseconds per run", st.MaxWallNS},
			{"max_sim_ns", "max simulated nanoseconds per run", st.MaxSimNS},
		} {
			fmt.Fprintf(b, "# HELP %s_%s stage %q %s\n# TYPE %s_%s gauge\n%s_%s %d\n",
				n, f.suffix, k, f.help, n, f.suffix, n, f.suffix, f.v)
		}
	}
}

// Prometheus returns the snapshot rendered as Prometheus exposition text.
func (s Snapshot) Prometheus() string {
	var b strings.Builder
	s.WritePrometheus(&b)
	return b.String()
}

// PromHandler serves the registry in the Prometheus text exposition
// format — the /metrics companion to the JSON Handler.
func PromHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(r.Snapshot().Prometheus()))
	})
}
