package obs

import (
	"runtime"
	"time"
)

// Runtime self-sampler: periodic snapshots of process health — heap,
// GC activity, goroutine count — recorded into last-value gauges so they
// ride the existing /metrics and /v1/status surfaces. Only the serving
// binaries (bdrmapd, mapload) start a sampler; library runs never do, so
// determinism fingerprints (which exclude gauges anyway) see no sampler
// noise.

// SampleRuntime records one sample of process health into reg's gauges.
// Exposed separately from the background sampler so tests and one-shot
// CLIs can sample synchronously.
func SampleRuntime(reg *Registry) {
	if reg == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	reg.Gauge("runtime.goroutines").Set(int64(runtime.NumGoroutine()))
	reg.Gauge("runtime.heap_alloc_bytes").Set(int64(ms.HeapAlloc))
	reg.Gauge("runtime.heap_sys_bytes").Set(int64(ms.HeapSys))
	reg.Gauge("runtime.heap_objects").Set(int64(ms.HeapObjects))
	reg.Gauge("runtime.next_gc_bytes").Set(int64(ms.NextGC))
	reg.Gauge("runtime.gc_runs").Set(int64(ms.NumGC))
	reg.Gauge("runtime.gc_pause_total_ns").Set(int64(ms.PauseTotalNs))
}

// RuntimeSampler is a background loop refreshing the runtime gauges.
type RuntimeSampler struct {
	stop chan struct{}
	done chan struct{}
}

// StartRuntimeSampler samples immediately, then every interval (<= 0
// selects one second) until Stop.
func StartRuntimeSampler(reg *Registry, every time.Duration) *RuntimeSampler {
	if every <= 0 {
		every = time.Second
	}
	SampleRuntime(reg)
	s := &RuntimeSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				SampleRuntime(reg)
			case <-s.stop:
				return
			}
		}
	}()
	return s
}

// Stop halts the sampler and waits for its goroutine to exit. Nil-safe.
func (s *RuntimeSampler) Stop() {
	if s == nil {
		return
	}
	close(s.stop)
	<-s.done
}
