package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Inc("a")
	r.Add("a", 5)
	r.Counter("a").Add(3)
	r.Max("m").Observe(7)
	r.Histogram("h", []int64{1, 2}).Observe(1)
	sp := r.StartStage("s")
	sp.AddSim(time.Second)
	sp.End()
	if got := r.Counter("a").Load(); got != 0 {
		t.Fatalf("nil counter Load = %d, want 0", got)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Stages) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
}

func TestCounterAndMax(t *testing.T) {
	r := New()
	r.Inc("x")
	r.Add("x", 4)
	if got := r.Counter("x").Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	m := r.Max("m")
	m.Observe(3)
	m.Observe(9)
	m.Observe(7)
	if got := m.Load(); got != 9 {
		t.Fatalf("max = %d, want 9", got)
	}
}

func TestMaxOrderIndependentUnderConcurrency(t *testing.T) {
	var m Max
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Observe(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if got := m.Load(); got != 7999 {
		t.Fatalf("max = %d, want 7999", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("h", []int64{2, 4, 8})
	for _, v := range []int64{1, 2, 3, 4, 5, 9, 100} {
		h.Observe(v)
	}
	snap := r.Snapshot().Histograms["h"]
	want := []int64{2, 2, 1, 2} // <=2: {1,2}, <=4: {3,4}, <=8: {5}, overflow: {9,100}
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, snap.Counts[i], w, snap.Counts)
		}
	}
	if snap.Count != 7 || snap.Sum != 124 {
		t.Fatalf("count=%d sum=%d, want 7/124", snap.Count, snap.Sum)
	}
}

func TestStageSpan(t *testing.T) {
	r := New()
	sp := r.StartStage("probe")
	sp.AddSim(3 * time.Second)
	sp.End()
	sp2 := r.StartStage("probe")
	sp2.AddSim(5 * time.Second)
	sp2.End()
	st := r.Snapshot().Stage("probe")
	if st.Count != 2 {
		t.Fatalf("stage count = %d, want 2", st.Count)
	}
	if st.SimNS != int64(8*time.Second) {
		t.Fatalf("stage sim = %d, want 8s", st.SimNS)
	}
	if st.MaxSimNS != int64(5*time.Second) {
		t.Fatalf("stage max sim = %d, want 5s", st.MaxSimNS)
	}
	if st.WallNS < 0 || st.MaxWallNS > st.WallNS {
		t.Fatalf("implausible wall timings: %+v", st)
	}
}

func TestFingerprintIgnoresWallClock(t *testing.T) {
	build := func(extraWall time.Duration) Snapshot {
		r := New()
		r.Add("c", 42)
		r.Max("m").Observe(7)
		r.Histogram("h", []int64{10}).Observe(3)
		sp := r.StartStage("s")
		sp.AddSim(time.Minute)
		time.Sleep(extraWall)
		sp.End()
		return r.Snapshot()
	}
	a, b := build(0), build(2*time.Millisecond)
	if a.Stage("s").WallNS == b.Stage("s").WallNS {
		t.Skip("wall clocks identical; cannot exercise the exclusion")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint changed with wall-clock time")
	}
	// But any deterministic change must change it.
	r := New()
	r.Add("c", 43)
	r.Max("m").Observe(7)
	r.Histogram("h", []int64{10}).Observe(3)
	sp := r.StartStage("s")
	sp.AddSim(time.Minute)
	sp.End()
	if r.Snapshot().Fingerprint() == a.Fingerprint() {
		t.Fatal("fingerprint ignored a counter change")
	}
}

func TestFormatAndJSON(t *testing.T) {
	r := New()
	r.Inc("probe.traceroutes")
	r.Max("driver.sim_clock_ns").Observe(12)
	out := r.Snapshot().Format()
	for _, want := range []string{"counters:", "probe.traceroutes", "maxes:", "driver.sim_clock_ns"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format() missing %q:\n%s", want, out)
		}
	}
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["probe.traceroutes"] != 1 {
		t.Fatalf("JSON round trip lost counter: %s", raw)
	}
	if (Snapshot{}).Format() == "" {
		t.Fatal("empty snapshot Format() must be non-empty")
	}
}

func TestConcurrentRegistryAccess(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Inc("shared")
				r.Max("m").Observe(int64(i))
				r.Histogram("h", []int64{100}).Observe(int64(i))
				sp := r.StartStage("st")
				sp.AddSim(time.Nanosecond)
				sp.End()
			}
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	if snap.Counters["shared"] != 4000 {
		t.Fatalf("shared counter = %d, want 4000", snap.Counters["shared"])
	}
	if snap.Stage("st").Count != 4000 {
		t.Fatalf("stage count = %d, want 4000", snap.Stage("st").Count)
	}
}

func TestSnapshotSumPrefix(t *testing.T) {
	r := New()
	r.Add("remote.retry.write", 3)
	r.Add("remote.retry.read", 2)
	r.Add("remote.resume", 7)
	s := r.Snapshot()
	if got := s.SumPrefix("remote.retry."); got != 5 {
		t.Fatalf("SumPrefix(remote.retry.) = %d, want 5", got)
	}
	if got := s.SumPrefix("remote."); got != 12 {
		t.Fatalf("SumPrefix(remote.) = %d, want 12", got)
	}
	if got := s.SumPrefix("nosuch."); got != 0 {
		t.Fatalf("SumPrefix(nosuch.) = %d, want 0", got)
	}
}
