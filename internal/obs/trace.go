package obs

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// This file is the decision-provenance half of the observability layer:
// where counters answer "how often did heuristic X fire", the Tracer
// answers "why did bdrmap attribute THIS router to AS Y" — the question
// the paper's validation story (§7) has operators asking. Every stage of
// the pipeline emits typed events carrying the evidence it consulted, and
// the resulting stream is deterministic for a fixed seed: sequence numbers
// and simulated timestamps only, wall clock excluded, so a Fingerprint of
// the trace pins byte-identical parallel runs exactly as the metrics
// fingerprint does.

// Trace stages. Events are grouped under the pipeline stage that emitted
// them; SimNS is relative to that stage's own timeline (the probe stage
// restarts it per target so the stream is worker-count-invariant).
const (
	StageProbe = "probe"
	StageAlias = "alias"
	StageCore  = "core"
)

// Attr is one key/value evidence item on an event. Keys beginning with
// '~' mark volatile evidence: faithfully exported and rendered, but
// excluded from Fingerprint. Raw IP-ID samples are the canonical example —
// their absolute values depend on how lane clocks interleave across worker
// counts even though the verdicts derived from them do not.
type Attr struct {
	K string `json:"k"`
	V string `json:"v"`
}

// KV builds an Attr with fmt-style default formatting of the value.
func KV(k string, v any) Attr {
	switch x := v.(type) {
	case string:
		return Attr{K: k, V: x}
	default:
		return Attr{K: k, V: fmt.Sprintf("%v", v)}
	}
}

// Volatile reports whether the attr is excluded from Fingerprint.
func (a Attr) Volatile() bool { return strings.HasPrefix(a.K, "~") }

// Name returns the attr key without the volatile marker.
func (a Attr) Name() string { return strings.TrimPrefix(a.K, "~") }

// Event is one structured provenance record.
type Event struct {
	// Seq is the event's position in the merged stream, assigned by the
	// tracer; deterministic for a fixed seed.
	Seq uint64 `json:"seq"`
	// SimNS is the simulated timestamp, relative to the emitting stage's
	// timeline (per-target for the probe stage). Wall clock never appears.
	SimNS int64 `json:"sim_ns"`
	// Stage is the pipeline stage (StageProbe, StageAlias, StageCore).
	Stage string `json:"stage"`
	// Kind is the event type within the stage, e.g. "trace", "pair",
	// "decision".
	Kind string `json:"kind"`
	// Subject identifies the entity the event is about: an address, an
	// "a|b" address pair, or a target AS.
	Subject string `json:"subject"`
	// Attrs is the ordered evidence list.
	Attrs []Attr `json:"attrs,omitempty"`
}

// Attr returns the value of the named attr ("" when absent). Volatile
// attrs are found under their unmarked name too.
func (e Event) Attr(k string) string {
	for _, a := range e.Attrs {
		if a.K == k || a.Name() == k {
			return a.V
		}
	}
	return ""
}

// Tracer is a bounded, concurrency-safe ring buffer of events. Like every
// obs primitive it is nil-safe: a component handed no tracer pays one nil
// check per event. When the buffer is full the oldest events are
// overwritten (flight-recorder semantics) and Dropped counts them.
type Tracer struct {
	mu      sync.Mutex
	limit   int
	seq     uint64
	dropped uint64
	buf     []Event // ring storage, len(buf) <= limit
	head    int     // index of the oldest event when len(buf) == limit
}

// DefaultTraceCap bounds the scenario-level tracer. The tiny profile emits
// a few thousand events; the Tier-1 profile tens of thousands.
const DefaultTraceCap = 1 << 17

// NewTracer creates a tracer retaining at most limit events (limit <= 0
// selects DefaultTraceCap).
func NewTracer(limit int) *Tracer {
	if limit <= 0 {
		limit = DefaultTraceCap
	}
	return &Tracer{limit: limit}
}

// Enabled reports whether events will be retained (false on nil).
func (t *Tracer) Enabled() bool { return t != nil }

// Emit appends one event. simNS is the stage-relative simulated timestamp.
func (t *Tracer) Emit(stage, kind, subject string, simNS int64, attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.push(Event{SimNS: simNS, Stage: stage, Kind: kind, Subject: subject, Attrs: attrs})
	t.mu.Unlock()
}

// push appends ev with the next sequence number. Caller holds t.mu.
func (t *Tracer) push(ev Event) {
	ev.Seq = t.seq
	t.seq++
	if len(t.buf) < t.limit {
		t.buf = append(t.buf, ev)
		return
	}
	t.buf[t.head] = ev
	t.head = (t.head + 1) % t.limit
	t.dropped++
}

// Merge appends every event of frag to t in frag order, re-assigning
// sequence numbers. The driver uses this to fold per-target fragment
// tracers into the run's stream in target order, making the merged stream
// independent of which worker finished first. Fragment drop counts are
// carried over.
func (t *Tracer) Merge(frag *Tracer) {
	if t == nil || frag == nil {
		return
	}
	evs := frag.Events()
	t.mu.Lock()
	for _, ev := range evs {
		t.push(ev)
	}
	t.dropped += frag.Dropped()
	t.mu.Unlock()
}

// Events returns a copy of the retained events in sequence order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.head:]...)
	out = append(out, t.buf[:t.head]...)
	return out
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Dropped returns how many events were overwritten by the ring bound.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// WriteJSONL exports the retained events as JSON Lines, one event per
// line, in sequence order.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range t.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a stream written by WriteJSONL. Blank lines are
// skipped; any other malformed line is an error.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(raw), &ev); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Fingerprint hashes the deterministic portion of the trace: sequence
// numbers, stage-relative simulated timestamps, stages, kinds, subjects,
// and every non-volatile attr. For a fixed seed the fingerprint is
// identical across repeated runs and across worker counts.
func (t *Tracer) Fingerprint() string { return FingerprintEvents(t.Events()) }

// FingerprintEvents is Fingerprint over an explicit event slice (e.g. one
// reloaded with ReadJSONL).
func FingerprintEvents(events []Event) string {
	h := sha256.New()
	for _, ev := range events {
		fmt.Fprintf(h, "e %d %d %s %s %s", ev.Seq, ev.SimNS, ev.Stage, ev.Kind, ev.Subject)
		for _, a := range ev.Attrs {
			if a.Volatile() {
				continue
			}
			fmt.Fprintf(h, " %s=%s", a.K, a.V)
		}
		io.WriteString(h, "\n")
	}
	return hex.EncodeToString(h.Sum(nil))
}

// CountByKind tallies retained events per "stage.kind" — a cheap summary
// for tests and the CLI.
func (t *Tracer) CountByKind() map[string]int {
	out := make(map[string]int)
	for _, ev := range t.Events() {
		out[ev.Stage+"."+ev.Kind]++
	}
	return out
}

// kindOrder renders CountByKind deterministically.
func kindOrder(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Summary renders a one-line-per-kind event census.
func (t *Tracer) Summary() string {
	m := t.CountByKind()
	var b strings.Builder
	for _, k := range kindOrder(m) {
		fmt.Fprintf(&b, "  %-24s %d\n", k, m[k])
	}
	if d := t.Dropped(); d > 0 {
		fmt.Fprintf(&b, "  %-24s %d\n", "(dropped)", d)
	}
	return b.String()
}
