// Package obs is the pipeline's observability substrate: a lightweight,
// dependency-free metrics layer the measurement driver, probe engine,
// inference core, and evaluation harness all report into. It provides
// atomic counters, atomic max gauges, histograms with fixed bucket edges,
// and stage timers that separate wall-clock time from simulated
// measurement time (the paper reports 12-48h of simulated probing per run,
// §5.3/§6; knowing where that budget goes is the operational story of the
// system).
//
// Every primitive is safe for concurrent use and safe on a nil receiver: a
// component handed no registry pays only a nil check per event, so the
// default is a cheap no-op. Snapshots are deterministic for a fixed seed
// except for wall-clock stage timings, which Fingerprint excludes.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
// The zero value is ready to use; all methods are nil-safe.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 on a nil counter).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Max is an atomic maximum gauge: Observe keeps the largest value seen.
// The zero value is ready to use; all methods are nil-safe. Because every
// update is a compare-and-swap race over the same monotone function, the
// final value is independent of the order concurrent writers run in —
// which is what makes it the right primitive for merging per-worker
// simulated clocks.
type Max struct{ v atomic.Int64 }

// Observe records v, keeping the maximum.
func (m *Max) Observe(v int64) {
	if m == nil {
		return
	}
	for {
		cur := m.v.Load()
		if v <= cur {
			return
		}
		if m.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the maximum observed so far (0 on a nil gauge).
func (m *Max) Load() int64 {
	if m == nil {
		return 0
	}
	return m.v.Load()
}

// Histogram counts observations into buckets with fixed upper-bound edges
// (bucket i holds values <= Edges[i]; one overflow bucket past the last
// edge). All methods are nil-safe.
type Histogram struct {
	edges   []int64
	buckets []atomic.Int64 // len(edges)+1
	sum     atomic.Int64
	count   atomic.Int64
}

func newHistogram(edges []int64) *Histogram {
	h := &Histogram{edges: append([]int64(nil), edges...)}
	h.buckets = make([]atomic.Int64, len(edges)+1)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.edges) && v > h.edges[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Gauge is an atomic last-value gauge: Set overwrites, Load reads. Unlike
// Counter it is not monotone — it carries live process state (heap bytes,
// goroutine count) sampled by the runtime self-sampler, which is why
// gauges are exported on /metrics and /v1/status but excluded from
// Snapshot.Fingerprint. The zero value is ready; all methods are nil-safe.
type Gauge struct{ v atomic.Int64 }

// Set records the current value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Load returns the last value set (0 on a nil gauge).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// stage aggregates timings for one named pipeline stage.
type stage struct {
	count   Counter
	wallNS  Counter // total wall-clock time, nanoseconds
	simNS   Counter // total simulated measurement time, nanoseconds
	maxWall Max
	maxSim  Max
}

// Span is one in-flight timing of a stage, created by StartStage. End
// records the wall-clock duration; AddSim attributes simulated measurement
// time to the same stage. A nil Span (from a nil Registry) is a no-op.
type Span struct {
	st    *stage
	start time.Time
	simNS int64
}

// AddSim attributes simulated measurement time to the span's stage.
func (s *Span) AddSim(d time.Duration) {
	if s != nil {
		s.simNS += int64(d)
	}
}

// End records the span: wall-clock since StartStage plus accumulated
// simulated time.
func (s *Span) End() {
	if s == nil {
		return
	}
	wall := int64(time.Since(s.start))
	s.st.count.Inc()
	s.st.wallNS.Add(wall)
	s.st.simNS.Add(s.simNS)
	s.st.maxWall.Observe(wall)
	s.st.maxSim.Observe(s.simNS)
}

// Registry holds named metrics. All methods are safe for concurrent use
// and safe on a nil receiver, which acts as a no-op registry: lookups
// return nil primitives whose methods do nothing.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	maxes    map[string]*Max
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	stages   map[string]*stage
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		maxes:    make(map[string]*Max),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		stages:   make(map[string]*stage),
	}
}

// Counter returns the named counter, creating it on first use. Resolve
// once and hold the pointer on hot paths.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Add increments the named counter by n.
func (r *Registry) Add(name string, n int64) { r.Counter(name).Add(n) }

// Inc increments the named counter by one.
func (r *Registry) Inc(name string) { r.Counter(name).Add(1) }

// Max returns the named maximum gauge, creating it on first use.
func (r *Registry) Max(name string) *Max {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.maxes[name]
	if m == nil {
		m = &Max{}
		r.maxes[name] = m
	}
	return m
}

// Gauge returns the named last-value gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// edges on first use (later calls reuse the original edges).
func (r *Registry) Histogram(name string, edges []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(edges)
		r.hists[name] = h
	}
	return h
}

// StartStage begins timing one execution of the named stage. The returned
// span must be End()ed; on a nil registry it is a nil no-op span.
func (r *Registry) StartStage(name string) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	st := r.stages[name]
	if st == nil {
		st = &stage{}
		r.stages[name] = st
	}
	r.mu.Unlock()
	return &Span{st: st, start: time.Now()}
}
