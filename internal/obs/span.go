package obs

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// This file is the duration half of the observability layer: where the
// Tracer answers "why did bdrmap decide X" with point events, the SpanLog
// answers "where did the run's time go" with a hierarchical timeline —
// run → round → vp → stage → target, plus the mapdb compile/publish spans
// and the remote agents' session spans. Every span carries its parent's
// ID, a simulated-time duration, and ordered attributes; like the trace
// stream, the deterministic portion (everything except wall-clock) is a
// pure function of (profile, seed, cfg) regardless of worker count or
// healing fault schedule, so span trees fingerprint and diff exactly as
// traces do.

// SpanID identifies one span within a SpanLog; zero means "no span" (the
// parent of a root span, or the ID of a nil OpenSpan).
type SpanID uint64

// SpanRecord is one completed span.
type SpanRecord struct {
	// ID is assigned at Begin time under the log's lock, so for
	// single-threaded control flow (and for fragments merged in a
	// deterministic order) it is reproducible across runs.
	ID SpanID `json:"id"`
	// Parent is the enclosing span (0 for roots).
	Parent SpanID `json:"parent,omitempty"`
	// Name is the hierarchy level: "run", "round", "vp", "stage",
	// "target", "agent-session".
	Name string `json:"name"`
	// Detail narrows the name: the VP name, the stage ("probe", "alias",
	// "infer", "mapdb.compile", …), or the target AS.
	Detail string `json:"detail,omitempty"`
	// SimNS is the span's simulated-time duration on the canonical
	// serialized timeline. For spans whose children carry the time (run,
	// round, vp) it is zero; exporters lay children out sequentially in
	// ID order and derive the effective duration.
	SimNS int64 `json:"sim_ns"`
	// WallNS is the wall-clock duration — faithfully exported but, like
	// stage wall timings, excluded from Fingerprint.
	WallNS int64 `json:"wall_ns,omitempty"`
	// Attrs is the ordered attribute list; '~'-prefixed keys are volatile
	// (excluded from Fingerprint), exactly as on trace events.
	Attrs []Attr `json:"attrs,omitempty"`
}

// Attr returns the value of the named attr ("" when absent), finding
// volatile attrs under their unmarked name too.
func (r SpanRecord) Attr(k string) string {
	for _, a := range r.Attrs {
		if a.K == k || a.Name() == k {
			return a.V
		}
	}
	return ""
}

// OpenSpan is one in-flight span created by SpanLog.Begin. It is distinct
// from the stage-timer Span (which aggregates totals per stage name);
// an OpenSpan becomes one SpanRecord on End. A nil OpenSpan (from a nil
// SpanLog) is a no-op. An OpenSpan's fields are guarded by its log's
// mutex so /v1/status can read in-flight spans concurrently.
type OpenSpan struct {
	sl    *SpanLog
	rec   SpanRecord
	start time.Time
	done  bool
}

// ID returns the span's ID (0 on nil).
func (o *OpenSpan) ID() SpanID {
	if o == nil {
		return 0
	}
	return o.rec.ID
}

// AddSim attributes simulated measurement time to the span.
func (o *OpenSpan) AddSim(d time.Duration) {
	if o == nil {
		return
	}
	o.sl.mu.Lock()
	o.rec.SimNS += int64(d)
	o.sl.mu.Unlock()
}

// SetAttr appends one attribute (fmt-style default formatting, as KV).
func (o *OpenSpan) SetAttr(k string, v any) {
	if o == nil {
		return
	}
	a := KV(k, v)
	o.sl.mu.Lock()
	o.rec.Attrs = append(o.rec.Attrs, a)
	o.sl.mu.Unlock()
}

// End completes the span, recording it into the log. Idempotent: a span
// ended by a deferred cleanup after an explicit End records only once.
func (o *OpenSpan) End() {
	if o == nil {
		return
	}
	o.sl.mu.Lock()
	if !o.done {
		o.done = true
		o.rec.WallNS = int64(time.Since(o.start))
		delete(o.sl.open, o.rec.ID)
		o.sl.push(o.rec)
	}
	o.sl.mu.Unlock()
}

// DefaultSpanCap bounds a SpanLog's ring. A tiny-profile run records a few
// hundred spans (one per probed target plus the stage/vp scaffolding); a
// long continuous-monitoring run wraps, keeping the most recent rounds.
const DefaultSpanCap = 1 << 15

// SpanLog is a bounded, concurrency-safe ring of completed spans plus the
// set of in-flight ones. Like every obs primitive it is nil-safe: a
// component handed no log pays one nil check per span. When the ring is
// full the oldest records are overwritten (flight-recorder semantics) and
// Dropped counts them.
type SpanLog struct {
	mu      sync.Mutex
	limit   int
	nextID  uint64
	dropped uint64
	buf     []SpanRecord // ring storage, len(buf) <= limit
	head    int          // index of the oldest record when len(buf) == limit
	open    map[SpanID]*OpenSpan
}

// NewSpanLog creates a log retaining at most limit completed spans
// (limit <= 0 selects DefaultSpanCap).
func NewSpanLog(limit int) *SpanLog {
	if limit <= 0 {
		limit = DefaultSpanCap
	}
	return &SpanLog{limit: limit, open: make(map[SpanID]*OpenSpan)}
}

// Enabled reports whether spans will be retained (false on nil).
func (sl *SpanLog) Enabled() bool { return sl != nil }

// Begin opens a span under parent (0 for a root). The ID is assigned
// immediately, so children can reference the span before it ends.
func (sl *SpanLog) Begin(parent SpanID, name, detail string) *OpenSpan {
	if sl == nil {
		return nil
	}
	sl.mu.Lock()
	sl.nextID++
	o := &OpenSpan{
		sl:    sl,
		rec:   SpanRecord{ID: SpanID(sl.nextID), Parent: parent, Name: name, Detail: detail},
		start: time.Now(),
	}
	sl.open[o.rec.ID] = o
	sl.mu.Unlock()
	return o
}

// push appends rec to the ring. Caller holds sl.mu.
func (sl *SpanLog) push(rec SpanRecord) {
	if len(sl.buf) < sl.limit {
		sl.buf = append(sl.buf, rec)
		return
	}
	sl.buf[sl.head] = rec
	sl.head = (sl.head + 1) % sl.limit
	sl.dropped++
}

// Records returns a copy of the retained completed spans in completion
// order (children before their parents, since a span ends after its
// children).
func (sl *SpanLog) Records() []SpanRecord {
	if sl == nil {
		return nil
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	out := make([]SpanRecord, 0, len(sl.buf))
	out = append(out, sl.buf[sl.head:]...)
	out = append(out, sl.buf[:sl.head]...)
	return out
}

// Active returns the in-flight spans in ID order, with their
// accumulated simulated time and live wall-clock elapsed — the
// /v1/status view of what the pipeline is doing right now.
func (sl *SpanLog) Active() []SpanRecord {
	if sl == nil {
		return nil
	}
	sl.mu.Lock()
	out := make([]SpanRecord, 0, len(sl.open))
	for _, o := range sl.open {
		rec := o.rec
		rec.Attrs = append([]Attr(nil), o.rec.Attrs...)
		rec.WallNS = int64(time.Since(o.start))
		out = append(out, rec)
	}
	sl.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Snapshot returns completed records followed by the in-flight ones — the
// exportable view of a possibly-live log (a run root span, for instance,
// stays open for the life of the process).
func (sl *SpanLog) Snapshot() []SpanRecord {
	return append(sl.Records(), sl.Active()...)
}

// Len returns the number of retained completed spans.
func (sl *SpanLog) Len() int {
	if sl == nil {
		return 0
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return len(sl.buf)
}

// ActiveCount returns the number of in-flight spans.
func (sl *SpanLog) ActiveCount() int {
	if sl == nil {
		return 0
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return len(sl.open)
}

// Dropped returns how many completed spans the ring bound overwrote
// (fragment drop counts are carried over by Merge).
func (sl *SpanLog) Dropped() uint64 {
	if sl == nil {
		return 0
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.dropped
}

// Merge folds a fragment log's completed spans into sl under parent,
// carrying the fragment's drop count. The driver builds one fragment per
// probed target and merges them in target order after the worker barrier,
// so the merged IDs — like merged trace sequence numbers — are
// independent of which worker finished first.
func (sl *SpanLog) Merge(frag *SpanLog, parent SpanID) {
	if sl == nil || frag == nil {
		return
	}
	sl.MergeRecords(frag.Records(), parent)
	sl.mu.Lock()
	sl.dropped += frag.Dropped()
	sl.mu.Unlock()
}

// MergeRecords folds externally produced records (a fragment's, or a
// remote agent's pulled session spans) into sl. Every distinct incoming
// ID is re-assigned from sl's counter in ascending incoming-ID order —
// the original Begin order — and parent references are rewritten; a
// record with no parent (or a parent outside the batch) attaches under
// parent. Deterministic for a deterministic input batch.
func (sl *SpanLog) MergeRecords(recs []SpanRecord, parent SpanID) {
	if sl == nil || len(recs) == 0 {
		return
	}
	ids := make([]SpanID, 0, len(recs))
	seen := make(map[SpanID]bool, len(recs))
	for _, r := range recs {
		if !seen[r.ID] {
			seen[r.ID] = true
			ids = append(ids, r.ID)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	sl.mu.Lock()
	remap := make(map[SpanID]SpanID, len(ids))
	for _, id := range ids {
		sl.nextID++
		remap[id] = SpanID(sl.nextID)
	}
	for _, r := range recs {
		r.ID = remap[r.ID]
		if np, ok := remap[r.Parent]; ok {
			r.Parent = np
		} else {
			r.Parent = parent
		}
		sl.push(r)
	}
	sl.mu.Unlock()
}

// ---------------------------------------------------------------------------
// JSONL export / import

// WriteJSONL exports the log's snapshot (completed then in-flight spans)
// as JSON Lines, one span per line.
func (sl *SpanLog) WriteJSONL(w io.Writer) error {
	return WriteSpanJSONL(w, sl.Snapshot())
}

// WriteSpanJSONL writes an explicit record slice as JSON Lines in the
// given order; ReadSpanJSONL inverts it, so export→import→export is a
// fixed point.
func WriteSpanJSONL(w io.Writer, recs []SpanRecord) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSpanJSONL parses a stream written by WriteSpanJSONL. Blank lines
// are skipped; any other malformed line is an error.
func ReadSpanJSONL(r io.Reader) ([]SpanRecord, error) {
	var out []SpanRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var rec SpanRecord
		if err := json.Unmarshal([]byte(raw), &rec); err != nil {
			return nil, fmt.Errorf("span line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Fingerprint

// Fingerprint hashes the deterministic portion of the span tree: IDs,
// parents, names, details, simulated durations, and every non-volatile
// attr, in ID order. Wall-clock durations are excluded, so for a fixed
// seed the fingerprint is identical across runs, across worker counts,
// and across repeated runs of one healing fault schedule.
func (sl *SpanLog) Fingerprint() string { return FingerprintSpans(sl.Snapshot()) }

// FingerprintSpans is Fingerprint over an explicit record slice (e.g. one
// reloaded with ReadSpanJSONL). The slice order does not matter: records
// are hashed in ID order.
func FingerprintSpans(recs []SpanRecord) string {
	sorted := append([]SpanRecord(nil), recs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	h := sha256.New()
	for _, r := range sorted {
		fmt.Fprintf(h, "s %d %d %s %s %d", r.ID, r.Parent, r.Name, r.Detail, r.SimNS)
		for _, a := range r.Attrs {
			if a.Volatile() {
				continue
			}
			fmt.Fprintf(h, " %s=%s", a.K, a.V)
		}
		io.WriteString(h, "\n")
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ---------------------------------------------------------------------------
// Chrome trace_event export / import

// chromeEvent is one complete ("ph":"X") event in the Chrome trace_event
// format. Timestamps and durations are microseconds. The full SpanRecord
// rides in args.span so an exported file imports back losslessly.
type chromeEvent struct {
	Name string     `json:"name"`
	Cat  string     `json:"cat"`
	Ph   string     `json:"ph"`
	Ts   float64    `json:"ts"`
	Dur  float64    `json:"dur"`
	Pid  int        `json:"pid"`
	Tid  int        `json:"tid"`
	Args chromeArgs `json:"args"`
}

type chromeArgs struct {
	Span SpanRecord `json:"span"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome exports the log's snapshot in Chrome trace_event format —
// load the file in Perfetto (ui.perfetto.dev) or chrome://tracing to see
// the run's timeline.
func (sl *SpanLog) WriteChrome(w io.Writer) error {
	return WriteChromeTrace(w, sl.Snapshot())
}

// WriteChromeTrace renders records as trace_event complete events on the
// canonical serialized timeline: a span's effective duration is the
// larger of its own SimNS and the sum of its children's effective
// durations, and children are laid out back to back in ID order inside
// their parent. Roots (parent 0 or a parent dropped by the ring bound)
// are laid out sequentially from t=0. The layout is a pure function of
// the records, so export→import→export is byte-stable.
func WriteChromeTrace(w io.Writer, recs []SpanRecord) error {
	sorted := append([]SpanRecord(nil), recs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })

	present := make(map[SpanID]int, len(sorted)) // ID → index in sorted
	for i, r := range sorted {
		present[r.ID] = i
	}
	children := make(map[SpanID][]int)
	var roots []int
	for i, r := range sorted {
		if r.Parent != 0 {
			if _, ok := present[r.Parent]; ok {
				children[r.Parent] = append(children[r.Parent], i)
				continue
			}
		}
		roots = append(roots, i)
	}

	// Effective durations, bottom-up. The visiting guard breaks parent
	// cycles that hand-edited imports could contain.
	eff := make([]int64, len(sorted))
	state := make([]int8, len(sorted)) // 0 unvisited, 1 visiting, 2 done
	var durOf func(i int) int64
	durOf = func(i int) int64 {
		if state[i] == 2 {
			return eff[i]
		}
		if state[i] == 1 {
			return 0
		}
		state[i] = 1
		var sum int64
		for _, c := range children[sorted[i].ID] {
			sum += durOf(c)
		}
		d := sorted[i].SimNS
		if sum > d {
			d = sum
		}
		eff[i] = d
		state[i] = 2
		return d
	}

	var events []chromeEvent
	var emit func(i int, startNS int64)
	emit = func(i int, startNS int64) {
		r := sorted[i]
		label := r.Name
		if r.Detail != "" {
			label += " " + r.Detail
		}
		events = append(events, chromeEvent{
			Name: label, Cat: r.Name, Ph: "X",
			Ts: float64(startNS) / 1e3, Dur: float64(durOf(i)) / 1e3,
			Pid: 1, Tid: 1,
			Args: chromeArgs{Span: r},
		})
		cursor := startNS
		for _, c := range children[r.ID] {
			emit(c, cursor)
			cursor += durOf(c)
		}
	}
	cursor := int64(0)
	for _, i := range roots {
		emit(i, cursor)
		cursor += durOf(i)
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// ReadChromeTrace loads a file written by WriteChromeTrace, recovering
// the exact span records from args.span in document order (which is the
// writer's depth-first layout order).
func ReadChromeTrace(r io.Reader) ([]SpanRecord, error) {
	var ct chromeTrace
	if err := json.NewDecoder(r).Decode(&ct); err != nil {
		return nil, fmt.Errorf("chrome trace: %w", err)
	}
	out := make([]SpanRecord, 0, len(ct.TraceEvents))
	for _, ev := range ct.TraceEvents {
		out = append(out, ev.Args.Span)
	}
	return out, nil
}
