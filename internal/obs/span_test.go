package obs

import (
	"bytes"
	"testing"
	"time"
)

func TestSpanLogBeginEnd(t *testing.T) {
	sl := NewSpanLog(0)
	run := sl.Begin(0, "run", "seed 1")
	vp := sl.Begin(run.ID(), "vp", "vp01")
	vp.AddSim(3 * time.Millisecond)
	vp.SetAttr("targets", 7)
	if sl.ActiveCount() != 2 || sl.Len() != 0 {
		t.Fatalf("active=%d len=%d, want 2 active 0 completed", sl.ActiveCount(), sl.Len())
	}
	vp.End()
	vp.End() // idempotent: must not record twice
	run.End()
	recs := sl.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	// Completion order: the child ends first but keeps its earlier ID.
	if recs[0].Name != "vp" || recs[0].ID != 2 || recs[0].Parent != 1 {
		t.Errorf("child record = %+v", recs[0])
	}
	if recs[0].SimNS != int64(3*time.Millisecond) || recs[0].Attr("targets") != "7" {
		t.Errorf("child sim/attrs = %+v", recs[0])
	}
	if recs[1].Name != "run" || recs[1].ID != 1 || recs[1].Parent != 0 {
		t.Errorf("root record = %+v", recs[1])
	}
	if sl.ActiveCount() != 0 {
		t.Errorf("ActiveCount = %d after both ended", sl.ActiveCount())
	}
}

func TestSpanLogNilSafe(t *testing.T) {
	var sl *SpanLog
	if sl.Enabled() {
		t.Fatal("nil log reports Enabled")
	}
	sp := sl.Begin(0, "x", "")
	sp.AddSim(time.Second)
	sp.SetAttr("k", "v")
	sp.End()
	if sp.ID() != 0 {
		t.Errorf("nil span ID = %d", sp.ID())
	}
	if sl.Records() != nil || sl.Active() != nil || sl.Len() != 0 || sl.Dropped() != 0 {
		t.Error("nil log retained state")
	}
	sl.Merge(NewSpanLog(0), 0)
	sl.MergeRecords([]SpanRecord{{ID: 1}}, 0)
}

func TestSpanLogRingDrop(t *testing.T) {
	sl := NewSpanLog(3)
	for i := 0; i < 5; i++ {
		sl.Begin(0, "s", string(rune('a'+i))).End()
	}
	recs := sl.Records()
	if len(recs) != 3 || sl.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d, want 3 retained 2 dropped", len(recs), sl.Dropped())
	}
	// Flight-recorder: the oldest spans went, order is preserved.
	if recs[0].Detail != "c" || recs[2].Detail != "e" {
		t.Errorf("retained %q..%q, want c..e", recs[0].Detail, recs[2].Detail)
	}
}

func TestSpanLogMergeRemap(t *testing.T) {
	sl := NewSpanLog(0)
	host := sl.Begin(0, "stage", "probe") // takes ID 1
	frag := NewSpanLog(0)
	a := frag.Begin(0, "target", "AS1") // frag ID 1
	b := frag.Begin(a.ID(), "probe", "hop")
	b.End()
	a.End()
	sl.Merge(frag, host.ID())
	host.End()

	recs := sl.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	// Fresh IDs in original Begin order: target (frag 1) → 2, probe (frag 2) → 3.
	if byName["target"].ID != 2 || byName["probe"].ID != 3 {
		t.Errorf("remapped IDs: target=%d probe=%d, want 2,3", byName["target"].ID, byName["probe"].ID)
	}
	// Intra-batch parent rewritten; batch root attached under merge parent.
	if byName["probe"].Parent != byName["target"].ID {
		t.Errorf("probe parent = %d, want %d", byName["probe"].Parent, byName["target"].ID)
	}
	if byName["target"].Parent != host.ID() {
		t.Errorf("target parent = %d, want %d", byName["target"].Parent, host.ID())
	}
}

// buildSpanFixture returns a small tree with attrs, volatile attrs, sim
// and wall durations — enough shape to exercise every exporter branch.
func buildSpanFixture() []SpanRecord {
	sl := NewSpanLog(0)
	run := sl.Begin(0, "run", "seed 1")
	vp := sl.Begin(run.ID(), "vp", "vp01")
	st := sl.Begin(vp.ID(), "stage", "probe")
	st.AddSim(5 * time.Millisecond)
	st.SetAttr("targets", 3)
	st.SetAttr("~tmp", "volatile")
	st.End()
	vp.End()
	run.End()
	return sl.Records()
}

func TestSpanJSONLFixedPoint(t *testing.T) {
	recs := buildSpanFixture()
	var b1 bytes.Buffer
	if err := WriteSpanJSONL(&b1, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpanJSONL(bytes.NewReader(b1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var b2 bytes.Buffer
	if err := WriteSpanJSONL(&b2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Errorf("JSONL export→import→export not a fixed point:\n%s\nvs\n%s", b1.Bytes(), b2.Bytes())
	}
}

func TestSpanChromeFixedPoint(t *testing.T) {
	recs := buildSpanFixture()
	var b1 bytes.Buffer
	if err := WriteChromeTrace(&b1, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadChromeTrace(bytes.NewReader(b1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("import recovered %d spans, want %d", len(got), len(recs))
	}
	var b2 bytes.Buffer
	if err := WriteChromeTrace(&b2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("Chrome export→import→export not byte-stable")
	}
	// The fingerprint survives the round trip too (args.span is lossless).
	if FingerprintSpans(got) != FingerprintSpans(recs) {
		t.Error("fingerprint changed across Chrome round trip")
	}
}

func TestSpanChromeLayout(t *testing.T) {
	// A parent with SimNS 0 and two children of 2ms and 3ms must span 5ms,
	// children back to back in ID order.
	recs := []SpanRecord{
		{ID: 1, Name: "vp", Detail: "v"},
		{ID: 2, Parent: 1, Name: "stage", Detail: "probe", SimNS: 2e6},
		{ID: 3, Parent: 1, Name: "stage", Detail: "alias", SimNS: 3e6},
	}
	var b bytes.Buffer
	if err := WriteChromeTrace(&b, recs); err != nil {
		t.Fatal(err)
	}
	s := b.String()
	for _, want := range []string{
		`"name": "vp v"`, `"dur": 5000`, // parent = sum of children, µs
		`"ts": 2000`, `"dur": 3000`, // second child starts after first
	} {
		if !bytes.Contains(b.Bytes(), []byte(want)) {
			t.Errorf("chrome output missing %s:\n%s", want, s)
		}
	}
}

func TestSpanFingerprintExclusions(t *testing.T) {
	base := []SpanRecord{{ID: 1, Name: "run", SimNS: 10, Attrs: []Attr{KV("k", 1)}}}
	fp := FingerprintSpans(base)

	// Wall-clock is excluded.
	wall := []SpanRecord{{ID: 1, Name: "run", SimNS: 10, WallNS: 999, Attrs: []Attr{KV("k", 1)}}}
	if FingerprintSpans(wall) != fp {
		t.Error("WallNS changed the fingerprint")
	}
	// Volatile attrs are excluded.
	vol := []SpanRecord{{ID: 1, Name: "run", SimNS: 10, Attrs: []Attr{KV("k", 1), KV("~retries", 3)}}}
	if FingerprintSpans(vol) != fp {
		t.Error("volatile attr changed the fingerprint")
	}
	// Everything deterministic is included.
	for _, alt := range []SpanRecord{
		{ID: 2, Name: "run", SimNS: 10, Attrs: []Attr{KV("k", 1)}},
		{ID: 1, Parent: 1, Name: "run", SimNS: 10, Attrs: []Attr{KV("k", 1)}},
		{ID: 1, Name: "vp", SimNS: 10, Attrs: []Attr{KV("k", 1)}},
		{ID: 1, Name: "run", SimNS: 11, Attrs: []Attr{KV("k", 1)}},
		{ID: 1, Name: "run", SimNS: 10, Attrs: []Attr{KV("k", 2)}},
	} {
		if FingerprintSpans([]SpanRecord{alt}) == fp {
			t.Errorf("fingerprint ignored change in %+v", alt)
		}
	}
	// Record order does not matter; ID order is canonical.
	two := []SpanRecord{{ID: 1, Name: "a"}, {ID: 2, Name: "b"}}
	rev := []SpanRecord{{ID: 2, Name: "b"}, {ID: 1, Name: "a"}}
	if FingerprintSpans(two) != FingerprintSpans(rev) {
		t.Error("fingerprint depends on slice order")
	}
}
