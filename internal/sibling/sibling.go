// Package sibling provides the AS-to-organization mapping bdrmap needs to
// group sibling ASes (§5.2 "VP ASes"). The paper derives candidate siblings
// from WHOIS-based AS-to-organization inference, which is known to contain
// false and missing entries, then curates the list for the VP's network by
// hand — the only input requiring manual oversight. This package mirrors
// that workflow: FromNetwork builds a WHOIS-like dataset with injected
// defects, and Set supports manual correction.
package sibling

import (
	"math/rand"
	"sort"

	"bdrmap/internal/topo"
)

// OrgRecord is a WHOIS-derived AS-to-organization entry.
type OrgRecord struct {
	ASN   topo.ASN
	OrgID string
}

// Set is a queryable sibling mapping with manual overrides layered on top
// of the WHOIS-derived records.
type Set struct {
	org     map[topo.ASN]string
	added   map[[2]topo.ASN]bool // manual: force same-org
	removed map[[2]topo.ASN]bool // manual: force different-org
}

// New builds a Set from raw records.
func New(recs []OrgRecord) *Set {
	s := &Set{
		org:     make(map[topo.ASN]string, len(recs)),
		added:   make(map[[2]topo.ASN]bool),
		removed: make(map[[2]topo.ASN]bool),
	}
	for _, r := range recs {
		s.org[r.ASN] = r.OrgID
	}
	return s
}

// FromNetwork derives WHOIS-like records from ground truth with realistic
// defects: a few ASes have no record (stale WHOIS), and a few unrelated
// ASes are wrongly merged into one organization.
func FromNetwork(net *topo.Network, seed int64) *Set {
	rng := rand.New(rand.NewSource(seed))
	var recs []OrgRecord
	asns := net.ASNs()
	for _, asn := range asns {
		if rng.Float64() < 0.03 {
			continue // missing record
		}
		org := net.ASes[asn].Org
		if rng.Float64() < 0.02 && len(asns) > 1 {
			// Spurious merge: copy another AS's org.
			org = net.ASes[asns[rng.Intn(len(asns))]].Org
		}
		recs = append(recs, OrgRecord{ASN: asn, OrgID: org})
	}
	return New(recs)
}

// SameOrg reports whether a and b are believed to be siblings, after
// manual overrides.
func (s *Set) SameOrg(a, b topo.ASN) bool {
	if a == b {
		return true
	}
	k := pairKey(a, b)
	if s.added[k] {
		return true
	}
	if s.removed[k] {
		return false
	}
	oa, oka := s.org[a]
	ob, okb := s.org[b]
	return oka && okb && oa == ob
}

// Add manually marks a and b as siblings.
func (s *Set) Add(a, b topo.ASN) {
	k := pairKey(a, b)
	delete(s.removed, k)
	s.added[k] = true
}

// Remove manually marks a and b as not siblings.
func (s *Set) Remove(a, b topo.ASN) {
	k := pairKey(a, b)
	delete(s.added, k)
	s.removed[k] = true
}

// SiblingsOf returns all recorded siblings of asn (excluding asn), sorted.
func (s *Set) SiblingsOf(asn topo.ASN) []topo.ASN {
	var out []topo.ASN
	seen := map[topo.ASN]bool{}
	if org, ok := s.org[asn]; ok {
		for a, o := range s.org {
			if a != asn && o == org && !s.removed[pairKey(a, asn)] {
				out = append(out, a)
				seen[a] = true
			}
		}
	}
	for k := range s.added {
		var other topo.ASN
		switch {
		case k[0] == asn:
			other = k[1]
		case k[1] == asn:
			other = k[0]
		default:
			continue
		}
		if !seen[other] {
			out = append(out, other)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CurateHost corrects the host network's sibling set against ground truth,
// reproducing §5.2: "we seeded our manual inference with [the public
// mapping], manually added missing siblings, and removed spurious
// siblings." Only the host organization is curated — everything else keeps
// its WHOIS defects.
func (s *Set) CurateHost(net *topo.Network) {
	truth := make(map[topo.ASN]bool)
	for _, sib := range net.Siblings(net.HostASN) {
		truth[sib] = true
	}
	for sib := range truth {
		if sib != net.HostASN && !s.SameOrg(net.HostASN, sib) {
			s.Add(net.HostASN, sib)
		}
	}
	for _, cur := range s.SiblingsOf(net.HostASN) {
		if !truth[cur] {
			s.Remove(net.HostASN, cur)
		}
	}
}

func pairKey(a, b topo.ASN) [2]topo.ASN {
	if a < b {
		return [2]topo.ASN{a, b}
	}
	return [2]topo.ASN{b, a}
}
