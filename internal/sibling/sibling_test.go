package sibling

import (
	"testing"

	"bdrmap/internal/topo"
)

func TestSameOrgBasic(t *testing.T) {
	s := New([]OrgRecord{
		{ASN: 1, OrgID: "org-a"},
		{ASN: 2, OrgID: "org-a"},
		{ASN: 3, OrgID: "org-b"},
	})
	if !s.SameOrg(1, 2) {
		t.Error("1 and 2 share an org")
	}
	if s.SameOrg(1, 3) {
		t.Error("1 and 3 do not share an org")
	}
	if !s.SameOrg(5, 5) {
		t.Error("an AS is its own sibling")
	}
	if s.SameOrg(5, 6) {
		t.Error("unknown ASes are not siblings")
	}
}

func TestManualOverrides(t *testing.T) {
	s := New([]OrgRecord{
		{ASN: 1, OrgID: "org-a"},
		{ASN: 2, OrgID: "org-a"},
		{ASN: 3, OrgID: "org-b"},
	})
	s.Remove(1, 2)
	if s.SameOrg(1, 2) {
		t.Error("removed pair still siblings")
	}
	s.Add(1, 3)
	if !s.SameOrg(1, 3) {
		t.Error("added pair not siblings")
	}
	// Add then remove toggles cleanly.
	s.Remove(1, 3)
	if s.SameOrg(1, 3) {
		t.Error("re-removed pair still siblings")
	}
	s.Add(2, 1)
	if !s.SameOrg(1, 2) {
		t.Error("Add must be order-insensitive")
	}
}

func TestSiblingsOf(t *testing.T) {
	s := New([]OrgRecord{
		{ASN: 1, OrgID: "org-a"},
		{ASN: 2, OrgID: "org-a"},
		{ASN: 4, OrgID: "org-a"},
	})
	s.Add(1, 9)
	got := s.SiblingsOf(1)
	want := []topo.ASN{2, 4, 9}
	if len(got) != len(want) {
		t.Fatalf("SiblingsOf = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SiblingsOf = %v, want %v", got, want)
		}
	}
}

func TestCurateHostMatchesTruth(t *testing.T) {
	n := topo.Generate(topo.LargeAccessProfile(), 3)
	// Try several WHOIS seeds; curation must always converge to truth.
	for seed := int64(0); seed < 5; seed++ {
		s := FromNetwork(n, seed)
		s.CurateHost(n)
		truth := map[topo.ASN]bool{}
		for _, sib := range n.Siblings(n.HostASN) {
			if sib != n.HostASN {
				truth[sib] = true
			}
		}
		got := s.SiblingsOf(n.HostASN)
		gotSet := map[topo.ASN]bool{}
		for _, g := range got {
			gotSet[g] = true
			if !truth[g] {
				t.Fatalf("seed %d: spurious sibling %v survived curation", seed, g)
			}
		}
		for tr := range truth {
			if !gotSet[tr] {
				t.Fatalf("seed %d: missing sibling %v after curation", seed, tr)
			}
		}
	}
}

func TestFromNetworkInjectsDefects(t *testing.T) {
	n := topo.Generate(topo.LargeAccessProfile(), 3)
	missing, spurious := false, false
	for seed := int64(0); seed < 10 && !(missing && spurious); seed++ {
		s := FromNetwork(n, seed)
		for _, asn := range n.ASNs() {
			if _, ok := s.org[asn]; !ok {
				missing = true
			} else if s.org[asn] != n.ASes[asn].Org {
				spurious = true
			}
		}
	}
	if !missing || !spurious {
		t.Errorf("defect injection: missing=%v spurious=%v", missing, spurious)
	}
}
