package fleet

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"bdrmap/internal/core"
	"bdrmap/internal/netx"
	"bdrmap/internal/obs"
	"bdrmap/internal/topo"
)

// mkShardResult fabricates a one-link result for shard i so merges are
// distinguishable per shard.
func mkShardResult(i int) *core.Result {
	l := &core.Link{
		NearAddr:  netx.Addr(10 + i),
		FarAddr:   netx.Addr(100 + i),
		FarAS:     topo.ASN(1000 + i),
		Heuristic: core.HeurIPAS,
	}
	l.Near = &core.RouterNode{Addrs: []netx.Addr{l.NearAddr}}
	l.Far = &core.RouterNode{Addrs: []netx.Addr{l.FarAddr}}
	return &core.Result{VPName: fmt.Sprintf("vp%d", i), Links: []*core.Link{l}}
}

func okShard(i int, block <-chan struct{}) Shard {
	return Shard{
		Name: fmt.Sprintf("vp%d", i),
		Run: func(ctx RunCtx) (*Output, error) {
			if block != nil {
				<-block
			}
			return &Output{Result: mkShardResult(i)}, nil
		},
	}
}

func TestRunAllWorkersSameMerge(t *testing.T) {
	const n = 8
	var want *core.MergedMap
	for _, workers := range []int{1, 4, 8} {
		shards := make([]Shard, n)
		for i := range shards {
			shards[i] = okShard(i, nil)
		}
		sum, err := Run(Config{Workers: workers}, shards)
		if err != nil {
			t.Fatal(err)
		}
		for i, sr := range sum.Shards {
			if sr.State != Done || sr.Attempts != 1 {
				t.Fatalf("workers=%d shard %d: %+v", workers, i, sr)
			}
		}
		if want == nil {
			want = sum.Merged
		} else if !reflect.DeepEqual(sum.Merged, want) {
			t.Fatalf("workers=%d merged map diverged", workers)
		}
	}
}

func TestRunAdversarialOrderSameMerge(t *testing.T) {
	const n = 6
	mk := func() []Shard {
		shards := make([]Shard, n)
		for i := range shards {
			shards[i] = okShard(i, nil)
		}
		return shards
	}
	base, err := Run(Config{Workers: 3}, mk())
	if err != nil {
		t.Fatal(err)
	}
	rev, err := Run(Config{Workers: 3, Order: []int{5, 4, 3, 2, 1, 0}}, mk())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Merged, rev.Merged) {
		t.Fatal("reversed enqueue order changed the merged map")
	}
	if !reflect.DeepEqual(base.Results, rev.Results) {
		t.Fatal("reversed enqueue order changed per-shard results")
	}
}

func TestRunRejectsBadOrder(t *testing.T) {
	shards := []Shard{okShard(0, nil), okShard(1, nil)}
	if _, err := Run(Config{Order: []int{0}}, shards); err == nil {
		t.Fatal("short order accepted")
	}
	if _, err := Run(Config{Order: []int{1, 1}}, shards); err == nil {
		t.Fatal("duplicate order accepted")
	}
}

// TestRunWorkStealing pins the reassignment mechanic: with two workers and
// one shard blocking worker 0's queue, the idle worker 1 must steal and
// finish worker 0's remaining work.
func TestRunWorkStealing(t *testing.T) {
	reg := obs.New()
	release := make(chan struct{})
	var once sync.Once
	shards := []Shard{
		{Name: "slow", Run: func(ctx RunCtx) (*Output, error) {
			<-release
			return &Output{Result: mkShardResult(0)}, nil
		}},
		okShard(1, nil), // home worker 1
		// Shards 2 and 3 are homed on workers 0 and 1; worker 0 is stuck
		// on "slow", so worker 1 must steal shard 2.
		{Name: "vp2", Run: func(ctx RunCtx) (*Output, error) {
			once.Do(func() { close(release) })
			return &Output{Result: mkShardResult(2)}, nil
		}},
		okShard(3, nil),
	}
	sum, err := Run(Config{Workers: 2, Obs: reg}, shards)
	if err != nil {
		t.Fatal(err)
	}
	for i, sr := range sum.Shards {
		if sr.State != Done {
			t.Fatalf("shard %d state %v", i, sr.State)
		}
	}
	if reg.Counter("fleet.steals").Load() == 0 {
		t.Fatal("no steals recorded despite a blocked worker")
	}
}

// TestRunRetryBudget drives one shard through fail-fail-succeed and one
// past its budget with salvage.
func TestRunRetryBudget(t *testing.T) {
	reg := obs.New()
	attempts := make(map[string][]int)
	var mu sync.Mutex
	note := func(name string, a int) {
		mu.Lock()
		attempts[name] = append(attempts[name], a)
		mu.Unlock()
	}
	shards := []Shard{
		{Name: "flaky", Run: func(ctx RunCtx) (*Output, error) {
			note("flaky", ctx.Attempt)
			if ctx.Attempt < 2 {
				return nil, fmt.Errorf("boom %d", ctx.Attempt)
			}
			return &Output{Result: mkShardResult(0)}, nil
		}},
		{Name: "doomed", Run: func(ctx RunCtx) (*Output, error) {
			note("doomed", ctx.Attempt)
			// Produces partial output each time but always errors.
			return &Output{Result: mkShardResult(1)}, fmt.Errorf("always down")
		}},
		{Name: "dead", Run: func(ctx RunCtx) (*Output, error) {
			note("dead", ctx.Attempt)
			return nil, fmt.Errorf("nothing salvaged")
		}},
	}
	sum, err := Run(Config{Workers: 2, Retries: 2, Obs: reg}, shards)
	if err != nil {
		t.Fatal(err)
	}
	if got := sum.Shards[0]; got.State != Done || got.Attempts != 3 || got.Err != nil {
		t.Fatalf("flaky: %+v", got)
	}
	if got := sum.Shards[1]; got.State != Degraded || got.Attempts != 3 || got.Err == nil {
		t.Fatalf("doomed: %+v", got)
	}
	if sum.Results[1] == nil {
		t.Fatal("doomed shard's salvage output not kept")
	}
	if got := sum.Shards[2]; got.State != Failed || got.Attempts != 3 {
		t.Fatalf("dead: %+v", got)
	}
	if sum.Results[2] != nil {
		t.Fatal("failed shard has a result")
	}
	if !reflect.DeepEqual(attempts["flaky"], []int{0, 1, 2}) {
		t.Fatalf("flaky attempts %v", attempts["flaky"])
	}
	if reg.Counter("fleet.retries").Load() != 6 {
		t.Fatalf("fleet.retries = %d, want 6", reg.Counter("fleet.retries").Load())
	}
	if reg.Counter("fleet.failed").Load() != 1 || reg.Counter("fleet.shard_degraded").Load() != 1 {
		t.Fatalf("terminal counters: failed=%d degraded=%d",
			reg.Counter("fleet.failed").Load(), reg.Counter("fleet.shard_degraded").Load())
	}
	// The merged map carries the Done and Degraded shards only.
	if got := len(sum.Merged.VPs); got != 2 {
		t.Fatalf("merged VPs = %v", sum.Merged.VPs)
	}
}

// TestRunQuorumPublish holds one shard back behind a gate: the quorum
// publish must arrive without it, marked degraded, and the final publish
// must heal it.
func TestRunQuorumPublish(t *testing.T) {
	reg := obs.New()
	gate := make(chan struct{})
	var events []PublishEvent
	shards := []Shard{
		okShard(0, nil),
		okShard(1, nil),
		{Name: "late", Run: func(ctx RunCtx) (*Output, error) {
			<-gate
			return &Output{Result: mkShardResult(2)}, nil
		}},
	}
	cfg := Config{
		Workers: 3,
		Quorum:  2,
		Obs:     reg,
		OnPublish: func(ev PublishEvent) {
			events = append(events, ev)
			if !ev.Final {
				close(gate)
			}
		},
	}
	sum, err := Run(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("publish events = %d, want partial+final", len(events))
	}
	partial, final := events[0], events[1]
	if partial.Final || !final.Final {
		t.Fatalf("event order wrong: %+v", events)
	}
	if !reflect.DeepEqual(partial.Degraded, []string{"late"}) {
		t.Fatalf("partial degraded = %v", partial.Degraded)
	}
	if len(final.Degraded) != 0 {
		t.Fatalf("final degraded = %v", final.Degraded)
	}
	if len(partial.Merged.VPs) != 2 || len(final.Merged.VPs) != 3 {
		t.Fatalf("merged VP counts: partial %v final %v", partial.Merged.VPs, final.Merged.VPs)
	}
	d := core.Diff(partial.Merged, final.Merged)
	if len(d.Removed) != 0 || len(d.Added) == 0 {
		t.Fatalf("healing diff should only add links: %+v", d)
	}
	if sum.PartialPublishes != 1 {
		t.Fatalf("PartialPublishes = %d", sum.PartialPublishes)
	}
	if reg.Counter("fleet.publish.partial").Load() != 1 || reg.Counter("fleet.publish.final").Load() != 1 {
		t.Fatal("publish counters wrong")
	}
}

// TestRunStragglerTimeout arms the post-quorum timer and proves the
// partial generation waits for it (and is skipped entirely when the
// straggler beats the clock).
func TestRunStragglerTimeout(t *testing.T) {
	mk := func(gate chan struct{}) []Shard {
		return []Shard{
			okShard(0, nil),
			{Name: "late", Run: func(ctx RunCtx) (*Output, error) {
				<-gate
				return &Output{Result: mkShardResult(1)}, nil
			}},
		}
	}
	// Straggler slower than the timeout: partial publish fires.
	gate := make(chan struct{})
	var events []PublishEvent
	_, err := Run(Config{
		Workers: 2, Quorum: 1, StragglerTimeout: 10 * time.Millisecond,
		OnPublish: func(ev PublishEvent) {
			events = append(events, ev)
			if !ev.Final {
				close(gate)
			}
		},
	}, mk(gate))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].Final {
		t.Fatalf("expected partial then final, got %+v", events)
	}
	// Straggler faster than the timeout: only the final generation.
	gate2 := make(chan struct{})
	close(gate2)
	events = nil
	_, err = Run(Config{
		Workers: 2, Quorum: 1, StragglerTimeout: time.Minute,
		OnPublish: func(ev PublishEvent) { events = append(events, ev) },
	}, mk(gate2))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || !events[0].Final {
		t.Fatalf("expected final only, got %+v", events)
	}
}

// TestRunLogMergeShardOrder proves trace and span fragments land in the
// shared logs in shard order — including a failed attempt's fragment
// before its retry's — regardless of completion order.
func TestRunLogMergeShardOrder(t *testing.T) {
	trace := obs.NewTracer(0)
	spans := obs.NewSpanLog(0)
	root := spans.Begin(0, "run", "test")
	mkOut := func(i int, tag string) *Output {
		frag := obs.NewTracer(0)
		frag.Emit("fleet", "mark", fmt.Sprintf("shard%d-%s", i, tag), 0)
		sfrag := obs.NewSpanLog(0)
		sp := sfrag.Begin(0, "vp", fmt.Sprintf("vp%d-%s", i, tag))
		sp.End()
		return &Output{Result: mkShardResult(i), Trace: frag, Spans: sfrag}
	}
	gate := make(chan struct{})
	shards := []Shard{
		{Name: "vp0", Run: func(ctx RunCtx) (*Output, error) {
			// Completes last despite being shard 0.
			<-gate
			if ctx.Attempt == 0 {
				return mkOut(0, "fail"), fmt.Errorf("first attempt dies")
			}
			return mkOut(0, "ok"), nil
		}},
		{Name: "vp1", Run: func(ctx RunCtx) (*Output, error) {
			defer close(gate)
			return mkOut(1, "ok"), nil
		}},
	}
	sum, err := Run(Config{Workers: 2, Retries: 1, Trace: trace, Spans: spans, SpanParent: root.ID()}, shards)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Shards[0].State != Done || sum.Shards[0].Attempts != 2 {
		t.Fatalf("shard 0: %+v", sum.Shards[0])
	}
	var marks []string
	for _, ev := range trace.Events() {
		if ev.Kind == "mark" {
			marks = append(marks, ev.Subject)
		}
	}
	want := []string{"shard0-fail", "shard0-ok", "shard1-ok"}
	if !reflect.DeepEqual(marks, want) {
		t.Fatalf("trace merge order = %v, want %v", marks, want)
	}
	root.End()
	var fleetID obs.SpanID
	var vpParents []obs.SpanID
	for _, r := range spans.Records() {
		switch r.Name {
		case "fleet":
			fleetID = r.ID
		case "vp":
			vpParents = append(vpParents, r.Parent)
		}
	}
	if fleetID == 0 {
		t.Fatal("no fleet coordinator span")
	}
	for _, p := range vpParents {
		if p != fleetID {
			t.Fatalf("vp span parented under %d, want fleet span %d", p, fleetID)
		}
	}
}

// TestRunNoShards covers the empty-fleet degenerate case.
func TestRunNoShards(t *testing.T) {
	sum, err := Run(Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Merged == nil || len(sum.Merged.Links) != 0 {
		t.Fatalf("empty fleet merged = %+v", sum.Merged)
	}
}
