// Package fleet is the multi-vantage-point coordinator: it schedules N
// per-VP measurement shards across a bounded worker pool with work
// stealing, streams completed results into an incremental merge
// accumulator, and publishes merged generations as configurable shard
// quorums complete — the deployment shape of §5.6 (one process per
// continent, many VPs per process) rather than one goroutine per VP.
//
// Failure policy is first-class: each shard has a retry budget (a failed
// attempt — typically a remote agent whose session was permanently lost —
// is requeued and may be picked up by any worker, carrying its RoundState
// with it), and a straggler timeout after quorum publishes a partial
// generation that marks the late shards degraded instead of blocking the
// fleet on its slowest member.
//
// Determinism contract: the coordinator itself makes no
// schedule-dependent decisions about *content*. Results fold into the
// merge accumulator keyed by shard index, not completion order; trace and
// span fragments from the shards are merged into the shared logs in
// (shard, attempt) order after the pool drains. For a fixed shard list
// and fault schedule, the final merged map, per-shard results, and
// trace/span fingerprints are byte-identical for any worker count and any
// completion order. Only the *partial* (quorum-time) publishes depend on
// arrival order — they are explicitly a freshness/latency trade, and the
// final generation heals them.
package fleet

import (
	"fmt"
	"sync"
	"time"

	"bdrmap/internal/core"
	"bdrmap/internal/obs"
)

// ShardState is the disposition of one shard. The zero value is Pending —
// deliberately not a terminal state, so a forgotten assignment can never
// read as success.
type ShardState uint8

const (
	// Pending means the shard has not yet reached a terminal state.
	Pending ShardState = iota
	// Done means the shard's final attempt succeeded.
	Done
	// Degraded means the retry budget ran out but a partial output was
	// salvaged from the last attempt (the §5.8 partial-map semantics).
	Degraded
	// Failed means no attempt produced any output.
	Failed
)

func (s ShardState) String() string {
	switch s {
	case Pending:
		return "pending"
	case Done:
		return "done"
	case Degraded:
		return "degraded"
	case Failed:
		return "failed"
	}
	return fmt.Sprintf("ShardState(%d)", uint8(s))
}

// RunCtx is what the pool hands a shard's Run function.
type RunCtx struct {
	// Attempt counts from 0; retries increment it.
	Attempt int
	// Worker identifies the pool worker executing this attempt. Informational.
	Worker int
	// Arena is the executing worker's inference arena, reused (reset, not
	// reallocated) across every shard that worker runs.
	Arena *core.Arena
}

// Output is one attempt's artifacts. Trace and Spans are private
// fragments; the coordinator merges them into the shared logs in shard
// order once the pool drains, which is what keeps the merged timeline
// independent of completion order.
type Output struct {
	Result *core.Result
	Trace  *obs.Tracer
	Spans  *obs.SpanLog
	// Aux carries caller payload through the scheduler (eval keeps the
	// scamper dataset here).
	Aux any
}

// Shard is one schedulable vantage point.
type Shard struct {
	Name string
	// Run executes one attempt. A non-nil error marks the attempt failed
	// and eligible for retry; a non-nil Output alongside the error is
	// kept as salvage in case the budget runs out.
	Run func(ctx RunCtx) (*Output, error)
}

// PublishEvent is one merged generation leaving the coordinator.
type PublishEvent struct {
	// Final is false for the quorum-time partial generation.
	Final bool
	// Merged is the accumulator snapshot at publish time.
	Merged *core.MergedMap
	// Results holds per-shard results, nil where not yet complete.
	Results []*core.Result
	// Degraded names shards not represented in this generation (still in
	// flight or retrying at quorum time, or terminally Degraded/Failed).
	Degraded []string
}

// Config tunes one coordinator run.
type Config struct {
	// Workers bounds pool concurrency; <=0 means 1 (strict shard order).
	Workers int
	// Quorum, when in [1, len(shards)-1], publishes a partial generation
	// once that many shards have completed instead of waiting for the
	// full fleet. 0 disables partial publishing.
	Quorum int
	// Retries is each shard's budget of extra attempts after the first.
	Retries int
	// StragglerTimeout is how long the coordinator waits after quorum for
	// the remaining shards before publishing the partial generation. Zero
	// publishes immediately at quorum.
	StragglerTimeout time.Duration
	// Order optionally permutes initial enqueue order (adversarial
	// completion orders in tests). Must be a permutation of shard indices
	// when set.
	Order []int
	// Obs receives fleet.* counters; Trace and Spans are the shared logs
	// the per-shard fragments merge into. All nil-safe.
	Obs        *obs.Registry
	Trace      *obs.Tracer
	Spans      *obs.SpanLog
	SpanParent obs.SpanID
	// OnPublish receives the partial and final generations, on the
	// coordinator goroutine (never concurrently).
	OnPublish func(PublishEvent)
}

// ShardResult is one shard's terminal record.
type ShardResult struct {
	State    ShardState
	Attempts int
	// Err is the last attempt's error for Degraded/Failed shards.
	Err error
}

// Summary is the coordinator's return value.
type Summary struct {
	// Results and Outputs are indexed by shard; nil for Failed shards.
	Results []*core.Result
	Outputs []*Output
	Shards  []ShardResult
	// Merged is the final accumulator snapshot (also delivered as the
	// Final publish event).
	Merged *core.MergedMap
	// PartialPublishes counts quorum-time generations emitted.
	PartialPublishes int
}

// item is one queued attempt: which shard, and which attempt number the
// executing worker should run. Carrying the attempt in the item (rather
// than shared per-shard counters) keeps the scheduler race-free by
// construction — a shard has at most one queued or running item at a time.
type item struct {
	shard, attempt int
}

// scheduler is the mutex-guarded work-stealing state: one deque per
// worker. A worker pops its own deque from the front and steals from the
// back of others — the classic split that keeps an owner working locally
// in FIFO order while thieves take the coldest work.
type scheduler struct {
	mu     sync.Mutex
	deques [][]item
}

func (s *scheduler) push(w int, it item) {
	s.mu.Lock()
	s.deques[w] = append(s.deques[w], it)
	s.mu.Unlock()
}

// take returns the next item for worker w and whether it was stolen.
func (s *scheduler) take(w int) (it item, stolen, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if q := s.deques[w]; len(q) > 0 {
		it = q[0]
		s.deques[w] = q[1:]
		return it, false, true
	}
	for i := 1; i < len(s.deques); i++ {
		v := (w + i) % len(s.deques)
		if q := s.deques[v]; len(q) > 0 {
			it = q[len(q)-1]
			s.deques[v] = q[:len(q)-1]
			return it, true, true
		}
	}
	return item{}, false, false
}

// completion is one attempt's report back to the coordinator.
type completion struct {
	shard, attempt, worker int
	out                    *Output
	err                    error
}

// Run schedules shards across the pool and blocks until every shard
// reaches a terminal state. It returns an error only for invalid
// configuration; per-shard failures are reported in the Summary.
func Run(cfg Config, shards []Shard) (*Summary, error) {
	n := len(shards)
	if n == 0 {
		return &Summary{Merged: core.NewMergeAccumulator().Snapshot()}, nil
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	order := cfg.Order
	if order == nil {
		order = make([]int, n)
		for i := range order {
			order[i] = i
		}
	} else {
		if len(order) != n {
			return nil, fmt.Errorf("fleet: order has %d entries for %d shards", len(order), n)
		}
		seen := make([]bool, n)
		for _, i := range order {
			if i < 0 || i >= n || seen[i] {
				return nil, fmt.Errorf("fleet: order %v is not a permutation of %d shards", order, n)
			}
			seen[i] = true
		}
	}
	reg := cfg.Obs
	reg.Add("fleet.shards", int64(n))

	fsp := cfg.Spans.Begin(cfg.SpanParent, "fleet", fmt.Sprintf("%d shards", n))
	fsp.SetAttr("~workers", workers)

	sched := &scheduler{deques: make([][]item, workers)}
	home := make([]int, n)
	// workC carries one token per queued item; capacity covers every
	// possible enqueue (initial + full retry budget per shard).
	workC := make(chan struct{}, n*(cfg.Retries+1))
	enqueue := func(it item, w int) {
		sched.push(w, it)
		reg.Inc("fleet.enqueued")
		workC <- struct{}{}
	}
	for k, i := range order {
		home[i] = k % workers
		enqueue(item{shard: i}, home[i])
	}

	completions := make(chan completion, workers)
	quit := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			arena := &core.Arena{}
			for {
				select {
				case <-quit:
					return
				case <-workC:
				}
				it, stolen, ok := sched.take(w)
				if !ok {
					// Token/item invariant violated only by shutdown races.
					continue
				}
				if stolen {
					reg.Inc("fleet.steals")
				}
				reg.Inc("fleet.started")
				out, err := shards[it.shard].Run(RunCtx{Attempt: it.attempt, Worker: w, Arena: arena})
				completions <- completion{shard: it.shard, attempt: it.attempt, worker: w, out: out, err: err}
			}
		}(w)
	}

	// Coordinator loop: the only goroutine that touches accumulator,
	// per-shard terminal state, and publish events.
	acc := core.NewMergeAccumulator()
	sum := &Summary{
		Results: make([]*core.Result, n),
		Outputs: make([]*Output, n),
		Shards:  make([]ShardResult, n),
	}
	allOuts := make([][]*Output, n) // every attempt's output, for ordered log merge
	completed := 0                  // shards resolved with a result (Done or Degraded salvage)
	pending := n                    // shards not yet terminal
	var stragglerC <-chan time.Time
	var stragglerT *time.Timer
	partialDone := false

	publish := func(final bool) {
		var degraded []string
		for i := range shards {
			if sum.Shards[i].State != Done {
				degraded = append(degraded, shards[i].Name)
			}
		}
		ev := PublishEvent{
			Final:    final,
			Merged:   acc.Snapshot(),
			Results:  append([]*core.Result(nil), sum.Results...),
			Degraded: degraded,
		}
		if final {
			sum.Merged = ev.Merged
			reg.Inc("fleet.publish.final")
		} else {
			sum.PartialPublishes++
			reg.Inc("fleet.publish.partial")
			reg.Add("fleet.degraded.at_quorum", int64(len(degraded)))
			partialDone = true
		}
		if cfg.OnPublish != nil {
			cfg.OnPublish(ev)
		}
	}
	maybeArmStraggler := func() {
		if partialDone || stragglerC != nil {
			return
		}
		if cfg.Quorum <= 0 || cfg.Quorum >= n || completed < cfg.Quorum || pending == 0 {
			return
		}
		if cfg.StragglerTimeout <= 0 {
			publish(false)
			return
		}
		stragglerT = time.NewTimer(cfg.StragglerTimeout)
		stragglerC = stragglerT.C
	}

	for pending > 0 {
		select {
		case c := <-completions:
			sum.Shards[c.shard].Attempts = c.attempt + 1
			if c.out != nil {
				allOuts[c.shard] = append(allOuts[c.shard], c.out)
			}
			if c.err == nil {
				sum.Shards[c.shard].State = Done
				sum.Shards[c.shard].Err = nil
				sum.Outputs[c.shard] = c.out
				sum.Results[c.shard] = c.out.Result
				acc.Fold(c.shard, c.out.Result)
				completed++
				pending--
				reg.Inc("fleet.completed")
				maybeArmStraggler()
				continue
			}
			sum.Shards[c.shard].Err = c.err
			if c.attempt < cfg.Retries {
				reg.Inc("fleet.retries")
				// Requeue on the shard's home worker; any idle worker may
				// steal it, RoundState and all.
				enqueue(item{shard: c.shard, attempt: c.attempt + 1}, home[c.shard])
				continue
			}
			// Budget exhausted: salvage the best partial output if any
			// attempt produced one.
			pending--
			if last := lastOutput(allOuts[c.shard]); last != nil {
				sum.Shards[c.shard].State = Degraded
				sum.Outputs[c.shard] = last
				sum.Results[c.shard] = last.Result
				acc.Fold(c.shard, last.Result)
				completed++
				reg.Inc("fleet.shard_degraded")
			} else {
				sum.Shards[c.shard].State = Failed
				reg.Inc("fleet.failed")
			}
			maybeArmStraggler()
		case <-stragglerC:
			stragglerC = nil
			publish(false)
		}
	}
	close(quit)
	wg.Wait()
	if stragglerT != nil {
		stragglerT.Stop()
	}

	// Deterministic log merge: fragments fold into the shared logs in
	// (shard, attempt) order regardless of which worker ran what when.
	for i := range shards {
		for _, out := range allOuts[i] {
			cfg.Trace.Merge(out.Trace)
			cfg.Spans.Merge(out.Spans, fsp.ID())
		}
	}
	fsp.SetAttr("shards", n)
	fsp.SetAttr("completed", completed)
	publish(true)
	fsp.End()
	return sum, nil
}

func lastOutput(outs []*Output) *Output {
	if len(outs) == 0 {
		return nil
	}
	return outs[len(outs)-1]
}
