package core

import (
	"sort"

	"bdrmap/internal/alias"
	"bdrmap/internal/netx"
	"bdrmap/internal/obs"
	"bdrmap/internal/probe"
	"bdrmap/internal/topo"
)

// legacyNode is the working state for one inferred router.
type legacyNode struct {
	id    int
	addrs []netx.Addr

	class  addrClass
	extAS  topo.ASN // for classExternal (or a common origin for classMulti)
	minTTL int
	isVP   bool // contains the VP-side first hop

	// succ/pred adjacency: per neighboring legacyNode, the address pairs
	// observed (ours, theirs).
	succ map[*legacyNode][]legacyAddrPair
	pred map[*legacyNode][]legacyAddrPair

	// dests: target ASes of traces traversing this legacyNode, with counts.
	dests map[topo.ASN]int
	// lastFor: target ASes whose traces ended (last response) here.
	lastFor map[topo.ASN]int
	// firstRoutedAfter: origins of the first routed address observed
	// after this legacyNode in traces (per §5.4.3), with counts.
	firstRoutedAfter map[topo.ASN]int

	owner   topo.ASN
	heur    Heuristic
	host    bool
	done    bool
	merged  bool // folded into another legacyNode by §5.4.7
	spliced bool // attribution copied from the previous round's result
}

type legacyAddrPair struct{ from, to netx.Addr }

// legacyGraph is the router-level measurement legacyGraph plus lookup tables.
type legacyGraph struct {
	in     Input
	vpASNs map[topo.ASN]bool

	nodes  []*legacyNode
	byAddr map[netx.Addr]*legacyNode

	// hostExtra covers unannounced blocks attributed to the host via the
	// positional RIR rule of §5.4.1.
	hostExtra netx.Trie[bool]
	hostOrgs  map[string]bool // RIR org IDs covering known host space

	// echo sources per target AS: origins of echo replies received when
	// tracing toward that AS (used by §5.4.8 step 8.2 and §5.4.3).
	echoFrom map[topo.ASN][]netx.Addr
	// lastRespNode per trace toward each target AS (used by §5.4.8).
	finalNodes map[topo.ASN]map[*legacyNode]int
	// tracesToward counts traces per target AS.
	tracesToward map[topo.ASN]int

	// declined collects the heuristics that examined the legacyNode currently
	// being inferred and passed — consumed (and reset) by the next claim,
	// whose provenance event records them.
	declined []Heuristic
}

// buildLegacyGraph constructs nodes from the dataset's traces and alias legacyGraph.
func buildLegacyGraph(in Input) *legacyGraph {
	g := &legacyGraph{
		in:           in,
		vpASNs:       in.vpASNs(),
		byAddr:       make(map[netx.Addr]*legacyNode),
		hostOrgs:     make(map[string]bool),
		echoFrom:     make(map[topo.ASN][]netx.Addr),
		finalNodes:   make(map[topo.ASN]map[*legacyNode]int),
		tracesToward: make(map[topo.ASN]int),
	}

	// Pass 0: the positional host-space rule (§5.4.1): in each trace, any
	// unrouted address appearing before a VP-AS address is host space;
	// attribute its whole RIR delegation to the host organization.
	for _, tr := range in.Data.Traces {
		lastHost := -1
		for i, h := range tr.Hops {
			if h.Type == probe.HopTimeExceeded && g.originIsHost(h.Addr) {
				lastHost = i
			}
		}
		for i := 0; i < lastHost; i++ {
			h := tr.Hops[i]
			if h.Type != probe.HopTimeExceeded {
				continue
			}
			if _, _, routed := in.View.Origins(h.Addr); routed {
				continue
			}
			if in.RIR == nil {
				continue
			}
			if org, ok := in.RIR.OrgOf(h.Addr); ok {
				g.hostOrgs[org] = true
				for _, rec := range in.RIR.Records() {
					if rec.OrgID == org && rec.Start <= h.Addr && h.Addr <= rec.End() {
						g.hostExtra.Insert(netx.MakePrefix(rec.Start, prefixLenFor(rec)), true)
					}
				}
			}
		}
	}

	// Pass 1: create nodes (alias-merged) and adjacency.
	getNode := func(a netx.Addr) *legacyNode {
		canon := a
		if in.Data.Graph != nil {
			canon = in.Data.Graph.Canonical(a)
		}
		if n, ok := g.byAddr[canon]; ok {
			if _, seen := g.byAddr[a]; !seen {
				n.addrs = append(n.addrs, a)
				g.byAddr[a] = n
			}
			return n
		}
		n := &legacyNode{
			id:               len(g.nodes),
			minTTL:           1 << 30,
			succ:             make(map[*legacyNode][]legacyAddrPair),
			pred:             make(map[*legacyNode][]legacyAddrPair),
			dests:            make(map[topo.ASN]int),
			lastFor:          make(map[topo.ASN]int),
			firstRoutedAfter: make(map[topo.ASN]int),
		}
		n.addrs = append(n.addrs, a)
		g.nodes = append(g.nodes, n)
		g.byAddr[canon] = n
		g.byAddr[a] = n
		return n
	}

	for _, tr := range in.Data.Traces {
		g.tracesToward[tr.TargetAS]++
		var prev *legacyNode
		var prevAddr netx.Addr
		var lastResp *legacyNode
		first := true
		for _, h := range tr.Hops {
			switch h.Type {
			case probe.HopTimeExceeded:
				n := getNode(h.Addr)
				if h.TTL < n.minTTL {
					n.minTTL = h.TTL
				}
				if first {
					n.isVP = true
					first = false
				}
				n.dests[tr.TargetAS]++
				if prev != nil && prev != n {
					prev.succ[n] = append(prev.succ[n], legacyAddrPair{prevAddr, h.Addr})
					n.pred[prev] = append(n.pred[prev], legacyAddrPair{prevAddr, h.Addr})
				}
				prev, prevAddr, lastResp = n, h.Addr, n
			case probe.HopEchoReply, probe.HopUnreachable:
				// §5.4.8 step 8.2 accepts both echo replies and
				// destination unreachables as evidence of the neighbor.
				g.echoFrom[tr.TargetAS] = append(g.echoFrom[tr.TargetAS], h.Addr)
				prev, prevAddr = nil, 0
			default:
				// A timeout breaks adjacency: the next responder is not
				// necessarily connected to the previous one.
				prev, prevAddr = nil, 0
			}
		}
		if lastResp != nil {
			lastResp.lastFor[tr.TargetAS]++
			if g.finalNodes[tr.TargetAS] == nil {
				g.finalNodes[tr.TargetAS] = make(map[*legacyNode]int)
			}
			g.finalNodes[tr.TargetAS][lastResp]++
		}
	}

	// Pass 2: first routed address after each legacyNode (for §5.4.3).
	for _, tr := range in.Data.Traces {
		var seen []*legacyNode
		for _, h := range tr.Hops {
			switch h.Type {
			case probe.HopTimeExceeded:
				n := g.byAddr[h.Addr]
				if n == nil {
					continue
				}
				if origins, _, ok := in.View.Origins(h.Addr); ok {
					for _, s := range seen {
						if s != n {
							s.firstRoutedAfter[origins[0]]++
						}
					}
					seen = seen[:0]
				}
				seen = append(seen, n)
			case probe.HopEchoReply, probe.HopUnreachable:
				if origins, _, ok := in.View.Origins(h.Addr); ok {
					for _, s := range seen {
						s.firstRoutedAfter[origins[0]]++
					}
					seen = seen[:0]
				}
			}
		}
	}

	// Classify every legacyNode.
	for _, n := range g.nodes {
		sort.Slice(n.addrs, func(i, j int) bool { return n.addrs[i] < n.addrs[j] })
		n.class, n.extAS = g.classify(n.addrs)
	}
	// Visit order: by hop distance, then id for determinism.
	sort.Slice(g.nodes, func(i, j int) bool {
		if g.nodes[i].minTTL != g.nodes[j].minTTL {
			return g.nodes[i].minTTL < g.nodes[j].minTTL
		}
		return g.nodes[i].id < g.nodes[j].id
	})
	return g
}

// claim records an ownership decision: rule h attributes router n to owner.
// Every heuristic routes its conclusion through here so the obs registry
// tallies exactly one core.heur.fire.<tag> increment per decided router and
// the tracer receives exactly one provenance event per decision, carrying
// the standard constraint set (origin AS, AS relationship, address class,
// hop distance, declined heuristics) plus any rule-specific evidence.
func (g *legacyGraph) claim(n *legacyNode, owner topo.ASN, h Heuristic, evidence ...obs.Attr) {
	n.owner, n.heur, n.done = owner, h, true
	if g.vpASNs[owner] {
		n.host = true
		g.in.Obs.Inc("core.attr.host")
	} else {
		g.in.Obs.Inc("core.attr.external")
	}
	g.in.Obs.Inc("core.heur.fire." + string(h))
	if g.in.Trace.Enabled() {
		attrs := make([]obs.Attr, 0, 8+len(evidence))
		attrs = append(attrs,
			obs.KV("heuristic", string(h)),
			obs.KV("owner", owner.String()),
			obs.KV("hop", n.minTTL),
			obs.KV("class", n.class.String()),
			obs.KV("addrs", addrList(n.addrs)),
			obs.KV("origin_as", g.originAttr(n)),
			obs.KV("rel", g.in.Rel.Rel(g.in.HostASN, owner).String()),
		)
		if len(g.declined) > 0 {
			attrs = append(attrs, obs.KV("declined", heurList(g.declined)))
		}
		attrs = append(attrs, evidence...)
		g.in.Trace.Emit(obs.StageCore, "decision", n.addrs[0].String(), 0, attrs...)
	}
	g.declined = g.declined[:0]
}

// decline notes that heuristic h examined the current legacyNode and passed; the
// next claim's provenance event records the accumulated list.
func (g *legacyGraph) decline(h Heuristic) { g.declined = append(g.declined, h) }

// originAttr states what the legacyNode's own addresses say about its owner —
// the prefix→origin-AS constraint a decision consulted.
func (g *legacyGraph) originAttr(n *legacyNode) string {
	if n.extAS != 0 {
		return n.extAS.String()
	}
	return n.class.String()
}

// originIsHost reports whether addr maps to the hosting organization.
func (g *legacyGraph) originIsHost(addr netx.Addr) bool {
	if origins, _, ok := g.in.View.Origins(addr); ok {
		for _, o := range origins {
			if g.vpASNs[o] {
				return true
			}
		}
		return false
	}
	if _, ok := g.hostExtra.Lookup(addr); ok {
		return true
	}
	return false
}

// classify determines the address class of a legacyNode from all its addresses.
func (g *legacyGraph) classify(addrs []netx.Addr) (addrClass, topo.ASN) {
	anyHost, anyIXP, anyUnrouted := false, false, false
	common := map[topo.ASN]int{}
	nExt := 0
	for _, a := range addrs {
		if g.in.IXP != nil {
			if _, isIXP := g.in.IXP.IsIXP(a); isIXP {
				anyIXP = true
				continue
			}
		}
		origins, _, ok := g.in.View.Origins(a)
		if !ok {
			if _, host := g.hostExtra.Lookup(a); host {
				anyHost = true
			} else {
				anyUnrouted = true
			}
			continue
		}
		host := false
		for _, o := range origins {
			if g.vpASNs[o] {
				host = true
			}
		}
		if host {
			anyHost = true
			continue
		}
		nExt++
		for _, o := range origins {
			common[o]++
		}
	}
	switch {
	case anyIXP && !anyHost && nExt == 0:
		return classIXP, 0
	case anyHost && nExt == 0:
		return classHost, 0
	case anyUnrouted && !anyHost && nExt == 0:
		return classUnrouted, 0
	case nExt > 0:
		// Single common external origin?
		var best topo.ASN
		bestN := 0
		for o, c := range common {
			if c > bestN || (c == bestN && (best == 0 || o < best)) {
				best, bestN = o, c
			}
		}
		if bestN == nExt && legacySingleFullCover(common, nExt) {
			return classExternal, best
		}
		return classMulti, best
	default:
		return classUnrouted, 0
	}
}

// destSet returns the distinct destination ASes of a legacyNode (grouping the
// host's sibling targets never occurs since host prefixes are not probed).
func (n *legacyNode) destSet() []topo.ASN {
	out := make([]topo.ASN, 0, len(n.dests))
	for d := range n.dests {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// succExternalOrigins returns, per external AS, how many distinct adjacent
// successor addresses map to it.
func (g *legacyGraph) succExternalOrigins(n *legacyNode) map[topo.ASN]int {
	count := make(map[topo.ASN]int)
	seen := make(map[netx.Addr]bool)
	for s, pairs := range n.succ {
		_ = s
		for _, p := range pairs {
			if seen[p.to] {
				continue
			}
			seen[p.to] = true
			origins, _, ok := g.in.View.Origins(p.to)
			if !ok {
				continue
			}
			isHost := false
			for _, o := range origins {
				if g.vpASNs[o] {
					isHost = true
				}
			}
			if !isHost {
				count[origins[0]]++
			}
		}
	}
	return count
}

// nextas computes the candidate owner of §5.4: the most common inferred
// provider among the destination ASes probed through the legacyNode.
func (g *legacyGraph) nextas(n *legacyNode) topo.ASN {
	if len(n.dests) < 2 {
		return 0
	}
	count := make(map[topo.ASN]int)
	for d := range n.dests {
		for _, p := range g.in.Rel.ProvidersOf(d) {
			count[p]++
		}
	}
	var best topo.ASN
	bestN := 0
	better := func(p topo.ASN, c int) bool {
		if c != bestN {
			return c > bestN
		}
		// Tie-break: an AS that is itself among the destinations is the
		// likely transit for the others (a transit customer with its own
		// customers behind it).
		_, pIn := n.dests[p]
		_, bIn := n.dests[best]
		if pIn != bIn {
			return pIn
		}
		return best == 0 || p < best
	}
	for p, c := range count {
		if better(p, c) {
			best, bestN = p, c
		}
	}
	return best
}

// Infer runs the full bdrmap algorithm over one vantage point's dataset.
func InferLegacy(in Input) *Result {
	span := in.Obs.StartStage("core.infer")
	defer span.End()
	g := buildLegacyGraph(in)
	g.spliceClean(in.Prev, in.Data.Dirty)
	g.passHost()
	for _, n := range g.nodes {
		if n.spliced {
			g.replaySpliced(n)
			continue
		}
		if !n.done {
			g.inferNeighbor(n)
		}
	}
	g.passAnalyticalAliases()
	res := g.buildResult()
	g.passSilent(res)
	in.Obs.Add("core.routers", int64(len(res.Routers)))
	in.Obs.Add("core.links", int64(len(res.Links)))
	return res
}

// anonymousAddr reports whether a legacyNode's addresses say nothing about its
// owner: host-supplied interconnection space or IXP LAN space.
func (n *legacyNode) anonymousAddr() bool {
	return n.class == classHost || n.class == classIXP
}

// ---------------------------------------------------------------------------
// §5.4.1: routers operated by the hosting network

func (g *legacyGraph) passHost() {
	host := g.in.HostASN
	for _, n := range g.nodes {
		if n.class != classHost {
			continue
		}
		// Step 1.2 precondition: a subsequent interface also originated by
		// the hosting network.
		hostSucc := g.hostSuccessor(n)
		if hostSucc == nil {
			continue
		}
		// Step 1.1 exception: the neighbor may be multihomed to the host
		// with adjacent routers numbered from host space. This reading
		// only applies when both routers exclusively carry traffic toward
		// A (a host border carries many destinations and never matches).
		extAdj := g.succExternalOrigins(n)
		if len(extAdj) == 1 && !n.isVP {
			var a topo.ASN
			for o := range extAdj {
				a = o
			}
			nd, vd := n.destSet(), hostSucc.destSet()
			onlyA := len(nd) == 1 && nd[0] == a && len(vd) == 1 && vd[0] == a
			if onlyA && g.in.Rel.Rel(host, a) != topo.RelNone && g.multihomedException(n, hostSucc, a) {
				ev := obs.KV("only_dest", a.String())
				g.claim(n, a, HeurMultihomed, ev)
				if !hostSucc.done {
					g.claim(hostSucc, a, HeurMultihomed, ev)
				}
				continue
			}
		}
		g.claim(n, host, HeurHostNetwork,
			obs.KV("host_successor", hostSucc.addrs[0].String()))
	}

	// Extension step (beyond the paper's 1.1/1.2, needed for hosts with
	// no customers to supply interconnection space): a host-space router
	// whose successors fan out into several *mutually unrelated* external
	// ASes must be the host's own border. A neighbor's router only carries
	// traffic into that neighbor's cone, so its adjacent external ASes
	// always include a plausible common transit; an egress fan-out point
	// of the host does not.
	for _, n := range g.nodes {
		if n.done || n.class != classHost {
			continue
		}
		extAdj := g.succExternalOrigins(n)
		if len(extAdj) >= 2 && !g.hasPlausibleTransit(extAdj) {
			g.claim(n, host, HeurHostNetwork,
				obs.KV("egress_fanout", len(extAdj)))
		}
	}
}

// hasPlausibleTransit reports whether some adjacent AS could be providing
// transit to every other adjacent AS (the fig. 9 configuration).
func (g *legacyGraph) hasPlausibleTransit(extAdj map[topo.ASN]int) bool {
	for a := range extAdj {
		ok := true
		for b := range extAdj {
			if b == a {
				continue
			}
			if g.in.Rel.Rel(a, b) != topo.RelCustomer { // b is not a's customer
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// hostSuccessor returns a successor reached over a host-originated address.
func (g *legacyGraph) hostSuccessor(n *legacyNode) *legacyNode {
	var keys []*legacyNode
	for s := range n.succ {
		keys = append(keys, s)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].id < keys[j].id })
	for _, s := range keys {
		for _, p := range n.succ[s] {
			if g.originIsHost(p.to) {
				return s
			}
		}
	}
	return nil
}

// multihomedException applies §5.4.1's guard for step 1.1: if an owner we
// would infer for a router subsequent to n is a customer of the host but
// not a known neighbor of A, the multihomed reading is wrong and the host
// operates n. Returns true when step 1.1 should fire.
func (g *legacyGraph) multihomedException(n, v *legacyNode, a topo.ASN) bool {
	check := func(w *legacyNode) bool {
		if w.class != classExternal || w.extAS == 0 || w.extAS == a {
			return true
		}
		o := w.extAS
		if g.in.Rel.Rel(g.in.HostASN, o) == topo.RelCustomer && !g.in.View.HasLink(o, a) {
			return false // a host customer unrelated to A: n is the host's
		}
		return true
	}
	for w := range n.succ {
		if !check(w) {
			return false
		}
	}
	for w := range v.succ {
		if !check(w) {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// §5.4.2–§5.4.6: neighbor routers, in the paper's order

func (g *legacyGraph) inferNeighbor(n *legacyNode) {
	host := g.in.HostASN
	dests := n.destSet()
	extAdj := g.succExternalOrigins(n)

	// §5.4.2 firewall: the last responding router toward a destination,
	// numbered from space that says nothing about its owner, with no
	// adjacent interfaces at all.
	if n.anonymousAddr() && len(n.succ) == 0 && len(n.lastFor) > 0 {
		if len(dests) == 1 {
			g.claim(n, dests[0], HeurFirewall, obs.KV("last_hop_toward", dests[0].String()))
		} else if na := g.nextas(n); na != 0 {
			g.claim(n, na, HeurFirewall, obs.KV("common_provider_of_dests", na.String()))
		}
		if n.done {
			return
		}
		g.decline(HeurFirewall)
	}

	// §5.4.3 unrouted interior addressing.
	if n.class == classUnrouted || (n.anonymousAddr() && g.allSuccUnrouted(n)) {
		if g.inferUnrouted(n) {
			return
		}
		g.decline(HeurUnrouted)
	}

	// §5.4.4 onenet.
	if n.class == classExternal && n.extAS != 0 && extAdj[n.extAS] > 0 {
		g.claim(n, n.extAS, HeurOnenet, // step 4.1
			obs.KV("adjacent_same_as_ifaces", extAdj[n.extAS]))
		return
	}
	if n.anonymousAddr() {
		if a := g.twoConsecutive(n); a != 0 { // step 4.2
			g.claim(n, a, HeurOnenet, obs.KV("consecutive_as", a.String()))
			return
		}
		g.decline(HeurOnenet)
	}

	// §5.4.5 steps 5.1/5.2: third-party address detection. "Paths toward
	// B" include B's customer cone: a transit customer's border also
	// carries probes toward its own customers.
	if b := g.soleConeRoot(dests); !g.in.Opts.NoThirdParty &&
		n.class == classExternal && n.extAS != 0 && b != 0 {
		a := n.extAS
		if a != b && g.in.Rel.Rel(b, a) == topo.RelProvider {
			// The address belongs to the destination's provider: the
			// router used a route from its provider to respond.
			g.claim(n, b, HeurThirdParty,
				obs.KV("cone_root", b.String()),
				obs.KV("addr_owner_provides", b.String()))
			// Step 5.1: a preceding router observed only with host
			// addresses and only toward B belongs to B as well.
			for p := range n.pred {
				if !p.done && p.class == classHost && g.soleConeRoot(p.destSet()) == b {
					g.claim(p, b, HeurThirdParty, obs.KV("cone_root", b.String()))
				}
			}
			return
		}
		g.decline(HeurThirdParty)
	}

	// §5.4.5 steps 5.3–5.5 for routers with anonymous addresses.
	if n.anonymousAddr() && len(extAdj) == 1 {
		var a topo.ASN
		for o := range extAdj {
			a = o
		}
		switch g.in.Rel.Rel(host, a) {
		case topo.RelCustomer, topo.RelPeer: // step 5.3
			g.claim(n, a, HeurRelationship, obs.KV("adjacent_as", a.String()))
			return
		default:
			// Step 5.4 "missing customer": B provider of A, host provider
			// of B. The paper notes sibling organizations cause this
			// scenario (B numbers its routers from sibling A's space), so
			// require sibling evidence before overriding the IP-AS owner.
			for _, b := range g.in.Rel.ProvidersOf(a) {
				if g.in.Rel.Rel(host, b) == topo.RelCustomer &&
					g.in.Siblings != nil && g.in.Siblings.SameOrg(a, b) {
					g.claim(n, b, HeurMissingCust,
						obs.KV("adjacent_as", a.String()),
						obs.KV("sibling_hit", a.String()+"~"+b.String()))
					return
				}
			}
			g.decline(HeurMissingCust)
			// Step 5.5 hidden peer: a single subsequent origin with no
			// known relationship.
			g.claim(n, a, HeurHiddenPeer, obs.KV("adjacent_as", a.String()))
			return
		}
	}

	// §5.4.6 step 6.1: counting among several adjacent origins.
	if n.anonymousAddr() && len(extAdj) > 1 {
		w := g.countWinner(extAdj)
		g.claim(n, w, HeurCount,
			obs.KV("adjacent_origins", len(extAdj)),
			obs.KV("winner_ifaces", extAdj[w]))
		return
	}

	// §5.4.6 fallback: plain IP-AS mapping.
	if (n.class == classExternal || n.class == classMulti) && n.extAS != 0 {
		g.claim(n, n.extAS, HeurIPAS)
		return
	}

	// Anonymous routers with destinations but no other constraints:
	// the destination set is all we have (IXP LAN firewalls and the
	// remaining host-space cases).
	if n.anonymousAddr() && len(dests) == 1 && len(n.lastFor) > 0 {
		g.claim(n, dests[0], HeurFirewall, obs.KV("last_hop_toward", dests[0].String()))
		return
	}
	if na := g.nextas(n); n.anonymousAddr() && na != 0 && len(n.lastFor) > 0 {
		g.claim(n, na, HeurFirewall, obs.KV("common_provider_of_dests", na.String()))
	}
}

// soleConeRoot returns the single destination AS whose (inferred) customer
// cone covers every other destination in the set, or 0 when no unique such
// AS exists. With one destination it is that destination.
func (g *legacyGraph) soleConeRoot(dests []topo.ASN) topo.ASN {
	switch len(dests) {
	case 0:
		return 0
	case 1:
		return dests[0]
	}
	var root topo.ASN
	for _, b := range dests {
		ok := true
		for _, d := range dests {
			if d == b {
				continue
			}
			isCust := false
			for _, p := range g.in.Rel.ProvidersOf(d) {
				if p == b {
					isCust = true
				}
			}
			if !isCust {
				ok = false
				break
			}
		}
		if ok {
			if root != 0 {
				return 0 // ambiguous
			}
			root = b
		}
	}
	return root
}

// allSuccUnrouted reports whether every successor edge of n crosses an
// unrouted (and non-host) address, with at least one successor.
func (g *legacyGraph) allSuccUnrouted(n *legacyNode) bool {
	if len(n.succ) == 0 {
		return false
	}
	for _, pairs := range n.succ {
		for _, p := range pairs {
			if g.originIsHost(p.to) {
				return false
			}
			if _, _, ok := g.in.View.Origins(p.to); ok {
				return false
			}
			if g.in.IXP != nil {
				if _, isIXP := g.in.IXP.IsIXP(p.to); isIXP {
					return false
				}
			}
		}
	}
	return true
}

// inferUnrouted applies §5.4.3: reason from the origins of the first
// routed interfaces observed after the router.
func (g *legacyGraph) inferUnrouted(n *legacyNode) bool {
	var asns []topo.ASN
	for a := range n.firstRoutedAfter {
		if !g.vpASNs[a] {
			asns = append(asns, a)
		}
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	switch {
	case len(asns) == 1: // step 3.1
		g.claim(n, asns[0], HeurUnrouted)
	case len(asns) > 1: // step 3.2: most frequent provider of the set
		count := map[topo.ASN]int{}
		for _, a := range asns {
			for _, p := range g.in.Rel.ProvidersOf(a) {
				count[p]++
			}
		}
		var best topo.ASN
		bestN := 0
		for p, c := range count {
			if c > bestN || (c == bestN && (best == 0 || p < best)) {
				best, bestN = p, c
			}
		}
		if best != 0 {
			g.claim(n, best, HeurUnrouted)
		}
	default:
		if na := g.nextas(n); na != 0 {
			g.claim(n, na, HeurUnrouted)
		}
	}
	return n.done
}

// twoConsecutive looks for two consecutive routers after n whose
// edge addresses map to one external AS (§5.4.4 step 4.2).
func (g *legacyGraph) twoConsecutive(n *legacyNode) topo.ASN {
	var vs []*legacyNode
	for v := range n.succ {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i].id < vs[j].id })
	for _, v := range vs {
		a := g.edgeOrigin(n, v)
		if a == 0 {
			continue
		}
		var ws []*legacyNode
		for w := range v.succ {
			ws = append(ws, w)
		}
		sort.Slice(ws, func(i, j int) bool { return ws[i].id < ws[j].id })
		for _, w := range ws {
			if g.edgeOrigin(v, w) == a {
				return a
			}
		}
	}
	return 0
}

// edgeOrigin returns the single external origin of the addresses by which
// v was observed adjacent to n, or 0.
func (g *legacyGraph) edgeOrigin(n, v *legacyNode) topo.ASN {
	var out topo.ASN
	for _, p := range n.succ[v] {
		origins, _, ok := g.in.View.Origins(p.to)
		if !ok {
			return 0
		}
		for _, o := range origins {
			if g.vpASNs[o] {
				return 0
			}
		}
		if out == 0 {
			out = origins[0]
		} else if out != origins[0] {
			return 0
		}
	}
	return out
}

// countWinner picks the AS with the most adjacent interfaces, breaking
// ties in favor of a known relationship with the host (§5.4.6 step 6.1).
func (g *legacyGraph) countWinner(extAdj map[topo.ASN]int) topo.ASN {
	type entry struct {
		asn topo.ASN
		n   int
	}
	var entries []entry
	for a, c := range extAdj {
		entries = append(entries, entry{a, c})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].n != entries[j].n {
			return entries[i].n > entries[j].n
		}
		iRel := g.in.Rel.Rel(g.in.HostASN, entries[i].asn) != topo.RelNone
		jRel := g.in.Rel.Rel(g.in.HostASN, entries[j].asn) != topo.RelNone
		if iRel != jRel {
			return iRel
		}
		return entries[i].asn < entries[j].asn
	})
	return entries[0].asn
}

// ---------------------------------------------------------------------------
// §5.4.7: analytical aliases on the near side

func (g *legacyGraph) passAnalyticalAliases() {
	if g.in.Opts.NoAnalyticalAlias {
		return
	}
	for _, v := range g.nodes {
		if v.host || v.owner == 0 || g.vpASNs[v.owner] {
			continue
		}
		// Host-side predecessors with a single observed interface.
		var singles []*legacyNode
		for p := range v.pred {
			if p.host && len(p.addrs) == 1 {
				singles = append(singles, p)
			}
		}
		if len(singles) < 2 {
			continue
		}
		sort.Slice(singles, func(i, j int) bool { return singles[i].id < singles[j].id })
		base := singles[0]
		for _, u := range singles[1:] {
			// Merging must not contradict measurement: skip pairs some
			// probe actively rejected.
			if g.in.Data.Resolver != nil &&
				g.in.Data.Resolver.Verdict(base.addrs[0], u.addrs[0]) == alias.AliasNo {
				continue
			}
			if g.in.Data.Resolver != nil {
				g.in.Data.Resolver.Record(base.addrs[0], u.addrs[0], alias.AliasYes)
			}
			g.in.Trace.Emit(obs.StageCore, "merge", base.addrs[0].String(), 0,
				obs.KV("merged", u.addrs[0].String()),
				obs.KV("via", "analytical"))
			g.mergeNodes(base, u)
			g.in.Obs.Inc("core.alias.merges")
		}
	}
}

// mergeNodes folds src into dst.
func (g *legacyGraph) mergeNodes(dst, src *legacyNode) {
	if dst == src {
		return
	}
	dst.addrs = append(dst.addrs, src.addrs...)
	sort.Slice(dst.addrs, func(i, j int) bool { return dst.addrs[i] < dst.addrs[j] })
	for _, a := range src.addrs {
		g.byAddr[a] = dst
	}
	for s, pairs := range src.succ {
		if s == dst {
			continue
		}
		dst.succ[s] = append(dst.succ[s], pairs...)
		delete(s.pred, src)
		s.pred[dst] = append(s.pred[dst], pairs...)
	}
	for p, pairs := range src.pred {
		if p == dst {
			continue
		}
		dst.pred[p] = append(dst.pred[p], pairs...)
		delete(p.succ, src)
		p.succ[dst] = append(p.succ[dst], pairs...)
	}
	delete(dst.succ, src)
	delete(dst.pred, src)
	if src.minTTL < dst.minTTL {
		dst.minTTL = src.minTTL
	}
	for d, c := range src.dests {
		dst.dests[d] += c
	}
	for d, c := range src.lastFor {
		dst.lastFor[d] += c
	}
	src.addrs = nil
	src.done = true
	src.owner = 0
	src.host = false
	src.merged = true
}

// ---------------------------------------------------------------------------
// Result assembly and §5.4.8

func (g *legacyGraph) buildResult() *Result {
	res := &Result{
		VPName:    g.in.Data.VPName,
		Neighbors: make(map[topo.ASN][]*Link),
		byAddr:    make(map[netx.Addr]*RouterNode),
	}
	nodeOut := make(map[*legacyNode]*RouterNode)
	for _, n := range g.nodes {
		if n.merged {
			continue
		}
		rn := &RouterNode{
			ID:        len(res.Routers),
			Addrs:     n.addrs,
			Owner:     n.owner,
			Heuristic: n.heur,
			IsHost:    n.host || g.vpASNs[n.owner],
			HopDist:   n.minTTL,
		}
		res.Routers = append(res.Routers, rn)
		nodeOut[n] = rn
		for _, a := range n.addrs {
			res.byAddr[a] = rn
		}
	}
	// Interdomain links: edges from a host router to an external-owned one.
	seen := make(map[[2]*RouterNode]bool)
	for _, n := range g.nodes {
		if n.merged || !isHostNode(nodeOut[n]) {
			continue
		}
		var vs []*legacyNode
		for v := range n.succ {
			vs = append(vs, v)
		}
		sort.Slice(vs, func(i, j int) bool { return vs[i].id < vs[j].id })
		for _, v := range vs {
			out := nodeOut[v]
			if out == nil || isHostNode(out) || out.Owner == 0 {
				continue
			}
			key := [2]*RouterNode{nodeOut[n], out}
			if seen[key] {
				continue
			}
			seen[key] = true
			pair := n.succ[v][0]
			res.Links = append(res.Links, &Link{
				Near: nodeOut[n], Far: out,
				NearAddr: pair.from, FarAddr: pair.to,
				FarAS: out.Owner, Heuristic: out.Heuristic,
			})
		}
	}
	for _, l := range res.Links {
		res.Neighbors[l.FarAS] = append(res.Neighbors[l.FarAS], l)
	}
	return res
}

// passSilent applies §5.4.8: place neighbors that never answered
// traceroute, using the BGP view's neighbor list.
func (g *legacyGraph) passSilent(res *Result) {
	host := g.in.HostASN
	for _, a := range g.in.View.NeighborsOf(host) {
		if g.vpASNs[a] || len(res.Neighbors[a]) > 0 {
			continue
		}
		finals := g.finalNodes[a]
		if len(finals) != 1 {
			continue // different exits: cannot place the neighbor
		}
		var r0 *legacyNode
		for n := range finals {
			r0 = n
		}
		if r0.merged || !r0.host {
			continue
		}
		// Distinguish a fully silent neighbor from one answering other
		// ICMP: echo replies whose source maps to the neighbor.
		heur := HeurSilent
		for _, src := range g.echoFrom[a] {
			if origins, _, ok := g.in.View.Origins(src); ok {
				for _, o := range origins {
					if o == a {
						heur = HeurOtherICMP
					}
				}
			}
		}
		near := res.byAddr[r0.addrs[0]]
		if near == nil {
			continue
		}
		l := &Link{Near: near, FarAS: a, Heuristic: heur}
		res.Links = append(res.Links, l)
		res.Neighbors[a] = append(res.Neighbors[a], l)
		g.in.Obs.Inc("core.heur.fire." + string(heur))
		g.in.Trace.Emit(obs.StageCore, "decision", a.String(), 0,
			obs.KV("heuristic", string(heur)),
			obs.KV("owner", a.String()),
			obs.KV("near", r0.addrs[0].String()),
			obs.KV("addrs", r0.addrs[0].String()),
			obs.KV("rel", g.in.Rel.Rel(host, a).String()))
	}
}

// Incremental re-inference: splice prior attributions for clean routers.
//
// A router's final attribution is a pure function of the measurement data
// within three hops of it: every §5.4 heuristic reads evidence at most two
// hops away (twoConsecutive walks succ-of-succ edges, the multihomed
// exception inspects both routers' successors), and a router can
// additionally be claimed by a neighbor one hop away whose own decision
// reads two hops from *it* (§5.4.1 step 1.1, §5.4.5 step 5.1). So when a
// round's dirty-address set is known, any router more than three hops from
// every data-dirty router must resolve exactly as it did last round — its
// prior owner and heuristic are spliced in and the cascade never runs.
//
// Splicing skips a legacyNode's own inference but must not skip the claims its
// inference makes on *other* nodes, or a dirty neighbor at the closure
// boundary would miss a claim a from-scratch run delivers:
//   - §5.4.1 runs unmodified over spliced nodes too — its re-claims are
//     value-identical overwrites (the spliced legacyNode's two-hop neighborhood
//     is unchanged, so the pass reaches the same conclusion), and the
//     done-guards on its neighbor claims are unaffected.
//   - §5.4.5 step 5.1 is replayed: a spliced third-party router re-claims
//     its undecided host-class predecessors at its position in the visit
//     order, exactly as the live branch would.
// Everything downstream — §5.4.7 analytical aliases, result assembly,
// §5.4.8 silent neighbors — runs globally; it is cheap and order-pinned.
//
// mapdb's equivalence mode asserts the spliced map is byte-identical to a
// from-scratch run on the same world; the three-hop radius is the proof
// obligation those tests discharge.

// spliceClean pre-claims every legacyNode whose three-hop neighborhood is free
// of dirty addresses, copying owner/heuristic/host from the previous
// round's result. dirty is the driver's changed-address set (nil means
// everything is dirty — no splicing).
func (g *legacyGraph) spliceClean(prev *Result, dirty map[netx.Addr]bool) {
	if prev == nil || dirty == nil {
		return
	}
	// Data-dirty nodes: any interface address with changed trace evidence.
	dirtyN := make(map[*legacyNode]bool)
	var frontier []*legacyNode
	for _, n := range g.nodes {
		for _, a := range n.addrs {
			if dirty[a] {
				dirtyN[n] = true
				frontier = append(frontier, n)
				break
			}
		}
	}
	// Three-hop closure over the undirected adjacency.
	for hop := 0; hop < 3; hop++ {
		var next []*legacyNode
		mark := func(m *legacyNode) {
			if !dirtyN[m] {
				dirtyN[m] = true
				next = append(next, m)
			}
		}
		for _, n := range frontier {
			for s := range n.succ {
				mark(s)
			}
			for p := range n.pred {
				mark(p)
			}
		}
		frontier = next
	}

	spliced := 0
	for _, n := range g.nodes {
		if dirtyN[n] {
			continue
		}
		rn := prev.byAddr[n.addrs[0]]
		if rn == nil || rn.Owner == 0 {
			continue
		}
		// The prior router must cover exactly this legacyNode's addresses: an
		// analytical composite (§5.4.7) or re-grouped alias set fails the
		// match and the legacyNode runs live instead. Both sides are sorted.
		if len(rn.Addrs) != len(n.addrs) {
			continue
		}
		same := true
		for i := range n.addrs {
			if rn.Addrs[i] != n.addrs[i] {
				same = false
				break
			}
		}
		if !same {
			continue
		}
		n.owner, n.heur, n.host = rn.Owner, rn.Heuristic, rn.IsHost
		n.done, n.spliced = true, true
		spliced++
	}
	g.in.Obs.Add("core.inc.spliced", int64(spliced))
	g.in.Obs.Add("core.inc.dirty_nodes", int64(len(dirtyN)))
}

// replaySpliced reproduces the cross-legacyNode claims a spliced router's own
// inference would have made — today only §5.4.5 step 5.1, the sole
// heuristic that claims another router from inside the cascade. It runs at
// the spliced legacyNode's position in the visit order so the done-guards see
// the same state a from-scratch run would.
func (g *legacyGraph) replaySpliced(n *legacyNode) {
	if g.in.Opts.NoThirdParty || n.heur != HeurThirdParty ||
		n.class != classExternal || n.extAS == 0 {
		return
	}
	b := g.soleConeRoot(n.destSet())
	a := n.extAS
	if b == 0 || a == b || g.in.Rel.Rel(b, a) != topo.RelProvider {
		return
	}
	for p := range n.pred {
		if !p.done && p.class == classHost && g.soleConeRoot(p.destSet()) == b {
			g.claim(p, b, HeurThirdParty, obs.KV("cone_root", b.String()))
		}
	}
}

// legacySingleFullCover is the map-based twin of singleFullCover, kept with
// the frozen oracle.
func legacySingleFullCover(common map[topo.ASN]int, nExt int) bool {
	full := 0
	for _, c := range common {
		if c == nExt {
			full++
		}
	}
	return full == 1
}
