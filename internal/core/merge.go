package core

import (
	"fmt"
	"sort"

	"bdrmap/internal/netx"
	"bdrmap/internal/topo"
)

// The CAIDA/MIT congestion system (§2, §5.8) runs bdrmap from many VPs in
// one network and continuously: per-VP results are merged into a single
// network-wide border map, and successive maps are diffed to track
// interconnection changes. Merge and Diff implement those two operations.

// LinkKey identifies an interdomain link across VPs and runs: the
// canonical (smallest) observed address on each side plus the far AS.
// Silent links have a zero far address.
type LinkKey struct {
	Near  netx.Addr
	Far   netx.Addr
	FarAS topo.ASN
}

func (k LinkKey) String() string {
	far := k.Far.String()
	if k.Far.IsZero() {
		far = "(silent)"
	}
	return fmt.Sprintf("%v->%s %v", k.Near, far, k.FarAS)
}

// MergedLink is one link of the merged map with its observation history.
type MergedLink struct {
	Key       LinkKey
	Heuristic Heuristic
	// SeenBy lists the VPs that observed the link, sorted.
	SeenBy []string
}

// MergedMap is the union of per-VP inferences for one hosting network.
type MergedMap struct {
	Links []MergedLink
	// Neighbors maps each far AS to its link count.
	Neighbors map[topo.ASN]int
	// VPs lists the vantage points merged, sorted.
	VPs []string
}

// canonicalNear returns the canonical identity of a link's near router:
// the smallest address of its (alias-merged) node.
func canonicalNear(l *Link) netx.Addr {
	if l.Near != nil && len(l.Near.Addrs) > 0 {
		return l.Near.Addrs[0]
	}
	return l.NearAddr
}

// canonicalFar returns the far identity (zero for silent links).
func canonicalFar(l *Link) netx.Addr {
	if l.Far != nil && len(l.Far.Addrs) > 0 {
		return l.Far.Addrs[0]
	}
	return l.FarAddr
}

// MergeAccumulator folds per-VP results into a merged map one result at a
// time, in whatever order they complete. The fleet coordinator feeds it
// from the completion stream; Snapshot then materializes a MergedMap that
// is byte-identical to folding the same results in VP-index order — the
// same decide/apply-in-ID-order idiom the parallel sweep uses. The only
// fold-order-sensitive choice in the sequential merge is which VP's
// heuristic tag a shared link keeps (the first, in VP order), so each
// entry remembers the smallest fold ordinal seen and lets it win.
type MergeAccumulator struct {
	byKey map[LinkKey]*mergeEntry
	vps   map[string]bool
}

// mergeEntry is one link's accumulated observation state.
type mergeEntry struct {
	heuristic Heuristic
	ord       int // smallest fold ordinal that contributed, wins the heuristic
	seenBy    map[string]bool
}

// NewMergeAccumulator returns an empty accumulator.
func NewMergeAccumulator() *MergeAccumulator {
	return &MergeAccumulator{
		byKey: make(map[LinkKey]*mergeEntry),
		vps:   make(map[string]bool),
	}
}

// Fold adds one VP's result under fold ordinal ord (its canonical VP
// index). Nil results are ignored, matching Merge's tolerance for VPs
// that produced nothing. Folding is not concurrency-safe; the caller
// serializes completions.
func (a *MergeAccumulator) Fold(ord int, res *Result) {
	if res == nil {
		return
	}
	a.vps[res.VPName] = true
	for _, l := range res.Links {
		k := LinkKey{Near: canonicalNear(l), Far: canonicalFar(l), FarAS: l.FarAS}
		e := a.byKey[k]
		if e == nil {
			e = &mergeEntry{heuristic: l.Heuristic, ord: ord, seenBy: make(map[string]bool)}
			a.byKey[k] = e
		} else if ord < e.ord {
			// A lower-ordinal VP arrived late; its heuristic tag is the
			// one the sequential merge would have kept.
			e.heuristic = l.Heuristic
			e.ord = ord
		}
		e.seenBy[res.VPName] = true
	}
}

// Folded returns the number of distinct VP names folded so far.
func (a *MergeAccumulator) Folded() int { return len(a.vps) }

// Snapshot materializes the merged map from everything folded so far.
// The accumulator remains usable; later Folds extend the same state, so
// a quorum-time partial snapshot and the final one share one accumulator.
func (a *MergeAccumulator) Snapshot() *MergedMap {
	m := &MergedMap{Neighbors: make(map[topo.ASN]int)}
	for k, e := range a.byKey {
		ml := MergedLink{Key: k, Heuristic: e.heuristic, SeenBy: make([]string, 0, len(e.seenBy))}
		for vp := range e.seenBy {
			ml.SeenBy = append(ml.SeenBy, vp)
		}
		sort.Strings(ml.SeenBy)
		m.Links = append(m.Links, ml)
		m.Neighbors[k.FarAS]++
	}
	sort.Slice(m.Links, func(i, j int) bool {
		a, b := m.Links[i].Key, m.Links[j].Key
		if a.FarAS != b.FarAS {
			return a.FarAS < b.FarAS
		}
		if a.Near != b.Near {
			return a.Near < b.Near
		}
		return a.Far < b.Far
	})
	m.VPs = make([]string, 0, len(a.vps))
	for vp := range a.vps {
		m.VPs = append(m.VPs, vp)
	}
	sort.Strings(m.VPs)
	return m
}

// Merge unions per-VP results into one map. Links are deduplicated by
// canonical near/far identity; heuristic tags keep the first VP's value
// (ties are rare and cosmetic). It is the sequential special case of the
// streaming accumulator: fold in index order, snapshot once.
func Merge(results []*Result) *MergedMap {
	acc := NewMergeAccumulator()
	for i, res := range results {
		acc.Fold(i, res)
	}
	return acc.Snapshot()
}

// LinkCount returns the number of merged links.
func (m *MergedMap) LinkCount() int { return len(m.Links) }

// NeighborASes returns the merged neighbor set, sorted.
func (m *MergedMap) NeighborASes() []topo.ASN {
	out := make([]topo.ASN, 0, len(m.Neighbors))
	for a := range m.Neighbors {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MapDiff is the change between two merged maps (two measurement rounds).
type MapDiff struct {
	Added   []MergedLink // present now, absent before
	Removed []MergedLink // present before, absent now
	// NeighborsAdded/Removed track AS-level churn.
	NeighborsAdded, NeighborsRemoved []topo.ASN
}

// Empty reports whether nothing changed.
func (d *MapDiff) Empty() bool {
	return len(d.Added) == 0 && len(d.Removed) == 0
}

// Diff compares two merged maps (old, new).
func Diff(prev, next *MergedMap) *MapDiff {
	d := &MapDiff{}
	prevSet := make(map[LinkKey]MergedLink, len(prev.Links))
	for _, l := range prev.Links {
		prevSet[l.Key] = l
	}
	nextSet := make(map[LinkKey]MergedLink, len(next.Links))
	for _, l := range next.Links {
		nextSet[l.Key] = l
		if _, ok := prevSet[l.Key]; !ok {
			d.Added = append(d.Added, l)
		}
	}
	for _, l := range prev.Links {
		if _, ok := nextSet[l.Key]; !ok {
			d.Removed = append(d.Removed, l)
		}
	}
	for a := range next.Neighbors {
		if prev.Neighbors[a] == 0 {
			d.NeighborsAdded = append(d.NeighborsAdded, a)
		}
	}
	for a := range prev.Neighbors {
		if next.Neighbors[a] == 0 {
			d.NeighborsRemoved = append(d.NeighborsRemoved, a)
		}
	}
	sort.Slice(d.NeighborsAdded, func(i, j int) bool { return d.NeighborsAdded[i] < d.NeighborsAdded[j] })
	sort.Slice(d.NeighborsRemoved, func(i, j int) bool { return d.NeighborsRemoved[i] < d.NeighborsRemoved[j] })
	return d
}
