package core

import (
	"fmt"
	"sort"

	"bdrmap/internal/netx"
	"bdrmap/internal/topo"
)

// The CAIDA/MIT congestion system (§2, §5.8) runs bdrmap from many VPs in
// one network and continuously: per-VP results are merged into a single
// network-wide border map, and successive maps are diffed to track
// interconnection changes. Merge and Diff implement those two operations.

// LinkKey identifies an interdomain link across VPs and runs: the
// canonical (smallest) observed address on each side plus the far AS.
// Silent links have a zero far address.
type LinkKey struct {
	Near  netx.Addr
	Far   netx.Addr
	FarAS topo.ASN
}

func (k LinkKey) String() string {
	far := k.Far.String()
	if k.Far.IsZero() {
		far = "(silent)"
	}
	return fmt.Sprintf("%v->%s %v", k.Near, far, k.FarAS)
}

// MergedLink is one link of the merged map with its observation history.
type MergedLink struct {
	Key       LinkKey
	Heuristic Heuristic
	// SeenBy lists the VPs that observed the link, sorted.
	SeenBy []string
}

// MergedMap is the union of per-VP inferences for one hosting network.
type MergedMap struct {
	Links []MergedLink
	// Neighbors maps each far AS to its link count.
	Neighbors map[topo.ASN]int
	// VPs lists the vantage points merged, sorted.
	VPs []string
}

// canonicalNear returns the canonical identity of a link's near router:
// the smallest address of its (alias-merged) node.
func canonicalNear(l *Link) netx.Addr {
	if l.Near != nil && len(l.Near.Addrs) > 0 {
		return l.Near.Addrs[0]
	}
	return l.NearAddr
}

// canonicalFar returns the far identity (zero for silent links).
func canonicalFar(l *Link) netx.Addr {
	if l.Far != nil && len(l.Far.Addrs) > 0 {
		return l.Far.Addrs[0]
	}
	return l.FarAddr
}

// Merge unions per-VP results into one map. Links are deduplicated by
// canonical near/far identity; heuristic tags keep the first VP's value
// (ties are rare and cosmetic).
func Merge(results []*Result) *MergedMap {
	m := &MergedMap{Neighbors: make(map[topo.ASN]int)}
	byKey := make(map[LinkKey]*MergedLink)
	seenVP := make(map[string]bool)
	for _, res := range results {
		if res == nil {
			continue
		}
		if !seenVP[res.VPName] {
			seenVP[res.VPName] = true
			m.VPs = append(m.VPs, res.VPName)
		}
		for _, l := range res.Links {
			k := LinkKey{Near: canonicalNear(l), Far: canonicalFar(l), FarAS: l.FarAS}
			ml := byKey[k]
			if ml == nil {
				ml = &MergedLink{Key: k, Heuristic: l.Heuristic}
				byKey[k] = ml
			}
			if len(ml.SeenBy) == 0 || ml.SeenBy[len(ml.SeenBy)-1] != res.VPName {
				ml.SeenBy = append(ml.SeenBy, res.VPName)
			}
		}
	}
	for _, ml := range byKey {
		sort.Strings(ml.SeenBy)
		m.Links = append(m.Links, *ml)
		m.Neighbors[ml.Key.FarAS]++
	}
	sort.Slice(m.Links, func(i, j int) bool {
		a, b := m.Links[i].Key, m.Links[j].Key
		if a.FarAS != b.FarAS {
			return a.FarAS < b.FarAS
		}
		if a.Near != b.Near {
			return a.Near < b.Near
		}
		return a.Far < b.Far
	})
	sort.Strings(m.VPs)
	return m
}

// LinkCount returns the number of merged links.
func (m *MergedMap) LinkCount() int { return len(m.Links) }

// NeighborASes returns the merged neighbor set, sorted.
func (m *MergedMap) NeighborASes() []topo.ASN {
	out := make([]topo.ASN, 0, len(m.Neighbors))
	for a := range m.Neighbors {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MapDiff is the change between two merged maps (two measurement rounds).
type MapDiff struct {
	Added   []MergedLink // present now, absent before
	Removed []MergedLink // present before, absent now
	// NeighborsAdded/Removed track AS-level churn.
	NeighborsAdded, NeighborsRemoved []topo.ASN
}

// Empty reports whether nothing changed.
func (d *MapDiff) Empty() bool {
	return len(d.Added) == 0 && len(d.Removed) == 0
}

// Diff compares two merged maps (old, new).
func Diff(prev, next *MergedMap) *MapDiff {
	d := &MapDiff{}
	prevSet := make(map[LinkKey]MergedLink, len(prev.Links))
	for _, l := range prev.Links {
		prevSet[l.Key] = l
	}
	nextSet := make(map[LinkKey]MergedLink, len(next.Links))
	for _, l := range next.Links {
		nextSet[l.Key] = l
		if _, ok := prevSet[l.Key]; !ok {
			d.Added = append(d.Added, l)
		}
	}
	for _, l := range prev.Links {
		if _, ok := nextSet[l.Key]; !ok {
			d.Removed = append(d.Removed, l)
		}
	}
	for a := range next.Neighbors {
		if prev.Neighbors[a] == 0 {
			d.NeighborsAdded = append(d.NeighborsAdded, a)
		}
	}
	for a := range prev.Neighbors {
		if next.Neighbors[a] == 0 {
			d.NeighborsRemoved = append(d.NeighborsRemoved, a)
		}
	}
	sort.Slice(d.NeighborsAdded, func(i, j int) bool { return d.NeighborsAdded[i] < d.NeighborsAdded[j] })
	sort.Slice(d.NeighborsRemoved, func(i, j int) bool { return d.NeighborsRemoved[i] < d.NeighborsRemoved[j] })
	return d
}
