// Package core implements bdrmap's border inference algorithm (§5.4 of the
// paper): it consumes one vantage point's measurement dataset (traceroutes
// plus alias-resolution results), the public BGP view, inferred AS
// relationships, RIR delegations, IXP prefixes, and the curated sibling set
// of the hosting network, and infers the owner of every observed router —
// most importantly the far side of every interdomain link attached to the
// hosting network.
//
// Routers are visited in order of observed hop distance from the VP, and
// the heuristics run in the paper's order: first identify the routers the
// hosting network operates (§5.4.1), then attribute neighbor routers using
// progressively weaker constraints — firewalled customers (§5.4.2),
// unrouted interior addressing (§5.4.3), consecutive same-AS interfaces
// (§5.4.4), AS relationships and third-party detection (§5.4.5), IP-AS
// counting and fallback (§5.4.6) — then collapse analytically-inferred
// aliases on the near side (§5.4.7), and finally place neighbors that never
// answer traceroute (§5.4.8).
package core

import (
	"sort"

	"bdrmap/internal/netx"
	"bdrmap/internal/topo"
)

// Heuristic tags identify which rule produced an inference; the names map
// one-to-one onto the rows of Table 1 in the paper.
type Heuristic string

// Heuristic tags (Table 1 rows).
const (
	HeurHostNetwork  Heuristic = "host"             // §5.4.1 step 1.2 (near side)
	HeurMultihomed   Heuristic = "multihomed-to-vp" // §5.4.1 step 1.1
	HeurFirewall     Heuristic = "firewall"         // §5.4.2
	HeurUnrouted     Heuristic = "unrouted"         // §5.4.3
	HeurOnenet       Heuristic = "onenet"           // §5.4.4
	HeurThirdParty   Heuristic = "third-party"      // §5.4.5 steps 5.1/5.2
	HeurRelationship Heuristic = "as-relationship"  // §5.4.5 step 5.3
	HeurMissingCust  Heuristic = "missing-customer" // §5.4.5 step 5.4
	HeurHiddenPeer   Heuristic = "hidden-peer"      // §5.4.5 step 5.5
	HeurCount        Heuristic = "count"            // §5.4.6 step 6.1
	HeurIPAS         Heuristic = "ip-as"            // §5.4.6 fallback
	HeurIXP          Heuristic = "ixp"              // IXP LAN address attribution
	HeurSilent       Heuristic = "silent"           // §5.4.8 step 8.1
	HeurOtherICMP    Heuristic = "other-icmp"       // §5.4.8 step 8.2
	HeurNone         Heuristic = ""
)

// RouterNode is one inferred router: a set of observed interface addresses
// merged by alias resolution, with an inferred owner.
type RouterNode struct {
	ID    int
	Addrs []netx.Addr

	Owner     topo.ASN
	Heuristic Heuristic
	// IsHost reports the router was attributed to the hosting organization.
	IsHost bool
	// HopDist is the minimum TTL at which the router was observed.
	HopDist int
}

// Link is one inferred interdomain link attached to the hosting network.
type Link struct {
	Near *RouterNode // host-side router
	Far  *RouterNode // neighbor-side router; nil for silent neighbors (§5.4.8)

	NearAddr netx.Addr // address of the host side observed in traces (0 if unknown)
	FarAddr  netx.Addr // neighbor-side address observed in traces (0 for silent)

	FarAS     topo.ASN
	Heuristic Heuristic
}

// Result is a completed inference for one vantage point.
type Result struct {
	VPName  string
	Routers []*RouterNode
	Links   []*Link

	// Neighbors groups inferred links by far AS.
	Neighbors map[topo.ASN][]*Link

	// Intern is the interface-address table the inference ran on; every
	// router address has a dense ID in it. Consumers that index routers
	// by address (mapdb's owner index, the next round's splice path)
	// share it instead of rebuilding address maps.
	Intern *netx.Intern
	// routerByID maps interned address IDs to indices in Routers (-1 for
	// addresses with no router).
	routerByID []int32
}

// RouterByAddr returns the inferred router holding addr, if observed.
func (r *Result) RouterByAddr(a netx.Addr) *RouterNode { return r.routerFor(a) }

func (r *Result) routerFor(a netx.Addr) *RouterNode {
	if r.Intern == nil || r.routerByID == nil {
		return nil
	}
	id, ok := r.Intern.Lookup(a)
	if !ok || int(id) >= len(r.routerByID) || r.routerByID[id] < 0 {
		return nil
	}
	return r.Routers[r.routerByID[id]]
}

// NeighborASes returns all inferred neighbor ASes, sorted.
func (r *Result) NeighborASes() []topo.ASN {
	out := make([]topo.ASN, 0, len(r.Neighbors))
	for asn := range r.Neighbors {
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HeuristicCounts tallies, per heuristic, how many neighbor routers it
// attributed (the row counts of Table 1).
func (r *Result) HeuristicCounts() map[Heuristic]int {
	out := make(map[Heuristic]int)
	for _, n := range r.Routers {
		if !n.IsHost && n.Owner != 0 {
			out[n.Heuristic]++
		}
	}
	return out
}
