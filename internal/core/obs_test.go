package core

import (
	"strings"
	"testing"

	"bdrmap/internal/asrel"
	"bdrmap/internal/bgp"
	"bdrmap/internal/ixp"
	"bdrmap/internal/obs"
	"bdrmap/internal/probe"
	"bdrmap/internal/rir"
	"bdrmap/internal/scamper"
	"bdrmap/internal/sibling"
	"bdrmap/internal/topo"
)

// obsPipeline runs the measurement + inference pipeline on a fixed world
// with an obs registry attached to every stage, and returns the result
// plus the registry snapshot.
func obsPipeline(t testing.TB, prof topo.Profile, seed int64) (*Result, obs.Snapshot) {
	t.Helper()
	n := topo.Generate(prof, seed)
	tab := bgp.NewTable(n)
	view := bgp.Collect(tab, bgp.DefaultVantages(n))
	rel := asrel.Infer(view)
	rdb := rir.FromNetwork(n)
	pl := ixp.Merge(ixp.FromNetwork(n, 1))
	sibs := sibling.FromNetwork(n, 1)
	sibs.CurateHost(n)

	reg := obs.New()
	e := probe.New(n, tab)
	e.SetObs(reg)
	hosts := map[topo.ASN]bool{n.HostASN: true}
	for _, s := range sibs.SiblingsOf(n.HostASN) {
		hosts[s] = true
	}
	d := &scamper.Driver{
		View:     view,
		Prober:   scamper.LocalProber{E: e, VP: n.VPs[0]},
		HostASNs: hosts,
		Cfg:      scamper.Config{Workers: 1},
		Obs:      reg,
	}
	ds := d.Run()
	res := Infer(Input{
		Data: ds, View: view, Rel: rel, RIR: rdb, IXP: pl,
		HostASN: n.HostASN, Siblings: sibs, Obs: reg,
	})
	return res, reg.Snapshot()
}

// fireCounts extracts the core.heur.fire.* counters keyed by heuristic tag.
func fireCounts(snap obs.Snapshot) map[Heuristic]int64 {
	out := make(map[Heuristic]int64)
	for name, v := range snap.Counters {
		if tag, ok := strings.CutPrefix(name, "core.heur.fire."); ok {
			out[Heuristic(tag)] = v
		}
	}
	return out
}

// TestHeuristicFireCounts pins the exact per-heuristic fire counts on
// fixed worlds. These are golden values: a diff here means the heuristic
// cascade changed — a rule fires for routers it previously did not reach,
// or a rule earlier in §5.4's order started (or stopped) shadowing a later
// one — even if the final link set happens to stay plausible.
func TestHeuristicFireCounts(t *testing.T) {
	cases := []struct {
		name string
		prof topo.Profile
		seed int64
		want map[Heuristic]int64
	}{
		{
			name: "tiny-seed1",
			prof: topo.TinyProfile(),
			seed: 1,
			want: map[Heuristic]int64{
				HeurHostNetwork:  5,
				HeurFirewall:     9,
				HeurOnenet:       2,
				HeurThirdParty:   6,
				HeurRelationship: 2,
				HeurHiddenPeer:   1,
				HeurIPAS:         9,
			},
		},
		{
			name: "tiny-seed2",
			prof: topo.TinyProfile(),
			seed: 2,
			want: map[Heuristic]int64{
				HeurHostNetwork:  5,
				HeurFirewall:     4,
				HeurOnenet:       8,
				HeurThirdParty:   7,
				HeurRelationship: 2,
				HeurHiddenPeer:   3,
				HeurIPAS:         15,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, snap := obsPipeline(t, tc.prof, tc.seed)
			got := fireCounts(snap)
			for tag, want := range tc.want {
				if got[tag] != want {
					t.Errorf("core.heur.fire.%s = %d, want %d", tag, got[tag], want)
				}
			}
			for tag, v := range got {
				if _, ok := tc.want[tag]; !ok {
					t.Errorf("unexpected heuristic fired: core.heur.fire.%s = %d", tag, v)
				}
			}
			if t.Failed() {
				t.Logf("full counters:\n%s", snap.Format())
			}
		})
	}
}

// TestObsCountersConsistentWithResult cross-checks the registry against
// the result itself, independent of hard-coded literals:
//
//   - silent/other-icmp fire counts equal the links passSilent placed,
//   - every other claim equals one decided router — non-merged routers
//     with an owner plus the §5.4.7 merges (a merged router was claimed
//     before it was folded into its alias base),
//   - attribution totals partition the claims into host vs external.
func TestObsCountersConsistentWithResult(t *testing.T) {
	res, snap := obsPipeline(t, topo.TinyProfile(), 1)
	fires := fireCounts(snap)

	var silentLinks int64
	for _, l := range res.Links {
		if l.Heuristic == HeurSilent || l.Heuristic == HeurOtherICMP {
			silentLinks++
		}
	}
	if got := fires[HeurSilent] + fires[HeurOtherICMP]; got != silentLinks {
		t.Errorf("silent fire counts = %d, want %d (links)", got, silentLinks)
	}

	var claims int64
	for tag, v := range fires {
		if tag != HeurSilent && tag != HeurOtherICMP {
			claims += v
		}
	}
	var decided int64
	for _, r := range res.Routers {
		if r.Owner != 0 {
			decided++
		}
	}
	merges := snap.Counter("core.alias.merges")
	if claims != decided+merges {
		t.Errorf("claims = %d, want decided routers (%d) + merges (%d)",
			claims, decided, merges)
	}
	if got := snap.Counter("core.attr.host") + snap.Counter("core.attr.external"); got != claims {
		t.Errorf("attr.host+attr.external = %d, want %d claims", got, claims)
	}
	if snap.Counter("core.routers") != int64(len(res.Routers)) {
		t.Errorf("core.routers = %d, want %d", snap.Counter("core.routers"), len(res.Routers))
	}
	if snap.Counter("core.links") != int64(len(res.Links)) {
		t.Errorf("core.links = %d, want %d", snap.Counter("core.links"), len(res.Links))
	}
}
