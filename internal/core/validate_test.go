package core

import (
	"testing"

	"bdrmap/internal/scamper"
	"bdrmap/internal/topo"
)

// These tests mirror §5.6: run the full pipeline on each validation
// profile and require accuracy in (or above) the band the paper reports
// (96.3%–98.9% of inferred links correct).

func validateProfile(t *testing.T, prof topo.Profile, seed int64, minAcc, minCov float64) {
	t.Helper()
	n := topo.Generate(prof, seed)
	res, _ := pipeline(t, n, 0, scamper.Config{})
	correct, total, wrong := validate(n, res)
	if total == 0 {
		t.Fatal("no links inferred")
	}
	acc := float64(correct) / float64(total)
	t.Logf("%s: validation %d/%d = %.3f", prof.Name, correct, total, acc)
	if acc < minAcc {
		for i, w := range wrong {
			if i < 10 {
				t.Logf("  wrong: %s", w)
			}
		}
		t.Errorf("accuracy %.3f < %.3f", acc, minAcc)
	}
	truth := n.TrueNeighbors(n.HostASN)
	found, tot := 0, 0
	for _, nb := range truth {
		if nb.Rel == topo.RelSibling {
			continue
		}
		tot++
		if len(res.Neighbors[nb.ASN]) > 0 {
			found++
		}
	}
	cov := float64(found) / float64(tot)
	t.Logf("%s: neighbor coverage %d/%d = %.3f", prof.Name, found, tot, cov)
	if cov < minCov {
		t.Errorf("coverage %.3f < %.3f", cov, minCov)
	}
}

func TestValidateRE(t *testing.T) {
	if testing.Short() {
		t.Skip("profile validation in -short mode")
	}
	validateProfile(t, topo.REProfile(), 1, 0.96, 0.90)
}

func TestValidateSmallAccess(t *testing.T) {
	if testing.Short() {
		t.Skip("profile validation in -short mode")
	}
	validateProfile(t, topo.SmallAccessProfile(), 1, 0.96, 0.90)
}

func TestValidateLargeAccess(t *testing.T) {
	if testing.Short() {
		t.Skip("profile validation in -short mode")
	}
	validateProfile(t, topo.LargeAccessProfile(), 1, 0.96, 0.92)
}

func TestValidateTier1(t *testing.T) {
	if testing.Short() {
		t.Skip("profile validation in -short mode")
	}
	validateProfile(t, topo.Tier1Profile(), 1, 0.96, 0.92)
}

func TestValidationAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed validation in -short mode")
	}
	for seed := int64(2); seed <= 4; seed++ {
		validateProfile(t, topo.TinyProfile(), seed, 0.85, 0.80)
	}
}
