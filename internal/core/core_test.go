package core

import (
	"bytes"
	"fmt"
	"testing"

	"bdrmap/internal/asrel"
	"bdrmap/internal/bgp"
	"bdrmap/internal/ixp"
	"bdrmap/internal/probe"
	"bdrmap/internal/rir"
	"bdrmap/internal/scamper"
	"bdrmap/internal/sibling"
	"bdrmap/internal/topo"
)

// pipeline runs the full measurement + inference stack for one VP.
func pipeline(t testing.TB, n *topo.Network, vpIdx int, cfg scamper.Config) (*Result, Input) {
	res, in, _, _ := pipelineFull(t, n, vpIdx, cfg)
	return res, in
}

// pipelineFull also exposes the engine and host set so tests can measure
// additional VPs against the same world.
func pipelineFull(t testing.TB, n *topo.Network, vpIdx int, cfg scamper.Config) (*Result, Input, *probe.Engine, map[topo.ASN]bool) {
	t.Helper()
	tab := bgp.NewTable(n)
	view := bgp.Collect(tab, bgp.DefaultVantages(n))
	rel := asrel.Infer(view)
	rdb := rir.FromNetwork(n)
	pl := ixp.Merge(ixp.FromNetwork(n, 1))
	sibs := sibling.FromNetwork(n, 1)
	sibs.CurateHost(n)

	e := probe.New(n, tab)
	hosts := map[topo.ASN]bool{n.HostASN: true}
	for _, s := range sibs.SiblingsOf(n.HostASN) {
		hosts[s] = true
	}
	d := &scamper.Driver{
		View:     view,
		Prober:   scamper.LocalProber{E: e, VP: n.VPs[vpIdx]},
		HostASNs: hosts,
		Cfg:      cfg,
	}
	ds := d.Run()
	in := Input{
		Data: ds, View: view, Rel: rel, RIR: rdb, IXP: pl,
		HostASN: n.HostASN, Siblings: sibs,
	}
	return Infer(in), in, e, hosts
}

// orgOf maps an ASN to its organization (ground truth).
func orgOf(n *topo.Network, a topo.ASN) string {
	if as := n.ASes[a]; as != nil {
		return as.Org
	}
	return ""
}

// validate checks every inferred link against ground truth, mirroring
// §5.6: a link is correct when the far address really sits on a router of
// the inferred organization (or, for silent links, the neighbor truly
// attaches to the identified host router).
func validate(n *topo.Network, res *Result) (correct, total int, wrong []string) {
	truthLinks := n.InterdomainLinks(n.HostASN)
	attachedAt := make(map[topo.ASN]map[topo.RouterID]bool)
	for _, lt := range truthLinks {
		if attachedAt[lt.FarAS] == nil {
			attachedAt[lt.FarAS] = make(map[topo.RouterID]bool)
		}
		attachedAt[lt.FarAS][lt.NearRtr] = true
	}
	// IXP sessions are also ground-truth attachments.
	for _, s := range n.Sessions() {
		peer, peerRtr, hostRtr := s.B, s.BRtr, s.ARtr
		if s.A != n.HostASN {
			peer, peerRtr, hostRtr = s.A, s.ARtr, s.BRtr
		}
		_ = peerRtr
		if attachedAt[peer] == nil {
			attachedAt[peer] = make(map[topo.RouterID]bool)
		}
		attachedAt[peer][hostRtr] = true
	}

	for _, l := range res.Links {
		total++
		if l.Far != nil {
			r := n.RouterByAddr(l.FarAddr)
			if r == nil {
				wrong = append(wrong, fmt.Sprintf("far addr %v unknown", l.FarAddr))
				continue
			}
			if orgOf(n, r.Owner) == orgOf(n, l.FarAS) && orgOf(n, r.Owner) != orgOf(n, n.HostASN) {
				correct++
			} else {
				wrong = append(wrong, fmt.Sprintf("far %v inferred %v truth %v heur=%s",
					l.FarAddr, l.FarAS, r.Owner, l.Heuristic))
			}
			continue
		}
		// Silent link: the neighbor must truly attach at the named router.
		nearR := n.RouterByAddr(l.Near.Addrs[0])
		if nearR != nil && attachedAt[l.FarAS][nearR.ID] {
			correct++
		} else {
			wrong = append(wrong, fmt.Sprintf("silent %v at %v not a true attachment heur=%s",
				l.FarAS, l.Near.Addrs[0], l.Heuristic))
		}
	}
	return correct, total, wrong
}

func TestInferTinyEndToEnd(t *testing.T) {
	n := topo.Generate(topo.TinyProfile(), 1)
	res, _ := pipeline(t, n, 0, scamper.Config{Workers: 1})
	if len(res.Routers) == 0 {
		t.Fatal("no routers inferred")
	}
	if len(res.Links) == 0 {
		t.Fatal("no links inferred")
	}
	correct, total, wrong := validate(n, res)
	t.Logf("tiny: %d/%d correct", correct, total)
	for _, w := range wrong {
		t.Logf("  wrong: %s", w)
	}
	if total == 0 {
		t.Fatal("no links validated")
	}
	if frac := float64(correct) / float64(total); frac < 0.9 {
		t.Errorf("accuracy %.3f < 0.9", frac)
	}
}

func TestHostRoutersIdentified(t *testing.T) {
	n := topo.Generate(topo.TinyProfile(), 2)
	res, _ := pipeline(t, n, 0, scamper.Config{Workers: 1})
	// Every inferred-host router's addresses must really belong to the
	// host organization.
	for _, rn := range res.Routers {
		if !rn.IsHost {
			continue
		}
		for _, a := range rn.Addrs {
			r := n.RouterByAddr(a)
			if r == nil {
				continue
			}
			if orgOf(n, r.Owner) != orgOf(n, n.HostASN) {
				t.Errorf("router with %v inferred host but owned by %v (heur %s)",
					a, r.Owner, rn.Heuristic)
			}
		}
	}
}

func TestNeighborCoverage(t *testing.T) {
	n := topo.Generate(topo.TinyProfile(), 3)
	res, _ := pipeline(t, n, 0, scamper.Config{Workers: 1})
	// Most true neighbors should have at least one inferred link.
	truth := n.TrueNeighbors(n.HostASN)
	found := 0
	var missed []topo.ASN
	for _, nb := range truth {
		if nb.Rel == topo.RelSibling {
			continue
		}
		if len(res.Neighbors[nb.ASN]) > 0 {
			found++
		} else {
			missed = append(missed, nb.ASN)
		}
	}
	tot := 0
	for _, nb := range truth {
		if nb.Rel != topo.RelSibling {
			tot++
		}
	}
	t.Logf("coverage: %d/%d neighbors, missed %v", found, tot, missed)
	if float64(found)/float64(tot) < 0.85 {
		t.Errorf("coverage %.3f too low", float64(found)/float64(tot))
	}
}

func TestPositionalRIRRuleAttributesHiddenSpace(t *testing.T) {
	// The generator numbers the access link of region 0 from the host's
	// *unannounced* block (§5.4.1): addresses there must be attributed to
	// the host via the positional rule + RIR delegation match, and the
	// routers holding them must be inferred host-operated.
	n := topo.Generate(topo.TinyProfile(), 1)
	res, _ := pipeline(t, n, 0, scamper.Config{Workers: 1})
	host := n.ASes[n.HostASN]
	hiddenSeen := 0
	for _, rn := range res.Routers {
		for _, a := range rn.Addrs {
			// Hidden block: delegated to org-host but outside every
			// announced prefix.
			if host.OriginatesAddr(a) {
				continue
			}
			truly := n.RouterByAddr(a)
			if truly == nil || orgOf(n, truly.Owner) != host.Org {
				continue
			}
			covered := false
			for _, d := range n.Delegations {
				if d.OrgID == host.Org && d.Prefix.Contains(a) {
					covered = true
				}
			}
			if !covered {
				continue
			}
			hiddenSeen++
			if !rn.IsHost {
				t.Errorf("hidden host address %v inferred as %v (%s)", a, rn.Owner, rn.Heuristic)
			}
		}
	}
	if hiddenSeen == 0 {
		t.Fatal("no unannounced host addresses observed; positional rule untested")
	}
}

func TestLoadedWorldMeasuresIdentically(t *testing.T) {
	orig := topo.Generate(topo.TinyProfile(), 7)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := topo.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	resA, _ := pipeline(t, orig, 0, scamper.Config{Workers: 1})
	resB, _ := pipeline(t, loaded, 0, scamper.Config{Workers: 1})
	if len(resA.Links) != len(resB.Links) {
		t.Fatalf("links: %d vs %d", len(resA.Links), len(resB.Links))
	}
	for i := range resA.Links {
		a, b := resA.Links[i], resB.Links[i]
		if a.NearAddr != b.NearAddr || a.FarAddr != b.FarAddr ||
			a.FarAS != b.FarAS || a.Heuristic != b.Heuristic {
			t.Fatalf("link %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestHeuristicSpread(t *testing.T) {
	n := topo.Generate(topo.TinyProfile(), 4)
	res, _ := pipeline(t, n, 0, scamper.Config{Workers: 1})
	counts := res.HeuristicCounts()
	t.Logf("heuristic counts: %v", counts)
	if len(counts) < 3 {
		t.Errorf("only %d heuristics fired: %v", len(counts), counts)
	}
}
