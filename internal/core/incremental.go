package core

import (
	"bdrmap/internal/netx"
	"bdrmap/internal/obs"
	"bdrmap/internal/topo"
)

// Incremental re-inference: splice prior attributions for clean routers.
//
// A router's final attribution is a pure function of the measurement data
// within three hops of it: every §5.4 heuristic reads evidence at most two
// hops away (twoConsecutive walks succ-of-succ edges, the multihomed
// exception inspects both routers' successors), and a router can
// additionally be claimed by a neighbor one hop away whose own decision
// reads two hops from *it* (§5.4.1 step 1.1, §5.4.5 step 5.1). So when a
// round's dirty-address set is known, any router more than three hops from
// every data-dirty router must resolve exactly as it did last round — its
// prior owner and heuristic are spliced in and the cascade never runs.
//
// Splicing skips a node's own inference but must not skip the claims its
// inference makes on *other* nodes, or a dirty neighbor at the closure
// boundary would miss a claim a from-scratch run delivers:
//   - §5.4.1 runs unmodified over spliced nodes too — its re-claims are
//     value-identical overwrites (the spliced node's two-hop neighborhood
//     is unchanged, so the pass reaches the same conclusion), and the
//     done-guards on its neighbor claims are unaffected.
//   - §5.4.5 step 5.1 is replayed: a spliced third-party router re-claims
//     its undecided host-class predecessors at its position in the visit
//     order, exactly as the live branch would.
// Everything downstream — §5.4.7 analytical aliases, result assembly,
// §5.4.8 silent neighbors — runs globally; it is cheap and order-pinned.
//
// mapdb's equivalence mode asserts the spliced map is byte-identical to a
// from-scratch run on the same world; the three-hop radius is the proof
// obligation those tests discharge.
//
// The working set — the dirty marks and the BFS frontier — lives in the
// arena and the previous result is consulted through its intern table, so
// a splice allocates nothing per node: no map of visited routers, no
// per-node address lookups beyond one interned-ID probe.

// spliceClean pre-claims every node whose three-hop neighborhood is free
// of dirty addresses, copying owner/heuristic/host from the previous
// round's result. dirty is the driver's changed-address set (nil means
// everything is dirty — no splicing).
func (g *graph) spliceClean(prev *Result, dirty map[netx.Addr]bool) {
	if prev == nil || dirty == nil {
		return
	}
	ar := g.ar
	mark := ar.nodeMark[:0]
	for range g.nodes {
		mark = append(mark, false)
	}
	// Data-dirty nodes: any interface address with changed trace evidence.
	frontier := ar.frontier[:0]
	dirtyN := 0
	for i := range g.nodes {
		for _, a := range g.nodes[i].addrs {
			if dirty[a] {
				mark[i] = true
				dirtyN++
				frontier = append(frontier, int32(i))
				break
			}
		}
	}
	// Three-hop closure over the undirected adjacency.
	next := ar.next[:0]
	for hop := 0; hop < 3; hop++ {
		next = next[:0]
		for _, id := range frontier {
			n := &g.nodes[id]
			for _, e := range n.succ {
				if s := ar.edges[e].to; !mark[s] {
					mark[s] = true
					dirtyN++
					next = append(next, s)
				}
			}
			for _, e := range n.pred {
				if p := ar.edges[e].from; !mark[p] {
					mark[p] = true
					dirtyN++
					next = append(next, p)
				}
			}
		}
		frontier, next = next, frontier
	}

	spliced := 0
	for i := range g.nodes {
		if mark[i] {
			continue
		}
		n := &g.nodes[i]
		rn := prev.routerFor(n.addrs[0])
		if rn == nil || rn.Owner == 0 {
			continue
		}
		// The prior router must cover exactly this node's addresses: an
		// analytical composite (§5.4.7) or re-grouped alias set fails the
		// match and the node runs live instead. Both sides are sorted.
		if len(rn.Addrs) != len(n.addrs) {
			continue
		}
		same := true
		for j := range n.addrs {
			if rn.Addrs[j] != n.addrs[j] {
				same = false
				break
			}
		}
		if !same {
			continue
		}
		n.owner, n.heur, n.host = rn.Owner, rn.Heuristic, rn.IsHost
		n.done, n.spliced = true, true
		spliced++
	}
	ar.nodeMark = mark[:0]
	ar.frontier = frontier[:0]
	ar.next = next[:0]
	g.in.Obs.Add("core.inc.spliced", int64(spliced))
	g.in.Obs.Add("core.inc.dirty_nodes", int64(dirtyN))
}

// replaySpliced buffers the cross-node claims a spliced router's own
// inference would have made — today only §5.4.5 step 5.1, the sole
// heuristic that claims another router from inside the cascade. It runs at
// the spliced node's position in the visit order so the done-guards see
// the same state a from-scratch run would.
func (g *graph) replaySpliced(id int32, ws *workspace) {
	n := &g.nodes[id]
	if g.in.Opts.NoThirdParty || n.heur != HeurThirdParty ||
		n.class != classExternal || n.extAS == 0 {
		return
	}
	b := g.soleConeRoot(n.dests)
	a := n.extAS
	if b == 0 || a == b || g.in.Rel.Rel(b, a) != topo.RelProvider {
		return
	}
	tracing := g.in.Trace.Enabled()
	for _, e := range n.pred {
		p := g.ar.edges[e].from
		pn := &g.nodes[p]
		if !pn.done && pn.class == classHost && g.soleConeRoot(pn.dests) == b {
			var ev []obs.Attr
			if tracing {
				ev = []obs.Attr{obs.KV("cone_root", b.String())}
			}
			ws.claim(p, true, b, HeurThirdParty, ev)
		}
	}
}
