package core

import (
	"bdrmap/internal/netx"
	"bdrmap/internal/obs"
	"bdrmap/internal/topo"
)

// Incremental re-inference: splice prior attributions for clean routers.
//
// A router's final attribution is a pure function of the measurement data
// within three hops of it: every §5.4 heuristic reads evidence at most two
// hops away (twoConsecutive walks succ-of-succ edges, the multihomed
// exception inspects both routers' successors), and a router can
// additionally be claimed by a neighbor one hop away whose own decision
// reads two hops from *it* (§5.4.1 step 1.1, §5.4.5 step 5.1). So when a
// round's dirty-address set is known, any router more than three hops from
// every data-dirty router must resolve exactly as it did last round — its
// prior owner and heuristic are spliced in and the cascade never runs.
//
// Splicing skips a node's own inference but must not skip the claims its
// inference makes on *other* nodes, or a dirty neighbor at the closure
// boundary would miss a claim a from-scratch run delivers:
//   - §5.4.1 runs unmodified over spliced nodes too — its re-claims are
//     value-identical overwrites (the spliced node's two-hop neighborhood
//     is unchanged, so the pass reaches the same conclusion), and the
//     done-guards on its neighbor claims are unaffected.
//   - §5.4.5 step 5.1 is replayed: a spliced third-party router re-claims
//     its undecided host-class predecessors at its position in the visit
//     order, exactly as the live branch would.
// Everything downstream — §5.4.7 analytical aliases, result assembly,
// §5.4.8 silent neighbors — runs globally; it is cheap and order-pinned.
//
// mapdb's equivalence mode asserts the spliced map is byte-identical to a
// from-scratch run on the same world; the three-hop radius is the proof
// obligation those tests discharge.

// spliceClean pre-claims every node whose three-hop neighborhood is free
// of dirty addresses, copying owner/heuristic/host from the previous
// round's result. dirty is the driver's changed-address set (nil means
// everything is dirty — no splicing).
func (g *graph) spliceClean(prev *Result, dirty map[netx.Addr]bool) {
	if prev == nil || dirty == nil {
		return
	}
	// Data-dirty nodes: any interface address with changed trace evidence.
	dirtyN := make(map[*node]bool)
	var frontier []*node
	for _, n := range g.nodes {
		for _, a := range n.addrs {
			if dirty[a] {
				dirtyN[n] = true
				frontier = append(frontier, n)
				break
			}
		}
	}
	// Three-hop closure over the undirected adjacency.
	for hop := 0; hop < 3; hop++ {
		var next []*node
		mark := func(m *node) {
			if !dirtyN[m] {
				dirtyN[m] = true
				next = append(next, m)
			}
		}
		for _, n := range frontier {
			for s := range n.succ {
				mark(s)
			}
			for p := range n.pred {
				mark(p)
			}
		}
		frontier = next
	}

	spliced := 0
	for _, n := range g.nodes {
		if dirtyN[n] {
			continue
		}
		rn := prev.byAddr[n.addrs[0]]
		if rn == nil || rn.Owner == 0 {
			continue
		}
		// The prior router must cover exactly this node's addresses: an
		// analytical composite (§5.4.7) or re-grouped alias set fails the
		// match and the node runs live instead. Both sides are sorted.
		if len(rn.Addrs) != len(n.addrs) {
			continue
		}
		same := true
		for i := range n.addrs {
			if rn.Addrs[i] != n.addrs[i] {
				same = false
				break
			}
		}
		if !same {
			continue
		}
		n.owner, n.heur, n.host = rn.Owner, rn.Heuristic, rn.IsHost
		n.done, n.spliced = true, true
		spliced++
	}
	g.in.Obs.Add("core.inc.spliced", int64(spliced))
	g.in.Obs.Add("core.inc.dirty_nodes", int64(len(dirtyN)))
}

// replaySpliced reproduces the cross-node claims a spliced router's own
// inference would have made — today only §5.4.5 step 5.1, the sole
// heuristic that claims another router from inside the cascade. It runs at
// the spliced node's position in the visit order so the done-guards see
// the same state a from-scratch run would.
func (g *graph) replaySpliced(n *node) {
	if g.in.Opts.NoThirdParty || n.heur != HeurThirdParty ||
		n.class != classExternal || n.extAS == 0 {
		return
	}
	b := g.soleConeRoot(n.destSet())
	a := n.extAS
	if b == 0 || a == b || g.in.Rel.Rel(b, a) != topo.RelProvider {
		return
	}
	for p := range n.pred {
		if !p.done && p.class == classHost && g.soleConeRoot(p.destSet()) == b {
			g.claim(p, b, HeurThirdParty, obs.KV("cone_root", b.String()))
		}
	}
}
