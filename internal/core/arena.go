package core

import (
	"sync"

	"bdrmap/internal/netx"
	"bdrmap/internal/topo"
)

// Arena owns every slab the inference graph is built from. One inference
// populates the slabs; Reset truncates them in place so the next round (or
// the next eval scenario) reuses the backing arrays instead of handing the
// garbage collector a fresh graph per run. Results never alias arena
// memory: router address slices are heap-owned, so an Arena can be reset
// the moment Infer returns.
//
// An Arena serves one inference at a time. Infer uses Input.Arena when set;
// otherwise it borrows one from an internal pool, which keeps concurrent
// inferences (parallel eval scenarios, mapdb equivalence checks) safe while
// still reaching steady-state allocation for callers that loop.
type Arena struct {
	// Node slab and derived orderings.
	nodes    []node
	order    []int32 // visit order: minTTL, then creation id
	addrNode []int32 // interned addr ID -> node id, -1 when absent

	// Build-time event buffers: adjacency pairs in trace order, and packed
	// (node<<32|AS) keys for the per-node AS tallies.
	adjEv  []adjEvent
	destEv []uint64
	lastEv []uint64
	fraEv  []uint64

	// Edge slab: directed adjacency records plus the CSR storage their
	// pair and index lists are carved from.
	edges    []edge
	pairSlab []addrPair
	succSlab []int32
	predSlab []int32
	edgeIdx  map[uint64]int32 // (from<<32|to) -> edge index
	edgeCnt  []int32          // per-edge counters, reused as fill cursors

	// asSlab backs the per-node dests/lastFor/firstRoutedAfter tallies.
	asSlab []asCount

	// Splice working set (incremental rounds).
	nodeMark []bool
	frontier []int32
	next     []int32

	// Per-sweep scratch; parallel workers get their own copies.
	ws workspace
}

// workspace holds the small per-decision scratch buffers of the §5.4
// cascade. Each inference worker owns one, so the sweep shares no mutable
// state between routers decided concurrently.
type workspace struct {
	extAdj []asCount
	counts []asCount
	asns   []topo.ASN
	ops    []op

	// seenEpoch deduplicates interned addresses without clearing: a slot
	// is "set" when it holds the current epoch.
	seenEpoch []uint32
	epoch     uint32
}

// mark records an interned address as seen in the current epoch and
// reports whether it was already seen. The slot array grows on demand.
func (ws *workspace) mark(id int32) bool {
	for int(id) >= len(ws.seenEpoch) {
		ws.seenEpoch = append(ws.seenEpoch, 0)
	}
	if ws.seenEpoch[id] == ws.epoch {
		return true
	}
	ws.seenEpoch[id] = ws.epoch
	return false
}

// adjEvent is one observed adjacency: consecutive responding hops.
type adjEvent struct {
	from, to int32
	pair     addrPair
}

// edge is a directed router adjacency with the address pairs it was
// observed over, in trace order. The pair slice starts as a window into
// the arena's pair slab; §5.4.7 merges may extend it (copying out).
type edge struct {
	from, to int32
	pairs    []addrPair
}

type addrPair struct{ from, to netx.Addr }

// asCount is one (AS, count) tally; slices of it replace the per-node
// count maps of the map-based core and iterate in sorted AS order.
type asCount struct {
	as topo.ASN
	n  int32
}

// findAS returns the count for as in a sorted asCount slice, 0 if absent.
func findAS(s []asCount, as topo.ASN) int32 {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid].as < as {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s) && s[lo].as == as {
		return s[lo].n
	}
	return 0
}

// Reset truncates every slab in place, keeping capacity.
func (a *Arena) Reset() {
	a.nodes = a.nodes[:0]
	a.order = a.order[:0]
	a.addrNode = a.addrNode[:0]
	a.adjEv = a.adjEv[:0]
	a.destEv = a.destEv[:0]
	a.lastEv = a.lastEv[:0]
	a.fraEv = a.fraEv[:0]
	a.edges = a.edges[:0]
	a.pairSlab = a.pairSlab[:0]
	a.succSlab = a.succSlab[:0]
	a.predSlab = a.predSlab[:0]
	clear(a.edgeIdx)
	a.edgeCnt = a.edgeCnt[:0]
	a.asSlab = a.asSlab[:0]
	a.nodeMark = a.nodeMark[:0]
	a.frontier = a.frontier[:0]
	a.next = a.next[:0]
	// Workspace epoch arrays survive as-is: slots older than the current
	// epoch read as unset, so no clearing is needed.
}

var arenaPool = sync.Pool{New: func() any { return &Arena{} }}
