package core

import (
	"sort"

	"bdrmap/internal/asrel"
	"bdrmap/internal/bgp"
	"bdrmap/internal/ixp"
	"bdrmap/internal/netx"
	"bdrmap/internal/obs"
	"bdrmap/internal/probe"
	"bdrmap/internal/rir"
	"bdrmap/internal/scamper"
	"bdrmap/internal/sibling"
	"bdrmap/internal/topo"
)

// Input bundles everything bdrmap consumes (§5.2 input data plus the
// collected measurements).
type Input struct {
	Data     *scamper.Dataset
	View     *bgp.View
	Rel      *asrel.Inference
	RIR      *rir.DB
	IXP      *ixp.PrefixList
	HostASN  topo.ASN
	Siblings *sibling.Set
	Opts     Options
	// Obs receives per-heuristic fire counts and attribution totals.
	// Nil disables them.
	Obs *obs.Registry
	// Trace receives one provenance event per §5.4 ownership decision —
	// the router, hop distance, constraints consulted, and which earlier
	// heuristics declined. Nil disables them.
	Trace *obs.Tracer
	// Spans receives one "stage" span ("infer") per inference, parented
	// under SpanParent, carrying router/link counts. Nil disables it.
	Spans *obs.SpanLog
	// SpanParent is the span the infer span attaches under (typically the
	// enclosing "vp" span; 0 makes it a root).
	SpanParent obs.SpanID
	// Prev, together with Data.Dirty, enables incremental re-inference:
	// routers more than three hops from every dirty address splice their
	// attribution from the previous round's result instead of re-running
	// the §5.4 cascade. Nil (or a nil Data.Dirty) infers from scratch.
	Prev *Result
	// Arena supplies the slab storage the router graph is built from; the
	// caller may reuse one across rounds and scenarios (resetting between
	// inferences is Infer's job). Nil borrows from an internal pool.
	Arena *Arena
}

// Options disable individual heuristics for ablation studies and tune the
// inference sweep.
type Options struct {
	// NoThirdParty disables §5.4.5 third-party address detection.
	NoThirdParty bool
	// NoAnalyticalAlias disables the §5.4.7 near-side collapse.
	NoAnalyticalAlias bool
	// InferWorkers parallelizes the §5.4 heuristic sweep across routers at
	// equal hop distance (the paper's ordering constraint only applies
	// *between* distances, §5.4.5). Decisions are applied in visit order
	// regardless, so links, owners, and trace fingerprints are identical
	// for any worker count. 0 or 1 runs single-threaded.
	InferWorkers int
}

// vpASNs returns the set of ASes belonging to the hosting organization.
func (in Input) vpASNs() map[topo.ASN]bool {
	out := map[topo.ASN]bool{in.HostASN: true}
	if in.Siblings != nil {
		for _, s := range in.Siblings.SiblingsOf(in.HostASN) {
			out[s] = true
		}
	}
	return out
}

// addrClass categorizes one observed address by IP-AS mapping.
type addrClass int8

const (
	classHost     addrClass = iota // originated by a VP AS (or host RIR space)
	classExternal                  // originated by exactly one external AS
	classMulti                     // multi-origin including no VP AS
	classIXP                       // inside a known IXP LAN prefix
	classUnrouted                  // no covering announced prefix
)

func (c addrClass) String() string {
	switch c {
	case classHost:
		return "host"
	case classExternal:
		return "external"
	case classMulti:
		return "multi-origin"
	case classIXP:
		return "ixp"
	default:
		return "unrouted"
	}
}

// node is the working state for one inferred router. Nodes live in the
// arena's slab and are addressed by their creation index; adjacency and
// tally slices are windows into arena slabs, while addrs is heap-owned
// because it is handed to the Result.
type node struct {
	addrs []netx.Addr // sorted after build

	succ []int32 // edge indices with from == this node, sorted by .to
	pred []int32 // edge indices with to == this node, sorted by .from

	dests            []asCount // target ASes of traces traversing this node
	lastFor          []asCount // target ASes whose traces ended here
	firstRoutedAfter []asCount // §5.4.3: origins of the first routed address after

	minTTL int
	class  addrClass
	extAS  topo.ASN // for classExternal (or a common origin for classMulti)
	isVP   bool     // contains the VP-side first hop

	owner   topo.ASN
	heur    Heuristic
	host    bool
	done    bool
	merged  bool // folded into another node by §5.4.7
	spliced bool // attribution copied from the previous round's result
}

// finalInfo tracks, per target AS, the single last-responding router of
// its traces (§5.4.8 needs exactly-one to place a silent neighbor).
type finalInfo struct {
	n     int32
	multi bool
}

// graph is the router-level measurement graph plus lookup tables. Node and
// edge storage lives in the arena; g.nodes/g.order etc. alias its slabs.
type graph struct {
	in     Input
	vpASNs map[topo.ASN]bool
	intern *netx.Intern
	ar     *Arena

	nodes []node
	order []int32

	// hostExtra covers unannounced blocks attributed to the host via the
	// positional RIR rule of §5.4.1.
	hostExtra netx.Trie[bool]
	hostOrgs  map[string]bool // RIR org IDs covering known host space

	// echo sources per target AS: origins of echo replies received when
	// tracing toward that AS (used by §5.4.8 step 8.2 and §5.4.3).
	echoFrom map[topo.ASN][]netx.Addr
	// finalNodes records the last-responding router per target AS.
	finalNodes map[topo.ASN]finalInfo
	// tracesToward counts traces per target AS.
	tracesToward map[topo.ASN]int

	// declined collects the heuristics that examined the node currently
	// being inferred and passed — consumed (and reset) by the next claim,
	// whose provenance event records them. Like the map-based core, the
	// list deliberately carries over from a router that declined every
	// rule into the next claim's provenance event.
	declined []Heuristic
}

// nodeAt returns the node for an interned address ID, or -1.
func (g *graph) nodeAt(id int32) int32 {
	if int(id) >= len(g.ar.addrNode) {
		return -1
	}
	return g.ar.addrNode[id]
}

// internID interns a, growing the addr->node index alongside the table.
func (g *graph) internID(a netx.Addr) int32 {
	id := g.intern.ID(a)
	for int(id) >= len(g.ar.addrNode) {
		g.ar.addrNode = append(g.ar.addrNode, -1)
	}
	return id
}

// buildGraph constructs nodes from the dataset's traces and alias graph.
func buildGraph(in Input, ar *Arena) *graph {
	g := &graph{
		in:           in,
		vpASNs:       in.vpASNs(),
		ar:           ar,
		hostOrgs:     make(map[string]bool),
		echoFrom:     make(map[topo.ASN][]netx.Addr),
		finalNodes:   make(map[topo.ASN]finalInfo),
		tracesToward: make(map[topo.ASN]int),
	}
	g.intern = in.Data.Intern
	if g.intern == nil {
		g.intern = netx.NewIntern(1024)
	}

	// Pass 0: the positional host-space rule (§5.4.1): in each trace, any
	// unrouted address appearing before a VP-AS address is host space;
	// attribute its whole RIR delegation to the host organization.
	for _, tr := range in.Data.Traces {
		lastHost := -1
		for i, h := range tr.Hops {
			if h.Type == probe.HopTimeExceeded && g.originIsHost(h.Addr) {
				lastHost = i
			}
		}
		for i := 0; i < lastHost; i++ {
			h := tr.Hops[i]
			if h.Type != probe.HopTimeExceeded {
				continue
			}
			if _, _, routed := in.View.Origins(h.Addr); routed {
				continue
			}
			if in.RIR == nil {
				continue
			}
			if org, ok := in.RIR.OrgOf(h.Addr); ok {
				g.hostOrgs[org] = true
				for _, rec := range in.RIR.OrgRecords(org) {
					if rec.Start <= h.Addr && h.Addr <= rec.End() {
						g.hostExtra.Insert(netx.MakePrefix(rec.Start, prefixLenFor(rec)), true)
					}
				}
			}
		}
	}

	// Pass 1: create nodes (alias-merged), record adjacency and tally
	// events. Nodes are created in first-seen order so creation indices
	// reproduce the map-based core's ids exactly; the heavy per-node state
	// is only event streams here, compressed into slab windows below.
	getNode := func(a netx.Addr) int32 {
		aID := g.internID(a)
		canon := a
		if in.Data.Graph != nil {
			canon = in.Data.Graph.Canonical(a)
		}
		cID := aID
		if canon != a {
			cID = g.internID(canon)
		}
		if n := g.ar.addrNode[cID]; n >= 0 {
			if g.ar.addrNode[aID] < 0 {
				g.nodes[n].addrs = append(g.nodes[n].addrs, a)
				g.ar.addrNode[aID] = n
			}
			return n
		}
		n := int32(len(g.ar.nodes))
		g.ar.nodes = append(g.ar.nodes, node{minTTL: 1 << 30})
		g.nodes = g.ar.nodes
		g.nodes[n].addrs = append(g.nodes[n].addrs, a)
		g.ar.addrNode[cID] = n
		g.ar.addrNode[aID] = n
		return n
	}

	for _, tr := range in.Data.Traces {
		g.tracesToward[tr.TargetAS]++
		var prev int32 = -1
		var prevAddr netx.Addr
		var lastResp int32 = -1
		first := true
		for _, h := range tr.Hops {
			switch h.Type {
			case probe.HopTimeExceeded:
				n := getNode(h.Addr)
				nd := &g.nodes[n]
				if h.TTL < nd.minTTL {
					nd.minTTL = h.TTL
				}
				if first {
					nd.isVP = true
					first = false
				}
				g.ar.destEv = append(g.ar.destEv, asKey(n, tr.TargetAS))
				if prev >= 0 && prev != n {
					g.ar.adjEv = append(g.ar.adjEv, adjEvent{prev, n, addrPair{prevAddr, h.Addr}})
				}
				prev, prevAddr, lastResp = n, h.Addr, n
			case probe.HopEchoReply, probe.HopUnreachable:
				// §5.4.8 step 8.2 accepts both echo replies and
				// destination unreachables as evidence of the neighbor.
				g.echoFrom[tr.TargetAS] = append(g.echoFrom[tr.TargetAS], h.Addr)
				prev, prevAddr = -1, 0
			default:
				// A timeout breaks adjacency: the next responder is not
				// necessarily connected to the previous one.
				prev, prevAddr = -1, 0
			}
		}
		if lastResp >= 0 {
			g.ar.lastEv = append(g.ar.lastEv, asKey(lastResp, tr.TargetAS))
			if fi, ok := g.finalNodes[tr.TargetAS]; !ok {
				g.finalNodes[tr.TargetAS] = finalInfo{n: lastResp}
			} else if fi.n != lastResp {
				fi.multi = true
				g.finalNodes[tr.TargetAS] = fi
			}
		}
	}

	// Pass 2: first routed address after each node (for §5.4.3).
	seen := g.ar.frontier[:0]
	for _, tr := range in.Data.Traces {
		seen = seen[:0]
		for _, h := range tr.Hops {
			switch h.Type {
			case probe.HopTimeExceeded:
				id, ok := g.intern.Lookup(h.Addr)
				if !ok {
					continue
				}
				n := g.nodeAt(id)
				if n < 0 {
					continue
				}
				if origins, _, ok := in.View.Origins(h.Addr); ok {
					for _, s := range seen {
						if s != n {
							g.ar.fraEv = append(g.ar.fraEv, asKey(s, origins[0]))
						}
					}
					seen = seen[:0]
				}
				seen = append(seen, n)
			case probe.HopEchoReply, probe.HopUnreachable:
				if origins, _, ok := in.View.Origins(h.Addr); ok {
					for _, s := range seen {
						g.ar.fraEv = append(g.ar.fraEv, asKey(s, origins[0]))
					}
					seen = seen[:0]
				}
			}
		}
	}
	g.ar.frontier = seen[:0]
	g.nodes = g.ar.nodes

	g.buildEdges()
	g.buildTallies()

	// Classify every node.
	for i := range g.nodes {
		n := &g.nodes[i]
		sort.Slice(n.addrs, func(a, b int) bool { return n.addrs[a] < n.addrs[b] })
		n.class, n.extAS = g.classify(n.addrs)
	}
	// Visit order: by hop distance, then creation id for determinism.
	order := g.ar.order
	for i := range g.nodes {
		order = append(order, int32(i))
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if g.nodes[a].minTTL != g.nodes[b].minTTL {
			return g.nodes[a].minTTL < g.nodes[b].minTTL
		}
		return a < b
	})
	g.ar.order = order
	g.order = order
	return g
}

// asKey packs a (node, AS) tally event into one sortable word.
func asKey(n int32, as topo.ASN) uint64 { return uint64(uint32(n))<<32 | uint64(as) }

// buildEdges compresses the adjacency event stream into the edge slab:
// one directed record per observed (from, to) router pair, with its
// address pairs in trace order, and per-node succ/pred index lists sorted
// by neighbor id.
func (g *graph) buildEdges() {
	ar := g.ar
	if ar.edgeIdx == nil {
		ar.edgeIdx = make(map[uint64]int32, 256)
	}
	// Assign edge ids in first-seen order; count pairs per edge.
	for _, ev := range ar.adjEv {
		key := uint64(uint32(ev.from))<<32 | uint64(uint32(ev.to))
		e, ok := ar.edgeIdx[key]
		if !ok {
			e = int32(len(ar.edges))
			ar.edges = append(ar.edges, edge{from: ev.from, to: ev.to})
			ar.edgeCnt = append(ar.edgeCnt, 0)
			ar.edgeIdx[key] = e
		}
		ar.edgeCnt[e]++
	}
	// Carve per-edge pair windows out of the slab, then fill in order.
	if cap(ar.pairSlab) < len(ar.adjEv) {
		ar.pairSlab = make([]addrPair, 0, len(ar.adjEv))
	}
	ar.pairSlab = ar.pairSlab[:len(ar.adjEv)]
	off := int32(0)
	for e := range ar.edges {
		cnt := ar.edgeCnt[e]
		ar.edges[e].pairs = ar.pairSlab[off : off : off+cnt]
		off += cnt
	}
	for _, ev := range ar.adjEv {
		key := uint64(uint32(ev.from))<<32 | uint64(uint32(ev.to))
		e := ar.edgeIdx[key]
		ar.edges[e].pairs = append(ar.edges[e].pairs, ev.pair)
	}
	// Per-node succ/pred lists, CSR-style: count, carve, fill, sort.
	nNodes := len(g.nodes)
	succCnt := make([]int32, nNodes)
	predCnt := make([]int32, nNodes)
	for e := range ar.edges {
		succCnt[ar.edges[e].from]++
		predCnt[ar.edges[e].to]++
	}
	total := len(ar.edges)
	if cap(ar.succSlab) < total {
		ar.succSlab = make([]int32, 0, total)
	}
	if cap(ar.predSlab) < total {
		ar.predSlab = make([]int32, 0, total)
	}
	ar.succSlab = ar.succSlab[:total]
	ar.predSlab = ar.predSlab[:total]
	so, po := int32(0), int32(0)
	for i := 0; i < nNodes; i++ {
		n := &g.nodes[i]
		n.succ = ar.succSlab[so : so : so+succCnt[i]]
		n.pred = ar.predSlab[po : po : po+predCnt[i]]
		so += succCnt[i]
		po += predCnt[i]
	}
	for e := range ar.edges {
		f, t := ar.edges[e].from, ar.edges[e].to
		g.nodes[f].succ = append(g.nodes[f].succ, int32(e))
		g.nodes[t].pred = append(g.nodes[t].pred, int32(e))
	}
	// Insertion sort: per-node degree is small and sort.Slice's closure
	// plus interface header would be the hot path's only allocations.
	for i := 0; i < nNodes; i++ {
		n := &g.nodes[i]
		sortEdgesBy(n.succ, func(e int32) int32 { return ar.edges[e].to })
		sortEdgesBy(n.pred, func(e int32) int32 { return ar.edges[e].from })
	}
}

// sortEdgesBy insertion-sorts an edge-index list by the given key. The
// callers' closures capture only the arena pointer, so the call compiles
// allocation-free.
func sortEdgesBy(s []int32, key func(int32) int32) {
	for i := 1; i < len(s); i++ {
		e := s[i]
		k := key(e)
		j := i - 1
		for j >= 0 && key(s[j]) > k {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = e
	}
}

// buildTallies sorts the packed (node, AS) event streams and compresses
// runs into per-node asCount windows of the shared slab.
func (g *graph) buildTallies() {
	ar := g.ar
	g.compressEvents(ar.destEv, func(n int32, s []asCount) { g.nodes[n].dests = s })
	g.compressEvents(ar.lastEv, func(n int32, s []asCount) { g.nodes[n].lastFor = s })
	g.compressEvents(ar.fraEv, func(n int32, s []asCount) { g.nodes[n].firstRoutedAfter = s })
}

func (g *graph) compressEvents(ev []uint64, assign func(int32, []asCount)) {
	if len(ev) == 0 {
		return
	}
	sortUint64(ev)
	ar := g.ar
	start := len(ar.asSlab)
	curNode := int32(int64(ev[0]) >> 32)
	for i := 0; i < len(ev); {
		key := ev[i]
		j := i + 1
		for j < len(ev) && ev[j] == key {
			j++
		}
		n := int32(int64(key) >> 32)
		if n != curNode {
			assign(curNode, ar.asSlab[start:len(ar.asSlab):len(ar.asSlab)])
			start = len(ar.asSlab)
			curNode = n
		}
		ar.asSlab = append(ar.asSlab, asCount{as: topo.ASN(uint32(key)), n: int32(j - i)})
		i = j
	}
	assign(curNode, ar.asSlab[start:len(ar.asSlab):len(ar.asSlab)])
}

// sortUint64 sorts the packed event keys in place.
func sortUint64(s []uint64) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

// prefixLenFor converts a delegation record's count into a prefix length
// (counts are powers of two in our synthetic data).
func prefixLenFor(rec rir.Record) int {
	n := rec.Count
	l := 32
	for n > 1 {
		n >>= 1
		l--
	}
	return l
}

// heurFireNames precomputes the per-heuristic obs counter names so claim
// performs no string concatenation on the hot path.
var heurFireNames = func() map[Heuristic]string {
	m := make(map[Heuristic]string)
	for _, h := range []Heuristic{
		HeurHostNetwork, HeurMultihomed, HeurFirewall, HeurUnrouted,
		HeurOnenet, HeurThirdParty, HeurRelationship, HeurMissingCust,
		HeurHiddenPeer, HeurCount, HeurIPAS, HeurIXP, HeurSilent,
		HeurOtherICMP,
	} {
		m[h] = "core.heur.fire." + string(h)
	}
	return m
}()

func heurFireName(h Heuristic) string {
	if s, ok := heurFireNames[h]; ok {
		return s
	}
	return "core.heur.fire." + string(h)
}

// claim records an ownership decision: rule h attributes router n to owner.
// Every heuristic routes its conclusion through here so the obs registry
// tallies exactly one core.heur.fire.<tag> increment per decided router and
// the tracer receives exactly one provenance event per decision, carrying
// the standard constraint set (origin AS, AS relationship, address class,
// hop distance, declined heuristics) plus any rule-specific evidence.
func (g *graph) claim(id int32, owner topo.ASN, h Heuristic, evidence ...obs.Attr) {
	n := &g.nodes[id]
	n.owner, n.heur, n.done = owner, h, true
	if g.vpASNs[owner] {
		n.host = true
		g.in.Obs.Inc("core.attr.host")
	} else {
		g.in.Obs.Inc("core.attr.external")
	}
	g.in.Obs.Inc(heurFireName(h))
	if g.in.Trace.Enabled() {
		attrs := make([]obs.Attr, 0, 8+len(evidence))
		attrs = append(attrs,
			obs.KV("heuristic", string(h)),
			obs.KV("owner", owner.String()),
			obs.KV("hop", n.minTTL),
			obs.KV("class", n.class.String()),
			obs.KV("addrs", addrList(n.addrs)),
			obs.KV("origin_as", g.originAttr(n)),
			obs.KV("rel", g.in.Rel.Rel(g.in.HostASN, owner).String()),
		)
		if len(g.declined) > 0 {
			attrs = append(attrs, obs.KV("declined", heurList(g.declined)))
		}
		attrs = append(attrs, evidence...)
		g.in.Trace.Emit(obs.StageCore, "decision", n.addrs[0].String(), 0, attrs...)
	}
	g.declined = g.declined[:0]
}

// decline notes that heuristic h examined the current node and passed; the
// next claim's provenance event records the accumulated list.
func (g *graph) decline(h Heuristic) { g.declined = append(g.declined, h) }

// originAttr states what the node's own addresses say about its owner —
// the prefix→origin-AS constraint a decision consulted.
func (g *graph) originAttr(n *node) string {
	if n.extAS != 0 {
		return n.extAS.String()
	}
	return n.class.String()
}

// addrList renders addresses as a comma-separated list.
func addrList(addrs []netx.Addr) string {
	var b []byte
	for i, a := range addrs {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, []byte(a.String())...)
	}
	return string(b)
}

// heurList renders heuristic tags as a comma-separated list.
func heurList(hs []Heuristic) string {
	var b []byte
	for i, h := range hs {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, []byte(h)...)
	}
	return string(b)
}

// originIsHost reports whether addr maps to the hosting organization.
func (g *graph) originIsHost(addr netx.Addr) bool {
	if origins, _, ok := g.in.View.Origins(addr); ok {
		for _, o := range origins {
			if g.vpASNs[o] {
				return true
			}
		}
		return false
	}
	if _, ok := g.hostExtra.Lookup(addr); ok {
		return true
	}
	return false
}

// classify determines the address class of a node from all its addresses.
func (g *graph) classify(addrs []netx.Addr) (addrClass, topo.ASN) {
	anyHost, anyIXP, anyUnrouted := false, false, false
	common := g.ar.ws.counts[:0]
	nExt := 0
	for _, a := range addrs {
		if g.in.IXP != nil {
			if _, isIXP := g.in.IXP.IsIXP(a); isIXP {
				anyIXP = true
				continue
			}
		}
		origins, _, ok := g.in.View.Origins(a)
		if !ok {
			if _, host := g.hostExtra.Lookup(a); host {
				anyHost = true
			} else {
				anyUnrouted = true
			}
			continue
		}
		host := false
		for _, o := range origins {
			if g.vpASNs[o] {
				host = true
			}
		}
		if host {
			anyHost = true
			continue
		}
		nExt++
		for _, o := range origins {
			common = bumpAS(common, o, 1)
		}
	}
	g.ar.ws.counts = common[:0]
	switch {
	case anyIXP && !anyHost && nExt == 0:
		return classIXP, 0
	case anyHost && nExt == 0:
		return classHost, 0
	case anyUnrouted && !anyHost && nExt == 0:
		return classUnrouted, 0
	case nExt > 0:
		// Single common external origin?
		var best topo.ASN
		bestN := int32(0)
		for _, e := range common {
			if e.n > bestN || (e.n == bestN && (best == 0 || e.as < best)) {
				best, bestN = e.as, e.n
			}
		}
		if int(bestN) == nExt && singleFullCover(common, nExt) {
			return classExternal, best
		}
		return classMulti, best
	default:
		return classUnrouted, 0
	}
}

// bumpAS adds delta to as's tally in a sorted asCount slice, inserting it
// if absent. The slice is scratch space: small, reused, sorted by AS.
func bumpAS(s []asCount, as topo.ASN, delta int32) []asCount {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid].as < as {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s) && s[lo].as == as {
		s[lo].n += delta
		return s
	}
	s = append(s, asCount{})
	copy(s[lo+1:], s[lo:])
	s[lo] = asCount{as: as, n: delta}
	return s
}

// singleFullCover reports whether exactly one origin covers all external
// addresses.
func singleFullCover(common []asCount, nExt int) bool {
	full := 0
	for _, e := range common {
		if int(e.n) == nExt {
			full++
		}
	}
	return full == 1
}

// destHas reports whether as is among n's destination ASes.
func (n *node) destHas(as topo.ASN) bool { return findAS(n.dests, as) > 0 }

// succExternalOrigins tallies, per external AS, how many distinct adjacent
// successor addresses map to it. The result is written into ws.extAdj
// (sorted by AS) and stays valid until the workspace's next use.
func (g *graph) succExternalOrigins(id int32, ws *workspace) []asCount {
	out := ws.extAdj[:0]
	ws.epoch++
	n := &g.nodes[id]
	for _, e := range n.succ {
		for _, p := range g.ar.edges[e].pairs {
			aID, ok := g.intern.Lookup(p.to)
			if ok && ws.mark(aID) {
				continue
			}
			origins, _, ok := g.in.View.Origins(p.to)
			if !ok {
				continue
			}
			isHost := false
			for _, o := range origins {
				if g.vpASNs[o] {
					isHost = true
				}
			}
			if !isHost {
				out = bumpAS(out, origins[0], 1)
			}
		}
	}
	ws.extAdj = out
	return out
}

// nextas computes the candidate owner of §5.4: the most common inferred
// provider among the destination ASes probed through the node.
func (g *graph) nextas(id int32, ws *workspace) topo.ASN {
	n := &g.nodes[id]
	if len(n.dests) < 2 {
		return 0
	}
	count := ws.counts[:0]
	for _, d := range n.dests {
		for _, p := range g.in.Rel.ProvidersOf(d.as) {
			count = bumpAS(count, p, 1)
		}
	}
	ws.counts = count[:0]
	var best topo.ASN
	bestN := int32(0)
	better := func(p topo.ASN, c int32) bool {
		if c != bestN {
			return c > bestN
		}
		// Tie-break: an AS that is itself among the destinations is the
		// likely transit for the others (a transit customer with its own
		// customers behind it).
		pIn := n.destHas(p)
		bIn := n.destHas(best)
		if pIn != bIn {
			return pIn
		}
		return best == 0 || p < best
	}
	for _, e := range count {
		if better(e.as, e.n) {
			best, bestN = e.as, e.n
		}
	}
	return best
}
