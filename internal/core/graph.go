package core

import (
	"sort"

	"bdrmap/internal/asrel"
	"bdrmap/internal/bgp"
	"bdrmap/internal/ixp"
	"bdrmap/internal/netx"
	"bdrmap/internal/obs"
	"bdrmap/internal/probe"
	"bdrmap/internal/rir"
	"bdrmap/internal/scamper"
	"bdrmap/internal/sibling"
	"bdrmap/internal/topo"
)

// Input bundles everything bdrmap consumes (§5.2 input data plus the
// collected measurements).
type Input struct {
	Data     *scamper.Dataset
	View     *bgp.View
	Rel      *asrel.Inference
	RIR      *rir.DB
	IXP      *ixp.PrefixList
	HostASN  topo.ASN
	Siblings *sibling.Set
	Opts     Options
	// Obs receives per-heuristic fire counts and attribution totals.
	// Nil disables them.
	Obs *obs.Registry
	// Trace receives one provenance event per §5.4 ownership decision —
	// the router, hop distance, constraints consulted, and which earlier
	// heuristics declined. Nil disables them.
	Trace *obs.Tracer
	// Prev, together with Data.Dirty, enables incremental re-inference:
	// routers more than three hops from every dirty address splice their
	// attribution from the previous round's result instead of re-running
	// the §5.4 cascade. Nil (or a nil Data.Dirty) infers from scratch.
	Prev *Result
}

// Options disable individual heuristics for ablation studies.
type Options struct {
	// NoThirdParty disables §5.4.5 third-party address detection.
	NoThirdParty bool
	// NoAnalyticalAlias disables the §5.4.7 near-side collapse.
	NoAnalyticalAlias bool
}

// vpASNs returns the set of ASes belonging to the hosting organization.
func (in Input) vpASNs() map[topo.ASN]bool {
	out := map[topo.ASN]bool{in.HostASN: true}
	if in.Siblings != nil {
		for _, s := range in.Siblings.SiblingsOf(in.HostASN) {
			out[s] = true
		}
	}
	return out
}

// addrClass categorizes one observed address by IP-AS mapping.
type addrClass int8

const (
	classHost     addrClass = iota // originated by a VP AS (or host RIR space)
	classExternal                  // originated by exactly one external AS
	classMulti                     // multi-origin including no VP AS
	classIXP                       // inside a known IXP LAN prefix
	classUnrouted                  // no covering announced prefix
)

func (c addrClass) String() string {
	switch c {
	case classHost:
		return "host"
	case classExternal:
		return "external"
	case classMulti:
		return "multi-origin"
	case classIXP:
		return "ixp"
	default:
		return "unrouted"
	}
}

// node is the working state for one inferred router.
type node struct {
	id    int
	addrs []netx.Addr

	class  addrClass
	extAS  topo.ASN // for classExternal (or a common origin for classMulti)
	minTTL int
	isVP   bool // contains the VP-side first hop

	// succ/pred adjacency: per neighboring node, the address pairs
	// observed (ours, theirs).
	succ map[*node][]addrPair
	pred map[*node][]addrPair

	// dests: target ASes of traces traversing this node, with counts.
	dests map[topo.ASN]int
	// lastFor: target ASes whose traces ended (last response) here.
	lastFor map[topo.ASN]int
	// firstRoutedAfter: origins of the first routed address observed
	// after this node in traces (per §5.4.3), with counts.
	firstRoutedAfter map[topo.ASN]int

	owner   topo.ASN
	heur    Heuristic
	host    bool
	done    bool
	merged  bool // folded into another node by §5.4.7
	spliced bool // attribution copied from the previous round's result
}

type addrPair struct{ from, to netx.Addr }

// graph is the router-level measurement graph plus lookup tables.
type graph struct {
	in     Input
	vpASNs map[topo.ASN]bool

	nodes  []*node
	byAddr map[netx.Addr]*node

	// hostExtra covers unannounced blocks attributed to the host via the
	// positional RIR rule of §5.4.1.
	hostExtra netx.Trie[bool]
	hostOrgs  map[string]bool // RIR org IDs covering known host space

	// echo sources per target AS: origins of echo replies received when
	// tracing toward that AS (used by §5.4.8 step 8.2 and §5.4.3).
	echoFrom map[topo.ASN][]netx.Addr
	// lastRespNode per trace toward each target AS (used by §5.4.8).
	finalNodes map[topo.ASN]map[*node]int
	// tracesToward counts traces per target AS.
	tracesToward map[topo.ASN]int

	// declined collects the heuristics that examined the node currently
	// being inferred and passed — consumed (and reset) by the next claim,
	// whose provenance event records them.
	declined []Heuristic
}

// buildGraph constructs nodes from the dataset's traces and alias graph.
func buildGraph(in Input) *graph {
	g := &graph{
		in:           in,
		vpASNs:       in.vpASNs(),
		byAddr:       make(map[netx.Addr]*node),
		hostOrgs:     make(map[string]bool),
		echoFrom:     make(map[topo.ASN][]netx.Addr),
		finalNodes:   make(map[topo.ASN]map[*node]int),
		tracesToward: make(map[topo.ASN]int),
	}

	// Pass 0: the positional host-space rule (§5.4.1): in each trace, any
	// unrouted address appearing before a VP-AS address is host space;
	// attribute its whole RIR delegation to the host organization.
	for _, tr := range in.Data.Traces {
		lastHost := -1
		for i, h := range tr.Hops {
			if h.Type == probe.HopTimeExceeded && g.originIsHost(h.Addr) {
				lastHost = i
			}
		}
		for i := 0; i < lastHost; i++ {
			h := tr.Hops[i]
			if h.Type != probe.HopTimeExceeded {
				continue
			}
			if _, _, routed := in.View.Origins(h.Addr); routed {
				continue
			}
			if in.RIR == nil {
				continue
			}
			if org, ok := in.RIR.OrgOf(h.Addr); ok {
				g.hostOrgs[org] = true
				for _, rec := range in.RIR.Records() {
					if rec.OrgID == org && rec.Start <= h.Addr && h.Addr <= rec.End() {
						g.hostExtra.Insert(netx.MakePrefix(rec.Start, prefixLenFor(rec)), true)
					}
				}
			}
		}
	}

	// Pass 1: create nodes (alias-merged) and adjacency.
	getNode := func(a netx.Addr) *node {
		canon := a
		if in.Data.Graph != nil {
			canon = in.Data.Graph.Canonical(a)
		}
		if n, ok := g.byAddr[canon]; ok {
			if _, seen := g.byAddr[a]; !seen {
				n.addrs = append(n.addrs, a)
				g.byAddr[a] = n
			}
			return n
		}
		n := &node{
			id:               len(g.nodes),
			minTTL:           1 << 30,
			succ:             make(map[*node][]addrPair),
			pred:             make(map[*node][]addrPair),
			dests:            make(map[topo.ASN]int),
			lastFor:          make(map[topo.ASN]int),
			firstRoutedAfter: make(map[topo.ASN]int),
		}
		n.addrs = append(n.addrs, a)
		g.nodes = append(g.nodes, n)
		g.byAddr[canon] = n
		g.byAddr[a] = n
		return n
	}

	for _, tr := range in.Data.Traces {
		g.tracesToward[tr.TargetAS]++
		var prev *node
		var prevAddr netx.Addr
		var lastResp *node
		first := true
		for _, h := range tr.Hops {
			switch h.Type {
			case probe.HopTimeExceeded:
				n := getNode(h.Addr)
				if h.TTL < n.minTTL {
					n.minTTL = h.TTL
				}
				if first {
					n.isVP = true
					first = false
				}
				n.dests[tr.TargetAS]++
				if prev != nil && prev != n {
					prev.succ[n] = append(prev.succ[n], addrPair{prevAddr, h.Addr})
					n.pred[prev] = append(n.pred[prev], addrPair{prevAddr, h.Addr})
				}
				prev, prevAddr, lastResp = n, h.Addr, n
			case probe.HopEchoReply, probe.HopUnreachable:
				// §5.4.8 step 8.2 accepts both echo replies and
				// destination unreachables as evidence of the neighbor.
				g.echoFrom[tr.TargetAS] = append(g.echoFrom[tr.TargetAS], h.Addr)
				prev, prevAddr = nil, 0
			default:
				// A timeout breaks adjacency: the next responder is not
				// necessarily connected to the previous one.
				prev, prevAddr = nil, 0
			}
		}
		if lastResp != nil {
			lastResp.lastFor[tr.TargetAS]++
			if g.finalNodes[tr.TargetAS] == nil {
				g.finalNodes[tr.TargetAS] = make(map[*node]int)
			}
			g.finalNodes[tr.TargetAS][lastResp]++
		}
	}

	// Pass 2: first routed address after each node (for §5.4.3).
	for _, tr := range in.Data.Traces {
		var seen []*node
		for _, h := range tr.Hops {
			switch h.Type {
			case probe.HopTimeExceeded:
				n := g.byAddr[h.Addr]
				if n == nil {
					continue
				}
				if origins, _, ok := in.View.Origins(h.Addr); ok {
					for _, s := range seen {
						if s != n {
							s.firstRoutedAfter[origins[0]]++
						}
					}
					seen = seen[:0]
				}
				seen = append(seen, n)
			case probe.HopEchoReply, probe.HopUnreachable:
				if origins, _, ok := in.View.Origins(h.Addr); ok {
					for _, s := range seen {
						s.firstRoutedAfter[origins[0]]++
					}
					seen = seen[:0]
				}
			}
		}
	}

	// Classify every node.
	for _, n := range g.nodes {
		sort.Slice(n.addrs, func(i, j int) bool { return n.addrs[i] < n.addrs[j] })
		n.class, n.extAS = g.classify(n.addrs)
	}
	// Visit order: by hop distance, then id for determinism.
	sort.Slice(g.nodes, func(i, j int) bool {
		if g.nodes[i].minTTL != g.nodes[j].minTTL {
			return g.nodes[i].minTTL < g.nodes[j].minTTL
		}
		return g.nodes[i].id < g.nodes[j].id
	})
	return g
}

// prefixLenFor converts a delegation record's count into a prefix length
// (counts are powers of two in our synthetic data).
func prefixLenFor(rec rir.Record) int {
	n := rec.Count
	l := 32
	for n > 1 {
		n >>= 1
		l--
	}
	return l
}

// claim records an ownership decision: rule h attributes router n to owner.
// Every heuristic routes its conclusion through here so the obs registry
// tallies exactly one core.heur.fire.<tag> increment per decided router and
// the tracer receives exactly one provenance event per decision, carrying
// the standard constraint set (origin AS, AS relationship, address class,
// hop distance, declined heuristics) plus any rule-specific evidence.
func (g *graph) claim(n *node, owner topo.ASN, h Heuristic, evidence ...obs.Attr) {
	n.owner, n.heur, n.done = owner, h, true
	if g.vpASNs[owner] {
		n.host = true
		g.in.Obs.Inc("core.attr.host")
	} else {
		g.in.Obs.Inc("core.attr.external")
	}
	g.in.Obs.Inc("core.heur.fire." + string(h))
	if g.in.Trace.Enabled() {
		attrs := make([]obs.Attr, 0, 8+len(evidence))
		attrs = append(attrs,
			obs.KV("heuristic", string(h)),
			obs.KV("owner", owner.String()),
			obs.KV("hop", n.minTTL),
			obs.KV("class", n.class.String()),
			obs.KV("addrs", addrList(n.addrs)),
			obs.KV("origin_as", g.originAttr(n)),
			obs.KV("rel", g.in.Rel.Rel(g.in.HostASN, owner).String()),
		)
		if len(g.declined) > 0 {
			attrs = append(attrs, obs.KV("declined", heurList(g.declined)))
		}
		attrs = append(attrs, evidence...)
		g.in.Trace.Emit(obs.StageCore, "decision", n.addrs[0].String(), 0, attrs...)
	}
	g.declined = g.declined[:0]
}

// decline notes that heuristic h examined the current node and passed; the
// next claim's provenance event records the accumulated list.
func (g *graph) decline(h Heuristic) { g.declined = append(g.declined, h) }

// originAttr states what the node's own addresses say about its owner —
// the prefix→origin-AS constraint a decision consulted.
func (g *graph) originAttr(n *node) string {
	if n.extAS != 0 {
		return n.extAS.String()
	}
	return n.class.String()
}

// addrList renders addresses as a comma-separated list.
func addrList(addrs []netx.Addr) string {
	var b []byte
	for i, a := range addrs {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, []byte(a.String())...)
	}
	return string(b)
}

// heurList renders heuristic tags as a comma-separated list.
func heurList(hs []Heuristic) string {
	var b []byte
	for i, h := range hs {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, []byte(h)...)
	}
	return string(b)
}

// originIsHost reports whether addr maps to the hosting organization.
func (g *graph) originIsHost(addr netx.Addr) bool {
	if origins, _, ok := g.in.View.Origins(addr); ok {
		for _, o := range origins {
			if g.vpASNs[o] {
				return true
			}
		}
		return false
	}
	if _, ok := g.hostExtra.Lookup(addr); ok {
		return true
	}
	return false
}

// classify determines the address class of a node from all its addresses.
func (g *graph) classify(addrs []netx.Addr) (addrClass, topo.ASN) {
	anyHost, anyIXP, anyUnrouted := false, false, false
	common := map[topo.ASN]int{}
	nExt := 0
	for _, a := range addrs {
		if g.in.IXP != nil {
			if _, isIXP := g.in.IXP.IsIXP(a); isIXP {
				anyIXP = true
				continue
			}
		}
		origins, _, ok := g.in.View.Origins(a)
		if !ok {
			if _, host := g.hostExtra.Lookup(a); host {
				anyHost = true
			} else {
				anyUnrouted = true
			}
			continue
		}
		host := false
		for _, o := range origins {
			if g.vpASNs[o] {
				host = true
			}
		}
		if host {
			anyHost = true
			continue
		}
		nExt++
		for _, o := range origins {
			common[o]++
		}
	}
	switch {
	case anyIXP && !anyHost && nExt == 0:
		return classIXP, 0
	case anyHost && nExt == 0:
		return classHost, 0
	case anyUnrouted && !anyHost && nExt == 0:
		return classUnrouted, 0
	case nExt > 0:
		// Single common external origin?
		var best topo.ASN
		bestN := 0
		for o, c := range common {
			if c > bestN || (c == bestN && (best == 0 || o < best)) {
				best, bestN = o, c
			}
		}
		if bestN == nExt && singleFullCover(common, nExt) {
			return classExternal, best
		}
		return classMulti, best
	default:
		return classUnrouted, 0
	}
}

// singleFullCover reports whether exactly one origin covers all external
// addresses.
func singleFullCover(common map[topo.ASN]int, nExt int) bool {
	full := 0
	for _, c := range common {
		if c == nExt {
			full++
		}
	}
	return full == 1
}

// destSet returns the distinct destination ASes of a node (grouping the
// host's sibling targets never occurs since host prefixes are not probed).
func (n *node) destSet() []topo.ASN {
	out := make([]topo.ASN, 0, len(n.dests))
	for d := range n.dests {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// succExternalOrigins returns, per external AS, how many distinct adjacent
// successor addresses map to it.
func (g *graph) succExternalOrigins(n *node) map[topo.ASN]int {
	count := make(map[topo.ASN]int)
	seen := make(map[netx.Addr]bool)
	for s, pairs := range n.succ {
		_ = s
		for _, p := range pairs {
			if seen[p.to] {
				continue
			}
			seen[p.to] = true
			origins, _, ok := g.in.View.Origins(p.to)
			if !ok {
				continue
			}
			isHost := false
			for _, o := range origins {
				if g.vpASNs[o] {
					isHost = true
				}
			}
			if !isHost {
				count[origins[0]]++
			}
		}
	}
	return count
}

// nextas computes the candidate owner of §5.4: the most common inferred
// provider among the destination ASes probed through the node.
func (g *graph) nextas(n *node) topo.ASN {
	if len(n.dests) < 2 {
		return 0
	}
	count := make(map[topo.ASN]int)
	for d := range n.dests {
		for _, p := range g.in.Rel.ProvidersOf(d) {
			count[p]++
		}
	}
	var best topo.ASN
	bestN := 0
	better := func(p topo.ASN, c int) bool {
		if c != bestN {
			return c > bestN
		}
		// Tie-break: an AS that is itself among the destinations is the
		// likely transit for the others (a transit customer with its own
		// customers behind it).
		_, pIn := n.dests[p]
		_, bIn := n.dests[best]
		if pIn != bIn {
			return pIn
		}
		return best == 0 || p < best
	}
	for p, c := range count {
		if better(p, c) {
			best, bestN = p, c
		}
	}
	return best
}
