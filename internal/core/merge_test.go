package core

import (
	"reflect"
	"testing"

	"bdrmap/internal/netx"
	"bdrmap/internal/scamper"
	"bdrmap/internal/topo"
)

func mkLink(near, far netx.Addr, as topo.ASN, h Heuristic) *Link {
	l := &Link{NearAddr: near, FarAddr: far, FarAS: as, Heuristic: h}
	l.Near = &RouterNode{Addrs: []netx.Addr{near}}
	if !far.IsZero() {
		l.Far = &RouterNode{Addrs: []netx.Addr{far}}
	}
	return l
}

func mkResult(vp string, links ...*Link) *Result {
	return &Result{VPName: vp, Links: links}
}

func TestMergeDedupsAcrossVPs(t *testing.T) {
	a := mkResult("vp1",
		mkLink(1, 2, 100, HeurFirewall),
		mkLink(3, 4, 200, HeurOnenet),
	)
	b := mkResult("vp2",
		mkLink(1, 2, 100, HeurFirewall), // same link, second VP
		mkLink(5, 6, 300, HeurIPAS),
	)
	m := Merge([]*Result{a, b})
	if m.LinkCount() != 3 {
		t.Fatalf("links = %d, want 3", m.LinkCount())
	}
	if len(m.VPs) != 2 {
		t.Fatalf("VPs = %v", m.VPs)
	}
	for _, l := range m.Links {
		if l.Key.FarAS == 100 {
			if len(l.SeenBy) != 2 {
				t.Fatalf("shared link SeenBy = %v", l.SeenBy)
			}
		} else if len(l.SeenBy) != 1 {
			t.Fatalf("unique link SeenBy = %v", l.SeenBy)
		}
	}
	if m.Neighbors[100] != 1 || m.Neighbors[200] != 1 || m.Neighbors[300] != 1 {
		t.Fatalf("neighbors = %v", m.Neighbors)
	}
}

func TestMergeSilentLinks(t *testing.T) {
	a := mkResult("vp1", mkLink(1, 0, 100, HeurSilent))
	b := mkResult("vp2", mkLink(1, 0, 100, HeurSilent))
	m := Merge([]*Result{a, b})
	if m.LinkCount() != 1 {
		t.Fatalf("silent links not deduped: %d", m.LinkCount())
	}
	if m.Links[0].Key.String() == "" {
		t.Fatal("empty key rendering")
	}
}

func TestDiffDetectsChanges(t *testing.T) {
	prev := Merge([]*Result{mkResult("vp1",
		mkLink(1, 2, 100, HeurFirewall),
		mkLink(3, 4, 200, HeurOnenet),
	)})
	next := Merge([]*Result{mkResult("vp1",
		mkLink(1, 2, 100, HeurFirewall), // unchanged
		mkLink(7, 8, 300, HeurIPAS),     // added (new neighbor)
	)})
	d := Diff(prev, next)
	if d.Empty() {
		t.Fatal("diff should not be empty")
	}
	if len(d.Added) != 1 || d.Added[0].Key.FarAS != 300 {
		t.Fatalf("added = %+v", d.Added)
	}
	if len(d.Removed) != 1 || d.Removed[0].Key.FarAS != 200 {
		t.Fatalf("removed = %+v", d.Removed)
	}
	if len(d.NeighborsAdded) != 1 || d.NeighborsAdded[0] != 300 {
		t.Fatalf("neighborsAdded = %v", d.NeighborsAdded)
	}
	if len(d.NeighborsRemoved) != 1 || d.NeighborsRemoved[0] != 200 {
		t.Fatalf("neighborsRemoved = %v", d.NeighborsRemoved)
	}
}

func TestDiffIdentityEmpty(t *testing.T) {
	m := Merge([]*Result{mkResult("vp1", mkLink(1, 2, 100, HeurFirewall))})
	if d := Diff(m, m); !d.Empty() {
		t.Fatalf("self-diff not empty: %+v", d)
	}
}

// TestMergeAccumulatorOrderInvariant is the streaming-merge contract the
// fleet coordinator relies on: folding results in any completion order
// yields the same map as the sequential Merge, byte for byte, because the
// fold ordinal — not arrival order — decides heuristic ties.
func TestMergeAccumulatorOrderInvariant(t *testing.T) {
	results := []*Result{
		mkResult("vp1",
			mkLink(1, 2, 100, HeurFirewall), // shared key, vp1's heuristic must win
			mkLink(3, 4, 200, HeurOnenet),
		),
		mkResult("vp2",
			mkLink(1, 2, 100, HeurIPAS), // same key, different heuristic
			mkLink(5, 6, 300, HeurIPAS),
		),
		nil, // a failed shard folds as nil
		mkResult("vp4",
			mkLink(1, 2, 100, HeurSilent),
			mkLink(7, 0, 400, HeurSilent),
		),
	}
	want := Merge(results)
	orders := [][]int{
		{0, 1, 2, 3},
		{3, 2, 1, 0},
		{1, 3, 0, 2},
		{2, 0, 3, 1},
	}
	for _, order := range orders {
		acc := NewMergeAccumulator()
		for _, ord := range order {
			acc.Fold(ord, results[ord])
		}
		got := acc.Snapshot()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("fold order %v diverged:\n got %+v\nwant %+v", order, got, want)
		}
	}
	// Partial snapshot then continued folding: the final snapshot from the
	// same accumulator must still match, and the partial must carry only
	// the folded VPs.
	acc := NewMergeAccumulator()
	acc.Fold(1, results[1])
	partial := acc.Snapshot()
	if len(partial.VPs) != 1 || partial.VPs[0] != "vp2" {
		t.Fatalf("partial VPs = %v", partial.VPs)
	}
	for _, ord := range []int{3, 0, 2} {
		acc.Fold(ord, results[ord])
	}
	if got := acc.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("snapshot-then-continue diverged:\n got %+v\nwant %+v", got, want)
	}
	if acc.Folded() != 3 {
		t.Fatalf("Folded = %d, want 3 distinct VPs", acc.Folded())
	}
}

func TestMergeRealPipelineMultiVP(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-VP pipeline in -short mode")
	}
	prof := topo.LargeAccessProfile()
	prof.NumCustomers = 30
	prof.DistantPerTransit = 8
	prof.NumVPs = 4
	n := topo.Generate(prof, 1)
	var results []*Result
	// One shared engine so VPs measure the same world.
	res0, in, engine, hosts := pipelineFull(t, n, 0, scamper.Config{})
	results = append(results, res0)
	for vp := 1; vp < 4; vp++ {
		d := &scamper.Driver{
			View:     in.View,
			Prober:   scamper.LocalProber{E: engine, VP: n.VPs[vp]},
			HostASNs: hosts,
			Cfg:      scamper.Config{},
		}
		ds := d.Run()
		in2 := in
		in2.Data = ds
		results = append(results, Infer(in2))
	}
	m := Merge(results)
	// The union must be at least as large as any single VP's view.
	for _, r := range results {
		if m.LinkCount() < len(r.Links)/2 {
			t.Fatalf("merged map (%d) suspiciously small vs VP (%d)", m.LinkCount(), len(r.Links))
		}
	}
	// Multihomed big peers: more links in the merged map than in VP 0's.
	if m.LinkCount() <= len(results[0].Links) {
		t.Errorf("merging %d VPs added no links: %d vs %d",
			len(results), m.LinkCount(), len(results[0].Links))
	}
}
