package core

import (
	"testing"

	"bdrmap/internal/scamper"
	"bdrmap/internal/topo"
)

// archetypeProfile builds a small world where half the customers follow
// the archetype under test and half are plain firewalled customers. The
// filler matters: a border router serving a single neighbor is genuinely
// ambiguous (even the paper's heuristics attribute it to the neighbor), so
// each heuristic's canonical form needs multi-tenant borders, as real
// networks have.
func archetypeProfile(vis topo.Visibility) topo.Profile {
	return topo.Profile{
		Name:             "archetype",
		HostTier:         topo.TierAccess,
		NumRegions:       2,
		BordersPerRegion: 1,
		NumVPs:           1,
		NumProviders:     1,
		NumCustomers:     8,
		CustVis: topo.VisMix{
			{Vis: vis, W: 0.5},
			{Vis: topo.VisFirewall, W: 0.5},
		},
		CustTransitFrac:   0.8, // onenet needs customers with children
		CustMaxChildren:   2,
		ProvVis:           topo.VisMix{{Vis: topo.VisOnenet, W: 1}},
		PeerVis:           topo.VisMix{{Vis: topo.VisOnenet, W: 1}},
		DistantPerTransit: 3,
	}
}

// runArchetype searches a few seeds for the archetype's canonical
// inference: at least one link carrying the expected heuristic tag whose
// far side is truly operated by the inferred organization.
func runArchetype(t *testing.T, vis topo.Visibility, want Heuristic) {
	t.Helper()
	lastReason := "tag never observed"
	for seed := int64(1); seed <= 8; seed++ {
		n := topo.Generate(archetypeProfile(vis), seed)
		res, _ := pipeline(t, n, 0, scamper.Config{Workers: 1})
		for _, l := range res.Links {
			if l.Heuristic != want {
				continue
			}
			if l.Far == nil {
				// Silent links carry no far address; verify attachment.
				nearR := n.RouterByAddr(l.Near.Addrs[0])
				ok := false
				for _, lt := range n.InterdomainLinks(n.HostASN) {
					if lt.FarAS == l.FarAS && lt.NearRtr == nearR.ID {
						ok = true
					}
				}
				if !ok {
					lastReason = "silent link misplaced"
					continue
				}
				return
			}
			r := n.RouterByAddr(l.FarAddr)
			if r == nil {
				lastReason = "far addr unknown"
				continue
			}
			if n.ASes[r.Owner].Org != n.ASes[l.FarAS].Org {
				lastReason = "tagged link has wrong owner"
				continue
			}
			return
		}
	}
	t.Fatalf("archetype %v: no correct link tagged %q (%s)", vis, want, lastReason)
}

func TestHeuristicFirewall(t *testing.T) {
	runArchetype(t, topo.VisFirewall, HeurFirewall)
}

func TestHeuristicFirewallOwnSpace(t *testing.T) {
	runArchetype(t, topo.VisFirewallOwnSpace, HeurIPAS)
}

func TestHeuristicOneHopRelationship(t *testing.T) {
	runArchetype(t, topo.VisOneHop, HeurRelationship)
}

func TestHeuristicOnenet(t *testing.T) {
	runArchetype(t, topo.VisOnenet, HeurOnenet)
}

func TestHeuristicUnrouted(t *testing.T) {
	runArchetype(t, topo.VisUnrouted, HeurUnrouted)
}

func TestHeuristicThirdParty(t *testing.T) {
	runArchetype(t, topo.VisThirdParty, HeurThirdParty)
}

func TestHeuristicSilent(t *testing.T) {
	runArchetype(t, topo.VisSilent, HeurSilent)
}

func TestHeuristicEchoOnly(t *testing.T) {
	runArchetype(t, topo.VisEchoOnly, HeurOtherICMP)
}

func TestHeuristicCount(t *testing.T) {
	runArchetype(t, topo.VisMixedAdj, HeurCount)
}

func TestHeuristicMultihomedToVP(t *testing.T) {
	runArchetype(t, topo.VisMultiAdj, HeurMultihomed)
}

func TestHeuristicMissingCustomer(t *testing.T) {
	runArchetype(t, topo.VisSiblingUpstream, HeurMissingCust)
}

// TestHeuristicPrecision: across archetype worlds, links carrying the
// archetype's tag must overwhelmingly name the correct organization.
func TestHeuristicPrecision(t *testing.T) {
	type tc struct {
		vis topo.Visibility
		tag Heuristic
	}
	cases := []tc{
		{topo.VisFirewall, HeurFirewall},
		{topo.VisOneHop, HeurRelationship},
		{topo.VisUnrouted, HeurUnrouted},
		{topo.VisThirdParty, HeurThirdParty},
	}
	for _, c := range cases {
		good, bad := 0, 0
		for seed := int64(1); seed <= 5; seed++ {
			n := topo.Generate(archetypeProfile(c.vis), seed)
			res, _ := pipeline(t, n, 0, scamper.Config{Workers: 1})
			for _, l := range res.Links {
				if l.Heuristic != c.tag || l.Far == nil {
					continue
				}
				r := n.RouterByAddr(l.FarAddr)
				if r != nil && n.ASes[r.Owner].Org == n.ASes[l.FarAS].Org {
					good++
				} else {
					bad++
				}
			}
		}
		if good == 0 {
			t.Errorf("%v: tag %q never fired", c.vis, c.tag)
		}
		if bad > good/4 {
			t.Errorf("%v: tag %q wrong too often (%d good, %d bad)", c.vis, c.tag, good, bad)
		}
	}
}
