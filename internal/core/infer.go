package core

import (
	"sort"

	"bdrmap/internal/alias"
	"bdrmap/internal/netx"
	"bdrmap/internal/obs"
	"bdrmap/internal/topo"
)

// Infer runs the full bdrmap algorithm over one vantage point's dataset.
func Infer(in Input) *Result {
	span := in.Obs.StartStage("core.infer")
	defer span.End()
	g := buildGraph(in)
	g.spliceClean(in.Prev, in.Data.Dirty)
	g.passHost()
	for _, n := range g.nodes {
		if n.spliced {
			g.replaySpliced(n)
			continue
		}
		if !n.done {
			g.inferNeighbor(n)
		}
	}
	g.passAnalyticalAliases()
	res := g.buildResult()
	g.passSilent(res)
	in.Obs.Add("core.routers", int64(len(res.Routers)))
	in.Obs.Add("core.links", int64(len(res.Links)))
	return res
}

// anonymousAddr reports whether a node's addresses say nothing about its
// owner: host-supplied interconnection space or IXP LAN space.
func (n *node) anonymousAddr() bool {
	return n.class == classHost || n.class == classIXP
}

// ---------------------------------------------------------------------------
// §5.4.1: routers operated by the hosting network

func (g *graph) passHost() {
	host := g.in.HostASN
	for _, n := range g.nodes {
		if n.class != classHost {
			continue
		}
		// Step 1.2 precondition: a subsequent interface also originated by
		// the hosting network.
		hostSucc := g.hostSuccessor(n)
		if hostSucc == nil {
			continue
		}
		// Step 1.1 exception: the neighbor may be multihomed to the host
		// with adjacent routers numbered from host space. This reading
		// only applies when both routers exclusively carry traffic toward
		// A (a host border carries many destinations and never matches).
		extAdj := g.succExternalOrigins(n)
		if len(extAdj) == 1 && !n.isVP {
			var a topo.ASN
			for o := range extAdj {
				a = o
			}
			nd, vd := n.destSet(), hostSucc.destSet()
			onlyA := len(nd) == 1 && nd[0] == a && len(vd) == 1 && vd[0] == a
			if onlyA && g.in.Rel.Rel(host, a) != topo.RelNone && g.multihomedException(n, hostSucc, a) {
				ev := obs.KV("only_dest", a.String())
				g.claim(n, a, HeurMultihomed, ev)
				if !hostSucc.done {
					g.claim(hostSucc, a, HeurMultihomed, ev)
				}
				continue
			}
		}
		g.claim(n, host, HeurHostNetwork,
			obs.KV("host_successor", hostSucc.addrs[0].String()))
	}

	// Extension step (beyond the paper's 1.1/1.2, needed for hosts with
	// no customers to supply interconnection space): a host-space router
	// whose successors fan out into several *mutually unrelated* external
	// ASes must be the host's own border. A neighbor's router only carries
	// traffic into that neighbor's cone, so its adjacent external ASes
	// always include a plausible common transit; an egress fan-out point
	// of the host does not.
	for _, n := range g.nodes {
		if n.done || n.class != classHost {
			continue
		}
		extAdj := g.succExternalOrigins(n)
		if len(extAdj) >= 2 && !g.hasPlausibleTransit(extAdj) {
			g.claim(n, host, HeurHostNetwork,
				obs.KV("egress_fanout", len(extAdj)))
		}
	}
}

// hasPlausibleTransit reports whether some adjacent AS could be providing
// transit to every other adjacent AS (the fig. 9 configuration).
func (g *graph) hasPlausibleTransit(extAdj map[topo.ASN]int) bool {
	for a := range extAdj {
		ok := true
		for b := range extAdj {
			if b == a {
				continue
			}
			if g.in.Rel.Rel(a, b) != topo.RelCustomer { // b is not a's customer
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// hostSuccessor returns a successor reached over a host-originated address.
func (g *graph) hostSuccessor(n *node) *node {
	var keys []*node
	for s := range n.succ {
		keys = append(keys, s)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].id < keys[j].id })
	for _, s := range keys {
		for _, p := range n.succ[s] {
			if g.originIsHost(p.to) {
				return s
			}
		}
	}
	return nil
}

// multihomedException applies §5.4.1's guard for step 1.1: if an owner we
// would infer for a router subsequent to n is a customer of the host but
// not a known neighbor of A, the multihomed reading is wrong and the host
// operates n. Returns true when step 1.1 should fire.
func (g *graph) multihomedException(n, v *node, a topo.ASN) bool {
	check := func(w *node) bool {
		if w.class != classExternal || w.extAS == 0 || w.extAS == a {
			return true
		}
		o := w.extAS
		if g.in.Rel.Rel(g.in.HostASN, o) == topo.RelCustomer && !g.in.View.HasLink(o, a) {
			return false // a host customer unrelated to A: n is the host's
		}
		return true
	}
	for w := range n.succ {
		if !check(w) {
			return false
		}
	}
	for w := range v.succ {
		if !check(w) {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// §5.4.2–§5.4.6: neighbor routers, in the paper's order

func (g *graph) inferNeighbor(n *node) {
	host := g.in.HostASN
	dests := n.destSet()
	extAdj := g.succExternalOrigins(n)

	// §5.4.2 firewall: the last responding router toward a destination,
	// numbered from space that says nothing about its owner, with no
	// adjacent interfaces at all.
	if n.anonymousAddr() && len(n.succ) == 0 && len(n.lastFor) > 0 {
		if len(dests) == 1 {
			g.claim(n, dests[0], HeurFirewall, obs.KV("last_hop_toward", dests[0].String()))
		} else if na := g.nextas(n); na != 0 {
			g.claim(n, na, HeurFirewall, obs.KV("common_provider_of_dests", na.String()))
		}
		if n.done {
			return
		}
		g.decline(HeurFirewall)
	}

	// §5.4.3 unrouted interior addressing.
	if n.class == classUnrouted || (n.anonymousAddr() && g.allSuccUnrouted(n)) {
		if g.inferUnrouted(n) {
			return
		}
		g.decline(HeurUnrouted)
	}

	// §5.4.4 onenet.
	if n.class == classExternal && n.extAS != 0 && extAdj[n.extAS] > 0 {
		g.claim(n, n.extAS, HeurOnenet, // step 4.1
			obs.KV("adjacent_same_as_ifaces", extAdj[n.extAS]))
		return
	}
	if n.anonymousAddr() {
		if a := g.twoConsecutive(n); a != 0 { // step 4.2
			g.claim(n, a, HeurOnenet, obs.KV("consecutive_as", a.String()))
			return
		}
		g.decline(HeurOnenet)
	}

	// §5.4.5 steps 5.1/5.2: third-party address detection. "Paths toward
	// B" include B's customer cone: a transit customer's border also
	// carries probes toward its own customers.
	if b := g.soleConeRoot(dests); !g.in.Opts.NoThirdParty &&
		n.class == classExternal && n.extAS != 0 && b != 0 {
		a := n.extAS
		if a != b && g.in.Rel.Rel(b, a) == topo.RelProvider {
			// The address belongs to the destination's provider: the
			// router used a route from its provider to respond.
			g.claim(n, b, HeurThirdParty,
				obs.KV("cone_root", b.String()),
				obs.KV("addr_owner_provides", b.String()))
			// Step 5.1: a preceding router observed only with host
			// addresses and only toward B belongs to B as well.
			for p := range n.pred {
				if !p.done && p.class == classHost && g.soleConeRoot(p.destSet()) == b {
					g.claim(p, b, HeurThirdParty, obs.KV("cone_root", b.String()))
				}
			}
			return
		}
		g.decline(HeurThirdParty)
	}

	// §5.4.5 steps 5.3–5.5 for routers with anonymous addresses.
	if n.anonymousAddr() && len(extAdj) == 1 {
		var a topo.ASN
		for o := range extAdj {
			a = o
		}
		switch g.in.Rel.Rel(host, a) {
		case topo.RelCustomer, topo.RelPeer: // step 5.3
			g.claim(n, a, HeurRelationship, obs.KV("adjacent_as", a.String()))
			return
		default:
			// Step 5.4 "missing customer": B provider of A, host provider
			// of B. The paper notes sibling organizations cause this
			// scenario (B numbers its routers from sibling A's space), so
			// require sibling evidence before overriding the IP-AS owner.
			for _, b := range g.in.Rel.ProvidersOf(a) {
				if g.in.Rel.Rel(host, b) == topo.RelCustomer &&
					g.in.Siblings != nil && g.in.Siblings.SameOrg(a, b) {
					g.claim(n, b, HeurMissingCust,
						obs.KV("adjacent_as", a.String()),
						obs.KV("sibling_hit", a.String()+"~"+b.String()))
					return
				}
			}
			g.decline(HeurMissingCust)
			// Step 5.5 hidden peer: a single subsequent origin with no
			// known relationship.
			g.claim(n, a, HeurHiddenPeer, obs.KV("adjacent_as", a.String()))
			return
		}
	}

	// §5.4.6 step 6.1: counting among several adjacent origins.
	if n.anonymousAddr() && len(extAdj) > 1 {
		w := g.countWinner(extAdj)
		g.claim(n, w, HeurCount,
			obs.KV("adjacent_origins", len(extAdj)),
			obs.KV("winner_ifaces", extAdj[w]))
		return
	}

	// §5.4.6 fallback: plain IP-AS mapping.
	if (n.class == classExternal || n.class == classMulti) && n.extAS != 0 {
		g.claim(n, n.extAS, HeurIPAS)
		return
	}

	// Anonymous routers with destinations but no other constraints:
	// the destination set is all we have (IXP LAN firewalls and the
	// remaining host-space cases).
	if n.anonymousAddr() && len(dests) == 1 && len(n.lastFor) > 0 {
		g.claim(n, dests[0], HeurFirewall, obs.KV("last_hop_toward", dests[0].String()))
		return
	}
	if na := g.nextas(n); n.anonymousAddr() && na != 0 && len(n.lastFor) > 0 {
		g.claim(n, na, HeurFirewall, obs.KV("common_provider_of_dests", na.String()))
	}
}

// soleConeRoot returns the single destination AS whose (inferred) customer
// cone covers every other destination in the set, or 0 when no unique such
// AS exists. With one destination it is that destination.
func (g *graph) soleConeRoot(dests []topo.ASN) topo.ASN {
	switch len(dests) {
	case 0:
		return 0
	case 1:
		return dests[0]
	}
	var root topo.ASN
	for _, b := range dests {
		ok := true
		for _, d := range dests {
			if d == b {
				continue
			}
			isCust := false
			for _, p := range g.in.Rel.ProvidersOf(d) {
				if p == b {
					isCust = true
				}
			}
			if !isCust {
				ok = false
				break
			}
		}
		if ok {
			if root != 0 {
				return 0 // ambiguous
			}
			root = b
		}
	}
	return root
}

// allSuccUnrouted reports whether every successor edge of n crosses an
// unrouted (and non-host) address, with at least one successor.
func (g *graph) allSuccUnrouted(n *node) bool {
	if len(n.succ) == 0 {
		return false
	}
	for _, pairs := range n.succ {
		for _, p := range pairs {
			if g.originIsHost(p.to) {
				return false
			}
			if _, _, ok := g.in.View.Origins(p.to); ok {
				return false
			}
			if g.in.IXP != nil {
				if _, isIXP := g.in.IXP.IsIXP(p.to); isIXP {
					return false
				}
			}
		}
	}
	return true
}

// inferUnrouted applies §5.4.3: reason from the origins of the first
// routed interfaces observed after the router.
func (g *graph) inferUnrouted(n *node) bool {
	var asns []topo.ASN
	for a := range n.firstRoutedAfter {
		if !g.vpASNs[a] {
			asns = append(asns, a)
		}
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	switch {
	case len(asns) == 1: // step 3.1
		g.claim(n, asns[0], HeurUnrouted)
	case len(asns) > 1: // step 3.2: most frequent provider of the set
		count := map[topo.ASN]int{}
		for _, a := range asns {
			for _, p := range g.in.Rel.ProvidersOf(a) {
				count[p]++
			}
		}
		var best topo.ASN
		bestN := 0
		for p, c := range count {
			if c > bestN || (c == bestN && (best == 0 || p < best)) {
				best, bestN = p, c
			}
		}
		if best != 0 {
			g.claim(n, best, HeurUnrouted)
		}
	default:
		if na := g.nextas(n); na != 0 {
			g.claim(n, na, HeurUnrouted)
		}
	}
	return n.done
}

// twoConsecutive looks for two consecutive routers after n whose
// edge addresses map to one external AS (§5.4.4 step 4.2).
func (g *graph) twoConsecutive(n *node) topo.ASN {
	var vs []*node
	for v := range n.succ {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i].id < vs[j].id })
	for _, v := range vs {
		a := g.edgeOrigin(n, v)
		if a == 0 {
			continue
		}
		var ws []*node
		for w := range v.succ {
			ws = append(ws, w)
		}
		sort.Slice(ws, func(i, j int) bool { return ws[i].id < ws[j].id })
		for _, w := range ws {
			if g.edgeOrigin(v, w) == a {
				return a
			}
		}
	}
	return 0
}

// edgeOrigin returns the single external origin of the addresses by which
// v was observed adjacent to n, or 0.
func (g *graph) edgeOrigin(n, v *node) topo.ASN {
	var out topo.ASN
	for _, p := range n.succ[v] {
		origins, _, ok := g.in.View.Origins(p.to)
		if !ok {
			return 0
		}
		for _, o := range origins {
			if g.vpASNs[o] {
				return 0
			}
		}
		if out == 0 {
			out = origins[0]
		} else if out != origins[0] {
			return 0
		}
	}
	return out
}

// countWinner picks the AS with the most adjacent interfaces, breaking
// ties in favor of a known relationship with the host (§5.4.6 step 6.1).
func (g *graph) countWinner(extAdj map[topo.ASN]int) topo.ASN {
	type entry struct {
		asn topo.ASN
		n   int
	}
	var entries []entry
	for a, c := range extAdj {
		entries = append(entries, entry{a, c})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].n != entries[j].n {
			return entries[i].n > entries[j].n
		}
		iRel := g.in.Rel.Rel(g.in.HostASN, entries[i].asn) != topo.RelNone
		jRel := g.in.Rel.Rel(g.in.HostASN, entries[j].asn) != topo.RelNone
		if iRel != jRel {
			return iRel
		}
		return entries[i].asn < entries[j].asn
	})
	return entries[0].asn
}

// ---------------------------------------------------------------------------
// §5.4.7: analytical aliases on the near side

func (g *graph) passAnalyticalAliases() {
	if g.in.Opts.NoAnalyticalAlias {
		return
	}
	for _, v := range g.nodes {
		if v.host || v.owner == 0 || g.vpASNs[v.owner] {
			continue
		}
		// Host-side predecessors with a single observed interface.
		var singles []*node
		for p := range v.pred {
			if p.host && len(p.addrs) == 1 {
				singles = append(singles, p)
			}
		}
		if len(singles) < 2 {
			continue
		}
		sort.Slice(singles, func(i, j int) bool { return singles[i].id < singles[j].id })
		base := singles[0]
		for _, u := range singles[1:] {
			// Merging must not contradict measurement: skip pairs some
			// probe actively rejected.
			if g.in.Data.Resolver != nil &&
				g.in.Data.Resolver.Verdict(base.addrs[0], u.addrs[0]) == alias.AliasNo {
				continue
			}
			if g.in.Data.Resolver != nil {
				g.in.Data.Resolver.Record(base.addrs[0], u.addrs[0], alias.AliasYes)
			}
			g.in.Trace.Emit(obs.StageCore, "merge", base.addrs[0].String(), 0,
				obs.KV("merged", u.addrs[0].String()),
				obs.KV("via", "analytical"))
			g.mergeNodes(base, u)
			g.in.Obs.Inc("core.alias.merges")
		}
	}
}

// mergeNodes folds src into dst.
func (g *graph) mergeNodes(dst, src *node) {
	if dst == src {
		return
	}
	dst.addrs = append(dst.addrs, src.addrs...)
	sort.Slice(dst.addrs, func(i, j int) bool { return dst.addrs[i] < dst.addrs[j] })
	for _, a := range src.addrs {
		g.byAddr[a] = dst
	}
	for s, pairs := range src.succ {
		if s == dst {
			continue
		}
		dst.succ[s] = append(dst.succ[s], pairs...)
		delete(s.pred, src)
		s.pred[dst] = append(s.pred[dst], pairs...)
	}
	for p, pairs := range src.pred {
		if p == dst {
			continue
		}
		dst.pred[p] = append(dst.pred[p], pairs...)
		delete(p.succ, src)
		p.succ[dst] = append(p.succ[dst], pairs...)
	}
	delete(dst.succ, src)
	delete(dst.pred, src)
	if src.minTTL < dst.minTTL {
		dst.minTTL = src.minTTL
	}
	for d, c := range src.dests {
		dst.dests[d] += c
	}
	for d, c := range src.lastFor {
		dst.lastFor[d] += c
	}
	src.addrs = nil
	src.done = true
	src.owner = 0
	src.host = false
	src.merged = true
}

// ---------------------------------------------------------------------------
// Result assembly and §5.4.8

func (g *graph) buildResult() *Result {
	res := &Result{
		VPName:    g.in.Data.VPName,
		Neighbors: make(map[topo.ASN][]*Link),
		byAddr:    make(map[netx.Addr]*RouterNode),
	}
	nodeOut := make(map[*node]*RouterNode)
	for _, n := range g.nodes {
		if n.merged {
			continue
		}
		rn := &RouterNode{
			ID:        len(res.Routers),
			Addrs:     n.addrs,
			Owner:     n.owner,
			Heuristic: n.heur,
			IsHost:    n.host || g.vpASNs[n.owner],
			HopDist:   n.minTTL,
		}
		res.Routers = append(res.Routers, rn)
		nodeOut[n] = rn
		for _, a := range n.addrs {
			res.byAddr[a] = rn
		}
	}
	// Interdomain links: edges from a host router to an external-owned one.
	seen := make(map[[2]*RouterNode]bool)
	for _, n := range g.nodes {
		if n.merged || !isHostNode(nodeOut[n]) {
			continue
		}
		var vs []*node
		for v := range n.succ {
			vs = append(vs, v)
		}
		sort.Slice(vs, func(i, j int) bool { return vs[i].id < vs[j].id })
		for _, v := range vs {
			out := nodeOut[v]
			if out == nil || isHostNode(out) || out.Owner == 0 {
				continue
			}
			key := [2]*RouterNode{nodeOut[n], out}
			if seen[key] {
				continue
			}
			seen[key] = true
			pair := n.succ[v][0]
			res.Links = append(res.Links, &Link{
				Near: nodeOut[n], Far: out,
				NearAddr: pair.from, FarAddr: pair.to,
				FarAS: out.Owner, Heuristic: out.Heuristic,
			})
		}
	}
	for _, l := range res.Links {
		res.Neighbors[l.FarAS] = append(res.Neighbors[l.FarAS], l)
	}
	return res
}

func isHostNode(rn *RouterNode) bool { return rn != nil && rn.IsHost }

// passSilent applies §5.4.8: place neighbors that never answered
// traceroute, using the BGP view's neighbor list.
func (g *graph) passSilent(res *Result) {
	host := g.in.HostASN
	for _, a := range g.in.View.NeighborsOf(host) {
		if g.vpASNs[a] || len(res.Neighbors[a]) > 0 {
			continue
		}
		finals := g.finalNodes[a]
		if len(finals) != 1 {
			continue // different exits: cannot place the neighbor
		}
		var r0 *node
		for n := range finals {
			r0 = n
		}
		if r0.merged || !r0.host {
			continue
		}
		// Distinguish a fully silent neighbor from one answering other
		// ICMP: echo replies whose source maps to the neighbor.
		heur := HeurSilent
		for _, src := range g.echoFrom[a] {
			if origins, _, ok := g.in.View.Origins(src); ok {
				for _, o := range origins {
					if o == a {
						heur = HeurOtherICMP
					}
				}
			}
		}
		near := res.byAddr[r0.addrs[0]]
		if near == nil {
			continue
		}
		l := &Link{Near: near, FarAS: a, Heuristic: heur}
		res.Links = append(res.Links, l)
		res.Neighbors[a] = append(res.Neighbors[a], l)
		g.in.Obs.Inc("core.heur.fire." + string(heur))
		g.in.Trace.Emit(obs.StageCore, "decision", a.String(), 0,
			obs.KV("heuristic", string(heur)),
			obs.KV("owner", a.String()),
			obs.KV("near", r0.addrs[0].String()),
			obs.KV("addrs", r0.addrs[0].String()),
			obs.KV("rel", g.in.Rel.Rel(host, a).String()))
	}
}
