package core

import (
	"sync"
	"sync/atomic"

	"bdrmap/internal/alias"
	"bdrmap/internal/obs"
	"bdrmap/internal/topo"
)

// Infer runs the full bdrmap algorithm over one vantage point's dataset.
func Infer(in Input) *Result {
	span := in.Obs.StartStage("core.infer")
	defer span.End()
	// The inference span spends no simulated measurement time (SimNS 0);
	// it exists so the timeline shows where each vp's probing ends and
	// attribution begins, with the result sizes as attributes.
	sp := in.Spans.Begin(in.SpanParent, "stage", "infer")
	defer sp.End()
	ar := in.Arena
	if ar == nil {
		ar = arenaPool.Get().(*Arena)
		defer arenaPool.Put(ar)
	}
	ar.Reset()
	g := buildGraph(in, ar)
	g.spliceClean(in.Prev, in.Data.Dirty)
	g.passHost()
	g.sweep()
	g.passAnalyticalAliases()
	res := g.buildResult()
	g.passSilent(res)
	in.Obs.Add("core.routers", int64(len(res.Routers)))
	in.Obs.Add("core.links", int64(len(res.Links)))
	sp.SetAttr("routers", len(res.Routers))
	sp.SetAttr("links", len(res.Links))
	return res
}

// anonymousAddr reports whether a node's addresses say nothing about its
// owner: host-supplied interconnection space or IXP LAN space.
func (n *node) anonymousAddr() bool {
	return n.class == classHost || n.class == classIXP
}

// ---------------------------------------------------------------------------
// The decide/apply sweep
//
// §5.4.5's ordering constraint holds *between* hop distances, not within
// one: every heuristic reads only immutable build-time state plus the done
// flag of a predecessor (step 5.1), so routers at equal minTTL can be
// decided concurrently as long as their decisions are applied in visit
// order against guards re-checked at apply time. The sweep therefore runs
// in two phases per hop-distance group: decide (pure, optionally parallel)
// buffers each router's claims and declines as ops; apply replays them
// sequentially in visit order. A decision whose router was claimed by an
// earlier-applied decision is dropped whole (a sequential run would never
// have started it), and a claim on another router applies only if that
// router is still undecided — together these reproduce the sequential
// sweep byte-for-byte for any worker count.

type opKind uint8

const (
	opDecline opKind = iota
	opClaim
)

// op is one buffered step of a router's decision.
type op struct {
	kind    opKind
	target  int32
	guarded bool // claim applies only while target is still undecided
	owner   topo.ASN
	h       Heuristic
	ev      []obs.Attr
}

func (ws *workspace) claim(target int32, guarded bool, owner topo.ASN, h Heuristic, ev []obs.Attr) {
	ws.ops = append(ws.ops, op{kind: opClaim, target: target, guarded: guarded, owner: owner, h: h, ev: ev})
}

func (ws *workspace) decline(h Heuristic) {
	ws.ops = append(ws.ops, op{kind: opDecline, h: h})
}

// decideOne buffers the decision for one router into ws.ops (reused).
func (g *graph) decideOne(id int32, ws *workspace) []op {
	ws.ops = ws.ops[:0]
	n := &g.nodes[id]
	if n.spliced {
		g.replaySpliced(id, ws)
		return ws.ops
	}
	if !n.done {
		g.inferNeighbor(id, ws)
	}
	return ws.ops
}

// applyOps replays a buffered decision through the real claim/decline
// path, enforcing the drop and re-check guards described above.
func (g *graph) applyOps(id int32, ops []op) {
	n := &g.nodes[id]
	if !n.spliced && n.done {
		return // claimed by an earlier decision: a sequential sweep never ran it
	}
	for _, o := range ops {
		if o.kind == opDecline {
			g.decline(o.h)
			continue
		}
		if o.guarded && g.nodes[o.target].done {
			continue
		}
		g.claim(o.target, o.owner, o.h, o.ev...)
	}
}

// sweep runs §5.4.2–§5.4.6 over the visit order, optionally deciding
// routers at equal hop distance in parallel.
func (g *graph) sweep() {
	workers := g.in.Opts.InferWorkers
	if workers < 1 {
		workers = 1
	}
	var wss []*workspace
	if workers > 1 {
		wss = make([]*workspace, workers)
		for i := range wss {
			wss[i] = &workspace{}
		}
	}
	ord := g.order
	for i := 0; i < len(ord); {
		j := i + 1
		ttl := g.nodes[ord[i]].minTTL
		for j < len(ord) && g.nodes[ord[j]].minTTL == ttl {
			j++
		}
		group := ord[i:j]
		if workers > 1 && len(group) > 1 {
			g.sweepGroupParallel(group, wss)
		} else {
			for _, id := range group {
				g.applyOps(id, g.decideOne(id, &g.ar.ws))
			}
		}
		i = j
	}
}

// sweepGroupParallel decides one equal-hop group across workers, then
// applies the buffered decisions in visit order.
func (g *graph) sweepGroupParallel(group []int32, wss []*workspace) {
	decisions := make([][]op, len(group))
	var next atomic.Int64
	var wg sync.WaitGroup
	for _, ws := range wss {
		wg.Add(1)
		go func(ws *workspace) {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= len(group) {
					return
				}
				ops := g.decideOne(group[k], ws)
				if len(ops) > 0 {
					decisions[k] = append([]op(nil), ops...)
				}
			}
		}(ws)
	}
	wg.Wait()
	for k, id := range group {
		g.applyOps(id, decisions[k])
	}
}

// ---------------------------------------------------------------------------
// §5.4.1: routers operated by the hosting network

func (g *graph) passHost() {
	host := g.in.HostASN
	ws := &g.ar.ws
	for _, id := range g.order {
		n := &g.nodes[id]
		if n.class != classHost {
			continue
		}
		// Step 1.2 precondition: a subsequent interface also originated by
		// the hosting network.
		hostSucc := g.hostSuccessor(id)
		if hostSucc < 0 {
			continue
		}
		// Step 1.1 exception: the neighbor may be multihomed to the host
		// with adjacent routers numbered from host space. This reading
		// only applies when both routers exclusively carry traffic toward
		// A (a host border carries many destinations and never matches).
		extAdj := g.succExternalOrigins(id, ws)
		if len(extAdj) == 1 && !n.isVP {
			a := extAdj[0].as
			hs := &g.nodes[hostSucc]
			onlyA := len(n.dests) == 1 && n.dests[0].as == a &&
				len(hs.dests) == 1 && hs.dests[0].as == a
			if onlyA && g.in.Rel.Rel(host, a) != topo.RelNone && g.multihomedException(id, hostSucc, a) {
				ev := obs.KV("only_dest", a.String())
				g.claim(id, a, HeurMultihomed, ev)
				if !hs.done {
					g.claim(hostSucc, a, HeurMultihomed, ev)
				}
				continue
			}
		}
		g.claim(id, host, HeurHostNetwork,
			obs.KV("host_successor", g.nodes[hostSucc].addrs[0].String()))
	}

	// Extension step (beyond the paper's 1.1/1.2, needed for hosts with
	// no customers to supply interconnection space): a host-space router
	// whose successors fan out into several *mutually unrelated* external
	// ASes must be the host's own border. A neighbor's router only carries
	// traffic into that neighbor's cone, so its adjacent external ASes
	// always include a plausible common transit; an egress fan-out point
	// of the host does not.
	for _, id := range g.order {
		n := &g.nodes[id]
		if n.done || n.class != classHost {
			continue
		}
		extAdj := g.succExternalOrigins(id, ws)
		if len(extAdj) >= 2 && !g.hasPlausibleTransit(extAdj) {
			g.claim(id, host, HeurHostNetwork,
				obs.KV("egress_fanout", len(extAdj)))
		}
	}
}

// hasPlausibleTransit reports whether some adjacent AS could be providing
// transit to every other adjacent AS (the fig. 9 configuration).
func (g *graph) hasPlausibleTransit(extAdj []asCount) bool {
	for _, ae := range extAdj {
		ok := true
		for _, be := range extAdj {
			if be.as == ae.as {
				continue
			}
			if g.in.Rel.Rel(ae.as, be.as) != topo.RelCustomer { // b is not a's customer
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// hostSuccessor returns a successor reached over a host-originated
// address, smallest node id first, or -1.
func (g *graph) hostSuccessor(id int32) int32 {
	for _, e := range g.nodes[id].succ {
		for _, p := range g.ar.edges[e].pairs {
			if g.originIsHost(p.to) {
				return g.ar.edges[e].to
			}
		}
	}
	return -1
}

// multihomedException applies §5.4.1's guard for step 1.1: if an owner we
// would infer for a router subsequent to n is a customer of the host but
// not a known neighbor of A, the multihomed reading is wrong and the host
// operates n. Returns true when step 1.1 should fire.
func (g *graph) multihomedException(n, v int32, a topo.ASN) bool {
	check := func(wid int32) bool {
		w := &g.nodes[wid]
		if w.class != classExternal || w.extAS == 0 || w.extAS == a {
			return true
		}
		o := w.extAS
		if g.in.Rel.Rel(g.in.HostASN, o) == topo.RelCustomer && !g.in.View.HasLink(o, a) {
			return false // a host customer unrelated to A: n is the host's
		}
		return true
	}
	for _, e := range g.nodes[n].succ {
		if !check(g.ar.edges[e].to) {
			return false
		}
	}
	for _, e := range g.nodes[v].succ {
		if !check(g.ar.edges[e].to) {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// §5.4.2–§5.4.6: neighbor routers, in the paper's order

func (g *graph) inferNeighbor(id int32, ws *workspace) {
	host := g.in.HostASN
	n := &g.nodes[id]
	tracing := g.in.Trace.Enabled()
	extAdj := g.succExternalOrigins(id, ws)

	// §5.4.2 firewall: the last responding router toward a destination,
	// numbered from space that says nothing about its owner, with no
	// adjacent interfaces at all.
	if n.anonymousAddr() && len(n.succ) == 0 && len(n.lastFor) > 0 {
		if len(n.dests) == 1 {
			d := n.dests[0].as
			var ev []obs.Attr
			if tracing {
				ev = []obs.Attr{obs.KV("last_hop_toward", d.String())}
			}
			ws.claim(id, false, d, HeurFirewall, ev)
			return
		} else if na := g.nextas(id, ws); na != 0 {
			var ev []obs.Attr
			if tracing {
				ev = []obs.Attr{obs.KV("common_provider_of_dests", na.String())}
			}
			ws.claim(id, false, na, HeurFirewall, ev)
			return
		}
		ws.decline(HeurFirewall)
	}

	// §5.4.3 unrouted interior addressing.
	if n.class == classUnrouted || (n.anonymousAddr() && g.allSuccUnrouted(id)) {
		if g.inferUnrouted(id, ws) {
			return
		}
		ws.decline(HeurUnrouted)
	}

	// §5.4.4 onenet.
	if sameAS := findAS(extAdj, n.extAS); n.class == classExternal && n.extAS != 0 && sameAS > 0 {
		var ev []obs.Attr
		if tracing {
			ev = []obs.Attr{obs.KV("adjacent_same_as_ifaces", int(sameAS))}
		}
		ws.claim(id, false, n.extAS, HeurOnenet, ev) // step 4.1
		return
	}
	if n.anonymousAddr() {
		if a := g.twoConsecutive(id); a != 0 { // step 4.2
			var ev []obs.Attr
			if tracing {
				ev = []obs.Attr{obs.KV("consecutive_as", a.String())}
			}
			ws.claim(id, false, a, HeurOnenet, ev)
			return
		}
		ws.decline(HeurOnenet)
	}

	// §5.4.5 steps 5.1/5.2: third-party address detection. "Paths toward
	// B" include B's customer cone: a transit customer's border also
	// carries probes toward its own customers.
	if b := g.soleConeRoot(n.dests); !g.in.Opts.NoThirdParty &&
		n.class == classExternal && n.extAS != 0 && b != 0 {
		a := n.extAS
		if a != b && g.in.Rel.Rel(b, a) == topo.RelProvider {
			// The address belongs to the destination's provider: the
			// router used a route from its provider to respond.
			var ev []obs.Attr
			if tracing {
				ev = []obs.Attr{
					obs.KV("cone_root", b.String()),
					obs.KV("addr_owner_provides", b.String()),
				}
			}
			ws.claim(id, false, b, HeurThirdParty, ev)
			// Step 5.1: a preceding router observed only with host
			// addresses and only toward B belongs to B as well.
			for _, e := range n.pred {
				p := g.ar.edges[e].from
				pn := &g.nodes[p]
				if !pn.done && pn.class == classHost && g.soleConeRoot(pn.dests) == b {
					var pev []obs.Attr
					if tracing {
						pev = []obs.Attr{obs.KV("cone_root", b.String())}
					}
					ws.claim(p, true, b, HeurThirdParty, pev)
				}
			}
			return
		}
		ws.decline(HeurThirdParty)
	}

	// §5.4.5 steps 5.3–5.5 for routers with anonymous addresses.
	if n.anonymousAddr() && len(extAdj) == 1 {
		a := extAdj[0].as
		switch g.in.Rel.Rel(host, a) {
		case topo.RelCustomer, topo.RelPeer: // step 5.3
			var ev []obs.Attr
			if tracing {
				ev = []obs.Attr{obs.KV("adjacent_as", a.String())}
			}
			ws.claim(id, false, a, HeurRelationship, ev)
			return
		default:
			// Step 5.4 "missing customer": B provider of A, host provider
			// of B. The paper notes sibling organizations cause this
			// scenario (B numbers its routers from sibling A's space), so
			// require sibling evidence before overriding the IP-AS owner.
			for _, b := range g.in.Rel.ProvidersOf(a) {
				if g.in.Rel.Rel(host, b) == topo.RelCustomer &&
					g.in.Siblings != nil && g.in.Siblings.SameOrg(a, b) {
					var ev []obs.Attr
					if tracing {
						ev = []obs.Attr{
							obs.KV("adjacent_as", a.String()),
							obs.KV("sibling_hit", a.String()+"~"+b.String()),
						}
					}
					ws.claim(id, false, b, HeurMissingCust, ev)
					return
				}
			}
			ws.decline(HeurMissingCust)
			// Step 5.5 hidden peer: a single subsequent origin with no
			// known relationship.
			var ev []obs.Attr
			if tracing {
				ev = []obs.Attr{obs.KV("adjacent_as", a.String())}
			}
			ws.claim(id, false, a, HeurHiddenPeer, ev)
			return
		}
	}

	// §5.4.6 step 6.1: counting among several adjacent origins.
	if n.anonymousAddr() && len(extAdj) > 1 {
		w := g.countWinner(extAdj, ws)
		var ev []obs.Attr
		if tracing {
			ev = []obs.Attr{
				obs.KV("adjacent_origins", len(extAdj)),
				obs.KV("winner_ifaces", int(findAS(extAdj, w))),
			}
		}
		ws.claim(id, false, w, HeurCount, ev)
		return
	}

	// §5.4.6 fallback: plain IP-AS mapping.
	if (n.class == classExternal || n.class == classMulti) && n.extAS != 0 {
		ws.claim(id, false, n.extAS, HeurIPAS, nil)
		return
	}

	// Anonymous routers with destinations but no other constraints:
	// the destination set is all we have (IXP LAN firewalls and the
	// remaining host-space cases).
	if n.anonymousAddr() && len(n.dests) == 1 && len(n.lastFor) > 0 {
		d := n.dests[0].as
		var ev []obs.Attr
		if tracing {
			ev = []obs.Attr{obs.KV("last_hop_toward", d.String())}
		}
		ws.claim(id, false, d, HeurFirewall, ev)
		return
	}
	if na := g.nextas(id, ws); n.anonymousAddr() && na != 0 && len(n.lastFor) > 0 {
		var ev []obs.Attr
		if tracing {
			ev = []obs.Attr{obs.KV("common_provider_of_dests", na.String())}
		}
		ws.claim(id, false, na, HeurFirewall, ev)
	}
}

// soleConeRoot returns the single destination AS whose (inferred) customer
// cone covers every other destination in the set, or 0 when no unique such
// AS exists. With one destination it is that destination.
func (g *graph) soleConeRoot(dests []asCount) topo.ASN {
	switch len(dests) {
	case 0:
		return 0
	case 1:
		return dests[0].as
	}
	var root topo.ASN
	for _, be := range dests {
		b := be.as
		ok := true
		for _, de := range dests {
			d := de.as
			if d == b {
				continue
			}
			isCust := false
			for _, p := range g.in.Rel.ProvidersOf(d) {
				if p == b {
					isCust = true
				}
			}
			if !isCust {
				ok = false
				break
			}
		}
		if ok {
			if root != 0 {
				return 0 // ambiguous
			}
			root = b
		}
	}
	return root
}

// allSuccUnrouted reports whether every successor edge of n crosses an
// unrouted (and non-host) address, with at least one successor.
func (g *graph) allSuccUnrouted(id int32) bool {
	n := &g.nodes[id]
	if len(n.succ) == 0 {
		return false
	}
	for _, e := range n.succ {
		for _, p := range g.ar.edges[e].pairs {
			if g.originIsHost(p.to) {
				return false
			}
			if _, _, ok := g.in.View.Origins(p.to); ok {
				return false
			}
			if g.in.IXP != nil {
				if _, isIXP := g.in.IXP.IsIXP(p.to); isIXP {
					return false
				}
			}
		}
	}
	return true
}

// inferUnrouted applies §5.4.3: reason from the origins of the first
// routed interfaces observed after the router. It buffers at most one
// claim and reports whether it did.
func (g *graph) inferUnrouted(id int32, ws *workspace) bool {
	n := &g.nodes[id]
	asns := ws.asns[:0]
	for _, e := range n.firstRoutedAfter {
		if !g.vpASNs[e.as] {
			asns = append(asns, e.as)
		}
	}
	ws.asns = asns[:0]
	switch {
	case len(asns) == 1: // step 3.1
		ws.claim(id, false, asns[0], HeurUnrouted, nil)
		return true
	case len(asns) > 1: // step 3.2: most frequent provider of the set
		count := ws.counts[:0]
		for _, a := range asns {
			for _, p := range g.in.Rel.ProvidersOf(a) {
				count = bumpAS(count, p, 1)
			}
		}
		ws.counts = count[:0]
		var best topo.ASN
		bestN := int32(0)
		for _, e := range count {
			if e.n > bestN || (e.n == bestN && (best == 0 || e.as < best)) {
				best, bestN = e.as, e.n
			}
		}
		if best != 0 {
			ws.claim(id, false, best, HeurUnrouted, nil)
			return true
		}
		return false
	default:
		if na := g.nextas(id, ws); na != 0 {
			ws.claim(id, false, na, HeurUnrouted, nil)
			return true
		}
		return false
	}
}

// twoConsecutive looks for two consecutive routers after n whose
// edge addresses map to one external AS (§5.4.4 step 4.2).
func (g *graph) twoConsecutive(id int32) topo.ASN {
	for _, e := range g.nodes[id].succ {
		a := g.edgeOrigin(e)
		if a == 0 {
			continue
		}
		v := g.ar.edges[e].to
		for _, e2 := range g.nodes[v].succ {
			if g.edgeOrigin(e2) == a {
				return a
			}
		}
	}
	return 0
}

// edgeOrigin returns the single external origin of the addresses by which
// the edge's far router was observed, or 0.
func (g *graph) edgeOrigin(e int32) topo.ASN {
	var out topo.ASN
	for _, p := range g.ar.edges[e].pairs {
		origins, _, ok := g.in.View.Origins(p.to)
		if !ok {
			return 0
		}
		for _, o := range origins {
			if g.vpASNs[o] {
				return 0
			}
		}
		if out == 0 {
			out = origins[0]
		} else if out != origins[0] {
			return 0
		}
	}
	return out
}

// countWinner picks the AS with the most adjacent interfaces, breaking
// ties in favor of a known relationship with the host (§5.4.6 step 6.1).
func (g *graph) countWinner(extAdj []asCount, ws *workspace) topo.ASN {
	entries := append(ws.counts[:0], extAdj...)
	ws.counts = entries[:0]
	best := entries[0]
	bestRel := g.in.Rel.Rel(g.in.HostASN, best.as) != topo.RelNone
	for _, e := range entries[1:] {
		if e.n != best.n {
			if e.n > best.n {
				best = e
				bestRel = g.in.Rel.Rel(g.in.HostASN, best.as) != topo.RelNone
			}
			continue
		}
		eRel := g.in.Rel.Rel(g.in.HostASN, e.as) != topo.RelNone
		if eRel != bestRel {
			if eRel {
				best, bestRel = e, true
			}
			continue
		}
		if e.as < best.as {
			best = e
		}
	}
	return best.as
}

// ---------------------------------------------------------------------------
// §5.4.7: analytical aliases on the near side

func (g *graph) passAnalyticalAliases() {
	if g.in.Opts.NoAnalyticalAlias {
		return
	}
	var singles []int32
	for _, vid := range g.order {
		v := &g.nodes[vid]
		if v.host || v.owner == 0 || g.vpASNs[v.owner] {
			continue
		}
		// Host-side predecessors with a single observed interface; the
		// pred list is sorted by node id, so singles come out in id order.
		singles = singles[:0]
		for _, e := range v.pred {
			p := g.ar.edges[e].from
			pn := &g.nodes[p]
			if pn.host && len(pn.addrs) == 1 {
				singles = append(singles, p)
			}
		}
		if len(singles) < 2 {
			continue
		}
		base := singles[0]
		for _, u := range singles[1:] {
			// Merging must not contradict measurement: skip pairs some
			// probe actively rejected.
			baseAddr, uAddr := g.nodes[base].addrs[0], g.nodes[u].addrs[0]
			if g.in.Data.Resolver != nil &&
				g.in.Data.Resolver.Verdict(baseAddr, uAddr) == alias.AliasNo {
				continue
			}
			if g.in.Data.Resolver != nil {
				g.in.Data.Resolver.Record(baseAddr, uAddr, alias.AliasYes)
			}
			g.in.Trace.Emit(obs.StageCore, "merge", baseAddr.String(), 0,
				obs.KV("merged", uAddr.String()),
				obs.KV("via", "analytical"))
			g.mergeNodes(base, u)
			g.in.Obs.Inc("core.alias.merges")
		}
	}
}

// findEdge returns the edge from->to, or -1.
func (g *graph) findEdge(from, to int32) int32 {
	if e, ok := g.ar.edgeIdx[uint64(uint32(from))<<32|uint64(uint32(to))]; ok {
		return e
	}
	return -1
}

// retargetEdge rewrites one endpoint of an edge, keeping the index map
// consistent (merge support; the old key is dropped).
func (g *graph) retargetEdge(e, from, to int32) {
	old := &g.ar.edges[e]
	delete(g.ar.edgeIdx, uint64(uint32(old.from))<<32|uint64(uint32(old.to)))
	old.from, old.to = from, to
	g.ar.edgeIdx[uint64(uint32(from))<<32|uint64(uint32(to))] = e
}

// removeEdge deletes edge e from an index list, in place.
func removeEdge(list []int32, e int32) []int32 {
	for i, x := range list {
		if x == e {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// insertSucc/insertPred keep the per-node lists sorted by neighbor id.
// The lists are capacity-bounded slab windows, so growth copies out.
func (g *graph) insertSucc(list []int32, e int32) []int32 {
	pos := len(list)
	for i, x := range list {
		if g.ar.edges[x].to > g.ar.edges[e].to {
			pos = i
			break
		}
	}
	list = append(list, 0)
	copy(list[pos+1:], list[pos:])
	list[pos] = e
	return list
}

func (g *graph) insertPred(list []int32, e int32) []int32 {
	pos := len(list)
	for i, x := range list {
		if g.ar.edges[x].from > g.ar.edges[e].from {
			pos = i
			break
		}
	}
	list = append(list, 0)
	copy(list[pos+1:], list[pos:])
	list[pos] = e
	return list
}

// mergeASCounts sums two sorted tallies into a fresh slice.
func mergeASCounts(a, b []asCount) []asCount {
	if len(b) == 0 {
		return a
	}
	out := make([]asCount, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].as < b[j].as:
			out = append(out, a[i])
			i++
		case a[i].as > b[j].as:
			out = append(out, b[j])
			j++
		default:
			out = append(out, asCount{as: a[i].as, n: a[i].n + b[j].n})
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// mergeNodes folds src into dst: addresses union, adjacency rewired onto
// dst (pair order preserved, src's pairs appended after dst's), tallies
// summed. src keeps no state beyond the merged flag.
func (g *graph) mergeNodes(dst, src int32) {
	if dst == src {
		return
	}
	ar := g.ar
	d, s := &g.nodes[dst], &g.nodes[src]
	d.addrs = append(d.addrs, s.addrs...)
	addrs := d.addrs
	for i := 1; i < len(addrs); i++ {
		for j := i; j > 0 && addrs[j] < addrs[j-1]; j-- {
			addrs[j], addrs[j-1] = addrs[j-1], addrs[j]
		}
	}
	for _, a := range s.addrs {
		if aid, ok := g.intern.Lookup(a); ok {
			ar.addrNode[aid] = dst
		}
	}
	for _, e := range s.succ {
		to := ar.edges[e].to
		if to == dst {
			continue // the src->dst edge dies with src (removed from d.pred below)
		}
		if f := g.findEdge(dst, to); f >= 0 {
			ar.edges[f].pairs = append(ar.edges[f].pairs, ar.edges[e].pairs...)
			g.nodes[to].pred = removeEdge(g.nodes[to].pred, e)
			delete(ar.edgeIdx, uint64(uint32(src))<<32|uint64(uint32(to)))
		} else {
			g.retargetEdge(e, dst, to)
			d.succ = g.insertSucc(d.succ, e)
			g.nodes[to].pred = removeEdge(g.nodes[to].pred, e)
			g.nodes[to].pred = g.insertPred(g.nodes[to].pred, e)
		}
	}
	for _, e := range s.pred {
		from := ar.edges[e].from
		if from == dst {
			continue // the dst->src edge is removed from d.succ below
		}
		if f := g.findEdge(from, dst); f >= 0 {
			ar.edges[f].pairs = append(ar.edges[f].pairs, ar.edges[e].pairs...)
			g.nodes[from].succ = removeEdge(g.nodes[from].succ, e)
			delete(ar.edgeIdx, uint64(uint32(from))<<32|uint64(uint32(src)))
		} else {
			g.retargetEdge(e, from, dst)
			d.pred = g.insertPred(d.pred, e)
			g.nodes[from].succ = removeEdge(g.nodes[from].succ, e)
			g.nodes[from].succ = g.insertSucc(g.nodes[from].succ, e)
		}
	}
	if e := g.findEdge(dst, src); e >= 0 {
		d.succ = removeEdge(d.succ, e)
		delete(ar.edgeIdx, uint64(uint32(dst))<<32|uint64(uint32(src)))
	}
	if e := g.findEdge(src, dst); e >= 0 {
		d.pred = removeEdge(d.pred, e)
		delete(ar.edgeIdx, uint64(uint32(src))<<32|uint64(uint32(dst)))
	}
	if s.minTTL < d.minTTL {
		d.minTTL = s.minTTL
	}
	d.dests = mergeASCounts(d.dests, s.dests)
	d.lastFor = mergeASCounts(d.lastFor, s.lastFor)
	s.succ, s.pred = nil, nil
	s.addrs = nil
	s.done = true
	s.owner = 0
	s.host = false
	s.merged = true
}

// ---------------------------------------------------------------------------
// Result assembly and §5.4.8

func (g *graph) buildResult() *Result {
	res := &Result{
		VPName:    g.in.Data.VPName,
		Neighbors: make(map[topo.ASN][]*Link),
		Intern:    g.intern,
	}
	nodeOut := make([]int32, len(g.nodes))
	for i := range nodeOut {
		nodeOut[i] = -1
	}
	for _, id := range g.order {
		n := &g.nodes[id]
		if n.merged {
			continue
		}
		rn := &RouterNode{
			ID:        len(res.Routers),
			Addrs:     n.addrs,
			Owner:     n.owner,
			Heuristic: n.heur,
			IsHost:    n.host || g.vpASNs[n.owner],
			HopDist:   n.minTTL,
		}
		res.Routers = append(res.Routers, rn)
		nodeOut[id] = int32(rn.ID)
	}
	res.routerByID = make([]int32, g.intern.Len())
	for i := range res.routerByID {
		res.routerByID[i] = -1
	}
	for idx, rn := range res.Routers {
		for _, a := range rn.Addrs {
			if aid, ok := g.intern.Lookup(a); ok {
				res.routerByID[aid] = int32(idx)
			}
		}
	}
	// Interdomain links: edges from a host router to an external-owned one.
	seen := make(map[[2]int32]bool)
	for _, id := range g.order {
		n := &g.nodes[id]
		if n.merged || nodeOut[id] < 0 || !isHostNode(res.Routers[nodeOut[id]]) {
			continue
		}
		for _, e := range n.succ {
			v := g.ar.edges[e].to
			if nodeOut[v] < 0 {
				continue
			}
			out := res.Routers[nodeOut[v]]
			if isHostNode(out) || out.Owner == 0 {
				continue
			}
			key := [2]int32{nodeOut[id], nodeOut[v]}
			if seen[key] {
				continue
			}
			seen[key] = true
			pair := g.ar.edges[e].pairs[0]
			res.Links = append(res.Links, &Link{
				Near: res.Routers[nodeOut[id]], Far: out,
				NearAddr: pair.from, FarAddr: pair.to,
				FarAS: out.Owner, Heuristic: out.Heuristic,
			})
		}
	}
	for _, l := range res.Links {
		res.Neighbors[l.FarAS] = append(res.Neighbors[l.FarAS], l)
	}
	return res
}

func isHostNode(rn *RouterNode) bool { return rn != nil && rn.IsHost }

// passSilent applies §5.4.8: place neighbors that never answered
// traceroute, using the BGP view's neighbor list.
func (g *graph) passSilent(res *Result) {
	host := g.in.HostASN
	for _, a := range g.in.View.NeighborsOf(host) {
		if g.vpASNs[a] || len(res.Neighbors[a]) > 0 {
			continue
		}
		fi, ok := g.finalNodes[a]
		if !ok || fi.multi {
			continue // different exits: cannot place the neighbor
		}
		r0 := &g.nodes[fi.n]
		if r0.merged || !r0.host {
			continue
		}
		// Distinguish a fully silent neighbor from one answering other
		// ICMP: echo replies whose source maps to the neighbor.
		heur := HeurSilent
		for _, src := range g.echoFrom[a] {
			if origins, _, ok := g.in.View.Origins(src); ok {
				for _, o := range origins {
					if o == a {
						heur = HeurOtherICMP
					}
				}
			}
		}
		near := res.RouterByAddr(r0.addrs[0])
		if near == nil {
			continue
		}
		l := &Link{Near: near, FarAS: a, Heuristic: heur}
		res.Links = append(res.Links, l)
		res.Neighbors[a] = append(res.Neighbors[a], l)
		g.in.Obs.Inc(heurFireName(heur))
		g.in.Trace.Emit(obs.StageCore, "decision", a.String(), 0,
			obs.KV("heuristic", string(heur)),
			obs.KV("owner", a.String()),
			obs.KV("near", r0.addrs[0].String()),
			obs.KV("addrs", r0.addrs[0].String()),
			obs.KV("rel", g.in.Rel.Rel(host, a).String()))
	}
}
