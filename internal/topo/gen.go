package topo

import (
	"fmt"
	"math/rand"
	"time"

	"bdrmap/internal/netx"
)

// Generate builds a synthetic internetwork for the given profile and seed.
// The same (profile, seed) pair always produces the same network.
func Generate(prof Profile, seed int64) *Network {
	prof = prof.withDefaults()
	g := &genCtx{
		rng:     rand.New(rand.NewSource(seed)),
		net:     NewNetwork(),
		al:      NewAllocator(),
		prof:    prof,
		seed:    seed,
		nextASN: 64500,
	}
	g.net.AnnotSeed = seed
	g.buildHost()
	g.buildBackbone()
	g.buildProviders()
	g.buildPeers()
	g.buildCDNs()
	g.buildCustomers()
	g.buildHypergiants()
	g.buildIXPs()
	g.buildDistant()
	g.applyMOAS()
	g.recordDelegations()
	g.placeVPs()
	g.randomizeResponderTraits()
	g.net.Alloc = g.al
	g.net.Build()
	return g.net
}

// randomizeResponderTraits assigns the measurement-relevant traits that are
// independent of a neighbor's visibility archetype: the IP-ID discipline
// (only shared-counter routers are resolvable by Ally) and whether UDP
// port-unreachable responses use a canonical source (Mercator's signal).
func (g *genCtx) randomizeResponderTraits() {
	for _, r := range g.net.Routers {
		r.Behavior.MercatorCanonical = g.rng.Float64() < 0.7
		if r.Behavior.IPID == IPIDShared {
			switch x := g.rng.Float64(); {
			case x < 0.60: // keep shared
			case x < 0.72:
				r.Behavior.IPID = IPIDPerIface
			case x < 0.88:
				r.Behavior.IPID = IPIDRandom
			default:
				r.Behavior.IPID = IPIDZero
			}
		}
		if g.rng.Float64() < 0.05 {
			r.Behavior.RateLimitPPS = 50 + g.rng.Intn(150)
		}
		// A few routers follow the RFC 1812 advice of sourcing responses
		// from the interface transmitting them (§4 challenge 2).
		if r.Owner != g.net.HostASN && g.rng.Float64() < 0.03 {
			r.Behavior.SourceEgressToProbe = true
		}
	}
}

type genCtx struct {
	rng     *rand.Rand
	net     *Network
	al      *Allocator
	prof    Profile
	seed    int64 // feeds the order-invariant per-AS annotation hashes
	nextASN ASN

	host       *AS
	hostInfra  netx.Prefix // announced infrastructure space
	hostHidden netx.Prefix // unannounced infrastructure space (RIR-only)
	hostPA     netx.Prefix // provider-aggregatable block for delegations
	regions    []Region
	hostBB     []*Router   // backbone router per region
	hostBR     [][]*Router // border routers per region
	hostACC    []*Router   // access router per region
	brCursor   []int       // round-robin cursor per region

	transitPool []ASN // transit ASes usable as "other providers"
	backbone    []*AS // the global Tier-1 clique
	cdnPools    map[ASN]netx.Prefix
	paCustomers []*AS     // customers using provider-aggregatable space
	custCores   []*Router // every customer's core router, for hypergiant fanout
}

func (g *genCtx) asn() ASN {
	g.nextASN++
	return g.nextASN
}

// pickVis draws a visibility archetype from a weighted mix.
func (g *genCtx) pickVis(mix VisMix) Visibility {
	var total float64
	for _, w := range mix {
		total += w.W
	}
	x := g.rng.Float64() * total
	for _, w := range mix {
		x -= w.W
		if x < 0 {
			return w.Vis
		}
	}
	return mix[len(mix)-1].Vis
}

// linkPlen picks /31 (70%) or /30 (30%) for an interconnection subnet.
func (g *genCtx) linkPlen() int {
	if g.rng.Float64() < 0.7 {
		return 31
	}
	return 30
}

// randRegion returns a random region index.
func (g *genCtx) randRegion() int { return g.rng.Intn(len(g.regions)) }

// ---------------------------------------------------------------------------
// Host network

func (g *genCtx) buildHost() {
	p := g.prof
	g.regions = RegionsN(p.NumRegions)

	hostASN := g.asn()
	g.host = g.net.AddAS(hostASN, p.HostTier, "org-host")
	g.net.HostASN = hostASN

	g.hostInfra = g.al.Next(14)
	g.hostHidden = g.al.Next(18)
	g.hostPA = g.al.Next(15)
	g.host.Infra = g.hostInfra
	g.host.AnnounceInfra = true
	g.host.Prefixes = append(g.host.Prefixes, g.hostInfra, g.hostPA)

	// Sibling ASNs in the host organization. A sibling owns a couple of
	// backbone routers and originates one prefix, so heuristic §5.4.1 must
	// treat sibling space as "ours".
	var sibs []*AS
	for i := 0; i < p.HostSiblings; i++ {
		s := g.net.AddAS(g.asn(), p.HostTier, "org-host")
		sp := g.al.Next(18)
		s.Prefixes = append(s.Prefixes, sp)
		s.Infra = sp
		s.AnnounceInfra = true
		g.net.SetRel(hostASN, s.ASN, RelSibling)
		sibs = append(sibs, s)
	}

	// Routers: per region one backbone, BordersPerRegion borders, and one
	// access router where VPs attach.
	g.hostBB = make([]*Router, len(g.regions))
	g.hostBR = make([][]*Router, len(g.regions))
	g.hostACC = make([]*Router, len(g.regions))
	g.brCursor = make([]int, len(g.regions))
	for i, reg := range g.regions {
		owner := hostASN
		if len(sibs) > 0 && i%5 == 4 {
			owner = sibs[(i/5)%len(sibs)].ASN
		}
		g.hostBB[i] = g.net.AddRouter(owner, fmt.Sprintf("bb1.%s", reg.Name), reg.Longitude)
		for b := 0; b < p.BordersPerRegion; b++ {
			br := g.net.AddRouter(hostASN, fmt.Sprintf("br%d.%s", b+1, reg.Name), reg.Longitude)
			g.hostBR[i] = append(g.hostBR[i], br)
		}
		g.hostACC[i] = g.net.AddRouter(hostASN, fmt.Sprintf("acc1.%s", reg.Name), reg.Longitude)
	}

	// Backbone chain west→east plus chords every four regions.
	for i := 1; i < len(g.hostBB); i++ {
		g.net.ConnectPtP(g.hostBB[i-1], g.hostBB[i], g.al.Sub(g.hostInfra, 31), LinkInternal, hostASN)
	}
	for i := 4; i < len(g.hostBB); i += 4 {
		g.net.ConnectPtP(g.hostBB[i-4], g.hostBB[i], g.al.Sub(g.hostInfra, 31), LinkInternal, hostASN)
	}
	for i := range g.regions {
		for bi, br := range g.hostBR[i] {
			g.net.ConnectPtP(g.hostBB[i], br, g.al.Sub(g.hostInfra, 31), LinkInternal, hostASN)
			// Some borders get a second, parallel backbone link and a
			// non-shared IPID counter: their two inbound interfaces cannot
			// be alias-resolved by Ally, exercising the analytical alias
			// step §5.4.7.
			if bi == 0 && i%3 == 1 {
				g.net.ConnectPtP(g.hostBB[i], br, g.al.Sub(g.hostInfra, 31), LinkInternal, hostASN)
				br.Behavior.IPID = IPIDRandom
			}
		}
		// The access link near region 0 is numbered from the unannounced
		// block (§5.4.1: delegated-but-unrouted space near the VP).
		space := g.hostInfra
		if i == 0 {
			space = g.hostHidden
		}
		g.net.ConnectPtP(g.hostBB[i], g.hostACC[i], g.al.Sub(space, 31), LinkInternal, hostASN)
	}

	// Anchor host prefixes at the first backbone router.
	g.net.SetAnchor(g.hostInfra, g.hostBB[0].ID, true)
	g.net.SetAnchor(g.hostPA, g.hostBB[0].ID, true)
	for i, s := range sibs {
		g.net.SetAnchor(s.Prefixes[0], g.hostBB[(i+1)%len(g.hostBB)].ID, true)
	}
}

// nextBorder returns the next host border router in region (round-robin).
func (g *genCtx) nextBorder(region int) *Router {
	brs := g.hostBR[region]
	r := brs[g.brCursor[region]%len(brs)]
	g.brCursor[region]++
	return r
}

// ---------------------------------------------------------------------------
// Neighbor construction

// neighborSpec carries everything needed to wire one neighbor of the host.
type neighborSpec struct {
	as        *AS
	rel       Rel // neighbor's relationship to host: RelCustomer = buys from host
	vis       Visibility
	regions   []int // host regions to interconnect at
	hidden    bool  // host marks routes from this neighbor no-export (invisible in public BGP)
	policy    AnnouncePolicy
	nPrefixes int // total announced prefixes (CDNs announce many)
}

// newEdgeAS creates an AS with one announced prefix of the given length.
func (g *genCtx) newEdgeAS(tier Tier, plen int) *AS {
	asn := g.asn()
	a := g.net.AddAS(asn, tier, fmt.Sprintf("org-%d", asn))
	p := g.al.Next(plen)
	a.Prefixes = append(a.Prefixes, p)
	a.Infra = p
	a.AnnounceInfra = true
	return a
}

// buildNeighbor wires a neighbor AS to the host per its visibility
// archetype and returns the interdomain links created. It returns the
// neighbor's core router so further customers can attach beneath it.
func (g *genCtx) buildNeighbor(sp neighborSpec) (links []*Link, core *Router) {
	n := sp.as
	host := g.net.HostASN
	g.net.SetRel(n.ASN, host, sp.rel)
	if sp.hidden {
		if g.net.HiddenNeighbors == nil {
			g.net.HiddenNeighbors = make(map[ASN]bool)
		}
		g.net.HiddenNeighbors[n.ASN] = true
	}

	lon := func(region int) float64 { return g.regions[region%len(g.regions)].Longitude }
	home := sp.regions[0]

	core = g.net.AddRouter(n.ASN, "core1", lon(home))
	agg := g.net.AddRouter(n.ASN, "agg1", lon(home))

	// Which space numbers the interconnection subnets?
	hostSupplies := false
	switch sp.vis {
	case VisFirewall, VisOneHop, VisUnrouted, VisSilent, VisEchoOnly,
		VisMixedAdj, VisMultiAdj, VisSiblingUpstream:
		hostSupplies = true
	case VisOnenet:
		switch sp.rel {
		case RelProvider:
			hostSupplies = false
		case RelCustomer:
			hostSupplies = true
		default:
			hostSupplies = g.rng.Float64() < 0.5
		}
	case VisFirewallOwnSpace, VisThirdParty:
		hostSupplies = false
	}

	// Third-party archetype: the subnet comes from the neighbor's *other*
	// provider C, to which the neighbor is genuinely multihomed.
	var thirdParty *AS
	if sp.vis == VisThirdParty && len(g.transitPool) > 0 {
		thirdParty = g.net.ASes[g.transitPool[g.rng.Intn(len(g.transitPool))]]
		if n.RelTo(thirdParty.ASN) == RelNone {
			g.net.SetRel(n.ASN, thirdParty.ASN, RelCustomer)
			g.attachUnder(thirdParty, core, n.ASN)
		}
	}

	linkSubnet := func() (netx.Prefix, ASN) {
		plen := g.linkPlen()
		switch {
		case thirdParty != nil:
			return g.al.Sub(thirdParty.Infra, plen), thirdParty.ASN
		case hostSupplies:
			return g.al.Sub(g.hostInfra, plen), host
		default:
			return g.al.Sub(n.Infra, plen), n.ASN
		}
	}

	var borders []*Router
	for i, region := range sp.regions {
		br := g.nextBorder(region)
		b := g.net.AddRouter(n.ASN, fmt.Sprintf("bdr%d", i+1), lon(region))
		subnet, owner := linkSubnet()
		l := g.net.ConnectPtP(br, b, subnet, LinkInterdomain, owner)
		links = append(links, l)
		borders = append(borders, b)
	}

	// Interior space: most archetypes use the announced prefix; the
	// unrouted archetype numbers its interior from unannounced space.
	interiorSpace := n.Infra
	if sp.vis == VisUnrouted {
		hidden := g.al.Next(22)
		interiorSpace = hidden
		g.net.Delegations = append(g.net.Delegations, DelegationRecord{OrgID: n.Org, Prefix: hidden})
	}

	// Default interior wiring border(s)→core→agg, except for the
	// sibling-upstream archetype whose interior uses its customer's space.
	if sp.vis != VisSiblingUpstream {
		for _, b := range borders {
			g.net.ConnectPtP(b, core, g.al.Sub(interiorSpace, 31), LinkInternal, n.ASN)
		}
		g.net.ConnectPtP(core, agg, g.al.Sub(interiorSpace, 31), LinkInternal, n.ASN)
	}

	// Default anchoring: traffic to the announced prefix terminates at agg.
	g.net.SetAnchor(n.Prefixes[0], agg.ID, g.rng.Float64() < 0.7)

	switch sp.vis {
	case VisFirewall, VisFirewallOwnSpace, VisThirdParty:
		for _, b := range borders {
			b.Behavior.FirewallEdge = true
		}
	case VisOneHop:
		core.Behavior.FirewallEdge = true
	case VisOnenet:
		agg.Behavior.FirewallEdge = true
	case VisUnrouted:
		// Fully responsive interior on unannounced space; destinations
		// reply so §5.4.3 sees a routed address after the border.
		g.net.SetAnchor(n.Prefixes[0], agg.ID, true)
	case VisSilent:
		for _, r := range append([]*Router{core, agg}, borders...) {
			r.Behavior.NoTTLExpired = true
			r.Behavior.NoEchoReply = true
			r.Behavior.NoUDPUnreach = true
		}
		for _, b := range borders {
			b.Behavior.FirewallEdge = true
		}
		g.net.SetAnchor(n.Prefixes[0], agg.ID, false)
	case VisEchoOnly:
		for _, r := range append([]*Router{core, agg}, borders...) {
			r.Behavior.NoTTLExpired = true
		}
		g.net.SetAnchor(n.Prefixes[0], agg.ID, true)
	case VisMixedAdj:
		// The border leads to two interior routers (each carrying one of
		// two announced prefixes) and to a direct customer whose link is
		// numbered from the customer's space: adjacent interfaces span
		// several ASes, so only the counting step §5.4.6/6.1 decides.
		core.Behavior.FirewallEdge = true
		core2 := g.net.AddRouter(n.ASN, "core2", lon(home))
		core2.Behavior.FirewallEdge = true
		g.net.ConnectPtP(borders[0], core2, g.al.Sub(interiorSpace, 31), LinkInternal, n.ASN)
		p2 := g.al.Next(22)
		n.Prefixes = append(n.Prefixes, p2)
		g.net.SetAnchor(n.Prefixes[0], core.ID, false)
		g.net.SetAnchor(p2, core2.ID, false)
		d := g.newEdgeAS(TierStub, 22)
		g.net.SetRel(d.ASN, n.ASN, RelCustomer)
		db := g.net.AddRouter(d.ASN, "bdr1", lon(home))
		db.Behavior.FirewallEdge = true
		g.net.ConnectPtP(borders[0], db, g.al.Sub(d.Infra, g.linkPlen()), LinkInterdomain, d.ASN)
		g.net.SetAnchor(d.Prefixes[0], db.ID, false)
	case VisMultiAdj:
		// A second host link whose far router is joined to the first
		// border by an internal link numbered from host PA space
		// (§5.4.1 step 1.1: adjacent multihomed routers).
		br := g.nextBorder(home)
		b2 := g.net.AddRouter(n.ASN, "bdr2", lon(home))
		l2 := g.net.ConnectPtP(br, b2, g.al.Sub(g.hostInfra, g.linkPlen()), LinkInterdomain, host)
		links = append(links, l2)
		g.net.ConnectPtP(borders[0], b2, g.al.Sub(g.hostPA, 31), LinkInternal, host)
		p2 := g.al.Next(22)
		n.Prefixes = append(n.Prefixes, p2)
		core2 := g.net.AddRouter(n.ASN, "core2", lon(home))
		core2.Behavior.FirewallEdge = true
		g.net.ConnectPtP(b2, core2, g.al.Sub(n.Infra, 31), LinkInternal, n.ASN)
		g.net.SetAnchor(p2, core2.ID, false)
		core.Behavior.FirewallEdge = true
		g.net.SetAnchor(n.Prefixes[0], core.ID, false)
		// Pin both prefixes to the first link so traffic to p2 transits
		// border1→border2 (two consecutive host-space interfaces).
		g.net.PinPrefix(n.Prefixes[0], []*Link{links[0]})
		g.net.PinPrefix(p2, []*Link{links[0]})
	case VisSiblingUpstream:
		// The neighbor's interior is numbered from its customer A's space
		// (sibling organizations sharing address space): §5.4.5 step 5.4.
		a := g.newEdgeAS(TierStub, 22)
		a.Org = n.Org
		g.net.SetRel(a.ASN, n.ASN, RelCustomer)
		core.Behavior.FirewallEdge = true
		g.net.ConnectPtP(borders[0], core, g.al.Sub(a.Infra, 31), LinkInternal, n.ASN)
		ar := g.net.AddRouter(a.ASN, "bdr1", lon(home))
		ar.Behavior.FirewallEdge = true
		g.net.ConnectPtP(core, ar, g.al.Sub(a.Infra, g.linkPlen()), LinkInterdomain, a.ASN)
		g.net.SetAnchor(a.Prefixes[0], ar.ID, false)
		g.net.SetAnchor(n.Prefixes[0], core.ID, false)
	}

	// Additional CDN-style prefixes with announcement policies.
	for len(n.Prefixes) < sp.nPrefixes {
		p := g.al.Sub(g.cdnPool(n), 24)
		n.Prefixes = append(n.Prefixes, p)
		g.net.SetAnchor(p, agg.ID, true)
	}
	// Most networks announce more than one prefix; the extra blocks give
	// the per-target-AS stop set (§5.3) repeated paths to suppress.
	if sp.nPrefixes == 0 {
		for i := g.rng.Intn(3); i > 0; i-- {
			p := g.al.Next(22)
			n.Prefixes = append(n.Prefixes, p)
			g.net.SetAnchor(p, agg.ID, g.rng.Float64() < 0.5)
		}
	}
	g.applyPolicy(n, sp.policy, links)
	return links, core
}

// cdnPool lazily allocates a /16 pool for a CDN's many /24s.
func (g *genCtx) cdnPool(n *AS) netx.Prefix {
	if g.cdnPools == nil {
		g.cdnPools = make(map[ASN]netx.Prefix)
	}
	p, ok := g.cdnPools[n.ASN]
	if !ok {
		p = g.al.Next(16)
		g.cdnPools[n.ASN] = p
	}
	return p
}

// applyPolicy pins prefixes to links per the announcement policy.
func (g *genCtx) applyPolicy(n *AS, pol AnnouncePolicy, links []*Link) {
	n.Policy = pol
	if len(links) == 0 {
		return
	}
	switch pol {
	case AnnouncePinned:
		for i, p := range n.Prefixes {
			g.net.PinPrefix(p, []*Link{links[i%len(links)]})
		}
	case AnnounceCoastal:
		west, east := links[:(len(links)+1)/2], links[len(links)/2:]
		for i, p := range n.Prefixes {
			g.net.PinPrefix(p, []*Link{west[i%len(west)], east[i%len(east)]})
		}
	}
}

// attachUnder wires AS sub (customer) beneath provider t: a new border
// router of owner subASN is connected to one of t's routers with a link
// numbered from t's space. Returns the new router.
func (g *genCtx) attachUnder(t *AS, subRouter *Router, subASN ASN) *Router {
	var tr *Router
	if len(t.Routers) > 0 {
		tr = t.Routers[len(t.Routers)-1]
	} else {
		tr = g.net.AddRouter(t.ASN, "core1", g.regions[0].Longitude)
	}
	g.net.ConnectPtP(tr, subRouter, g.al.Sub(t.Infra, g.linkPlen()), LinkInterdomain, t.ASN)
	g.net.SetRel(subASN, t.ASN, RelCustomer)
	return subRouter
}

// ---------------------------------------------------------------------------
// Neighbor classes

// buildBackbone creates the global Tier-1 clique that anchors the synthetic
// Internet's hierarchy. Without it, relationship inference cannot tell a
// well-connected access network from a true transit-free network (exactly
// the failure mode the AS-Rank clique inference exists to avoid).
func (g *genCtx) buildBackbone() {
	const nT1 = 6
	for i := 0; i < nT1; i++ {
		t1 := g.newEdgeAS(TierTier1, 14)
		lon := g.regions[(i*3)%len(g.regions)].Longitude
		g.net.AddRouter(t1.ASN, "core1", lon)
		g.net.AddRouter(t1.ASN, "core2", lon)
		g.backbone = append(g.backbone, t1)
		g.transitPool = append(g.transitPool, t1.ASN)
	}
	for i := 0; i < len(g.backbone); i++ {
		for j := i + 1; j < len(g.backbone); j++ {
			a, b := g.backbone[i], g.backbone[j]
			g.net.SetRel(a.ASN, b.ASN, RelPeer)
			g.net.ConnectPtP(a.Routers[0], b.Routers[0],
				g.al.Sub(a.Infra, 31), LinkInterdomain, a.ASN)
		}
	}
	for _, t1 := range g.backbone {
		g.net.SetAnchor(t1.Prefixes[0], t1.Routers[1].ID, true)
	}
	// A Tier-1 host is itself a clique member: peer it with the backbone
	// through regular neighbor machinery so the links are measurable.
	if g.prof.HostTier == TierTier1 {
		for _, t1 := range g.backbone {
			_, _ = g.buildNeighbor(neighborSpec{
				as: t1, rel: RelPeer, vis: VisOnenet,
				regions: []int{g.randRegion(), g.randRegion()},
			})
		}
	}
}

// backboneT1 returns a backbone member round-robin by i.
func (g *genCtx) backboneT1(i int) *AS { return g.backbone[i%len(g.backbone)] }

func (g *genCtx) buildProviders() {
	for i := 0; i < g.prof.NumProviders; i++ {
		p := g.newEdgeAS(TierTransit, 15)
		vis := g.pickVis(g.prof.ProvVis)
		regionA, regionB := g.randRegion(), g.randRegion()
		_, core := g.buildNeighbor(neighborSpec{
			as: p, rel: RelProvider, vis: vis,
			regions: []int{regionA, regionB},
		})
		// Providers buy transit from two backbone Tier-1s.
		g.attachUnder(g.backboneT1(2*i), core, p.ASN)
		g.attachUnder(g.backboneT1(2*i+1), core, p.ASN)
		g.transitPool = append(g.transitPool, p.ASN)
	}
}

func (g *genCtx) buildPeers() {
	for i := 0; i < g.prof.NumPeers; i++ {
		nLinks := 1 + g.rng.Intn(3)
		if i < len(g.prof.BigPeerLinkCounts) {
			nLinks = g.prof.BigPeerLinkCounts[i]
		}
		tier := TierTransit
		vis := g.pickVis(g.prof.PeerVis)
		// Big peers are large responsive transit networks.
		if i < len(g.prof.BigPeerLinkCounts) {
			vis = VisOnenet
			tier = TierTier1
		}
		p := g.newEdgeAS(tier, 16)
		if i < len(g.prof.BigPeerLinkCounts) {
			g.net.Tags[fmt.Sprintf("bigpeer%d", i)] = p.ASN
		}
		regions := g.spreadRegions(nLinks)
		_, core := g.buildNeighbor(neighborSpec{
			as: p, rel: RelPeer, vis: vis, regions: regions,
		})
		if tier == TierTier1 {
			// Big peers join the global clique.
			for _, t1 := range g.backbone {
				g.net.SetRel(p.ASN, t1.ASN, RelPeer)
				g.net.ConnectPtP(t1.Routers[0], core,
					g.al.Sub(t1.Infra, 31), LinkInterdomain, t1.ASN)
			}
			g.transitPool = append(g.transitPool, p.ASN)
		} else {
			// Ordinary peers buy transit from a backbone Tier-1.
			g.attachUnder(g.backboneT1(i), core, p.ASN)
			if g.rng.Float64() < 0.3 {
				g.transitPool = append(g.transitPool, p.ASN)
			}
		}
	}
}

func (g *genCtx) buildCDNs() {
	for i, spec := range g.prof.CDNs {
		c := g.newEdgeAS(TierCDN, 18)
		g.net.Tags[spec.Name] = c.ASN
		regions := g.spreadRegions(spec.Links)
		if spec.Policy == AnnounceCoastal {
			// Coastal interconnection (the paper's Google case): half the
			// links on the west coast, half on the east.
			west, east := 0, len(g.regions)-1
			for j := range regions {
				if j < len(regions)/2 {
					regions[j] = west
				} else {
					regions[j] = east
				}
			}
		}
		_, core := g.buildNeighbor(neighborSpec{
			as: c, rel: RelPeer, vis: spec.Visibility,
			regions: regions, policy: spec.Policy, nPrefixes: spec.Prefixes,
		})
		// CDNs are multihomed to a backbone Tier-1 as well (their prefixes
		// must be reachable without the host's peering).
		g.attachUnder(g.backboneT1(i), core, c.ASN)
	}
}

// spreadRegions distributes n links across regions as evenly as possible,
// west to east, wrapping as needed.
func (g *genCtx) spreadRegions(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i % len(g.regions)
	}
	return out
}

func (g *genCtx) buildCustomers() {
	for i := 0; i < g.prof.NumCustomers; i++ {
		c := g.newEdgeAS(TierStub, 20)
		vis := g.pickVis(g.prof.CustVis)
		regions := []int{g.randRegion()}
		// Silent customers are usually multihomed to the host across
		// regions; §5.4.8 then cannot place them, producing the BGP
		// coverage gap of Table 1 (92.2%-96.8% in the paper).
		if vis == VisSilent && g.rng.Float64() < 0.7 && len(g.regions) > 1 {
			r2 := (regions[0] + 1 + g.rng.Intn(len(g.regions)-1)) % len(g.regions)
			regions = append(regions, r2)
		}
		_, core := g.buildNeighbor(neighborSpec{
			as: c, rel: RelCustomer, vis: vis, regions: regions,
		})
		g.custCores = append(g.custCores, core)
		// Multihomed silent customers with several prefixes spread their
		// (unobservable) traffic across exits, so §5.4.8 sees different
		// final routers and cannot place them — the paper's coverage gap.
		if vis == VisSilent && len(regions) > 1 && len(c.Prefixes) < 2 {
			p := g.al.Next(22)
			c.Prefixes = append(c.Prefixes, p)
			g.net.SetAnchor(p, core.ID, false)
		}
		// Transit customers have their own customers beneath them.
		if g.rng.Float64() < g.prof.CustTransitFrac && g.prof.CustMaxChildren > 0 {
			c.Tier = TierTransit
			nkids := 1 + g.rng.Intn(g.prof.CustMaxChildren)
			for k := 0; k < nkids; k++ {
				kid := g.newEdgeAS(TierStub, 22)
				kb := g.net.AddRouter(kid.ASN, "bdr1", core.Longitude)
				kb.Behavior.FirewallEdge = true
				g.net.ConnectPtP(core, kb, g.al.Sub(c.Infra, g.linkPlen()), LinkInterdomain, c.ASN)
				g.net.SetRel(kid.ASN, c.ASN, RelCustomer)
				g.net.SetAnchor(kid.Prefixes[0], kb.ID, g.rng.Float64() < 0.5)
			}
		}
		// A few customers use provider-aggregatable space from the host.
		if len(g.paCustomers) < g.prof.PADelegations {
			pa := g.al.Sub(g.hostPA, 22)
			c.Prefixes = append(c.Prefixes, pa)
			g.net.SetAnchor(pa, core.ID, false)
			g.net.Delegations = append(g.net.Delegations, DelegationRecord{OrgID: "org-host", Prefix: pa})
			g.paCustomers = append(g.paCustomers, c)
		}
	}
}

// buildHypergiants wires content hypergiants: each peers with the host like
// a large CDN and additionally peers *directly* with up to AccessFanout of
// the host's customers (hierarchy flattening). The shortcut links are
// valley-free — a customer never exports a peer route upward — so the
// host's ground truth is untouched while the hypergiant's neighbor degree
// explodes, stressing §5.4.5/§5.4.6 exactly the way PARI predicts.
func (g *genCtx) buildHypergiants() {
	for i, spec := range g.prof.Hypergiants {
		h := g.newEdgeAS(TierCDN, 18)
		g.net.Tags[spec.Name] = h.ASN
		regions := g.spreadRegions(spec.Links)
		_, core := g.buildNeighbor(neighborSpec{
			as: h, rel: RelPeer, vis: VisOnenet,
			regions: regions, policy: AnnounceEverywhere, nPrefixes: spec.Prefixes,
		})
		// Reachable without the host's peering, like every content network.
		g.attachUnder(g.backboneT1(i), core, h.ASN)
		fan := spec.AccessFanout
		if fan > len(g.custCores) {
			fan = len(g.custCores)
		}
		for k := 0; k < fan; k++ {
			cust := g.custCores[k]
			if h.RelTo(cust.Owner) != RelNone {
				continue
			}
			g.net.SetRel(cust.Owner, h.ASN, RelPeer)
			g.net.ConnectPtP(core, cust, g.al.Sub(h.Infra, g.linkPlen()), LinkInterdomain, h.ASN)
		}
	}
}

func (g *genCtx) buildIXPs() {
	for i := 0; i < g.prof.NumIXPs; i++ {
		op := g.newEdgeAS(TierIXP, 20)
		lan := g.al.Sub(op.Infra, 22)
		region := g.randRegion()
		ixp := &IXP{
			Name:         fmt.Sprintf("ixp%d", i+1),
			OperatorASN:  op.ASN,
			LAN:          lan,
			AnnouncesLAN: g.rng.Float64() < 0.5,
			Longitude:    g.regions[region].Longitude,
		}
		ixpIdx := len(g.net.IXPs)
		g.net.IXPs = append(g.net.IXPs, ixp)

		lanLink := g.net.AddLink(LinkIXPLAN, lan, op.ASN)
		lanCursor := 1 // .0 reserved

		// The IXP operator's management router sits on the LAN; the
		// operator may or may not originate its space in BGP (§4/6).
		opr := g.net.AddRouter(op.ASN, "mgmt", ixp.Longitude)
		opIf := opr.AddIface(lan.First()+netx.Addr(lanCursor), lanLink)
		lanCursor++
		g.net.RegisterIface(opIf)
		if ixp.AnnouncesLAN {
			g.net.SetAnchor(op.Prefixes[0], opr.ID, false)
			// The operator needs transit for its announcement to exist.
			g.attachUnder(g.backboneT1(i), opr, op.ASN)
		} else {
			op.Prefixes = op.Prefixes[:0]
			op.AnnounceInfra = false
		}

		// The host's border router at this IXP.
		hostBR := g.nextBorder(region)
		hostIf := hostBR.AddIface(lan.First()+netx.Addr(lanCursor), lanLink)
		lanCursor++
		g.net.RegisterIface(hostIf)
		ixp.Members = append(ixp.Members, g.net.HostASN)

		// IXP members: route-server sessions are hidden peers of the host;
		// bilateral sessions (IXPBilateralFrac) stay BGP-visible. Remote
		// members (RemotePeerFrac) sit in a distant metro behind a layer-2
		// circuit — placement and circuit delay come from the per-AS hash
		// stream so they cannot disturb the sequential rng.
		for m := 0; m < g.prof.IXPPeersPerIXP; m++ {
			vis := g.pickVis(g.prof.IXPVis)
			pASN := g.asn()
			p := g.net.AddAS(pASN, TierStub, fmt.Sprintf("org-%d", pASN))
			pp := g.al.Next(21)
			p.Prefixes = append(p.Prefixes, pp)
			p.Infra = pp
			p.AnnounceInfra = true
			memberLon := ixp.Longitude
			var circuit time.Duration
			if g.prof.RemotePeerFrac > 0 && g.rng.Float64() < g.prof.RemotePeerFrac {
				memberLon, circuit = remoteAttachment(g.seed, pASN, ixp.Longitude)
				ixp.Remote = append(ixp.Remote, pASN)
			}
			border := g.net.AddRouter(pASN, "ixp-bdr", memberLon)
			memIf := border.AddIface(lan.First()+netx.Addr(lanCursor), lanLink)
			memIf.AttachDelay = circuit
			lanCursor++
			g.net.RegisterIface(memIf)
			ixp.Members = append(ixp.Members, pASN)

			g.net.SetRel(p.ASN, g.net.HostASN, RelPeer)
			if g.prof.IXPBilateralFrac > 0 && g.rng.Float64() < g.prof.IXPBilateralFrac {
				ixp.Bilateral = append(ixp.Bilateral, pASN)
			} else {
				if g.net.HiddenNeighbors == nil {
					g.net.HiddenNeighbors = make(map[ASN]bool)
				}
				g.net.HiddenNeighbors[p.ASN] = true
			}
			g.net.AddIXPSession(ixpIdx, g.net.HostASN, hostBR.ID, p.ASN, border.ID)

			// Each member is also a customer of a transit (so its prefix
			// is in the public BGP view even though the peering is not).
			interior := pp
			if vis == VisUnrouted {
				interior = g.al.Next(23)
				g.net.Delegations = append(g.net.Delegations, DelegationRecord{OrgID: p.Org, Prefix: interior})
			}
			core := g.net.AddRouter(pASN, "core1", memberLon)
			agg := g.net.AddRouter(pASN, "agg1", memberLon)
			g.net.ConnectPtP(border, core, g.al.Sub(interior, 31), LinkInternal, pASN)
			g.net.ConnectPtP(core, agg, g.al.Sub(interior, 31), LinkInternal, pASN)
			if len(g.transitPool) > 0 {
				t := g.net.ASes[g.transitPool[g.rng.Intn(len(g.transitPool))]]
				g.attachUnder(t, core, pASN)
			}
			g.net.SetAnchor(pp, agg.ID, g.rng.Float64() < 0.7)

			// Archetype behaviors on the member side, mirroring
			// buildNeighbor: the amount of interior a trace entering via
			// the IXP LAN can observe.
			switch vis {
			case VisFirewall, VisThirdParty:
				border.Behavior.FirewallEdge = true
				g.net.SetAnchor(pp, agg.ID, false)
			case VisOneHop:
				core.Behavior.FirewallEdge = true
				g.net.SetAnchor(pp, agg.ID, false)
			case VisOnenet:
				agg.Behavior.FirewallEdge = true
			case VisUnrouted:
				g.net.SetAnchor(pp, agg.ID, true)
			case VisEchoOnly:
				for _, r := range []*Router{border, core, agg} {
					r.Behavior.NoTTLExpired = true
				}
				g.net.SetAnchor(pp, agg.ID, true)
			}
		}
	}
}

// buildDistant hangs content ASes beneath providers and big peers so that
// traceroutes toward them exercise provider/peer border routers.
func (g *genCtx) buildDistant() {
	var transits []*AS
	for _, asn := range g.transitPool {
		transits = append(transits, g.net.ASes[asn])
	}
	if len(transits) == 0 {
		return
	}
	for _, t := range transits {
		for i := 0; i < g.prof.DistantPerTransit; i++ {
			d := g.newEdgeAS(TierStub, 22)
			dr := g.net.AddRouter(d.ASN, "bdr1", g.regions[g.randRegion()].Longitude)
			dr.Behavior.FirewallEdge = g.rng.Float64() < 0.6
			g.attachUnder(t, dr, d.ASN)
			g.net.SetAnchor(d.Prefixes[0], dr.ID, g.rng.Float64() < 0.6)
			for j := g.rng.Intn(3); j > 0; j-- {
				p := g.al.Next(23)
				d.Prefixes = append(d.Prefixes, p)
				g.net.SetAnchor(p, dr.ID, g.rng.Float64() < 0.5)
			}
		}
	}
}

// applyMOAS makes some prefixes multi-origin (§4 challenge 7): a second AS
// co-originates an existing AS's prefix.
func (g *genCtx) applyMOAS() {
	asns := g.net.ASNs()
	pairs := 0
	for i := 0; i+1 < len(asns) && pairs < g.prof.MOASPairs; i += 7 {
		a := g.net.ASes[asns[i]]
		b := g.net.ASes[asns[i+1]]
		if a.ASN == g.net.HostASN || b.ASN == g.net.HostASN || len(a.Prefixes) == 0 {
			continue
		}
		p := a.Prefixes[0]
		b.Prefixes = append(b.Prefixes, p)
		g.net.MultiOrigin[p] = []ASN{a.ASN, b.ASN}
		pairs++
	}
}

// recordDelegations emits an RIR-style record for every AS's address space.
func (g *genCtx) recordDelegations() {
	for _, asn := range g.net.ASNs() {
		a := g.net.ASes[asn]
		seen := map[netx.Prefix]bool{}
		for _, p := range a.Prefixes {
			if !seen[p] {
				g.net.Delegations = append(g.net.Delegations, DelegationRecord{OrgID: a.Org, Prefix: p})
				seen[p] = true
			}
		}
		if a.Infra.IsValid() && a.Infra.Len > 0 && !seen[a.Infra] {
			g.net.Delegations = append(g.net.Delegations, DelegationRecord{OrgID: a.Org, Prefix: a.Infra})
		}
	}
	// The host's unannounced block.
	g.net.Delegations = append(g.net.Delegations, DelegationRecord{OrgID: "org-host", Prefix: g.hostHidden})
}

// vpRegion returns the region index for VP i under the profile's placement
// policy. The historical default spreads round-robin across all regions;
// coastal placements cycle through one half of the west→east footprint.
func (g *genCtx) vpRegion(i int) int {
	n := len(g.regions)
	half := (n + 1) / 2
	switch g.prof.VPPlacement {
	case VPWestCoast:
		return i % half
	case VPEastCoast:
		return n - 1 - i%half
	case VPSingleRegion:
		return 0
	default:
		return i % n
	}
}

// placeVPs attaches VPs to access routers per the VP placement policy.
func (g *genCtx) placeVPs() {
	for i := 0; i < g.prof.NumVPs; i++ {
		region := g.vpRegion(i)
		acc := g.hostACC[region]
		// The VP host hangs off the access router on a /31 from host space.
		sub := g.al.Sub(g.hostInfra, 31)
		vpAddr := sub.First() + 1
		l := g.net.AddLink(LinkInternal, sub, g.net.HostASN)
		accIf := acc.AddIface(sub.First(), l)
		g.net.RegisterIface(accIf)
		vp := &VP{
			Name:   fmt.Sprintf("vp%02d.%s", i+1, g.regions[region].Name),
			Host:   g.net.HostASN,
			Router: acc.ID,
			Addr:   vpAddr,
		}
		g.net.VPs = append(g.net.VPs, vp)
	}
}
