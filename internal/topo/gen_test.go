package topo

import (
	"testing"

	"bdrmap/internal/netx"
)

func TestGenerateTiny(t *testing.T) {
	n := Generate(TinyProfile(), 1)
	s := n.Stats()
	if s.ASes < 10 {
		t.Fatalf("too few ASes: %+v", s)
	}
	if s.Routers == 0 || s.Links == 0 || s.InterdomainLinks == 0 {
		t.Fatalf("missing structure: %+v", s)
	}
	if n.HostASN == 0 {
		t.Fatal("no host ASN")
	}
	if len(n.VPs) != 1 {
		t.Fatalf("VPs = %d", len(n.VPs))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(TinyProfile(), 42)
	b := Generate(TinyProfile(), 42)
	sa, sb := a.Stats(), b.Stats()
	if sa != sb {
		t.Fatalf("stats differ: %+v vs %+v", sa, sb)
	}
	// Interface address sets must be identical.
	for _, r := range a.Routers {
		rb := b.Router(r.ID)
		if rb == nil || rb.Owner != r.Owner || len(rb.Ifaces) != len(r.Ifaces) {
			t.Fatalf("router %d differs", r.ID)
		}
		for i := range r.Ifaces {
			if r.Ifaces[i].Addr != rb.Ifaces[i].Addr {
				t.Fatalf("router %d iface %d addr differs: %v vs %v",
					r.ID, i, r.Ifaces[i].Addr, rb.Ifaces[i].Addr)
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := Generate(TinyProfile(), 1)
	b := Generate(TinyProfile(), 2)
	// Different seeds should differ somewhere (archetype draws).
	same := true
	for _, ra := range a.Routers {
		rb := b.Router(ra.ID)
		if rb == nil || ra.Behavior != rb.Behavior {
			same = false
			break
		}
	}
	if same && a.Stats() == b.Stats() {
		t.Log("warning: different seeds produced identical structure (possible but unlikely)")
	}
}

func TestHostNeighborCounts(t *testing.T) {
	p := TinyProfile()
	n := Generate(p, 7)
	var cust, peer, prov, sib int
	for _, nb := range n.TrueNeighbors(n.HostASN) {
		switch nb.Rel {
		case RelProvider: // host's neighbor is host's provider when rel is...
			prov++
		case RelCustomer:
			cust++
		case RelPeer:
			peer++
		case RelSibling:
			sib++
		}
	}
	// Relationship stored from the neighbor's perspective then inverted:
	// neighbors with RelCustomer (from host's perspective) are host's
	// customers.
	if cust != p.NumCustomers {
		t.Errorf("customers = %d, want %d", cust, p.NumCustomers)
	}
	wantPeers := p.NumPeers + len(p.CDNs) + p.NumIXPs*p.IXPPeersPerIXP
	if peer != wantPeers {
		t.Errorf("peers = %d, want %d", peer, wantPeers)
	}
	if prov != p.NumProviders {
		t.Errorf("providers = %d, want %d", prov, p.NumProviders)
	}
}

func TestInterdomainLinksHaveTwoParties(t *testing.T) {
	n := Generate(TinyProfile(), 3)
	for _, l := range n.Links {
		if l.Kind != LinkInterdomain {
			continue
		}
		if len(l.Ifaces) != 2 {
			t.Fatalf("interdomain link %v has %d ifaces", l.Subnet, len(l.Ifaces))
		}
		a := n.Router(l.Ifaces[0].Router)
		b := n.Router(l.Ifaces[1].Router)
		if a.Owner == b.Owner {
			t.Fatalf("interdomain link %v joins two routers of %v", l.Subnet, a.Owner)
		}
		if !l.Subnet.Contains(l.Ifaces[0].Addr) || !l.Subnet.Contains(l.Ifaces[1].Addr) {
			t.Fatalf("link %v iface addresses outside subnet", l.Subnet)
		}
	}
}

func TestInternalLinksSameOwnerMostly(t *testing.T) {
	// Internal links join routers of the same organization (siblings and
	// the PA-space multihoming construction are the sanctioned exceptions).
	n := Generate(LargeAccessProfile(), 5)
	for _, l := range n.Links {
		if l.Kind != LinkInternal || len(l.Ifaces) != 2 {
			continue
		}
		a := n.Router(l.Ifaces[0].Router)
		b := n.Router(l.Ifaces[1].Router)
		if a.Owner == b.Owner {
			continue
		}
		oa, ob := n.ASes[a.Owner], n.ASes[b.Owner]
		if oa == nil || ob == nil || oa.Org != ob.Org {
			t.Fatalf("internal link %v joins %v and %v of different orgs", l.Subnet, a.Owner, b.Owner)
		}
	}
}

func TestEveryAnnouncedPrefixHasAnchor(t *testing.T) {
	n := Generate(TinyProfile(), 9)
	for asn, a := range n.ASes {
		for _, p := range a.Prefixes {
			if _, ok := n.Anchor(p); !ok {
				// MOAS co-originated prefixes are anchored by the first
				// origin only.
				if _, moas := n.MultiOrigin[p]; moas {
					continue
				}
				t.Errorf("%v prefix %v has no anchor", asn, p)
			}
		}
	}
}

func TestHostLinkAddressConventions(t *testing.T) {
	// Customer interconnects are mostly numbered from host space; provider
	// interconnects from provider space.
	n := Generate(LargeAccessProfile(), 11)
	host := n.ASes[n.HostASN]
	var custFromHost, custTotal, provFromProv, provTotal int
	for _, lt := range n.InterdomainLinks(n.HostASN) {
		far := n.ASes[lt.FarAS]
		if far == nil {
			continue
		}
		switch host.RelTo(lt.FarAS) {
		case RelProvider: // far AS is host's provider
			provTotal++
			if lt.Link.AddrOwner == lt.FarAS {
				provFromProv++
			}
		case RelCustomer:
			custTotal++
			if lt.Link.AddrOwner == n.HostASN {
				custFromHost++
			}
		}
	}
	if custTotal == 0 || provTotal == 0 {
		t.Fatalf("no customer/provider links (cust=%d prov=%d)", custTotal, provTotal)
	}
	if float64(custFromHost)/float64(custTotal) < 0.8 {
		t.Errorf("only %d/%d customer links numbered from host space", custFromHost, custTotal)
	}
	if provFromProv != provTotal {
		t.Errorf("%d/%d provider links numbered from provider space", provFromProv, provTotal)
	}
}

func TestSiblings(t *testing.T) {
	p := LargeAccessProfile()
	n := Generate(p, 13)
	sibs := n.Siblings(n.HostASN)
	if len(sibs) != p.HostSiblings+1 {
		t.Fatalf("host siblings = %d, want %d", len(sibs), p.HostSiblings+1)
	}
}

func TestIXPStructure(t *testing.T) {
	p := TinyProfile()
	n := Generate(p, 17)
	if len(n.IXPs) != p.NumIXPs {
		t.Fatalf("IXPs = %d", len(n.IXPs))
	}
	ixp := n.IXPs[0]
	if len(ixp.Members) != p.IXPPeersPerIXP+1 { // members + host
		t.Fatalf("members = %d", len(ixp.Members))
	}
	if len(n.Sessions()) != p.NumIXPs*p.IXPPeersPerIXP {
		t.Fatalf("sessions = %d", len(n.Sessions()))
	}
	// Hidden neighbors include all route-server peers.
	for _, s := range n.Sessions() {
		peer := s.B
		if s.A != n.HostASN {
			peer = s.A
		}
		if !n.HiddenNeighbors[peer] {
			t.Errorf("IXP peer %v not marked hidden", peer)
		}
	}
}

func TestAttachmentsIndex(t *testing.T) {
	n := Generate(TinyProfile(), 21)
	at := n.Attachments(n.HostASN)
	if len(at) == 0 {
		t.Fatal("host has no attachments")
	}
	for _, a := range at {
		if n.Router(a.LocalRtr).Owner != n.HostASN && n.ASes[n.Router(a.LocalRtr).Owner].Org != "org-host" {
			t.Fatalf("attachment local router %d not host-owned", a.LocalRtr)
		}
		if a.Remote == n.HostASN {
			t.Fatalf("attachment remote is host itself")
		}
	}
}

func TestDelegationsCoverInfraAndHidden(t *testing.T) {
	n := Generate(TinyProfile(), 23)
	var tr netx.Trie[string]
	for _, d := range n.Delegations {
		tr.Insert(d.Prefix, d.OrgID)
	}
	// Every router interface address must fall inside some delegation
	// (except IXP LAN space which belongs to the IXP operator org).
	for _, r := range n.Routers {
		for _, ifc := range r.Ifaces {
			if ifc.Addr.IsZero() {
				continue
			}
			if _, ok := tr.Lookup(ifc.Addr); !ok {
				t.Errorf("iface %v of %v not covered by any delegation", ifc.Addr, r)
			}
		}
	}
}

func TestOriginTableMOAS(t *testing.T) {
	p := TinyProfile()
	n := Generate(p, 29)
	if len(n.MultiOrigin) != p.MOASPairs {
		t.Fatalf("MOAS pairs = %d, want %d", len(n.MultiOrigin), p.MOASPairs)
	}
	ot := n.OriginTable()
	for pfx, origins := range n.MultiOrigin {
		got, ok := ot.Exact(pfx)
		if !ok || len(got) != len(origins) {
			t.Fatalf("origin table for %v = %v, want %v", pfx, got, origins)
		}
	}
}

func TestAllocatorNoOverlap(t *testing.T) {
	al := NewAllocator()
	var ps []netx.Prefix
	for i := 0; i < 50; i++ {
		ps = append(ps, al.Next(14+i%6))
	}
	for i := range ps {
		for j := i + 1; j < len(ps); j++ {
			if ps[i].Overlaps(ps[j]) {
				t.Fatalf("allocations overlap: %v and %v", ps[i], ps[j])
			}
		}
	}
}

func TestAllocatorSub(t *testing.T) {
	al := NewAllocator()
	parent := al.Next(16)
	seen := map[netx.Prefix]bool{}
	for i := 0; i < 100; i++ {
		s := al.Sub(parent, 31)
		if !parent.ContainsPrefix(s) {
			t.Fatalf("sub %v outside parent %v", s, parent)
		}
		if seen[s] {
			t.Fatalf("duplicate sub-allocation %v", s)
		}
		seen[s] = true
	}
	if got := al.SubRemaining(parent, 31); got != 1<<15-100 {
		t.Fatalf("SubRemaining = %d", got)
	}
}

func TestRelInvert(t *testing.T) {
	if RelCustomer.Invert() != RelProvider || RelProvider.Invert() != RelCustomer {
		t.Error("customer/provider inversion broken")
	}
	if RelPeer.Invert() != RelPeer || RelSibling.Invert() != RelSibling {
		t.Error("symmetric relationships must self-invert")
	}
}

func TestProfilesGenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("profile generation in -short mode")
	}
	for _, p := range []Profile{REProfile(), SmallAccessProfile(),
		RemotePeeringProfile(), HypergiantProfile(), RouteServerMixProfile(), RegionalVPProfile()} {
		n := Generate(p, 1)
		s := n.Stats()
		if s.InterdomainLinks == 0 || s.Routers == 0 {
			t.Errorf("%s: empty topology %+v", p.Name, s)
		}
		if len(n.VPs) != p.NumVPs {
			t.Errorf("%s: VPs = %d, want %d", p.Name, len(n.VPs), p.NumVPs)
		}
	}
}

func TestVPAddressesUnique(t *testing.T) {
	n := Generate(LargeAccessProfile(), 31)
	seen := map[netx.Addr]bool{}
	if len(n.VPs) != 19 {
		t.Fatalf("VPs = %d", len(n.VPs))
	}
	for _, vp := range n.VPs {
		if seen[vp.Addr] {
			t.Fatalf("duplicate VP address %v", vp.Addr)
		}
		seen[vp.Addr] = true
		if n.Router(vp.Router) == nil {
			t.Fatalf("VP %s attached to missing router", vp.Name)
		}
	}
}
