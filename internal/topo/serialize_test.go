package topo

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	orig := Generate(TinyProfile(), 1)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	if got.HostASN != orig.HostASN {
		t.Fatalf("host: %v vs %v", got.HostASN, orig.HostASN)
	}
	if gs, os := got.Stats(), orig.Stats(); gs != os {
		t.Fatalf("stats: %+v vs %+v", gs, os)
	}
	// ASes with relationships and prefixes.
	for _, asn := range orig.ASNs() {
		oa, ga := orig.ASes[asn], got.ASes[asn]
		if ga == nil {
			t.Fatalf("missing %v", asn)
		}
		if ga.Org != oa.Org || ga.Tier != oa.Tier || ga.Policy != oa.Policy ||
			ga.AnnounceInfra != oa.AnnounceInfra || ga.Infra != oa.Infra {
			t.Fatalf("%v fields differ", asn)
		}
		if len(ga.Prefixes) != len(oa.Prefixes) {
			t.Fatalf("%v prefixes differ", asn)
		}
		on, gn := oa.Neighbors(), ga.Neighbors()
		if len(on) != len(gn) {
			t.Fatalf("%v neighbor counts differ: %d vs %d", asn, len(gn), len(on))
		}
		for i := range on {
			if on[i] != gn[i] {
				t.Fatalf("%v neighbor %d: %+v vs %+v", asn, i, gn[i], on[i])
			}
		}
	}
	// Routers with behaviors and interfaces.
	for _, or := range orig.Routers {
		gr := got.Router(or.ID)
		if gr == nil || gr.Owner != or.Owner || gr.Name != or.Name ||
			gr.Longitude != or.Longitude || gr.Behavior != or.Behavior {
			t.Fatalf("router %d differs", or.ID)
		}
		if len(gr.Ifaces) != len(or.Ifaces) {
			t.Fatalf("router %d iface count", or.ID)
		}
		for i := range or.Ifaces {
			if gr.Ifaces[i].Addr != or.Ifaces[i].Addr {
				t.Fatalf("router %d iface %d addr", or.ID, i)
			}
		}
	}
	// Anchors, pins, sessions, hidden, delegations.
	oa, ga := orig.Anchors(), got.Anchors()
	if len(oa) != len(ga) {
		t.Fatalf("anchors: %d vs %d", len(ga), len(oa))
	}
	for i := range oa {
		if oa[i] != ga[i] {
			t.Fatalf("anchor %d: %+v vs %+v", i, ga[i], oa[i])
		}
	}
	op, gp := orig.PinnedPrefixes(), got.PinnedPrefixes()
	if len(op) != len(gp) {
		t.Fatalf("pins: %d vs %d", len(gp), len(op))
	}
	if len(orig.Sessions()) != len(got.Sessions()) {
		t.Fatal("sessions differ")
	}
	if len(orig.HiddenNeighbors) != len(got.HiddenNeighbors) {
		t.Fatal("hidden neighbors differ")
	}
	if len(orig.Delegations) != len(got.Delegations) {
		t.Fatal("delegations differ")
	}
	if len(orig.MultiOrigin) != len(got.MultiOrigin) {
		t.Fatal("multi-origin differs")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(strings.NewReader(`{"version":99}`)); err == nil {
		t.Error("future version accepted")
	}
	if _, err := Load(strings.NewReader(
		`{"version":1,"links":[{"kind":0,"subnet":"10.0.0.0/31","ifaces":[{"router":5,"addr":"10.0.0.0"}]}],"rels":[]}`)); err == nil {
		t.Error("dangling router reference accepted")
	}
}

func TestSecondRoundTripIdentical(t *testing.T) {
	orig := Generate(TinyProfile(), 2)
	var a, b bytes.Buffer
	if err := orig.Save(&a); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Save(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("save/load/save not a fixed point")
	}
}
