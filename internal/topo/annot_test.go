package topo

import (
	"bytes"
	"testing"
	"time"
)

func saveBytes(t *testing.T, n *Network) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	return buf.Bytes()
}

// TestGenerateSerializeDeterministic proves the full determinism property:
// for every built-in profile, two generations with the same seed serialize
// byte-identically — annotations, remote placements, and sessions included.
func TestGenerateSerializeDeterministic(t *testing.T) {
	profiles := BuiltinProfiles()
	if testing.Short() {
		profiles = []Profile{TinyProfile(), RemotePeeringProfile(), RouteServerMixProfile()}
	}
	for _, p := range profiles {
		a := saveBytes(t, Generate(p, 7))
		b := saveBytes(t, Generate(p, 7))
		if !bytes.Equal(a, b) {
			t.Errorf("%s: two generations serialize differently", p.Name)
		}
	}
}

// TestAnnotationProfileFieldOrderInvariant: constructing the same profile
// with fields initialized in a different order (and mix slices built
// element-by-element rather than literally) cannot change the generated
// world — annotations are a function of (profile values, seed), not of how
// the profile value was assembled.
func TestAnnotationProfileFieldOrderInvariant(t *testing.T) {
	p1 := RemotePeeringProfile()

	var p2 Profile
	p2.RemotePeerFrac = 0.5
	p2.NumIXPs = 2
	p2.IXPPeersPerIXP = 5
	p2.MOASPairs = 1
	p2.PADelegations = 1
	p2.DistantPerTransit = 4
	p2.CustMaxChildren = 1
	p2.CustTransitFrac = 0.2
	p2.NumCustomers = 5
	p2.NumPeers = 2
	p2.NumProviders = 1
	p2.NumVPs = 1
	p2.BordersPerRegion = 1
	p2.NumRegions = 3
	p2.HostTier = TierAccess
	p2.Name = "remote-peering"

	a := saveBytes(t, Generate(p1, 3))
	b := saveBytes(t, Generate(p2, 3))
	if !bytes.Equal(a, b) {
		t.Fatal("field initialization order changed the generated world")
	}
}

// TestAnnotationOrderInvariant: the per-AS hash stream makes a link's
// annotation independent of the order links are added to a network.
func TestAnnotationOrderInvariant(t *testing.T) {
	build := func(reverse bool) *Network {
		n := NewNetwork()
		n.AnnotSeed = 99
		n.AddAS(ASN(100), TierAccess, "org-a")
		n.AddAS(ASN(200), TierStub, "org-b")
		n.HostASN = ASN(100)
		a := n.AddRouter(ASN(100), "a", -122.3)
		b := n.AddRouter(ASN(200), "b", -74.0)
		c := n.AddRouter(ASN(200), "c", -87.6)
		subnets := []struct {
			lo, hi *Router
			pfx    string
		}{
			{a, b, "10.0.0.0/31"},
			{a, c, "10.0.1.0/31"},
			{b, c, "10.0.2.0/31"},
		}
		if reverse {
			for i, j := 0, len(subnets)-1; i < j; i, j = i+1, j-1 {
				subnets[i], subnets[j] = subnets[j], subnets[i]
			}
		}
		for _, s := range subnets {
			n.ConnectPtP(s.lo, s.hi, mustPrefix(t, s.pfx), LinkInterdomain, ASN(100))
		}
		n.Build()
		return n
	}
	fwd, rev := build(false), build(true)
	annotBySubnet := func(n *Network) map[string]Annotation {
		m := make(map[string]Annotation)
		for _, l := range n.Links {
			m[l.Subnet.String()] = l.Annot
		}
		return m
	}
	fa, ra := annotBySubnet(fwd), annotBySubnet(rev)
	for s, want := range fa {
		if got := ra[s]; got != want {
			t.Errorf("link %s: annotation depends on construction order: %+v vs %+v", s, got, want)
		}
	}
}

// TestAnnotationLatencyMatchesGeoFormula pins the baseline latency to the
// probe engine's historical geographic model, so annotating a generated
// world changes no measured RTT.
func TestAnnotationLatencyMatchesGeoFormula(t *testing.T) {
	n := Generate(TinyProfile(), 1)
	for _, l := range n.Links {
		if l.Annot == (Annotation{}) {
			t.Fatalf("link %v not annotated after Build", l.Subnet)
		}
		if l.Annot.BandwidthMbps <= 0 {
			t.Fatalf("link %v has no bandwidth class", l.Subnet)
		}
		if l.Kind == LinkIXPLAN {
			if l.Annot.Latency != 500*time.Microsecond {
				t.Errorf("LAN %v latency = %v, want local 500µs", l.Subnet, l.Annot.Latency)
			}
			continue
		}
		if len(l.Ifaces) < 2 {
			continue
		}
		a := n.Router(l.Ifaces[0].Router)
		b := n.Router(l.Ifaces[1].Router)
		gap := a.Longitude - b.Longitude
		if gap < 0 {
			gap = -gap
		}
		want := 500*time.Microsecond + time.Duration(gap*0.35*float64(time.Millisecond))
		if l.Annot.Latency != want {
			t.Errorf("link %v latency = %v, want %v", l.Subnet, l.Annot.Latency, want)
		}
	}
}

// TestSaveLoadAnnotationFixedPoint: serializing, loading, and serializing
// again is a fixed point — loaded annotations are kept, not recomputed.
func TestSaveLoadAnnotationFixedPoint(t *testing.T) {
	for _, p := range []Profile{TinyProfile(), RemotePeeringProfile(), RouteServerMixProfile()} {
		n := Generate(p, 5)
		first := saveBytes(t, n)
		loaded, err := Load(bytes.NewReader(first))
		if err != nil {
			t.Fatalf("%s: load: %v", p.Name, err)
		}
		second := saveBytes(t, loaded)
		if !bytes.Equal(first, second) {
			t.Errorf("%s: save→load→save not a fixed point", p.Name)
		}
	}
}

// TestRemotePeeringTopology checks the remote-peering scenario's shape: a
// deterministic subset of IXP members sits in a distant metro behind a
// layer-2 circuit carried on the member's LAN interface.
func TestRemotePeeringTopology(t *testing.T) {
	p := RemotePeeringProfile()
	n := Generate(p, 1)
	remotes := 0
	for _, ixp := range n.IXPs {
		lan := findLAN(t, n, ixp)
		for _, asn := range ixp.Remote {
			remotes++
			var memIf *Iface
			for _, ifc := range lan.Ifaces {
				if n.Router(ifc.Router).Owner == asn {
					memIf = ifc
				}
			}
			if memIf == nil {
				t.Fatalf("remote member %v has no LAN interface", asn)
			}
			if memIf.AttachDelay < 5*time.Millisecond {
				t.Errorf("remote member %v circuit delay = %v, want ≥5ms", asn, memIf.AttachDelay)
			}
			if d := geoDist(n.Router(memIf.Router).Longitude, ixp.Longitude); d < 25 {
				t.Errorf("remote member %v only %.1f° from the IXP", asn, d)
			}
		}
		// Local members stay local.
		for _, ifc := range lan.Ifaces {
			r := n.Router(ifc.Router)
			if r.Owner == ixp.OperatorASN || isRemote(ixp, r.Owner) {
				continue
			}
			if ifc.AttachDelay != 0 {
				t.Errorf("local member %v carries a circuit delay", r.Owner)
			}
		}
	}
	if remotes == 0 {
		t.Fatal("remote-peering profile generated no remote members")
	}
}

// TestRouteServerMixTopology checks that bilateral members are BGP-visible
// (not hidden) while route-server members stay hidden, all on one LAN.
func TestRouteServerMixTopology(t *testing.T) {
	p := RouteServerMixProfile()
	n := Generate(p, 1)
	var bilateral, hidden int
	for _, ixp := range n.IXPs {
		bilateral += len(ixp.Bilateral)
		for _, asn := range ixp.Bilateral {
			if n.HiddenNeighbors[asn] {
				t.Errorf("bilateral member %v marked hidden", asn)
			}
		}
		for _, asn := range ixp.Members {
			if asn == n.HostASN || asn == ixp.OperatorASN || isBilateral(ixp, asn) {
				continue
			}
			if !n.HiddenNeighbors[asn] {
				t.Errorf("route-server member %v not hidden", asn)
			}
			hidden++
		}
	}
	if bilateral == 0 || hidden == 0 {
		t.Fatalf("want a mix, got bilateral=%d hidden=%d", bilateral, hidden)
	}
	// Every member, hidden or not, holds a session with the host.
	want := p.NumIXPs * p.IXPPeersPerIXP
	if got := len(n.Sessions()); got != want {
		t.Fatalf("sessions = %d, want %d", got, want)
	}
}

// TestHypergiantTopology checks the flattening fanout: the hypergiant peers
// with the host and with many of the host's customers directly.
func TestHypergiantTopology(t *testing.T) {
	p := HypergiantProfile()
	n := Generate(p, 1)
	hg, ok := n.Tags["hypergiant-a"]
	if !ok {
		t.Fatal("hypergiant not tagged")
	}
	if n.ASes[hg].RelTo(n.HostASN) == RelNone {
		t.Fatal("hypergiant not a neighbor of the host")
	}
	fanout := 0
	host := n.ASes[n.HostASN]
	for _, nb := range n.TrueNeighbors(hg) {
		if nb.ASN == n.HostASN || nb.Rel != RelPeer {
			continue
		}
		if host.RelTo(nb.ASN) == RelCustomer { // nb is a host customer
			fanout++
		}
	}
	if want := p.Hypergiants[0].AccessFanout; fanout != want {
		t.Fatalf("hypergiant peers with %d host customers, want %d", fanout, want)
	}
	// The shortcut links are real interdomain links, not sessions.
	links := 0
	for _, lt := range n.InterdomainLinks(hg) {
		if host.RelTo(lt.FarAS) == RelCustomer {
			links++
		}
	}
	if links != fanout {
		t.Fatalf("hypergiant↔customer links = %d, want %d", links, fanout)
	}
}

// TestRegionalVPPlacement checks each placement policy's region choice.
func TestRegionalVPPlacement(t *testing.T) {
	p := RegionalVPProfile()
	n := Generate(p, 1)
	regions := RegionsN(p.NumRegions)
	westMax := regions[(p.NumRegions+1)/2-1].Longitude
	if len(n.VPs) != p.NumVPs {
		t.Fatalf("VPs = %d", len(n.VPs))
	}
	for _, vp := range n.VPs {
		lon := n.Router(vp.Router).Longitude
		if lon > westMax {
			t.Errorf("west-coast VP %s at longitude %.1f, east of %.1f", vp.Name, lon, westMax)
		}
	}

	east := p
	east.Name = "regional-vp-east"
	east.VPPlacement = VPEastCoast
	ne := Generate(east, 1)
	eastMin := regions[p.NumRegions-(p.NumRegions+1)/2].Longitude
	for _, vp := range ne.VPs {
		if lon := ne.Router(vp.Router).Longitude; lon < eastMin {
			t.Errorf("east-coast VP %s at longitude %.1f, west of %.1f", vp.Name, lon, eastMin)
		}
	}

	single := p
	single.Name = "regional-vp-single"
	single.VPPlacement = VPSingleRegion
	ns := Generate(single, 1)
	for _, vp := range ns.VPs {
		if lon := ns.Router(vp.Router).Longitude; lon != regions[0].Longitude {
			t.Errorf("single-region VP %s at longitude %.1f, want %.1f", vp.Name, lon, regions[0].Longitude)
		}
	}
}

// TestSanitizeMix: withDefaults never lets an invalid mix through.
func TestSanitizeMix(t *testing.T) {
	cases := []VisMix{
		nil,
		{},
		{{VisFirewall, 0}},
		{{VisFirewall, -1}, {VisOnenet, 2}},
		{{Visibility(99), 1}},
	}
	for i, m := range cases {
		p := TinyProfile()
		p.CustVis = m
		got := p.withDefaults()
		var total float64
		if len(got.CustVis) == 0 {
			t.Fatalf("case %d: empty mix survived", i)
		}
		for _, w := range got.CustVis {
			if !(w.W >= 0) {
				t.Fatalf("case %d: negative/NaN weight survived", i)
			}
			total += w.W
		}
		if !(total > 0) {
			t.Fatalf("case %d: zero-total mix survived", i)
		}
	}
	// A valid custom mix passes through untouched.
	valid := VisMix{{VisOnenet, 1}}
	p := TinyProfile()
	p.CustVis = valid
	if got := p.withDefaults(); len(got.CustVis) != 1 || got.CustVis[0] != valid[0] {
		t.Fatal("valid mix was replaced")
	}
}

func isRemote(ixp *IXP, asn ASN) bool {
	for _, a := range ixp.Remote {
		if a == asn {
			return true
		}
	}
	return false
}

func isBilateral(ixp *IXP, asn ASN) bool {
	for _, a := range ixp.Bilateral {
		if a == asn {
			return true
		}
	}
	return false
}

func findLAN(t *testing.T, n *Network, ixp *IXP) *Link {
	t.Helper()
	for _, l := range n.Links {
		if l.Kind == LinkIXPLAN && l.Subnet == ixp.LAN {
			return l
		}
	}
	t.Fatalf("no LAN link for %s", ixp.Name)
	return nil
}
