package topo

// Region is a geographic point of presence of the host network. The paper's
// figures 15 and 16 study how VP longitude determines which interdomain
// links a VP can observe under hot-potato routing, so the synthetic host
// network is laid out across named US metros with real longitudes.
type Region struct {
	Name      string
	Longitude float64
}

// USRegions is the default continental-US backbone footprint, west to east.
var USRegions = []Region{
	{"sea", -122.3},
	{"sjc", -121.9},
	{"lax", -118.2},
	{"slc", -111.9},
	{"den", -104.9},
	{"dfw", -96.8},
	{"hou", -95.4},
	{"chi", -87.6},
	{"atl", -84.4},
	{"mia", -80.2},
	{"dca", -77.0},
	{"nyc", -74.0},
	{"bos", -71.1},
}

// RegionsN returns the first n of USRegions (cycling if n exceeds the list,
// which keeps small test profiles valid).
func RegionsN(n int) []Region {
	if n <= 0 {
		return nil
	}
	out := make([]Region, n)
	for i := range out {
		out[i] = USRegions[i%len(USRegions)]
	}
	return out
}

// geoDist is the IGP-style distance between two longitudes. Hot-potato
// egress selection minimizes this.
func geoDist(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d
}
