package topo

import (
	"fmt"

	"bdrmap/internal/netx"
)

// Allocator hands out non-overlapping IPv4 prefixes, mimicking RIR
// delegation. Top-level allocations walk the space from 1.0.0.0 upward;
// sub-allocations carve subnets out of a previously allocated prefix
// (used for interconnection /30s and /31s from an AS's infrastructure
// block, and for provider-aggregatable delegations to customers).
type Allocator struct {
	cursor netx.Addr
	// subCursor tracks the next free address per parent prefix, so /30
	// and /31 sub-allocations from the same parent never overlap.
	subCursor map[netx.Prefix]netx.Addr
}

// NewAllocator returns an allocator starting at 1.0.0.0.
func NewAllocator() *Allocator {
	return &Allocator{
		cursor:    netx.MustParseAddr("1.0.0.0"),
		subCursor: make(map[netx.Prefix]netx.Addr),
	}
}

// Next allocates the next aligned /plen prefix.
func (al *Allocator) Next(plen int) netx.Prefix {
	if plen < 8 || plen > 32 {
		panic(fmt.Sprintf("topo: implausible allocation length /%d", plen))
	}
	// Align the cursor up to a /plen boundary.
	size := netx.Addr(1) << (32 - uint(plen))
	base := (al.cursor + size - 1) &^ (size - 1)
	if base < al.cursor { // wrapped
		panic("topo: address space exhausted")
	}
	al.cursor = base + size
	return netx.MakePrefix(base, plen)
}

// Sub allocates the next free /plen subnet inside parent. It panics when
// parent is exhausted.
func (al *Allocator) Sub(parent netx.Prefix, plen int) netx.Prefix {
	if plen < parent.Len {
		panic(fmt.Sprintf("topo: sub-allocation /%d larger than parent %v", plen, parent))
	}
	cur, ok := al.subCursor[parent]
	if !ok {
		cur = parent.First()
	}
	size := netx.Addr(1) << (32 - uint(plen))
	base := (cur + size - 1) &^ (size - 1)
	if base < cur || base+size-1 > parent.Last() || base < parent.First() {
		panic(fmt.Sprintf("topo: parent %v exhausted for /%d subnets", parent, plen))
	}
	al.subCursor[parent] = base + size
	return netx.MakePrefix(base, plen)
}

// SubRemaining reports how many /plen subnets remain free in parent.
func (al *Allocator) SubRemaining(parent netx.Prefix, plen int) int {
	cur, ok := al.subCursor[parent]
	if !ok {
		cur = parent.First()
	}
	size := netx.Addr(1) << (32 - uint(plen))
	base := (cur + size - 1) &^ (size - 1)
	if base > parent.Last() {
		return 0
	}
	return int((parent.Last() - base + 1) / size)
}
