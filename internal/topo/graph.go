package topo

import (
	"sort"

	"bdrmap/internal/netx"
)

// Adj is one layer-3 adjacency of a router: the local interface, the peer
// interface, and the link joining them. IXP LANs produce one Adj per peering
// session crossing the LAN.
type Adj struct {
	Self *Iface
	Peer *Iface
	Link *Link
}

// Attachment describes one interdomain attachment of an AS: a local border
// router joined to a remote AS's router, either over a point-to-point
// interdomain link or an IXP LAN peering session.
type Attachment struct {
	Link      *Link
	LocalRtr  RouterID
	Remote    ASN
	RemoteRtr RouterID
}

// IXPSession is a BGP peering session established across an IXP LAN.
type IXPSession struct {
	IXP        int // index into Network.IXPs
	A, B       ASN
	ARtr, BRtr RouterID
}

// PrefixAnchor designates the router a prefix's traffic terminates at
// inside its origin AS, and whether probes to addresses in the prefix
// receive echo replies (as if a host answered).
type PrefixAnchor struct {
	Router  RouterID
	Replies bool
}

// graphIndex holds adjacency structures derived from the link set.
type graphIndex struct {
	internalAdj map[RouterID][]Adj
	attachments map[ASN][]Attachment
	// anchor per (origin AS, prefix)
	anchors map[netx.Prefix]PrefixAnchor
	// pinnedLinks restricts announcement of a prefix by its origin to a
	// set of interdomain links (AnnouncePinned / AnnounceCoastal, §6).
	// A prefix absent from the map is announced on all links.
	pinnedLinks map[netx.Prefix]map[*Link]bool
}

// Sessions lists IXP peering sessions.
func (n *Network) Sessions() []IXPSession { return n.ixpSessions }

// AddIXPSession records a peering session between members a and b of IXP
// index ix, attached at the given routers (which must hold LAN interfaces).
func (n *Network) AddIXPSession(ix int, a ASN, aRtr RouterID, b ASN, bRtr RouterID) {
	n.ixpSessions = append(n.ixpSessions, IXPSession{IXP: ix, A: a, ARtr: aRtr, B: b, BRtr: bRtr})
}

// SetAnchor designates where traffic to prefix p terminates.
func (n *Network) SetAnchor(p netx.Prefix, r RouterID, replies bool) {
	if n.idx == nil {
		n.idx = newGraphIndex()
	}
	n.idx.anchors[p] = PrefixAnchor{Router: r, Replies: replies}
}

// Anchor returns the anchor for prefix p.
func (n *Network) Anchor(p netx.Prefix) (PrefixAnchor, bool) {
	if n.idx == nil {
		return PrefixAnchor{}, false
	}
	a, ok := n.idx.anchors[p]
	return a, ok
}

// PinPrefix restricts the origin's announcement of p to the given
// interdomain links (selective announcement; Akamai/Google-like policies).
func (n *Network) PinPrefix(p netx.Prefix, links []*Link) {
	if n.idx == nil {
		n.idx = newGraphIndex()
	}
	m := make(map[*Link]bool, len(links))
	for _, l := range links {
		m[l] = true
	}
	n.idx.pinnedLinks[p] = m
}

// AnnouncedOnLink reports whether prefix p is announced by its origin over
// interdomain link l. Unpinned prefixes are announced everywhere.
func (n *Network) AnnouncedOnLink(p netx.Prefix, l *Link) bool {
	if n.idx == nil {
		return true
	}
	m, pinned := n.idx.pinnedLinks[p]
	if !pinned {
		return true
	}
	return m[l]
}

// AnchorRecord pairs a prefix with its anchor, for enumeration.
type AnchorRecord struct {
	Prefix netx.Prefix
	PrefixAnchor
}

// Anchors enumerates all prefix anchors, sorted by prefix.
func (n *Network) Anchors() []AnchorRecord {
	if n.idx == nil {
		return nil
	}
	out := make([]AnchorRecord, 0, len(n.idx.anchors))
	for p, a := range n.idx.anchors {
		out = append(out, AnchorRecord{Prefix: p, PrefixAnchor: a})
	}
	sort.Slice(out, func(i, j int) bool { return netx.ComparePrefix(out[i].Prefix, out[j].Prefix) < 0 })
	return out
}

// PinnedLinksOf returns the links prefix p is pinned to (nil if unpinned).
func (n *Network) PinnedLinksOf(p netx.Prefix) []*Link {
	if n.idx == nil {
		return nil
	}
	m := n.idx.pinnedLinks[p]
	if m == nil {
		return nil
	}
	out := make([]*Link, 0, len(m))
	for l := range m {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		return netx.ComparePrefix(out[i].Subnet, out[j].Subnet) < 0
	})
	return out
}

// PinnedPrefixes returns all prefixes with pinned announcements.
func (n *Network) PinnedPrefixes() []netx.Prefix {
	if n.idx == nil {
		return nil
	}
	out := make([]netx.Prefix, 0, len(n.idx.pinnedLinks))
	for p := range n.idx.pinnedLinks {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return netx.ComparePrefix(out[i], out[j]) < 0 })
	return out
}

func newGraphIndex() *graphIndex {
	return &graphIndex{
		anchors:     make(map[netx.Prefix]PrefixAnchor),
		pinnedLinks: make(map[netx.Prefix]map[*Link]bool),
	}
}

// Build finalizes the network: it computes internal adjacency and
// interdomain attachment indexes. Call after construction and before
// routing or probing. Build is idempotent.
func (n *Network) Build() {
	if n.idx == nil {
		n.idx = newGraphIndex()
	}
	n.idx.internalAdj = make(map[RouterID][]Adj)
	n.idx.attachments = make(map[ASN][]Attachment)
	n.annotate()

	for _, l := range n.Links {
		switch l.Kind {
		case LinkInternal:
			if len(l.Ifaces) != 2 {
				continue
			}
			a, b := l.Ifaces[0], l.Ifaces[1]
			n.idx.internalAdj[a.Router] = append(n.idx.internalAdj[a.Router], Adj{Self: a, Peer: b, Link: l})
			n.idx.internalAdj[b.Router] = append(n.idx.internalAdj[b.Router], Adj{Self: b, Peer: a, Link: l})
		case LinkInterdomain:
			if len(l.Ifaces) != 2 {
				continue
			}
			a, b := l.Ifaces[0], l.Ifaces[1]
			ra, rb := n.Router(a.Router), n.Router(b.Router)
			n.idx.attachments[ra.Owner] = append(n.idx.attachments[ra.Owner],
				Attachment{Link: l, LocalRtr: ra.ID, Remote: rb.Owner, RemoteRtr: rb.ID})
			n.idx.attachments[rb.Owner] = append(n.idx.attachments[rb.Owner],
				Attachment{Link: l, LocalRtr: rb.ID, Remote: ra.Owner, RemoteRtr: ra.ID})
		}
	}
	// IXP sessions become attachments over the LAN link.
	for _, s := range n.ixpSessions {
		lan := n.ixpLAN(s.IXP)
		if lan == nil {
			continue
		}
		n.idx.attachments[s.A] = append(n.idx.attachments[s.A],
			Attachment{Link: lan, LocalRtr: s.ARtr, Remote: s.B, RemoteRtr: s.BRtr})
		n.idx.attachments[s.B] = append(n.idx.attachments[s.B],
			Attachment{Link: lan, LocalRtr: s.BRtr, Remote: s.A, RemoteRtr: s.ARtr})
	}
	// Deterministic ordering.
	for asn := range n.idx.attachments {
		at := n.idx.attachments[asn]
		sort.Slice(at, func(i, j int) bool {
			if at[i].LocalRtr != at[j].LocalRtr {
				return at[i].LocalRtr < at[j].LocalRtr
			}
			if at[i].Remote != at[j].Remote {
				return at[i].Remote < at[j].Remote
			}
			return at[i].RemoteRtr < at[j].RemoteRtr
		})
		n.idx.attachments[asn] = at
	}
}

// ixpLAN returns the LAN link of IXP index ix (matched by subnet).
func (n *Network) ixpLAN(ix int) *Link {
	if ix < 0 || ix >= len(n.IXPs) {
		return nil
	}
	want := n.IXPs[ix].LAN
	for _, l := range n.Links {
		if l.Kind == LinkIXPLAN && l.Subnet == want {
			return l
		}
	}
	return nil
}

// InternalNeighbors returns the intra-AS adjacencies of router r.
func (n *Network) InternalNeighbors(r RouterID) []Adj {
	if n.idx == nil {
		return nil
	}
	return n.idx.internalAdj[r]
}

// Attachments returns the interdomain attachments of asn.
func (n *Network) Attachments(asn ASN) []Attachment {
	if n.idx == nil {
		return nil
	}
	return n.idx.attachments[asn]
}
