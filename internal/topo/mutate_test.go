package topo

import "testing"

func hostBorderOf(n *Network) RouterID {
	for _, lt := range n.InterdomainLinks(n.HostASN) {
		return lt.NearRtr
	}
	return -1
}

func TestAttachCustomer(t *testing.T) {
	n := Generate(TinyProfile(), 1)
	before := len(n.InterdomainLinks(n.HostASN))
	br := hostBorderOf(n)
	asn, err := AttachCustomer(n, br, 65500)
	if err != nil {
		t.Fatal(err)
	}
	n.Build()
	if got := len(n.InterdomainLinks(n.HostASN)); got != before+1 {
		t.Fatalf("links = %d, want %d", got, before+1)
	}
	found := false
	for _, nb := range n.TrueNeighbors(n.HostASN) {
		if nb.ASN == asn && nb.Rel == RelCustomer {
			found = true
		}
	}
	if !found {
		t.Fatal("new customer missing from neighbor set")
	}
	c := n.ASes[asn]
	if len(c.Prefixes) != 1 || len(c.Routers) != 2 {
		t.Fatalf("customer shape: %d prefixes, %d routers", len(c.Prefixes), len(c.Routers))
	}
}

func TestAttachCustomerErrors(t *testing.T) {
	n := Generate(TinyProfile(), 1)
	br := hostBorderOf(n)
	if _, err := AttachCustomer(n, br, n.HostASN); err == nil {
		t.Error("duplicate ASN accepted")
	}
	if _, err := AttachCustomer(n, -5, 65501); err == nil {
		t.Error("bad router accepted")
	}
	// A neighbor's router is not a valid attachment point.
	var farRtr RouterID = -1
	for _, lt := range n.InterdomainLinks(n.HostASN) {
		farRtr = lt.FarRtr
	}
	if _, err := AttachCustomer(n, farRtr, 65502); err == nil {
		t.Error("non-host router accepted")
	}
	hand := NewNetwork()
	hand.AddAS(1, TierStub, "x")
	hand.HostASN = 1
	r := hand.AddRouter(1, "r", 0)
	if _, err := AttachCustomer(hand, r.ID, 65503); err == nil {
		t.Error("allocator-less network accepted")
	}
}

func TestAttachPeer(t *testing.T) {
	n := Generate(TinyProfile(), 1)
	br := hostBorderOf(n)
	// Any backbone Tier-1 serves as the peer's transit.
	var transit ASN
	for _, asn := range n.ASNs() {
		if n.ASes[asn].Tier == TierTier1 && len(n.ASes[asn].Routers) > 0 {
			transit = asn
			break
		}
	}
	if transit == 0 {
		t.Fatal("no tier1 transit available")
	}
	asn, err := AttachPeer(n, br, 65510, transit)
	if err != nil {
		t.Fatal(err)
	}
	n.Build()
	if n.ASes[n.HostASN].RelTo(asn) != RelPeer {
		t.Fatal("peer relationship missing")
	}
	found := false
	for _, lt := range n.InterdomainLinks(n.HostASN) {
		if lt.FarAS == asn {
			found = true
			if lt.Link.AddrOwner != asn {
				t.Errorf("peering subnet owner = %v, want the peer", lt.Link.AddrOwner)
			}
		}
	}
	if !found {
		t.Fatal("peering link missing")
	}
	if _, err := AttachPeer(n, br, 65510, transit); err == nil {
		t.Error("duplicate ASN accepted")
	}
	if _, err := AttachPeer(n, br, 65511, 1); err == nil {
		t.Error("unknown transit accepted")
	}
}

func TestDepeer(t *testing.T) {
	n := Generate(TinyProfile(), 1)
	var victim ASN
	for _, lt := range n.InterdomainLinks(n.HostASN) {
		victim = lt.FarAS
		break
	}
	before := len(n.InterdomainLinks(n.HostASN))
	removed := Depeer(n, victim)
	if removed == 0 {
		t.Fatal("nothing removed")
	}
	n.Build()
	after := len(n.InterdomainLinks(n.HostASN))
	if after != before-removed {
		t.Fatalf("links %d -> %d, removed %d", before, after, removed)
	}
	for _, lt := range n.InterdomainLinks(n.HostASN) {
		if lt.FarAS == victim {
			t.Fatal("victim still attached")
		}
	}
	// Idempotent.
	if Depeer(n, victim) != 0 {
		t.Fatal("second depeer removed more")
	}
}
