package topo

import (
	"testing"
	"time"
)

func hostBorderOf(n *Network) RouterID {
	for _, lt := range n.InterdomainLinks(n.HostASN) {
		return lt.NearRtr
	}
	return -1
}

func TestAttachCustomer(t *testing.T) {
	n := Generate(TinyProfile(), 1)
	before := len(n.InterdomainLinks(n.HostASN))
	br := hostBorderOf(n)
	asn, err := AttachCustomer(n, br, 65500)
	if err != nil {
		t.Fatal(err)
	}
	n.Build()
	if got := len(n.InterdomainLinks(n.HostASN)); got != before+1 {
		t.Fatalf("links = %d, want %d", got, before+1)
	}
	found := false
	for _, nb := range n.TrueNeighbors(n.HostASN) {
		if nb.ASN == asn && nb.Rel == RelCustomer {
			found = true
		}
	}
	if !found {
		t.Fatal("new customer missing from neighbor set")
	}
	c := n.ASes[asn]
	if len(c.Prefixes) != 1 || len(c.Routers) != 2 {
		t.Fatalf("customer shape: %d prefixes, %d routers", len(c.Prefixes), len(c.Routers))
	}
}

func TestAttachCustomerErrors(t *testing.T) {
	n := Generate(TinyProfile(), 1)
	br := hostBorderOf(n)
	if _, err := AttachCustomer(n, br, n.HostASN); err == nil {
		t.Error("duplicate ASN accepted")
	}
	if _, err := AttachCustomer(n, -5, 65501); err == nil {
		t.Error("bad router accepted")
	}
	// A neighbor's router is not a valid attachment point.
	var farRtr RouterID = -1
	for _, lt := range n.InterdomainLinks(n.HostASN) {
		farRtr = lt.FarRtr
	}
	if _, err := AttachCustomer(n, farRtr, 65502); err == nil {
		t.Error("non-host router accepted")
	}
	hand := NewNetwork()
	hand.AddAS(1, TierStub, "x")
	hand.HostASN = 1
	r := hand.AddRouter(1, "r", 0)
	if _, err := AttachCustomer(hand, r.ID, 65503); err == nil {
		t.Error("allocator-less network accepted")
	}
}

func TestAttachPeer(t *testing.T) {
	n := Generate(TinyProfile(), 1)
	br := hostBorderOf(n)
	// Any backbone Tier-1 serves as the peer's transit.
	var transit ASN
	for _, asn := range n.ASNs() {
		if n.ASes[asn].Tier == TierTier1 && len(n.ASes[asn].Routers) > 0 {
			transit = asn
			break
		}
	}
	if transit == 0 {
		t.Fatal("no tier1 transit available")
	}
	asn, err := AttachPeer(n, br, 65510, transit)
	if err != nil {
		t.Fatal(err)
	}
	n.Build()
	if n.ASes[n.HostASN].RelTo(asn) != RelPeer {
		t.Fatal("peer relationship missing")
	}
	found := false
	for _, lt := range n.InterdomainLinks(n.HostASN) {
		if lt.FarAS == asn {
			found = true
			if lt.Link.AddrOwner != asn {
				t.Errorf("peering subnet owner = %v, want the peer", lt.Link.AddrOwner)
			}
		}
	}
	if !found {
		t.Fatal("peering link missing")
	}
	if _, err := AttachPeer(n, br, 65510, transit); err == nil {
		t.Error("duplicate ASN accepted")
	}
	if _, err := AttachPeer(n, br, 65511, 1); err == nil {
		t.Error("unknown transit accepted")
	}
}

func TestDepeer(t *testing.T) {
	n := Generate(TinyProfile(), 1)
	var victim ASN
	for _, lt := range n.InterdomainLinks(n.HostASN) {
		victim = lt.FarAS
		break
	}
	before := len(n.InterdomainLinks(n.HostASN))
	removed := Depeer(n, victim)
	if removed == 0 {
		t.Fatal("nothing removed")
	}
	n.Build()
	after := len(n.InterdomainLinks(n.HostASN))
	if after != before-removed {
		t.Fatalf("links %d -> %d, removed %d", before, after, removed)
	}
	for _, lt := range n.InterdomainLinks(n.HostASN) {
		if lt.FarAS == victim {
			t.Fatal("victim still attached")
		}
	}
	// Idempotent.
	if Depeer(n, victim) != 0 {
		t.Fatal("second depeer removed more")
	}
}

// TestDepeerRouteServerSession: depeering an IXP member whose only
// interconnect with the host is a route-server session tears down the
// session but leaves the IXP LAN and the member's interfaces intact —
// they belong to the IXP operator and the member, not the departing pair.
func TestDepeerRouteServerSession(t *testing.T) {
	n := Generate(RouteServerMixProfile(), 1)
	// Pick a hidden (route-server) member: its host interconnect is
	// session-only, no point-to-point link.
	var victim ASN
	for _, ixp := range n.IXPs {
		for _, asn := range ixp.Members {
			if asn != n.HostASN && asn != ixp.OperatorASN && n.HiddenNeighbors[asn] {
				victim = asn
			}
		}
	}
	if victim == 0 {
		t.Fatal("no route-server member found")
	}
	sessBefore, linksBefore := len(n.Sessions()), len(n.Links)
	removed := Depeer(n, victim)
	if removed != 1 {
		t.Fatalf("removed = %d, want exactly the session", removed)
	}
	if got := len(n.Sessions()); got != sessBefore-1 {
		t.Fatalf("sessions %d -> %d, want one fewer", sessBefore, got)
	}
	for _, s := range n.Sessions() {
		if s.A == victim || s.B == victim {
			t.Fatal("victim still holds a session")
		}
	}
	// The LAN (and the member's transit uplink) survive: only the session
	// between the pair is an interconnect of theirs.
	if got := len(n.Links); got != linksBefore {
		t.Fatalf("links %d -> %d: Depeer tore down physical links for a session-only interconnect", linksBefore, got)
	}
	n.Build() // the mutated world must still index cleanly
	if Depeer(n, victim) != 0 {
		t.Fatal("second depeer removed more")
	}
}

// TestAttachCustomerToHypergiantRejected: the hypergiant's routers are not
// host attachment points, even though the hypergiant peers with the host.
func TestAttachCustomerToHypergiantRejected(t *testing.T) {
	n := Generate(HypergiantProfile(), 1)
	hg := n.Tags["hypergiant-a"]
	if hg == 0 {
		t.Fatal("hypergiant not tagged")
	}
	if len(n.ASes[hg].Routers) == 0 {
		t.Fatal("hypergiant has no routers")
	}
	if _, err := AttachCustomer(n, n.ASes[hg].Routers[0].ID, 65520); err == nil {
		t.Fatal("AttachCustomer accepted a hypergiant-owned router")
	}
	// A host border still works in the same world.
	if _, err := AttachCustomer(n, hostBorderOf(n), 65521); err != nil {
		t.Fatalf("AttachCustomer on a host border: %v", err)
	}
	n.Build()
}

// TestMutatePreservesAnnotations: mutating an annotated world and
// rebuilding must keep every surviving link's annotation bit-for-bit —
// annotate only fills zero values, and mutation never zeroes them.
func TestMutatePreservesAnnotations(t *testing.T) {
	n := Generate(RemotePeeringProfile(), 1)
	before := make(map[*Link]Annotation, len(n.Links))
	attach := make(map[*Iface]time.Duration)
	for _, l := range n.Links {
		before[l] = l.Annot
		for _, ifc := range l.Ifaces {
			if ifc.AttachDelay != 0 {
				attach[ifc] = ifc.AttachDelay
			}
		}
	}
	var victim ASN
	for _, lt := range n.InterdomainLinks(n.HostASN) {
		victim = lt.FarAS
		break
	}
	if Depeer(n, victim) == 0 {
		t.Fatal("nothing depeered")
	}
	if _, err := AttachCustomer(n, hostBorderOf(n), 65530); err != nil {
		t.Fatal(err)
	}
	n.Build()
	for _, l := range n.Links {
		want, existed := before[l]
		if !existed {
			if l.Annot == (Annotation{}) {
				t.Fatalf("new link %v not annotated by Build", l.Subnet)
			}
			continue
		}
		if l.Annot != want {
			t.Fatalf("link %v annotation changed across mutation: %+v -> %+v", l.Subnet, want, l.Annot)
		}
		for _, ifc := range l.Ifaces {
			if want, ok := attach[ifc]; ok && ifc.AttachDelay != want {
				t.Fatalf("iface %v circuit delay changed: %v -> %v", ifc.Addr, want, ifc.AttachDelay)
			}
		}
	}
}
