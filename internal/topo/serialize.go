package topo

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"bdrmap/internal/netx"
)

// JSON serialization of a complete network, so a generated world can be
// stored, shared, and measured separately from generation (topogen -save /
// bdrmap -topo). Pointer structure (interfaces ↔ links ↔ routers) is
// encoded by index and rebuilt on load; Save/Load round-trip exactly.

type netJSON struct {
	Version     int            `json:"version"`
	HostASN     ASN            `json:"host_asn"`
	AnnotSeed   int64          `json:"annot_seed,omitempty"`
	ASes        []asJSON       `json:"ases"`
	Routers     []rtrJSON      `json:"routers"`
	Links       []linkJSON     `json:"links"`
	IXPs        []ixpJSON      `json:"ixps"`
	VPs         []vpJSON       `json:"vps"`
	Sessions    []sessJSON     `json:"sessions,omitempty"`
	Delegations []delJSON      `json:"delegations,omitempty"`
	MultiOrigin []moasJSON     `json:"multi_origin,omitempty"`
	Hidden      []ASN          `json:"hidden,omitempty"`
	Tags        map[string]ASN `json:"tags,omitempty"`
	Anchors     []anchorJSON   `json:"anchors,omitempty"`
	Pins        []pinJSON      `json:"pins,omitempty"`
	Rels        []relJSON      `json:"rels"`
}

// relJSON records one AS relationship: A is Rel of B.
type relJSON struct {
	A   ASN  `json:"a"`
	B   ASN  `json:"b"`
	Rel int8 `json:"rel"`
}

type asJSON struct {
	ASN           ASN      `json:"asn"`
	Tier          int8     `json:"tier"`
	Org           string   `json:"org"`
	Prefixes      []string `json:"prefixes,omitempty"`
	Infra         string   `json:"infra,omitempty"`
	AnnounceInfra bool     `json:"announce_infra,omitempty"`
	Policy        int8     `json:"policy,omitempty"`
}

type rtrJSON struct {
	Owner    ASN      `json:"owner"`
	Name     string   `json:"name"`
	Lon      float64  `json:"lon"`
	Behavior Behavior `json:"behavior"`
}

type linkJSON struct {
	Kind      int8   `json:"kind"`
	Subnet    string `json:"subnet"`
	AddrOwner ASN    `json:"addr_owner"`
	// Ifaces: (router index, address) pairs in attachment order.
	Ifaces []ifaceJSON `json:"ifaces"`
	Annot  *annotJSON  `json:"annot,omitempty"`
}

type annotJSON struct {
	LatencyNS     int64   `json:"latency_ns"`
	BandwidthMbps int     `json:"bw_mbps"`
	LonA          float64 `json:"lon_a"`
	LonB          float64 `json:"lon_b"`
}

type ifaceJSON struct {
	Router RouterID `json:"router"`
	Addr   string   `json:"addr"`
	// AttachNS is the interface's AttachDelay in nanoseconds (remote
	// peering circuits); omitted when zero.
	AttachNS int64 `json:"attach_ns,omitempty"`
}

type ixpJSON struct {
	Name         string  `json:"name"`
	OperatorASN  ASN     `json:"operator"`
	LAN          string  `json:"lan"`
	Members      []ASN   `json:"members"`
	AnnouncesLAN bool    `json:"announces_lan"`
	Longitude    float64 `json:"lon"`
	Remote       []ASN   `json:"remote,omitempty"`
	Bilateral    []ASN   `json:"bilateral,omitempty"`
}

type vpJSON struct {
	Name   string   `json:"name"`
	Host   ASN      `json:"host"`
	Router RouterID `json:"router"`
	Addr   string   `json:"addr"`
}

type sessJSON struct {
	IXP  int      `json:"ixp"`
	A    ASN      `json:"a"`
	ARtr RouterID `json:"a_rtr"`
	B    ASN      `json:"b"`
	BRtr RouterID `json:"b_rtr"`
}

type delJSON struct {
	Org    string `json:"org"`
	Prefix string `json:"prefix"`
}

type moasJSON struct {
	Prefix  string `json:"prefix"`
	Origins []ASN  `json:"origins"`
}

type anchorJSON struct {
	Prefix  string   `json:"prefix"`
	Router  RouterID `json:"router"`
	Replies bool     `json:"replies,omitempty"`
}

type pinJSON struct {
	Prefix string `json:"prefix"`
	Links  []int  `json:"links"` // indexes into Links
}

// Save serializes the network as JSON.
func (n *Network) Save(w io.Writer) error {
	out := netJSON{
		Version:   1,
		HostASN:   n.HostASN,
		AnnotSeed: n.AnnotSeed,
		Tags:      n.Tags,
	}
	for _, asn := range n.ASNs() {
		a := n.ASes[asn]
		aj := asJSON{
			ASN: asn, Tier: int8(a.Tier), Org: a.Org,
			AnnounceInfra: a.AnnounceInfra, Policy: int8(a.Policy),
		}
		for _, p := range a.Prefixes {
			aj.Prefixes = append(aj.Prefixes, p.String())
		}
		if a.Infra.IsValid() && a.Infra.NumAddrs() < 1<<32 {
			aj.Infra = a.Infra.String()
		}
		out.ASes = append(out.ASes, aj)
	}
	for _, r := range n.Routers {
		out.Routers = append(out.Routers, rtrJSON{
			Owner: r.Owner, Name: r.Name, Lon: r.Longitude, Behavior: r.Behavior,
		})
	}
	linkIdx := make(map[*Link]int, len(n.Links))
	for i, l := range n.Links {
		linkIdx[l] = i
		lj := linkJSON{Kind: int8(l.Kind), Subnet: l.Subnet.String(), AddrOwner: l.AddrOwner}
		for _, ifc := range l.Ifaces {
			lj.Ifaces = append(lj.Ifaces, ifaceJSON{
				Router: ifc.Router, Addr: ifc.Addr.String(), AttachNS: int64(ifc.AttachDelay),
			})
		}
		if l.Annot != (Annotation{}) {
			lj.Annot = &annotJSON{
				LatencyNS:     int64(l.Annot.Latency),
				BandwidthMbps: l.Annot.BandwidthMbps,
				LonA:          l.Annot.LonA,
				LonB:          l.Annot.LonB,
			}
		}
		out.Links = append(out.Links, lj)
	}
	for _, x := range n.IXPs {
		out.IXPs = append(out.IXPs, ixpJSON{
			Name: x.Name, OperatorASN: x.OperatorASN, LAN: x.LAN.String(),
			Members: x.Members, AnnouncesLAN: x.AnnouncesLAN, Longitude: x.Longitude,
			Remote: x.Remote, Bilateral: x.Bilateral,
		})
	}
	for _, vp := range n.VPs {
		out.VPs = append(out.VPs, vpJSON{Name: vp.Name, Host: vp.Host, Router: vp.Router, Addr: vp.Addr.String()})
	}
	for _, s := range n.Sessions() {
		out.Sessions = append(out.Sessions, sessJSON{IXP: s.IXP, A: s.A, ARtr: s.ARtr, B: s.B, BRtr: s.BRtr})
	}
	for _, d := range n.Delegations {
		out.Delegations = append(out.Delegations, delJSON{Org: d.OrgID, Prefix: d.Prefix.String()})
	}
	var moasPrefixes []netx.Prefix
	for p := range n.MultiOrigin {
		moasPrefixes = append(moasPrefixes, p)
	}
	sort.Slice(moasPrefixes, func(i, j int) bool { return netx.ComparePrefix(moasPrefixes[i], moasPrefixes[j]) < 0 })
	for _, p := range moasPrefixes {
		out.MultiOrigin = append(out.MultiOrigin, moasJSON{Prefix: p.String(), Origins: n.MultiOrigin[p]})
	}
	for asn := range n.HiddenNeighbors {
		out.Hidden = append(out.Hidden, asn)
	}
	sort.Slice(out.Hidden, func(i, j int) bool { return out.Hidden[i] < out.Hidden[j] })
	for _, a := range n.Anchors() {
		out.Anchors = append(out.Anchors, anchorJSON{Prefix: a.Prefix.String(), Router: a.Router, Replies: a.Replies})
	}
	for _, p := range n.PinnedPrefixes() {
		pj := pinJSON{Prefix: p.String()}
		for _, l := range n.PinnedLinksOf(p) {
			pj.Links = append(pj.Links, linkIdx[l])
		}
		out.Pins = append(out.Pins, pj)
	}
	for _, asn := range n.ASNs() {
		for _, nb := range n.ASes[asn].Neighbors() {
			if nb.ASN <= asn {
				continue // record each pair once
			}
			// nb.Rel is what nb.ASN is to asn.
			out.Rels = append(out.Rels, relJSON{A: nb.ASN, B: asn, Rel: int8(nb.Rel)})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Load reconstructs a network saved with Save, including all indexes
// (Build is called internally).
func Load(r io.Reader) (*Network, error) {
	var in netJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("topo: load: %w", err)
	}
	if in.Version != 1 {
		return nil, fmt.Errorf("topo: unsupported version %d", in.Version)
	}
	n := NewNetwork()
	n.HostASN = in.HostASN
	n.AnnotSeed = in.AnnotSeed
	if in.Tags != nil {
		n.Tags = in.Tags
	}
	for _, aj := range in.ASes {
		a := n.AddAS(aj.ASN, Tier(aj.Tier), aj.Org)
		a.AnnounceInfra = aj.AnnounceInfra
		a.Policy = AnnouncePolicy(aj.Policy)
		for _, ps := range aj.Prefixes {
			p, err := netx.ParsePrefix(ps)
			if err != nil {
				return nil, fmt.Errorf("topo: load %v: %w", aj.ASN, err)
			}
			a.Prefixes = append(a.Prefixes, p)
		}
		if aj.Infra != "" {
			p, err := netx.ParsePrefix(aj.Infra)
			if err != nil {
				return nil, err
			}
			a.Infra = p
		}
	}
	for _, rj := range in.Routers {
		r := n.AddRouter(rj.Owner, rj.Name, rj.Lon)
		r.Behavior = rj.Behavior
	}
	for _, lj := range in.Links {
		subnet, err := netx.ParsePrefix(lj.Subnet)
		if err != nil {
			return nil, err
		}
		l := n.AddLink(LinkKind(lj.Kind), subnet, lj.AddrOwner)
		if lj.Annot != nil {
			l.Annot = Annotation{
				Latency:       time.Duration(lj.Annot.LatencyNS),
				BandwidthMbps: lj.Annot.BandwidthMbps,
				LonA:          lj.Annot.LonA,
				LonB:          lj.Annot.LonB,
			}
		}
		for _, ij := range lj.Ifaces {
			r := n.Router(ij.Router)
			if r == nil {
				return nil, fmt.Errorf("topo: load: link references missing router %d", ij.Router)
			}
			a, err := netx.ParseAddr(ij.Addr)
			if err != nil {
				return nil, err
			}
			ifc := r.AddIface(a, l)
			ifc.AttachDelay = time.Duration(ij.AttachNS)
			n.RegisterIface(ifc)
		}
	}
	for _, xj := range in.IXPs {
		lan, err := netx.ParsePrefix(xj.LAN)
		if err != nil {
			return nil, err
		}
		n.IXPs = append(n.IXPs, &IXP{
			Name: xj.Name, OperatorASN: xj.OperatorASN, LAN: lan,
			Members: xj.Members, AnnouncesLAN: xj.AnnouncesLAN, Longitude: xj.Longitude,
			Remote: xj.Remote, Bilateral: xj.Bilateral,
		})
	}
	for _, vj := range in.VPs {
		a, err := netx.ParseAddr(vj.Addr)
		if err != nil {
			return nil, err
		}
		n.VPs = append(n.VPs, &VP{Name: vj.Name, Host: vj.Host, Router: vj.Router, Addr: a})
	}
	for _, sj := range in.Sessions {
		n.AddIXPSession(sj.IXP, sj.A, sj.ARtr, sj.B, sj.BRtr)
	}
	for _, dj := range in.Delegations {
		p, err := netx.ParsePrefix(dj.Prefix)
		if err != nil {
			return nil, err
		}
		n.Delegations = append(n.Delegations, DelegationRecord{OrgID: dj.Org, Prefix: p})
	}
	for _, mj := range in.MultiOrigin {
		p, err := netx.ParsePrefix(mj.Prefix)
		if err != nil {
			return nil, err
		}
		n.MultiOrigin[p] = mj.Origins
	}
	for _, h := range in.Hidden {
		if n.HiddenNeighbors == nil {
			n.HiddenNeighbors = make(map[ASN]bool)
		}
		n.HiddenNeighbors[h] = true
	}
	for _, aj := range in.Anchors {
		p, err := netx.ParsePrefix(aj.Prefix)
		if err != nil {
			return nil, err
		}
		n.SetAnchor(p, aj.Router, aj.Replies)
	}
	for _, pj := range in.Pins {
		p, err := netx.ParsePrefix(pj.Prefix)
		if err != nil {
			return nil, err
		}
		var links []*Link
		for _, i := range pj.Links {
			if i < 0 || i >= len(n.Links) {
				return nil, fmt.Errorf("topo: load: pin references missing link %d", i)
			}
			links = append(links, n.Links[i])
		}
		n.PinPrefix(p, links)
	}
	for _, rj := range in.Rels {
		n.SetRel(rj.A, rj.B, Rel(rj.Rel))
	}
	n.Build()
	return n, nil
}
