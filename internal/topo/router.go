package topo

import (
	"fmt"
	"time"

	"bdrmap/internal/netx"
)

// RouterID identifies a router globally within one Network.
type RouterID int32

// IPIDMode describes how a router assigns IP-ID values to the packets it
// sends. Ally-style alias resolution (§5.3) only works against routers that
// use a single shared counter.
type IPIDMode int8

// IPIDMode values.
const (
	IPIDShared   IPIDMode = iota // one central counter for all interfaces (Ally works)
	IPIDPerIface                 // independent counter per interface (Ally must reject)
	IPIDRandom                   // pseudorandom per packet (Ally must reject)
	IPIDZero                     // always zero (Ally must reject; common on modern routers)
)

func (m IPIDMode) String() string {
	switch m {
	case IPIDShared:
		return "shared"
	case IPIDPerIface:
		return "per-iface"
	case IPIDRandom:
		return "random"
	case IPIDZero:
		return "zero"
	default:
		return "unknown"
	}
}

// Behavior captures how a router responds to measurement probes. Every flag
// corresponds to a traceroute idiosyncrasy the paper's heuristics must
// tolerate (§4, §5.4).
type Behavior struct {
	// NoTTLExpired suppresses ICMP time exceeded messages entirely; such a
	// router is invisible in traceroute (§5.4.8, "silent" routers).
	NoTTLExpired bool

	// NoEchoReply suppresses ICMP echo replies.
	NoEchoReply bool

	// NoUDPUnreach suppresses ICMP destination unreachable responses to UDP
	// probes (defeats Mercator).
	NoUDPUnreach bool

	// FirewallEdge drops any probe that would transit this router deeper
	// into its own AS (§4 challenge 3: enterprise border filtering). The
	// router itself still answers per its other flags.
	FirewallEdge bool

	// SourceEgressToProbe makes the router choose TTL-expired source
	// addresses per the RFC 1812 advice: the interface transmitting the
	// response, i.e. the egress toward the prober. When the best route back
	// runs via a third AS that supplied the link subnet, this produces the
	// third-party addresses of §4 challenge 2.
	SourceEgressToProbe bool

	// VirtualRouter makes the router respond with the address of the
	// interface that would have forwarded the packet onward (the virtual
	// router holding the BGP session toward the destination, §4 challenge 4).
	VirtualRouter bool

	// MercatorCanonical controls the source address of ICMP port
	// unreachable responses: true means one canonical address for all
	// probed interfaces (Mercator can resolve aliases); false means the
	// probed address itself (no alias evidence).
	MercatorCanonical bool

	// IPID selects the IP-ID assignment discipline.
	IPID IPIDMode

	// RateLimitPPS bounds ICMP generation; 0 means unlimited. A limited
	// router answers at most this many probes per simulated second.
	RateLimitPPS int
}

// LinkKind classifies a layer-3 link.
type LinkKind int8

// LinkKind values.
const (
	LinkInternal    LinkKind = iota // point-to-point link inside one AS
	LinkInterdomain                 // point-to-point link between two ASes
	LinkIXPLAN                      // shared IXP peering LAN
)

func (k LinkKind) String() string {
	switch k {
	case LinkInternal:
		return "internal"
	case LinkInterdomain:
		return "interdomain"
	case LinkIXPLAN:
		return "ixp-lan"
	default:
		return "unknown"
	}
}

// Link is a layer-3 subnet joining two or more interfaces. Interdomain
// point-to-point links carry the address-assignment convention central to
// the paper: the subnet is usually /30 or /31 supplied by one of the two
// parties (the provider, in a customer-provider relationship).
type Link struct {
	Kind   LinkKind
	Subnet netx.Prefix
	Ifaces []*Iface

	// AddrOwner is the AS whose address space numbers the subnet.
	// For IXP LANs this is the IXP operator's AS.
	AddrOwner ASN

	// Annot carries the link's latency/bandwidth/geo annotation, filled by
	// Build (see annot.go). A zero value means "not yet annotated".
	Annot Annotation
}

// Other returns the interface on the link that is not on router r.
// It is only meaningful for two-interface (point-to-point) links.
func (l *Link) Other(r RouterID) *Iface {
	for _, ifc := range l.Ifaces {
		if ifc.Router != r {
			return ifc
		}
	}
	return nil
}

// IfaceOn returns the interface on the link belonging to router r, if any.
func (l *Link) IfaceOn(r RouterID) *Iface {
	for _, ifc := range l.Ifaces {
		if ifc.Router == r {
			return ifc
		}
	}
	return nil
}

// Iface is a numbered router interface attached to a link.
type Iface struct {
	Addr   netx.Addr
	Router RouterID
	Link   *Link

	// AttachDelay is extra one-way delay between this interface and the
	// link medium: a remote-peering IXP member reaches the fabric over a
	// long-haul layer-2 circuit, so its LAN interface carries the circuit
	// latency while the shared LAN link itself stays local. Zero for
	// ordinary directly-attached interfaces.
	AttachDelay time.Duration
}

// Router is one physical router. Interfaces appear in attachment order;
// Iface 0 is the conventional "loopback-like" canonical interface when the
// router has one (internal routers), otherwise the first link interface.
type Router struct {
	ID    RouterID
	Owner ASN
	Name  string // diagnostic label, e.g. "bb3.lax"

	// Longitude places the router geographically (degrees east; the paper's
	// figure 16 plots link longitudes across the continental US).
	Longitude float64

	Ifaces []*Iface

	Behavior Behavior
}

// AddIface attaches a new interface to the router and returns it.
func (r *Router) AddIface(addr netx.Addr, link *Link) *Iface {
	ifc := &Iface{Addr: addr, Router: r.ID, Link: link}
	r.Ifaces = append(r.Ifaces, ifc)
	if link != nil {
		link.Ifaces = append(link.Ifaces, ifc)
	}
	return ifc
}

// Addrs returns all interface addresses of the router.
func (r *Router) Addrs() []netx.Addr {
	out := make([]netx.Addr, 0, len(r.Ifaces))
	for _, ifc := range r.Ifaces {
		if !ifc.Addr.IsZero() {
			out = append(out, ifc.Addr)
		}
	}
	return out
}

// CanonicalAddr returns the router's canonical response address (used for
// Mercator-style common source responses): the first numbered interface.
func (r *Router) CanonicalAddr() netx.Addr {
	for _, ifc := range r.Ifaces {
		if !ifc.Addr.IsZero() {
			return ifc.Addr
		}
	}
	return 0
}

func (r *Router) String() string {
	return fmt.Sprintf("R%d(%s,%s)", r.ID, r.Owner, r.Name)
}
