package topo

import (
	"fmt"
	"sort"

	"bdrmap/internal/netx"
)

// IXP describes one Internet exchange point: the operator's AS, the shared
// peering LAN subnet, and the members holding addresses on it.
type IXP struct {
	Name         string
	OperatorASN  ASN
	LAN          netx.Prefix
	Members      []ASN
	AnnouncesLAN bool // whether the operator (or a member) originates the LAN subnet in BGP (§4 challenge 6)
	Longitude    float64

	// Remote lists members attached over long-haul layer-2 circuits: their
	// routers sit in a distant metro and their LAN interfaces carry an
	// AttachDelay, violating the distance assumptions local peering obeys.
	Remote []ASN

	// Bilateral lists members whose session with the host is a direct
	// bilateral BGP session rather than a route-server multilateral one;
	// bilateral sessions are visible in the public BGP view, route-server
	// sessions are the hidden "trace"-only neighbors of Table 1.
	Bilateral []ASN
}

// VP is a vantage point: a measurement host attached to a specific router
// of the hosting network.
type VP struct {
	Name     string
	Host     ASN      // AS hosting the VP
	Router   RouterID // attachment router
	Addr     netx.Addr
	SrcIface *Iface // the VP host interface
}

// DelegationRecord mirrors one line of an RIR extended delegation file: an
// address block delegated to an organization identified by an opaque ID.
type DelegationRecord struct {
	OrgID  string
	Prefix netx.Prefix
}

// InterdomainLinkTruth is the ground truth for one interdomain link: the
// two routers, their owners, and the interfaces involved. Validation (§5.6)
// compares bdrmap inferences against these.
type InterdomainLinkTruth struct {
	Link    *Link
	NearAS  ASN // from the perspective of a given host network: filled by TruthFor
	FarAS   ASN
	NearRtr RouterID
	FarRtr  RouterID
}

// Network is a complete synthetic internetwork: ASes, routers, links,
// IXPs, sibling organizations, delegation records, and indexes over them.
type Network struct {
	ASes    map[ASN]*AS
	Routers []*Router // indexed by RouterID
	Links   []*Link
	IXPs    []*IXP
	VPs     []*VP

	// Delegations is the synthetic RIR delegation dataset.
	Delegations []DelegationRecord

	// HostASN is the network hosting the vantage points under study.
	HostASN ASN

	// MultiOrigin lists prefixes originated by more than one AS (§4
	// challenge 7), keyed by prefix with all origins.
	MultiOrigin map[netx.Prefix][]ASN

	// HiddenNeighbors are neighbors of the host whose routes the host
	// treats as no-export (e.g. IXP route-server peerings): the links are
	// real and carry probe traffic, but never appear in the public BGP
	// view. These are the "trace"-only neighbors of Table 1.
	HiddenNeighbors map[ASN]bool

	// Tags label notable ASes for evaluation ("bigpeer0", CDN names, ...).
	Tags map[string]ASN

	// Alloc is the address allocator used during generation, retained so
	// the topology can be mutated afterwards (new interconnections need
	// fresh subnets). Nil for hand-built networks.
	Alloc *Allocator

	// AnnotSeed seeds the per-AS link-annotation hash (annot.go). Zero for
	// hand-built networks, which still get deterministic annotations.
	AnnotSeed int64

	ifaceByAddr map[netx.Addr]*Iface
	ixpSessions []IXPSession
	idx         *graphIndex
}

// NewNetwork returns an empty network ready for construction.
func NewNetwork() *Network {
	return &Network{
		ASes:        make(map[ASN]*AS),
		MultiOrigin: make(map[netx.Prefix][]ASN),
		ifaceByAddr: make(map[netx.Addr]*Iface),
		Tags:        make(map[string]ASN),
	}
}

// AddAS creates and registers an AS.
func (n *Network) AddAS(asn ASN, tier Tier, org string) *AS {
	if _, dup := n.ASes[asn]; dup {
		panic(fmt.Sprintf("topo: duplicate %v", asn))
	}
	a := &AS{ASN: asn, Tier: tier, Org: org, neighbors: make(map[ASN]Rel)}
	n.ASes[asn] = a
	return a
}

// AddRouter creates a router owned by asn.
func (n *Network) AddRouter(asn ASN, name string, lon float64) *Router {
	r := &Router{ID: RouterID(len(n.Routers)), Owner: asn, Name: name, Longitude: lon}
	n.Routers = append(n.Routers, r)
	if a := n.ASes[asn]; a != nil {
		a.Routers = append(a.Routers, r)
	}
	return r
}

// Router returns the router with the given ID, or nil.
func (n *Network) Router(id RouterID) *Router {
	if id < 0 || int(id) >= len(n.Routers) {
		return nil
	}
	return n.Routers[id]
}

// SetRel records an AS-level relationship; rel states what a is to b:
// SetRel(a, b, RelCustomer) means a is a customer of b. Afterwards
// b.RelTo(a) == RelCustomer and a.RelTo(b) == RelProvider.
func (n *Network) SetRel(a, b ASN, rel Rel) {
	asA, asB := n.ASes[a], n.ASes[b]
	if asA == nil || asB == nil {
		panic(fmt.Sprintf("topo: SetRel unknown AS %v or %v", a, b))
	}
	asA.neighbors[b] = rel.Invert()
	asB.neighbors[a] = rel
}

// RegisterIface indexes an interface address for address→interface lookup.
// Zero addresses are ignored.
func (n *Network) RegisterIface(ifc *Iface) {
	if ifc == nil || ifc.Addr.IsZero() {
		return
	}
	if prev, dup := n.ifaceByAddr[ifc.Addr]; dup && prev != ifc {
		panic(fmt.Sprintf("topo: address %v assigned twice (routers %d and %d)", ifc.Addr, prev.Router, ifc.Router))
	}
	n.ifaceByAddr[ifc.Addr] = ifc
}

// IfaceByAddr returns the interface numbered addr, or nil.
func (n *Network) IfaceByAddr(addr netx.Addr) *Iface { return n.ifaceByAddr[addr] }

// RouterByAddr returns the router owning the interface numbered addr.
func (n *Network) RouterByAddr(addr netx.Addr) *Router {
	ifc := n.ifaceByAddr[addr]
	if ifc == nil {
		return nil
	}
	return n.Router(ifc.Router)
}

// OwnerOfAddr returns the AS operating the router that holds addr
// (ground truth), or 0 if the address is unassigned.
func (n *Network) OwnerOfAddr(addr netx.Addr) ASN {
	if r := n.RouterByAddr(addr); r != nil {
		return r.Owner
	}
	return 0
}

// AddLink creates and registers a link.
func (n *Network) AddLink(kind LinkKind, subnet netx.Prefix, addrOwner ASN) *Link {
	l := &Link{Kind: kind, Subnet: subnet, AddrOwner: addrOwner}
	n.Links = append(n.Links, l)
	return l
}

// ConnectPtP joins routers a and b with a point-to-point link over subnet
// (a /31 or /30). Interface addresses are the two usable host addresses;
// a gets the lower one. Pass kind and the AS whose space numbers the subnet.
func (n *Network) ConnectPtP(a, b *Router, subnet netx.Prefix, kind LinkKind, addrOwner ASN) *Link {
	l := n.AddLink(kind, subnet, addrOwner)
	var loAddr, hiAddr netx.Addr
	switch subnet.Len {
	case 31:
		loAddr, hiAddr = subnet.First(), subnet.First()+1
	case 30:
		loAddr, hiAddr = subnet.First()+1, subnet.First()+2
	default:
		panic(fmt.Sprintf("topo: point-to-point subnet must be /30 or /31, got %v", subnet))
	}
	ifa := a.AddIface(loAddr, l)
	ifb := b.AddIface(hiAddr, l)
	n.RegisterIface(ifa)
	n.RegisterIface(ifb)
	return l
}

// InterdomainLinks returns the ground-truth interdomain links attached to
// asn: every interdomain point-to-point link with one side in asn, plus
// every pair (asn's router, member router) implied by IXP peering sessions
// recorded in sessions (nil sessions means point-to-point links only).
func (n *Network) InterdomainLinks(asn ASN) []InterdomainLinkTruth {
	var out []InterdomainLinkTruth
	for _, l := range n.Links {
		if l.Kind != LinkInterdomain || len(l.Ifaces) != 2 {
			continue
		}
		r0 := n.Router(l.Ifaces[0].Router)
		r1 := n.Router(l.Ifaces[1].Router)
		switch {
		case r0.Owner == asn && r1.Owner != asn:
			out = append(out, InterdomainLinkTruth{Link: l, NearAS: asn, FarAS: r1.Owner, NearRtr: r0.ID, FarRtr: r1.ID})
		case r1.Owner == asn && r0.Owner != asn:
			out = append(out, InterdomainLinkTruth{Link: l, NearAS: asn, FarAS: r0.Owner, NearRtr: r1.ID, FarRtr: r0.ID})
		}
	}
	// Fully ordered: (NearRtr, FarRtr) ties are possible when parallel
	// links join the same router pair, and sort.Slice is unstable, so a
	// tie would let map churn elsewhere reorder callers' "first link"
	// (mapdb's mutation schedule picks border routers that way). The
	// first interface address is unique per link and pins the order.
	sort.Slice(out, func(i, j int) bool {
		if out[i].NearRtr != out[j].NearRtr {
			return out[i].NearRtr < out[j].NearRtr
		}
		if out[i].FarRtr != out[j].FarRtr {
			return out[i].FarRtr < out[j].FarRtr
		}
		return out[i].Link.Ifaces[0].Addr < out[j].Link.Ifaces[0].Addr
	})
	return out
}

// TrueNeighbors returns the ground-truth AS-level neighbor set of asn
// (all relationship kinds), sorted.
func (n *Network) TrueNeighbors(asn ASN) []ASNeighbor {
	a := n.ASes[asn]
	if a == nil {
		return nil
	}
	return a.Neighbors()
}

// OriginTable builds the ground-truth prefix→origins mapping over announced
// prefixes. Multi-origin prefixes carry all their origins.
func (n *Network) OriginTable() *netx.Trie[[]ASN] {
	var tr netx.Trie[[]ASN]
	for asn, a := range n.ASes {
		for _, p := range a.Prefixes {
			if cur, ok := tr.Exact(p); ok {
				tr.Insert(p, append(cur, asn))
			} else {
				tr.Insert(p, []ASN{asn})
			}
		}
	}
	return &tr
}

// Siblings returns the set of ASNs sharing an organization with asn
// (including asn itself).
func (n *Network) Siblings(asn ASN) []ASN {
	a := n.ASes[asn]
	if a == nil {
		return nil
	}
	var out []ASN
	for other, o := range n.ASes {
		if o.Org == a.Org {
			out = append(out, other)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ASNs returns all ASNs in deterministic (sorted) order.
func (n *Network) ASNs() []ASN {
	out := make([]ASN, 0, len(n.ASes))
	for asn := range n.ASes {
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats summarizes the network for documentation and logging.
type Stats struct {
	ASes, Routers, Links, InterdomainLinks, Prefixes, IXPs, VPs int
}

// Stats computes summary counts.
func (n *Network) Stats() Stats {
	s := Stats{ASes: len(n.ASes), Routers: len(n.Routers), Links: len(n.Links), IXPs: len(n.IXPs), VPs: len(n.VPs)}
	for _, l := range n.Links {
		if l.Kind == LinkInterdomain {
			s.InterdomainLinks++
		}
	}
	for _, a := range n.ASes {
		s.Prefixes += len(a.Prefixes)
	}
	return s
}
