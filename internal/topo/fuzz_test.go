package topo

import (
	"bytes"
	"math"
	"testing"
)

// fuzzBound maps v into [-1, cap]: negative and zero values exercise the
// withDefaults floors, while the cap keeps fuzzed worlds at test scale.
func fuzzBound(v, cap int) int {
	if v < 0 {
		v = -v
	}
	if v < 0 { // math.MinInt
		return -1
	}
	return v%(cap+2) - 1
}

// fuzzMix decodes a VisMix from raw bytes: (archetype, weight) pairs, with
// out-of-range archetypes, negative weights, and NaN all representable —
// sanitizeMix must reject every invalid combination.
func fuzzMix(b []byte) VisMix {
	if len(b) == 0 {
		return nil
	}
	var m VisMix
	for i := 0; i+1 < len(b); i += 2 {
		w := float64(int8(b[i+1]))
		if b[i+1] == 254 {
			w = math.NaN()
		}
		m = append(m, VisWeight{Vis: Visibility(int8(b[i])), W: w})
	}
	return m
}

func checkMix(t *testing.T, class string, m VisMix) {
	t.Helper()
	if len(m) == 0 {
		t.Fatalf("%s: withDefaults emitted an empty mix", class)
	}
	var total float64
	for _, w := range m {
		if !(w.W >= 0) {
			t.Fatalf("%s: negative/NaN weight %v survived withDefaults", class, w.W)
		}
		if w.Vis < VisFirewall || w.Vis > VisSiblingUpstream {
			t.Fatalf("%s: out-of-range archetype %d survived withDefaults", class, w.Vis)
		}
		total += w.W
	}
	if !(total > 0) {
		t.Fatalf("%s: zero-total mix survived withDefaults", class)
	}
}

// FuzzGenerate drives the generator over bounded Profile values: whatever
// the fuzzer invents, withDefaults must emit a valid profile, Generate must
// not panic, every link must come out annotated, and the serialized world
// must round-trip as a fixed point.
func FuzzGenerate(f *testing.F) {
	// Seed corpus: the six original built-in profiles (by their field
	// values) plus one entry exercising every extension knob at once.
	f.Add(int64(1), 2, 1, 1, 1, 2, 6, 1, 3, 5, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0.3, 0.0, 0.0, int8(0), int8(0), []byte(nil))           // tiny
	f.Add(int64(2), 4, 2, 1, 1, 2, 30, 3, 28, 30, 2, 1, 2, 0, 0, 0, 0, 0, 0, 0.2, 0.0, 0.0, int8(1), int8(0), []byte(nil))        // r&e
	f.Add(int64(3), 3, 2, 1, 2, 4, 12, 1, 8, 15, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0.1, 0.0, 0.0, int8(0), int8(0), []byte(nil))         // small-access
	f.Add(int64(4), 13, 3, 19, 5, 26, 217, 2, 11, 40, 3, 3, 8, 2, 0, 0, 0, 16, 48, 0.15, 0.0, 0.0, int8(0), int8(0), []byte(nil)) // large-access
	f.Add(int64(5), 13, 4, 1, 0, 18, 411, 1, 15, 25, 3, 4, 10, 0, 0, 0, 0, 0, 0, 0.25, 0.0, 0.0, int8(2), int8(0), []byte(nil))   // tier1
	f.Add(int64(6), 2, 1, 1, 3, 6, 0, 1, 10, 20, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0.0, 0.0, 0.0, int8(3), int8(0), []byte(nil))         // enterprise
	f.Add(int64(7), 3, 1, 2, 1, 2, 5, 2, 5, 4, 1, 1, 1, 1, 4, 12, 20, 4, 8, 0.2, 0.5, 0.4, int8(0), int8(1),
		[]byte{0, 10, 3, 5, 99, 1, 2, 254}) // all extension knobs + a dirty mix

	f.Fuzz(func(t *testing.T, seed int64,
		regions, borders, vps, provs, peers, custs, ixps, perIXP, distant,
		maxChild, moas, pa, sibs, hgLinks, hgPfx, hgFan, cdnLinks, cdnPfx int,
		ctf, rpf, ibf float64, tier, vpPlace int8, visBytes []byte) {

		hostTiers := []Tier{TierAccess, TierRE, TierTier1, TierStub, TierTransit}
		ti := int(tier)
		if ti < 0 {
			ti = -ti
		}
		if ti < 0 {
			ti = 0
		}
		p := Profile{
			Name:              "fuzz",
			HostTier:          hostTiers[ti%len(hostTiers)],
			NumRegions:        fuzzBound(regions, 8),
			BordersPerRegion:  fuzzBound(borders, 4),
			NumVPs:            fuzzBound(vps, 8),
			HostSiblings:      fuzzBound(sibs, 3),
			NumProviders:      fuzzBound(provs, 4),
			NumPeers:          fuzzBound(peers, 10),
			NumCustomers:      fuzzBound(custs, 48),
			NumIXPs:           fuzzBound(ixps, 3),
			IXPPeersPerIXP:    fuzzBound(perIXP, 10),
			DistantPerTransit: fuzzBound(distant, 12),
			CustTransitFrac:   ctf,
			CustMaxChildren:   fuzzBound(maxChild, 4),
			MOASPairs:         fuzzBound(moas, 4),
			PADelegations:     fuzzBound(pa, 8),
			RemotePeerFrac:    rpf,
			IXPBilateralFrac:  ibf,
			VPPlacement:       VPPlacement(vpPlace),
			CustVis:           fuzzMix(visBytes),
			PeerVis:           fuzzMix(visBytes),
			ProvVis:           fuzzMix(visBytes),
			IXPVis:            fuzzMix(visBytes),
		}
		if hgLinks != 0 {
			p.Hypergiants = []HypergiantSpec{{
				Name:         "hg-fuzz",
				Links:        fuzzBound(hgLinks, 5),
				Prefixes:     fuzzBound(hgPfx, 16),
				AccessFanout: fuzzBound(hgFan, 24),
			}}
		}
		if cdnLinks != 0 {
			p.CDNs = []CDNSpec{{
				Name:       "cdn-fuzz",
				Links:      fuzzBound(cdnLinks, 6),
				Prefixes:   fuzzBound(cdnPfx, 12),
				Policy:     AnnouncePolicy(ti % 3),
				Visibility: VisOnenet,
			}}
		}
		// CustTransitFrac is not range-checked by withDefaults (the
		// generator compares it against Float64() draws, where any value
		// degenerates to all-or-nothing, both valid); keep the fuzz input
		// finite so the comparison is well defined.
		if math.IsNaN(p.CustTransitFrac) || math.IsInf(p.CustTransitFrac, 0) {
			p.CustTransitFrac = 0
		}

		d := p.withDefaults()
		checkMix(t, "cust", d.CustVis)
		checkMix(t, "peer", d.PeerVis)
		checkMix(t, "prov", d.ProvVis)
		checkMix(t, "ixp", d.IXPVis)
		if d.RemotePeerFrac < 0 || d.RemotePeerFrac > 1 || d.IXPBilateralFrac < 0 || d.IXPBilateralFrac > 1 {
			t.Fatalf("fracs not clamped: remote=%v bilateral=%v", d.RemotePeerFrac, d.IXPBilateralFrac)
		}
		if d.VPPlacement < VPSpreadEven || d.VPPlacement > VPSingleRegion {
			t.Fatalf("VPPlacement %d survived withDefaults", d.VPPlacement)
		}

		n := Generate(p, seed)
		if len(n.VPs) != d.NumVPs {
			t.Fatalf("VPs = %d, want %d", len(n.VPs), d.NumVPs)
		}
		for _, l := range n.Links {
			if l.Annot == (Annotation{}) {
				t.Fatalf("link %v not annotated", l.Subnet)
			}
		}

		var first bytes.Buffer
		if err := n.Save(&first); err != nil {
			t.Fatalf("save: %v", err)
		}
		loaded, err := Load(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("load: %v", err)
		}
		var second bytes.Buffer
		if err := loaded.Save(&second); err != nil {
			t.Fatalf("re-save: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("save→load→save not a fixed point")
		}
	})
}
