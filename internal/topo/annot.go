package topo

import (
	"time"

	"bdrmap/internal/netx"
)

// Link annotations: every link carries a deterministic latency / bandwidth /
// geography record. The values are derived from a per-AS seeded hash of
// (Network.AnnotSeed, owning AS, subnet) rather than from the generator's
// sequential RNG, so they are invariant under generation order — adding a
// neighbor class, reordering profile fields, or generating under a different
// worker count cannot shift another link's annotation. The baseline latency
// reproduces the probe engine's geographic formula exactly (500µs
// serialization + 0.35ms per degree of longitude), so annotating a world
// changes no measured RTT; the hash only decides the bandwidth class and the
// remote-peering placement below.

// Annotation records the physical characteristics of one link.
type Annotation struct {
	// Latency is the one-way propagation + serialization delay of crossing
	// the link (excluding queueing and any per-interface attachment circuit).
	Latency time.Duration
	// BandwidthMbps is the link's nominal capacity class.
	BandwidthMbps int
	// LonA and LonB are the longitudes of the link's two endpoints (equal
	// for IXP LANs, whose fabric is a single facility).
	LonA, LonB float64
}

// mix64 is the splitmix64 finalizer: a cheap, high-quality 64-bit mixer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// asSeed derives the per-AS annotation stream from the network seed.
func asSeed(seed int64, asn ASN) uint64 {
	return mix64(mix64(uint64(seed)) ^ uint64(asn))
}

// linkDraw derives the per-link draw within an AS's stream: the subnet is
// the link's stable identity (unique per network, survives reordering).
func linkDraw(seed int64, asn ASN, subnet netx.Prefix) uint64 {
	return mix64(asSeed(seed, asn) ^ mix64(uint64(subnet.First())<<8|uint64(subnet.Len)))
}

// bandwidth classes per link kind, in Mbps. IXP fabrics and backbone links
// run fat; interdomain edges span the 10G–100G range.
var (
	bwLAN         = []int{100_000, 400_000}
	bwInternal    = []int{40_000, 100_000, 400_000}
	bwInterdomain = []int{10_000, 40_000, 100_000}
)

// annotateLink computes and stores l's annotation. The latency reproduces
// the geographic delay model byte-for-byte: 500µs plus 0.35ms per degree of
// longitude between the link's two endpoint routers. IXP LANs and
// single-interface stub links are a single facility (zero geographic gap);
// a remote member's distance is carried by its interface AttachDelay, not
// by the shared fabric.
func (n *Network) annotateLink(l *Link) {
	var lonA, lonB float64
	if len(l.Ifaces) > 0 {
		if r := n.Router(l.Ifaces[0].Router); r != nil {
			lonA = r.Longitude
		}
	}
	lonB = lonA
	if l.Kind != LinkIXPLAN && len(l.Ifaces) > 1 {
		if r := n.Router(l.Ifaces[1].Router); r != nil {
			lonB = r.Longitude
		}
	}
	gap := lonA - lonB
	if gap < 0 {
		gap = -gap
	}
	var tiers []int
	switch l.Kind {
	case LinkIXPLAN:
		tiers = bwLAN
	case LinkInternal:
		tiers = bwInternal
	default:
		tiers = bwInterdomain
	}
	draw := linkDraw(n.AnnotSeed, l.AddrOwner, l.Subnet)
	l.Annot = Annotation{
		Latency:       500*time.Microsecond + time.Duration(gap*0.35*float64(time.Millisecond)),
		BandwidthMbps: tiers[draw%uint64(len(tiers))],
		LonA:          lonA,
		LonB:          lonB,
	}
}

// annotate fills the annotation of every link that does not have one yet.
// Links loaded from a serialized network or already annotated by a previous
// Build keep their values (mutation must not perturb surviving links).
func (n *Network) annotate() {
	for _, l := range n.Links {
		if l.Annot == (Annotation{}) {
			n.annotateLink(l)
		}
	}
}

// remoteAttachment places a remote-peering IXP member: a metro at least 25
// degrees of longitude from the IXP (so the placement visibly violates the
// distance assumptions §5.4's hop metrics lean on) and the one-way delay of
// the member's long-haul layer-2 circuit into the fabric. Both are drawn
// from the member's per-AS hash stream, independent of generation order.
func remoteAttachment(seed int64, asn ASN, ixpLon float64) (lon float64, circuit time.Duration) {
	h := asSeed(seed, asn)
	far := make([]Region, 0, len(USRegions))
	for _, r := range USRegions {
		if geoDist(r.Longitude, ixpLon) >= 25 {
			far = append(far, r)
		}
	}
	if len(far) == 0 {
		far = USRegions
	}
	r := far[h%uint64(len(far))]
	return r.Longitude, 5*time.Millisecond + time.Duration((h>>8)%35)*time.Millisecond
}
