// Package topo models the synthetic router-level Internet that substitutes
// for the live network the bdrmap paper measured. It generates an AS-level
// graph with business relationships, a router-level topology with the
// address-assignment conventions the paper's heuristics depend on
// (provider-supplied /30 and /31 interconnection subnets, IXP peering LANs,
// provider-aggregatable delegations, unrouted infrastructure space), and
// per-router response behaviours (firewalled edges, silent routers, virtual
// routers, third-party source address selection) that reproduce the
// traceroute idiosyncrasies of §4 of the paper.
//
// The topology carries its own ground truth: every router knows its owner
// AS and every interdomain link knows both parties, so inference accuracy
// can be validated exactly as §5.6 validates against operator ground truth.
package topo

import (
	"fmt"
	"sort"

	"bdrmap/internal/netx"
)

// ASN is an autonomous system number.
type ASN uint32

// String returns the conventional "ASxxxx" rendering.
func (a ASN) String() string { return fmt.Sprintf("AS%d", uint32(a)) }

// Rel is the business relationship between two ASes, expressed from the
// perspective of the first AS: RelCustomer means "the first AS is a
// customer of the second".
type Rel int8

// Relationship values.
const (
	RelNone     Rel = iota // no relationship / unknown
	RelCustomer            // first AS buys transit from second (c2p)
	RelProvider            // first AS sells transit to second (p2c)
	RelPeer                // settlement-free peering (p2p)
	RelSibling             // same organization
)

// Invert flips the perspective of a relationship.
func (r Rel) Invert() Rel {
	switch r {
	case RelCustomer:
		return RelProvider
	case RelProvider:
		return RelCustomer
	default:
		return r
	}
}

func (r Rel) String() string {
	switch r {
	case RelCustomer:
		return "customer"
	case RelProvider:
		return "provider"
	case RelPeer:
		return "peer"
	case RelSibling:
		return "sibling"
	default:
		return "none"
	}
}

// Tier classifies an AS by its role in the synthetic topology. The roles
// mirror the network types the paper studies and validates against.
type Tier int8

// Tier values.
const (
	TierStub    Tier = iota // edge network, no customers
	TierAccess              // access/eyeball network
	TierTransit             // regional or national transit provider
	TierTier1               // member of the Tier-1 clique
	TierCDN                 // content network peering widely
	TierIXP                 // the IXP operator's own AS
	TierRE                  // research & education network
)

func (t Tier) String() string {
	switch t {
	case TierStub:
		return "stub"
	case TierAccess:
		return "access"
	case TierTransit:
		return "transit"
	case TierTier1:
		return "tier1"
	case TierCDN:
		return "cdn"
	case TierIXP:
		return "ixp"
	case TierRE:
		return "r&e"
	default:
		return "unknown"
	}
}

// AnnouncePolicy controls where an AS announces each of its prefixes when it
// has multiple interconnection links to the same neighbor. The paper's §6
// contrasts Level3 (hot-potato: every prefix announced at every link) with
// Akamai (each prefix announced at exactly one link) and Google (coastal).
type AnnouncePolicy int8

// AnnouncePolicy values.
const (
	AnnounceEverywhere AnnouncePolicy = iota // all prefixes on all links (Level3-like)
	AnnouncePinned                           // each prefix pinned to one link (Akamai-like)
	AnnounceCoastal                          // prefixes split between westmost and eastmost links (Google-like)
)

func (p AnnouncePolicy) String() string {
	switch p {
	case AnnounceEverywhere:
		return "everywhere"
	case AnnouncePinned:
		return "pinned"
	case AnnounceCoastal:
		return "coastal"
	default:
		return "unknown"
	}
}

// AS is one autonomous system in the synthetic topology.
type AS struct {
	ASN  ASN
	Tier Tier
	Org  string // organization identifier; sibling ASes share an Org

	// Prefixes the AS originates in BGP, in announcement order.
	Prefixes []netx.Prefix

	// Infra is the address space the AS numbers its router interfaces and
	// interconnection subnets from. It may equal a announced prefix, or be
	// separate space that is only visible in RIR delegation files
	// (AnnounceInfra=false models operators who do not route their
	// infrastructure addresses, §5.4.3).
	Infra         netx.Prefix
	AnnounceInfra bool

	// Policy controls per-link prefix announcement (§6).
	Policy AnnouncePolicy

	// Routers owned by this AS, in creation order.
	Routers []*Router

	// neighbors at the AS level, keyed by neighbor ASN.
	neighbors map[ASN]Rel
}

// Neighbors returns the AS-level neighbors and relationships, sorted by ASN.
func (a *AS) Neighbors() []ASNeighbor {
	out := make([]ASNeighbor, 0, len(a.neighbors))
	for asn, rel := range a.neighbors {
		out = append(out, ASNeighbor{ASN: asn, Rel: rel})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}

// RelTo returns what asn is to this AS: RelCustomer means "asn is my
// customer", RelProvider "asn is my provider". RelNone if not adjacent.
func (a *AS) RelTo(asn ASN) Rel { return a.neighbors[asn] }

// ASNeighbor pairs a neighbor ASN with what that neighbor is to the AS
// that returned it (RelCustomer: the neighbor is a customer).
type ASNeighbor struct {
	ASN ASN
	Rel Rel
}

// OriginatesAddr reports whether addr falls in one of the AS's announced
// prefixes. Note this is origin truth, not the public-BGP view.
func (a *AS) OriginatesAddr(addr netx.Addr) bool {
	for _, p := range a.Prefixes {
		if p.Contains(addr) {
			return true
		}
	}
	return false
}
