package topo

import (
	"reflect"
	"sort"
	"testing"

	"bdrmap/internal/netx"
)

func mustPrefix(t *testing.T, s string) netx.Prefix {
	t.Helper()
	p, err := netx.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// InterdomainLinks feeds mapdb's mutation schedule ("attach at the first
// border router") and the rounds rng draw, so its order must be total:
// parallel links between the same router pair used to tie on
// (NearRtr, FarRtr) and sort.Slice's instability let unrelated map churn
// reorder them. The first interface address now breaks the tie.
func TestInterdomainLinksOrderTotal(t *testing.T) {
	build := func(reversed bool) *Network {
		n := NewNetwork()
		n.AddAS(100, TierAccess, "org-a")
		n.AddAS(200, TierAccess, "org-b")
		near := n.AddRouter(100, "near", 0)
		far := n.AddRouter(200, "far", 0)
		subnets := []string{"10.0.0.0/31", "10.0.0.2/31"}
		if reversed {
			subnets[0], subnets[1] = subnets[1], subnets[0]
		}
		for _, s := range subnets {
			n.ConnectPtP(near, far, mustPrefix(t, s), LinkInterdomain, 100)
		}
		return n
	}

	want := []netx.Addr{mustPrefix(t, "10.0.0.0/31").First(), mustPrefix(t, "10.0.0.2/31").First()}
	for _, reversed := range []bool{false, true} {
		n := build(reversed)
		links := n.InterdomainLinks(100)
		if len(links) != 2 {
			t.Fatalf("reversed=%v: got %d links, want 2", reversed, len(links))
		}
		var got []netx.Addr
		for _, lt := range links {
			if lt.NearRtr != 0 || lt.FarRtr != 1 {
				t.Fatalf("reversed=%v: unexpected endpoints %+v", reversed, lt)
			}
			got = append(got, lt.Link.Ifaces[0].Addr)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("reversed=%v: parallel links out of address order: got %v want %v", reversed, got, want)
		}
	}
}

// On a generated world the returned order must be strictly increasing in
// (NearRtr, FarRtr, first interface address) — i.e. fully determined, with
// no equal keys left for an unstable sort to permute — and identical
// across repeated calls.
func TestInterdomainLinksOrderDeterministic(t *testing.T) {
	n := Generate(TinyProfile(), 1)
	links := n.InterdomainLinks(n.HostASN)
	if len(links) == 0 {
		t.Fatal("no interdomain links in tiny profile")
	}
	less := func(a, b InterdomainLinkTruth) bool {
		if a.NearRtr != b.NearRtr {
			return a.NearRtr < b.NearRtr
		}
		if a.FarRtr != b.FarRtr {
			return a.FarRtr < b.FarRtr
		}
		return a.Link.Ifaces[0].Addr < b.Link.Ifaces[0].Addr
	}
	if !sort.SliceIsSorted(links, func(i, j int) bool { return less(links[i], links[j]) }) {
		t.Error("InterdomainLinks not sorted by (NearRtr, FarRtr, addr)")
	}
	for i := 1; i < len(links); i++ {
		if !less(links[i-1], links[i]) {
			t.Errorf("order not strict at %d: %+v vs %+v", i, links[i-1], links[i])
		}
	}
	for trial := 0; trial < 5; trial++ {
		again := n.InterdomainLinks(n.HostASN)
		if !reflect.DeepEqual(links, again) {
			t.Fatalf("trial %d: InterdomainLinks order changed across calls", trial)
		}
	}
}
