package topo

import (
	"fmt"

	"bdrmap/internal/netx"
)

// Topology mutation: the CAIDA deployment runs bdrmap continuously and
// diffs successive border maps to track interconnection churn (new
// customers turned up, links de-provisioned). These helpers change a
// generated network in place; call Build again afterwards and measure with
// a fresh probe engine (routing tables and caches are invalidated).

// AttachCustomer provisions a new customer of the host network: a new AS
// announcing one prefix, one border router, and an interdomain link
// numbered from the host's space at the given host border router.
// The new customer responds normally but firewalls its interior (the most
// common archetype). Returns the new ASN.
func AttachCustomer(n *Network, hostBorder RouterID, asn ASN) (ASN, error) {
	if n.Alloc == nil {
		return 0, fmt.Errorf("topo: network has no allocator (hand-built?)")
	}
	br := n.Router(hostBorder)
	if br == nil {
		return 0, fmt.Errorf("topo: no router %d", hostBorder)
	}
	if !n.sameOrgAsHost(br.Owner) {
		return 0, fmt.Errorf("topo: router %d not operated by the host", hostBorder)
	}
	if _, dup := n.ASes[asn]; dup {
		return 0, fmt.Errorf("topo: %v already exists", asn)
	}
	host := n.ASes[n.HostASN]

	c := n.AddAS(asn, TierStub, fmt.Sprintf("org-%d", asn))
	p := n.Alloc.Next(20)
	c.Prefixes = []netx.Prefix{p}
	c.Infra = p
	c.AnnounceInfra = true
	n.SetRel(asn, n.HostASN, RelCustomer)

	border := n.AddRouter(asn, "bdr1", br.Longitude)
	border.Behavior.FirewallEdge = true
	core := n.AddRouter(asn, "core1", br.Longitude)
	n.ConnectPtP(br, border, n.Alloc.Sub(host.Infra, 31), LinkInterdomain, n.HostASN)
	n.ConnectPtP(border, core, n.Alloc.Sub(p, 31), LinkInternal, asn)
	n.SetAnchor(p, core.ID, true)
	return asn, nil
}

// AttachPeer provisions a new settlement-free peer of the host network at
// the given host border router. The peering subnet comes from the peer's
// space (the common convention between peers of similar size); the peer is
// also given a transit provider so its prefix is globally reachable, and
// it responds onenet-style (big networks answer traceroute). Returns the
// new ASN.
func AttachPeer(n *Network, hostBorder RouterID, asn ASN, transit ASN) (ASN, error) {
	if n.Alloc == nil {
		return 0, fmt.Errorf("topo: network has no allocator (hand-built?)")
	}
	br := n.Router(hostBorder)
	if br == nil || !n.sameOrgAsHost(br.Owner) {
		return 0, fmt.Errorf("topo: invalid host border router %d", hostBorder)
	}
	t := n.ASes[transit]
	if t == nil || len(t.Routers) == 0 {
		return 0, fmt.Errorf("topo: transit %v unknown or router-less", transit)
	}
	if _, dup := n.ASes[asn]; dup {
		return 0, fmt.Errorf("topo: %v already exists", asn)
	}

	p := n.AddAS(asn, TierTransit, fmt.Sprintf("org-%d", asn))
	pfx := n.Alloc.Next(18)
	p.Prefixes = []netx.Prefix{pfx}
	p.Infra = pfx
	p.AnnounceInfra = true
	n.SetRel(asn, n.HostASN, RelPeer)
	n.SetRel(asn, transit, RelCustomer)

	border := n.AddRouter(asn, "bdr1", br.Longitude)
	core := n.AddRouter(asn, "core1", br.Longitude)
	agg := n.AddRouter(asn, "agg1", br.Longitude)
	agg.Behavior.FirewallEdge = true
	n.ConnectPtP(br, border, n.Alloc.Sub(pfx, 31), LinkInterdomain, asn)
	n.ConnectPtP(border, core, n.Alloc.Sub(pfx, 31), LinkInternal, asn)
	n.ConnectPtP(core, agg, n.Alloc.Sub(pfx, 31), LinkInternal, asn)
	n.ConnectPtP(t.Routers[len(t.Routers)-1], core,
		n.Alloc.Sub(t.Infra, 31), LinkInterdomain, transit)
	n.SetAnchor(pfx, agg.ID, true)
	return asn, nil
}

// Depeer removes the interdomain link(s) between the host and neighbor:
// the physical de-provisioning of an interconnect. BGP sessions across an
// IXP LAN — route-server or bilateral — count as interconnects too and are
// torn down; the LAN and its interfaces survive, since they belong to the
// IXP operator, not the departing pair. The neighbor AS and its
// relationship survive; with no remaining attachment its prefixes route
// via any other transit it has. Returns the number of links plus sessions
// removed.
func Depeer(n *Network, neighbor ASN) int {
	removed := 0
	keep := n.Links[:0]
	for _, l := range n.Links {
		drop := false
		if l.Kind == LinkInterdomain && len(l.Ifaces) == 2 {
			a := n.Router(l.Ifaces[0].Router)
			b := n.Router(l.Ifaces[1].Router)
			hostSide := n.sameOrgAsHost(a.Owner) || n.sameOrgAsHost(b.Owner)
			neighborSide := a.Owner == neighbor || b.Owner == neighbor
			if hostSide && neighborSide {
				drop = true
			}
		}
		if drop {
			removed++
			for _, ifc := range l.Ifaces {
				n.detachIface(ifc)
			}
		} else {
			keep = append(keep, l)
		}
	}
	n.Links = keep
	keepSess := n.ixpSessions[:0]
	for _, s := range n.ixpSessions {
		hostSide := n.sameOrgAsHost(s.A) || n.sameOrgAsHost(s.B)
		neighborSide := s.A == neighbor || s.B == neighbor
		if hostSide && neighborSide {
			removed++
			continue
		}
		keepSess = append(keepSess, s)
	}
	n.ixpSessions = keepSess
	return removed
}

// sameOrgAsHost reports whether asn belongs to the hosting organization.
func (n *Network) sameOrgAsHost(asn ASN) bool {
	a, h := n.ASes[asn], n.ASes[n.HostASN]
	return a != nil && h != nil && a.Org == h.Org
}

// detachIface removes an interface from its router and the address index.
func (n *Network) detachIface(ifc *Iface) {
	if ifc == nil {
		return
	}
	delete(n.ifaceByAddr, ifc.Addr)
	r := n.Router(ifc.Router)
	if r == nil {
		return
	}
	keep := r.Ifaces[:0]
	for _, x := range r.Ifaces {
		if x != ifc {
			keep = append(keep, x)
		}
	}
	r.Ifaces = keep
}
