package topo

// Visibility is the response archetype of a neighbor network: how much of
// the neighbor a traceroute entering it can observe, and which addressing
// convention its interconnection uses. Each archetype is constructed so
// that a specific bdrmap heuristic (§5.4) is the one that must identify the
// neighbor's border router; Table 1 of the paper reports how often each
// heuristic fired per neighbor class, which the generator's mixes reproduce.
type Visibility int8

// Visibility archetypes.
const (
	// VisFirewall: interconnection numbered from the host network's space;
	// the neighbor border answers with that (host-space) address and
	// firewalls everything deeper (§5.4.2).
	VisFirewall Visibility = iota

	// VisFirewallOwnSpace: like VisFirewall but the subnet comes from the
	// neighbor's own space, so plain IP-AS mapping suffices (§5.4.6 "IP-AS").
	VisFirewallOwnSpace

	// VisOneHop: host-space interconnection; exactly one router inside the
	// neighbor responds before a firewall. Identified via AS relationships
	// (§5.4.5 step 5.3) or, when the neighbor is invisible in BGP, the
	// hidden-peer step 5.5.
	VisOneHop

	// VisOnenet: two or more consecutive responding routers inside the
	// neighbor (§5.4.4 "onenet").
	VisOnenet

	// VisUnrouted: the neighbor numbers its internal routers from
	// unannounced space (§5.4.3).
	VisUnrouted

	// VisThirdParty: the interconnection subnet is provider-aggregatable
	// space from the neighbor's *other* provider, so the neighbor border
	// answers with a third-party address (§5.4.5 steps 5.1/5.2).
	VisThirdParty

	// VisSilent: the neighbor never sends any ICMP; bdrmap can only place
	// the interconnection at the host border router (§5.4.8 step 8.1).
	VisSilent

	// VisEchoOnly: no TTL-expired messages, but destinations answer echo
	// requests (§5.4.8 step 8.2).
	VisEchoOnly

	// VisMixedAdj: the neighbor border leads to interfaces in several ASes
	// (it is itself a border to further networks); inferred by counting
	// adjacent interfaces per AS (§5.4.6 step 6.1).
	VisMixedAdj

	// VisMultiAdj: the neighbor is multihomed to the host with adjacent
	// routers numbered from host space (§5.4.1 step 1.1).
	VisMultiAdj

	// VisSiblingUpstream: the neighbor's internal links are numbered from
	// its own customer's space (sibling organizations sharing space),
	// exercising §5.4.5 step 5.4 ("missing customer").
	VisSiblingUpstream
)

var visNames = map[Visibility]string{
	VisFirewall:         "firewall",
	VisFirewallOwnSpace: "firewall-own-space",
	VisOneHop:           "one-hop",
	VisOnenet:           "onenet",
	VisUnrouted:         "unrouted",
	VisThirdParty:       "third-party",
	VisSilent:           "silent",
	VisEchoOnly:         "echo-only",
	VisMixedAdj:         "mixed-adjacent",
	VisMultiAdj:         "multihomed-adjacent",
	VisSiblingUpstream:  "sibling-upstream",
}

func (v Visibility) String() string {
	if s, ok := visNames[v]; ok {
		return s
	}
	return "unknown"
}

// VisMix is a weighted distribution over visibility archetypes.
type VisMix []VisWeight

// VisWeight is one entry of a VisMix.
type VisWeight struct {
	Vis Visibility
	W   float64
}

// Profile describes one evaluation scenario: the shape of the host network
// and its surrounding synthetic Internet. The four predefined profiles
// mirror the four validation networks of §5.6 plus the measurement
// deployment of §6.
type Profile struct {
	Name     string
	HostTier Tier

	// Host network shape.
	NumRegions       int // geographic PoPs
	BordersPerRegion int
	NumVPs           int
	HostSiblings     int // extra ASNs in the host organization

	// Neighbor counts by class (BGP-visible).
	NumProviders int
	NumPeers     int
	NumCustomers int

	// BigPeerLinkCounts gives the number of interdomain links for the
	// first len() peers (e.g. the 45-link Tier-1 peer of §6); remaining
	// peers get 1-3 links.
	BigPeerLinkCounts []int

	// CDN peers with selective-announcement policies (for figures 15/16).
	CDNs []CDNSpec

	// Customer structure.
	CustTransitFrac float64 // fraction of customers with their own customers
	CustMaxChildren int

	// IXPs the host participates in, and route-server peers per IXP
	// (these are the "trace"-only neighbors of Table 1).
	NumIXPs        int
	IXPPeersPerIXP int

	// DistantPerTransit content ASes hang off each provider/big peer, so
	// traceroutes toward them exercise provider and peer border routers.
	DistantPerTransit int

	// Visibility mixes per neighbor class.
	CustVis, PeerVis, ProvVis, IXPVis VisMix

	// MOASPairs co-originate a prefix from two ASes (§4 challenge 7).
	MOASPairs int

	// PADelegations is the number of customers whose announced prefix is
	// carved from the host's block (provider-aggregatable space).
	PADelegations int
}

// CDNSpec describes a CDN peer with a per-prefix announcement policy.
type CDNSpec struct {
	Name       string
	Links      int // number of interconnection links with the host
	Prefixes   int
	Policy     AnnouncePolicy
	Visibility Visibility
}

// Default visibility mixes, tuned to reproduce the row shape of Table 1.
func defaultCustVis() VisMix {
	return VisMix{
		{VisFirewall, 0.56},
		{VisOneHop, 0.22},
		{VisOnenet, 0.05},
		{VisSilent, 0.055},
		{VisEchoOnly, 0.015},
		{VisThirdParty, 0.02},
		{VisUnrouted, 0.01},
		{VisMixedAdj, 0.02},
		{VisFirewallOwnSpace, 0.02},
		{VisMultiAdj, 0.01},
		{VisSiblingUpstream, 0.01},
	}
}

func defaultPeerVis() VisMix {
	return VisMix{
		{VisOnenet, 0.39},
		{VisOneHop, 0.38},
		{VisFirewall, 0.06},
		{VisMixedAdj, 0.07},
		{VisSilent, 0.04},
		{VisUnrouted, 0.03},
		{VisFirewallOwnSpace, 0.02},
		{VisEchoOnly, 0.01},
	}
}

func defaultProvVis() VisMix {
	return VisMix{
		{VisOnenet, 0.85},
		{VisMixedAdj, 0.08},
		{VisFirewallOwnSpace, 0.07},
	}
}

func defaultIXPVis() VisMix {
	return VisMix{
		{VisFirewall, 0.37},
		{VisOnenet, 0.27},
		{VisOneHop, 0.24},
		{VisThirdParty, 0.05},
		{VisUnrouted, 0.04},
		{VisEchoOnly, 0.03},
	}
}

func (p Profile) withDefaults() Profile {
	if p.CustVis == nil {
		p.CustVis = defaultCustVis()
	}
	if p.PeerVis == nil {
		p.PeerVis = defaultPeerVis()
	}
	if p.ProvVis == nil {
		p.ProvVis = defaultProvVis()
	}
	if p.IXPVis == nil {
		p.IXPVis = defaultIXPVis()
	}
	if p.NumRegions <= 0 {
		p.NumRegions = 1
	}
	if p.BordersPerRegion <= 0 {
		p.BordersPerRegion = 1
	}
	if p.NumVPs <= 0 {
		p.NumVPs = 1
	}
	if p.CustMaxChildren < 0 {
		p.CustMaxChildren = 0
	}
	return p
}

// REProfile models the research-and-education network of §5.6: 17 routers,
// 48 BGP neighbor ASes, presence at three IXPs.
func REProfile() Profile {
	return Profile{
		Name:              "r&e",
		HostTier:          TierRE,
		NumRegions:        4,
		BordersPerRegion:  2,
		NumVPs:            1,
		NumProviders:      1,
		NumPeers:          2,
		NumCustomers:      30,
		NumIXPs:           3,
		IXPPeersPerIXP:    28,
		CustTransitFrac:   0.2,
		CustMaxChildren:   2,
		DistantPerTransit: 30,
		MOASPairs:         1,
		PADelegations:     2,
	}
}

// LargeAccessProfile models the large U.S. access network of §5.6/§6 at a
// laptop-tractable scale: the class ratios (652 cust / 26 peer / 5 prov)
// are preserved at roughly one-third scale.
func LargeAccessProfile() Profile {
	return Profile{
		Name:             "large-access",
		HostTier:         TierAccess,
		NumRegions:       13,
		BordersPerRegion: 3,
		NumVPs:           19,
		HostSiblings:     2,
		NumProviders:     5,
		NumPeers:         26,
		NumCustomers:     217, // ≈652/3
		BigPeerLinkCounts: []int{
			45, // the Level3-like Tier-1 peer of §6
			24, // a second large transit peer
		},
		CDNs: []CDNSpec{
			{Name: "akamai-like", Links: 16, Prefixes: 48, Policy: AnnouncePinned, Visibility: VisOnenet},
			{Name: "google-like", Links: 10, Prefixes: 30, Policy: AnnounceCoastal, Visibility: VisOnenet},
			{Name: "cdn-c", Links: 8, Prefixes: 24, Policy: AnnounceEverywhere, Visibility: VisOnenet},
			{Name: "cdn-d", Links: 6, Prefixes: 16, Policy: AnnouncePinned, Visibility: VisOneHop},
			{Name: "cdn-e", Links: 4, Prefixes: 12, Policy: AnnounceEverywhere, Visibility: VisOneHop},
		},
		CustTransitFrac:   0.15,
		CustMaxChildren:   3,
		NumIXPs:           2,
		IXPPeersPerIXP:    11,
		DistantPerTransit: 40,
		MOASPairs:         3,
		PADelegations:     8,
	}
}

// Tier1Profile models the Tier-1 transit network of §5.6 at reduced scale
// (1644 cust / 70 peer / 0 prov, scaled by ~one-fourth).
func Tier1Profile() Profile {
	return Profile{
		Name:              "tier1",
		HostTier:          TierTier1,
		NumRegions:        13,
		BordersPerRegion:  4,
		NumVPs:            1,
		NumProviders:      0,
		NumPeers:          18,  // other Tier-1s / large peers
		NumCustomers:      411, // ≈1644/4
		BigPeerLinkCounts: []int{12, 8, 6},
		CustTransitFrac:   0.25,
		CustMaxChildren:   3,
		NumIXPs:           1,
		IXPPeersPerIXP:    15,
		DistantPerTransit: 25,
		MOASPairs:         4,
		PADelegations:     10,
		CustVis: VisMix{
			{VisFirewall, 0.62},
			{VisOneHop, 0.20},
			{VisOnenet, 0.065},
			{VisSilent, 0.04},
			{VisEchoOnly, 0.02},
			{VisThirdParty, 0.002},
			{VisUnrouted, 0.005},
			{VisMixedAdj, 0.008},
			{VisSiblingUpstream, 0.002},
		},
		PeerVis: VisMix{
			{VisOnenet, 0.37},
			{VisOneHop, 0.34},
			{VisFirewall, 0.09},
			{VisUnrouted, 0.05},
			{VisSilent, 0.05},
			{VisMixedAdj, 0.07},
			{VisFirewallOwnSpace, 0.02},
			{VisEchoOnly, 0.01},
		},
	}
}

// SmallAccessProfile models the small access network of §5.6 (14 routers,
// fewer than 12 interdomain links per router, three interconnection
// facilities).
func SmallAccessProfile() Profile {
	return Profile{
		Name:              "small-access",
		HostTier:          TierAccess,
		NumRegions:        3,
		BordersPerRegion:  2,
		NumVPs:            1,
		NumProviders:      2,
		NumPeers:          4,
		NumCustomers:      12,
		NumIXPs:           1,
		IXPPeersPerIXP:    8,
		CustTransitFrac:   0.1,
		CustMaxChildren:   1,
		DistantPerTransit: 15,
		MOASPairs:         1,
		PADelegations:     1,
	}
}

// EnterpriseProfile models a customer-less host: an enterprise or content
// network with transit providers and IXP peering only. It exercises the
// algorithm without the customer-dominated structure of the other
// profiles (no firewall-heuristic majority, nextas rarely applicable).
func EnterpriseProfile() Profile {
	return Profile{
		Name:     "enterprise",
		HostTier: TierStub,
		// Enterprises terminate all upstreams on one edge router per
		// site, which is what lets the fan-out disambiguation work: a
		// dedicated border per provider link is genuinely ambiguous
		// (the paper's figure 12 limitation).
		NumRegions:        2,
		BordersPerRegion:  1,
		NumVPs:            1,
		NumProviders:      3,
		NumPeers:          6,
		NumCustomers:      0,
		NumIXPs:           1,
		IXPPeersPerIXP:    10,
		DistantPerTransit: 20,
	}
}

// TinyProfile is a minimal topology for tests and the quickstart example.
func TinyProfile() Profile {
	return Profile{
		Name:              "tiny",
		HostTier:          TierAccess,
		NumRegions:        2,
		BordersPerRegion:  1,
		NumVPs:            1,
		NumProviders:      1,
		NumPeers:          2,
		NumCustomers:      6,
		NumIXPs:           1,
		IXPPeersPerIXP:    3,
		CustTransitFrac:   0.3,
		CustMaxChildren:   1,
		DistantPerTransit: 5,
		MOASPairs:         1,
		PADelegations:     1,
	}
}
