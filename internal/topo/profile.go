package topo

// Visibility is the response archetype of a neighbor network: how much of
// the neighbor a traceroute entering it can observe, and which addressing
// convention its interconnection uses. Each archetype is constructed so
// that a specific bdrmap heuristic (§5.4) is the one that must identify the
// neighbor's border router; Table 1 of the paper reports how often each
// heuristic fired per neighbor class, which the generator's mixes reproduce.
type Visibility int8

// Visibility archetypes.
const (
	// VisFirewall: interconnection numbered from the host network's space;
	// the neighbor border answers with that (host-space) address and
	// firewalls everything deeper (§5.4.2).
	VisFirewall Visibility = iota

	// VisFirewallOwnSpace: like VisFirewall but the subnet comes from the
	// neighbor's own space, so plain IP-AS mapping suffices (§5.4.6 "IP-AS").
	VisFirewallOwnSpace

	// VisOneHop: host-space interconnection; exactly one router inside the
	// neighbor responds before a firewall. Identified via AS relationships
	// (§5.4.5 step 5.3) or, when the neighbor is invisible in BGP, the
	// hidden-peer step 5.5.
	VisOneHop

	// VisOnenet: two or more consecutive responding routers inside the
	// neighbor (§5.4.4 "onenet").
	VisOnenet

	// VisUnrouted: the neighbor numbers its internal routers from
	// unannounced space (§5.4.3).
	VisUnrouted

	// VisThirdParty: the interconnection subnet is provider-aggregatable
	// space from the neighbor's *other* provider, so the neighbor border
	// answers with a third-party address (§5.4.5 steps 5.1/5.2).
	VisThirdParty

	// VisSilent: the neighbor never sends any ICMP; bdrmap can only place
	// the interconnection at the host border router (§5.4.8 step 8.1).
	VisSilent

	// VisEchoOnly: no TTL-expired messages, but destinations answer echo
	// requests (§5.4.8 step 8.2).
	VisEchoOnly

	// VisMixedAdj: the neighbor border leads to interfaces in several ASes
	// (it is itself a border to further networks); inferred by counting
	// adjacent interfaces per AS (§5.4.6 step 6.1).
	VisMixedAdj

	// VisMultiAdj: the neighbor is multihomed to the host with adjacent
	// routers numbered from host space (§5.4.1 step 1.1).
	VisMultiAdj

	// VisSiblingUpstream: the neighbor's internal links are numbered from
	// its own customer's space (sibling organizations sharing space),
	// exercising §5.4.5 step 5.4 ("missing customer").
	VisSiblingUpstream
)

var visNames = map[Visibility]string{
	VisFirewall:         "firewall",
	VisFirewallOwnSpace: "firewall-own-space",
	VisOneHop:           "one-hop",
	VisOnenet:           "onenet",
	VisUnrouted:         "unrouted",
	VisThirdParty:       "third-party",
	VisSilent:           "silent",
	VisEchoOnly:         "echo-only",
	VisMixedAdj:         "mixed-adjacent",
	VisMultiAdj:         "multihomed-adjacent",
	VisSiblingUpstream:  "sibling-upstream",
}

func (v Visibility) String() string {
	if s, ok := visNames[v]; ok {
		return s
	}
	return "unknown"
}

// VisMix is a weighted distribution over visibility archetypes.
type VisMix []VisWeight

// VisWeight is one entry of a VisMix.
type VisWeight struct {
	Vis Visibility
	W   float64
}

// Profile describes one evaluation scenario: the shape of the host network
// and its surrounding synthetic Internet. The four predefined profiles
// mirror the four validation networks of §5.6 plus the measurement
// deployment of §6.
type Profile struct {
	Name     string
	HostTier Tier

	// Host network shape.
	NumRegions       int // geographic PoPs
	BordersPerRegion int
	NumVPs           int
	HostSiblings     int // extra ASNs in the host organization

	// Neighbor counts by class (BGP-visible).
	NumProviders int
	NumPeers     int
	NumCustomers int

	// BigPeerLinkCounts gives the number of interdomain links for the
	// first len() peers (e.g. the 45-link Tier-1 peer of §6); remaining
	// peers get 1-3 links.
	BigPeerLinkCounts []int

	// CDN peers with selective-announcement policies (for figures 15/16).
	CDNs []CDNSpec

	// Customer structure.
	CustTransitFrac float64 // fraction of customers with their own customers
	CustMaxChildren int

	// IXPs the host participates in, and route-server peers per IXP
	// (these are the "trace"-only neighbors of Table 1).
	NumIXPs        int
	IXPPeersPerIXP int

	// DistantPerTransit content ASes hang off each provider/big peer, so
	// traceroutes toward them exercise provider and peer border routers.
	DistantPerTransit int

	// Visibility mixes per neighbor class.
	CustVis, PeerVis, ProvVis, IXPVis VisMix

	// MOASPairs co-originate a prefix from two ASes (§4 challenge 7).
	MOASPairs int

	// PADelegations is the number of customers whose announced prefix is
	// carved from the host's block (provider-aggregatable space).
	PADelegations int

	// RemotePeerFrac is the probability that an IXP member peers remotely:
	// its router sits in a distant metro and reaches the fabric over a
	// long-haul layer-2 circuit (high-latency LAN attachment violating the
	// distance assumptions of §5.4). Zero disables remote peering.
	RemotePeerFrac float64

	// IXPBilateralFrac is the probability that an IXP member's session with
	// the host is bilateral (visible in the public BGP view) instead of a
	// hidden route-server multilateral session. Zero keeps the historical
	// all-route-server behavior.
	IXPBilateralFrac float64

	// Hypergiants are content ASes that flatten the hierarchy: besides
	// peering with the host, each peers directly with many of the host's
	// customers (valley-free, so those shortcuts never transit the host).
	Hypergiants []HypergiantSpec

	// VPPlacement selects where vantage points attach geographically.
	VPPlacement VPPlacement
}

// HypergiantSpec describes one hypergiant content network.
type HypergiantSpec struct {
	Name string
	// Links is the number of interconnection links with the host.
	Links int
	// Prefixes is the total announced prefix count (content networks
	// announce many).
	Prefixes int
	// AccessFanout is the number of host customers the hypergiant also
	// peers with directly (capped at the customer count).
	AccessFanout int
}

// VPPlacement selects the geographic placement policy for vantage points.
// The paper's figures 15/16 show VP longitude decides which interdomain
// links hot-potato routing lets a VP observe; regional placements stress
// that dependence deliberately.
type VPPlacement int8

// VPPlacement values.
const (
	// VPSpreadEven places VPs round-robin across all regions (historical
	// default).
	VPSpreadEven VPPlacement = iota
	// VPWestCoast concentrates VPs in the western half of the footprint.
	VPWestCoast
	// VPEastCoast concentrates VPs in the eastern half of the footprint.
	VPEastCoast
	// VPSingleRegion puts every VP in region 0.
	VPSingleRegion
)

// CDNSpec describes a CDN peer with a per-prefix announcement policy.
type CDNSpec struct {
	Name       string
	Links      int // number of interconnection links with the host
	Prefixes   int
	Policy     AnnouncePolicy
	Visibility Visibility
}

// Default visibility mixes, tuned to reproduce the row shape of Table 1.
func defaultCustVis() VisMix {
	return VisMix{
		{VisFirewall, 0.56},
		{VisOneHop, 0.22},
		{VisOnenet, 0.05},
		{VisSilent, 0.055},
		{VisEchoOnly, 0.015},
		{VisThirdParty, 0.02},
		{VisUnrouted, 0.01},
		{VisMixedAdj, 0.02},
		{VisFirewallOwnSpace, 0.02},
		{VisMultiAdj, 0.01},
		{VisSiblingUpstream, 0.01},
	}
}

func defaultPeerVis() VisMix {
	return VisMix{
		{VisOnenet, 0.39},
		{VisOneHop, 0.38},
		{VisFirewall, 0.06},
		{VisMixedAdj, 0.07},
		{VisSilent, 0.04},
		{VisUnrouted, 0.03},
		{VisFirewallOwnSpace, 0.02},
		{VisEchoOnly, 0.01},
	}
}

func defaultProvVis() VisMix {
	return VisMix{
		{VisOnenet, 0.85},
		{VisMixedAdj, 0.08},
		{VisFirewallOwnSpace, 0.07},
	}
}

func defaultIXPVis() VisMix {
	return VisMix{
		{VisFirewall, 0.37},
		{VisOnenet, 0.27},
		{VisOneHop, 0.24},
		{VisThirdParty, 0.05},
		{VisUnrouted, 0.04},
		{VisEchoOnly, 0.03},
	}
}

// sanitizeMix returns m unless it is nil, empty, or carries a negative,
// NaN, or all-zero weight set — in which case the default mix replaces it.
// pickVis divides by the total weight, so an invalid mix must never reach
// the generator.
func sanitizeMix(m VisMix, def func() VisMix) VisMix {
	if m == nil {
		return def()
	}
	var total float64
	for _, w := range m {
		if !(w.W >= 0) { // negative or NaN
			return def()
		}
		if w.Vis < VisFirewall || w.Vis > VisSiblingUpstream {
			return def()
		}
		total += w.W
	}
	if !(total > 0) {
		return def()
	}
	return m
}

// clamp01 forces x into [0, 1]; NaN maps to 0.
func clamp01(x float64) float64 {
	if !(x > 0) {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func (p Profile) withDefaults() Profile {
	p.CustVis = sanitizeMix(p.CustVis, defaultCustVis)
	p.PeerVis = sanitizeMix(p.PeerVis, defaultPeerVis)
	p.ProvVis = sanitizeMix(p.ProvVis, defaultProvVis)
	p.IXPVis = sanitizeMix(p.IXPVis, defaultIXPVis)
	if p.NumRegions <= 0 {
		p.NumRegions = 1
	}
	if p.BordersPerRegion <= 0 {
		p.BordersPerRegion = 1
	}
	if p.NumVPs <= 0 {
		p.NumVPs = 1
	}
	if p.CustMaxChildren < 0 {
		p.CustMaxChildren = 0
	}
	if p.NumIXPs < 0 {
		p.NumIXPs = 0
	}
	if p.IXPPeersPerIXP < 0 {
		p.IXPPeersPerIXP = 0
	}
	p.RemotePeerFrac = clamp01(p.RemotePeerFrac)
	p.IXPBilateralFrac = clamp01(p.IXPBilateralFrac)
	if len(p.BigPeerLinkCounts) > 0 {
		bp := make([]int, len(p.BigPeerLinkCounts))
		for i, c := range p.BigPeerLinkCounts {
			if c < 1 {
				c = 1
			}
			bp[i] = c
		}
		p.BigPeerLinkCounts = bp
	}
	if len(p.CDNs) > 0 {
		cd := make([]CDNSpec, len(p.CDNs))
		for i, c := range p.CDNs {
			if c.Links < 1 {
				c.Links = 1
			}
			if c.Prefixes < 0 {
				c.Prefixes = 0
			}
			cd[i] = c
		}
		p.CDNs = cd
	}
	if len(p.Hypergiants) > 0 {
		hg := make([]HypergiantSpec, len(p.Hypergiants))
		for i, h := range p.Hypergiants {
			if h.Links < 1 {
				h.Links = 1
			}
			if h.Prefixes < 0 {
				h.Prefixes = 0
			}
			if h.AccessFanout < 0 {
				h.AccessFanout = 0
			}
			hg[i] = h
		}
		p.Hypergiants = hg
	}
	if p.VPPlacement < VPSpreadEven || p.VPPlacement > VPSingleRegion {
		p.VPPlacement = VPSpreadEven
	}
	return p
}

// REProfile models the research-and-education network of §5.6: 17 routers,
// 48 BGP neighbor ASes, presence at three IXPs.
func REProfile() Profile {
	return Profile{
		Name:              "r&e",
		HostTier:          TierRE,
		NumRegions:        4,
		BordersPerRegion:  2,
		NumVPs:            1,
		NumProviders:      1,
		NumPeers:          2,
		NumCustomers:      30,
		NumIXPs:           3,
		IXPPeersPerIXP:    28,
		CustTransitFrac:   0.2,
		CustMaxChildren:   2,
		DistantPerTransit: 30,
		MOASPairs:         1,
		PADelegations:     2,
	}
}

// LargeAccessProfile models the large U.S. access network of §5.6/§6 at a
// laptop-tractable scale: the class ratios (652 cust / 26 peer / 5 prov)
// are preserved at roughly one-third scale.
func LargeAccessProfile() Profile {
	return Profile{
		Name:             "large-access",
		HostTier:         TierAccess,
		NumRegions:       13,
		BordersPerRegion: 3,
		NumVPs:           19,
		HostSiblings:     2,
		NumProviders:     5,
		NumPeers:         26,
		NumCustomers:     217, // ≈652/3
		BigPeerLinkCounts: []int{
			45, // the Level3-like Tier-1 peer of §6
			24, // a second large transit peer
		},
		CDNs: []CDNSpec{
			{Name: "akamai-like", Links: 16, Prefixes: 48, Policy: AnnouncePinned, Visibility: VisOnenet},
			{Name: "google-like", Links: 10, Prefixes: 30, Policy: AnnounceCoastal, Visibility: VisOnenet},
			{Name: "cdn-c", Links: 8, Prefixes: 24, Policy: AnnounceEverywhere, Visibility: VisOnenet},
			{Name: "cdn-d", Links: 6, Prefixes: 16, Policy: AnnouncePinned, Visibility: VisOneHop},
			{Name: "cdn-e", Links: 4, Prefixes: 12, Policy: AnnounceEverywhere, Visibility: VisOneHop},
		},
		CustTransitFrac:   0.15,
		CustMaxChildren:   3,
		NumIXPs:           2,
		IXPPeersPerIXP:    11,
		DistantPerTransit: 40,
		MOASPairs:         3,
		PADelegations:     8,
	}
}

// Tier1Profile models the Tier-1 transit network of §5.6 at reduced scale
// (1644 cust / 70 peer / 0 prov, scaled by ~one-fourth).
func Tier1Profile() Profile {
	return Profile{
		Name:              "tier1",
		HostTier:          TierTier1,
		NumRegions:        13,
		BordersPerRegion:  4,
		NumVPs:            1,
		NumProviders:      0,
		NumPeers:          18,  // other Tier-1s / large peers
		NumCustomers:      411, // ≈1644/4
		BigPeerLinkCounts: []int{12, 8, 6},
		CustTransitFrac:   0.25,
		CustMaxChildren:   3,
		NumIXPs:           1,
		IXPPeersPerIXP:    15,
		DistantPerTransit: 25,
		MOASPairs:         4,
		PADelegations:     10,
		CustVis: VisMix{
			{VisFirewall, 0.62},
			{VisOneHop, 0.20},
			{VisOnenet, 0.065},
			{VisSilent, 0.04},
			{VisEchoOnly, 0.02},
			{VisThirdParty, 0.002},
			{VisUnrouted, 0.005},
			{VisMixedAdj, 0.008},
			{VisSiblingUpstream, 0.002},
		},
		PeerVis: VisMix{
			{VisOnenet, 0.37},
			{VisOneHop, 0.34},
			{VisFirewall, 0.09},
			{VisUnrouted, 0.05},
			{VisSilent, 0.05},
			{VisMixedAdj, 0.07},
			{VisFirewallOwnSpace, 0.02},
			{VisEchoOnly, 0.01},
		},
	}
}

// SmallAccessProfile models the small access network of §5.6 (14 routers,
// fewer than 12 interdomain links per router, three interconnection
// facilities).
func SmallAccessProfile() Profile {
	return Profile{
		Name:              "small-access",
		HostTier:          TierAccess,
		NumRegions:        3,
		BordersPerRegion:  2,
		NumVPs:            1,
		NumProviders:      2,
		NumPeers:          4,
		NumCustomers:      12,
		NumIXPs:           1,
		IXPPeersPerIXP:    8,
		CustTransitFrac:   0.1,
		CustMaxChildren:   1,
		DistantPerTransit: 15,
		MOASPairs:         1,
		PADelegations:     1,
	}
}

// EnterpriseProfile models a customer-less host: an enterprise or content
// network with transit providers and IXP peering only. It exercises the
// algorithm without the customer-dominated structure of the other
// profiles (no firewall-heuristic majority, nextas rarely applicable).
func EnterpriseProfile() Profile {
	return Profile{
		Name:     "enterprise",
		HostTier: TierStub,
		// Enterprises terminate all upstreams on one edge router per
		// site, which is what lets the fan-out disambiguation work: a
		// dedicated border per provider link is genuinely ambiguous
		// (the paper's figure 12 limitation).
		NumRegions:        2,
		BordersPerRegion:  1,
		NumVPs:            1,
		NumProviders:      3,
		NumPeers:          6,
		NumCustomers:      0,
		NumIXPs:           1,
		IXPPeersPerIXP:    10,
		DistantPerTransit: 20,
	}
}

// TinyProfile is a minimal topology for tests and the quickstart example.
func TinyProfile() Profile {
	return Profile{
		Name:              "tiny",
		HostTier:          TierAccess,
		NumRegions:        2,
		BordersPerRegion:  1,
		NumVPs:            1,
		NumProviders:      1,
		NumPeers:          2,
		NumCustomers:      6,
		NumIXPs:           1,
		IXPPeersPerIXP:    3,
		CustTransitFrac:   0.3,
		CustMaxChildren:   1,
		DistantPerTransit: 5,
		MOASPairs:         1,
		PADelegations:     1,
	}
}

// RemotePeeringProfile stresses the distance assumptions of §5.4: half the
// IXP members peer remotely, so their routers answer from metros far from
// the IXP while their LAN interfaces carry a long-haul circuit delay. Hop
// counts stay IXP-local but RTTs do not.
func RemotePeeringProfile() Profile {
	return Profile{
		Name:              "remote-peering",
		HostTier:          TierAccess,
		NumRegions:        3,
		BordersPerRegion:  1,
		NumVPs:            1,
		NumProviders:      1,
		NumPeers:          2,
		NumCustomers:      5,
		NumIXPs:           2,
		IXPPeersPerIXP:    5,
		RemotePeerFrac:    0.5,
		CustTransitFrac:   0.2,
		CustMaxChildren:   1,
		DistantPerTransit: 4,
		MOASPairs:         1,
		PADelegations:     1,
	}
}

// HypergiantProfile models hierarchy flattening: one content AS peering
// with the host AND directly with most of the host's customers. The
// shortcut links never transit the host (valley-free), but the hypergiant's
// many prefixes and wide peering stress the relationship heuristics
// (§5.4.5) and the per-neighbor counting step (§5.4.6).
func HypergiantProfile() Profile {
	return Profile{
		Name:             "hypergiant",
		HostTier:         TierAccess,
		NumRegions:       4,
		BordersPerRegion: 2,
		NumVPs:           1,
		NumProviders:     1,
		NumPeers:         2,
		NumCustomers:     24,
		Hypergiants: []HypergiantSpec{
			{Name: "hypergiant-a", Links: 4, Prefixes: 12, AccessFanout: 20},
		},
		NumIXPs:           1,
		IXPPeersPerIXP:    3,
		CustTransitFrac:   0.2,
		CustMaxChildren:   1,
		DistantPerTransit: 5,
		MOASPairs:         1,
		PADelegations:     1,
	}
}

// RouteServerMixProfile mixes hidden route-server sessions with visible
// bilateral ones at the same IXPs: the bilateral members appear in the
// public BGP view (classified peers, §5.4.5) while the route-server members
// stay trace-only (§5.4.5 step 5.5 hidden peers), on one shared LAN.
func RouteServerMixProfile() Profile {
	return Profile{
		Name:              "route-server",
		HostTier:          TierAccess,
		NumRegions:        2,
		BordersPerRegion:  2,
		NumVPs:            1,
		NumProviders:      1,
		NumPeers:          2,
		NumCustomers:      6,
		NumIXPs:           2,
		IXPPeersPerIXP:    8,
		IXPBilateralFrac:  0.4,
		CustTransitFrac:   0.2,
		CustMaxChildren:   1,
		DistantPerTransit: 5,
		MOASPairs:         1,
		PADelegations:     1,
	}
}

// BuiltinProfiles lists every predefined profile, the four §5.6 validation
// networks and the extension scenarios alike, in presentation order.
func BuiltinProfiles() []Profile {
	return []Profile{
		TinyProfile(),
		REProfile(),
		SmallAccessProfile(),
		LargeAccessProfile(),
		Tier1Profile(),
		EnterpriseProfile(),
		RemotePeeringProfile(),
		HypergiantProfile(),
		RouteServerMixProfile(),
		RegionalVPProfile(),
	}
}

// ProfileByName resolves a built-in profile by its Name field ("re" is
// accepted as an alias for "r&e").
func ProfileByName(name string) (Profile, bool) {
	if name == "re" {
		name = "r&e"
	}
	for _, p := range BuiltinProfiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// RegionalVPProfile places every VP on the west coast of a wide footprint
// while a coastal-announcing CDN interconnects on both coasts: hot-potato
// routing then hides the eastern interdomain links from every VP (the
// figure 15/16 marginal-utility effect, made extreme).
func RegionalVPProfile() Profile {
	return Profile{
		Name:             "regional-vp",
		HostTier:         TierAccess,
		NumRegions:       6,
		BordersPerRegion: 1,
		NumVPs:           3,
		VPPlacement:      VPWestCoast,
		NumProviders:     1,
		NumPeers:         2,
		NumCustomers:     8,
		CDNs: []CDNSpec{
			{Name: "coastal-cdn", Links: 4, Prefixes: 8, Policy: AnnounceCoastal, Visibility: VisOnenet},
		},
		NumIXPs:           1,
		IXPPeersPerIXP:    3,
		CustTransitFrac:   0.2,
		CustMaxChildren:   1,
		DistantPerTransit: 5,
		MOASPairs:         1,
		PADelegations:     1,
	}
}
