package tslp

import (
	"testing"
	"time"

	"bdrmap/internal/alias"
	"bdrmap/internal/bgp"
	"bdrmap/internal/netx"
	"bdrmap/internal/probe"
	"bdrmap/internal/topo"
)

// world builds a tiny network with two interdomain links and returns the
// engine, VP, and the two (near, far) target pairs.
func world(t *testing.T) (*probe.Engine, *topo.Network, []Target, []*topo.Link) {
	t.Helper()
	n := topo.Generate(topo.TinyProfile(), 1)
	e := probe.New(n, bgp.NewTable(n))
	vp := n.VPs[0]
	var targets []Target
	var links []*topo.Link
	for _, lt := range n.InterdomainLinks(n.HostASN) {
		l := lt.Link
		nearIf := l.IfaceOn(lt.NearRtr)
		farIf := l.IfaceOn(lt.FarRtr)
		if nearIf == nil || farIf == nil {
			continue
		}
		// Both sides must answer pings for TSLP to monitor the link.
		if !e.Probe(vp, nearIf.Addr, probe.MethodICMPEcho).OK ||
			!e.Probe(vp, farIf.Addr, probe.MethodICMPEcho).OK {
			continue
		}
		targets = append(targets, Target{Near: nearIf.Addr, Far: farIf.Addr, FarAS: lt.FarAS})
		links = append(links, l)
		if len(targets) == 2 {
			break
		}
	}
	if len(targets) < 2 {
		t.Skip("need two pingable interdomain links")
	}
	return e, n, targets, links
}

type engineProber struct {
	e  *probe.Engine
	vp *topo.VP
}

func (p engineProber) Probe(a netx.Addr, m probe.Method) probe.Response {
	return p.e.Probe(p.vp, a, m)
}
func (p engineProber) Advance(d time.Duration) { p.e.Advance(d) }

var _ Prober = engineProber{}
var _ alias.ProbeSource = engineProber{}

func TestRTTModelGeographic(t *testing.T) {
	n := topo.Generate(topo.LargeAccessProfile(), 1)
	e := probe.New(n, bgp.NewTable(n))
	// RTT from the west-coast VP to an east-coast backbone interface must
	// exceed RTT to a west-coast one.
	vp := n.VPs[0] // sea
	var west, east netx.Addr
	for _, r := range n.Routers {
		if r.Owner != n.HostASN || len(r.Addrs()) == 0 {
			continue
		}
		if r.Longitude < -120 && west.IsZero() && e.Probe(vp, r.Addrs()[0], probe.MethodICMPEcho).OK {
			west = r.Addrs()[0]
		}
		if r.Longitude > -75 && east.IsZero() && e.Probe(vp, r.Addrs()[0], probe.MethodICMPEcho).OK {
			east = r.Addrs()[0]
		}
	}
	if west.IsZero() || east.IsZero() {
		t.Skip("no pingable coastal routers")
	}
	rw := e.Probe(vp, west, probe.MethodICMPEcho).RTT
	re := e.Probe(vp, east, probe.MethodICMPEcho).RTT
	if re <= rw {
		t.Fatalf("east RTT %v <= west RTT %v", re, rw)
	}
	if re < 10*time.Millisecond || re > 200*time.Millisecond {
		t.Fatalf("cross-country RTT %v implausible", re)
	}
}

func TestDetectInjectedCongestion(t *testing.T) {
	e, _, targets, links := world(t)
	vp := engineProber{e: e, vp: e.Net.VPs[0]}

	// Congest link 0 from 18:00 to 23:00, leave link 1 alone.
	e.InjectCongestion(probe.CongestionEpisode{
		Link:  links[0],
		Start: 18 * time.Hour,
		End:   23 * time.Hour,
		Queue: 40 * time.Millisecond,
	})
	series := Run(vp, targets, Config{Interval: 5 * time.Minute, Duration: 24 * time.Hour})
	reports := DetectAll(series, 30*time.Minute, 3*time.Millisecond)

	byNear := map[netx.Addr]Report{}
	for _, r := range reports {
		byNear[r.Target.Near] = r
	}
	r0 := byNear[targets[0].Near]
	r1 := byNear[targets[1].Near]
	if !r0.Congested() {
		t.Fatalf("congested link not detected: %+v", r0)
	}
	if r1.Congested() {
		t.Fatalf("uncongested link flagged: %+v", r1)
	}
	// The episode should cover roughly 18:00-23:00.
	ep := r0.Episodes[0]
	if ep.Start < 17*time.Hour || ep.Start > 19*time.Hour {
		t.Errorf("episode start %v, want ~18h", ep.Start)
	}
	if ep.End < 22*time.Hour || ep.End > 24*time.Hour {
		t.Errorf("episode end %v, want ~23h", ep.End)
	}
	if ep.Elevation < 30*time.Millisecond {
		t.Errorf("elevation %v, want ~40ms", ep.Elevation)
	}
	// Near side must be flagged stable: queueing is past the border.
	if !r0.NearStable {
		t.Error("near side reported unstable")
	}
	if r0.String() == "" || r1.String() == "" {
		t.Error("empty report rendering")
	}
}

func TestDetectNoFalsePositivesQuietDay(t *testing.T) {
	e, _, targets, _ := world(t)
	vp := engineProber{e: e, vp: e.Net.VPs[0]}
	series := Run(vp, targets, Config{Interval: 10 * time.Minute, Duration: 12 * time.Hour})
	for _, r := range DetectAll(series, 30*time.Minute, 3*time.Millisecond) {
		if r.Congested() {
			t.Fatalf("false positive on quiet network: %v", r)
		}
	}
}

func TestPathWideShiftNotFlagged(t *testing.T) {
	// Congestion on an *internal* link upstream of the border elevates
	// both near and far RTTs: TSLP must not call it interdomain.
	e, n, targets, _ := world(t)
	vp := engineProber{e: e, vp: e.Net.VPs[0]}
	// Find an internal host link on the path (the VP's access link).
	var internal *topo.Link
	for _, l := range n.Links {
		if l.Kind == topo.LinkInternal && len(l.Ifaces) >= 1 {
			r := n.Router(l.Ifaces[0].Router)
			if r != nil && r.Owner == n.HostASN {
				internal = l
				break
			}
		}
	}
	if internal == nil {
		t.Skip("no internal link")
	}
	e.InjectCongestion(probe.CongestionEpisode{
		Link:  internal,
		Start: 0,
		End:   24 * time.Hour,
		Queue: 40 * time.Millisecond,
	})
	series := Run(vp, targets[:1], Config{Interval: 10 * time.Minute, Duration: 6 * time.Hour})
	rep := Detect(series[0], 30*time.Minute, 3*time.Millisecond)
	if rep.Congested() {
		// Only acceptable if the internal link is not actually on this
		// target's path (then nothing shifted at all).
		t.Fatalf("path-wide shift misattributed to the interdomain link: %v", rep)
	}
}

func TestRunCadence(t *testing.T) {
	e, _, targets, _ := world(t)
	vp := engineProber{e: e, vp: e.Net.VPs[0]}
	series := Run(vp, targets[:1], Config{Interval: time.Hour, Duration: 6 * time.Hour})
	if len(series[0].Samples) != 6 {
		t.Fatalf("samples = %d, want 6", len(series[0].Samples))
	}
	var prev time.Duration
	for i, s := range series[0].Samples {
		if i > 0 && s.When <= prev {
			t.Fatalf("samples not advancing: %v then %v", prev, s.When)
		}
		prev = s.When
	}
}
