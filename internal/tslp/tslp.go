// Package tslp implements time-series latency probing, the interdomain
// congestion measurement method of the CAIDA/MIT project that bdrmap was
// built to serve (§2 of the paper, and "Challenges in Inferring Internet
// Interdomain Congestion", IMC 2014). For each interdomain link bdrmap
// identified, TSLP pings the near (host-side) and far (neighbor-side)
// router interfaces on a fixed cadence; a recurring elevation of the far
// side's minimum RTT while the near side stays flat is the signature of an
// congested interconnect — queueing happens in the border router's egress
// buffer, so only probes crossing the link see it.
//
// The paper's central point stands here too: the hard part was *finding*
// the (near, far) address pairs; bdrmap supplies them, TSLP just probes.
package tslp

import (
	"fmt"
	"sort"
	"time"

	"bdrmap/internal/netx"
	"bdrmap/internal/probe"
	"bdrmap/internal/topo"
)

// Target is one monitored interdomain link: the probe address on each
// side, as inferred by bdrmap.
type Target struct {
	Near, Far netx.Addr
	FarAS     topo.ASN
}

// Sample is one probing round's result for a target.
type Sample struct {
	When    time.Duration
	NearRTT time.Duration // 0 when unanswered
	FarRTT  time.Duration
}

// Series is a target's collected time series.
type Series struct {
	Target  Target
	Samples []Sample
}

// Config tunes the prober; zero values give a 5-minute cadence for 24h.
type Config struct {
	Interval time.Duration // default 5 minutes
	Duration time.Duration // default 24 hours
}

func (c Config) withDefaults() Config {
	if c.Interval == 0 {
		c.Interval = 5 * time.Minute
	}
	if c.Duration == 0 {
		c.Duration = 24 * time.Hour
	}
	return c
}

// Prober issues the pings; both the local engine adapter and the remote
// scamper agent satisfy it.
type Prober interface {
	Probe(target netx.Addr, m probe.Method) probe.Response
	Advance(d time.Duration)
}

// Run probes every target once per interval for the configured duration,
// interleaving targets within a round the way the real deployment does.
func Run(p Prober, targets []Target, cfg Config) []Series {
	cfg = cfg.withDefaults()
	out := make([]Series, len(targets))
	for i, t := range targets {
		out[i].Target = t
	}
	rounds := int(cfg.Duration / cfg.Interval)
	for r := 0; r < rounds; r++ {
		for i, t := range targets {
			s := Sample{}
			near := p.Probe(t.Near, probe.MethodICMPEcho)
			if near.OK {
				s.When = near.When
				s.NearRTT = near.RTT
			}
			far := p.Probe(t.Far, probe.MethodICMPEcho)
			if far.OK {
				s.When = far.When
				s.FarRTT = far.RTT
			}
			out[i].Samples = append(out[i].Samples, s)
		}
		p.Advance(cfg.Interval)
	}
	return out
}

// Episode is one detected congestion period on a target link.
type Episode struct {
	Start, End time.Duration
	// Elevation is the far-side minimum-RTT increase over baseline.
	Elevation time.Duration
}

// Report is the detection outcome for one link.
type Report struct {
	Target   Target
	Episodes []Episode
	// Baseline is the uncongested far-side minimum RTT.
	Baseline time.Duration
	// NearStable reports that the near side showed no comparable shift
	// (distinguishing interdomain queueing from path-wide effects).
	NearStable bool
}

// Congested reports whether any episode was detected.
func (r Report) Congested() bool { return len(r.Episodes) > 0 }

// Detect applies the level-shift test: windows whose far-side minimum RTT
// exceeds the series baseline by more than threshold form episodes; the
// near side must stay within threshold of its own baseline for the
// episode to count as interdomain congestion.
func Detect(s Series, window time.Duration, threshold time.Duration) Report {
	rep := Report{Target: s.Target, NearStable: true}
	if len(s.Samples) == 0 {
		return rep
	}
	if window == 0 {
		window = 30 * time.Minute
	}
	if threshold == 0 {
		threshold = 3 * time.Millisecond
	}
	farBase := minRTT(s.Samples, func(x Sample) time.Duration { return x.FarRTT })
	nearBase := minRTT(s.Samples, func(x Sample) time.Duration { return x.NearRTT })
	rep.Baseline = farBase

	type win struct {
		start     time.Duration
		farMin    time.Duration
		nearMin   time.Duration
		populated bool
	}
	var wins []win
	for _, smp := range s.Samples {
		if smp.FarRTT == 0 {
			continue
		}
		idx := int(smp.When / window)
		for len(wins) <= idx {
			wins = append(wins, win{start: time.Duration(len(wins)) * window})
		}
		w := &wins[idx]
		if !w.populated || smp.FarRTT < w.farMin {
			w.farMin = smp.FarRTT
		}
		if smp.NearRTT > 0 && (!w.populated || smp.NearRTT < w.nearMin) {
			w.nearMin = smp.NearRTT
		}
		w.populated = true
	}

	var cur *Episode
	for _, w := range wins {
		congested := w.populated && w.farMin > farBase+threshold
		if congested && w.nearMin > nearBase+threshold {
			// The whole path shifted: not an interdomain signature.
			rep.NearStable = false
			congested = false
		}
		switch {
		case congested && cur == nil:
			cur = &Episode{Start: w.start, End: w.start + window, Elevation: w.farMin - farBase}
		case congested:
			cur.End = w.start + window
			if e := w.farMin - farBase; e > cur.Elevation {
				cur.Elevation = e
			}
		case cur != nil:
			rep.Episodes = append(rep.Episodes, *cur)
			cur = nil
		}
	}
	if cur != nil {
		rep.Episodes = append(rep.Episodes, *cur)
	}
	return rep
}

func minRTT(samples []Sample, get func(Sample) time.Duration) time.Duration {
	min := time.Duration(0)
	for _, s := range samples {
		v := get(s)
		if v == 0 {
			continue
		}
		if min == 0 || v < min {
			min = v
		}
	}
	return min
}

// DetectAll runs Detect over every series and returns reports sorted with
// congested links first.
func DetectAll(series []Series, window, threshold time.Duration) []Report {
	out := make([]Report, 0, len(series))
	for _, s := range series {
		out = append(out, Detect(s, window, threshold))
	}
	sort.SliceStable(out, func(i, j int) bool {
		ci, cj := out[i].Congested(), out[j].Congested()
		if ci != cj {
			return ci
		}
		return out[i].Target.Near < out[j].Target.Near
	})
	return out
}

// String renders a report line.
func (r Report) String() string {
	if !r.Congested() {
		return fmt.Sprintf("%v<->%v (%v): uncongested (baseline %v)",
			r.Target.Near, r.Target.Far, r.Target.FarAS, r.Baseline.Round(time.Millisecond))
	}
	e := r.Episodes[0]
	day := 24 * time.Hour
	return fmt.Sprintf("%v<->%v (%v): CONGESTED %02d:00-%02d:00, +%v over %v baseline (%d episode(s))",
		r.Target.Near, r.Target.Far, r.Target.FarAS,
		int((e.Start%day)/time.Hour), int((e.End%day)/time.Hour),
		e.Elevation.Round(time.Millisecond),
		r.Baseline.Round(time.Millisecond), len(r.Episodes))
}
