package export

import (
	"bytes"
	"strings"
	"testing"

	"bdrmap/internal/asrel"
	"bdrmap/internal/bgp"
	"bdrmap/internal/core"
	"bdrmap/internal/ixp"
	"bdrmap/internal/probe"
	"bdrmap/internal/rir"
	"bdrmap/internal/scamper"
	"bdrmap/internal/sibling"
	"bdrmap/internal/topo"
)

func runPipeline(t *testing.T) (*topo.Network, *scamper.Dataset, *core.Result) {
	t.Helper()
	n := topo.Generate(topo.TinyProfile(), 1)
	tab := bgp.NewTable(n)
	view := bgp.Collect(tab, bgp.DefaultVantages(n))
	sibs := sibling.FromNetwork(n, 1)
	sibs.CurateHost(n)
	hosts := map[topo.ASN]bool{n.HostASN: true}
	e := probe.New(n, tab)
	d := &scamper.Driver{
		View: view, Prober: scamper.LocalProber{E: e, VP: n.VPs[0]},
		HostASNs: hosts, Cfg: scamper.Config{Workers: 1},
	}
	ds := d.Run()
	res := core.Infer(core.Input{
		Data: ds, View: view, Rel: asrel.Infer(view),
		RIR: rir.FromNetwork(n), IXP: ixp.Merge(ixp.FromNetwork(n, 1)),
		HostASN: n.HostASN, Siblings: sibs,
	})
	return n, ds, res
}

func TestRoundTrip(t *testing.T) {
	n, ds, res := runPipeline(t)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Meta(Meta{VPName: ds.VPName, HostASN: n.HostASN, Comment: "test"})
	for _, tr := range ds.Traces {
		w.Trace(tr)
	}
	w.Result(res)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Lines() != 1+len(ds.Traces)+len(res.Routers)+len(res.Links) {
		t.Fatalf("lines = %d", w.Lines())
	}

	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.VPName != ds.VPName || got.Meta.HostASN != n.HostASN {
		t.Fatalf("meta = %+v", got.Meta)
	}
	if len(got.Traces) != len(ds.Traces) {
		t.Fatalf("traces = %d, want %d", len(got.Traces), len(ds.Traces))
	}
	if len(got.Links) != len(res.Links) {
		t.Fatalf("links = %d, want %d", len(got.Links), len(res.Links))
	}
	if len(got.Routers) != len(res.Routers) {
		t.Fatalf("routers = %d, want %d", len(got.Routers), len(res.Routers))
	}

	// Full trace fidelity.
	back, err := got.ToTraceRecords()
	if err != nil {
		t.Fatal(err)
	}
	for i := range back {
		a, b := back[i], ds.Traces[i]
		if a.Dst != b.Dst || a.TargetAS != b.TargetAS || a.Reached != b.Reached ||
			a.Stopped != b.Stopped || len(a.Hops) != len(b.Hops) {
			t.Fatalf("trace %d differs: %+v vs %+v", i, a, b)
		}
		for j := range a.Hops {
			if a.Hops[j] != b.Hops[j] {
				t.Fatalf("trace %d hop %d differs: %+v vs %+v", i, j, a.Hops[j], b.Hops[j])
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(strings.NewReader(`{"type":"wat","data":{}}` + "\n")); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := Read(strings.NewReader(`{"type":"trace","data":[1,2]}` + "\n")); err == nil {
		t.Error("mis-shaped data accepted")
	}
}

func TestEmptyStream(t *testing.T) {
	ds, err := Read(strings.NewReader(""))
	if err != nil || len(ds.Traces) != 0 {
		t.Fatalf("empty stream: %v %v", ds, err)
	}
}

func TestMergedMapRoundTrip(t *testing.T) {
	_, _, res := runPipeline(t)
	m := core.Merge([]*core.Result{res})
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Merged(m)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Merged) != m.LinkCount() {
		t.Fatalf("merged links = %d, want %d", len(got.Merged), m.LinkCount())
	}
	for i, ml := range got.Merged {
		if len(ml.SeenBy) == 0 {
			t.Fatalf("merged link %d lost SeenBy", i)
		}
		if ml.FarAS != m.Links[i].Key.FarAS {
			t.Fatalf("merged link %d far AS differs", i)
		}
	}
}

func TestSilentLinkOmitsFar(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	res := &core.Result{Links: []*core.Link{{
		Near:      &core.RouterNode{},
		NearAddr:  1,
		FarAS:     99,
		Heuristic: core.HeurSilent,
	}}}
	w.Result(res)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"far":`) {
		t.Fatalf("silent link serialized a far address: %s", buf.String())
	}
	got, err := Read(&buf)
	if err != nil || len(got.Links) != 1 || got.Links[0].Far != "" {
		t.Fatalf("silent link round trip: %+v %v", got.Links, err)
	}
}
