// Package export serializes measurement artifacts — traceroutes, inferred
// border maps, and merged multi-VP maps — as JSON Lines, the interchange
// format downstream consumers (the congestion monitoring pipeline,
// analysis notebooks) read. Encoding and decoding round-trip exactly.
package export

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"bdrmap/internal/core"
	"bdrmap/internal/netx"
	"bdrmap/internal/probe"
	"bdrmap/internal/scamper"
	"bdrmap/internal/topo"
)

// Record kinds, carried in every line's "type" field.
const (
	KindTrace      = "trace"
	KindLink       = "link"
	KindRouter     = "router"
	KindMeta       = "meta"
	KindMergedLink = "merged-link"
)

// envelope tags each line with its kind.
type envelope struct {
	Type string          `json:"type"`
	Data json.RawMessage `json:"data"`
}

// Meta describes a dataset.
type Meta struct {
	VPName  string   `json:"vp"`
	HostASN topo.ASN `json:"host_asn"`
	Comment string   `json:"comment,omitempty"`
}

// TraceJSON is the wire form of one traceroute.
type TraceJSON struct {
	Dst      string    `json:"dst"`
	TargetAS topo.ASN  `json:"target_as"`
	Reached  bool      `json:"reached"`
	Stopped  bool      `json:"stopped"`
	Hops     []HopJSON `json:"hops"`
}

// HopJSON is one hop.
type HopJSON struct {
	TTL   int    `json:"ttl"`
	Type  string `json:"type"`
	Addr  string `json:"addr,omitempty"`
	IPID  uint16 `json:"ipid,omitempty"`
	RTTns int64  `json:"rtt_ns,omitempty"`
}

// LinkJSON is one inferred interdomain link.
type LinkJSON struct {
	Near      string   `json:"near"`
	Far       string   `json:"far,omitempty"` // empty for silent neighbors
	FarAS     topo.ASN `json:"far_as"`
	Heuristic string   `json:"heuristic"`
}

// RouterJSON is one inferred router.
type RouterJSON struct {
	Addrs     []string `json:"addrs"`
	Owner     topo.ASN `json:"owner,omitempty"`
	Heuristic string   `json:"heuristic,omitempty"`
	IsHost    bool     `json:"is_host,omitempty"`
	HopDist   int      `json:"hop_dist"`
}

// MergedLinkJSON is one link of a merged multi-VP map.
type MergedLinkJSON struct {
	Near      string   `json:"near"`
	Far       string   `json:"far,omitempty"`
	FarAS     topo.ASN `json:"far_as"`
	Heuristic string   `json:"heuristic"`
	SeenBy    []string `json:"seen_by"`
}

// Writer emits JSONL records.
type Writer struct {
	w   *bufio.Writer
	n   int
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

func (x *Writer) emit(kind string, v any) {
	if x.err != nil {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		x.err = err
		return
	}
	line, err := json.Marshal(envelope{Type: kind, Data: data})
	if err != nil {
		x.err = err
		return
	}
	if _, err := x.w.Write(append(line, '\n')); err != nil {
		x.err = err
		return
	}
	x.n++
}

// Meta writes the dataset header.
func (x *Writer) Meta(m Meta) { x.emit(KindMeta, m) }

// Trace writes one traceroute.
func (x *Writer) Trace(tr scamper.TraceRecord) {
	tj := TraceJSON{
		Dst:      tr.Dst.String(),
		TargetAS: tr.TargetAS,
		Reached:  tr.Reached,
		Stopped:  tr.Stopped,
	}
	for _, h := range tr.Hops {
		hj := HopJSON{TTL: h.TTL, Type: h.Type.String(), IPID: h.IPID}
		if !h.Addr.IsZero() {
			hj.Addr = h.Addr.String()
		}
		if h.RTT > 0 {
			hj.RTTns = int64(h.RTT)
		}
		tj.Hops = append(tj.Hops, hj)
	}
	x.emit(KindTrace, tj)
}

// Result writes a full inference result (routers then links).
func (x *Writer) Result(res *core.Result) {
	for _, rn := range res.Routers {
		rj := RouterJSON{
			Owner: rn.Owner, Heuristic: string(rn.Heuristic),
			IsHost: rn.IsHost, HopDist: rn.HopDist,
		}
		for _, a := range rn.Addrs {
			rj.Addrs = append(rj.Addrs, a.String())
		}
		x.emit(KindRouter, rj)
	}
	for _, l := range res.Links {
		lj := LinkJSON{
			Near: l.NearAddr.String(), FarAS: l.FarAS,
			Heuristic: string(l.Heuristic),
		}
		if !l.FarAddr.IsZero() {
			lj.Far = l.FarAddr.String()
		}
		x.emit(KindLink, lj)
	}
}

// Merged writes a merged multi-VP map (the continuous-monitoring
// pipeline's round artifact, which core.Diff compares across rounds).
func (x *Writer) Merged(m *core.MergedMap) {
	for _, l := range m.Links {
		mj := MergedLinkJSON{
			Near: l.Key.Near.String(), FarAS: l.Key.FarAS,
			Heuristic: string(l.Heuristic), SeenBy: l.SeenBy,
		}
		if !l.Key.Far.IsZero() {
			mj.Far = l.Key.Far.String()
		}
		x.emit(KindMergedLink, mj)
	}
}

// Flush completes the stream.
func (x *Writer) Flush() error {
	if x.err != nil {
		return x.err
	}
	return x.w.Flush()
}

// Lines returns how many records were written.
func (x *Writer) Lines() int { return x.n }

// Dataset is the decoded form of an exported stream.
type Dataset struct {
	Meta    Meta
	Traces  []TraceJSON
	Links   []LinkJSON
	Routers []RouterJSON
	Merged  []MergedLinkJSON
}

// Read decodes a JSONL stream.
func Read(r io.Reader) (*Dataset, error) {
	ds := &Dataset{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		var env envelope
		if err := json.Unmarshal(sc.Bytes(), &env); err != nil {
			return nil, fmt.Errorf("export: line %d: %w", lineNo, err)
		}
		switch env.Type {
		case KindMeta:
			if err := json.Unmarshal(env.Data, &ds.Meta); err != nil {
				return nil, fmt.Errorf("export: line %d: %w", lineNo, err)
			}
		case KindTrace:
			var t TraceJSON
			if err := json.Unmarshal(env.Data, &t); err != nil {
				return nil, fmt.Errorf("export: line %d: %w", lineNo, err)
			}
			ds.Traces = append(ds.Traces, t)
		case KindLink:
			var l LinkJSON
			if err := json.Unmarshal(env.Data, &l); err != nil {
				return nil, fmt.Errorf("export: line %d: %w", lineNo, err)
			}
			ds.Links = append(ds.Links, l)
		case KindRouter:
			var rt RouterJSON
			if err := json.Unmarshal(env.Data, &rt); err != nil {
				return nil, fmt.Errorf("export: line %d: %w", lineNo, err)
			}
			ds.Routers = append(ds.Routers, rt)
		case KindMergedLink:
			var ml MergedLinkJSON
			if err := json.Unmarshal(env.Data, &ml); err != nil {
				return nil, fmt.Errorf("export: line %d: %w", lineNo, err)
			}
			ds.Merged = append(ds.Merged, ml)
		default:
			return nil, fmt.Errorf("export: line %d: unknown type %q", lineNo, env.Type)
		}
	}
	return ds, sc.Err()
}

// ToTraceRecords converts decoded traces back to the scamper form.
func (ds *Dataset) ToTraceRecords() ([]scamper.TraceRecord, error) {
	out := make([]scamper.TraceRecord, 0, len(ds.Traces))
	for _, t := range ds.Traces {
		dst, err := netx.ParseAddr(t.Dst)
		if err != nil {
			return nil, err
		}
		tr := scamper.TraceRecord{TargetAS: t.TargetAS}
		tr.Dst = dst
		tr.Reached = t.Reached
		tr.Stopped = t.Stopped
		for _, h := range t.Hops {
			hop := probe.Hop{TTL: h.TTL, IPID: h.IPID}
			switch h.Type {
			case "time-exceeded":
				hop.Type = probe.HopTimeExceeded
			case "echo-reply":
				hop.Type = probe.HopEchoReply
			case "unreachable":
				hop.Type = probe.HopUnreachable
			default:
				hop.Type = probe.HopTimeout
			}
			if h.Addr != "" {
				a, err := netx.ParseAddr(h.Addr)
				if err != nil {
					return nil, err
				}
				hop.Addr = a
			}
			hop.RTT = time.Duration(h.RTTns)
			tr.Hops = append(tr.Hops, hop)
		}
		out = append(out, tr)
	}
	return out, nil
}
