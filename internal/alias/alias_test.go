package alias

import (
	"testing"

	"bdrmap/internal/bgp"
	"bdrmap/internal/netx"
	"bdrmap/internal/probe"
	"bdrmap/internal/topo"
)

func setup(t *testing.T, seed int64) (*probe.Engine, *topo.Network, *Resolver) {
	t.Helper()
	n := topo.Generate(topo.TinyProfile(), seed)
	e := probe.New(n, bgp.NewTable(n))
	r := NewResolver(LocalSource{E: e, VP: n.VPs[0]}, Config{})
	return e, n, r
}

// findRouter returns a reachable router matching pred with >= 2 reachable
// interfaces.
func findRouter(e *probe.Engine, n *topo.Network, vp *topo.VP, pred func(*topo.Router) bool) (*topo.Router, []netx.Addr) {
	for _, r := range n.Routers {
		if !pred(r) {
			continue
		}
		var addrs []netx.Addr
		for _, ifc := range r.Ifaces {
			if !ifc.Addr.IsZero() && e.Reachable(vp, ifc.Addr) {
				addrs = append(addrs, ifc.Addr)
			}
		}
		if len(addrs) >= 2 {
			return r, addrs
		}
	}
	return nil, nil
}

func TestAllySameRouterShared(t *testing.T) {
	e, n, res := setup(t, 1)
	r, addrs := findRouter(e, n, n.VPs[0], func(r *topo.Router) bool {
		return r.Behavior.IPID == topo.IPIDShared && !r.Behavior.NoEchoReply && !r.Behavior.NoTTLExpired
	})
	if r == nil {
		t.Skip("no shared-counter router with two reachable ifaces")
	}
	if v := res.Ally(addrs[0], addrs[1]); v != AliasYes {
		t.Fatalf("Ally(%v, %v) = %v, want alias (router %v)", addrs[0], addrs[1], v, r)
	}
}

func TestAllyDifferentRouters(t *testing.T) {
	e, n, res := setup(t, 2)
	var addrs []netx.Addr
	for _, r := range n.Routers {
		if r.Behavior.IPID != topo.IPIDShared || r.Behavior.NoEchoReply {
			continue
		}
		for _, ifc := range r.Ifaces {
			if !ifc.Addr.IsZero() && e.Reachable(n.VPs[0], ifc.Addr) {
				addrs = append(addrs, ifc.Addr)
				break
			}
		}
		if len(addrs) == 2 {
			break
		}
	}
	if len(addrs) < 2 {
		t.Skip("not enough reachable shared-counter routers")
	}
	if v := res.Ally(addrs[0], addrs[1]); v == AliasYes {
		t.Fatalf("Ally claimed aliases across different routers (%v, %v)", addrs[0], addrs[1])
	}
}

func TestAllyRandomIPIDRejected(t *testing.T) {
	e, n, res := setup(t, 3)
	r, addrs := findRouter(e, n, n.VPs[0], func(r *topo.Router) bool {
		return r.Behavior.IPID == topo.IPIDRandom && !r.Behavior.NoEchoReply
	})
	if r == nil {
		t.Skip("no random-IPID router with two reachable ifaces")
	}
	if v := res.Ally(addrs[0], addrs[1]); v == AliasYes {
		t.Fatal("Ally accepted a random-IPID router (should reject or be unknown)")
	}
}

func TestAllyZeroIPIDUnknown(t *testing.T) {
	e, n, res := setup(t, 4)
	r, addrs := findRouter(e, n, n.VPs[0], func(r *topo.Router) bool {
		return r.Behavior.IPID == topo.IPIDZero && !r.Behavior.NoEchoReply
	})
	if r == nil {
		t.Skip("no zero-IPID router with two reachable ifaces")
	}
	if v := res.Ally(addrs[0], addrs[1]); v != Unknown {
		t.Fatalf("Ally on zero IPIDs = %v, want unknown", v)
	}
}

func TestMercatorCanonical(t *testing.T) {
	e, n, res := setup(t, 5)
	r, addrs := findRouter(e, n, n.VPs[0], func(r *topo.Router) bool {
		return r.Behavior.MercatorCanonical && !r.Behavior.NoUDPUnreach
	})
	if r == nil {
		t.Skip("no mercator-canonical router")
	}
	if v := res.Mercator(addrs[0], addrs[1]); v != AliasYes {
		t.Fatalf("Mercator = %v, want alias", v)
	}
}

func TestMercatorNonCanonicalUnknown(t *testing.T) {
	e, n, res := setup(t, 6)
	r, addrs := findRouter(e, n, n.VPs[0], func(r *topo.Router) bool {
		return !r.Behavior.MercatorCanonical && !r.Behavior.NoUDPUnreach
	})
	if r == nil {
		t.Skip("no non-canonical router")
	}
	if v := res.Mercator(addrs[0], addrs[1]); v != Unknown {
		t.Fatalf("Mercator = %v, want unknown", v)
	}
}

func TestPrefixscanFindsPtPMate(t *testing.T) {
	e, n, res := setup(t, 7)
	vp := n.VPs[0]
	// Find an interdomain ptp link whose near side is reachable and whose
	// near router is resolvable (shared IPID or canonical mercator).
	for _, l := range n.Links {
		if l.Kind != topo.LinkInterdomain || len(l.Ifaces) != 2 {
			continue
		}
		near, far := l.Ifaces[0], l.Ifaces[1]
		nr := n.Router(near.Router)
		if nr.Owner != n.HostASN {
			near, far = far, near
			nr = n.Router(near.Router)
		}
		if nr.Owner != n.HostASN {
			continue
		}
		resolvable := (nr.Behavior.IPID == topo.IPIDShared && !nr.Behavior.NoEchoReply) ||
			(nr.Behavior.MercatorCanonical && !nr.Behavior.NoUDPUnreach)
		if !resolvable || !e.Reachable(vp, near.Addr) || !e.Reachable(vp, far.Addr) {
			continue
		}
		// Another interface on the near router to play "previous hop
		// response address".
		var prevAddr netx.Addr
		for _, ifc := range nr.Ifaces {
			if ifc.Addr != near.Addr && !ifc.Addr.IsZero() && e.Reachable(vp, ifc.Addr) {
				prevAddr = ifc.Addr
			}
		}
		if prevAddr.IsZero() {
			continue
		}
		mate, ok := res.Prefixscan(prevAddr, far.Addr)
		if !ok {
			continue // resolution can legitimately fail; try another link
		}
		if mate != near.Addr {
			t.Fatalf("Prefixscan mate = %v, want %v", mate, near.Addr)
		}
		return
	}
	t.Skip("no suitable link found")
}

func TestGraphTransitiveClosure(t *testing.T) {
	g := NewGraph()
	g.Union(1, 2)
	g.Union(2, 3)
	if !g.SameRouter(1, 3) {
		t.Fatal("transitive closure failed")
	}
	if g.SameRouter(1, 4) {
		t.Fatal("unrelated addresses merged")
	}
}

func TestGraphNegativeBlocksUnion(t *testing.T) {
	g := NewGraph()
	g.AddNegative(1, 3)
	g.Union(1, 2)
	if ok := g.Union(2, 3); ok {
		t.Fatal("union crossing a negative pair must be refused")
	}
	if g.SameRouter(1, 3) {
		t.Fatal("negative pair ended up on one router")
	}
	if g.Conflicts() != 1 {
		t.Fatalf("conflicts = %d", g.Conflicts())
	}
}

func TestGraphNegativeAfterUnionOrder(t *testing.T) {
	// Negative added between roots after partial merging must still block.
	g := NewGraph()
	g.Union(1, 2)
	g.Union(3, 4)
	g.AddNegative(2, 4)
	if g.Union(1, 3) {
		t.Fatal("union should be blocked by negative between set members")
	}
}

func TestGraphSets(t *testing.T) {
	g := NewGraph()
	g.Union(10, 11)
	g.Union(11, 12)
	g.Union(20, 21)
	g.find(30) // singleton
	sets := g.Sets()
	if len(sets) != 2 {
		t.Fatalf("sets = %v", sets)
	}
	if len(sets[0]) != 3 || len(sets[1]) != 2 {
		t.Fatalf("set sizes wrong: %v", sets)
	}
}

func TestFromResolverRespectsNegatives(t *testing.T) {
	_, n, res := setup(t, 8)
	_ = n
	res.Record(1, 2, AliasYes)
	res.Record(2, 3, AliasYes)
	res.Record(1, 3, AliasNo)
	g := FromResolver(res)
	// 1-2 and 2-3 positive but 1-3 negative: exactly one union survives.
	if g.SameRouter(1, 3) {
		t.Fatal("negative pair merged")
	}
	merged := 0
	if g.SameRouter(1, 2) {
		merged++
	}
	if g.SameRouter(2, 3) {
		merged++
	}
	if merged != 1 {
		t.Fatalf("expected exactly one surviving union, got %d", merged)
	}
}

func TestAllyAcrossGeneratedHostRouters(t *testing.T) {
	// Property over the generated topology: Ally must never produce a
	// false positive across distinct routers (the 5-round drift test and
	// monotonicity requirement should reject coincidental alignment).
	e, n, res := setup(t, 9)
	vp := n.VPs[0]
	var pairs [][2]netx.Addr
	var owners [][2]topo.RouterID
	for _, l := range n.Links {
		if l.Kind != topo.LinkInternal || len(l.Ifaces) != 2 {
			continue
		}
		a, b := l.Ifaces[0], l.Ifaces[1]
		if a.Addr.IsZero() || b.Addr.IsZero() || !e.Reachable(vp, a.Addr) || !e.Reachable(vp, b.Addr) {
			continue
		}
		pairs = append(pairs, [2]netx.Addr{a.Addr, b.Addr})
		owners = append(owners, [2]topo.RouterID{a.Router, b.Router})
		if len(pairs) >= 12 {
			break
		}
	}
	for i, p := range pairs {
		v := res.Ally(p[0], p[1])
		if v == AliasYes && owners[i][0] != owners[i][1] {
			t.Fatalf("false positive: %v and %v on routers %d, %d", p[0], p[1], owners[i][0], owners[i][1])
		}
	}
}
