package alias

import (
	"sort"

	"bdrmap/internal/netx"
)

// Graph collapses interface addresses into inferred routers via
// transitive closure over positive alias pairs, refusing any union that
// would place a negatively-tested pair on one router (§5.3 "when building
// a router ... we only used pairs of IP addresses where none of the
// measurements suggested a pair were not aliases").
type Graph struct {
	parent map[netx.Addr]netx.Addr
	rank   map[netx.Addr]int
	// negBySet lists addresses with negative evidence against members of
	// the set rooted at the key (kept at each root; merged on union).
	negs map[netx.Addr][]pairKey
	neg  map[pairKey]bool

	conflicts int
}

// NewGraph builds an empty alias graph.
func NewGraph() *Graph {
	return &Graph{
		parent: make(map[netx.Addr]netx.Addr),
		rank:   make(map[netx.Addr]int),
		negs:   make(map[netx.Addr][]pairKey),
		neg:    make(map[pairKey]bool),
	}
}

// FromResolver builds the graph from a resolver's recorded verdicts.
func FromResolver(r *Resolver) *Graph {
	g := NewGraph()
	for _, k := range r.Negatives() {
		g.AddNegative(k[0], k[1])
	}
	// Deterministic union order.
	pos := r.Positives()
	sort.Slice(pos, func(i, j int) bool {
		if pos[i][0] != pos[j][0] {
			return pos[i][0] < pos[j][0]
		}
		return pos[i][1] < pos[j][1]
	})
	for _, k := range pos {
		g.Union(k[0], k[1])
	}
	return g
}

// AddNegative records that a and b must not share a router. It reports
// whether the constraint is satisfiable: false means the pair was already
// merged by earlier positive evidence (a measurement conflict — union-find
// cannot split, so the merge stands and the conflict is counted).
func (g *Graph) AddNegative(a, b netx.Addr) bool {
	k := pkey(a, b)
	if g.neg[k] {
		return !g.SameRouter(a, b)
	}
	g.neg[k] = true
	ra, rb := g.find(a), g.find(b)
	if ra == rb {
		g.conflicts++
		return false
	}
	g.negs[ra] = append(g.negs[ra], k)
	g.negs[rb] = append(g.negs[rb], k)
	return true
}

// Union merges the sets of a and b unless negative evidence forbids it.
// It reports whether the merge happened (or they were already together).
func (g *Graph) Union(a, b netx.Addr) bool {
	ra, rb := g.find(a), g.find(b)
	if ra == rb {
		return true
	}
	// Any negative pair with one side in each set blocks the union.
	for _, k := range g.negs[ra] {
		x, y := g.find(k[0]), g.find(k[1])
		if (x == ra && y == rb) || (x == rb && y == ra) {
			g.conflicts++
			return false
		}
	}
	for _, k := range g.negs[rb] {
		x, y := g.find(k[0]), g.find(k[1])
		if (x == ra && y == rb) || (x == rb && y == ra) {
			g.conflicts++
			return false
		}
	}
	// Union by rank.
	if g.rank[ra] < g.rank[rb] {
		ra, rb = rb, ra
	}
	g.parent[rb] = ra
	if g.rank[ra] == g.rank[rb] {
		g.rank[ra]++
	}
	g.negs[ra] = append(g.negs[ra], g.negs[rb]...)
	delete(g.negs, rb)
	return true
}

func (g *Graph) find(a netx.Addr) netx.Addr {
	p, ok := g.parent[a]
	if !ok {
		g.parent[a] = a
		return a
	}
	if p == a {
		return a
	}
	root := g.find(p)
	g.parent[a] = root
	return root
}

// SameRouter reports whether a and b were merged.
func (g *Graph) SameRouter(a, b netx.Addr) bool {
	return g.find(a) == g.find(b)
}

// Canonical returns the representative address of a's set.
func (g *Graph) Canonical(a netx.Addr) netx.Addr { return g.find(a) }

// Members returns all addresses sharing a's set, sorted.
func (g *Graph) Members(a netx.Addr) []netx.Addr {
	root := g.find(a)
	var out []netx.Addr
	for x := range g.parent {
		if g.find(x) == root {
			out = append(out, x)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Conflicts returns how many unions were refused due to negative evidence.
func (g *Graph) Conflicts() int { return g.conflicts }

// Sets returns every multi-address set, sorted by representative.
func (g *Graph) Sets() [][]netx.Addr {
	bySet := make(map[netx.Addr][]netx.Addr)
	for x := range g.parent {
		r := g.find(x)
		bySet[r] = append(bySet[r], x)
	}
	var roots []netx.Addr
	for r, m := range bySet {
		if len(m) > 1 {
			roots = append(roots, r)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	out := make([][]netx.Addr, 0, len(roots))
	for _, r := range roots {
		m := bySet[r]
		sort.Slice(m, func(i, j int) bool { return m[i] < m[j] })
		out = append(out, m)
	}
	return out
}
