package alias

import (
	"sort"

	"bdrmap/internal/netx"
)

// Graph collapses interface addresses into inferred routers via
// transitive closure over positive alias pairs, refusing any union that
// would place a negatively-tested pair on one router (§5.3 "when building
// a router ... we only used pairs of IP addresses where none of the
// measurements suggested a pair were not aliases").
//
// The union-find runs on dense interned address IDs — flat int32 parent
// and rank slices instead of address-keyed maps — so a find is two array
// loads after path compression. The address-based API is unchanged;
// Canonical still returns the representative *address*, and which address
// roots a set is identical to the map-based implementation (union by
// rank, first root wins ties).
type Graph struct {
	in     *netx.Intern
	parent []int32
	rank   []int32
	// negs lists address pairs with negative evidence against members of
	// the set rooted at the key (kept at each root; merged on union).
	negs map[int32][]pairKey
	neg  map[pairKey]bool

	conflicts int
}

// NewGraph builds an empty alias graph.
func NewGraph() *Graph {
	return &Graph{
		in:   netx.NewIntern(256),
		negs: make(map[int32][]pairKey),
		neg:  make(map[pairKey]bool),
	}
}

// FromResolver builds the graph from a resolver's recorded verdicts.
func FromResolver(r *Resolver) *Graph {
	g := NewGraph()
	for _, k := range r.Negatives() {
		g.AddNegative(k[0], k[1])
	}
	// Deterministic union order.
	pos := r.Positives()
	sort.Slice(pos, func(i, j int) bool {
		if pos[i][0] != pos[j][0] {
			return pos[i][0] < pos[j][0]
		}
		return pos[i][1] < pos[j][1]
	})
	for _, k := range pos {
		g.Union(k[0], k[1])
	}
	return g
}

// id interns a, growing the parent/rank slabs to cover it.
func (g *Graph) id(a netx.Addr) int32 {
	id := g.in.ID(a)
	for int(id) >= len(g.parent) {
		g.parent = append(g.parent, int32(len(g.parent)))
		g.rank = append(g.rank, 0)
	}
	return id
}

// AddNegative records that a and b must not share a router. It reports
// whether the constraint is satisfiable: false means the pair was already
// merged by earlier positive evidence (a measurement conflict — union-find
// cannot split, so the merge stands and the conflict is counted).
func (g *Graph) AddNegative(a, b netx.Addr) bool {
	k := pkey(a, b)
	if g.neg[k] {
		return !g.SameRouter(a, b)
	}
	g.neg[k] = true
	ra, rb := g.findID(g.id(a)), g.findID(g.id(b))
	if ra == rb {
		g.conflicts++
		return false
	}
	g.negs[ra] = append(g.negs[ra], k)
	g.negs[rb] = append(g.negs[rb], k)
	return true
}

// Union merges the sets of a and b unless negative evidence forbids it.
// It reports whether the merge happened (or they were already together).
func (g *Graph) Union(a, b netx.Addr) bool {
	ra, rb := g.findID(g.id(a)), g.findID(g.id(b))
	if ra == rb {
		return true
	}
	// Any negative pair with one side in each set blocks the union.
	for _, k := range g.negs[ra] {
		x, y := g.findID(g.id(k[0])), g.findID(g.id(k[1]))
		if (x == ra && y == rb) || (x == rb && y == ra) {
			g.conflicts++
			return false
		}
	}
	for _, k := range g.negs[rb] {
		x, y := g.findID(g.id(k[0])), g.findID(g.id(k[1]))
		if (x == ra && y == rb) || (x == rb && y == ra) {
			g.conflicts++
			return false
		}
	}
	// Union by rank.
	if g.rank[ra] < g.rank[rb] {
		ra, rb = rb, ra
	}
	g.parent[rb] = ra
	if g.rank[ra] == g.rank[rb] {
		g.rank[ra]++
	}
	g.negs[ra] = append(g.negs[ra], g.negs[rb]...)
	delete(g.negs, rb)
	return true
}

// findID returns the root of id's set with full path compression.
func (g *Graph) findID(id int32) int32 {
	root := id
	for g.parent[root] != root {
		root = g.parent[root]
	}
	for g.parent[id] != root {
		g.parent[id], id = root, g.parent[id]
	}
	return root
}

func (g *Graph) find(a netx.Addr) netx.Addr {
	return g.in.Addr(g.findID(g.id(a)))
}

// SameRouter reports whether a and b were merged.
func (g *Graph) SameRouter(a, b netx.Addr) bool {
	return g.findID(g.id(a)) == g.findID(g.id(b))
}

// Canonical returns the representative address of a's set.
func (g *Graph) Canonical(a netx.Addr) netx.Addr { return g.find(a) }

// Members returns all addresses sharing a's set, sorted.
func (g *Graph) Members(a netx.Addr) []netx.Addr {
	root := g.findID(g.id(a))
	var out []netx.Addr
	for x := range g.parent {
		if g.findID(int32(x)) == root {
			out = append(out, g.in.Addr(int32(x)))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Conflicts returns how many unions were refused due to negative evidence.
func (g *Graph) Conflicts() int { return g.conflicts }

// Sets returns every multi-address set, sorted by representative.
func (g *Graph) Sets() [][]netx.Addr {
	bySet := make(map[int32][]netx.Addr)
	for x := range g.parent {
		r := g.findID(int32(x))
		bySet[r] = append(bySet[r], g.in.Addr(int32(x)))
	}
	var roots []netx.Addr
	for r, m := range bySet {
		if len(m) > 1 {
			roots = append(roots, g.in.Addr(r))
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	out := make([][]netx.Addr, 0, len(roots))
	for _, r := range roots {
		id, _ := g.in.Lookup(r)
		m := bySet[g.findID(id)]
		sort.Slice(m, func(i, j int) bool { return m[i] < m[j] })
		out = append(out, m)
	}
	return out
}
