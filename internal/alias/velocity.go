package alias

import (
	"fmt"
	"time"

	"bdrmap/internal/netx"
	"bdrmap/internal/obs"
	"bdrmap/internal/probe"
)

// Velocity-based alias inference, after RadarGun and MIDAR (§3 of the
// paper): instead of requiring tightly interleaved samples like Ally, each
// address's IP-ID time series is collected over a window and modeled as a
// counter advancing at some rate. Two addresses share a counter when one
// rate-consistent line fits the *merged* series — which tolerates rate
// limiting and uneven scheduling that break classic Ally interleaving.

// VelocityConfig tunes the sampler.
type VelocityConfig struct {
	Samples  int           // per address (default 8)
	Gap      time.Duration // between samples (default 2s)
	MaxResid float64       // max tolerated residual, IDs (default 200)
	MinRate  float64       // IDs/sec below which a counter is "stalled" (default 0.5)
}

func (c VelocityConfig) withDefaults() VelocityConfig {
	if c.Samples == 0 {
		c.Samples = 8
	}
	if c.Gap == 0 {
		c.Gap = 2 * time.Second
	}
	if c.MaxResid == 0 {
		c.MaxResid = 200
	}
	if c.MinRate == 0 {
		c.MinRate = 0.5
	}
	return c
}

type idSample struct {
	t  float64 // seconds
	id uint16
}

// Velocity runs the velocity test on a pair and records the verdict.
func (r *Resolver) Velocity(a, b netx.Addr, cfg VelocityConfig) Verdict {
	if a == b {
		return AliasYes
	}
	if v := r.Verdict(a, b); v != Unknown {
		return v
	}
	cfg = cfg.withDefaults()
	method, ok := r.pickMethod(a, b)
	if !ok {
		return Unknown
	}
	sa := r.sampleSeries(a, method, cfg)
	sb := r.sampleSeries(b, method, cfg)
	if len(sa) < 3 || len(sb) < 3 {
		return Unknown
	}
	ra, oka := fitCounter(sa, cfg)
	rb, okb := fitCounter(sb, cfg)
	if !oka || !okb {
		return Unknown // at least one series is not a counter at all
	}
	no := func(why string) Verdict {
		r.Record(a, b, AliasNo)
		r.emit("velocity", a, b, obs.KV("verdict", AliasNo.String()), obs.KV("why", why),
			obs.Attr{K: "~rates", V: fmt.Sprintf("%.1f,%.1f", ra, rb)})
		return AliasNo
	}
	// Rates must agree within 25% before merging is even plausible.
	if !ratesClose(ra, rb, 0.25) {
		return no("rate-mismatch")
	}
	merged := append(append([]idSample(nil), sa...), sb...)
	sortSamples(merged)
	// MIDAR's monotonicity requirement on the merged series.
	for i := 1; i < len(merged); i++ {
		d := merged[i].id - merged[i-1].id
		if d >= 1<<15 {
			return no("merged-non-monotonic")
		}
	}
	if _, ok := fitCounter(merged, cfg); !ok {
		return no("merged-misfit")
	}
	r.Record(a, b, AliasYes)
	r.emit("velocity", a, b, obs.KV("verdict", AliasYes.String()),
		obs.Attr{K: "~rates", V: fmt.Sprintf("%.1f,%.1f", ra, rb)})
	return AliasYes
}

// sampleSeries collects timestamped IP-ID samples for one address.
func (r *Resolver) sampleSeries(a netx.Addr, m probe.Method, cfg VelocityConfig) []idSample {
	var out []idSample
	for i := 0; i < cfg.Samples; i++ {
		resp := r.Src.Probe(a, m)
		if resp.OK && resp.IPID != 0 {
			out = append(out, idSample{t: resp.When.Seconds(), id: resp.IPID})
		}
		r.Src.Advance(cfg.Gap)
	}
	return out
}

// fitCounter checks that a sample series is consistent with a single
// counter: unwrap the 16-bit IDs assuming monotonic growth, fit a line by
// least squares, and bound the residuals. Returns the rate in IDs/sec.
func fitCounter(s []idSample, cfg VelocityConfig) (rate float64, ok bool) {
	if len(s) < 3 {
		return 0, false
	}
	// Unwrap.
	un := make([]float64, len(s))
	acc := float64(s[0].id)
	un[0] = acc
	for i := 1; i < len(s); i++ {
		d := s[i].id - s[i-1].id // uint16 arithmetic handles wrap
		if d >= 1<<15 {
			return 0, false // decreasing: not one monotonic counter
		}
		acc += float64(d)
		un[i] = acc
	}
	// Least squares y = a + r*t.
	var st, sy, stt, sty float64
	n := float64(len(s))
	for i := range s {
		st += s[i].t
		sy += un[i]
		stt += s[i].t * s[i].t
		sty += s[i].t * un[i]
	}
	den := n*stt - st*st
	if den == 0 {
		return 0, false
	}
	rate = (n*sty - st*sy) / den
	a0 := (sy - rate*st) / n
	if rate < cfg.MinRate {
		return 0, false
	}
	for i := range s {
		resid := un[i] - (a0 + rate*s[i].t)
		if resid < 0 {
			resid = -resid
		}
		if resid > cfg.MaxResid {
			return 0, false
		}
	}
	return rate, true
}

func ratesClose(a, b, tol float64) bool {
	if a <= 0 || b <= 0 {
		return false
	}
	hi, lo := a, b
	if hi < lo {
		hi, lo = lo, hi
	}
	return (hi-lo)/hi <= tol
}

func sortSamples(s []idSample) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].t < s[j-1].t; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
