package alias

import (
	"testing"

	"bdrmap/internal/netx"
	"bdrmap/internal/topo"
)

func TestVelocitySameRouter(t *testing.T) {
	e, n, res := setup(t, 21)
	r, addrs := findRouter(e, n, n.VPs[0], func(r *topo.Router) bool {
		return r.Behavior.IPID == topo.IPIDShared && !r.Behavior.NoEchoReply
	})
	if r == nil {
		t.Skip("no shared-counter router with two reachable ifaces")
	}
	if v := res.Velocity(addrs[0], addrs[1], VelocityConfig{}); v != AliasYes {
		t.Fatalf("Velocity(%v, %v) = %v, want alias", addrs[0], addrs[1], v)
	}
}

func TestVelocityDifferentRouters(t *testing.T) {
	e, n, res := setup(t, 22)
	type entry struct {
		a  netx.Addr
		id topo.RouterID
	}
	var addrs []entry
	for _, r := range n.Routers {
		if r.Behavior.IPID != topo.IPIDShared || r.Behavior.NoEchoReply {
			continue
		}
		for _, ifc := range r.Ifaces {
			if !ifc.Addr.IsZero() && e.Reachable(n.VPs[0], ifc.Addr) {
				addrs = append(addrs, entry{ifc.Addr, r.ID})
				break
			}
		}
		if len(addrs) == 4 {
			break
		}
	}
	if len(addrs) < 2 {
		t.Skip("not enough reachable shared-counter routers")
	}
	falsePos := 0
	pairs := 0
	for i := 0; i < len(addrs); i++ {
		for j := i + 1; j < len(addrs); j++ {
			pairs++
			if res.Velocity(addrs[i].a, addrs[j].a, VelocityConfig{}) == AliasYes {
				falsePos++
			}
		}
	}
	if falsePos > 0 {
		t.Fatalf("%d/%d false positives across routers", falsePos, pairs)
	}
}

func TestVelocityRandomIPIDUnknownOrNo(t *testing.T) {
	e, n, res := setup(t, 23)
	r, addrs := findRouter(e, n, n.VPs[0], func(r *topo.Router) bool {
		return r.Behavior.IPID == topo.IPIDRandom && !r.Behavior.NoEchoReply
	})
	if r == nil {
		t.Skip("no random-IPID router")
	}
	if v := res.Velocity(addrs[0], addrs[1], VelocityConfig{}); v == AliasYes {
		t.Fatal("velocity accepted random IPIDs")
	}
}

func TestFitCounterRejectsNoise(t *testing.T) {
	cfg := VelocityConfig{}.withDefaults()
	// A clean 100 IDs/sec counter.
	var clean []idSample
	for i := 0; i < 8; i++ {
		clean = append(clean, idSample{t: float64(i), id: uint16(1000 + 100*i)})
	}
	if rate, ok := fitCounter(clean, cfg); !ok || rate < 90 || rate > 110 {
		t.Fatalf("clean fit: rate=%v ok=%v", rate, ok)
	}
	// Wrapping counter is fine.
	var wrap []idSample
	for i := 0; i < 8; i++ {
		wrap = append(wrap, idSample{t: float64(i), id: uint16(65400 + 100*i)})
	}
	if _, ok := fitCounter(wrap, cfg); !ok {
		t.Fatal("wrap-around rejected")
	}
	// Random garbage must be rejected.
	garbage := []idSample{{0, 40000}, {1, 100}, {2, 30000}, {3, 5}, {4, 60000}}
	if _, ok := fitCounter(garbage, cfg); ok {
		t.Fatal("garbage accepted as a counter")
	}
	// A stalled counter is rejected (MinRate).
	flat := []idSample{{0, 5}, {1, 5}, {2, 5}, {3, 5}}
	if _, ok := fitCounter(flat, cfg); ok {
		t.Fatal("stalled counter accepted")
	}
}

func TestRatesClose(t *testing.T) {
	if !ratesClose(100, 110, 0.25) {
		t.Error("10% apart should be close at 25% tolerance")
	}
	if ratesClose(100, 200, 0.25) {
		t.Error("2x apart should not be close")
	}
	if ratesClose(0, 100, 0.25) || ratesClose(100, -5, 0.25) {
		t.Error("non-positive rates can never be close")
	}
}
