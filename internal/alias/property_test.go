package alias

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bdrmap/internal/netx"
)

// TestGraphInvariantsRandomOps drives the constrained union-find with a
// random operation sequence and checks its invariants against a reference
// model after every step.
func TestGraphInvariantsRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph()
		const nAddrs = 24
		type op struct {
			neg  bool
			a, b netx.Addr
		}
		var negs []op
		for i := 0; i < 120; i++ {
			a := netx.Addr(rng.Intn(nAddrs))
			b := netx.Addr(rng.Intn(nAddrs))
			if a == b {
				continue
			}
			if rng.Float64() < 0.3 {
				// Only accepted negatives (pairs not already merged) are
				// enforceable; rejected ones count as conflicts.
				if g.AddNegative(a, b) {
					negs = append(negs, op{true, a, b})
				}
			} else {
				g.Union(a, b)
			}
			// Invariant: no negative pair ever shares a set.
			for _, n := range negs {
				if g.SameRouter(n.a, n.b) {
					return false
				}
			}
		}
		// Invariant: SameRouter is symmetric and transitive via canon.
		for a := netx.Addr(0); a < nAddrs; a++ {
			for b := netx.Addr(0); b < nAddrs; b++ {
				if g.SameRouter(a, b) != g.SameRouter(b, a) {
					return false
				}
				if g.SameRouter(a, b) && g.Canonical(a) != g.Canonical(b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestMembersConsistent: Members lists exactly the addresses sharing a set.
func TestMembersConsistent(t *testing.T) {
	g := NewGraph()
	g.Union(1, 2)
	g.Union(2, 3)
	g.Union(10, 11)
	for _, a := range []netx.Addr{1, 2, 3} {
		m := g.Members(a)
		if len(m) != 3 {
			t.Fatalf("Members(%v) = %v", a, m)
		}
	}
	if len(g.Members(10)) != 2 {
		t.Fatalf("Members(10) = %v", g.Members(10))
	}
}

// TestVerdictPriority: negative evidence always dominates (§5.3).
func TestVerdictPriority(t *testing.T) {
	r := &Resolver{pos: map[pairKey]bool{}, neg: map[pairKey]bool{}}
	r.Record(1, 2, AliasYes)
	r.Record(2, 1, AliasNo) // order-insensitive key
	if v := r.Verdict(1, 2); v != AliasNo {
		t.Fatalf("verdict = %v, want negative dominance", v)
	}
}
