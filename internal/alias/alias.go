// Package alias implements the alias-resolution techniques bdrmap uses to
// collapse the interface-level traceroute graph into routers (§5.3):
//
//   - Ally: probes two addresses in an interleaved sequence and infers a
//     shared IP-ID counter when the merged samples form one increasing
//     sequence. Four probe methods (UDP, TCP, ICMP-echo, TTL-limited)
//     maximize the chance an address responds. Measurements repeat five
//     times at five-minute intervals, and the MIDAR-style monotonicity
//     requirement (non-overlapping samples must strictly increase) guards
//     against two independent counters that temporarily overlap.
//   - Mercator: probes an unused UDP port and infers aliases when the ICMP
//     port-unreachable responses share a source address.
//   - Prefixscan: infers whether a traceroute address is the inbound
//     interface of a router by testing whether its /31 or /30 subnet mate
//     is an alias of the previous hop.
//
// Verdicts feed a union-find constrained by negative evidence: transitive
// closure never merges sets containing a pair some measurement rejected.
package alias

import (
	"fmt"
	"strings"
	"time"

	"bdrmap/internal/netx"
	"bdrmap/internal/obs"
	"bdrmap/internal/probe"
	"bdrmap/internal/topo"
)

// Verdict is the outcome of an alias test.
type Verdict int8

// Verdicts.
const (
	Unknown Verdict = iota // no usable signal
	AliasYes
	AliasNo
)

func (v Verdict) String() string {
	switch v {
	case AliasYes:
		return "alias"
	case AliasNo:
		return "not-alias"
	default:
		return "unknown"
	}
}

// Config tunes the resolver; zero values select the paper's parameters.
type Config struct {
	AllyRounds   int           // default 5
	AllyInterval time.Duration // default 5 minutes
	ProbeGap     time.Duration // default 20ms between interleaved probes
	MaxSpan      uint16        // max IPID span of one interleaved sequence (default 2000)
}

func (c Config) withDefaults() Config {
	if c.AllyRounds == 0 {
		c.AllyRounds = 5
	}
	if c.AllyInterval == 0 {
		c.AllyInterval = 5 * time.Minute
	}
	if c.ProbeGap == 0 {
		c.ProbeGap = 20 * time.Millisecond
	}
	if c.MaxSpan == 0 {
		c.MaxSpan = 2000
	}
	return c
}

// ProbeSource issues single measurement probes and controls measurement
// pacing. A local source wraps a probe engine and vantage point; a remote
// source forwards probes over the scamper control protocol (§5.8).
type ProbeSource interface {
	Probe(target netx.Addr, m probe.Method) probe.Response
	Advance(d time.Duration)
}

// LocalSource adapts a probe engine + vantage point to ProbeSource.
type LocalSource struct {
	E  *probe.Engine
	VP *topo.VP
}

// Probe sends one probe from the vantage point.
func (s LocalSource) Probe(target netx.Addr, m probe.Method) probe.Response {
	return s.E.Probe(s.VP, target, m)
}

// Advance moves the simulated clock.
func (s LocalSource) Advance(d time.Duration) { s.E.Advance(d) }

// Resolver drives alias-resolution measurements through a probe source
// from one vantage point, recording every verdict.
type Resolver struct {
	Src ProbeSource
	Cfg Config

	// Trace receives pair-test provenance events (verdicts with the IP-ID
	// samples behind them). Nil disables them.
	Trace *obs.Tracer
	// Now supplies stage-relative simulated timestamps for trace events;
	// nil stamps zero (events still order by sequence number).
	Now func() int64

	pos map[pairKey]bool
	neg map[pairKey]bool
}

// NewResolver builds a resolver with the given configuration.
func NewResolver(src ProbeSource, cfg Config) *Resolver {
	return &Resolver{
		Src: src, Cfg: cfg.withDefaults(),
		pos: make(map[pairKey]bool),
		neg: make(map[pairKey]bool),
	}
}

type pairKey [2]netx.Addr

func pkey(a, b netx.Addr) pairKey {
	if a < b {
		return pairKey{a, b}
	}
	return pairKey{b, a}
}

// NowNS returns the stage-relative simulated timestamp for trace events.
func (r *Resolver) NowNS() int64 {
	if r.Now != nil {
		return r.Now()
	}
	return 0
}

// emit records one pair-test provenance event. The subject is the
// canonically ordered "a|b" pair.
func (r *Resolver) emit(kind string, a, b netx.Addr, attrs ...obs.Attr) {
	if r.Trace == nil {
		return
	}
	k := pkey(a, b)
	r.Trace.Emit(obs.StageAlias, kind, k[0].String()+"|"+k[1].String(), r.NowNS(), attrs...)
}

// fmtIDs renders IP-ID samples as comma-separated decimals — evidence for
// trace events. The values are volatile (lane-state-dependent across
// worker counts), so callers attach them under a '~'-prefixed key.
func fmtIDs(ids []uint16) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("%d", id)
	}
	return strings.Join(parts, ",")
}

// Record stores an externally derived verdict (e.g. the analytical aliases
// of §5.4.7).
func (r *Resolver) Record(a, b netx.Addr, v Verdict) {
	switch v {
	case AliasYes:
		r.pos[pkey(a, b)] = true
	case AliasNo:
		r.neg[pkey(a, b)] = true
	}
}

// Verdict returns the stored verdict for a pair.
func (r *Resolver) Verdict(a, b netx.Addr) Verdict {
	k := pkey(a, b)
	switch {
	case r.neg[k]: // negative evidence dominates (§5.3 "limit false aliases")
		return AliasNo
	case r.pos[k]:
		return AliasYes
	default:
		return Unknown
	}
}

// allyMethods is the order in which probe methods are attempted.
var allyMethods = []probe.Method{
	probe.MethodICMPEcho, probe.MethodUDP, probe.MethodTCPAck, probe.MethodTTLLimited,
}

// Ally runs the full repeated-Ally test on a pair and records the verdict.
// Per §5.3, measurements repeat at intervals and any round rejecting the
// shared-counter hypothesis makes the pair not-alias.
func (r *Resolver) Ally(a, b netx.Addr) Verdict {
	if a == b {
		return AliasYes
	}
	if v := r.Verdict(a, b); v != Unknown {
		return v
	}
	method, ok := r.pickMethod(a, b)
	if !ok {
		return Unknown
	}
	accepted := 0
	var lastIDs []uint16
	for round := 0; round < r.Cfg.AllyRounds; round++ {
		if round > 0 {
			r.Src.Advance(r.Cfg.AllyInterval)
		}
		v, ids := r.allyOnce(a, b, method)
		lastIDs = ids
		switch v {
		case AliasYes:
			accepted++
		case AliasNo:
			r.Record(a, b, AliasNo)
			r.emit("ally", a, b, obs.KV("verdict", AliasNo.String()),
				obs.KV("method", method.String()), obs.KV("round", round),
				obs.Attr{K: "~ipids", V: fmtIDs(ids)})
			return AliasNo
		}
	}
	if accepted == r.Cfg.AllyRounds {
		r.Record(a, b, AliasYes)
		r.emit("ally", a, b, obs.KV("verdict", AliasYes.String()),
			obs.KV("method", method.String()), obs.KV("rounds", accepted),
			obs.Attr{K: "~ipids", V: fmtIDs(lastIDs)})
		return AliasYes
	}
	return Unknown
}

// pickMethod finds the first method both addresses answer.
func (r *Resolver) pickMethod(a, b netx.Addr) (probe.Method, bool) {
	for _, m := range allyMethods {
		ra := r.Src.Probe(a, m)
		rb := r.Src.Probe(b, m)
		if ra.OK && rb.OK {
			return m, true
		}
	}
	return 0, false
}

// allyOnce runs one interleaved sequence a,b,a,b,a,b and applies the
// monotonicity test, returning the verdict and the sampled IP-IDs.
func (r *Resolver) allyOnce(a, b netx.Addr, m probe.Method) (Verdict, []uint16) {
	var ids []uint16
	targets := [...]netx.Addr{a, b, a, b, a, b}
	for _, t := range targets {
		resp := r.Src.Probe(t, m)
		if !resp.OK {
			return Unknown, ids
		}
		ids = append(ids, resp.IPID)
		r.Src.Advance(r.Cfg.ProbeGap)
	}
	allZero := true
	for _, id := range ids {
		if id != 0 {
			allZero = false
		}
	}
	if allZero {
		return Unknown, ids // no counter at all; Ally is blind here
	}
	// Each address's own subsequence must behave like a counter at all; a
	// router using random IP-IDs gives no evidence either way (Ally is
	// blind, and §5.4.7's analytical step may later supply the aliases).
	if !monotonic(ids[0], ids[2], ids[4]) || !monotonic(ids[1], ids[3], ids[5]) {
		return Unknown, ids
	}
	// MIDAR-style: the merged samples must strictly increase (mod 2^16)
	// with a bounded total span — two distinct (per-router or
	// per-interface) counters fail this even though each is monotonic.
	var span uint16
	for i := 1; i < len(ids); i++ {
		d := ids[i] - ids[i-1]
		if d == 0 || d >= 1<<15 {
			return AliasNo, ids
		}
		span += d
		if span > r.Cfg.MaxSpan {
			return AliasNo, ids
		}
	}
	return AliasYes, ids
}

// monotonic reports whether three samples of one address look like a
// counter: strictly increasing with small steps (mod 2^16).
func monotonic(a, b, c uint16) bool {
	d1, d2 := b-a, c-b
	return d1 > 0 && d1 < 4096 && d2 > 0 && d2 < 4096
}

// Mercator tests whether UDP port-unreachable responses from both
// addresses share a common source.
func (r *Resolver) Mercator(a, b netx.Addr) Verdict {
	if a == b {
		return AliasYes
	}
	ra := r.Src.Probe(a, probe.MethodUDP)
	rb := r.Src.Probe(b, probe.MethodUDP)
	if !ra.OK || !rb.OK {
		return Unknown
	}
	if ra.From == rb.From {
		r.Record(a, b, AliasYes)
		r.emit("mercator", a, b, obs.KV("verdict", AliasYes.String()),
			obs.KV("from", ra.From.String()))
		return AliasYes
	}
	if ra.From == a && rb.From == b {
		// Both answered from the probed address: no common-source signal
		// either way.
		return Unknown
	}
	return Unknown
}

// Resolve runs Mercator, Ally, and finally the velocity test on a pair,
// returning the first conclusive verdict. Velocity recovers pairs whose
// tight Ally interleaving was broken by rate limiting or scheduling.
func (r *Resolver) Resolve(a, b netx.Addr) Verdict {
	if v := r.Verdict(a, b); v != Unknown {
		return v
	}
	if v := r.Mercator(a, b); v == AliasYes {
		return v
	}
	if v := r.Ally(a, b); v != Unknown {
		return v
	}
	return r.Velocity(a, b, VelocityConfig{})
}

// Prefixscan attempts to confirm that addr is the inbound interface of the
// router it sits on by testing whether its point-to-point subnet mate is
// an alias of prevHop (§5.3). It returns the mate and true on success.
func (r *Resolver) Prefixscan(prevHop, addr netx.Addr) (netx.Addr, bool) {
	mate, ok, _ := r.PrefixscanTrace(prevHop, addr)
	return mate, ok
}

// PairVerdict records one pair test a compound operation performed — the
// replay substrate for cross-round caching: re-Record()ing the verdicts in
// order reproduces the resolver state the operation left behind without
// re-sending its probes.
type PairVerdict struct {
	A, B netx.Addr
	V    Verdict
}

// PrefixscanTrace is Prefixscan, additionally reporting every (prevHop,
// mate) pair it tested with the verdict each test reached. The trace covers
// exactly the Resolve calls Prefixscan would make, in order, so replaying
// it with Record leaves the pos/neg maps identical to a live run.
func (r *Resolver) PrefixscanTrace(prevHop, addr netx.Addr) (netx.Addr, bool, []PairVerdict) {
	var tried []PairVerdict
	for _, plen := range []int{31, 30} {
		mate, ok := addr.PointToPointMate(plen)
		if !ok || mate == prevHop || mate == addr {
			continue
		}
		v := r.Resolve(prevHop, mate)
		tried = append(tried, PairVerdict{A: prevHop, B: mate, V: v})
		if v == AliasYes {
			return mate, true, tried
		}
	}
	return 0, false, tried
}

// Positives returns all pairs with a positive verdict.
func (r *Resolver) Positives() [][2]netx.Addr {
	out := make([][2]netx.Addr, 0, len(r.pos))
	for k := range r.pos {
		if !r.neg[k] {
			out = append(out, k)
		}
	}
	return out
}

// Negatives returns all pairs with a negative verdict.
func (r *Resolver) Negatives() [][2]netx.Addr {
	out := make([][2]netx.Addr, 0, len(r.neg))
	for k := range r.neg {
		out = append(out, k)
	}
	return out
}
