package netx

// Intern maps interface addresses to dense int32 IDs assigned in first-seen
// order. IDs index flat slices everywhere a map keyed by address would
// otherwise be needed: the inference core's node table, the alias graph's
// union-find, and mapdb's owner index all share one table built while the
// dataset is collected, so the hot paths run on pointer-free int32 slabs.
//
// The zero Intern is ready to use. Lookups on a populated table perform no
// allocation (pinned by TestInternLookupZeroAlloc); ID allocates only when
// it grows the table. An Intern is not safe for concurrent mutation; build
// it single-threaded (the driver interns after its worker barrier), then
// share it read-only.
type Intern struct {
	ids   map[Addr]int32
	addrs []Addr
}

// NewIntern returns an empty table with room for n addresses.
func NewIntern(n int) *Intern {
	return &Intern{
		ids:   make(map[Addr]int32, n),
		addrs: make([]Addr, 0, n),
	}
}

// ID returns a's dense ID, assigning the next free one on first sight.
func (t *Intern) ID(a Addr) int32 {
	if id, ok := t.ids[a]; ok {
		return id
	}
	if t.ids == nil {
		t.ids = make(map[Addr]int32)
	}
	id := int32(len(t.addrs))
	t.ids[a] = id
	t.addrs = append(t.addrs, a)
	return id
}

// Lookup returns a's ID without assigning one.
func (t *Intern) Lookup(a Addr) (int32, bool) {
	id, ok := t.ids[a]
	return id, ok
}

// Addr returns the address holding ID id. It panics when id was never
// assigned, the same way an out-of-range slice index would.
func (t *Intern) Addr(id int32) Addr { return t.addrs[id] }

// Len returns how many addresses have been assigned IDs. Valid IDs are
// exactly [0, Len).
func (t *Intern) Len() int { return len(t.addrs) }

// Reset forgets every assignment but keeps the backing storage, so a table
// reused across rounds reaches steady state without reallocating.
func (t *Intern) Reset() {
	clear(t.ids)
	t.addrs = t.addrs[:0]
}
