package netx

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAggregateSiblings(t *testing.T) {
	in := []Prefix{
		MustParsePrefix("10.0.0.0/25"),
		MustParsePrefix("10.0.0.128/25"),
	}
	out := Aggregate(in)
	if len(out) != 1 || out[0] != MustParsePrefix("10.0.0.0/24") {
		t.Fatalf("got %v", out)
	}
}

func TestAggregateCascade(t *testing.T) {
	// Four /26 quarters collapse all the way to the /24.
	var in []Prefix
	p := MustParsePrefix("192.0.2.0/24")
	for i := 0; i < 4; i++ {
		in = append(in, p.Subnet(26, i))
	}
	out := Aggregate(in)
	if len(out) != 1 || out[0] != p {
		t.Fatalf("got %v", out)
	}
}

func TestAggregateDropsCovered(t *testing.T) {
	in := []Prefix{
		MustParsePrefix("10.0.0.0/8"),
		MustParsePrefix("10.1.0.0/16"),
		MustParsePrefix("10.1.2.0/24"),
		MustParsePrefix("10.0.0.0/8"), // duplicate
	}
	out := Aggregate(in)
	if len(out) != 1 || out[0] != MustParsePrefix("10.0.0.0/8") {
		t.Fatalf("got %v", out)
	}
}

func TestAggregateKeepsDisjoint(t *testing.T) {
	in := []Prefix{
		MustParsePrefix("10.0.0.0/24"),
		MustParsePrefix("10.0.2.0/24"), // not a sibling of the first
	}
	out := Aggregate(in)
	if len(out) != 2 {
		t.Fatalf("got %v", out)
	}
}

func TestAggregateEmpty(t *testing.T) {
	if out := Aggregate(nil); out != nil {
		t.Fatalf("got %v", out)
	}
}

// Property: aggregation never changes the covered address set, never
// grows the list, and is idempotent.
func TestAggregatePreservesCoverage(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var in []Prefix
		nBlocks := 1 + rng.Intn(20)
		for i := 0; i < nBlocks; i++ {
			base := MakePrefix(Addr(rng.Uint32()), 10+rng.Intn(6))
			// Sometimes insert a full sibling pair to force merges.
			if rng.Float64() < 0.5 && base.Len < 32 {
				lo, hi := base.Halves()
				in = append(in, lo, hi)
			} else {
				in = append(in, base)
			}
		}
		out := Aggregate(in)
		if len(out) > len(in) {
			return false
		}
		if !CoversSameAddrs(in, out) {
			return false
		}
		again := Aggregate(out)
		if len(again) != len(out) {
			return false
		}
		return CoversSameAddrs(out, again)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCoversSameAddrs(t *testing.T) {
	a := []Prefix{MustParsePrefix("10.0.0.0/25"), MustParsePrefix("10.0.0.128/25")}
	b := []Prefix{MustParsePrefix("10.0.0.0/24")}
	if !CoversSameAddrs(a, b) {
		t.Fatal("sibling pair should equal parent")
	}
	c := []Prefix{MustParsePrefix("10.0.0.0/24"), MustParsePrefix("10.0.1.0/24")}
	if CoversSameAddrs(b, c) {
		t.Fatal("different coverage reported equal")
	}
	if !CoversSameAddrs(nil, nil) {
		t.Fatal("empty lists are equal")
	}
}
