package netx

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTrieLongestMatch(t *testing.T) {
	var tr Trie[int]
	tr.Insert(MustParsePrefix("10.0.0.0/8"), 8)
	tr.Insert(MustParsePrefix("10.1.0.0/16"), 16)
	tr.Insert(MustParsePrefix("10.1.2.0/24"), 24)

	cases := []struct {
		addr string
		want int
		ok   bool
	}{
		{"10.1.2.3", 24, true},
		{"10.1.3.3", 16, true},
		{"10.2.0.1", 8, true},
		{"11.0.0.1", 0, false},
	}
	for _, c := range cases {
		got, ok := tr.Lookup(MustParseAddr(c.addr))
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("Lookup(%s) = %v, %v; want %v, %v", c.addr, got, ok, c.want, c.ok)
		}
	}
}

func TestTrieLookupPrefix(t *testing.T) {
	var tr Trie[string]
	tr.Insert(MustParsePrefix("128.66.0.0/16"), "X")
	tr.Insert(MustParsePrefix("128.66.2.0/24"), "Y")
	v, p, ok := tr.LookupPrefix(MustParseAddr("128.66.2.200"))
	if !ok || v != "Y" || p != MustParsePrefix("128.66.2.0/24") {
		t.Fatalf("got %v %v %v", v, p, ok)
	}
	v, p, ok = tr.LookupPrefix(MustParseAddr("128.66.3.1"))
	if !ok || v != "X" || p != MustParsePrefix("128.66.0.0/16") {
		t.Fatalf("got %v %v %v", v, p, ok)
	}
}

func TestTrieDefaultRoute(t *testing.T) {
	var tr Trie[string]
	tr.Insert(MustParsePrefix("0.0.0.0/0"), "default")
	v, ok := tr.Lookup(MustParseAddr("198.51.100.7"))
	if !ok || v != "default" {
		t.Fatalf("default route lookup failed: %v %v", v, ok)
	}
}

func TestTrieExactAndRemove(t *testing.T) {
	var tr Trie[int]
	p := MustParsePrefix("192.0.2.0/24")
	tr.Insert(p, 7)
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if v, ok := tr.Exact(p); !ok || v != 7 {
		t.Fatalf("Exact = %v %v", v, ok)
	}
	if _, ok := tr.Exact(MustParsePrefix("192.0.2.0/25")); ok {
		t.Fatal("Exact should miss on different length")
	}
	if !tr.Remove(p) {
		t.Fatal("Remove should succeed")
	}
	if tr.Remove(p) {
		t.Fatal("second Remove should fail")
	}
	if tr.Len() != 0 {
		t.Fatalf("Len after remove = %d", tr.Len())
	}
	if _, ok := tr.Lookup(MustParseAddr("192.0.2.1")); ok {
		t.Fatal("Lookup after remove should miss")
	}
}

func TestTrieInsertReplaces(t *testing.T) {
	var tr Trie[int]
	p := MustParsePrefix("10.0.0.0/8")
	tr.Insert(p, 1)
	tr.Insert(p, 2)
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	if v, _ := tr.Exact(p); v != 2 {
		t.Fatalf("value = %d, want 2", v)
	}
}

func TestTrieHostRoute(t *testing.T) {
	var tr Trie[int]
	a := MustParseAddr("203.0.113.5")
	tr.Insert(MakePrefix(a, 32), 32)
	tr.Insert(MustParsePrefix("203.0.113.0/24"), 24)
	if v, _ := tr.Lookup(a); v != 32 {
		t.Fatalf("host route not preferred: %d", v)
	}
	if v, _ := tr.Lookup(a + 1); v != 24 {
		t.Fatalf("covering route miss: %d", v)
	}
}

func TestTrieWalkOrder(t *testing.T) {
	var tr Trie[int]
	ps := []string{"10.0.0.0/8", "10.0.0.0/16", "10.1.0.0/16", "9.0.0.0/8", "11.0.0.0/8"}
	for i, s := range ps {
		tr.Insert(MustParsePrefix(s), i)
	}
	var got []Prefix
	tr.Walk(func(p Prefix, _ int) bool {
		got = append(got, p)
		return true
	})
	if len(got) != len(ps) {
		t.Fatalf("walked %d, want %d", len(got), len(ps))
	}
	for i := 1; i < len(got); i++ {
		if ComparePrefix(got[i-1], got[i]) >= 0 {
			t.Fatalf("walk out of order: %v before %v", got[i-1], got[i])
		}
	}
}

func TestTrieWalkEarlyStop(t *testing.T) {
	var tr Trie[int]
	for i := 0; i < 10; i++ {
		tr.Insert(MakePrefix(Addr(i)<<24, 8), i)
	}
	count := 0
	tr.Walk(func(Prefix, int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("walked %d, want early stop at 3", count)
	}
}

func TestTrieCovered(t *testing.T) {
	var tr Trie[int]
	tr.Insert(MustParsePrefix("10.0.0.0/8"), 1)
	tr.Insert(MustParsePrefix("10.1.0.0/16"), 2)
	tr.Insert(MustParsePrefix("10.1.2.0/24"), 3)
	tr.Insert(MustParsePrefix("11.0.0.0/8"), 4)
	var got []int
	tr.Covered(MustParsePrefix("10.1.0.0/16"), func(_ Prefix, v int) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("Covered = %v, want [2 3]", got)
	}
}

// TestTrieMatchesLinearScan cross-checks trie longest-prefix-match against a
// brute-force linear scan over random prefixes.
func TestTrieMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	type entry struct {
		p Prefix
		v int
	}
	var entries []entry
	var tr Trie[int]
	for i := 0; i < 500; i++ {
		plen := 8 + rng.Intn(25)
		p := MakePrefix(Addr(rng.Uint32()), plen)
		entries = append(entries, entry{p, i})
		tr.Insert(p, i)
	}
	// Linear scan keeps the LAST inserted among equal longest, matching
	// trie replace semantics.
	lookup := func(a Addr) (int, bool) {
		best, bestLen, ok := 0, -1, false
		for _, e := range entries {
			if e.p.Contains(a) && e.p.Len >= bestLen {
				best, bestLen, ok = e.v, e.p.Len, true
			}
		}
		return best, ok
	}
	for i := 0; i < 2000; i++ {
		var a Addr
		if i%2 == 0 && len(entries) > 0 {
			e := entries[rng.Intn(len(entries))]
			a = e.p.Base + Addr(rng.Uint32())%Addr(e.p.NumAddrs())
		} else {
			a = Addr(rng.Uint32())
		}
		wantV, wantOK := lookup(a)
		gotV, gotOK := tr.Lookup(a)
		if gotOK != wantOK || (gotOK && gotV != wantV) {
			t.Fatalf("Lookup(%v) = %v,%v; scan = %v,%v", a, gotV, gotOK, wantV, wantOK)
		}
	}
}

func TestTrieLookupContainsProperty(t *testing.T) {
	// Whatever prefix LookupPrefix reports must contain the queried address.
	var tr Trie[int]
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		tr.Insert(MakePrefix(Addr(rng.Uint32()), 8+rng.Intn(17)), i)
	}
	f := func(a uint32) bool {
		_, p, ok := tr.LookupPrefix(Addr(a))
		return !ok || p.Contains(Addr(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
