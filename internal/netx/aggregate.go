package netx

import "sort"

// Aggregate merges a prefix list into its minimal covering form: exact
// duplicates and prefixes covered by a less-specific entry are dropped,
// and adjacent sibling prefixes are merged into their parent, repeatedly.
// The output covers exactly the same address set as the input.
//
// This is the standard route-list normalization used when preparing
// probing targets from a BGP table full of de-aggregated announcements.
func Aggregate(in []Prefix) []Prefix {
	if len(in) == 0 {
		return nil
	}
	ps := append([]Prefix(nil), in...)
	sort.Slice(ps, func(i, j int) bool { return ComparePrefix(ps[i], ps[j]) < 0 })

	// Drop covered prefixes (the list is sorted so a cover precedes all
	// prefixes it contains).
	out := ps[:0]
	for _, p := range ps {
		if len(out) > 0 && out[len(out)-1].ContainsPrefix(p) {
			continue
		}
		out = append(out, p)
	}

	// Merge sibling pairs bottom-up until a fixed point.
	for {
		merged := false
		next := out[:0]
		i := 0
		for i < len(out) {
			p := out[i]
			if i+1 < len(out) && p.Len == out[i+1].Len && p.Len > 0 {
				parent := MakePrefix(p.Base, p.Len-1)
				lo, hi := parent.Halves()
				if p == lo && out[i+1] == hi {
					next = append(next, parent)
					i += 2
					merged = true
					continue
				}
			}
			next = append(next, p)
			i++
		}
		out = next
		if !merged {
			return append([]Prefix(nil), out...)
		}
		// A merge may enable a further merge with its new sibling; the
		// list stays sorted because parents share their low half's base.
	}
}

// CoversSameAddrs reports whether two prefix lists cover exactly the same
// address set. Intended for tests and verification; runs in O(n log n).
func CoversSameAddrs(a, b []Prefix) bool {
	return canonicalBlocks(a).equal(canonicalBlocks(b))
}

type blockList []Block

func canonicalBlocks(ps []Prefix) blockList {
	blocks := make(blockList, 0, len(ps))
	for _, p := range ps {
		blocks = append(blocks, BlockFromPrefix(p))
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].First < blocks[j].First })
	// Coalesce overlapping/adjacent ranges.
	out := blocks[:0]
	for _, b := range blocks {
		if len(out) > 0 {
			last := &out[len(out)-1]
			if b.First <= last.Last || (last.Last != 0xffffffff && b.First == last.Last+1) {
				if b.Last > last.Last {
					last.Last = b.Last
				}
				continue
			}
		}
		out = append(out, b)
	}
	return out
}

func (a blockList) equal(b blockList) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
