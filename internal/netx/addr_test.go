package netx

import (
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xffffffff, true},
		{"192.0.2.1", AddrFromOctets(192, 0, 2, 1), true},
		{"10.1.2.3", AddrFromOctets(10, 1, 2, 3), true},
		{"256.0.0.1", 0, false},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"a.b.c.d", 0, false},
		{"", 0, false},
		{"-1.0.0.0", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseAddr(%q) err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseAddr(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(a uint32) bool {
		addr := Addr(a)
		back, err := ParseAddr(addr.String())
		return err == nil && back == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMustParseAddrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseAddr did not panic on invalid input")
		}
	}()
	MustParseAddr("not-an-address")
}

func TestPointToPointMate31(t *testing.T) {
	a := MustParseAddr("10.0.0.4")
	m, ok := a.PointToPointMate(31)
	if !ok || m != MustParseAddr("10.0.0.5") {
		t.Fatalf("mate of 10.0.0.4/31 = %v, %v", m, ok)
	}
	m2, ok := m.PointToPointMate(31)
	if !ok || m2 != a {
		t.Fatalf("mate not symmetric: %v", m2)
	}
}

func TestPointToPointMate30(t *testing.T) {
	// In a /30 x.x.x.0-3, hosts are .1 and .2.
	base := MustParseAddr("10.0.0.0")
	if _, ok := base.PointToPointMate(30); ok {
		t.Error("network address should have no /30 mate")
	}
	if _, ok := MustParseAddr("10.0.0.3").PointToPointMate(30); ok {
		t.Error("broadcast address should have no /30 mate")
	}
	m, ok := MustParseAddr("10.0.0.1").PointToPointMate(30)
	if !ok || m != MustParseAddr("10.0.0.2") {
		t.Fatalf("mate of 10.0.0.1/30 = %v, %v", m, ok)
	}
	m, ok = MustParseAddr("10.0.0.2").PointToPointMate(30)
	if !ok || m != MustParseAddr("10.0.0.1") {
		t.Fatalf("mate of 10.0.0.2/30 = %v, %v", m, ok)
	}
}

func TestPointToPointMateOtherLens(t *testing.T) {
	if _, ok := MustParseAddr("10.0.0.1").PointToPointMate(24); ok {
		t.Error("/24 should have no point-to-point mate")
	}
}

func TestPointToPointMateProperty(t *testing.T) {
	// For any address, a /31 mate is always symmetric and in the same /31.
	f := func(a uint32) bool {
		addr := Addr(a)
		m, ok := addr.PointToPointMate(31)
		if !ok {
			return false
		}
		back, ok2 := m.PointToPointMate(31)
		p := MakePrefix(addr, 31)
		return ok2 && back == addr && p.Contains(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParsePrefix(t *testing.T) {
	p := MustParsePrefix("192.0.2.77/24")
	if p.Base != MustParseAddr("192.0.2.0") || p.Len != 24 {
		t.Fatalf("got %v", p)
	}
	if p.String() != "192.0.2.0/24" {
		t.Fatalf("String = %q", p.String())
	}
	for _, bad := range []string{"192.0.2.0", "192.0.2.0/33", "192.0.2.0/-1", "x/24"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q) should fail", bad)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/8")
	if !p.Contains(MustParseAddr("10.255.255.255")) {
		t.Error("should contain last address")
	}
	if !p.Contains(MustParseAddr("10.0.0.0")) {
		t.Error("should contain base")
	}
	if p.Contains(MustParseAddr("11.0.0.0")) {
		t.Error("should not contain 11.0.0.0")
	}
	zero := MustParsePrefix("0.0.0.0/0")
	if !zero.Contains(MustParseAddr("203.0.113.9")) {
		t.Error("default route contains everything")
	}
}

func TestPrefixContainsPrefix(t *testing.T) {
	p16 := MustParsePrefix("128.66.0.0/16")
	p24 := MustParsePrefix("128.66.2.0/24")
	if !p16.ContainsPrefix(p24) {
		t.Error("/16 should contain /24")
	}
	if p24.ContainsPrefix(p16) {
		t.Error("/24 should not contain /16")
	}
	if !p16.ContainsPrefix(p16) {
		t.Error("prefix contains itself")
	}
	if !p16.Overlaps(p24) || !p24.Overlaps(p16) {
		t.Error("overlap should be symmetric")
	}
	other := MustParsePrefix("128.67.0.0/16")
	if p16.Overlaps(other) {
		t.Error("disjoint prefixes should not overlap")
	}
}

func TestPrefixFirstLastNum(t *testing.T) {
	p := MustParsePrefix("192.0.2.0/30")
	if p.First() != MustParseAddr("192.0.2.0") {
		t.Errorf("First = %v", p.First())
	}
	if p.Last() != MustParseAddr("192.0.2.3") {
		t.Errorf("Last = %v", p.Last())
	}
	if p.NumAddrs() != 4 {
		t.Errorf("NumAddrs = %d", p.NumAddrs())
	}
	all := MustParsePrefix("0.0.0.0/0")
	if all.NumAddrs() != 1<<32 {
		t.Errorf("/0 NumAddrs = %d", all.NumAddrs())
	}
	if all.Last() != 0xffffffff {
		t.Errorf("/0 Last = %v", all.Last())
	}
}

func TestPrefixHalves(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/8")
	lo, hi := p.Halves()
	if lo != MustParsePrefix("10.0.0.0/9") || hi != MustParsePrefix("10.128.0.0/9") {
		t.Fatalf("Halves = %v, %v", lo, hi)
	}
	host := MustParsePrefix("10.0.0.1/32")
	lo, hi = host.Halves()
	if lo != host || hi != host {
		t.Fatalf("Halves of /32 = %v, %v", lo, hi)
	}
}

func TestPrefixSubnet(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/16")
	s0 := p.Subnet(24, 0)
	s255 := p.Subnet(24, 255)
	if s0 != MustParsePrefix("10.0.0.0/24") {
		t.Errorf("Subnet(24,0) = %v", s0)
	}
	if s255 != MustParsePrefix("10.0.255.0/24") {
		t.Errorf("Subnet(24,255) = %v", s255)
	}
	defer func() {
		if recover() == nil {
			t.Error("Subnet out of range should panic")
		}
	}()
	p.Subnet(24, 256)
}

func TestPrefixSubnetProperty(t *testing.T) {
	// All /30 subnets of a /24 are disjoint and contained in the /24.
	p := MustParsePrefix("203.0.113.0/24")
	seen := map[Addr]bool{}
	for i := 0; i < 64; i++ {
		s := p.Subnet(30, i)
		if !p.ContainsPrefix(s) {
			t.Fatalf("subnet %v not in %v", s, p)
		}
		if seen[s.Base] {
			t.Fatalf("duplicate subnet %v", s)
		}
		seen[s.Base] = true
	}
}

func TestMakePrefixClamps(t *testing.T) {
	p := MakePrefix(MustParseAddr("1.2.3.4"), 40)
	if p.Len != 32 {
		t.Errorf("Len = %d, want clamp to 32", p.Len)
	}
	p = MakePrefix(MustParseAddr("1.2.3.4"), -5)
	if p.Len != 0 || p.Base != 0 {
		t.Errorf("got %v, want 0.0.0.0/0", p)
	}
}

func TestComparePrefix(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.0.0.0/16")
	c := MustParsePrefix("11.0.0.0/8")
	if ComparePrefix(a, b) >= 0 {
		t.Error("shorter prefix should sort first at same base")
	}
	if ComparePrefix(b, c) >= 0 {
		t.Error("lower base should sort first")
	}
	if ComparePrefix(a, a) != 0 {
		t.Error("equal prefixes compare 0")
	}
	if ComparePrefix(c, a) <= 0 {
		t.Error("reverse comparison sign")
	}
}

func TestPrefixIsValid(t *testing.T) {
	if !MustParsePrefix("10.0.0.0/8").IsValid() {
		t.Error("valid prefix reported invalid")
	}
	bad := Prefix{Base: MustParseAddr("10.0.0.1"), Len: 8}
	if bad.IsValid() {
		t.Error("unmasked base should be invalid")
	}
}
