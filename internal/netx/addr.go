// Package netx provides the IPv4 addressing primitives used throughout
// bdrmap: 32-bit addresses, prefixes, subnet arithmetic for point-to-point
// interconnection subnets (/30 and /31), and a longest-prefix-match trie.
//
// bdrmap is an IPv4 system (interdomain interconnection subnets are almost
// always /30 or /31 IPv4 subnets), so addresses are plain uint32 values:
// cheap to hash, compare, and store in the millions.
package netx

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host byte order. The zero value is 0.0.0.0,
// which bdrmap treats as "no address".
type Addr uint32

// AddrFromOctets assembles an address from four dotted-quad octets.
func AddrFromOctets(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// ParseAddr parses a dotted-quad IPv4 address such as "192.0.2.1".
func ParseAddr(s string) (Addr, error) {
	var out uint32
	rest := s
	for i := 0; i < 4; i++ {
		var part string
		if i == 3 {
			part = rest
		} else {
			dot := strings.IndexByte(rest, '.')
			if dot < 0 {
				return 0, fmt.Errorf("netx: invalid address %q", s)
			}
			part, rest = rest[:dot], rest[dot+1:]
		}
		v, err := strconv.ParseUint(part, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("netx: invalid address %q: %v", s, err)
		}
		out = out<<8 | uint32(v)
	}
	return Addr(out), nil
}

// MustParseAddr is ParseAddr, panicking on error. For tests and literals.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String returns the dotted-quad form of a.
func (a Addr) String() string {
	var b [15]byte
	out := strconv.AppendUint(b[:0], uint64(a>>24), 10)
	out = append(out, '.')
	out = strconv.AppendUint(out, uint64(a>>16&0xff), 10)
	out = append(out, '.')
	out = strconv.AppendUint(out, uint64(a>>8&0xff), 10)
	out = append(out, '.')
	out = strconv.AppendUint(out, uint64(a&0xff), 10)
	return string(out)
}

// IsZero reports whether a is the zero address 0.0.0.0.
func (a Addr) IsZero() bool { return a == 0 }

// PointToPointMate returns the other usable address of the point-to-point
// subnet of the given prefix length containing a, and whether such a mate
// exists. Interdomain links conventionally use /31 subnets (two addresses,
// both usable) or /30 subnets (four addresses, two usable hosts between the
// network and broadcast addresses). For a /30 the network and broadcast
// addresses have no mate.
func (a Addr) PointToPointMate(plen int) (Addr, bool) {
	switch plen {
	case 31:
		return a ^ 1, true
	case 30:
		switch a & 3 {
		case 1:
			return a + 1, true
		case 2:
			return a - 1, true
		default: // network (.0) or broadcast (.3) address
			return 0, false
		}
	default:
		return 0, false
	}
}

// Prefix is an IPv4 CIDR prefix: a base address and a prefix length.
// The base address is stored masked; use Make to normalize.
type Prefix struct {
	Base Addr
	Len  int
}

// MakePrefix builds a normalized prefix from any address within it.
func MakePrefix(a Addr, plen int) Prefix {
	if plen < 0 {
		plen = 0
	}
	if plen > 32 {
		plen = 32
	}
	return Prefix{Base: a.mask(plen), Len: plen}
}

func (a Addr) mask(plen int) Addr {
	if plen <= 0 {
		return 0
	}
	return a &^ (1<<(32-uint(plen)) - 1)
}

// ParsePrefix parses "a.b.c.d/len".
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("netx: invalid prefix %q: missing /", s)
	}
	a, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	plen, err := strconv.Atoi(s[slash+1:])
	if err != nil || plen < 0 || plen > 32 {
		return Prefix{}, fmt.Errorf("netx: invalid prefix length in %q", s)
	}
	return MakePrefix(a, plen), nil
}

// MustParsePrefix is ParsePrefix, panicking on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// String returns the CIDR notation of p.
func (p Prefix) String() string {
	return p.Base.String() + "/" + strconv.Itoa(p.Len)
}

// Contains reports whether a falls within p.
func (p Prefix) Contains(a Addr) bool {
	return a.mask(p.Len) == p.Base
}

// ContainsPrefix reports whether q is equal to or more specific than p.
func (p Prefix) ContainsPrefix(q Prefix) bool {
	return q.Len >= p.Len && p.Contains(q.Base)
}

// Overlaps reports whether p and q share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.ContainsPrefix(q) || q.ContainsPrefix(p)
}

// First returns the first address of p (the base address).
func (p Prefix) First() Addr { return p.Base }

// Last returns the last address of p.
func (p Prefix) Last() Addr {
	if p.Len <= 0 {
		return 0xffffffff
	}
	return p.Base | Addr(1<<(32-uint(p.Len))-1)
}

// NumAddrs returns the number of addresses covered by p.
func (p Prefix) NumAddrs() uint64 {
	return 1 << (32 - uint(p.Len))
}

// IsValid reports whether p has a sensible length and a masked base.
func (p Prefix) IsValid() bool {
	return p.Len >= 0 && p.Len <= 32 && p.Base.mask(p.Len) == p.Base
}

// Halves splits p into its two child prefixes of length Len+1.
func (p Prefix) Halves() (lo, hi Prefix) {
	if p.Len >= 32 {
		return p, p
	}
	childLen := p.Len + 1
	lo = Prefix{Base: p.Base, Len: childLen}
	hi = Prefix{Base: p.Base | Addr(1<<(32-uint(childLen))), Len: childLen}
	return lo, hi
}

// Subnet returns the idx'th subnet of length sublen within p.
// It panics if sublen < p.Len or idx is out of range.
func (p Prefix) Subnet(sublen int, idx int) Prefix {
	if sublen < p.Len || sublen > 32 {
		panic(fmt.Sprintf("netx: invalid subnet length %d of %v", sublen, p))
	}
	n := 1 << uint(sublen-p.Len)
	if idx < 0 || idx >= n {
		panic(fmt.Sprintf("netx: subnet index %d out of range for %v -> /%d", idx, p, sublen))
	}
	return Prefix{Base: p.Base + Addr(idx<<(32-uint(sublen))), Len: sublen}
}

// ComparePrefix orders prefixes by base address, then by length
// (shorter, i.e. less specific, first). Suitable for sort.Slice.
func ComparePrefix(a, b Prefix) int {
	switch {
	case a.Base < b.Base:
		return -1
	case a.Base > b.Base:
		return 1
	case a.Len < b.Len:
		return -1
	case a.Len > b.Len:
		return 1
	default:
		return 0
	}
}
