package netx

import (
	"testing"
)

func TestInternBasic(t *testing.T) {
	var in Intern
	a := MustParseAddr("10.0.0.1")
	b := MustParseAddr("10.0.0.2")
	if got := in.ID(a); got != 0 {
		t.Fatalf("first ID = %d, want 0", got)
	}
	if got := in.ID(b); got != 1 {
		t.Fatalf("second ID = %d, want 1", got)
	}
	if got := in.ID(a); got != 0 {
		t.Fatalf("re-intern ID = %d, want 0", got)
	}
	if in.Len() != 2 {
		t.Fatalf("Len = %d, want 2", in.Len())
	}
	if in.Addr(0) != a || in.Addr(1) != b {
		t.Fatalf("Addr round-trip broken: %v %v", in.Addr(0), in.Addr(1))
	}
	if id, ok := in.Lookup(b); !ok || id != 1 {
		t.Fatalf("Lookup(b) = %d,%v want 1,true", id, ok)
	}
	if _, ok := in.Lookup(MustParseAddr("192.0.2.9")); ok {
		t.Fatal("Lookup of absent address reported present")
	}
}

func TestInternReset(t *testing.T) {
	in := NewIntern(4)
	a := MustParseAddr("10.0.0.1")
	b := MustParseAddr("10.0.0.2")
	in.ID(a)
	in.ID(b)
	in.Reset()
	if in.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", in.Len())
	}
	if _, ok := in.Lookup(a); ok {
		t.Fatal("Lookup found an address after Reset")
	}
	// IDs restart from zero and the table is fully usable again.
	if got := in.ID(b); got != 0 {
		t.Fatalf("first ID after Reset = %d, want 0", got)
	}
}

// TestInternLookupZeroAlloc pins the alloc budget of the read path: once
// built, neither Lookup nor a re-intern of a known address may allocate.
// The inference hot path depends on this — an allocation here multiplies
// by every hop of every trace.
func TestInternLookupZeroAlloc(t *testing.T) {
	in := NewIntern(1024)
	addrs := make([]Addr, 1024)
	for i := range addrs {
		addrs[i] = Addr(0x0a000000 + i*7)
		in.ID(addrs[i])
	}
	i := 0
	if n := testing.AllocsPerRun(1000, func() {
		a := addrs[i%len(addrs)]
		i++
		if _, ok := in.Lookup(a); !ok {
			t.Fatal("address vanished")
		}
	}); n != 0 {
		t.Fatalf("Lookup allocates %.1f allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		a := addrs[i%len(addrs)]
		i++
		if id := in.ID(a); id < 0 {
			t.Fatal("bad id")
		}
	}); n != 0 {
		t.Fatalf("ID of known address allocates %.1f allocs/op, want 0", n)
	}
}

// FuzzIntern drives random add/lookup sequences against a map oracle,
// including duplicate adds and lookups of absent addresses.
func FuzzIntern(f *testing.F) {
	f.Add([]byte{0, 1, 2, 1, 0, 3})
	f.Add([]byte{})
	f.Add([]byte{255, 255, 0, 0, 7, 7, 7, 9})
	f.Fuzz(func(t *testing.T, ops []byte) {
		var in Intern
		oracle := make(map[Addr]int32)
		next := int32(0)
		for i := 0; i+1 < len(ops); i += 2 {
			// Map each op byte pair onto a small address universe so
			// duplicates are frequent; the high bit picks add vs lookup.
			a := Addr(uint32(ops[i]&0x3f)<<8 | uint32(ops[i+1]))
			if ops[i]&0x80 == 0 {
				got := in.ID(a)
				want, ok := oracle[a]
				if !ok {
					want = next
					oracle[a] = next
					next++
				}
				if got != want {
					t.Fatalf("ID(%v) = %d, oracle %d", a, got, want)
				}
			} else {
				got, ok := in.Lookup(a)
				want, wok := oracle[a]
				if ok != wok || (ok && got != want) {
					t.Fatalf("Lookup(%v) = %d,%v oracle %d,%v", a, got, ok, want, wok)
				}
			}
		}
		if in.Len() != len(oracle) {
			t.Fatalf("Len = %d, oracle %d", in.Len(), len(oracle))
		}
		for a, id := range oracle {
			if in.Addr(id) != a {
				t.Fatalf("Addr(%d) = %v, want %v", id, in.Addr(id), a)
			}
		}
	})
}
