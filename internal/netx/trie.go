package netx

// Trie is a binary (Patricia-style, path-uncompressed) radix trie mapping
// prefixes to values, supporting longest-prefix-match lookup. It is the core
// data structure behind the prefix→origin-AS table bdrmap consults for every
// interface address observed in traceroute.
//
// The zero value is an empty trie ready for use. Trie is not safe for
// concurrent mutation; concurrent lookups without mutation are safe.
type Trie[V any] struct {
	root *trieNode[V]
	n    int
}

type trieNode[V any] struct {
	child [2]*trieNode[V]
	val   V
	set   bool
}

// Insert associates v with prefix p, replacing any existing value.
func (t *Trie[V]) Insert(p Prefix, v V) {
	if t.root == nil {
		t.root = &trieNode[V]{}
	}
	n := t.root
	for depth := 0; depth < p.Len; depth++ {
		b := bitAt(p.Base, depth)
		if n.child[b] == nil {
			n.child[b] = &trieNode[V]{}
		}
		n = n.child[b]
	}
	if !n.set {
		t.n++
	}
	n.val = v
	n.set = true
}

// Remove deletes the value at exactly prefix p, if present, and reports
// whether a value was removed. Interior nodes are left in place; for
// bdrmap's workloads tries are built once and queried many times.
func (t *Trie[V]) Remove(p Prefix) bool {
	n := t.root
	for depth := 0; n != nil && depth < p.Len; depth++ {
		n = n.child[bitAt(p.Base, depth)]
	}
	if n == nil || !n.set {
		return false
	}
	var zero V
	n.val = zero
	n.set = false
	t.n--
	return true
}

// Len returns the number of prefixes stored.
func (t *Trie[V]) Len() int { return t.n }

// Lookup returns the value of the longest prefix containing a,
// and whether any prefix matched.
func (t *Trie[V]) Lookup(a Addr) (V, bool) {
	v, _, ok := t.LookupPrefix(a)
	return v, ok
}

// LookupPrefix returns the value and prefix of the longest match for a.
func (t *Trie[V]) LookupPrefix(a Addr) (V, Prefix, bool) {
	var (
		best    V
		bestLen = -1
	)
	n := t.root
	for depth := 0; n != nil; depth++ {
		if n.set {
			best, bestLen = n.val, depth
		}
		if depth == 32 {
			break
		}
		n = n.child[bitAt(a, depth)]
	}
	if bestLen < 0 {
		var zero V
		return zero, Prefix{}, false
	}
	return best, MakePrefix(a, bestLen), true
}

// Exact returns the value stored at exactly p, if any.
func (t *Trie[V]) Exact(p Prefix) (V, bool) {
	n := t.root
	for depth := 0; n != nil && depth < p.Len; depth++ {
		n = n.child[bitAt(p.Base, depth)]
	}
	if n == nil || !n.set {
		var zero V
		return zero, false
	}
	return n.val, true
}

// Walk visits every stored (prefix, value) pair in lexicographic order of
// (base, length). The walk stops early if fn returns false.
func (t *Trie[V]) Walk(fn func(Prefix, V) bool) {
	t.walk(t.root, Prefix{}, fn)
}

func (t *Trie[V]) walk(n *trieNode[V], p Prefix, fn func(Prefix, V) bool) bool {
	if n == nil {
		return true
	}
	if n.set && !fn(p, n.val) {
		return false
	}
	if p.Len == 32 {
		return true
	}
	lo, hi := p.Halves()
	if !t.walk(n.child[0], lo, fn) {
		return false
	}
	return t.walk(n.child[1], hi, fn)
}

// Covered visits every stored (prefix, value) pair at or below p,
// i.e. all stored prefixes contained in p.
func (t *Trie[V]) Covered(p Prefix, fn func(Prefix, V) bool) {
	n := t.root
	for depth := 0; n != nil && depth < p.Len; depth++ {
		n = n.child[bitAt(p.Base, depth)]
	}
	t.walk(n, p, fn)
}

func bitAt(a Addr, depth int) int {
	return int(a >> (31 - uint(depth)) & 1)
}
