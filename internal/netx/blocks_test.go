package netx

import (
	"math/rand"
	"testing"
)

func TestCarveBlocksPaperExample(t *testing.T) {
	// §5.3: X originates 128.66.0.0/16, Y originates 128.66.2.0/24.
	// X's blocks: 128.66.0.0–128.66.1.255 and 128.66.3.0–128.66.255.255.
	p := MustParsePrefix("128.66.0.0/16")
	ms := []Prefix{MustParsePrefix("128.66.2.0/24")}
	blocks := CarveBlocks(p, ms)
	if len(blocks) != 2 {
		t.Fatalf("got %d blocks: %v", len(blocks), blocks)
	}
	if blocks[0].First != MustParseAddr("128.66.0.0") || blocks[0].Last != MustParseAddr("128.66.1.255") {
		t.Errorf("block 0 = %v-%v", blocks[0].First, blocks[0].Last)
	}
	if blocks[1].First != MustParseAddr("128.66.3.0") || blocks[1].Last != MustParseAddr("128.66.255.255") {
		t.Errorf("block 1 = %v-%v", blocks[1].First, blocks[1].Last)
	}
}

func TestCarveBlocksNoHoles(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/24")
	blocks := CarveBlocks(p, nil)
	if len(blocks) != 1 || blocks[0] != BlockFromPrefix(p) {
		t.Fatalf("got %v", blocks)
	}
}

func TestCarveBlocksFullCover(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/24")
	lo, hi := p.Halves()
	blocks := CarveBlocks(p, []Prefix{lo, hi})
	if len(blocks) != 0 {
		t.Fatalf("fully covered prefix should yield no blocks, got %v", blocks)
	}
}

func TestCarveBlocksIgnoresOutside(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/24")
	blocks := CarveBlocks(p, []Prefix{MustParsePrefix("11.0.0.0/24"), p})
	if len(blocks) != 1 {
		t.Fatalf("unrelated and identical prefixes should not carve: %v", blocks)
	}
}

func TestCarveBlocksAdjacentHoles(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/22")
	ms := []Prefix{
		MustParsePrefix("10.0.1.0/24"),
		MustParsePrefix("10.0.2.0/24"),
	}
	blocks := CarveBlocks(p, ms)
	if len(blocks) != 2 {
		t.Fatalf("got %v", blocks)
	}
	if blocks[0].Last != MustParseAddr("10.0.0.255") {
		t.Errorf("block 0 = %v-%v", blocks[0].First, blocks[0].Last)
	}
	if blocks[1].First != MustParseAddr("10.0.3.0") {
		t.Errorf("block 1 = %v-%v", blocks[1].First, blocks[1].Last)
	}
}

// TestCarveBlocksInvariants: carved blocks are sorted, disjoint, inside p,
// exclude every more-specific, and cover exactly p minus the holes.
func TestCarveBlocksInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		p := MakePrefix(Addr(rng.Uint32()), 12+rng.Intn(5))
		var ms []Prefix
		nHoles := rng.Intn(6)
		for i := 0; i < nHoles; i++ {
			sub := p.Subnet(p.Len+4, rng.Intn(16))
			ms = append(ms, sub)
		}
		blocks := CarveBlocks(p, ms)
		var covered uint64
		last := Addr(0)
		for i, b := range blocks {
			if b.Empty() {
				t.Fatalf("empty block %v", b)
			}
			if i > 0 && b.First <= last {
				t.Fatalf("blocks overlap or unsorted: %v after %v", b, last)
			}
			last = b.Last
			if !p.Contains(b.First) || !p.Contains(b.Last) {
				t.Fatalf("block %v-%v outside %v", b.First, b.Last, p)
			}
			for _, h := range ms {
				if b.Contains(h.First()) || b.Contains(h.Last()) {
					t.Fatalf("block %v-%v intersects hole %v", b.First, b.Last, h)
				}
			}
			covered += b.NumAddrs()
		}
		var holeAddrs uint64
		seen := map[Prefix]bool{}
		for _, h := range ms {
			if !seen[h] {
				holeAddrs += h.NumAddrs()
				seen[h] = true
			}
		}
		if covered != p.NumAddrs()-holeAddrs {
			t.Fatalf("covered %d addrs, want %d (p=%v holes=%v)", covered, p.NumAddrs()-holeAddrs, p, ms)
		}
	}
}

func TestBlockSubtract(t *testing.T) {
	b := Block{First: 100, Last: 200}
	// Hole strictly inside.
	out := b.Subtract(MakePrefix(128, 28)) // 128-143
	if len(out) != 2 || out[0].Last != 127 || out[1].First != 144 {
		t.Fatalf("got %v", out)
	}
	// Disjoint.
	out = b.Subtract(MakePrefix(1024, 28))
	if len(out) != 1 || out[0] != b {
		t.Fatalf("disjoint subtract changed block: %v", out)
	}
}

func TestAddrSet(t *testing.T) {
	var s AddrSet
	if s.Len() != 0 || s.Has(1) {
		t.Fatal("zero AddrSet should be empty")
	}
	s.Add(5)
	s.Add(3)
	s.Add(5)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	got := s.Sorted()
	if len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("Sorted = %v", got)
	}
	if !s.Has(3) || s.Has(4) {
		t.Fatal("Has wrong")
	}
}
