package netx

import (
	"sort"
)

// Block is a contiguous, inclusive range of IPv4 addresses. bdrmap probes
// the address space each AS routes as a set of blocks: if X originates
// 128.66.0.0/16 and Y originates the more-specific 128.66.2.0/24, the /24
// is carved out of the /16, leaving X with two blocks around it (§5.3).
type Block struct {
	First, Last Addr
}

// BlockFromPrefix returns the block covering exactly prefix p.
func BlockFromPrefix(p Prefix) Block {
	return Block{First: p.First(), Last: p.Last()}
}

// Contains reports whether a falls inside b.
func (b Block) Contains(a Addr) bool { return a >= b.First && a <= b.Last }

// NumAddrs returns the number of addresses in b.
func (b Block) NumAddrs() uint64 { return uint64(b.Last) - uint64(b.First) + 1 }

// Empty reports whether b covers no addresses (Last < First).
func (b Block) Empty() bool { return b.Last < b.First }

// Subtract removes the addresses of prefix p from block b, returning the
// zero, one, or two blocks that remain.
func (b Block) Subtract(p Prefix) []Block {
	pf, pl := p.First(), p.Last()
	if pl < b.First || pf > b.Last {
		return []Block{b} // disjoint
	}
	var out []Block
	if pf > b.First {
		out = append(out, Block{First: b.First, Last: pf - 1})
	}
	if pl < b.Last {
		out = append(out, Block{First: pl + 1, Last: b.Last})
	}
	return out
}

// CarveBlocks computes the address blocks of prefix p that are NOT covered
// by any of the given more-specific prefixes. This implements §5.3's
// "generate list of address blocks to probe" carving.
func CarveBlocks(p Prefix, moreSpecific []Prefix) []Block {
	blocks := []Block{BlockFromPrefix(p)}
	for _, ms := range moreSpecific {
		if !p.ContainsPrefix(ms) || ms == p {
			continue
		}
		var next []Block
		for _, b := range blocks {
			next = append(next, b.Subtract(ms)...)
		}
		blocks = next
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].First < blocks[j].First })
	return blocks
}

// AddrSet is a set of individual IPv4 addresses with deterministic ordering.
// The zero value is an empty set ready for use.
type AddrSet struct {
	m map[Addr]struct{}
}

// Add inserts a into the set.
func (s *AddrSet) Add(a Addr) {
	if s.m == nil {
		s.m = make(map[Addr]struct{})
	}
	s.m[a] = struct{}{}
}

// Has reports whether a is in the set.
func (s *AddrSet) Has(a Addr) bool {
	_, ok := s.m[a]
	return ok
}

// Len returns the number of addresses in the set.
func (s *AddrSet) Len() int { return len(s.m) }

// Sorted returns the addresses in increasing order.
func (s *AddrSet) Sorted() []Addr {
	out := make([]Addr, 0, len(s.m))
	for a := range s.m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
