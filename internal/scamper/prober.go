// Package scamper is the measurement driver of the system: the analogue of
// the paper's scamper + bdrmap driver (§5.3, §5.8). It turns the public BGP
// view into a probing plan (address blocks per target AS), runs Paris
// traceroutes with a doubletree-style stop set and the up-to-five-addresses
// retry rule, schedules alias resolution over the observed addresses, and
// assembles everything into a Dataset the inference core consumes.
//
// Probing runs through a Prober interface with two implementations: a
// local one wrapping the simulation engine directly, and a remote one that
// forwards commands over a TCP control protocol to a thin agent running on
// a resource-limited device, mirroring the paper's split where the device
// only executes probes and the central system keeps all state.
package scamper

import (
	"time"

	"bdrmap/internal/alias"
	"bdrmap/internal/netx"
	"bdrmap/internal/probe"
	"bdrmap/internal/topo"
)

// Prober executes measurements on behalf of the driver.
type Prober interface {
	// Name identifies the vantage point.
	Name() string
	// Trace runs a Paris traceroute toward dst, stopping early when a hop
	// responds from an address in stopSet.
	Trace(dst netx.Addr, stopSet map[netx.Addr]bool) probe.TraceResult
	// Probe sends a single alias-resolution probe.
	Probe(target netx.Addr, m probe.Method) probe.Response
	// Advance moves measurement time forward (pacing).
	Advance(d time.Duration)
}

// LocalProber runs measurements directly against the simulation engine.
type LocalProber struct {
	E  *probe.Engine
	VP *topo.VP
}

// Name returns the vantage point name.
func (p LocalProber) Name() string { return p.VP.Name }

// Trace runs one traceroute.
func (p LocalProber) Trace(dst netx.Addr, stopSet map[netx.Addr]bool) probe.TraceResult {
	res := p.E.Traceroute(p.VP, dst, stopFunc(stopSet))
	// Pace at ~100 packets/second like the paper's deployments.
	p.E.Advance(time.Duration(len(res.Hops)) * probe.PacePerHop)
	return res
}

// NewLane opens a worker-private measurement timeline on the engine.
func (p LocalProber) NewLane(start time.Duration) *probe.Lane {
	return p.E.NewLane(start)
}

// TraceLane runs one traceroute on a lane's private timeline.
func (p LocalProber) TraceLane(dst netx.Addr, stopSet map[netx.Addr]bool, lane *probe.Lane) probe.TraceResult {
	return p.E.TracerouteLane(p.VP, dst, stopFunc(stopSet), lane)
}

func stopFunc(stopSet map[netx.Addr]bool) func(netx.Addr) bool {
	if stopSet == nil {
		return nil
	}
	return func(a netx.Addr) bool { return stopSet[a] }
}

// Probe sends one probe.
func (p LocalProber) Probe(target netx.Addr, m probe.Method) probe.Response {
	return p.E.Probe(p.VP, target, m)
}

// Advance moves the simulated clock.
func (p LocalProber) Advance(d time.Duration) { p.E.Advance(d) }

// PathSignature fingerprints the hop sequence a traceroute toward dst
// would observe right now, without sending probes (cross-round caching).
func (p LocalProber) PathSignature(dst netx.Addr) uint64 {
	return p.E.PathSignature(p.VP, dst)
}

var _ Prober = LocalProber{}
var _ LaneProber = LocalProber{}
var _ SignatureProber = LocalProber{}
var _ alias.ProbeSource = LocalProber{}
