package scamper

import (
	"testing"

	"bdrmap/internal/obs"
)

func TestConfigWithDefaults(t *testing.T) {
	cases := []struct {
		name string
		in   Config
		want Config
	}{
		{"zero selects paper params",
			Config{},
			Config{MaxAddrsPerBlock: 5, Workers: 4, MaxPairsPerAddr: 6}},
		{"explicit values survive",
			Config{MaxAddrsPerBlock: 2, Workers: 1, MaxPairsPerAddr: 3},
			Config{MaxAddrsPerBlock: 2, Workers: 1, MaxPairsPerAddr: 3}},
		{"Disabled means zero, not default",
			Config{MaxAddrsPerBlock: Disabled, MaxPairsPerAddr: Disabled},
			Config{MaxAddrsPerBlock: 0, Workers: 4, MaxPairsPerAddr: 0}},
		{"negative worker count falls back",
			Config{Workers: -3},
			Config{MaxAddrsPerBlock: 5, Workers: 4, MaxPairsPerAddr: 6}},
	}
	for _, c := range cases {
		got := c.in.withDefaults()
		if got.MaxAddrsPerBlock != c.want.MaxAddrsPerBlock ||
			got.Workers != c.want.Workers ||
			got.MaxPairsPerAddr != c.want.MaxPairsPerAddr {
			t.Errorf("%s: withDefaults() = %+v, want %+v", c.name, got, c.want)
		}
	}
}

// TestMaxPairsDisabledAblation proves the sentinel reaches the Ally stage:
// a run with MaxPairsPerAddr: Disabled must fire zero Ally comparisons
// while the rest of alias resolution still runs.
func TestMaxPairsDisabledAblation(t *testing.T) {
	n, e, view, hosts := setup(t, 6)
	reg := obs.New()
	d := &Driver{
		View:     view,
		Prober:   LocalProber{E: e, VP: n.VPs[0]},
		HostASNs: hosts,
		Cfg:      Config{Workers: 1, MaxPairsPerAddr: Disabled},
		Obs:      reg,
	}
	ds := d.Run()
	snap := reg.Snapshot()
	for _, k := range []string{"driver.alias.ally_yes", "driver.alias.ally_no", "driver.alias.ally_unknown"} {
		if v := snap.Counters[k]; v != 0 {
			t.Errorf("%s = %d with Ally disabled", k, v)
		}
	}
	if ds.Graph == nil {
		t.Fatal("alias graph missing; Disabled must not skip the stage entirely")
	}
}
