package scamper

import (
	"reflect"
	"sort"
	"testing"
	"time"

	"bdrmap/internal/alias"
	"bdrmap/internal/netx"
	"bdrmap/internal/obs"
	"bdrmap/internal/probe"
	"bdrmap/internal/topo"
)

func newIncSetup(t *testing.T, seed int64, st *RoundState, reg *obs.Registry) *Driver {
	t.Helper()
	n, e, view, hosts := setup(t, seed)
	e.SetObs(reg)
	return &Driver{
		View:     view,
		Prober:   LocalProber{E: e, VP: n.VPs[0]},
		HostASNs: hosts,
		Cfg:      Config{State: st},
		Obs:      reg,
	}
}

// An unchanged world must replay every target from cache: zero live
// traces, zero probe packets, and a dataset whose traces, alias verdicts,
// and fingerprint are identical to the first round's.
func TestIncrementalUnchangedWorldFullHit(t *testing.T) {
	st := NewRoundState()
	reg1 := obs.New()
	d1 := newIncSetup(t, 7, st, reg1)
	ds1 := d1.Run()
	if ds1.Stats.TracesLive != ds1.Stats.Traces || ds1.Stats.TracesCached != 0 {
		t.Fatalf("round 1 should be all live: %+v", ds1.Stats)
	}
	if got := reg1.Snapshot().Counter("rounds.cache.miss"); got != int64(ds1.Stats.Targets) {
		t.Fatalf("round 1 misses = %d, want %d", got, ds1.Stats.Targets)
	}

	reg2 := obs.New()
	d2 := newIncSetup(t, 7, st, reg2)
	ds2 := d2.Run()
	if ds2.Stats.TracesLive != 0 {
		t.Fatalf("round 2 ran %d live traces on an unchanged world", ds2.Stats.TracesLive)
	}
	if ds2.Stats.TracesCached != ds2.Stats.Traces || ds2.Stats.Traces != ds1.Stats.Traces {
		t.Fatalf("round 2 cache split wrong: %+v vs round1 %+v", ds2.Stats, ds1.Stats)
	}
	if ds2.Stats.CacheHits != ds2.Stats.Targets {
		t.Fatalf("cache hits = %d, want %d", ds2.Stats.CacheHits, ds2.Stats.Targets)
	}
	snap := reg2.Snapshot()
	if got := snap.Counter("rounds.cache.hit"); got != int64(ds2.Stats.Targets) {
		t.Fatalf("rounds.cache.hit = %d, want %d", got, ds2.Stats.Targets)
	}
	if got := snap.Counter("probe.packets_sent"); got != 0 {
		t.Fatalf("unchanged world still sent %d probe packets", got)
	}
	if len(ds2.Dirty) != 0 {
		t.Fatalf("unchanged world marked %d addresses dirty", len(ds2.Dirty))
	}
	if ds1.TraceFingerprint() != ds2.TraceFingerprint() {
		t.Fatal("trace fingerprints differ between live and replayed rounds")
	}
	if !reflect.DeepEqual(stripVolatile(ds1.Traces), stripVolatile(ds2.Traces)) {
		t.Fatal("replayed traces differ from live traces")
	}
	if !sameVerdicts(ds1.Resolver, ds2.Resolver) {
		t.Fatal("alias verdicts differ between live and replayed rounds")
	}
	if ds2.Stats.AliasOpsReplayed == 0 {
		t.Fatal("no alias operations replayed on an unchanged world")
	}
}

// sameVerdicts compares two resolvers' recorded verdict sets (order-free:
// Positives/Negatives iterate maps). The alias graph is a pure function of
// these sets, so equal verdicts imply equal router groupings.
func sameVerdicts(a, b *alias.Resolver) bool {
	sortPairs := func(ps [][2]netx.Addr) [][2]netx.Addr {
		sort.Slice(ps, func(i, j int) bool {
			if ps[i][0] != ps[j][0] {
				return ps[i][0] < ps[j][0]
			}
			return ps[i][1] < ps[j][1]
		})
		return ps
	}
	return reflect.DeepEqual(sortPairs(a.Positives()), sortPairs(b.Positives())) &&
		reflect.DeepEqual(sortPairs(a.Negatives()), sortPairs(b.Negatives()))
}

// stripVolatile zeroes the per-responder state (IP-ID, RTT) that replay
// intentionally freezes; inference never reads it.
func stripVolatile(recs []TraceRecord) []TraceRecord {
	out := make([]TraceRecord, len(recs))
	for i, r := range recs {
		hops := make([]probe.Hop, len(r.Hops))
		for j, h := range r.Hops {
			h.IPID, h.RTT = 0, 0
			hops[j] = h
		}
		r.Hops = hops
		r.TraceResult.Hops = hops
		out[i] = r
	}
	return out
}

// A mutated world must diverge exactly where paths changed and produce a
// dataset identical to a from-scratch run on the same world, while the
// dirty set covers every address whose trace evidence changed.
func TestIncrementalMutatedWorldMatchesScratch(t *testing.T) {
	st := NewRoundState()
	// Round 1 on the base world.
	n1, e1, view1, hosts1 := setup(t, 9)
	d1 := &Driver{View: view1, Prober: LocalProber{E: e1, VP: n1.VPs[0]}, HostASNs: hosts1, Cfg: Config{State: st}}
	d1.Run()

	// Mutate: drop one interdomain link and rebuild the world fresh (same
	// seed => same base topology) for both incremental and scratch runs.
	mutate := func(tt *testing.T) (*topo.Network, *probe.Engine, *Driver) {
		tt.Helper()
		n, e, view, hosts := setup(tt, 9)
		ils := n.InterdomainLinks(n.HostASN)
		if len(ils) == 0 {
			tt.Skip("no interdomain links to depeer")
		}
		topo.Depeer(n, ils[len(ils)-1].FarAS)
		n.Build()
		return n, e, &Driver{View: view, Prober: LocalProber{E: e, VP: n.VPs[0]}, HostASNs: hosts}
	}

	_, _, dInc := mutate(t)
	dInc.Cfg = Config{State: st}
	dsInc := dInc.Run()

	_, _, dScr := mutate(t)
	dsScr := dScr.Run()

	if dsInc.TraceFingerprint() != dsScr.TraceFingerprint() {
		t.Fatal("incremental trace fingerprint differs from scratch on mutated world")
	}
	if !reflect.DeepEqual(stripVolatile(dsInc.Traces), stripVolatile(dsScr.Traces)) {
		t.Fatal("incremental traces differ from scratch on mutated world")
	}
	if !sameVerdicts(dsInc.Resolver, dsScr.Resolver) {
		t.Fatal("incremental alias verdicts differ from scratch on mutated world")
	}

	// Every address appearing only in changed traces must be dirty; every
	// address of a fully-replayed target must not leak probes.
	if dsInc.Dirty == nil {
		t.Fatal("mutated incremental run produced no dirty set")
	}
}

// The refresh cadence forces a live re-walk even when signatures match.
func TestIncrementalRefreshCadence(t *testing.T) {
	st := NewRoundState()
	for round := 1; round <= 3; round++ {
		reg := obs.New()
		d := newIncSetup(t, 11, st, reg)
		d.Cfg.RefreshEvery = 2
		ds := d.Run()
		snap := reg.Snapshot()
		switch round {
		case 1:
			if ds.Stats.CacheMisses != ds.Stats.Targets {
				t.Fatalf("round 1: %+v", ds.Stats)
			}
		case 2:
			if ds.Stats.CacheHits != ds.Stats.Targets {
				t.Fatalf("round 2 should be all hits: %+v", ds.Stats)
			}
		case 3:
			// lastWalk is still round 1 (round 2 was a pure replay), so the
			// cadence of 2 forces a refresh now.
			if ds.Stats.CacheRefreshes != ds.Stats.Targets || ds.Stats.TracesLive != ds.Stats.Traces {
				t.Fatalf("round 3 should be all refreshes: %+v", ds.Stats)
			}
			if got := snap.Counter("rounds.cache.refresh"); got != int64(ds.Stats.Targets) {
				t.Fatalf("rounds.cache.refresh = %d", got)
			}
		}
	}
}

// RefreshEvery: Disabled never refreshes; cached targets replay forever on
// an unchanged world.
func TestIncrementalRefreshDisabled(t *testing.T) {
	st := NewRoundState()
	for round := 1; round <= 4; round++ {
		reg := obs.New()
		d := newIncSetup(t, 11, st, reg)
		d.Cfg.RefreshEvery = Disabled
		ds := d.Run()
		if round > 1 && ds.Stats.TracesLive != 0 {
			t.Fatalf("round %d went live with refresh disabled: %+v", round, ds.Stats)
		}
	}
}

// Config.State on a prober without path signatures must be ignored, not
// crash or corrupt the dataset.
func TestIncrementalStateIgnoredWithoutSignatures(t *testing.T) {
	st := NewRoundState()
	n, e, view, hosts := setup(t, 5)
	d := &Driver{
		View:     view,
		Prober:   plainProber{LocalProber{E: e, VP: n.VPs[0]}},
		HostASNs: hosts,
		Cfg:      Config{State: st},
	}
	ds := d.Run()
	if ds.Stats.Traces == 0 {
		t.Fatal("no traces")
	}
	if ds.Dirty != nil {
		t.Fatal("dirty set set without signature support")
	}
	if st.Round() != 0 || len(st.targets) != 0 {
		t.Fatal("state advanced without signature support")
	}
}

// plainProber hides LocalProber's lane and signature support.
type plainProber struct{ p LocalProber }

func (p plainProber) Name() string { return p.p.Name() }
func (p plainProber) Trace(dst netx.Addr, ss map[netx.Addr]bool) probe.TraceResult {
	return p.p.Trace(dst, ss)
}
func (p plainProber) Probe(tg netx.Addr, m probe.Method) probe.Response { return p.p.Probe(tg, m) }
func (p plainProber) Advance(d time.Duration)                           { p.p.Advance(d) }

// PathSignature must be stable across calls and clock advances on an
// unchanged world, and change when the world changes.
func TestPathSignatureStability(t *testing.T) {
	n, e, view, hosts := setup(t, 13)
	_ = hosts
	targets := Targets(view, map[topo.ASN]bool{n.HostASN: true})
	if len(targets) == 0 {
		t.Fatal("no targets")
	}
	dst := targets[0].Blocks[0].First + 1
	vp := n.VPs[0]
	s1 := e.PathSignature(vp, dst)
	e.Advance(probe.PacePerHop * 100)
	e.Traceroute(vp, dst, nil)
	if s2 := e.PathSignature(vp, dst); s2 != s1 {
		t.Fatalf("signature changed on unchanged world: %x vs %x", s1, s2)
	}

	// Same seed, mutated world: the signature of a destination whose path
	// crossed the removed peer must change.
	n2, e2, view2, _ := setup(t, 13)
	ils := n2.InterdomainLinks(n2.HostASN)
	if len(ils) == 0 {
		t.Skip("no interdomain links")
	}
	topo.Depeer(n2, ils[len(ils)-1].FarAS)
	n2.Build()
	_ = view2
	changed := false
	for _, tg := range targets {
		for _, b := range tg.Blocks {
			d := b.First + 1
			if e.PathSignature(vp, d) != e2.PathSignature(n2.VPs[0], d) {
				changed = true
			}
		}
	}
	if !changed {
		t.Fatal("no destination signature changed after depeering")
	}
}

// PairVerdict capture: PrefixscanTrace must report exactly the verdicts it
// recorded, in order, so replay can reconstruct resolver state.
func TestPrefixscanTraceCapturesVerdicts(t *testing.T) {
	n, e, view, hosts := setup(t, 3)
	d := &Driver{View: view, Prober: LocalProber{E: e, VP: n.VPs[0]}, HostASNs: hosts}
	ds := d.Run()
	res := alias.NewResolver(proberSource{d.Prober}, alias.Config{})
	found := false
	for _, tr := range ds.Traces {
		var prev netx.Addr
		for _, h := range tr.Hops {
			if h.Type != probe.HopTimeExceeded {
				prev = 0
				continue
			}
			if !prev.IsZero() && prev != h.Addr {
				mate, ok, tried := res.PrefixscanTrace(prev, h.Addr)
				if ok {
					found = true
					if mate.IsZero() {
						t.Fatal("hit with zero mate")
					}
					last := tried[len(tried)-1]
					if last.V != alias.AliasYes || last.B != mate {
						t.Fatalf("last tried verdict %+v does not match hit mate %v", last, mate)
					}
				}
				for _, pv := range tried {
					if pv.A != prev {
						t.Fatalf("tried pair %+v not anchored at prev %v", pv, prev)
					}
				}
			}
			prev = h.Addr
		}
	}
	if !found {
		t.Skip("no prefixscan hits in this world")
	}
}
