package scamper

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync/atomic"

	"bdrmap/internal/alias"
	"bdrmap/internal/netx"
	"bdrmap/internal/topo"
)

// Cross-round measurement memory (the incremental round engine).
//
// The paper's doubletree stop set (§5.2) exists so repeated probing does
// not re-walk unchanged paths. A RoundState extends that memory across
// rounds: per target AS it keeps the full probing transcript of the last
// walk — every destination probed, the trace it produced, and a path
// signature (probe.Engine.PathSignature) capturing the hop sequence the
// world would produce for that destination today. Round N+1 replays the
// transcript destination by destination while the signatures still match:
// a replayed trace costs zero probe packets, re-derives the same stop-set
// entries, and drives the §5.3 retry rule through exactly the control flow
// a from-scratch walk would take. The first signature mismatch abandons
// the replay and probes the rest of the target live, seeded with the
// stop-set state the replayed prefix accumulated — which, by induction, is
// the state a scratch walk would have reached at the same point. That
// prefix-replay discipline is what makes the incremental map byte-identical
// to a from-scratch run (mapdb's equivalence mode asserts it).
//
// A configurable refresh cadence (Config.RefreshEvery) forces a full
// re-walk of each cached target every N rounds, so decayed paths a
// signature oracle could not see in a real deployment are still re-walked.
//
// The alias stage has its own memory: the outcome of every Mercator sweep
// probe, every Resolve pair, and every Prefixscan (with the pair verdicts
// it recorded along the way) is memoized, and replayed for addresses that
// appeared only in fully-replayed targets. Replay re-Records the same
// verdicts in the same order, so the resolver's positive/negative maps —
// and therefore the alias graph the inference core consumes — are
// identical to a live run's.

// DefaultRefreshEvery is the refresh cadence when Config.State is set and
// Config.RefreshEvery is zero: every cached target is fully re-walked at
// least every 8 rounds.
const DefaultRefreshEvery = 8

// SignatureProber is implemented by probers that can fingerprint the path
// a traceroute would take without sending packets (LocalProber, via
// probe.Engine.PathSignature). Cross-round caching requires it; a prober
// without signatures (e.g. a remote agent) silently disables the cache.
type SignatureProber interface {
	Prober
	PathSignature(dst netx.Addr) uint64
}

// RoundState carries one vantage point's measurement memory across rounds.
// It is owned by a single Driver at a time and must not be shared between
// concurrently running drivers. The zero value is not usable; call
// NewRoundState.
type RoundState struct {
	round   int
	targets map[topo.ASN]*targetMemo

	mercator map[netx.Addr]mercMemo
	pairs    map[apair]alias.Verdict
	scans    map[apair]scanMemo

	// intern is the cross-round address table: an address keeps its dense
	// ID for the lifetime of the state, so the splice path can compare
	// rounds by ID instead of address-keyed maps.
	intern *netx.Intern

	// owner enforces the single-driver contract at runtime. The fleet
	// coordinator moves a shard's state between workers and across agent
	// redials; a scheduling bug that let two drivers mutate one state
	// concurrently would corrupt the cache silently, so acquisition
	// panics instead.
	owner atomic.Pointer[string]
}

// Acquire claims exclusive ownership of the state for the named driver,
// panicking if another holder has it. Release returns it. Drivers call
// this pair around Run; the panic is the loud version of the "owned by a
// single Driver at a time" doc contract above.
func (st *RoundState) Acquire(name string) {
	if !st.owner.CompareAndSwap(nil, &name) {
		holder := "?"
		if h := st.owner.Load(); h != nil {
			holder = *h
		}
		panic(fmt.Sprintf("scamper: RoundState for %q acquired while held by %q", name, holder))
	}
}

// Release gives up ownership taken by Acquire.
func (st *RoundState) Release() {
	st.owner.Store(nil)
}

// NewRoundState creates empty cross-round state for one vantage point.
func NewRoundState() *RoundState {
	return &RoundState{
		targets:  make(map[topo.ASN]*targetMemo),
		mercator: make(map[netx.Addr]mercMemo),
		pairs:    make(map[apair]alias.Verdict),
		scans:    make(map[apair]scanMemo),
	}
}

// Round returns the number of driver runs this state has accumulated.
func (st *RoundState) Round() int { return st.round }

// targetMemo is the cached probing transcript of one target AS.
type targetMemo struct {
	blocksKey uint64        // fingerprint of the §5.3 block plan
	traces    []cachedTrace // in schedule order
	lastWalk  int           // round of the last live (non-replayed) walk
}

// cachedTrace is one destination's position in the schedule, its trace,
// and the path signature the world produced when it was recorded.
type cachedTrace struct {
	blockIdx int
	dst      netx.Addr
	sig      uint64
	rec      TraceRecord
}

// mercMemo is the outcome of one Mercator sweep probe.
type mercMemo struct {
	hit  bool
	from netx.Addr
}

// scanMemo is the outcome of one Prefixscan, with the pair verdicts it
// recorded along the way (the replay substrate).
type scanMemo struct {
	mate  netx.Addr
	ok    bool
	tried []alias.PairVerdict
}

// apair is a canonically ordered address pair (memo key).
type apair [2]netx.Addr

func mkpair(a, b netx.Addr) apair {
	if a < b {
		return apair{a, b}
	}
	return apair{b, a}
}

// blocksKey fingerprints a target's block plan; a changed plan (the BGP
// view moved a prefix) invalidates the whole transcript.
func blocksKey(blocks []netx.Block) uint64 {
	h := fnv.New64a()
	var buf [16]byte
	for _, b := range blocks {
		putUint64(buf[:8], uint64(b.First))
		putUint64(buf[8:], uint64(b.Last))
		h.Write(buf[:])
	}
	return h.Sum64()
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// targetReplay drives one target's replay during one round. The prior
// transcript is consumed strictly in schedule order; the first mismatch
// (position or signature) diverges and everything after runs live.
type targetReplay struct {
	sp      SignatureProber
	prior   *targetMemo   // validated transcript to replay; nil → all live
	all     []cachedTrace // the pre-existing transcript even when not replayable
	refresh bool          // replay suppressed by the refresh cadence

	cursor   int
	diverged bool
	hits     int
	live     int
	next     *targetMemo // transcript being built this round
}

// take returns the cached trace for schedule position (blockIdx, dst) when
// the replay is still aligned and the destination's path signature is
// unchanged. Any mismatch diverges the replay permanently.
func (rp *targetReplay) take(blockIdx int, dst netx.Addr) (cachedTrace, bool) {
	if rp.diverged || rp.prior == nil || rp.cursor >= len(rp.prior.traces) {
		rp.diverged = true
		return cachedTrace{}, false
	}
	ct := rp.prior.traces[rp.cursor]
	if ct.blockIdx != blockIdx || ct.dst != dst || rp.sp.PathSignature(dst) != ct.sig {
		rp.diverged = true
		return cachedTrace{}, false
	}
	rp.cursor++
	rp.hits++
	return ct, true
}

// record appends one trace (replayed or live) to this round's transcript.
func (rp *targetReplay) record(blockIdx int, dst netx.Addr, sig uint64, rec TraceRecord) {
	rp.next.traces = append(rp.next.traces, cachedTrace{
		blockIdx: blockIdx, dst: dst, sig: sig, rec: rec,
	})
}

// fullHit reports whether the whole target was served from cache: every
// cached trace replayed, nothing probed live.
func (rp *targetReplay) fullHit() bool {
	return rp.prior != nil && !rp.diverged && rp.live == 0 &&
		rp.cursor == len(rp.prior.traces)
}

// faulted reports whether any trace recorded this round carries injected
// fault drops; such transcripts are not cached (a fault is responder
// state, invisible to the path signature).
func (rp *targetReplay) faulted() bool {
	for _, ct := range rp.next.traces {
		if ct.rec.FaultDropped > 0 {
			return true
		}
	}
	return false
}

// TraceFingerprint hashes the dataset's traces down to one value: FNV-1a
// over the sorted (target AS, destination, hop path) lines, with the
// stop-set truncation flag. IP-IDs and RTTs are deliberately excluded —
// they are responder state, vary across worker counts and rounds, and are
// never consumed by inference. Replayed traces therefore contribute
// exactly what their live counterparts would, which makes this the
// trace-level identity the incremental equivalence mode compares.
func (ds *Dataset) TraceFingerprint() uint64 {
	lines := make([]string, 0, len(ds.Traces))
	for _, tr := range ds.Traces {
		s := tr.TargetAS.String() + "|" + tr.Dst.String() + "|" + pathString(tr.TraceResult)
		if tr.Stopped {
			s += "|s"
		}
		lines = append(lines, s)
	}
	sort.Strings(lines)
	h := fnv.New64a()
	for _, l := range lines {
		h.Write([]byte(l))
		h.Write([]byte{'\n'})
	}
	return h.Sum64()
}
