package scamper

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"bdrmap/internal/bgp"
	"bdrmap/internal/obs"
	"bdrmap/internal/probe"
	"bdrmap/internal/topo"
)

// runOnce builds a fresh engine over a shared world and runs the full
// measurement schedule with the given worker count, returning the dataset
// and the metrics snapshot.
func runOnce(t *testing.T, n *topo.Network, workers int) (*Dataset, obs.Snapshot) {
	t.Helper()
	tab := bgp.NewTable(n)
	view := bgp.Collect(tab, bgp.DefaultVantages(n))
	reg := obs.New()
	e := probe.New(n, tab)
	e.SetObs(reg)
	d := &Driver{
		View:     view,
		Prober:   LocalProber{E: e, VP: n.VPs[0]},
		HostASNs: map[topo.ASN]bool{n.HostASN: true},
		Cfg:      Config{Workers: workers},
		Obs:      reg,
	}
	return d.Run(), reg.Snapshot()
}

// serializeTraces renders every trace byte-for-byte: destination, stop
// flags, and each hop's TTL, address, type, IP-ID, and RTT. Any
// scheduling leak — a shared clock read, a shared IP-ID counter, a
// rate-limit window shared across workers — shows up here.
func serializeTraces(ds *Dataset) string {
	var b strings.Builder
	for _, tr := range ds.Traces {
		fmt.Fprintf(&b, "as=%v dst=%v reached=%t stopped=%t |", tr.TargetAS, tr.Dst, tr.Reached, tr.Stopped)
		for _, h := range tr.Hops {
			fmt.Fprintf(&b, " %d:%v/%d/%d/%d", h.TTL, h.Addr, h.Type, h.IPID, h.RTT)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// TestParallelRunDeterministic runs the Workers:4 measurement schedule
// twice over the same world and requires byte-identical traces and
// identical deterministic metrics: the per-worker lanes must make the
// parallel run a pure function of the world, independent of goroutine
// interleaving.
func TestParallelRunDeterministic(t *testing.T) {
	n := topo.Generate(topo.TinyProfile(), 1)
	ds1, snap1 := runOnce(t, n, 4)
	ds2, snap2 := runOnce(t, n, 4)

	s1, s2 := serializeTraces(ds1), serializeTraces(ds2)
	if s1 != s2 {
		i := 0
		for i < len(s1) && i < len(s2) && s1[i] == s2[i] {
			i++
		}
		lo := i - 80
		if lo < 0 {
			lo = 0
		}
		t.Fatalf("traces differ between identical Workers:4 runs near byte %d:\nrun1: …%s\nrun2: …%s",
			i, s1[lo:min(i+80, len(s1))], s2[lo:min(i+80, len(s2))])
	}
	if ds1.Stats != ds2.Stats {
		t.Fatalf("run stats differ:\nrun1: %+v\nrun2: %+v", ds1.Stats, ds2.Stats)
	}
	if snap1.Fingerprint() != snap2.Fingerprint() {
		t.Fatalf("metric fingerprints differ:\nrun1:\n%s\nrun2:\n%s", snap1.Format(), snap2.Format())
	}
	if ds1.Stats.Traces == 0 || ds1.Stats.SimDuration == 0 {
		t.Fatalf("degenerate run: %+v", ds1.Stats)
	}
}

// TestWorkerCountChangesOnlySchedule documents the lane model's contract:
// the set of destinations probed is worker-count-invariant (the schedule
// partitions targets, it does not reorder blocks within one), though
// per-hop timings may differ because lane clocks advance independently.
func TestWorkerCountChangesOnlySchedule(t *testing.T) {
	n := topo.Generate(topo.TinyProfile(), 1)
	ds1, _ := runOnce(t, n, 1)
	ds4, _ := runOnce(t, n, 4)
	dsts := func(ds *Dataset) map[string]int {
		out := make(map[string]int)
		for _, tr := range ds.Traces {
			out[fmt.Sprintf("%v->%v", tr.TargetAS, tr.Dst)]++
		}
		return out
	}
	d1, d4 := dsts(ds1), dsts(ds4)
	if len(d1) != len(d4) {
		t.Fatalf("destination sets differ: %d (Workers:1) vs %d (Workers:4)", len(d1), len(d4))
	}
	for k, v := range d1 {
		if d4[k] != v {
			t.Fatalf("destination %s probed %d times with Workers:1, %d with Workers:4", k, v, d4[k])
		}
	}
}

// TestConcurrentDriversShareEngine exercises the shared engine and a
// shared registry from two concurrent measurement runs — this is the
// -race canary for the lane state, the engine's shared clock advance, and
// every obs primitive. Outputs are not compared (two drivers racing over
// one simulated clock are not meant to be reproducible); the test asserts
// only that both complete and the shared counters add up.
func TestConcurrentDriversShareEngine(t *testing.T) {
	n := topo.Generate(topo.TinyProfile(), 1)
	tab := bgp.NewTable(n)
	view := bgp.Collect(tab, bgp.DefaultVantages(n))
	reg := obs.New()
	e := probe.New(n, tab)
	e.SetObs(reg)

	var wg sync.WaitGroup
	results := make([]*Dataset, 2)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d := &Driver{
				View:     view,
				Prober:   LocalProber{E: e, VP: n.VPs[0]},
				HostASNs: map[topo.ASN]bool{n.HostASN: true},
				Cfg:      Config{Workers: 4},
				Obs:      reg,
			}
			results[i] = d.Run()
		}(i)
	}
	wg.Wait()

	total := int64(results[0].Stats.Traces + results[1].Stats.Traces)
	if got := reg.Snapshot().Counter("driver.traces"); got != total {
		t.Fatalf("driver.traces = %d, want %d", got, total)
	}
	if results[0].Stats.Traces == 0 || results[1].Stats.Traces == 0 {
		t.Fatal("a concurrent run produced no traces")
	}
}
