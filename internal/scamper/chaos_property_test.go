package scamper

// Property tests for the hardened remote-control protocol: for any healing
// fault schedule, every command executes exactly once on the agent (the
// retry path may re-SEND but must never re-EXECUTE), the measurement the
// controller assembles is byte-identical to a fault-free session, and the
// simulated clock never runs backwards relative to the clean run.

import (
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"bdrmap/internal/bgp"
	"bdrmap/internal/faults"
	"bdrmap/internal/obs"
	"bdrmap/internal/probe"
	"bdrmap/internal/topo"
)

// chaosRun drives a fixed command schedule (a trace sweep with clock
// advances) through a controller/agent pair over loopback TCP behind a
// fault injector, and returns the serialized results, the agent's
// per-sequence execution counts, and the final simulated clock.
func chaosRun(t *testing.T, spec string) (out string, execs map[uint32]int, clk time.Duration, reg *obs.Registry) {
	t.Helper()
	sp, err := faults.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(sp)

	n := topo.Generate(topo.TinyProfile(), 7)
	tab := bgp.NewTable(n)
	eng := probe.New(n, tab)

	ctrl, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	reg = obs.New()
	ctrl.SetObs(reg)
	ctrl.SetHelloTimeout(time.Second)

	agent := &Agent{E: eng, VP: n.VPs[0]}
	done := make(chan error, 1)
	go func() {
		done <- agent.DialRetry(ctrl.Addr(), DialOptions{
			Dial:         inj.DialFunc,
			MaxRedials:   100,
			RedialBase:   time.Millisecond,
			RedialMax:    16 * time.Millisecond,
			HelloTimeout: 250 * time.Millisecond,
		})
	}()
	rp, err := ctrl.Accept()
	if err != nil {
		t.Fatal(err)
	}
	rp.SetHardening(Hardening{
		FrameTimeout: 100 * time.Millisecond,
		RetryBudget:  12,
		BackoffBase:  time.Millisecond,
		BackoffMax:   16 * time.Millisecond,
		ResumeWait:   2 * time.Second,
	})

	var b strings.Builder
	for _, p := range tab.Prefixes() {
		res := rp.Trace(p.First()+1, nil)
		fmt.Fprintf(&b, "%v %v %v:", res.Dst, res.Reached, res.Stopped)
		for _, h := range res.Hops {
			fmt.Fprintf(&b, " %d/%d/%v/%d", h.TTL, h.Type, h.Addr, h.IPID)
		}
		b.WriteByte('\n')
		rp.Advance(30 * time.Second)
	}
	clk, err = rp.Clock()
	if err != nil {
		t.Fatalf("clock: %v", err)
	}
	rp.Close()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("agent did not shut down")
	}
	if err := rp.Err(); err != nil {
		t.Fatalf("healing schedule %q lost the session: %v", spec, err)
	}
	return b.String(), agent.CountExecs(), clk, reg
}

func TestChaosProperties(t *testing.T) {
	cleanOut, cleanExecs, cleanClk, _ := chaosRun(t, "")
	if len(cleanExecs) == 0 || cleanOut == "" {
		t.Fatal("clean run executed nothing")
	}

	specs := []string{
		"seed=11,drop=0.15,heal=20",
		"seed=23,corrupt=0.10,dup=0.10,heal=20",
		"seed=37,stall=0.05,stallfor=15ms,cut=0.03,heal=12",
		"seed=53,drop=0.05,corrupt=0.05,dup=0.05,cut=0.02,heal=15,rcorrupt=0.001,rcwindow=4096",
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			out, execs, clk, reg := chaosRun(t, spec)

			// Exactly-once: the retry path re-sends, the duplicate cache
			// replays — no sequence number may ever execute twice, and no
			// command may be skipped.
			for seq, n := range execs {
				if n != 1 {
					t.Errorf("seq %d executed %d times", seq, n)
				}
			}
			if len(execs) != len(cleanExecs) {
				t.Errorf("executed %d commands, clean run executed %d", len(execs), len(cleanExecs))
			}

			// The measurement itself must be unaffected by wire faults.
			if out != cleanOut {
				t.Errorf("faulted results diverge from fault-free run\nfaulted:\n%s\nclean:\n%s", out, cleanOut)
			}

			// Time only moves forward: retries and stalls may add simulated
			// probing time but can never subtract it.
			if clk < cleanClk {
				t.Errorf("faulted sim clock %v < fault-free %v", clk, cleanClk)
			}

			// The schedule must actually have exercised the recovery path.
			snap := reg.Snapshot()
			recovered := snap.Counter("remote.retry.read") +
				snap.Counter("remote.retry.write") +
				snap.Counter("remote.retry.corrupt") +
				snap.Counter("remote.resume") +
				snap.Counter("remote.hello_failed")
			if recovered == 0 {
				t.Errorf("spec %q injected no observable faults:\n%s", spec, snap.Format())
			}
			if lost := snap.Counter("remote.session_lost"); lost != 0 {
				t.Errorf("healing schedule lost %d session(s)", lost)
			}
		})
	}
}

// muteAfterHello lets the agent's first write (the hello) through, then
// swallows every subsequent write — commands still arrive and execute on
// the agent, but no response ever reaches the controller.
type muteAfterHello struct {
	net.Conn
	writes int
}

func (m *muteAfterHello) Write(b []byte) (int, error) {
	m.writes++
	if m.writes == 1 {
		return m.Conn.Write(b)
	}
	return len(b), nil
}

// TestChaosRetryBudgetIsHonored pins the retry bound: a command whose
// responses are swallowed forever fails the session after 1+RetryBudget
// sends instead of retrying unboundedly — and even though every send
// reaches the agent, the duplicate cache keeps it at exactly one execution.
func TestChaosRetryBudgetIsHonored(t *testing.T) {
	n := topo.Generate(topo.TinyProfile(), 7)
	tab := bgp.NewTable(n)
	eng := probe.New(n, tab)

	ctrl, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	ctrl.SetHelloTimeout(time.Second)

	agent := &Agent{E: eng, VP: n.VPs[0]}
	done := make(chan error, 1)
	go func() {
		done <- agent.DialRetry(ctrl.Addr(), DialOptions{
			Wrap:         func(c net.Conn) net.Conn { return &muteAfterHello{Conn: c} },
			MaxRedials:   4,
			RedialBase:   time.Millisecond,
			RedialMax:    4 * time.Millisecond,
			HelloTimeout: 100 * time.Millisecond,
		})
	}()
	rp, err := ctrl.Accept()
	if err != nil {
		t.Fatal(err)
	}
	rp.SetHardening(Hardening{
		FrameTimeout: 50 * time.Millisecond,
		RetryBudget:  3,
		BackoffBase:  time.Millisecond,
		BackoffMax:   2 * time.Millisecond,
		ResumeWait:   300 * time.Millisecond,
	})

	start := time.Now()
	rp.Trace(tab.Prefixes()[0].First()+1, nil)
	if rp.Err() == nil {
		t.Fatal("response black hole did not fail the session")
	}
	// 1 send + 3 retries at 50ms frame timeout each, plus resume waits: a
	// budget violation instead retries forever and trips the test timeout;
	// this bound just catches gross overshoot.
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("budget-bounded failure took %v", elapsed)
	}
	// Every send reached the agent, yet the command ran exactly once.
	if execs := agent.CountExecs(); execs[1] != 1 {
		t.Fatalf("execs[1] = %d, want exactly 1", execs[1])
	}
	rp.Close()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("agent did not shut down")
	}
}
