package scamper

import (
	"fmt"
	"sync"
	"time"
)

// Router multiplexes one Controller's accept stream across concurrent
// consumers. The fleet coordinator runs many remote shards against a
// single listening controller; each shard dials its own agent and then
// needs *that* agent's session, but Controller.Accept surfaces new
// sessions in arrival order. The router buffers arrivals by vantage-point
// name and lets each shard claim its own, whichever worker it is running
// on. Reconnections of known agents never surface here — the controller
// routes them to the existing RemoteProber internally, which is exactly
// the session-resume path a redialling shard reuses.
type Router struct {
	ctrl *Controller

	mu      sync.Mutex
	ready   map[string][]*RemoteProber
	waiters map[string][]chan *RemoteProber
	err     error
	done    chan struct{}
}

// NewRouter starts routing ctrl's accept stream. Close the controller to
// stop it; pending and future Claims then fail with the accept error.
func NewRouter(ctrl *Controller) *Router {
	r := &Router{
		ctrl:    ctrl,
		ready:   make(map[string][]*RemoteProber),
		waiters: make(map[string][]chan *RemoteProber),
		done:    make(chan struct{}),
	}
	go r.loop()
	return r
}

func (r *Router) loop() {
	for {
		p, err := r.ctrl.Accept()
		if err != nil {
			r.mu.Lock()
			r.err = err
			r.mu.Unlock()
			close(r.done)
			return
		}
		r.mu.Lock()
		name := p.Name()
		if ws := r.waiters[name]; len(ws) > 0 {
			ws[0] <- p
			r.waiters[name] = ws[1:]
		} else {
			r.ready[name] = append(r.ready[name], p)
		}
		r.mu.Unlock()
	}
}

// Claim returns the next new session for the named vantage point, waiting
// up to timeout for its agent to finish a handshake. A shard whose agent
// was killed and replaced claims again and receives the replacement's
// fresh session.
func (r *Router) Claim(name string, timeout time.Duration) (*RemoteProber, error) {
	r.mu.Lock()
	if q := r.ready[name]; len(q) > 0 {
		p := q[0]
		r.ready[name] = q[1:]
		r.mu.Unlock()
		return p, nil
	}
	if r.err != nil {
		err := r.err
		r.mu.Unlock()
		return nil, err
	}
	ch := make(chan *RemoteProber, 1)
	r.waiters[name] = append(r.waiters[name], ch)
	r.mu.Unlock()

	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case p := <-ch:
		return p, nil
	case <-r.done:
		// The loop may have delivered to ch just before exiting.
		select {
		case p := <-ch:
			return p, nil
		default:
		}
		r.mu.Lock()
		err := r.err
		r.mu.Unlock()
		return nil, err
	case <-t.C:
		r.abandon(name, ch)
		// A delivery can race the timer; prefer the session to the error.
		select {
		case p := <-ch:
			return p, nil
		default:
		}
		return nil, fmt.Errorf("scamper: no session from agent %q within %v", name, timeout)
	}
}

// abandon removes ch from name's waiter queue.
func (r *Router) abandon(name string, ch chan *RemoteProber) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ws := r.waiters[name]
	for i, w := range ws {
		if w == ch {
			r.waiters[name] = append(ws[:i:i], ws[i+1:]...)
			return
		}
	}
}
