package scamper

import (
	"testing"

	"bdrmap/internal/bgp"
	"bdrmap/internal/netx"
	"bdrmap/internal/probe"
	"bdrmap/internal/topo"
)

func setup(t *testing.T, seed int64) (*topo.Network, *probe.Engine, *bgp.View, map[topo.ASN]bool) {
	t.Helper()
	n := topo.Generate(topo.TinyProfile(), seed)
	tab := bgp.NewTable(n)
	view := bgp.Collect(tab, bgp.DefaultVantages(n))
	e := probe.New(n, tab)
	hosts := map[topo.ASN]bool{n.HostASN: true}
	for _, s := range n.Siblings(n.HostASN) {
		hosts[s] = true
	}
	return n, e, view, hosts
}

func TestTargetsExcludeHost(t *testing.T) {
	n, _, view, hosts := setup(t, 1)
	targets := Targets(view, hosts)
	if len(targets) == 0 {
		t.Fatal("no targets")
	}
	for _, tg := range targets {
		if hosts[tg.AS] {
			t.Fatalf("host AS %v in target list", tg.AS)
		}
		if len(tg.Blocks) == 0 {
			t.Fatalf("target %v has no blocks", tg.AS)
		}
	}
	_ = n
}

func TestTargetsCarveMoreSpecifics(t *testing.T) {
	_, _, view, hosts := setup(t, 2)
	targets := Targets(view, hosts)
	// No block may contain a more-specific routed prefix's space.
	routed := view.RoutedPrefixes()
	for _, tg := range targets {
		for _, b := range tg.Blocks {
			for _, p := range routed {
				if origins := view.OriginsExact(p); len(origins) == 1 && origins[0] == tg.AS {
					continue
				}
				if b.Contains(p.First()) && b.Contains(p.Last()) && p.NumAddrs() < b.NumAddrs() {
					t.Fatalf("block %v-%v of %v swallows routed prefix %v", b.First, b.Last, tg.AS, p)
				}
			}
		}
	}
}

func runDriver(t *testing.T, seed int64, cfg Config) (*Dataset, *topo.Network, *probe.Engine) {
	t.Helper()
	n, e, view, hosts := setup(t, seed)
	d := &Driver{
		View:     view,
		Prober:   LocalProber{E: e, VP: n.VPs[0]},
		HostASNs: hosts,
		Cfg:      cfg,
	}
	return d.Run(), n, e
}

func TestDriverRunProducesTraces(t *testing.T) {
	ds, _, _ := runDriver(t, 3, Config{})
	if ds.Stats.Traces == 0 || ds.Stats.HopsObserved == 0 {
		t.Fatalf("stats = %+v", ds.Stats)
	}
	if ds.Stats.AddrsObserved == 0 {
		t.Fatal("no addresses observed")
	}
	if ds.Graph == nil || ds.Resolver == nil {
		t.Fatal("alias results missing")
	}
}

func TestStopSetReducesWork(t *testing.T) {
	with, _, eWith := runDriver(t, 4, Config{Workers: 1})
	without, _, eWithout := runDriver(t, 4, Config{Workers: 1, DisableStopSet: true})
	if with.Stats.TracesStopped == 0 {
		t.Error("stop set never fired")
	}
	if without.Stats.TracesStopped != 0 {
		t.Error("disabled stop set still stopped traces")
	}
	if eWith.Stats().PacketsSent >= eWithout.Stats().PacketsSent {
		t.Errorf("stop set did not reduce packets: %d vs %d",
			eWith.Stats().PacketsSent, eWithout.Stats().PacketsSent)
	}
}

func TestDisableAliasSkipsResolution(t *testing.T) {
	ds, _, _ := runDriver(t, 5, Config{DisableAlias: true})
	if ds.Stats.AliasPairsRun != 0 {
		t.Fatalf("alias pairs run = %d with aliasing disabled", ds.Stats.AliasPairsRun)
	}
	if len(ds.Graph.Sets()) != 0 {
		t.Fatal("alias graph should be empty")
	}
}

func TestAliasGraphNoFalseMerges(t *testing.T) {
	ds, n, _ := runDriver(t, 6, Config{Workers: 1})
	for _, set := range ds.Graph.Sets() {
		owner := topo.RouterID(-1)
		for _, a := range set {
			ifc := n.IfaceByAddr(a)
			if ifc == nil {
				continue
			}
			if owner < 0 {
				owner = ifc.Router
			} else if ifc.Router != owner {
				t.Fatalf("alias set %v spans routers %d and %d", set, owner, ifc.Router)
			}
		}
	}
}

func TestDriverDeterministicSequential(t *testing.T) {
	a, _, _ := runDriver(t, 7, Config{Workers: 1})
	b, _, _ := runDriver(t, 7, Config{Workers: 1})
	if a.Stats != b.Stats {
		t.Fatalf("stats differ: %+v vs %+v", a.Stats, b.Stats)
	}
	if len(a.Traces) != len(b.Traces) {
		t.Fatalf("trace counts differ")
	}
	for i := range a.Traces {
		if a.Traces[i].Dst != b.Traces[i].Dst || len(a.Traces[i].Hops) != len(b.Traces[i].Hops) {
			t.Fatalf("trace %d differs", i)
		}
	}
}

func TestRemoteAgentRoundTrip(t *testing.T) {
	n, e, view, hosts := setup(t, 8)

	ctrl, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	agent := &Agent{E: e, VP: n.VPs[0]}
	done := make(chan error, 1)
	go func() { done <- agent.Dial(ctrl.Addr()) }()

	rp, err := ctrl.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if rp.Name() != n.VPs[0].Name {
		t.Fatalf("agent name = %q", rp.Name())
	}

	// Remote and local traces must agree.
	local := LocalProber{E: e, VP: n.VPs[0]}
	dst := view.RoutedPrefixes()[len(view.RoutedPrefixes())-1].First() + 1
	lt := local.Trace(dst, nil)
	rt := rp.Trace(dst, nil)
	if len(lt.Hops) != len(rt.Hops) {
		t.Fatalf("hop counts differ: %d vs %d", len(lt.Hops), len(rt.Hops))
	}
	for i := range lt.Hops {
		if lt.Hops[i].Addr != rt.Hops[i].Addr || lt.Hops[i].Type != rt.Hops[i].Type {
			t.Fatalf("hop %d differs: %+v vs %+v", i, lt.Hops[i], rt.Hops[i])
		}
	}

	// Stop sets work over the wire.
	if len(lt.Hops) > 1 && lt.Hops[0].Type == probe.HopTimeExceeded {
		stopped := rp.Trace(dst, map[netx.Addr]bool{lt.Hops[0].Addr: true})
		if !stopped.Stopped || len(stopped.Hops) != 1 {
			t.Fatalf("remote stop set failed: %+v", stopped)
		}
	}

	// Probes work over the wire.
	target := lt.Hops[0].Addr
	if !target.IsZero() {
		lr := local.Probe(target, probe.MethodICMPEcho)
		rr := rp.Probe(target, probe.MethodICMPEcho)
		if lr.OK != rr.OK || lr.From != rr.From {
			t.Fatalf("probe mismatch: %+v vs %+v", lr, rr)
		}
	}

	out, in := rp.BytesTransferred()
	if out == 0 || in == 0 {
		t.Fatal("no protocol traffic recorded")
	}
	if agent.StateBytes() > 1<<20 {
		t.Fatalf("agent state too large: %d", agent.StateBytes())
	}

	rp.Close()
	if err := <-done; err != nil {
		t.Fatalf("agent exited with error: %v", err)
	}
	_ = hosts
}

func TestRemoteFullDriverRun(t *testing.T) {
	n, e, view, hosts := setup(t, 9)
	ctrl, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	agent := &Agent{E: e, VP: n.VPs[0]}
	go agent.Dial(ctrl.Addr())
	rp, err := ctrl.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer rp.Close()

	d := &Driver{View: view, Prober: rp, HostASNs: hosts, Cfg: Config{Workers: 2}}
	ds := d.Run()
	if ds.Stats.Traces == 0 || ds.Stats.AddrsObserved == 0 {
		t.Fatalf("remote run produced nothing: %+v", ds.Stats)
	}
	if err := rp.Err(); err != nil {
		t.Fatalf("transport error: %v", err)
	}
	if agent.Commands() == 0 {
		t.Fatal("agent executed no commands")
	}
}
