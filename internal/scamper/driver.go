package scamper

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"bdrmap/internal/alias"
	"bdrmap/internal/bgp"
	"bdrmap/internal/netx"
	"bdrmap/internal/obs"
	"bdrmap/internal/probe"
	"bdrmap/internal/topo"
)

// Disabled is the sentinel for Config limits that distinguish "use the
// paper's default" (zero value) from "explicitly zero" (ablation runs
// that must not fall back to the default).
const Disabled = -1

// Config tunes the driver. The zero value selects the paper's parameters;
// set a limit to Disabled to force it to zero.
type Config struct {
	// MaxAddrsPerBlock bounds the §5.3 retry rule (default 5; Disabled
	// probes no addresses).
	MaxAddrsPerBlock int
	// Workers is the number of target ASes probed concurrently (default 4).
	Workers int
	// DisableStopSet turns off doubletree early stopping (ablation).
	DisableStopSet bool
	// DisableAlias skips alias resolution entirely (ablation, fig. 13).
	DisableAlias bool
	// MaxPairsPerAddr bounds Ally work per address (default 6; Disabled
	// runs no Ally pairs).
	MaxPairsPerAddr int
	// AliasCfg tunes the alias resolver.
	AliasCfg alias.Config
	// TargetTimeout bounds the wall-clock time spent on one target AS;
	// exceeding it reports the target lost instead of hanging the run.
	// Zero disables the cutoff (it is off for deterministic golden runs).
	TargetTimeout time.Duration
	// Pace throttles every probing lane to at most one traceroute per Pace
	// of real time, modeling scamper's probing-rate cap: the deployed
	// system is latency- and pps-bound, not CPU-bound, so wall-clock is
	// dominated by waiting between probes. Pacing only spends real time —
	// it cannot change a single measured byte — and the zero default runs
	// the simulator at full speed, so golden and differential runs are
	// unaffected. The fleet benchmark uses it to reproduce the wall-clock
	// regime the coordinator exists to overlap.
	Pace time.Duration
	// State enables cross-round incremental probing: the driver replays
	// the previous round's per-target transcripts wherever path signatures
	// are unchanged, persisting the doubletree stop set (§5.2) across
	// rounds instead of rebuilding it. Requires a SignatureProber; it is
	// silently ignored for probers that cannot sign paths. Remote agents
	// that advertise helloCapSig participate via RemoteProber.Signed.
	State *RoundState
	// RefreshEvery forces a full live re-walk of each cached target every
	// N rounds so decayed paths are still re-walked (default
	// DefaultRefreshEvery; Disabled never refreshes).
	RefreshEvery int
}

func (c Config) withDefaults() Config {
	switch {
	case c.MaxAddrsPerBlock == Disabled:
		c.MaxAddrsPerBlock = 0
	case c.MaxAddrsPerBlock == 0:
		c.MaxAddrsPerBlock = 5
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	switch {
	case c.MaxPairsPerAddr == Disabled:
		c.MaxPairsPerAddr = 0
	case c.MaxPairsPerAddr == 0:
		c.MaxPairsPerAddr = 6
	}
	switch {
	case c.RefreshEvery == Disabled:
		c.RefreshEvery = 0 // never refresh
	case c.RefreshEvery == 0:
		c.RefreshEvery = DefaultRefreshEvery
	}
	return c
}

// Target is one AS's probing work: the address blocks it originates.
type Target struct {
	AS     topo.ASN
	Blocks []netx.Block
}

// TraceRecord is one collected traceroute annotated with its target.
type TraceRecord struct {
	probe.TraceResult
	TargetAS topo.ASN
}

// Dataset is everything one vantage point's measurement run produced.
type Dataset struct {
	VPName   string
	Traces   []TraceRecord
	Resolver *alias.Resolver
	Graph    *alias.Graph
	Stats    RunStats
	// Dirty is the set of interface addresses whose trace evidence changed
	// since the previous round: every address appearing in the current or
	// prior transcript of any target that was not served fully from cache.
	// It is nil when cross-round caching is off — consumers must treat nil
	// as "everything is dirty".
	Dirty map[netx.Addr]bool
	// Intern assigns every observed interface address (and its alias-graph
	// canonical) a dense int32 ID. It is built single-threaded after the
	// probing barrier; the inference core, mapdb, and the next round's
	// splice path all index by these IDs instead of address-keyed maps.
	// With cross-round caching the same table persists between rounds, so
	// an address keeps its ID for the lifetime of the RoundState.
	Intern *netx.Intern
}

// RunStats summarizes the probing effort.
type RunStats struct {
	Targets       int
	Traces        int
	TracesStopped int // halted by the stop set
	HopsObserved  int
	AliasPairsRun int
	AddrsObserved int
	// TargetsLost counts targets abandoned because the prober's session
	// died or the per-target timeout fired (graceful degradation).
	TargetsLost int
	// TracesLive / TracesCached split Traces when cross-round caching is
	// active (Config.State): a cached trace was replayed from the previous
	// round's transcript without spending a single probe packet.
	TracesLive   int
	TracesCached int
	// CacheHits / CacheMisses / CacheRefreshes count whole targets served
	// entirely from cache, re-walked (no memo, changed plan, or signature
	// divergence), or force-re-walked by the refresh cadence.
	CacheHits      int
	CacheMisses    int
	CacheRefreshes int
	// AliasOpsReplayed counts alias-stage operations (Mercator probes,
	// Ally resolutions, Prefixscans) replayed from the cross-round memo.
	AliasOpsReplayed int
	// SimDuration is how much simulated measurement time the run took
	// (the paper reports 12-48h wall-clock at 100 packets/second).
	SimDuration time.Duration
}

// Targets assembles the probing plan from the public view (§5.3): for every
// routed prefix not originated by the host network, the address blocks left
// after carving out more-specific routed prefixes, grouped by origin AS.
func Targets(view *bgp.View, hostASNs map[topo.ASN]bool) []Target {
	routed := view.RoutedPrefixes()
	byAS := make(map[topo.ASN][]netx.Block)
	for _, p := range routed {
		origins := view.OriginsExact(p)
		if len(origins) == 0 {
			continue
		}
		hostOwned := true
		for _, o := range origins {
			if !hostASNs[o] {
				hostOwned = false
				break
			}
		}
		if hostOwned {
			continue
		}
		// Carve out more-specific routed prefixes.
		var ms []netx.Prefix
		for _, q := range routed {
			if q != p && p.ContainsPrefix(q) {
				ms = append(ms, q)
			}
		}
		blocks := netx.CarveBlocks(p, ms)
		target := origins[0]
		byAS[target] = append(byAS[target], blocks...)
	}
	out := make([]Target, 0, len(byAS))
	for asn, blocks := range byAS {
		sort.Slice(blocks, func(i, j int) bool { return blocks[i].First < blocks[j].First })
		out = append(out, Target{AS: asn, Blocks: blocks})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AS < out[j].AS })
	return out
}

// Driver runs the full measurement schedule for one vantage point.
type Driver struct {
	View     *bgp.View
	Prober   Prober
	HostASNs map[topo.ASN]bool
	Cfg      Config
	// Obs receives the driver's pipeline metrics (per-stage simulated and
	// wall-clock time, trace/stop-set/alias counters). Nil disables them.
	Obs *obs.Registry
	// Trace receives per-trace provenance events (target lifecycle, hop
	// responses, stop-set hits, fault drops, alias verdicts). Nil disables
	// them. Probe-stage events carry per-target-relative sim timestamps and
	// are merged in target order, so for a fixed seed the stream is
	// identical across worker counts.
	Trace *obs.Tracer
	// Spans receives the hierarchical span timeline: one "stage" span each
	// for probing and alias resolution (parented under SpanParent) and one
	// "target" span per probed AS underneath the probe stage. Per-target
	// spans are recorded into per-target fragment logs and merged in target
	// order after the worker barrier, so — like the Trace stream — the span
	// tree is identical across worker counts. Nil disables them.
	Spans *obs.SpanLog
	// SpanParent is the span the driver's stage spans attach under
	// (typically the enclosing "vp" span; 0 makes them roots).
	SpanParent obs.SpanID
}

// LaneProber is implemented by probers that support deterministic
// per-worker measurement timelines (probe.Lane). The driver gives each
// worker goroutine its own lane so a parallel run's traces are a pure
// function of the world and the schedule, independent of goroutine
// interleaving. Probers without lane support (e.g. remote agents) fall
// back to the shared-clock path.
type LaneProber interface {
	Prober
	NewLane(start time.Duration) *probe.Lane
	TraceLane(dst netx.Addr, stopSet map[netx.Addr]bool, lane *probe.Lane) probe.TraceResult
}

// Run executes probing and alias resolution, returning the dataset.
func (d *Driver) Run() *Dataset {
	cfg := d.Cfg.withDefaults()
	simStart := d.now()
	targets := Targets(d.View, d.HostASNs)
	ds := &Dataset{VPName: d.Prober.Name()}
	ds.Stats.Targets = len(targets)
	d.Obs.Add("driver.targets", int64(len(targets)))

	// Cross-round cache setup: validate each target's prior transcript
	// (plan unchanged, refresh cadence not due) single-threaded before the
	// workers start; the workers only read their own replay slot.
	st := cfg.State
	if st != nil {
		st.Acquire(d.Prober.Name())
		defer st.Release()
	}
	var replays []*targetReplay
	if st != nil {
		sp, ok := d.Prober.(SignatureProber)
		if !ok {
			st = nil
		} else {
			st.round++
			replays = make([]*targetReplay, len(targets))
			for i, t := range targets {
				key := blocksKey(t.Blocks)
				rp := &targetReplay{sp: sp, next: &targetMemo{blocksKey: key, lastWalk: st.round}}
				if m := st.targets[t.AS]; m != nil {
					rp.all = m.traces
					switch {
					case m.blocksKey != key:
						// The §5.3 block plan moved; the transcript no
						// longer describes this round's schedule.
					case cfg.RefreshEvery > 0 && st.round-m.lastWalk >= cfg.RefreshEvery:
						rp.refresh = true
					default:
						rp.prior = m
					}
				}
				replays[i] = rp
			}
		}
	}
	rpAt := func(i int) *targetReplay {
		if replays == nil {
			return nil
		}
		return replays[i]
	}

	probeSpan := d.Obs.StartStage("driver.probe")
	probeSp := d.Spans.Begin(d.SpanParent, "stage", "probe")
	probeSp.SetAttr("targets", len(targets))
	results := make([][]TraceRecord, len(targets))
	stopped := make([]int, len(targets))
	lost := make([]bool, len(targets))
	// Per-target simulated durations, written by exactly one worker each;
	// their SUM is the probe stage span's duration on the canonical
	// serialized timeline (a sum is partition-invariant, unlike the
	// max-lane probeSim below, which depends on how targets land on
	// workers).
	tsims := make([]int64, len(targets))
	// Per-target fragment tracers: each worker emits into its own target's
	// fragment, and the fragments are folded into d.Trace in target order
	// after the barrier — the merged stream is independent of which worker
	// finished first.
	frags := make([]*obs.Tracer, len(targets))
	newFrag := func(i int) *obs.Tracer {
		if !d.Trace.Enabled() {
			return nil
		}
		frags[i] = obs.NewTracer(0)
		return frags[i]
	}
	// Per-target fragment span logs, merged the same way.
	sfrags := make([]*obs.SpanLog, len(targets))
	newSFrag := func(i int) *obs.SpanLog {
		if !d.Spans.Enabled() {
			return nil
		}
		sfrags[i] = obs.NewSpanLog(0)
		return sfrags[i]
	}

	// simEnd merges the per-worker virtual clocks with an atomic max: the
	// run's simulated duration is the slowest worker's timeline, and the
	// max is order-independent no matter how workers interleave.
	var simEnd obs.Max
	simEnd.Observe(int64(simStart))

	if lp, ok := d.Prober.(LaneProber); ok {
		// Deterministic path: worker w handles targets w, w+W, w+2W, …
		// on its own lane. Each results slot is written by exactly one
		// worker, so the merge below needs no locks and no ordering.
		var wg sync.WaitGroup
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				lane := lp.NewLane(simStart)
				trace := func(dst netx.Addr, ss map[netx.Addr]bool) probe.TraceResult {
					if cfg.Pace > 0 {
						time.Sleep(cfg.Pace)
					}
					return lp.TraceLane(dst, ss, lane)
				}
				for i := w; i < len(targets); i += cfg.Workers {
					results[i], stopped[i], lost[i], tsims[i] = d.probeTarget(targets[i], cfg, trace, newFrag(i), newSFrag(i), lane.Now, rpAt(i))
				}
				simEnd.Observe(int64(lane.Now()))
			}(w)
		}
		wg.Wait()
		// Push the shared clock to the end of the slowest lane so the
		// alias stage (and any later run) starts at a well-defined time.
		if end := time.Duration(simEnd.Load()); end > simStart {
			d.Prober.Advance(end - simStart)
		}
	} else {
		// Shared-clock fallback (remote probers): bounded concurrency via
		// a semaphore, pacing applied by the prober itself.
		traceFn := d.Prober.Trace
		if cfg.Pace > 0 {
			traceFn = func(dst netx.Addr, ss map[netx.Addr]bool) probe.TraceResult {
				time.Sleep(cfg.Pace)
				return d.Prober.Trace(dst, ss)
			}
		}
		var mu sync.Mutex
		var wg sync.WaitGroup
		sem := make(chan struct{}, cfg.Workers)
		for i, t := range targets {
			wg.Add(1)
			sem <- struct{}{}
			frag := newFrag(i)
			sfrag := newSFrag(i)
			go func(i int, t Target) {
				defer wg.Done()
				defer func() { <-sem }()
				// No per-worker lane here: events carry SimNS 0 (reading the
				// remote clock per event would perturb the frame stream the
				// fault goldens pin) and order by sequence number alone.
				recs, nStopped, wasLost, simNS := d.probeTarget(t, cfg, traceFn, frag, sfrag, nil, rpAt(i))
				mu.Lock()
				results[i] = recs
				stopped[i] = nStopped
				lost[i] = wasLost
				tsims[i] = simNS
				mu.Unlock()
			}(i, t)
		}
		wg.Wait()
		simEnd.Observe(int64(d.now()))
	}

	for i := range results {
		ds.Traces = append(ds.Traces, results[i]...)
		ds.Stats.TracesStopped += stopped[i]
		if lost[i] {
			ds.Stats.TargetsLost++
		}
		d.Trace.Merge(frags[i])
		d.Spans.Merge(sfrags[i], probeSp.ID())
	}
	ds.Stats.Traces = len(ds.Traces)
	for _, tr := range ds.Traces {
		ds.Stats.HopsObserved += len(tr.Hops)
	}

	// Fold this round's transcripts back into the cross-round state
	// (single-threaded, after the barrier) and derive the dirty-address
	// set the alias stage and the inference core key their replay off.
	if st != nil {
		dirty := make(map[netx.Addr]bool)
		markDirty := func(recs []TraceRecord) {
			for _, rec := range recs {
				for _, h := range rec.Hops {
					if h.Type == probe.HopTimeout || h.Addr.IsZero() {
						continue
					}
					dirty[h.Addr] = true
				}
			}
		}
		cachedRecs := func(cts []cachedTrace) []TraceRecord {
			out := make([]TraceRecord, 0, len(cts))
			for _, ct := range cts {
				out = append(out, ct.rec)
			}
			return out
		}
		for i, rp := range replays {
			ds.Stats.TracesLive += rp.live
			ds.Stats.TracesCached += rp.hits
			if rp.fullHit() {
				ds.Stats.CacheHits++
				rp.next.lastWalk = rp.prior.lastWalk // no live walk happened
				st.targets[targets[i].AS] = rp.next
				d.Obs.Inc("rounds.cache.hit")
				continue
			}
			if rp.refresh {
				ds.Stats.CacheRefreshes++
				d.Obs.Inc("rounds.cache.refresh")
			} else {
				ds.Stats.CacheMisses++
				d.Obs.Inc("rounds.cache.miss")
			}
			// The target's evidence changed: everything on the new paths
			// and everything the old paths traversed is dirty — a router
			// can lose a trace without appearing in its replacement.
			markDirty(results[i])
			markDirty(cachedRecs(rp.all))
			if lost[i] || rp.faulted() {
				// Keep the previous transcript (if any): a dead session or
				// an injected fault is transport state, not a changed world.
				continue
			}
			st.targets[targets[i].AS] = rp.next
		}
		// Targets that vanished from the plan leave stale memos behind;
		// their addresses are dirty and the memos are dropped.
		alive := make(map[topo.ASN]bool, len(targets))
		for _, t := range targets {
			alive[t.AS] = true
		}
		for as, m := range st.targets {
			if !alive[as] {
				markDirty(cachedRecs(m.traces))
				delete(st.targets, as)
			}
		}
		ds.Dirty = dirty
		d.Obs.Add("driver.traces_live", int64(ds.Stats.TracesLive))
		d.Obs.Add("driver.traces_cached", int64(ds.Stats.TracesCached))
	}

	d.Obs.Add("driver.traces", int64(ds.Stats.Traces))
	d.Obs.Add("driver.traces_stopped", int64(ds.Stats.TracesStopped))
	d.Obs.Add("driver.hops_observed", int64(ds.Stats.HopsObserved))
	d.Obs.Max("driver.sim_clock_ns").Observe(simEnd.Load())
	probeSim := time.Duration(simEnd.Load()) - simStart
	probeSpan.AddSim(probeSim)
	probeSpan.End()
	var targetSimNS int64
	for _, s := range tsims {
		targetSimNS += s
	}
	probeSp.SetAttr("traces", ds.Stats.Traces)
	probeSp.AddSim(time.Duration(targetSimNS))
	probeSp.End()

	aliasSpan := d.Obs.StartStage("driver.alias")
	aliasSp := d.Spans.Begin(d.SpanParent, "stage", "alias")
	aliasStart := d.now()
	d.resolveAliases(ds, cfg, st)
	aliasSim := d.now() - aliasStart
	if aliasSim < 0 {
		// A lost remote session reads its clock as zero; don't let that
		// drag the stage duration negative.
		aliasSim = 0
	}
	aliasSpan.AddSim(aliasSim)
	aliasSpan.End()
	aliasSp.SetAttr("pairs", ds.Stats.AliasPairsRun)
	aliasSp.AddSim(aliasSim)
	aliasSp.End()

	// Intern every responding interface address and its alias canonical,
	// single-threaded now that probing and alias resolution are done. The
	// cross-round table (when State is set) keeps IDs stable between rounds.
	it := netx.NewIntern(ds.Stats.AddrsObserved + 1)
	if st != nil {
		if st.intern == nil {
			st.intern = it
		}
		it = st.intern
	}
	for i := range ds.Traces {
		for _, h := range ds.Traces[i].Hops {
			if h.Type != probe.HopTimeExceeded {
				continue
			}
			it.ID(h.Addr)
			if ds.Graph != nil {
				it.ID(ds.Graph.Canonical(h.Addr))
			}
		}
	}
	ds.Intern = it

	// SimDuration is derived from the obs primitives (atomic max over
	// worker lanes plus the single-threaded alias stage) rather than from
	// unordered reads of the shared clock.
	ds.Stats.SimDuration = probeSim + aliasSim
	return ds
}

// clockProber is implemented by probers that can report their simulated
// measurement clock (RemoteProber does, via a msgClock round trip).
type clockProber interface {
	Clock() (time.Duration, error)
}

// now reads the prober's measurement clock: the local engine's simulated
// clock directly, or a clock round trip for remote probers. A prober that
// can report neither (or whose session is lost) reads as zero.
func (d *Driver) now() time.Duration {
	if lp, ok := d.Prober.(LocalProber); ok {
		return lp.E.Now()
	}
	if cp, ok := d.Prober.(clockProber); ok {
		if t, err := cp.Clock(); err == nil {
			return t
		}
	}
	return 0
}

// healthy reports whether the prober's session is still usable. Probers
// without an Err method (local engines) are always healthy.
func (d *Driver) healthy() bool {
	if ep, ok := d.Prober.(interface{ Err() error }); ok {
		return ep.Err() == nil
	}
	return true
}

// isExternal reports whether addr maps (in the public view) to an AS
// outside the host organization. Unrouted addresses are not external.
func (d *Driver) isExternal(addr netx.Addr) bool {
	origins, _, ok := d.View.Origins(addr)
	if !ok {
		return false
	}
	for _, o := range origins {
		if !d.HostASNs[o] {
			return true
		}
	}
	return false
}

// probeTarget runs the per-target-AS schedule: probe each block's first
// address; when the trace shows no external address (or only the probed
// one), try further addresses, up to the configured maximum (§5.3).
// It returns early — reporting the target lost — when the prober's session
// dies or the per-target timeout fires, so one dead VP degrades the run
// instead of hanging it.
func (d *Driver) probeTarget(t Target, cfg Config, trace func(netx.Addr, map[netx.Addr]bool) probe.TraceResult, frag *obs.Tracer, sfrag *obs.SpanLog, now func() time.Duration, rp *targetReplay) (recs []TraceRecord, nStopped int, targetLost bool, simNS int64) {
	// Event timestamps are relative to this target's own start: trace
	// pacing is a pure function of hop counts, so the relative times are
	// identical no matter which worker (and absolute lane time) ran the
	// target. A prober without a clock (nil now) stamps zero throughout.
	rel := func() int64 { return 0 }
	if now != nil {
		start := now()
		rel = func() int64 { return int64(now() - start) }
	}
	frag.Emit(obs.StageProbe, "target", t.AS.String(), 0, obs.KV("blocks", len(t.Blocks)))
	tsp := sfrag.Begin(0, "target", t.AS.String())
	tsp.SetAttr("blocks", len(t.Blocks))
	defer func() {
		tsp.SetAttr("traces", len(recs))
		if targetLost {
			tsp.SetAttr("lost", true)
		}
		simNS = rel()
		tsp.AddSim(time.Duration(simNS))
		tsp.End()
	}()

	var deadline time.Time
	if cfg.TargetTimeout > 0 {
		deadline = time.Now().Add(cfg.TargetTimeout)
	}
	// The 0 simNS below is a placeholder: the deferred span close above
	// overwrites the named return with the target's final rel() reading.
	abandon := func() ([]TraceRecord, int, bool, int64) {
		d.Obs.Inc("driver.target.lost")
		frag.Emit(obs.StageProbe, "target-lost", t.AS.String(), rel())
		return recs, nStopped, true, 0
	}
	stopSet := make(map[netx.Addr]bool)
	for bi, b := range t.Blocks {
		tried := 0
		for tried < cfg.MaxAddrsPerBlock {
			if !d.healthy() {
				return abandon()
			}
			if !deadline.IsZero() && time.Now().After(deadline) {
				return abandon()
			}
			dst := b.First + netx.Addr(tried) + 1
			if !b.Contains(dst) {
				break
			}
			tried++
			var ss map[netx.Addr]bool
			if !cfg.DisableStopSet {
				ss = stopSet
			}
			// Replay the prior round's transcript while it still matches
			// this schedule position and the destination's path signature;
			// a replayed trace spends zero probe packets. Everything after
			// the splice — stop-set insertion, the §5.3 retry decision —
			// runs the live code on the replayed result, so the control
			// flow (and therefore the stop set) evolves exactly as a
			// from-scratch walk would.
			var res probe.TraceResult
			var sig uint64
			cached := false
			if rp != nil {
				if ct, ok := rp.take(bi, dst); ok {
					res, sig, cached = ct.rec.TraceResult, ct.sig, true
				}
			}
			if !cached {
				res = trace(dst, ss)
				if len(res.Hops) == 0 && !d.healthy() {
					// The session died mid-command; this empty trace is a
					// transport artifact, not a measurement.
					return abandon()
				}
				if rp != nil {
					rp.live++
					sig = rp.sp.PathSignature(dst)
				}
			}
			recs = append(recs, TraceRecord{TraceResult: res, TargetAS: t.AS})
			if rp != nil {
				rp.record(bi, dst, sig, TraceRecord{TraceResult: res, TargetAS: t.AS})
			}
			if frag.Enabled() {
				attrs := []obs.Attr{
					obs.KV("target", t.AS.String()),
					obs.KV("hops", len(res.Hops)),
					obs.KV("path", pathString(res)),
				}
				if res.Reached {
					attrs = append(attrs, obs.KV("reached", true))
				}
				if res.Stopped {
					attrs = append(attrs, obs.KV("stopped", true))
				}
				if res.FaultDropped > 0 {
					attrs = append(attrs, obs.KV("fault_drops", res.FaultDropped))
				}
				if cached {
					attrs = append(attrs, obs.KV("cached", true))
				}
				frag.Emit(obs.StageProbe, "trace", dst.String(), rel(), attrs...)
			}
			if res.Stopped {
				nStopped++
				if n := len(res.Hops); n > 0 {
					frag.Emit(obs.StageProbe, "stopset-hit", dst.String(), rel(),
						obs.KV("at", res.Hops[n-1].Addr.String()))
				}
				break // the path joins previously-observed interdomain hops
			}
			// Find the first externally-originated address.
			var firstExt netx.Addr
			for _, h := range res.Hops {
				if h.Type != probe.HopTimeExceeded {
					continue
				}
				if d.isExternal(h.Addr) {
					firstExt = h.Addr
					break
				}
			}
			if !firstExt.IsZero() {
				stopSet[firstExt] = true
				frag.Emit(obs.StageProbe, "stopset-add", firstExt.String(), rel(),
					obs.KV("dst", dst.String()))
				break
			}
			// No external interface seen; an echo reply from the probed
			// address alone is insufficient (§4: potential third-party) —
			// try the next address in the block.
		}
	}
	return recs, nStopped, false, 0
}

// pathString renders a trace's hop sequence as "ttl:class:addr" tokens —
// the response-class evidence per hop. IP-IDs are deliberately omitted:
// they depend on lane interleaving and would break worker-count-invariant
// fingerprints (alias events carry them as volatile attrs instead).
func pathString(res probe.TraceResult) string {
	var b []byte
	for i, h := range res.Hops {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, []byte(fmt.Sprintf("%d:%s", h.TTL, hopClass(h.Type)))...)
		if !h.Addr.IsZero() {
			b = append(b, ':')
			b = append(b, []byte(h.Addr.String())...)
		}
	}
	return string(b)
}

// hopClass abbreviates a hop response class for path strings.
func hopClass(t probe.HopType) string {
	switch t {
	case probe.HopTimeExceeded:
		return "te"
	case probe.HopEchoReply:
		return "er"
	case probe.HopUnreachable:
		return "un"
	default:
		return "to"
	}
}

// resolveAliases runs the alias-resolution schedule over the observed
// addresses (§5.3): a Mercator sweep over every address, Ally on candidate
// pairs sharing a traceroute predecessor, and Prefixscan on every observed
// (previous hop, address) edge.
//
// With cross-round state (st non-nil), operations whose every address is
// clean — appeared only in fully-replayed targets — are replayed from the
// previous round's memo instead of probing: replay re-Records the same
// verdicts in the same order, so the resolver (and the alias graph built
// from it) ends in exactly the state a live run would reach. Any operation
// touching a dirty address runs live. The memo is rebuilt from this
// round's operations on every pass, so entries for vanished addresses and
// edges age out immediately.
func (d *Driver) resolveAliases(ds *Dataset, cfg Config, st *RoundState) {
	res := alias.NewResolver(proberSource{d.Prober}, cfg.AliasCfg)
	res.Trace = d.Trace
	if lp, ok := d.Prober.(LocalProber); ok {
		// Alias events carry timestamps relative to the alias stage's own
		// start; remote probers stamp zero (reading their clock per event
		// would perturb the pinned frame stream).
		start := lp.E.Now()
		res.Now = func() int64 { return int64(lp.E.Now() - start) }
	}
	ds.Resolver = res

	type edge struct{ prev, cur netx.Addr }
	addrSet := make(map[netx.Addr]bool)
	succOf := make(map[netx.Addr][]netx.Addr) // predecessor addr → successors
	var edges []edge
	seenEdge := make(map[edge]bool)
	for _, tr := range ds.Traces {
		var prev netx.Addr
		for _, h := range tr.Hops {
			if h.Type != probe.HopTimeExceeded {
				if h.Type == probe.HopTimeout {
					prev = 0
				}
				continue
			}
			addrSet[h.Addr] = true
			if !prev.IsZero() && prev != h.Addr {
				e := edge{prev, h.Addr}
				if !seenEdge[e] {
					seenEdge[e] = true
					edges = append(edges, e)
					succOf[prev] = append(succOf[prev], h.Addr)
				}
			}
			prev = h.Addr
		}
	}
	ds.Stats.AddrsObserved = len(addrSet)
	d.Obs.Add("driver.addrs_observed", int64(len(addrSet)))
	if cfg.DisableAlias {
		ds.Graph = alias.NewGraph()
		return
	}
	if !d.healthy() {
		// The session is gone; every probe below would fail. Report the
		// aborted stage instead of burning the retry machinery on it.
		d.Obs.Inc("driver.alias.aborted")
		ds.Graph = alias.NewGraph()
		return
	}

	// Cross-round memo plumbing. The new maps replace the old ones even on
	// an aborted stage (via defer), so stale entries never survive a round
	// they were not revalidated in.
	var newMerc map[netx.Addr]mercMemo
	var newPairs map[apair]alias.Verdict
	var newScans map[apair]scanMemo
	if st != nil {
		newMerc = make(map[netx.Addr]mercMemo)
		newPairs = make(map[apair]alias.Verdict)
		newScans = make(map[apair]scanMemo)
		defer func() {
			st.mercator, st.pairs, st.scans = newMerc, newPairs, newScans
			d.Obs.Add("rounds.alias.replayed", int64(ds.Stats.AliasOpsReplayed))
		}()
	}
	canReplay := func(as ...netx.Addr) bool {
		if st == nil || ds.Dirty == nil {
			return false
		}
		for _, a := range as {
			if ds.Dirty[a] {
				return false
			}
		}
		return true
	}

	// Mercator sweep: group addresses by common port-unreachable source.
	addrs := make([]netx.Addr, 0, len(addrSet))
	for a := range addrSet {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		if !d.healthy() {
			d.Obs.Inc("driver.alias.aborted")
			ds.Graph = alias.FromResolver(res)
			return
		}
		if canReplay(a) {
			if m, ok := st.mercator[a]; ok {
				newMerc[a] = m
				ds.Stats.AliasOpsReplayed++
				if m.hit {
					res.Record(a, m.from, alias.AliasYes)
					d.Obs.Inc("driver.alias.mercator_hits")
					d.Trace.Emit(obs.StageAlias, "mercator", a.String(), res.NowNS(),
						obs.KV("from", m.from.String()), obs.KV("verdict", "alias"),
						obs.KV("cached", true))
				}
				continue
			}
		}
		r := d.Prober.Probe(a, probe.MethodUDP)
		hit := r.OK && r.From != a && !r.From.IsZero()
		if st != nil {
			m := mercMemo{hit: hit}
			if hit {
				m.from = r.From
			}
			newMerc[a] = m
		}
		if hit {
			res.Record(a, r.From, alias.AliasYes)
			d.Obs.Inc("driver.alias.mercator_hits")
			d.Trace.Emit(obs.StageAlias, "mercator", a.String(), res.NowNS(),
				obs.KV("from", r.From.String()), obs.KV("verdict", "alias"))
		}
	}

	// Ally on candidate pairs: addresses observed after a common
	// predecessor may be interfaces of one router (load-balanced or
	// parallel links).
	pairs := 0
	for _, prev := range addrs {
		if !d.healthy() {
			d.Obs.Inc("driver.alias.aborted")
			ds.Stats.AliasPairsRun = pairs
			ds.Graph = alias.FromResolver(res)
			return
		}
		succ := succOf[prev]
		if len(succ) < 2 {
			continue
		}
		limit := cfg.MaxPairsPerAddr
		for i := 0; i < len(succ) && limit > 0; i++ {
			for j := i + 1; j < len(succ) && limit > 0; j++ {
				a, b := succ[i], succ[j]
				var v alias.Verdict
				replayed := false
				if canReplay(a, b) {
					if mv, ok := st.pairs[mkpair(a, b)]; ok {
						v, replayed = mv, true
						newPairs[mkpair(a, b)] = mv
						ds.Stats.AliasOpsReplayed++
						// Re-Record the memoized verdict: Resolve records
						// only its own pair's final verdict, so this
						// reconstructs the exact resolver state.
						res.Record(a, b, mv)
					}
				}
				if !replayed {
					v = res.Resolve(a, b)
					if st != nil {
						newPairs[mkpair(a, b)] = v
					}
				}
				switch v {
				case alias.AliasYes:
					d.Obs.Inc("driver.alias.ally_yes")
				case alias.AliasNo:
					d.Obs.Inc("driver.alias.ally_no")
				default:
					d.Obs.Inc("driver.alias.ally_unknown")
				}
				pairs++
				limit--
			}
		}
	}
	// Prefixscan on every observed edge: confirm the inbound interface
	// and resolve the near-side alias of the point-to-point subnet.
	for _, e := range edges {
		if !d.healthy() {
			d.Obs.Inc("driver.alias.aborted")
			break
		}
		ekey := apair{e.prev, e.cur}
		if canReplay(e.prev, e.cur) {
			if sm, ok := st.scans[ekey]; ok {
				newScans[ekey] = sm
				ds.Stats.AliasOpsReplayed++
				for _, pv := range sm.tried {
					res.Record(pv.A, pv.B, pv.V)
				}
				if sm.ok {
					d.Obs.Inc("driver.alias.prefixscan_hits")
					d.Trace.Emit(obs.StageAlias, "prefixscan", e.prev.String()+"|"+e.cur.String(),
						res.NowNS(), obs.KV("mate", sm.mate.String()), obs.KV("cached", true))
				}
				pairs++
				continue
			}
		}
		mate, ok, tried := res.PrefixscanTrace(e.prev, e.cur)
		if st != nil {
			newScans[ekey] = scanMemo{mate: mate, ok: ok, tried: tried}
		}
		if ok {
			d.Obs.Inc("driver.alias.prefixscan_hits")
			d.Trace.Emit(obs.StageAlias, "prefixscan", e.prev.String()+"|"+e.cur.String(),
				res.NowNS(), obs.KV("mate", mate.String()))
		}
		pairs++
	}
	ds.Stats.AliasPairsRun = pairs
	d.Obs.Add("driver.alias.pairs", int64(pairs))
	ds.Graph = alias.FromResolver(res)
}

// proberSource adapts a Prober to alias.ProbeSource.
type proberSource struct{ p Prober }

func (s proberSource) Probe(t netx.Addr, m probe.Method) probe.Response { return s.p.Probe(t, m) }
func (s proberSource) Advance(d time.Duration)                          { s.p.Advance(d) }
