package scamper

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"bdrmap/internal/netx"
	"bdrmap/internal/probe"
	"bdrmap/internal/topo"
)

// The remote control protocol (§5.8): resource-limited devices cannot hold
// the IP-to-AS tables, stop sets, and alias state bdrmap needs (~150MB),
// so the device runs only a thin probing agent (a few MB) that dials back
// to the central system and executes probe commands it receives. Frames
// are length-prefixed binary messages:
//
//	frame  := length(uint32) payload
//	payload:= type(uint8) body
//
// The agent sends one hello carrying its vantage-point name, then answers
// trace/probe/advance commands until bye.
const (
	msgHello    = 0x01
	msgTraceReq = 0x02
	msgTraceRsp = 0x03
	msgProbeReq = 0x04
	msgProbeRsp = 0x05
	msgAdvance  = 0x06
	msgAdvanced = 0x07
	msgBye      = 0x08
)

// maxFrame bounds a frame; a trace command carrying a full stop set is the
// largest message.
const maxFrame = 1 << 20

func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("scamper: bad frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// ---------------------------------------------------------------------------
// Agent (device side)

// Agent executes probe commands against a local engine on behalf of a
// central controller. It keeps no measurement state beyond one in-flight
// command, which is what lets it fit on a low-resource device.
type Agent struct {
	E  *probe.Engine
	VP *topo.VP

	mu       sync.Mutex
	peakBuf  int
	commands int64
}

// StateBytes reports the approximate measurement state held by the agent:
// just its largest single command buffer.
func (a *Agent) StateBytes() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peakBuf
}

// Commands returns how many commands the agent has executed.
func (a *Agent) Commands() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.commands
}

func (a *Agent) note(bufLen int) {
	a.mu.Lock()
	if bufLen > a.peakBuf {
		a.peakBuf = bufLen
	}
	a.commands++
	a.mu.Unlock()
}

// Dial connects to the controller and serves commands until bye or error.
func (a *Agent) Dial(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	return a.ServeConn(conn)
}

// ServeConn runs the agent protocol over an established connection.
func (a *Agent) ServeConn(conn net.Conn) error {
	hello := make([]byte, 0, 2+len(a.VP.Name))
	hello = append(hello, msgHello, byte(len(a.VP.Name)))
	hello = append(hello, a.VP.Name...)
	if err := writeFrame(conn, hello); err != nil {
		return err
	}
	for {
		req, err := readFrame(conn)
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		a.note(len(req))
		switch req[0] {
		case msgTraceReq:
			rsp, err := a.handleTrace(req)
			if err != nil {
				return err
			}
			a.note(len(rsp))
			if err := writeFrame(conn, rsp); err != nil {
				return err
			}
		case msgProbeReq:
			if len(req) < 6 {
				return fmt.Errorf("scamper: short probe request")
			}
			target := netx.Addr(binary.BigEndian.Uint32(req[1:5]))
			m := probe.Method(req[5])
			r := a.E.Probe(a.VP, target, m)
			rsp := make([]byte, 24)
			rsp[0] = msgProbeRsp
			if r.OK {
				rsp[1] = 1
			}
			binary.BigEndian.PutUint32(rsp[2:6], uint32(r.From))
			binary.BigEndian.PutUint16(rsp[6:8], r.IPID)
			binary.BigEndian.PutUint64(rsp[8:16], uint64(r.When))
			binary.BigEndian.PutUint64(rsp[16:24], uint64(r.RTT))
			if err := writeFrame(conn, rsp); err != nil {
				return err
			}
		case msgAdvance:
			if len(req) < 9 {
				return fmt.Errorf("scamper: short advance request")
			}
			d := time.Duration(binary.BigEndian.Uint64(req[1:9]))
			a.E.Advance(d)
			if err := writeFrame(conn, []byte{msgAdvanced}); err != nil {
				return err
			}
		case msgBye:
			return nil
		default:
			return fmt.Errorf("scamper: unknown message type %#x", req[0])
		}
	}
}

func (a *Agent) handleTrace(req []byte) ([]byte, error) {
	if len(req) < 7 {
		return nil, fmt.Errorf("scamper: short trace request")
	}
	dst := netx.Addr(binary.BigEndian.Uint32(req[1:5]))
	nStop := int(binary.BigEndian.Uint16(req[5:7]))
	if len(req) < 7+4*nStop {
		return nil, fmt.Errorf("scamper: truncated stop set")
	}
	stop := make(map[netx.Addr]bool, nStop)
	for i := 0; i < nStop; i++ {
		stop[netx.Addr(binary.BigEndian.Uint32(req[7+4*i:]))] = true
	}
	var stopFn func(netx.Addr) bool
	if nStop > 0 {
		stopFn = func(x netx.Addr) bool { return stop[x] }
	}
	res := a.E.Traceroute(a.VP, dst, stopFn)
	a.E.Advance(time.Duration(len(res.Hops)) * 10 * time.Millisecond)

	rsp := make([]byte, 0, 5+16*len(res.Hops))
	rsp = append(rsp, msgTraceRsp, boolByte(res.Reached), boolByte(res.Stopped))
	var n [2]byte
	binary.BigEndian.PutUint16(n[:], uint16(len(res.Hops)))
	rsp = append(rsp, n[:]...)
	for _, h := range res.Hops {
		var hop [16]byte
		hop[0] = byte(h.TTL)
		hop[1] = byte(h.Type)
		binary.BigEndian.PutUint32(hop[2:6], uint32(h.Addr))
		binary.BigEndian.PutUint16(hop[6:8], h.IPID)
		binary.BigEndian.PutUint64(hop[8:16], uint64(h.RTT))
		rsp = append(rsp, hop[:]...)
	}
	return rsp, nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// ---------------------------------------------------------------------------
// Controller (central side)

// Controller accepts callback connections from agents.
type Controller struct {
	ln net.Listener
}

// Listen starts a controller on addr (use "127.0.0.1:0" for an ephemeral
// port) — the central system of §5.8.
func Listen(addr string) (*Controller, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Controller{ln: ln}, nil
}

// Addr returns the listening address.
func (c *Controller) Addr() string { return c.ln.Addr().String() }

// Close stops accepting agents.
func (c *Controller) Close() error { return c.ln.Close() }

// Accept waits for one agent and returns a prober driving it.
func (c *Controller) Accept() (*RemoteProber, error) {
	conn, err := c.ln.Accept()
	if err != nil {
		return nil, err
	}
	hello, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if len(hello) < 2 || hello[0] != msgHello || len(hello) < 2+int(hello[1]) {
		conn.Close()
		return nil, fmt.Errorf("scamper: bad hello")
	}
	name := string(hello[2 : 2+int(hello[1])])
	return &RemoteProber{conn: conn, name: name}, nil
}

// RemoteProber drives a remote agent over its callback connection.
// It is safe for concurrent use; commands are serialized.
type RemoteProber struct {
	conn net.Conn
	name string

	mu       sync.Mutex
	bytesOut int64
	bytesIn  int64
	err      error
}

var _ Prober = (*RemoteProber)(nil)

// Name returns the agent's vantage point name.
func (p *RemoteProber) Name() string { return p.name }

// BytesTransferred reports protocol traffic (out, in).
func (p *RemoteProber) BytesTransferred() (out, in int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.bytesOut, p.bytesIn
}

// Err returns the first transport error, if any.
func (p *RemoteProber) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// Close ends the session.
func (p *RemoteProber) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	_ = writeFrame(p.conn, []byte{msgBye})
	return p.conn.Close()
}

// roundTrip sends one request and reads one response.
func (p *RemoteProber) roundTrip(req []byte, wantType byte) []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return nil
	}
	if err := writeFrame(p.conn, req); err != nil {
		p.err = err
		return nil
	}
	p.bytesOut += int64(len(req) + 4)
	rsp, err := readFrame(p.conn)
	if err != nil {
		p.err = err
		return nil
	}
	p.bytesIn += int64(len(rsp) + 4)
	if len(rsp) == 0 || rsp[0] != wantType {
		p.err = fmt.Errorf("scamper: unexpected response type")
		return nil
	}
	return rsp
}

// Trace runs a traceroute on the agent.
func (p *RemoteProber) Trace(dst netx.Addr, stopSet map[netx.Addr]bool) probe.TraceResult {
	req := make([]byte, 7, 7+4*len(stopSet))
	req[0] = msgTraceReq
	binary.BigEndian.PutUint32(req[1:5], uint32(dst))
	binary.BigEndian.PutUint16(req[5:7], uint16(len(stopSet)))
	for a := range stopSet {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], uint32(a))
		req = append(req, b[:]...)
	}
	rsp := p.roundTrip(req, msgTraceRsp)
	res := probe.TraceResult{VP: p.name, Dst: dst}
	if rsp == nil || len(rsp) < 5 {
		return res
	}
	res.Reached = rsp[1] == 1
	res.Stopped = rsp[2] == 1
	n := int(binary.BigEndian.Uint16(rsp[3:5]))
	for i := 0; i < n && 5+16*(i+1) <= len(rsp); i++ {
		h := rsp[5+16*i:]
		res.Hops = append(res.Hops, probe.Hop{
			TTL:  int(h[0]),
			Type: probe.HopType(h[1]),
			Addr: netx.Addr(binary.BigEndian.Uint32(h[2:6])),
			IPID: binary.BigEndian.Uint16(h[6:8]),
			RTT:  time.Duration(binary.BigEndian.Uint64(h[8:16])),
		})
	}
	return res
}

// Probe sends one alias-resolution probe via the agent.
func (p *RemoteProber) Probe(target netx.Addr, m probe.Method) probe.Response {
	req := make([]byte, 6)
	req[0] = msgProbeReq
	binary.BigEndian.PutUint32(req[1:5], uint32(target))
	req[5] = byte(m)
	rsp := p.roundTrip(req, msgProbeRsp)
	if rsp == nil || len(rsp) < 24 {
		return probe.Response{}
	}
	return probe.Response{
		OK:   rsp[1] == 1,
		From: netx.Addr(binary.BigEndian.Uint32(rsp[2:6])),
		IPID: binary.BigEndian.Uint16(rsp[6:8]),
		When: time.Duration(binary.BigEndian.Uint64(rsp[8:16])),
		RTT:  time.Duration(binary.BigEndian.Uint64(rsp[16:24])),
	}
}

// Advance moves the agent's measurement clock.
func (p *RemoteProber) Advance(d time.Duration) {
	req := make([]byte, 9)
	req[0] = msgAdvance
	binary.BigEndian.PutUint64(req[1:9], uint64(d))
	p.roundTrip(req, msgAdvanced)
}
